// Package integration exercises the built command-line binaries end to
// end: the fail-closed exit-code contract (0 verified, 1 violations,
// 2 usage/input error, 3 incomplete or internal error) and the -json wire
// shape shared with the gliftd service.
package integration

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

const cleanSrc = `
start:  mov #0x0280, sp
loop:   jmp loop
`

// violSrc is the Figure 9 unmasked-store micro: a store whose address
// derives from the tainted input port escapes the tainted partition.
const violSrc = `
start:  jmp tstart
tstart: mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        mov #500, 0(r14)
done:   jmp done
tend:   nop
`

var violFlags = []string{
	"-tainted-in", "1",
	"-tainted-code", "tstart:tend",
	"-tainted-data", "0x0400:0x0800",
}

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func TestMain(m *testing.M) {
	code := m.Run()
	if binDir != "" {
		os.RemoveAll(binDir)
	}
	os.Exit(code)
}

// tool builds the CLI binaries once and returns the path of the named one.
func tool(t *testing.T, name string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "glift-cli")
		if buildErr != nil {
			return
		}
		// When the test harness runs under the race detector, build the
		// binaries with it too: the soak job's kill -9 storms then race-check
		// the daemon itself, not just the harness.
		args := []string{"build"}
		if raceEnabled {
			args = append(args, "-race")
		}
		args = append(args, "-o", binDir,
			"./cmd/gliftcheck", "./cmd/secure430", "./cmd/gliftd", "./cmd/gliftload", "./cmd/traceview")
		cmd := exec.Command("go", args...)
		cmd.Dir = ".." // repo root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building CLIs: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(binDir, name)
}

func writeSrc(t *testing.T, name, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// run executes a built binary and returns its exit code and stdout.
func run(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.Output()
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("%s %v: %v", filepath.Base(bin), args, err)
		}
		return ee.ExitCode(), string(out)
	}
	return 0, string(out)
}

// TestGliftcheckExitCodes pins the documented fail-closed contract.
func TestGliftcheckExitCodes(t *testing.T) {
	gc := tool(t, "gliftcheck")
	clean := writeSrc(t, "clean.s43", cleanSrc)
	viol := writeSrc(t, "viol.s43", violSrc)

	if code, out := run(t, gc, clean); code != 0 {
		t.Errorf("clean program: exit %d\n%s", code, out)
	}
	if code, _ := run(t, gc, append(append([]string{}, violFlags...), viol)...); code != 1 {
		t.Errorf("violating program: exit %d, want 1", code)
	}
	if code, _ := run(t, gc, filepath.Join(t.TempDir(), "missing.s43")); code != 2 {
		t.Errorf("missing input: exit %d, want 2", code)
	}
	if code, _ := run(t, gc, "-tainted-in", "9", clean); code != 2 {
		t.Errorf("bad port flag: exit %d, want 2", code)
	}
	if code, _ := run(t, gc, writeSrc(t, "bad.s43", "not an instruction\n")); code != 2 {
		t.Errorf("unassemblable source: exit %d, want 2", code)
	}
	// An already-expired deadline aborts the exploration before it proves
	// anything: fail closed with exit 3, never 0.
	if code, _ := run(t, gc, "-deadline", "1ns", clean); code != 3 {
		t.Errorf("expired deadline: exit %d, want 3", code)
	}
}

// TestSecure430ExitCodes: the toolflow repairs the violating program to a
// verified one (exit 0) and shares the usage-error surface.
func TestSecure430ExitCodes(t *testing.T) {
	sc := tool(t, "secure430")
	viol := writeSrc(t, "viol.s43", violSrc)
	fixed := filepath.Join(t.TempDir(), "fixed.s43")

	code, _ := run(t, sc, append(append([]string{}, violFlags...), "-o", fixed, viol)...)
	if code != 0 {
		t.Errorf("repairable program: exit %d, want 0 after masking", code)
	}
	if _, err := os.Stat(fixed); err != nil {
		t.Errorf("no modified assembly written: %v", err)
	}
	if code, _ := run(t, sc, filepath.Join(t.TempDir(), "missing.s43")); code != 2 {
		t.Errorf("missing input: exit %d, want 2", code)
	}
	if code, _ := run(t, sc, "-deadline", "1ns", viol); code != 3 {
		t.Errorf("expired deadline: exit %d, want 3", code)
	}
}

var volatileStats = regexp.MustCompile(`"(wall_ns|peak_mem_bytes)": \d+`)

// TestGliftcheckJSONGolden pins the -json wire shape byte-for-byte (after
// zeroing the wall-clock and memory stats, the only nondeterministic
// fields): the CLI and the gliftd service must keep emitting the same
// schema.
func TestGliftcheckJSONGolden(t *testing.T) {
	gc := tool(t, "gliftcheck")
	viol := writeSrc(t, "viol.s43", violSrc)

	code, out := run(t, gc, append(append([]string{"-json"}, violFlags...), viol)...)
	if code != 1 {
		t.Fatalf("violating program: exit %d, want 1", code)
	}
	got := volatileStats.ReplaceAllString(out, `"$1": 0`)
	want, err := os.ReadFile(filepath.Join("testdata", "viol.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("-json output drifted from the golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSecure430JSON: -json emits one parseable report on stdout and keeps
// the assembly off it.
func TestSecure430JSON(t *testing.T) {
	sc := tool(t, "secure430")
	viol := writeSrc(t, "viol.s43", violSrc)

	code, out := run(t, sc, append(append([]string{"-json"}, violFlags...), viol)...)
	if code != 0 {
		t.Fatalf("repairable program: exit %d, want 0", code)
	}
	if !regexp.MustCompile(`"verdict": "verified"`).MatchString(out) {
		t.Errorf("missing verified verdict in JSON output:\n%s", out)
	}
	if regexp.MustCompile(`(?m)^\s*mov`).MatchString(out) {
		t.Errorf("-json stdout should not contain assembly:\n%s", out)
	}
}
