//go:build !race

package integration

const raceEnabled = false
