//go:build race

package integration

// raceEnabled mirrors the harness's -race flag into the binaries it builds.
const raceEnabled = true
