// Soak and shutdown tests for gliftd as a real process: the chaos harness
// (kill -9 durability, disk-full degradation, 503 injection) and the
// SIGTERM drain contract. A short smoke profile always runs; set GLIFT_SOAK
// for the longer storm CI's soak job uses.
package integration

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// chaosArgs is the short smoke profile: one kill cycle over a small corpus,
// enough to traverse all three phases in seconds.
var chaosArgs = []string{"-chaos", "-n", "18", "-distinct", "6", "-c", "4",
	"-kills", "1", "-kill-interval", "150ms"}

// soakArgs is the storm profile behind GLIFT_SOAK (the CI soak job).
var soakArgs = []string{"-chaos", "-n", "96", "-distinct", "12", "-c", "8",
	"-kills", "4", "-kill-interval", "250ms"}

func runGliftload(t *testing.T, args []string) {
	t.Helper()
	gd := tool(t, "gliftd")
	gl := tool(t, "gliftload")
	cmd := exec.Command(gl, append(append([]string{}, args...), "-gliftd", gd)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("gliftload: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "gliftload: OK") {
		t.Fatalf("gliftload did not report OK:\n%s", out)
	}
	if strings.Contains(string(out), "INTEGRITY VIOLATION") {
		t.Fatalf("integrity violations:\n%s", out)
	}
}

// TestChaosSmoke always runs the short chaos profile: the durability and
// admission invariants hold across a real kill -9 cycle.
func TestChaosSmoke(t *testing.T) {
	runGliftload(t, chaosArgs)
}

// TestChaosSoak is the long storm, opt-in via GLIFT_SOAK (CI's soak job).
func TestChaosSoak(t *testing.T) {
	if os.Getenv("GLIFT_SOAK") == "" {
		t.Skip("set GLIFT_SOAK to run the full soak storm")
	}
	runGliftload(t, soakArgs)
}

// syncBuffer collects daemon stderr; exec's copier goroutine writes while
// the test reads, so access is locked.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// freePort reserves a localhost address and releases it for gliftd to bind.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches gliftd and waits for /healthz.
func startDaemon(t *testing.T, addr string, extra ...string) (*exec.Cmd, *syncBuffer) {
	t.Helper()
	gd := tool(t, "gliftd")
	logs := new(syncBuffer)
	cmd := exec.Command(gd, append([]string{"-addr", addr}, extra...)...)
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, logs
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatalf("gliftd on %s never became healthy\n%s", addr, logs.String())
	return nil, nil
}

// submit posts one job with ?wait=1 and returns the status code and the
// decoded cache_hit field.
func submit(t *testing.T, addr, source string) (int, bool) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"source": source, "policy": map[string]any{"name": "p"},
	})
	resp, err := http.Post("http://"+addr+"/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		CacheHit bool `json:"cache_hit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("submit: decoding: %v", err)
	}
	return resp.StatusCode, st.CacheHit
}

// TestGliftdSIGTERMDrain pins the ordered-shutdown contract: on SIGTERM the
// daemon drains and exits zero within the drain bound, completed results
// are on disk, and a restarted daemon serves them from the recovered store.
func TestGliftdSIGTERMDrain(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	addr := freePort(t)
	cmd, logs := startDaemon(t, addr, "-store-dir", dir, "-workers", "2", "-drain-timeout", "10s")

	const src = "start: mov #0x0280, sp\nloop:   jmp loop\n"
	if code, _ := submit(t, addr, src); code != http.StatusOK {
		t.Fatalf("submission: code=%d", code)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("gliftd exited non-zero after SIGTERM: %v\n%s", err, logs.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("gliftd did not exit within the drain bound\n%s", logs.String())
	}
	for _, want := range []string{"shutting down", "stopped"} {
		if !strings.Contains(logs.String(), want) {
			t.Errorf("shutdown log missing %q:\n%s", want, logs.String())
		}
	}

	// The restarted daemon recovers the persisted result: same submission,
	// served as a hit without re-running the engine.
	cmd2, logs2 := startDaemon(t, freePortReuse(t, addr), "-store-dir", dir, "-workers", "2")
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	if !strings.Contains(logs2.String(), "result store recovered") ||
		!strings.Contains(logs2.String(), `"entries":1`) {
		t.Errorf("restart log missing recovery line:\n%s", logs2.String())
	}
	if code, hit := submit(t, addrOf(cmd2), src); code != http.StatusOK || !hit {
		t.Errorf("recovered submission: code=%d hit=%v, want 200/true", code, hit)
	}
}

// TestStreamLatencyGate drives the full telemetry loop against a real
// daemon: gliftload in streaming mode consumes every job's SSE stream to
// its verdict, the per-stage latency report lands within a generous p99
// budget, the NDJSON event dump validates under traceview, and — the
// negative half the gate exists for — an impossibly tight budget fails the
// run with a non-zero exit.
func TestStreamLatencyGate(t *testing.T) {
	addr := freePort(t)
	cmd, logs := startDaemon(t, addr, "-workers", "2", "-log-level", "debug")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	gl := tool(t, "gliftload")
	dump := filepath.Join(t.TempDir(), "events.ndjson")

	out, err := exec.Command(gl, "-addr", "http://"+addr, "-stream",
		"-n", "24", "-distinct", "6", "-c", "4", "-stream-trace", "4",
		"-p99-budget", "120s", "-stream-dump", dump).CombinedOutput()
	if err != nil {
		t.Fatalf("gliftload -stream: %v\n%s", err, out)
	}
	for _, want := range []string{"gliftload: OK", "p99 gate", "submit-to-verdict"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("stream report missing %q:\n%s", want, out)
		}
	}

	tv := tool(t, "traceview")
	tvOut, err := exec.Command(tv, dump).CombinedOutput()
	if err != nil {
		t.Fatalf("traceview rejected the stream dump: %v\n%s", err, tvOut)
	}
	if !strings.Contains(string(tvOut), "verdict") {
		t.Errorf("traceview summary missing verdict counts:\n%s", tvOut)
	}

	// The gate must bite: a 1ns budget cannot be met by any real run.
	out, err = exec.Command(gl, "-addr", "http://"+addr, "-stream",
		"-n", "6", "-distinct", "3", "-c", "2", "-p99-budget", "1ns").CombinedOutput()
	if err == nil {
		t.Fatalf("a 1ns p99 budget did not fail the run:\n%s", out)
	}
	if !strings.Contains(string(out), "exceeds budget") {
		t.Errorf("budget failure not reported:\n%s", out)
	}

	// Structured logs: per-job completion lines with job_id/verdict fields.
	if !strings.Contains(logs.String(), `"msg":"job completed"`) ||
		!strings.Contains(logs.String(), `"verdict":`) {
		t.Errorf("daemon logs missing structured job-completion lines:\n%.2000s", logs.String())
	}
}

// freePortReuse prefers rebinding the original address (clients keep their
// URLs); falls back to a fresh port if the OS hasn't released it yet.
func freePortReuse(t *testing.T, addr string) string {
	t.Helper()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return freePort(t)
	}
	l.Close()
	return addr
}

// addrOf recovers the -addr argument a daemon was started with.
func addrOf(cmd *exec.Cmd) string {
	for i, a := range cmd.Args {
		if a == "-addr" && i+1 < len(cmd.Args) {
			return cmd.Args[i+1]
		}
	}
	return ""
}
