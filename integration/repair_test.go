// Binary-level tests for the repair-job mode: the daemon must produce the
// same patched program as the secure430 CLI on the same input, and a repair
// result acknowledged before a kill -9 must be served byte-identically from
// the recovered store without re-running the engine.
package integration

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// repairBody is the HTTP form of the violSrc secure430 invocation: the CLI's
// -tainted-in 1 is port index 0 on the wire, -tainted-data 0x0400:0x0800 is
// the policy range, and -tainted-code tstart:tend moves into the repair
// stanza (symbolic, re-resolved per round as masks shift the code).
func repairBody(t *testing.T) []byte {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"source": violSrc,
		"mode":   "repair",
		"policy": map[string]any{
			"name":             "secure430",
			"tainted_in_ports": []int{0},
			"tainted_data":     []map[string]any{{"lo": 0x0400, "hi": 0x0800}},
		},
		"repair": map[string]any{"tainted_code": []string{"tstart:tend"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// submitRepair posts the repair job with ?wait=1 and returns the status
// code, the cache_hit flag, and the raw repair payload bytes.
func submitRepair(t *testing.T, addr string) (int, bool, json.RawMessage) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/jobs?wait=1", "application/json",
		bytes.NewReader(repairBody(t)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		CacheHit bool            `json:"cache_hit"`
		Repair   json.RawMessage `json:"repair"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("submit: decoding: %v", err)
	}
	return resp.StatusCode, st.CacheHit, st.Repair
}

// engineRuns reads the engine_runs counter from /metrics.json.
func engineRuns(t *testing.T, addr string) int64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var m struct {
		EngineRuns int64 `json:"engine_runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics: decoding: %v", err)
	}
	return m.EngineRuns
}

// normalizeJSON reparses a JSON document and re-emits it with the volatile
// wall-clock/memory stats zeroed, so CLI stdout and a nested daemon field
// compare structurally rather than by indentation.
func normalizeJSON(t *testing.T, raw []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("normalize: %v\n%s", err, raw)
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return volatileStats.ReplaceAllString(string(out), `"$1": 0`)
}

// TestRepairDaemonMatchesSecure430: a gliftd repair job over HTTP and a
// secure430 run on the same source must agree byte-for-byte — the patched
// assembly the daemon returns equals the -o file, and the embedded final
// report equals the -json document modulo wall-clock stats.
func TestRepairDaemonMatchesSecure430(t *testing.T) {
	sc := tool(t, "secure430")
	viol := writeSrc(t, "viol.s43", violSrc)
	fixed := filepath.Join(t.TempDir(), "fixed.s43")

	code, cliJSON := run(t, sc, append(append([]string{"-json", "-o", fixed}, violFlags...), viol)...)
	if code != 0 {
		t.Fatalf("secure430: exit %d, want 0 after masking", code)
	}
	fixedBytes, err := os.ReadFile(fixed)
	if err != nil {
		t.Fatal(err)
	}

	addr := freePort(t)
	cmd, logs := startDaemon(t, addr, "-workers", "2")
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	httpCode, hit, repairRaw := submitRepair(t, addr)
	if httpCode != http.StatusOK || hit {
		t.Fatalf("repair job: code=%d hit=%v, want 200/false\n%s", httpCode, hit, logs.String())
	}
	var rj struct {
		PatchedAsm string          `json:"patched_asm"`
		Report     json.RawMessage `json:"report"`
	}
	if err := json.Unmarshal(repairRaw, &rj); err != nil {
		t.Fatalf("repair payload: %v\n%s", err, repairRaw)
	}
	if rj.PatchedAsm != string(fixedBytes) {
		t.Errorf("daemon patched assembly differs from secure430 -o:\n--- daemon ---\n%s\n--- secure430 ---\n%s",
			rj.PatchedAsm, fixedBytes)
	}
	if got, want := normalizeJSON(t, rj.Report), normalizeJSON(t, []byte(cliJSON)); got != want {
		t.Errorf("daemon final report differs from secure430 -json:\n--- daemon ---\n%s\n--- secure430 ---\n%s",
			got, want)
	}
}

// TestRepairKill9Recovery: a repair result acknowledged with 200 survives a
// kill -9 — the restarted daemon recovers it from the store and serves the
// identical bytes as a cache hit with zero engine re-runs.
func TestRepairKill9Recovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	addr := freePort(t)
	cmd, _ := startDaemon(t, addr, "-store-dir", dir, "-workers", "2")
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	code, hit, first := submitRepair(t, addr)
	if code != http.StatusOK || hit {
		t.Fatalf("first submission: code=%d hit=%v, want 200/false", code, hit)
	}
	if len(first) == 0 {
		t.Fatal("first submission returned no repair payload")
	}

	// The 200 is the durability acknowledgement: SIGKILL leaves no chance
	// to flush anything that is not already on disk.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	cmd2, logs2 := startDaemon(t, freePortReuse(t, addr), "-store-dir", dir, "-workers", "2")
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	if !strings.Contains(logs2.String(), "result store recovered") ||
		!strings.Contains(logs2.String(), `"entries":1`) {
		t.Errorf("restart log missing recovery line:\n%s", logs2.String())
	}

	code, hit, second := submitRepair(t, addrOf(cmd2))
	if code != http.StatusOK || !hit {
		t.Fatalf("recovered submission: code=%d hit=%v, want 200/true\n%s", code, hit, logs2.String())
	}
	if !bytes.Equal(first, second) {
		t.Errorf("recovered repair payload differs from the pre-kill bytes:\n--- before ---\n%s\n--- after ---\n%s",
			first, second)
	}
	if n := engineRuns(t, addrOf(cmd2)); n != 0 {
		t.Errorf("engine ran %d times after recovery, want 0 (store hit only)", n)
	}

	// Paranoia: the hit is not an in-memory artifact of this process — a
	// second restart recovers and serves the same bytes again.
	cmd2.Process.Kill()
	cmd2.Wait()
	time.Sleep(50 * time.Millisecond)
	cmd3, _ := startDaemon(t, freePortReuse(t, addrOf(cmd2)), "-store-dir", dir, "-workers", "2")
	defer func() {
		cmd3.Process.Kill()
		cmd3.Wait()
	}()
	code, hit, third := submitRepair(t, addrOf(cmd3))
	if code != http.StatusOK || !hit || !bytes.Equal(first, third) {
		t.Errorf("second recovery: code=%d hit=%v equal=%v, want 200/true/true",
			code, hit, bytes.Equal(first, third))
	}
}
