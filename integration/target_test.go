package integration

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// The rv32 smoke programs mirror internal/rv32's benchmark suite: a
// straight-line tainted task that must verify, and a branchy program whose
// store address is steered by a tainted sample (a C2 memory escape). They
// run here through the BUILT binaries and a LIVE daemon — the end-to-end
// proof that the second target is reachable from the outside, not just
// from unit tests.

const rv32VerifiedSrc = `
start:  li x8, 0x0010        # P1 input port
        li x9, 0x0e00        # tainted partition base
        li x10, 0x0016       # P2 output port
        lh x5, 0(x8)
        lh x6, 0(x8)
        add x7, x5, x6
        sh x7, 0(x9)
        lh x4, 0(x9)
        sh x4, 0(x10)
done:   j done
`

const rv32LeakSrc = `
start:  li x8, 0x0010        # P1 input port
        li x9, 0x0e00        # tainted partition base
        li x11, 0x0800       # untainted RAM
        lh x5, 0(x8)
        beq x5, x0, safe
        sh x5, 0(x11)        # tainted store escaping the partition
safe:   sh x5, 0(x9)
done:   j done
`

// rv32ViolFlags is the Section 7 policy transposed to the rv32 memory map.
var rv32ViolFlags = []string{
	"-target", "rv32",
	"-tainted-in", "1",
	"-tainted-out", "2",
	"-tainted-code", "0x4000:0x4400",
	"-tainted-data", "0x0e00:0x1000",
}

// TestGliftcheckTargetRV32 pins the CLI surface of the target registry:
// the rv32 core analyzes end to end with the same fail-closed exit-code
// contract, and an unknown target is a usage error.
func TestGliftcheckTargetRV32(t *testing.T) {
	gc := tool(t, "gliftcheck")
	clean := writeSrc(t, "clean.s", rv32VerifiedSrc)
	leak := writeSrc(t, "leak.s", rv32LeakSrc)

	if code, out := run(t, gc, append(append([]string{}, rv32ViolFlags...), clean)...); code != 0 {
		t.Errorf("verified rv32 program: exit %d\n%s", code, out)
	}
	code, out := run(t, gc, append(append([]string{}, rv32ViolFlags...), leak)...)
	if code != 1 {
		t.Errorf("leaking rv32 program: exit %d, want 1", code)
	}
	if !strings.Contains(out, "C2-memory-escape") {
		t.Errorf("leak report misses the C2 escape:\n%s", out)
	}
	// msp430 assembly under the rv32 assembler is a usage error, as is an
	// unregistered target name.
	if code, _ := run(t, gc, "-target", "rv32", writeSrc(t, "m.s43", cleanSrc)); code != 2 {
		t.Errorf("msp430 source as rv32: exit %d, want 2", code)
	}
	if code, _ := run(t, gc, "-target", "z80", clean); code != 2 {
		t.Errorf("unknown target: exit %d, want 2", code)
	}
}

// TestSecure430TargetRejectsRV32: the repair pipeline is msp430-only; the
// CLI must refuse analysis-only targets up front instead of silently
// repairing on the wrong core.
func TestSecure430TargetRejectsRV32(t *testing.T) {
	sc := tool(t, "secure430")
	src := writeSrc(t, "leak.s", rv32LeakSrc)
	if code, _ := run(t, sc, "-target", "rv32", src); code != 2 {
		t.Errorf("secure430 -target rv32: exit %d, want 2 (analysis-only target)", code)
	}
}

// postJob submits one job to a live daemon and returns the HTTP status and
// raw response body.
func postJob(t *testing.T, addr string, req map[string]any) (int, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post("http://"+addr+"/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// rv32JobRequest is the daemon wire form of the CLI policy above.
func rv32JobRequest(source string) map[string]any {
	return map[string]any{
		"target": "rv32",
		"source": source,
		"policy": map[string]any{
			"name":              "rv32-smoke",
			"tainted_in_ports":  []int{0},
			"tainted_out_ports": []int{1},
			"tainted_code":      []map[string]any{{"lo": 0x4000, "hi": 0x4400}},
			"tainted_data":      []map[string]any{{"lo": 0x0e00, "hi": 0x1000}},
		},
	}
}

// TestGliftdTargetRV32 drives the rv32 target through a live gliftd: both
// smoke verdicts over HTTP, honest rejection of rv32 repair jobs, and a
// 400 naming the valid set for unknown targets.
func TestGliftdTargetRV32(t *testing.T) {
	addr := freePort(t)
	cmd, logs := startDaemon(t, addr, "-workers", "2")
	defer cmd.Process.Kill()

	var st struct {
		Verdict string `json:"verdict"`
	}
	code, raw := postJob(t, addr, rv32JobRequest(rv32VerifiedSrc))
	if code != http.StatusOK {
		t.Fatalf("verified job: status %d: %s\n%s", code, raw, logs.String())
	}
	if json.Unmarshal(raw, &st); st.Verdict != "verified" {
		t.Errorf("verified job: verdict %q, want verified", st.Verdict)
	}
	// Completed jobs map verdicts onto statuses: violations → 409.
	code, raw = postJob(t, addr, rv32JobRequest(rv32LeakSrc))
	if code != http.StatusConflict {
		t.Fatalf("leaking job: status %d, want 409: %s", code, raw)
	}
	if json.Unmarshal(raw, &st); st.Verdict != "violations" {
		t.Errorf("leaking job: verdict %q, want violations", st.Verdict)
	}

	req := rv32JobRequest(rv32LeakSrc)
	req["mode"] = "repair"
	if code, raw = postJob(t, addr, req); code != http.StatusBadRequest {
		t.Errorf("rv32 repair job: status %d, want 400: %s", code, raw)
	} else if !strings.Contains(string(raw), "msp430") {
		t.Errorf("rv32 repair rejection does not explain the msp430-only constraint: %s", raw)
	}
	req = rv32JobRequest(rv32VerifiedSrc)
	req["target"] = "z80"
	if code, raw = postJob(t, addr, req); code != http.StatusBadRequest {
		t.Errorf("unknown target: status %d, want 400: %s", code, raw)
	} else if !strings.Contains(string(raw), "rv32") || !strings.Contains(string(raw), "msp430") {
		t.Errorf("unknown-target rejection does not list the valid set: %s", raw)
	}
}
