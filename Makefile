GO ?= go

.PHONY: check build fmt vet test race fault serve clean

# check is the CI gate: formatting, vet, build, and the full suite under
# the race detector (the engine itself is single-threaded, but bench
# fan-out, the service and the CLIs are not).
check: fmt vet build race

build:
	$(GO) build ./...

# fmt fails on unformatted files (the same gate CI runs).
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The glift suite explores full benchmark binaries; under the race
# detector it outgrows go test's default 10m per-package timeout.
TEST_TIMEOUT ?= 45m

test:
	$(GO) test -timeout $(TEST_TIMEOUT) ./...

race:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./...

# fault runs just the fail-closed surface: runtime budgets/cancellation
# and the fault-injection matrix.
fault:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/glift ./internal/fault

# serve builds and launches the analysis daemon (see README "Running as
# a service").
GLIFTD_ADDR ?= :8430
serve:
	$(GO) build -o bin/gliftd ./cmd/gliftd
	./bin/gliftd -addr $(GLIFTD_ADDR)

clean:
	$(GO) clean ./...
	rm -rf bin
