GO ?= go

.PHONY: check build vet test race fault clean

# check is the CI gate: vet, build, and the full suite under the race
# detector (the engine itself is single-threaded, but bench fan-out and
# the CLIs are not).
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The glift suite explores full benchmark binaries; under the race
# detector it outgrows go test's default 10m per-package timeout.
TEST_TIMEOUT ?= 45m

test:
	$(GO) test -timeout $(TEST_TIMEOUT) ./...

race:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./...

# fault runs just the fail-closed surface: runtime budgets/cancellation
# and the fault-injection matrix.
fault:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/glift ./internal/fault

clean:
	$(GO) clean ./...
