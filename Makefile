GO ?= go

.PHONY: check build fmt vet test race race-observability differential backend-differential repair-differential target-differential fault trace bench-json bench-check serve soak stream clean

# check is the CI gate: formatting, vet, build, the full suite under the
# race detector (the engine itself is single-threaded, but bench fan-out,
# the service and the CLIs are not), the repair differential, and the
# target differential.
check: fmt vet build race repair-differential target-differential

build:
	$(GO) build ./...

# fmt fails on unformatted files (the same gate CI runs).
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The glift suite explores full benchmark binaries; under the race
# detector it outgrows go test's default 10m per-package timeout.
TEST_TIMEOUT ?= 45m

test:
	$(GO) test -timeout $(TEST_TIMEOUT) ./...

race:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./...

# race-observability covers just the concurrency-sensitive observability
# surface: the metrics registry, the service that feeds it, and the engine
# hooks behind both.
race-observability:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/obs ./internal/service ./internal/glift

# differential runs the equivalence suite under the race detector: every
# scaffold benchmark swept over (backend, workers) configurations must
# produce byte-identical reports, plus the table-contention stress test and
# the seeded program fuzzer (see DESIGN.md "Parallel exploration" and
# "Evaluation backends").
differential:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/glift \
		-run 'TestDifferential|TestTableContention|TestParallel|TestFuzz'

# backend-differential isolates the evaluation-backend contract: the
# randomized interpreter/compiled/bitslice equivalence tests in internal/sim
# (including the lane-packed BatchBackend sweep), the scaffold-benchmark
# backend sweep with bitsliced speculation lanes, and the faulted-system
# agreement checks (sequential and batched), all under the race detector.
backend-differential:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/sim \
		-run 'TestBackend|TestParseBackend|TestBitslice|TestBatch'
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/glift \
		-run 'TestDifferential|TestFuzz'
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/fault \
		-run 'TestFaultBackendsAgree|TestFaultBatch'

# repair-differential pins the repair-job contract under the race detector:
# the shared round loop and its golden wire shape, the transform property
# corpus (mask idempotence, partition confinement, PC round-trips), every
# scaffold benchmark through gliftd-vs-reference byte equality including the
# workers × backend × spec-lanes knob sweep that justifies excluding those
# knobs from the repair cache key, and the binary-level secure430-vs-daemon
# and kill -9 recovery tests (see DESIGN.md "Repair as a service").
repair-differential:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/repair ./internal/transform
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/service -run 'TestRepair'
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./integration -run 'TestRepair'

# target-differential pins the Target abstraction's two contracts, under
# the race detector. First, refactor safety: every msp430 scaffold
# benchmark's report must stay byte-identical to the committed golden
# digests captured before the Target extraction (internal/glift
# testdata/msp430_report_digests.json). Second, the rv32 target end to
# end: the gate-level core locked step for step against its behavioural
# interpreter oracle (handwritten + seeded random corpus), the registry
# and per-target job-key separation in the service (identical programs on
# different targets never coalesce; repair honestly rejected off msp430),
# and the rv32 smoke workloads through the built gliftcheck binary and a
# live gliftd daemon.
target-differential:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/glift -run 'TestGoldenReportDigests'
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/target ./internal/rv32
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/service \
		-run 'TestTargetsDoNotCoalesce|TestJobKeySeparatesTargets|TestUnknownTargetRejected|TestRepairRejectsAnalysisOnlyTarget|TestImageOutsideTargetROMRejected'
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./integration \
		-run 'TestGliftcheckTargetRV32|TestSecure430TargetRejectsRV32|TestGliftdTargetRV32'

# fault runs just the fail-closed surface: runtime budgets/cancellation
# and the fault-injection matrix.
fault:
	$(GO) test -race -timeout $(TEST_TIMEOUT) ./internal/glift ./internal/fault

# trace runs a sample violating benchmark under gliftcheck -trace and
# validates the resulting Chrome trace with traceview. gliftcheck exits 1
# on the (expected) violations verdict; only exit codes > 1 are failures.
trace:
	$(GO) build -o bin/gliftcheck ./cmd/gliftcheck
	$(GO) build -o bin/traceview ./cmd/traceview
	@mkdir -p bin
	@printf 'start:  jmp tstart\ntstart: mov &0x0020, r15\n        mov #0x0200, r14\n        add r15, r14\n        mov #500, 0(r14)\ndone:   jmp done\ntend:   nop\n' > bin/trace-sample.s43
	@./bin/gliftcheck -tainted-in 1 -tainted-code tstart:tend -tainted-data 0x0400:0x0800 \
		-trace bin/trace-sample.json bin/trace-sample.s43 > /dev/null; st=$$?; \
		if [ $$st -gt 1 ]; then echo "gliftcheck failed ($$st)" >&2; exit $$st; fi
	./bin/traceview bin/trace-sample.json

# bench-json regenerates the committed throughput baselines: BENCH_1.json
# (cycles/sec, peak table size, peak memory and wall time for every scaffold
# benchmark per backend at Workers=1 and Workers=4, plus per-backend
# machine-speed calibration probes) and BENCH_2.json (the batched
# fault-campaign lane-count probes: aggregate throughput and speedup of
# fault.RunBatch at 1/8/64 lanes over sequential fault.Run).
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_1.json
	$(GO) run ./cmd/benchjson -fault-campaign -o BENCH_2.json

# bench-check re-measures and fails when sequential (Workers=1) throughput,
# normalized by the matching backend's calibration probe, regressed more
# than 20% against the committed baseline for any backend — or when a
# batched fault-campaign speedup ratio regressed more than 20%.
bench-check:
	$(GO) run ./cmd/benchjson -workers 1 -compare BENCH_1.json -threshold 0.20
	$(GO) run ./cmd/benchjson -fault-campaign -compare BENCH_2.json -threshold 0.20

# soak runs the chaos harness storm (gliftload -chaos: kill -9 mid-write,
# disk-full store, injected 503s) through the integration suite under the
# race detector — the daemon binaries are race-instrumented too — and fails
# on any integrity violation: a torn record served, a lost fsynced result,
# or a verdict differing from a cold run (see DESIGN.md "Durability &
# admission"). The streaming latency gate rides along: gliftload -stream
# consumes every job's SSE event stream and fails the job when the
# submit-to-verdict p99 exceeds its budget.
soak:
	GLIFT_SOAK=1 $(GO) test -race -timeout $(TEST_TIMEOUT) ./integration \
		-run 'TestChaos|TestGliftdSIGTERMDrain|TestStreamLatencyGate' -v

# stream demonstrates the live-telemetry loop end to end on a throwaway
# daemon: gliftload in streaming mode consumes each job's SSE stream to its
# verdict, reports per-stage p50/p90/p99 latencies, enforces a p99 budget,
# and the NDJSON event dump is validated by traceview.
stream:
	$(GO) build -o bin/gliftd ./cmd/gliftd
	$(GO) build -o bin/gliftload ./cmd/gliftload
	$(GO) build -o bin/traceview ./cmd/traceview
	@rm -f bin/stream-events.ndjson
	./bin/gliftd -addr 127.0.0.1:8437 -workers 2 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	for i in $$(seq 1 100); do \
		curl -fsS -o /dev/null http://127.0.0.1:8437/healthz 2>/dev/null && break; sleep 0.1; \
	done; \
	./bin/gliftload -addr http://127.0.0.1:8437 -stream -n 24 -distinct 6 -c 4 \
		-stream-trace 4 -p99-budget 60s -stream-dump bin/stream-events.ndjson && \
	./bin/traceview bin/stream-events.ndjson

# serve builds and launches the analysis daemon (see README "Running as
# a service").
GLIFTD_ADDR ?= :8430
serve:
	$(GO) build -o bin/gliftd ./cmd/gliftd
	./bin/gliftd -addr $(GLIFTD_ADDR)

clean:
	$(GO) clean ./...
	rm -rf bin
