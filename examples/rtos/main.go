// RTOS runs the Section 7.3 system-level use case: a round-robin scheduler
// with a trusted task (div) and an untrusted task (binSearch). The analysis
// proves that, after the software modifications, no information flows cross
// the tasks and no task can affect the scheduling — at sub-1% overhead.
//
//	go run ./examples/rtos
package main

import (
	"fmt"
	"log"

	"repro/internal/glift"
	"repro/internal/rtos"
)

func main() {
	uc, err := rtos.Run(nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("unprotected system (FreeRTOS-style scheduler + div + binSearch):")
	fmt.Printf("  %d violations, conditions %v\n",
		len(uc.UnprotectedReport.Violations), uc.UnprotectedReport.ViolatedConditions())
	if len(uc.UnprotectedReport.ByKind(glift.C1TaintedState)) > 0 {
		fmt.Println("  -> the trusted task and the scheduler become untrusted after binSearch runs")
	}
	fmt.Printf("  root-cause analysis identified %d violating store site(s) to mask\n", uc.MaskedStores)

	fmt.Println("\nprotected system (masked stores + watchdog-scheduled untrusted slice):")
	if uc.ProtectedReport.Secure() {
		fmt.Println("  SECURE: no cross-task flows; the scheduling cannot be affected by any task")
	} else {
		fmt.Printf("  violations remain: %v\n", uc.ProtectedReport.Violations)
	}

	fmt.Printf("\nscheduling round: %d -> %d cycles, overhead %.2f%% (paper: 0.83%%)\n",
		uc.UnprotectedRound, uc.ProtectedRound, uc.OverheadPercent())
}
