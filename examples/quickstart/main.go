// Quickstart: assemble a small IoT application, define an information flow
// policy, run application-specific gate-level information flow tracking on
// the gate-level microcontroller, and print the verdict.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/asm"
	"repro/internal/glift"
)

// A sensor task: read a sample from the untrusted port P1, smooth it, and
// publish it on the port the policy allows untrusted data to use (P2).
const app = `
.equ P1IN, 0x0020           ; untrusted sensor input
.equ P2OUT, 0x0026          ; untrusted network output

start:  jmp task
task_done:
        jmp start

task:                        ; ---- the untrusted task ----
        mov #0x0400, r4      ; its data partition
        mov #8, r10
gather: mov &P1IN, r5
        mov r5, 0(r4)
        incd r4
        dec r10
        jnz gather
        mov #0x0400, r4      ; average the 8 samples (branch-free)
        clr r6
        mov #8, r10
sum:    add @r4+, r6
        dec r10
        jnz sum
        rra r6
        rra r6
        rra r6
        mov r6, &P2OUT
        clr r4               ; register/flag hygiene: leave no tainted
        clr r5               ; processor state for the trusted code
        clr r6
        mov #0, sr
        jmp task_done
task_end: nop
`

func main() {
	img, err := asm.AssembleSource(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d words, entry %#04x\n", img.SizeWords(), img.Entry)

	policy := &glift.Policy{
		Name:            "integrity",
		TaintedInPorts:  []int{0}, // P1 carries untrusted data
		TaintedOutPorts: []int{1}, // untrusted data may leave via P2
		TaintedCode: []glift.AddrRange{{
			Lo: img.MustSymbol("task"),
			Hi: img.MustSymbol("task_end"),
		}},
		TaintedData: []glift.AddrRange{{Lo: 0x0400, Hi: 0x0800}},
	}

	report, err := glift.Analyze(img, policy, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d cycles over %d paths (%d forks, %d prunes) in %s\n",
		report.Stats.Cycles, report.Stats.Paths, report.Stats.Forks, report.Stats.Prunes,
		time.Duration(report.Stats.WallNanos).Round(time.Microsecond))

	if report.Secure() {
		fmt.Println("VERDICT: secure — no possible execution of this application can violate the policy")
		fmt.Println("         on this commodity processor (no hardware changes, no software changes).")
		return
	}
	fmt.Printf("VERDICT: %d potential violations:\n", len(report.Violations))
	for _, v := range report.Violations {
		fmt.Println("  ", v)
	}
}
