// Watchdogdemo reproduces Figure 8: a tainted task whose control flow
// depends on untrusted input taints the program counter; without the
// watchdog the PC never becomes untainted again and every later execution
// of trusted system code is compromised. Arming the watchdog from untainted
// code deterministically bounds the task and recovers the pipeline with an
// untainted power-on reset.
//
//	go run ./examples/watchdogdemo
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/transform"
)

const unprotected = `
.equ P1IN, 0x0020
start:  jmp task
task_done:
        jmp start            ; trusted code, reached with a tainted PC
task:   mov &P1IN, r10       ; untrusted input
        and #3, r10
loop:   nop
        dec r10
        jnz loop             ; control flow depends on untrusted data
        jmp task_done
task_end: nop
`

const protected = `
.equ P1IN, 0x0020
.equ WDTCTL, 0x0120
start:  mov #0x5a03, &WDTCTL ; trusted code arms the 64-cycle bound
        jmp task
task:   mov &P1IN, r10
        and #3, r10
loop:   nop
        dec r10
        jnz loop
idle:   jmp idle             ; pad until the watchdog power-on reset
task_end: nop
`

func analyze(name, src string) *glift.Report {
	img, err := asm.AssembleSource(src)
	if err != nil {
		log.Fatal(err)
	}
	pol := &glift.Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedCode: []glift.AddrRange{{
			Lo: img.MustSymbol("task"), Hi: img.MustSymbol("task_end"),
		}},
		TaintedData: []glift.AddrRange{{Lo: 0x0400, Hi: 0x0800}},
	}
	rep, err := glift.Analyze(img, pol, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d violations\n", name, len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Println("  ", v)
	}
	if rep.NeedsWatchdog() {
		plan := transform.PlanWatchdog(40)
		fmt.Printf("   -> tainted control flow: bound the task with the watchdog "+
			"(%d slice(s) of %d cycles, WDTCTL=%#04x)\n",
			plan.Slices, plan.IntervalCycles, plan.WDTCTLValue())
	}
	return rep
}

func main() {
	fmt.Println("Figure 8, left: unprotected tainted task")
	analyze("unprotected", unprotected)

	fmt.Println("\nFigure 8, right: watchdog-bounded tainted task")
	rep := analyze("protected", protected)
	if rep.Secure() {
		fmt.Println("   SECURE: the watchdog reset recovers an untainted PC before trusted code runs")
	}
}
