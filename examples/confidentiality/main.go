// Confidentiality demonstrates the second taint dimension of the paper's
// non-interference policy (Section 4.2): *secret* data must never reach a
// *non-secret* output. A device holding a key in memory is analyzed twice —
// a leaky firmware that exfiltrates key-derived data out the debug port,
// and a contained firmware that keeps the key inside its secret region and
// secret-allowed channel.
//
//	go run ./examples/confidentiality
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/glift"
)

const leaky = `
.equ KEY, 0x0400             ; the secret key region
.equ RADIO, 0x0026           ; P2OUT: secret-allowed channel
.equ DEBUG, 0x002e           ; P4OUT: non-secret debug port
start:  jmp task
task_done: jmp start
task:   mov &KEY, r5
        xor &KEY+2, r5
        mov r5, &RADIO       ; fine: the policy allows this channel
        mov r5, &DEBUG       ; LEAK: key-derived data on the debug port
        jmp task_done
task_end: nop
`

const contained = `
.equ KEY, 0x0400
.equ RADIO, 0x0026
.equ DEBUG, 0x002e
start:  jmp task
task_done:
        mov #1, &DEBUG       ; heartbeat from NON-secret code: condition 5
        jmp start            ; forbids the secret task touching this port
task:   mov &KEY, r5
        xor &KEY+2, r5
        mov r5, &RADIO
        mov r5, &KEY+16      ; scratch stays inside the secret region
        clr r5               ; hygiene before returning to non-secret code
        mov #0, sr
        jmp task_done
task_end: nop
`

func analyze(name, src string) {
	img, err := asm.AssembleSource(src)
	if err != nil {
		log.Fatal(err)
	}
	pol := &glift.Policy{
		Name:                 "confidentiality",
		TaintedData:          []glift.AddrRange{{Lo: 0x0400, Hi: 0x0420}},
		InitiallyTaintedData: []glift.AddrRange{{Lo: 0x0400, Hi: 0x0420}}, // the key is secret from cycle 0
		TaintedOutPorts:      []int{1},                                    // the radio may carry secrets
		TaintedCode: []glift.AddrRange{{
			Lo: img.MustSymbol("task"), Hi: img.MustSymbol("task_end"),
		}},
	}
	rep, err := glift.Analyze(img, pol, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s firmware: ", name)
	if rep.Secure() {
		fmt.Println("SECURE — no possible execution can move secret data to a non-secret output")
		return
	}
	fmt.Printf("%d violations\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Println("  ", v)
	}
}

func main() {
	fmt.Println("confidentiality policy: secret = the key region; non-secret sink = the debug port")
	analyze("leaky", leaky)
	analyze("contained", contained)
}
