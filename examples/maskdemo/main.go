// Maskdemo walks the full Figure 9 / Figure 10 toolflow on a vulnerable
// application: analyze, identify the root-cause store, automatically insert
// the address mask, and re-verify.
//
//	go run ./examples/maskdemo
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/transform"
)

// The Figure 4 bug: an input read from the untrusted port is used as a
// store offset, so tainted data can land anywhere in memory.
const vulnerable = `
.equ P1IN, 0x0020
start:  jmp task
task_done:
        jmp start
task:   mov &P1IN, r15       ; offset = <P1>  (untrusted!)
        mov #0x0400, r14
        add r15, r14
        mov #500, 0(r14)     ; c[offset] = 500
        clr r14              ; register/flag hygiene before yielding
        clr r15
        mov #0, sr
        jmp task_done
task_end: nop
`

func main() {
	img, err := asm.AssembleSource(vulnerable)
	if err != nil {
		log.Fatal(err)
	}
	policy := &glift.Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedCode: []glift.AddrRange{{
			Lo: img.MustSymbol("task"), Hi: img.MustSymbol("task_end"),
		}},
		TaintedData: []glift.AddrRange{{Lo: 0x0400, Hi: 0x0800}},
	}

	fmt.Println("step 1: analyze the unmodified application")
	report, err := glift.Analyze(img, policy, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range report.Violations {
		fmt.Println("  ", v)
	}

	fmt.Println("\nstep 2: root-cause identification")
	storePCs := report.ViolatingStorePCs()
	flagged, err := transform.FlagStores(img, storePCs)
	if err != nil {
		log.Fatal(err)
	}
	for si := range flagged {
		fmt.Printf("   must mask: line %d: %s\n", img.Stmts[si].Line, img.Stmts[si].String())
	}

	fmt.Println("\nstep 3: automatic mask insertion")
	fixedStmts, n, err := transform.InsertMasks(img.Stmts, flagged, transform.Partition{Lo: 0x0400, Size: 0x0400})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d stores masked; modified task:\n", n)
	fmt.Println(asm.Print(fixedStmts))

	fmt.Println("step 4: re-verify the modified application")
	img2, err := asm.Assemble(fixedStmts)
	if err != nil {
		log.Fatal(err)
	}
	policy.TaintedCode = []glift.AddrRange{{
		Lo: img2.MustSymbol("task"), Hi: img2.MustSymbol("task_end"),
	}}
	report2, err := glift.Analyze(img2, policy, nil)
	if err != nil {
		log.Fatal(err)
	}
	if report2.Secure() {
		fmt.Println("   SECURE: the masked application guarantees the information flow policy")
	} else {
		fmt.Printf("   still %d violations: %v\n", len(report2.Violations), report2.Violations)
	}
}
