// Motivation runs the four Section 3 scenarios (Figures 2-5): the case for
// application-specific gate-level information flow security.
//
//	go run ./examples/motivation
package main

import (
	"fmt"
	"log"

	"repro/internal/motivate"
)

func main() {
	results, err := motivate.RunAll(nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		s := r.Scenario
		fmt.Printf("== Figure %d: %s ==\n", s.Figure, s.Name)
		switch {
		case s.Unknown:
			fmt.Printf("application-agnostic view: PC unknown=%v, %.0f%% of gates tainted, watchdog tainted=%v\n",
				r.Star.PCBecameUnknown, 100*r.Star.GateTaintFraction, r.Star.WatchdogTainted)
		case r.Secure:
			fmt.Println("analysis verdict: SECURE (no possible violations)")
		default:
			fmt.Printf("analysis verdict: %d violations found\n", len(r.Report.Violations))
			for _, v := range r.Report.Violations {
				fmt.Println("  ", v)
			}
		}
		fmt.Printf("paper's point: %s\n\n", s.Expect)
	}
}
