// experiments regenerates every table and figure of the paper's evaluation
// on this repository's gate-level substrate. Without flags it runs
// everything; individual artifacts can be selected.
//
// Usage:
//
//	experiments [-table N] [-fig N] [-usecase] [-starlogic] [-energy] [-ipc] [-all]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/energy"
	"repro/internal/glift"
	"repro/internal/logic"
	"repro/internal/mcu"
	"repro/internal/motivate"
	"repro/internal/rtos"
	"repro/internal/sim"
)

func main() {
	table := flag.Int("table", 0, "print one table (1-4)")
	fig := flag.Int("fig", 0, "print one figure (1, 2-5, 7, 8, 9)")
	usecase := flag.Bool("usecase", false, "run the Section 7.3 RTOS use case")
	starlogic := flag.Bool("starlogic", false, "run the *-logic baseline (Footnote 8)")
	energyF := flag.Bool("energy", false, "report energy overheads")
	ipc := flag.Bool("ipc", false, "report benchmark CPI")
	all := flag.Bool("all", false, "run everything")
	flag.Parse()

	any := *table != 0 || *fig != 0 || *usecase || *starlogic || *energyF || *ipc
	if !any {
		*all = true
	}
	if *all {
		for _, f := range []int{1, 2, 3, 4, 5, 7, 8, 9} {
			figure(f)
		}
		for _, t := range []int{1, 2, 3, 4} {
			printTable(t)
		}
		useCase()
		starLogic()
		energyReport()
		ipcReport()
		return
	}
	if *fig != 0 {
		figure(*fig)
	}
	if *table != 0 {
		printTable(*table)
	}
	if *usecase {
		useCase()
	}
	if *starlogic {
		starLogic()
	}
	if *energyF {
		energyReport()
	}
	if *ipc {
		ipcReport()
	}
}

// evaluations are shared across tables.
var evalCache []*bench.Evaluation

func evaluations() []*bench.Evaluation {
	if evalCache != nil {
		return evalCache
	}
	fmt.Fprintln(os.Stderr, "evaluating all benchmarks...")
	evs, err := bench.EvaluateAll(nil)
	if err != nil {
		fatal(err)
	}
	evalCache = evs
	return evalCache
}

func figure(n int) {
	switch n {
	case 1:
		fmt.Println("== Figure 1: GLIFT truth table for a NAND gate ==")
		fmt.Println("A AT B BT | O OT")
		for _, r := range logic.NANDTruthTable() {
			fmt.Printf("%d  %d %d  %d | %d  %d\n", r.A, r.AT, r.B, r.BT, r.O, r.OT)
		}
	case 2, 3, 4, 5:
		s := motivate.Scenarios()[n-2]
		fmt.Printf("== Figure %d: %s ==\n", n, s.Name)
		res, err := motivate.Run(s, nil)
		if err != nil {
			fatal(err)
		}
		if s.Unknown {
			fmt.Printf("*-logic view: PC unknown=%v, %.0f%% of gates tainted, watchdog tainted=%v\n",
				res.Star.PCBecameUnknown, 100*res.Star.GateTaintFraction, res.Star.WatchdogTainted)
		} else {
			fmt.Printf("analysis: secure=%v, %d violations\n", res.Secure, len(res.Report.Violations))
			for _, v := range res.Report.Violations {
				fmt.Printf("  %s\n", v)
			}
		}
		fmt.Printf("paper: %s\n\n", s.Expect)
	case 7:
		fmt.Println("== Figure 7: application-specific gate-level IFT execution tree ==")
		tree, err := glift.Figure7()
		if err != nil {
			fatal(err)
		}
		for _, r := range tree.Common {
			fmt.Println("  " + r.String())
		}
		fmt.Println(" left path (tainted reset):")
		for _, r := range tree.Left {
			fmt.Println("  " + r.String())
		}
		fmt.Println(" right path (untainted reset):")
		for _, r := range tree.Right {
			fmt.Println("  " + r.String())
		}
	case 8, 9:
		runFig89(n)
	default:
		fatal(fmt.Errorf("unknown figure %d", n))
	}
}

func runFig89(n int) {
	type variant struct {
		name   string
		src    string
		tcode  bool
		expect string
	}
	var vs []variant
	if n == 8 {
		fmt.Println("== Figure 8: untainted watchdog timer reset ==")
		vs = []variant{
			{"unprotected", `
start:  nop
tstart: mov #100, r10
loop:   nop
        nop
        dec r10
        jnz loop
        jmp start
tend:   nop
`, true, "once the PC is tainted it never becomes untainted again"},
			{"watchdog-protected", `
.equ WDTCTL, 0x0120
start:  mov #0x5a03, &WDTCTL
tstart: mov &0x0020, r10
        and #3, r10
loop:   nop
        dec r10
        jnz loop
spin:   jmp spin
tend:   nop
`, false, "each execution of the untainted code section has a trusted PC"},
		}
	} else {
		figure9()
		return
	}
	for _, v := range vs {
		rep, err := analyzeSrc(v.src, v.tcode)
		if err != nil {
			fatal(err)
		}
		fmt.Printf(" %s: %d violations", v.name, len(rep.Violations))
		if c := rep.ViolatedConditions(); len(c) > 0 {
			fmt.Printf(" (conditions %v)", c)
		}
		fmt.Printf("\n   paper: %s\n", v.expect)
	}
	fmt.Println()
}

// figure9 reproduces the memory-mask example by measuring the data-memory
// taint footprint of the unmasked and masked listings directly.
func figure9() {
	fmt.Println("== Figure 9: software masked addressing ==")
	run := func(name, src, expect string) {
		img, err := asmSource(src)
		if err != nil {
			fatal(err)
		}
		sys, err := mcu.NewSystem(glift.SharedDesign())
		if err != nil {
			fatal(err)
		}
		img.Place(func(a, w uint16) { sys.ROM.StoreWord(a, sim.ConcreteWord(w)) })
		sys.SetResetVector(img.Entry)
		sys.SetPortIn(0, sim.Word{XM: 0xffff, TT: 0xffff}) // tainted unknown input
		sys.PowerOn()
		for i := 0; i < 30; i++ {
			sys.Step()
		}
		inside := sys.RAM.TaintedBytes(0x0400, 0x0800)
		outside := sys.RAM.TaintedBytes(0x0200, 0x0400) + sys.RAM.TaintedBytes(0x0800, 0x0a00)
		fmt.Printf(" %s: %d tainted bytes inside the tainted partition, %d outside\n", name, inside, outside)
		fmt.Printf("   paper: %s\n", expect)
	}
	run("unmasked", `
start:  mov #4096, &0x0450
        mov #0x0449, r15
        mov.b #1, 0(r15)
        mov &0x0020, r15     ; read untrusted input
        mov #0x0200, r14
        add r15, r14
        mov #500, 0(r14)
        mov r15, &0x0400
done:   jmp done
`, "the store taints the whole data memory space")
	run("masked", `
start:  mov #4096, &0x0450
        mov #0x0449, r15
        mov.b #1, 0(r15)
        mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        and #0x03ff, r14
        bis #0x0400, r14
        mov #500, 0(r14)
        mov r15, &0x0400
done:   jmp done
`, "no untainted memory locations become tainted")
	fmt.Println()
}

func analyzeSrc(src string, taintCode bool) (*glift.Report, error) {
	img, err := asmSource(src)
	if err != nil {
		return nil, err
	}
	pol := &glift.Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedData:    []glift.AddrRange{{Lo: 0x0400, Hi: 0x0800}},
	}
	if taintCode {
		pol.TaintCodeWords = true
		pol.TaintedCode = []glift.AddrRange{{Lo: mustSym(img, "tstart"), Hi: mustSym(img, "tend")}}
	} else if _, ok := symbol(img, "tstart"); ok {
		pol.TaintedCode = []glift.AddrRange{{Lo: mustSym(img, "tstart"), Hi: mustSym(img, "tend")}}
	}
	return glift.Analyze(img, pol, nil)
}

func printTable(n int) {
	switch n {
	case 1:
		fmt.Println("== Table 1: benchmarks ==")
		fmt.Println("Embedded sensor benchmarks [34]:")
		for _, b := range bench.All() {
			if b.Suite == "sensor" {
				fmt.Printf("  %s", b.Name)
			}
		}
		fmt.Println("\nEEMBC embedded benchmarks [35]:")
		for _, b := range bench.All() {
			if b.Suite == "eembc" {
				fmt.Printf("  %s", b.Name)
			}
		}
		fmt.Println()
	case 2:
		rows, _ := bench.Tables(evaluations())
		fmt.Println("== Table 2: sufficient-condition violations before/after modification ==")
		fmt.Printf("%-10s | unmodified C1 C2 | modified C1 C2\n", "benchmark")
		for _, r := range rows {
			fmt.Printf("%-10s |      %s  %s      |      %s  %s\n",
				r.Name, check(r.UnmodC1), check(r.UnmodC2), check(r.ModC1), check(r.ModC2))
		}
	case 3:
		_, rows := bench.Tables(evaluations())
		fmt.Println("== Table 3: performance overhead (%) with and without application-specific analysis ==")
		fmt.Printf("%-10s | %9s %9s | paper: %9s %9s\n", "benchmark", "without", "with", "without", "with")
		for _, r := range rows {
			fmt.Printf("%-10s | %8.2f%% %8.2f%% | paper: %8.2f%% %8.2f%%\n",
				r.Name, r.Without, r.With, r.PaperWithout, r.PaperWith)
		}
		fmt.Printf("overhead reduction factor: %.2fx (paper: 3.3x)\n", bench.ReductionFactor(rows))
	case 4:
		fmt.Println("== Table 4: microarchitectural features in recent embedded processors ==")
		fmt.Printf("%-26s %-16s %s\n", "Processor", "BranchPredictor", "Cache")
		for _, p := range table4 {
			fmt.Printf("%-26s %-16s %s\n", p.name, yn(p.bp), yn(p.cache))
		}
	default:
		fatal(fmt.Errorf("unknown table %d", n))
	}
	fmt.Println()
}

var table4 = []struct {
	name      string
	bp, cache bool
}{
	{"ARM Cortex-M0", false, false},
	{"ARM Cortex-M3", true, false},
	{"Atmel ATxmega128A4", false, false},
	{"Freescale/NXP MC13224v", false, false},
	{"Intel Quark-D1000", true, true},
	{"Jennic/NXP JN5169", false, false},
	{"SiLab Si2012", false, false},
	{"TI MSP430", false, false},
}

func useCase() {
	fmt.Println("== Section 7.3: information flow secure scheduling ==")
	uc, err := rtos.Run(nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("unprotected: %d violations (conditions %v), %d violating stores identified\n",
		len(uc.UnprotectedReport.Violations), uc.UnprotectedReport.ViolatedConditions(), uc.MaskedStores)
	fmt.Printf("protected:   secure=%v\n", uc.ProtectedReport.Secure())
	fmt.Printf("round: %d -> %d cycles, overhead %.2f%% (paper: 0.83%%)\n\n",
		uc.UnprotectedRound, uc.ProtectedRound, uc.OverheadPercent())
}

func starLogic() {
	fmt.Println("== Footnote 8: *-logic on applications with tainted control dependences ==")
	for _, name := range []string{"binSearch", "div", "tHold"} {
		bt, err := bench.BuildUnmodified(bench.ByName(name))
		if err != nil {
			fatal(err)
		}
		rep, err := glift.StarLogic(bt.Img, bt.Policy, 64)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-10s: PC unknown=%v, %.0f%% of gates tainted, watchdog tainted=%v (paper: ~70%%, wdt tainted)\n",
			name, rep.PCBecameUnknown, 100*rep.GateTaintFraction, rep.WatchdogTainted)
	}
	fmt.Println()
}

func energyReport() {
	fmt.Println("== Energy overhead of analysis-guided protection ==")
	model := energy.Default
	var sum float64
	n := 0
	for _, ev := range evaluations() {
		if ev.WithMeasure == nil {
			fmt.Printf("%-10s: (multi-slice plan: cycle-bound model only)\n", ev.Bench.Name)
			continue
		}
		o := model.OverheadPercent(
			ev.UnmodMeasure.PeriodCycles, ev.UnmodMeasure.Toggles,
			ev.WithMeasure.PeriodCycles, ev.WithMeasure.Toggles)
		fmt.Printf("%-10s: %6.2f%%\n", ev.Bench.Name, o)
		sum += o
		n++
	}
	fmt.Printf("average: %.1f%% over %d benchmarks (paper: 15%% average)\n\n", sum/float64(n), n)
}

func ipcReport() {
	fmt.Println("== Benchmark CPI (paper: 1.25-1.39) ==")
	for _, ev := range evaluations() {
		st := ev.UnmodReport.Stats
		fmt.Printf("%-10s: CPI %.2f; analysis: %s in %s\n",
			ev.Bench.Name, ev.UnmodMeasure.CPI(), st, time.Duration(st.WallNanos).Round(time.Millisecond))
	}
	fmt.Println()
}

func check(b bool) string {
	if b {
		return "X"
	}
	return "-"
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
