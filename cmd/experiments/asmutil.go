package main

import "repro/internal/asm"

func asmSource(src string) (*asm.Image, error) { return asm.AssembleSource(src) }

func symbol(img *asm.Image, name string) (uint16, bool) { return img.Symbol(name) }

func mustSym(img *asm.Image, name string) uint16 { return img.MustSymbol(name) }
