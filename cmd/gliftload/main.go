// gliftload is the load and chaos harness for gliftd. It has two modes:
//
// Load mode (default) hammers a running daemon with a mixed corpus of
// verifying and violating programs and reports throughput and the
// response-code distribution:
//
//	gliftload -addr http://127.0.0.1:8430 -n 500 -c 16 -tenants 4
//
// Stream mode (-stream) submits without server-side wait and instead
// consumes each job's SSE event stream to its terminal verdict event,
// reporting per-stage latency quantiles (p50/p90/p99) from the verdict
// events' stage timings plus the client-observed submit-to-verdict total.
// With -p99-budget the run exits non-zero when the observed
// submit-to-verdict p99 exceeds the budget — the CI latency gate:
//
//	gliftload -addr http://127.0.0.1:8430 -stream -n 200 -p99-budget 2s
//
// Chaos mode (-chaos) spawns its own gliftd (-gliftd path to the binary)
// and proves the daemon's durability and admission invariants under induced
// faults, exiting non-zero on any integrity violation:
//
//	gliftload -chaos -gliftd ./gliftd -n 96 -kills 3
//
// Repair mode (-repair) is the CLI/daemon repair differential: every
// scaffold benchmark is run through the shared round loop in-process (the
// exact code cmd/secure430 executes) and submitted to the daemon as a
// repair job, and the two results must agree — byte-identical patched
// assembly, identical per-round counts, identical final report modulo
// wall-clock stats — with an identical resubmission served byte-identically
// from the cache. Targets a running daemon (-addr) or spawns its own
// (-gliftd), exiting non-zero on any divergence:
//
//	gliftload -repair -gliftd ./gliftd -c 4
//
// The three chaos phases, each checked against an in-process cold-run
// reference (report bytes normalized over stats.wall_ns/peak_mem_bytes,
// which measure the run, not the result):
//
//  1. kill -9: submitters ride through repeated SIGKILL + restart cycles
//     (store writes artificially slowed to widen the torn-write window).
//     Invariant: once a verdict is acknowledged, every later response for
//     that program — including across restarts — is byte-identical, and
//     after a final restart every acknowledged result is served from the
//     recovered store without re-running the engine. A torn or lost record
//     would break one of these.
//  2. disk-full: a store too small for any record degrades to memory-only
//     (put errors counted, zero entries) with verdicts unchanged.
//  3. 503 injection: with a percentage of submissions spuriously rejected,
//     the client's backoff discipline still lands every job, verdicts
//     unchanged.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/glift"
	"repro/internal/repair"
	"repro/internal/service"
	"repro/internal/service/client"
)

var (
	addr     = flag.String("addr", "", "load mode: base URL of a running gliftd (e.g. http://127.0.0.1:8430)")
	gliftd   = flag.String("gliftd", "", "chaos mode: path to the gliftd binary to spawn")
	nJobs    = flag.Int("n", 200, "total submissions")
	conc     = flag.Int("c", 8, "concurrent submitters")
	tenants  = flag.Int("tenants", 1, "distinct X-Tenant values to spread submissions across")
	distinct = flag.Int("distinct", 12, "distinct programs in the corpus")
	chaos    = flag.Bool("chaos", false, "run the chaos harness instead of plain load")
	kills    = flag.Int("kills", 3, "chaos: kill -9 + restart cycles during the submission storm")
	killGap  = flag.Duration("kill-interval", 250*time.Millisecond, "chaos: pause between kill cycles")
	storeDir = flag.String("store-dir", "", "chaos: store directory (default: a fresh temp dir)")
	verbose  = flag.Bool("v", false, "log every acknowledgment")

	repairMode = flag.Bool("repair", false, "repair mode: run the benchmark repair differential against the daemon")

	stream      = flag.Bool("stream", false, "stream mode: consume each job's SSE event stream to its verdict")
	p99Budget   = flag.Duration("p99-budget", 0, "stream mode: fail if submit-to-verdict p99 exceeds this (0: no gate)")
	streamDump  = flag.String("stream-dump", "", "stream mode: append every received event to this file as NDJSON")
	streamTrace = flag.Int("stream-trace", 0, "stream mode: request every N-th engine trace event per job (0: off)")
)

func main() {
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: gliftload [flags] (see -help)")
		os.Exit(2)
	}
	var err error
	switch {
	case *chaos:
		if *gliftd == "" {
			fmt.Fprintln(os.Stderr, "gliftload: -chaos requires -gliftd (path to the daemon binary)")
			os.Exit(2)
		}
		err = runChaos()
	case *repairMode:
		if *addr == "" && *gliftd == "" {
			fmt.Fprintln(os.Stderr, "gliftload: -repair requires -addr (running daemon) or -gliftd (binary to spawn)")
			os.Exit(2)
		}
		err = runRepair()
	case *addr != "" && *stream:
		err = runStream(*addr)
	case *addr != "":
		err = runLoad(*addr)
	default:
		fmt.Fprintln(os.Stderr, "gliftload: give -addr (load mode) or -chaos -gliftd (chaos mode)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gliftload: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("gliftload: OK")
}

// ---- corpus ----------------------------------------------------------------

// prog is one corpus entry: a distinct program plus its policy.
type prog struct {
	name string
	req  service.JobRequest
}

// corpus builds n distinct programs: ~2/3 verifying (distinct immediates),
// ~1/3 violating (the Figure 9 unmasked-store shape with distinct stored
// constants), so both verdict paths and both HTTP outcomes are exercised.
func corpus(n int) ([]prog, error) {
	progs := make([]prog, 0, n)
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			src := fmt.Sprintf(`
start:  jmp tstart
tstart: mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        mov #%d, 0(r14)
done:   jmp done
tend:   nop
`, 500+i)
			img, err := asm.AssembleSource(src)
			if err != nil {
				return nil, fmt.Errorf("corpus viol %d: %w", i, err)
			}
			progs = append(progs, prog{
				name: fmt.Sprintf("viol-%d", i),
				req: service.JobRequest{
					Source: src,
					Policy: service.PolicyRequest{
						Name:           fmt.Sprintf("viol-%d", i),
						TaintedInPorts: []int{0},
						TaintedCode:    []service.RangeRequest{{Lo: img.MustSymbol("tstart"), Hi: img.MustSymbol("tend")}},
						TaintedData:    []service.RangeRequest{{Lo: 0x0400, Hi: 0x0800}},
					},
				},
			})
			continue
		}
		progs = append(progs, prog{
			name: fmt.Sprintf("clean-%d", i),
			req: service.JobRequest{
				Source: fmt.Sprintf("start: mov #0x0280, sp\n        mov #%d, r10\nloop:   jmp loop\n", i+1),
				Policy: service.PolicyRequest{Name: fmt.Sprintf("clean-%d", i)},
			},
		})
	}
	return progs, nil
}

// normalize strips the run-measurement fields (wall time, peak memory) from
// a served report so independently produced runs of the same job compare
// equal; everything else in the report is deterministic and must match.
func normalize(raw json.RawMessage) ([]byte, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("empty report")
	}
	var rj glift.ReportJSON
	if err := json.Unmarshal(raw, &rj); err != nil {
		return nil, err
	}
	rj.Stats.WallNanos = 0
	rj.Stats.PeakMemBytes = 0
	return json.Marshal(rj)
}

// ---- load mode -------------------------------------------------------------

func runLoad(base string) error {
	progs, err := corpus(*distinct)
	if err != nil {
		return err
	}
	var codes sync.Map // int -> *atomic.Int64
	count := func(code int) {
		v, _ := codes.LoadOrStore(code, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}
	var next, attempts atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := client.New(client.Config{
				BaseURL: base,
				Tenant:  fmt.Sprintf("tenant-%d", w%*tenants),
			})
			for {
				i := int(next.Add(1)) - 1
				if i >= *nJobs {
					return
				}
				res, err := cl.Submit(context.Background(), &progs[i%len(progs)].req, true)
				if err != nil {
					count(-1)
					continue
				}
				attempts.Add(int64(res.Attempts))
				count(res.Code)
			}
		}(w)
	}
	wg.Wait()
	dur := time.Since(start)
	fmt.Printf("gliftload: %d jobs in %s (%.1f jobs/s, %d submitters, %d tenants)\n",
		*nJobs, dur.Round(time.Millisecond), float64(*nJobs)/dur.Seconds(), *conc, *tenants)
	codes.Range(func(k, v any) bool {
		if k.(int) == -1 {
			fmt.Printf("  gave up:  %d\n", v.(*atomic.Int64).Load())
		} else {
			fmt.Printf("  HTTP %d: %d\n", k, v.(*atomic.Int64).Load())
		}
		return true
	})
	fmt.Printf("  attempts: %d (%.2f per job)\n", attempts.Load(), float64(attempts.Load())/float64(*nJobs))
	return nil
}

// ---- stream mode -----------------------------------------------------------

// stageSamples accumulates latency samples per stage under one lock; the
// stream workers feed it, the final report drains it.
type stageSamples struct {
	mu      sync.Mutex
	samples map[string][]time.Duration
	events  map[string]int
	lost    uint64
}

func (s *stageSamples) add(stage string, d time.Duration) {
	s.mu.Lock()
	if s.samples == nil {
		s.samples = make(map[string][]time.Duration)
	}
	s.samples[stage] = append(s.samples[stage], d)
	s.mu.Unlock()
}

func (s *stageSamples) count(res *client.StreamResult) {
	s.mu.Lock()
	if s.events == nil {
		s.events = make(map[string]int)
	}
	for typ, n := range res.Events {
		s.events[typ] += n
	}
	s.lost += res.Lost
	s.mu.Unlock()
}

// quantile returns the q-th sample by the nearest-rank method (exact over
// the collected samples, not an estimate). sorted must be ascending.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// submitToVerdict is the synthetic stage for the client-observed total
// (submission POST to verdict event received) — the quantity the p99
// budget gates, because it is what a caller actually experiences.
const submitToVerdict = "submit-to-verdict"

func runStream(base string) error {
	progs, err := corpus(*distinct)
	if err != nil {
		return err
	}
	var dump *json.Encoder
	var dumpMu sync.Mutex
	if *streamDump != "" {
		f, err := os.OpenFile(*streamDump, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		dump = json.NewEncoder(f)
	}

	agg := &stageSamples{}
	var next, failures atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := client.New(client.Config{
				BaseURL: base,
				Tenant:  fmt.Sprintf("tenant-%d", w%*tenants),
			})
			for {
				i := int(next.Add(1)) - 1
				if i >= *nJobs {
					return
				}
				req := progs[i%len(progs)].req
				req.Options.StreamTrace = *streamTrace
				t0 := time.Now()
				res, err := cl.Submit(context.Background(), &req, false)
				if err != nil || res.Status.ID == "" {
					failures.Add(1)
					continue
				}
				var sink func(client.StreamEvent) error
				if dump != nil {
					sink = func(ev client.StreamEvent) error {
						dumpMu.Lock()
						defer dumpMu.Unlock()
						return dump.Encode(ev)
					}
				}
				sr, err := cl.StreamToVerdict(context.Background(), res.Status.ID, sink)
				if err != nil {
					failures.Add(1)
					continue
				}
				agg.add(submitToVerdict, time.Since(t0))
				agg.count(sr)
				st := sr.Verdict.Stages
				for stage, ns := range map[string]int64{
					service.StageQueueWait: st.QueueWaitNS,
					service.StageEngineRun: st.EngineRunNS,
					service.StagePersist:   st.PersistNS,
					service.StageCacheHit:  st.CacheHitNS,
				} {
					if ns > 0 {
						agg.add(stage, time.Duration(ns))
					}
				}
				if *verbose {
					total := 0
					for _, n := range sr.Events {
						total += n
					}
					fmt.Printf("  verdict %s: %s (%d events, %d lost)\n",
						sr.Verdict.ID, sr.Verdict.Verdict, total, sr.Lost)
				}
			}
		}(w)
	}
	wg.Wait()
	dur := time.Since(start)

	done := len(agg.samples[submitToVerdict])
	fmt.Printf("gliftload: stream: %d/%d jobs to verdict in %s (%.1f jobs/s, %d submitters)\n",
		done, *nJobs, dur.Round(time.Millisecond), float64(done)/dur.Seconds(), *conc)
	if n := failures.Load(); n > 0 {
		fmt.Printf("  failed:   %d\n", n)
	}
	fmt.Printf("  events:  ")
	for _, typ := range []string{service.EventState, service.EventProgress, service.EventTrace, service.EventGap, service.EventVerdict} {
		fmt.Printf(" %s=%d", typ, agg.events[typ])
	}
	fmt.Printf(" (lost %d)\n", agg.lost)
	stages := []string{service.StageQueueWait, service.StageEngineRun, service.StagePersist, service.StageCacheHit, submitToVerdict}
	var p99Total time.Duration
	for _, stage := range stages {
		samples := agg.samples[stage]
		if len(samples) == 0 {
			continue
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		p50, p90, p99 := quantile(samples, 0.50), quantile(samples, 0.90), quantile(samples, 0.99)
		fmt.Printf("  %-17s n=%-5d p50=%-10s p90=%-10s p99=%s\n",
			stage, len(samples), p50.Round(time.Microsecond), p90.Round(time.Microsecond), p99.Round(time.Microsecond))
		if stage == submitToVerdict {
			p99Total = p99
		}
	}
	if done == 0 {
		return fmt.Errorf("stream: no job ever reached its verdict")
	}
	if *p99Budget > 0 {
		if p99Total > *p99Budget {
			return fmt.Errorf("stream: submit-to-verdict p99 %s exceeds budget %s",
				p99Total.Round(time.Microsecond), *p99Budget)
		}
		fmt.Printf("gliftload: p99 gate: %s within budget %s\n", p99Total.Round(time.Microsecond), *p99Budget)
	}
	return nil
}

// ---- repair mode -----------------------------------------------------------

// repairProg is one repair-differential case: a benchmark system as a
// repair-job submission plus its name for reporting.
type repairProg struct {
	name string
	req  service.JobRequest
}

// repairCorpus builds a repair submission for every scaffold benchmark —
// the full unarmed system text under the evaluation policy, the tainted
// task range given symbolically so the loop re-resolves it each round.
func repairCorpus() []repairProg {
	var progs []repairProg
	for _, b := range bench.All() {
		progs = append(progs, repairProg{
			name: b.Name,
			req: service.JobRequest{
				Source: bench.Source(b),
				Mode:   "repair",
				Policy: service.PolicyRequest{
					Name:            "integrity",
					TaintedInPorts:  []int{0},
					TaintedOutPorts: []int{1},
					TaintedData:     []service.RangeRequest{{Lo: bench.PartLo, Hi: bench.PartLo + bench.PartSize}},
				},
				Repair: &service.RepairRequest{TaintedCode: []string{"task_start:task_end"}},
			},
		})
	}
	return progs
}

// repairReference runs the shared round loop in-process for one benchmark —
// the same call chain cmd/secure430 makes — and returns its wire form.
func repairReference(name string, req *service.JobRequest) (*repair.ResultJSON, error) {
	spec := &repair.Spec{
		Source: req.Source,
		Policy: glift.Policy{
			Name:            req.Policy.Name,
			TaintedInPorts:  req.Policy.TaintedInPorts,
			TaintedOutPorts: req.Policy.TaintedOutPorts,
			TaintedData:     []glift.AddrRange{{Lo: bench.PartLo, Hi: bench.PartLo + bench.PartSize}},
		},
		CodeRanges: req.Repair.TaintedCode,
		Options:    &glift.Options{Workers: 1},
	}
	res, err := repair.Run(context.Background(), spec)
	if err != nil {
		return nil, fmt.Errorf("reference %s: %w", name, err)
	}
	rj := res.JSON()
	return &rj, nil
}

// normalizeRepair strips the run-measurement fields from a repair payload so
// independently produced runs compare equal; everything else — patched
// assembly, per-round counts, overheads, the report — must match.
func normalizeRepair(raw json.RawMessage) ([]byte, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("empty repair payload")
	}
	var rj repair.ResultJSON
	if err := json.Unmarshal(raw, &rj); err != nil {
		return nil, err
	}
	rj.Report.Stats.WallNanos = 0
	rj.Report.Stats.PeakMemBytes = 0
	return json.Marshal(&rj)
}

func runRepair() error {
	base := *addr
	if base == "" {
		a, err := freeAddr()
		if err != nil {
			return err
		}
		dir, err := os.MkdirTemp("", "gliftload-repair-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		d := &daemon{bin: *gliftd, addr: a, args: []string{
			"-workers", "2", "-queue", "64", "-store-dir", dir,
		}}
		if err := d.start(); err != nil {
			return err
		}
		defer d.kill9()
		base = d.base()
		fmt.Printf("gliftload: [repair] spawned daemon on %s, store %s\n", a, dir)
	}

	progs := repairCorpus()
	fmt.Printf("gliftload: [repair] differential over %d benchmarks, %d submitters\n", len(progs), *conc)

	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := client.New(client.Config{BaseURL: base, MaxAttempts: 20,
				HTTPClient: &http.Client{Timeout: 10 * time.Minute}})
			for {
				i := int(next.Add(1)) - 1
				if i >= len(progs) {
					return
				}
				p := &progs[i]
				ref, err := repairReference(p.name, &p.req)
				if err != nil {
					violate("[repair] %v", err)
					continue
				}
				refRaw, err := json.Marshal(ref)
				if err != nil {
					violate("[repair] %s: %v", p.name, err)
					continue
				}
				wantNorm, err := normalizeRepair(refRaw)
				if err != nil {
					violate("[repair] %s: %v", p.name, err)
					continue
				}

				res, err := cl.Submit(context.Background(), &p.req, true)
				if err != nil {
					violate("[repair] %s: submit: %v", p.name, err)
					continue
				}
				if res.Status.Repair == nil {
					violate("[repair] %s: no repair payload (HTTP %d)", p.name, res.Code)
					continue
				}
				if got, want := res.Status.Repair.PatchedAsm, ref.PatchedAsm; got != want {
					violate("[repair] %s: patched assembly differs from the CLI loop", p.name)
				}
				gotNorm, err := normalizeRepair(res.RawRepair)
				if err != nil {
					violate("[repair] %s: %v", p.name, err)
					continue
				}
				if !bytes.Equal(gotNorm, wantNorm) {
					violate("[repair] %s: payload differs beyond wall time\n  daemon %s\n  cli    %s",
						p.name, gotNorm, wantNorm)
					continue
				}
				// An identical resubmission must come back from the cache,
				// byte-for-byte as first served.
				res2, err := cl.Submit(context.Background(), &p.req, true)
				if err != nil {
					violate("[repair] %s: resubmit: %v", p.name, err)
					continue
				}
				if !res2.Status.CacheHit {
					violate("[repair] %s: identical resubmission re-ran the loop", p.name)
				}
				if !bytes.Equal(res.RawRepair, res2.RawRepair) {
					violate("[repair] %s: cached repair bytes differ from first serving", p.name)
				}
				if *verbose {
					fmt.Printf("  %-10s %d rounds, verdict %s, reduction %.1fx (HTTP %d)\n",
						p.name, len(ref.Rounds), ref.Report.Verdict, ref.ReductionFactor, res.Code)
				}
			}
		}()
	}
	wg.Wait()
	fmt.Printf("gliftload: [repair] %d benchmarks differentially verified in %s\n",
		len(progs), time.Since(start).Round(time.Millisecond))
	if n := violations.Load(); n > 0 {
		return fmt.Errorf("%d repair differential violations", n)
	}
	return nil
}

// ---- chaos mode ------------------------------------------------------------

// daemon is one spawned gliftd process.
type daemon struct {
	bin  string
	addr string // host:port, stable across restarts
	args []string
	cmd  *exec.Cmd
}

func (d *daemon) base() string { return "http://" + d.addr }

func (d *daemon) start() error {
	args := append([]string{"-addr", d.addr}, d.args...)
	cmd := exec.Command(d.bin, args...)
	if *verbose {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	d.cmd = cmd
	probe := client.New(client.Config{BaseURL: d.base(), HTTPClient: &http.Client{Timeout: time.Second}})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		ok := probe.Healthy(ctx)
		cancel()
		if ok {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	d.kill9()
	return fmt.Errorf("daemon on %s never became healthy", d.addr)
}

// kill9 delivers SIGKILL — no shutdown path runs, which is the point.
func (d *daemon) kill9() {
	if d.cmd == nil || d.cmd.Process == nil {
		return
	}
	d.cmd.Process.Kill() //nolint:errcheck
	d.cmd.Wait()         //nolint:errcheck
	d.cmd = nil
}

// freeAddr reserves a localhost port and releases it for the daemon to bind.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// reference computes the cold-run truth in-process: a fresh memory-only
// service answers every corpus program once, and those (normalized) bytes
// are what every chaos phase must reproduce.
func reference(progs []prog) (map[string][]byte, map[string]int, error) {
	srv, err := service.New(service.Config{Workers: 2, QueueDepth: 64, EngineWorkers: 1})
	if err != nil {
		return nil, nil, err
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(l) //nolint:errcheck
	defer hs.Close()

	cl := client.New(client.Config{BaseURL: "http://" + l.Addr().String()})
	wantBytes := make(map[string][]byte, len(progs))
	wantCode := make(map[string]int, len(progs))
	for i := range progs {
		res, err := cl.Submit(context.Background(), &progs[i].req, true)
		if err != nil {
			return nil, nil, fmt.Errorf("reference %s: %w", progs[i].name, err)
		}
		norm, err := normalize(res.RawReport)
		if err != nil {
			return nil, nil, fmt.Errorf("reference %s: %w", progs[i].name, err)
		}
		wantBytes[progs[i].name] = norm
		wantCode[progs[i].name] = res.Code
	}
	return wantBytes, wantCode, nil
}

// violations counts integrity failures across all phases; any non-zero
// total fails the run.
var violations atomic.Int64

func violate(format string, args ...any) {
	violations.Add(1)
	fmt.Fprintf(os.Stderr, "INTEGRITY VIOLATION: "+format+"\n", args...)
}

func runChaos() error {
	progs, err := corpus(*distinct)
	if err != nil {
		return err
	}
	fmt.Printf("gliftload: chaos harness: %d jobs over %d programs, %d submitters, %d kill cycles\n",
		*nJobs, len(progs), *conc, *kills)

	fmt.Println("gliftload: computing in-process cold-run reference...")
	wantBytes, wantCode, err := reference(progs)
	if err != nil {
		return err
	}

	if err := phaseKill9(progs, wantBytes, wantCode); err != nil {
		return err
	}
	if err := phaseDiskFull(progs, wantBytes, wantCode); err != nil {
		return err
	}
	if err := phaseInject503(progs, wantBytes, wantCode); err != nil {
		return err
	}

	if n := violations.Load(); n > 0 {
		return fmt.Errorf("%d integrity violations", n)
	}
	return nil
}

// phaseKill9 runs the submission storm against a daemon that is repeatedly
// SIGKILLed mid-flight with slowed store writes, then proves recovery.
func phaseKill9(progs []prog, wantBytes map[string][]byte, wantCode map[string]int) error {
	dir := *storeDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "gliftload-chaos-*"); err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	addr, err := freeAddr()
	if err != nil {
		return err
	}
	d := &daemon{bin: *gliftd, addr: addr, args: []string{
		"-workers", "2", "-queue", "64", "-engine-workers", "1",
		"-store-dir", dir, "-chaos-slow-write", "25ms",
	}}
	if err := d.start(); err != nil {
		return err
	}
	defer d.kill9()
	fmt.Printf("gliftload: [kill -9] daemon on %s, store %s\n", addr, dir)

	// Acknowledged results: name -> exact served bytes. Every later
	// response for the same program must match exactly.
	var mu sync.Mutex
	acked := make(map[string][]byte)
	ackedCode := make(map[string]int)

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := client.New(client.Config{
				BaseURL: d.base(), MaxAttempts: 200,
				BaseBackoff: 10 * time.Millisecond, MaxBackoff: 250 * time.Millisecond,
				Tenant: fmt.Sprintf("tenant-%d", w%*tenants),
			})
			for {
				i := int(next.Add(1)) - 1
				if i >= *nJobs {
					return
				}
				p := &progs[i%len(progs)]
				res, err := cl.Submit(context.Background(), &p.req, true)
				if err != nil {
					// Gave up during an outage window: not an integrity
					// violation, just lost coverage; another pass of the
					// same program will land.
					continue
				}
				if res.Code != wantCode[p.name] {
					violate("%s: acknowledged HTTP %d, cold run said %d", p.name, res.Code, wantCode[p.name])
					continue
				}
				if *verbose {
					fmt.Printf("  ack %s (HTTP %d, %d attempts)\n", p.name, res.Code, res.Attempts)
				}
				mu.Lock()
				if prev, ok := acked[p.name]; ok {
					if !bytes.Equal(prev, res.RawReport) {
						violate("%s: served bytes changed after acknowledgment\n  first %s\n  now   %s",
							p.name, prev, res.RawReport)
					}
				} else {
					acked[p.name] = append([]byte(nil), res.RawReport...)
					ackedCode[p.name] = res.Code
				}
				mu.Unlock()
			}
		}(w)
	}

	// The killer: SIGKILL + restart cycles while the storm runs.
	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		for k := 0; k < *kills; k++ {
			time.Sleep(*killGap)
			d.kill9()
			fmt.Printf("gliftload: [kill -9] cycle %d/%d: killed, restarting\n", k+1, *kills)
			if err := d.start(); err != nil {
				violate("restart %d failed: %v", k+1, err)
				return
			}
		}
	}()
	wg.Wait()
	<-killerDone

	// Final restart: the memory cache is gone; everything acknowledged must
	// come back from the recovered store, byte-identical, engine untouched.
	d.kill9()
	if err := d.start(); err != nil {
		return err
	}
	cl := client.New(client.Config{BaseURL: d.base(), MaxAttempts: 50,
		BaseBackoff: 10 * time.Millisecond, MaxBackoff: 250 * time.Millisecond})
	pre, err := cl.MetricsJSON(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("gliftload: [kill -9] storm done: %d/%d programs acknowledged; recovered store: %d entries\n",
		len(acked), len(progs), pre.StoreEntries)
	if len(acked) == 0 {
		violate("no job was ever acknowledged — the harness proved nothing")
	}
	for name, want := range acked {
		p := findProg(progs, name)
		res, err := cl.Submit(context.Background(), &p.req, true)
		if err != nil {
			violate("%s: post-recovery fetch failed: %v", name, err)
			continue
		}
		if res.Code != ackedCode[name] {
			violate("%s: post-recovery HTTP %d, acknowledged %d", name, res.Code, ackedCode[name])
		}
		if !res.Status.CacheHit {
			violate("%s: acknowledged result was NOT recovered (engine re-ran after restart)", name)
		}
		if !bytes.Equal(res.RawReport, want) {
			violate("%s: recovered bytes differ from acknowledged bytes\n  acked %s\n  now   %s", name, want, res.RawReport)
		}
		norm, err := normalize(res.RawReport)
		if err != nil {
			violate("%s: recovered report unparseable: %v", name, err)
		} else if !bytes.Equal(norm, wantBytes[name]) {
			violate("%s: recovered report differs from cold run\n  cold %s\n  got  %s", name, wantBytes[name], norm)
		}
	}
	post, err := cl.MetricsJSON(context.Background())
	if err != nil {
		return err
	}
	if reruns := post.EngineRuns; reruns != 0 {
		violate("post-recovery resubmissions ran the engine %d times; recovery is incomplete", reruns)
	}
	fmt.Printf("gliftload: [kill -9] verified %d recovered results byte-identical (0 engine re-runs)\n", len(acked))
	return nil
}

func findProg(progs []prog, name string) *prog {
	for i := range progs {
		if progs[i].name == name {
			return &progs[i]
		}
	}
	panic("unknown program " + name)
}

// phaseDiskFull proves a store too small for any record degrades to
// memory-only operation with correct verdicts.
func phaseDiskFull(progs []prog, wantBytes map[string][]byte, wantCode map[string]int) error {
	dir, err := os.MkdirTemp("", "gliftload-full-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	addr, err := freeAddr()
	if err != nil {
		return err
	}
	d := &daemon{bin: *gliftd, addr: addr, args: []string{
		"-workers", "2", "-queue", "64", "-engine-workers", "1",
		"-store-dir", dir, "-store-max-bytes", "128",
	}}
	if err := d.start(); err != nil {
		return err
	}
	defer d.kill9()
	fmt.Printf("gliftload: [disk-full] daemon on %s, store capped at 128 bytes\n", addr)

	cl := client.New(client.Config{BaseURL: d.base(), MaxAttempts: 20})
	for i := range progs {
		p := &progs[i]
		res, err := cl.Submit(context.Background(), &p.req, true)
		if err != nil {
			violate("[disk-full] %s: %v", p.name, err)
			continue
		}
		if res.Code != wantCode[p.name] {
			violate("[disk-full] %s: HTTP %d, cold run said %d", p.name, res.Code, wantCode[p.name])
		}
		norm, err := normalize(res.RawReport)
		if err != nil {
			violate("[disk-full] %s: %v", p.name, err)
		} else if !bytes.Equal(norm, wantBytes[p.name]) {
			violate("[disk-full] %s: verdict differs from cold run", p.name)
		}
	}
	m, err := cl.MetricsJSON(context.Background())
	if err != nil {
		return err
	}
	if m.StorePutErrors == 0 {
		violate("[disk-full] no store put errors recorded — the cap never bit")
	}
	if m.StoreEntries != 0 {
		violate("[disk-full] %d entries in a store too small for any record", m.StoreEntries)
	}
	fmt.Printf("gliftload: [disk-full] %d programs correct with durability off (%d put errors, 0 entries)\n",
		len(progs), m.StorePutErrors)
	return nil
}

// phaseInject503 proves the client discipline absorbs spurious 503s with no
// effect on outcomes.
func phaseInject503(progs []prog, wantBytes map[string][]byte, wantCode map[string]int) error {
	addr, err := freeAddr()
	if err != nil {
		return err
	}
	d := &daemon{bin: *gliftd, addr: addr, args: []string{
		"-workers", "2", "-queue", "64", "-engine-workers", "1",
		"-chaos-inject-503", "40",
	}}
	if err := d.start(); err != nil {
		return err
	}
	defer d.kill9()
	fmt.Printf("gliftload: [inject-503] daemon on %s, 40%% spurious rejections\n", addr)

	var next, attempts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := client.New(client.Config{BaseURL: d.base(), MaxAttempts: 100,
				BaseBackoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond})
			for {
				i := int(next.Add(1)) - 1
				if i >= *nJobs {
					return
				}
				p := &progs[i%len(progs)]
				res, err := cl.Submit(context.Background(), &p.req, true)
				if err != nil {
					violate("[inject-503] %s: %v", p.name, err)
					continue
				}
				attempts.Add(int64(res.Attempts))
				if res.Code != wantCode[p.name] {
					violate("[inject-503] %s: HTTP %d, cold run said %d", p.name, res.Code, wantCode[p.name])
					continue
				}
				norm, err := normalize(res.RawReport)
				if err != nil {
					violate("[inject-503] %s: %v", p.name, err)
				} else if !bytes.Equal(norm, wantBytes[p.name]) {
					violate("[inject-503] %s: verdict differs from cold run", p.name)
				}
			}
		}()
	}
	wg.Wait()
	m, err := cl503Metrics(d)
	if err != nil {
		return err
	}
	if m.ChaosInjected == 0 {
		violate("[inject-503] injection percent never fired")
	}
	fmt.Printf("gliftload: [inject-503] %d jobs landed through %d injected 503s (%.2f attempts/job)\n",
		*nJobs, m.ChaosInjected, float64(attempts.Load())/float64(*nJobs))
	return nil
}

func cl503Metrics(d *daemon) (service.MetricsJSON, error) {
	cl := client.New(client.Config{BaseURL: d.base(), MaxAttempts: 50,
		BaseBackoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond})
	return cl.MetricsJSON(context.Background())
}
