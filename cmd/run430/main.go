// run430 executes a program concretely on a gate-level microcontroller:
// deterministic pseudo-random (or fixed) port inputs, cycle/instruction
// statistics, final register/memory state, and an optional VCD waveform
// with per-net taint channels. -target selects the processor target
// (default msp430).
//
// SIGINT or -deadline expiry stops the simulation cleanly: the statistics
// and machine state accumulated so far are still printed (and the VCD, if
// any, is flushed).
//
// Usage:
//
//	run430 [-cycles N] [-deadline D] [-p1 0xVALUE | -seed S] [-vcd out.vcd] [-taint-p1] app.s43
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/mcu"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/target"
)

func main() {
	targetName := flag.String("target", "", target.FlagHelp())
	cycles := flag.Uint64("cycles", 10_000, "cycles to run")
	deadline := flag.Duration("deadline", 0, "wall-clock simulation deadline (0: none)")
	p1 := flag.Int("p1", -1, "fixed P1IN value (default: LFSR per cycle)")
	seed := flag.Uint("seed", 0xACE1, "LFSR seed for port inputs")
	vcdPath := flag.String("vcd", "", "write a VCD waveform here")
	taintP1 := flag.Bool("taint-p1", false, "drive P1IN as tainted unknown (symbolic)")
	backendName := flag.String("backend", "", "gate-evaluation backend: "+backendHelp()+"; results are identical either way")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: run430 [flags] app.s43")
		os.Exit(2)
	}
	tgt, err := target.Parse(*targetName)
	if err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, err := tgt.Assemble(string(src))
	if err != nil {
		fatal(err)
	}

	backend, err := sim.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	d := tgt.Design()
	sys, err := mcu.NewSystemBackend(d, backend)
	if err != nil {
		fatal(err)
	}
	zeros := make([]byte, sys.RAM.Size())
	sys.RAM.Fill(sys.RAM.Base(), zeros)
	img.Place(func(a, w uint16) { sys.ROM.StoreWord(a, sim.ConcreteWord(w)) })
	sys.SetResetVector(img.Entry)

	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		nets := []string{"cpu.pc0", "cpu.pc1", "cpu.pc2", "cpu.pc3", "por", "wdt.wdt_we"}
		if tgt.Name == "msp430" {
			nets = append(nets, "jump.branch_taken")
		}
		v, err := sys.AttachVCD(f, nets)
		if err != nil {
			fatal(err)
		}
		defer v.Flush()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	rng := uint16(*seed) | 1
	next := func() uint16 {
		bit := (rng>>0 ^ rng>>2 ^ rng>>3 ^ rng>>5) & 1
		rng = rng>>1 | bit<<15
		return rng
	}
	sys.PowerOn()
	insns := uint64(0)
	for sys.Cycle < *cycles {
		if sys.Cycle&1023 == 0 && ctx.Err() != nil {
			fmt.Printf("simulation stopped early (%v); statistics below are partial\n", ctx.Err())
			break
		}
		switch {
		case *taintP1:
			sys.SetPortIn(0, sim.Word{XM: 0xffff, TT: 0xffff})
		case *p1 >= 0:
			sys.SetPortIn(0, sim.ConcreteWord(uint16(*p1)))
		default:
			sys.SetPortIn(0, sim.ConcreteWord(next()))
		}
		ci := sys.EvalCycle(nil)
		if !ci.PmemOK {
			fmt.Printf("PC became unknown at cycle %d (symbolic control flow needs gliftcheck)\n", sys.Cycle)
			break
		}
		if ci.StateOK && ci.State == mcu.StFetch {
			insns++
		}
		sys.Commit(ci)
	}

	fmt.Printf("ran %d cycles, %d instructions (CPI %.2f), %d flip-flop toggles\n",
		sys.Cycle, insns, float64(sys.Cycle)/float64(insns), sys.C.Toggles)
	sys.EvalCycle(nil)
	fmt.Println("registers:")
	fmt.Printf("  %-3s %s\n", "pc", sys.GetWord(d.PC))
	if d.SR != nil {
		fmt.Printf("  %-3s %s\n", "sr", sys.GetWord(d.SR))
	}
	for r := 0; r < 16; r++ {
		// Slots without nets are aliased state (PC/SR) or constant
		// generators; both are covered above or meaningless to print.
		if d.Regs[r] == nil || d.RegName[r] == "" {
			continue
		}
		fmt.Printf("  %-3s %s\n", d.RegName[r], regString(sys, d.Regs[r]))
	}
	if n := sys.RAM.TaintedBytes(d.Map.RAMStart, d.Map.RAMEnd); n > 0 {
		fmt.Printf("tainted data-memory bytes: %d\n", n)
	}
	for _, ev := range sys.Events() {
		fmt.Println("event:", ev)
	}
}

// regString renders one architectural register; registers wider than a
// simulation word print as hi:lo halves.
func regString(sys *mcu.System, nets synth.Word) string {
	if len(nets) <= 16 {
		return sys.GetWord(nets).String()
	}
	return sys.GetWord(nets[16:]).String() + ":" + sys.GetWord(nets[:16]).String()
}

// backendHelp renders the registered backend names for flag help, with the
// registry's first entry marked as the default.
func backendHelp() string {
	names := sim.BackendNames()
	return names[0] + " (default), " + strings.Join(names[1:], ", ")
}

// fatal reports a usage/input error; exit code 2 matches the
// gliftcheck/secure430 contract.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "run430:", err)
	os.Exit(2)
}
