// traceview validates and summarizes engine traces in three forms:
//
//   - Chrome trace_event JSON as written by gliftcheck/secure430 -trace
//     (readable by chrome://tracing or Perfetto): the document must parse,
//     every event must be well-formed (name, phase, non-negative timestamp)
//     and "B"/"E" path spans must balance.
//   - A raw SSE capture of GET /jobs/{id}/events (e.g. `curl -N` output):
//     id/event/data framing, strictly increasing sequence numbers with
//     jumps exactly accounted for by gap events, and a terminal verdict
//     event as the last event of the stream.
//   - The same stream as NDJSON, one {"seq":N,"type":"...","data":{...}}
//     object per line (the gliftload -stream-dump format), validated by the
//     same rules minus the single-stream ordering checks when dumps from
//     concurrent jobs are interleaved.
//
// The form is sniffed from the input; either way traceview prints per-event
// counts and exits 0 valid, 1 invalid trace, 2 usage error.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// traceEvent mirrors the subset of the Chrome trace_event fields the
// validator needs; unknown fields are ignored by design.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: traceview trace.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(2)
	}

	if evs, form, ok := sniffStream(data); ok {
		validateStream(evs, form)
		return
	}

	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		invalid("not valid JSON: %v", err)
	}
	if tf.TraceEvents == nil {
		invalid("no traceEvents array")
	}

	counts := map[string]int{}
	var minTS, maxTS float64
	open, outOfOrder := 0, 0
	prevTS := -1.0
	for i, ev := range tf.TraceEvents {
		if ev.Name == "" {
			invalid("event %d: missing name", i)
		}
		switch ev.Ph {
		case "B":
			open++
		case "E":
			if open == 0 {
				invalid("event %d: %q ends a span that never began", i, ev.Name)
			}
			open--
		case "i", "I", "M", "X", "C":
		default:
			invalid("event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.Ph == "M" {
			counts["(metadata) "+ev.Name]++
			continue // metadata carries no meaningful timestamp
		}
		if ev.TS < 0 {
			invalid("event %d: negative timestamp %v", i, ev.TS)
		}
		counts[ev.Name]++
		if minTS == 0 && maxTS == 0 && ev.TS != 0 {
			minTS = ev.TS
		}
		if ev.TS < minTS || minTS == 0 {
			minTS = ev.TS
		}
		if ev.TS > maxTS {
			maxTS = ev.TS
		}
		// Single-run traces are time-sorted; multi-round secure430 traces
		// restart the per-engine clock, so disorder is reported, not fatal.
		if prevTS >= 0 && ev.TS < prevTS {
			outOfOrder++
		}
		prevTS = ev.TS
	}
	if open != 0 {
		invalid("%d path span(s) never closed", open)
	}

	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d events\n", os.Args[1], len(tf.TraceEvents))
	for _, n := range names {
		fmt.Printf("  %-24s %d\n", n, counts[n])
	}
	fmt.Printf("span: %s\n", time.Duration((maxTS-minTS)*1e3)) // µs → ns
	if outOfOrder > 0 {
		fmt.Printf("note: %d out-of-order timestamps (multi-round trace)\n", outOfOrder)
	}
}

func invalid(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceview: invalid trace: "+format+"\n", args...)
	os.Exit(1)
}

// ---- job event streams (SSE / NDJSON) --------------------------------------

// streamEvent is one job telemetry event, in either capture form. Gap
// events carry no seq by protocol.
type streamEvent struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// sniffStream detects the two event-stream capture forms: SSE framing
// (first meaningful line is an id:/event:/data:/comment field) and NDJSON
// (every line a JSON object with a "type" field). Chrome trace JSON matches
// neither and falls through to the document validator.
func sniffStream(data []byte) ([]streamEvent, string, bool) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, "", false
	}
	first := trimmed
	if i := bytes.IndexByte(first, '\n'); i >= 0 {
		first = first[:i]
	}
	line := string(bytes.TrimSpace(first))
	for _, p := range []string{"id:", "event:", "data:", ":"} {
		if strings.HasPrefix(line, p) {
			return parseSSE(data), "sse", true
		}
	}
	if strings.HasPrefix(line, "{") && !bytes.Contains(trimmed, []byte("traceEvents")) {
		if evs, ok := parseNDJSON(data); ok {
			return evs, "ndjson", true
		}
	}
	return nil, "", false
}

// parseSSE decodes an SSE capture with the same framing rules the client
// uses: fields accumulate until a blank line dispatches the event, comments
// (heartbeats) are skipped.
func parseSSE(data []byte) []streamEvent {
	var evs []streamEvent
	var ev streamEvent
	pending := false
	flush := func() {
		if pending {
			evs = append(evs, ev)
		}
		ev, pending = streamEvent{}, false
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		switch {
		case line == "":
			flush()
		case strings.HasPrefix(line, ":"):
		case strings.HasPrefix(line, "id:"):
			n, err := strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64)
			if err != nil {
				invalid("line %d: bad SSE id %q", lineNo, line)
			}
			ev.Seq, pending = n, true
		case strings.HasPrefix(line, "event:"):
			ev.Type, pending = strings.TrimSpace(line[6:]), true
		case strings.HasPrefix(line, "data:"):
			ev.Data, pending = json.RawMessage(strings.TrimSpace(line[5:])), true
		default:
			invalid("line %d: not an SSE field: %q", lineNo, line)
		}
	}
	flush()
	return evs
}

// parseNDJSON decodes one stream event per line (gliftload -stream-dump).
func parseNDJSON(data []byte) ([]streamEvent, bool) {
	var evs []streamEvent
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev streamEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Type == "" {
			return nil, false
		}
		evs = append(evs, ev)
	}
	return evs, len(evs) > 0
}

// validateStream checks the job-stream invariants and prints the summary.
// A single SSE capture is one subscription, so sequence numbers must be
// strictly increasing with every jump exactly accounted for by a preceding
// gap event's lost count, and the stream must end with its verdict event.
// An NDJSON dump may interleave events from many concurrent jobs, so the
// per-stream ordering checks are skipped there; payload shape, gap
// accounting fields and verdict presence still apply.
func validateStream(evs []streamEvent, form string) {
	if len(evs) == 0 {
		invalid("empty event stream")
	}
	ordered := form == "sse"
	counts := map[string]int{}
	var prevSeq, pendingLost, lostTotal uint64
	verdicts := 0
	for i, ev := range evs {
		if ev.Type == "" {
			invalid("event %d: missing type", i)
		}
		counts[ev.Type]++
		if len(ev.Data) > 0 && !json.Valid(ev.Data) {
			invalid("event %d (%s): data is not valid JSON", i, ev.Type)
		}
		switch ev.Type {
		case "gap":
			var gap struct {
				Lost uint64 `json:"lost"`
			}
			if err := json.Unmarshal(ev.Data, &gap); err != nil || gap.Lost == 0 {
				invalid("event %d: gap without a positive lost count: %s", i, ev.Data)
			}
			pendingLost += gap.Lost
			lostTotal += gap.Lost
			continue // gaps are synthesized per subscriber and carry no seq
		case "verdict":
			verdicts++
			var v struct {
				Verdict string `json:"verdict"`
			}
			if err := json.Unmarshal(ev.Data, &v); err != nil || v.Verdict == "" {
				invalid("event %d: verdict without a verdict field: %s", i, ev.Data)
			}
		}
		if !ordered {
			continue
		}
		if ev.Seq == 0 {
			invalid("event %d (%s): missing sequence number", i, ev.Type)
		}
		if prevSeq != 0 && ev.Seq != prevSeq+pendingLost+1 {
			invalid("event %d: seq %d after seq %d with %d lost — %d events unaccounted for",
				i, ev.Seq, prevSeq, pendingLost, ev.Seq-prevSeq-pendingLost-1)
		}
		prevSeq, pendingLost = ev.Seq, 0
	}
	if verdicts == 0 {
		invalid("stream has no terminal verdict event")
	}
	if ordered {
		if verdicts > 1 {
			invalid("%d verdict events in one stream", verdicts)
		}
		if evs[len(evs)-1].Type != "verdict" {
			invalid("stream does not end with its verdict event (last: %s)", evs[len(evs)-1].Type)
		}
	}

	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d stream events (%s)\n", os.Args[1], len(evs), form)
	for _, n := range names {
		fmt.Printf("  %-24s %d\n", n, counts[n])
	}
	if lostTotal > 0 {
		fmt.Printf("lost to backpressure: %d (accounted by gap events)\n", lostTotal)
	}
	fmt.Printf("verdicts: %d\n", verdicts)
}
