// traceview validates and summarizes a Chrome trace_event JSON file as
// written by gliftcheck/secure430 -trace (and readable by chrome://tracing
// or Perfetto). It checks that the document parses, that every event is
// well-formed (name, phase, non-negative timestamp) and that "B"/"E" path
// spans balance, then prints per-event-name counts and the wall-clock span
// the trace covers.
//
// Exit codes: 0 valid, 1 invalid trace, 2 usage error.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// traceEvent mirrors the subset of the Chrome trace_event fields the
// validator needs; unknown fields are ignored by design.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: traceview trace.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(2)
	}

	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		invalid("not valid JSON: %v", err)
	}
	if tf.TraceEvents == nil {
		invalid("no traceEvents array")
	}

	counts := map[string]int{}
	var minTS, maxTS float64
	open, outOfOrder := 0, 0
	prevTS := -1.0
	for i, ev := range tf.TraceEvents {
		if ev.Name == "" {
			invalid("event %d: missing name", i)
		}
		switch ev.Ph {
		case "B":
			open++
		case "E":
			if open == 0 {
				invalid("event %d: %q ends a span that never began", i, ev.Name)
			}
			open--
		case "i", "I", "M", "X", "C":
		default:
			invalid("event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.Ph == "M" {
			counts["(metadata) "+ev.Name]++
			continue // metadata carries no meaningful timestamp
		}
		if ev.TS < 0 {
			invalid("event %d: negative timestamp %v", i, ev.TS)
		}
		counts[ev.Name]++
		if minTS == 0 && maxTS == 0 && ev.TS != 0 {
			minTS = ev.TS
		}
		if ev.TS < minTS || minTS == 0 {
			minTS = ev.TS
		}
		if ev.TS > maxTS {
			maxTS = ev.TS
		}
		// Single-run traces are time-sorted; multi-round secure430 traces
		// restart the per-engine clock, so disorder is reported, not fatal.
		if prevTS >= 0 && ev.TS < prevTS {
			outOfOrder++
		}
		prevTS = ev.TS
	}
	if open != 0 {
		invalid("%d path span(s) never closed", open)
	}

	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d events\n", os.Args[1], len(tf.TraceEvents))
	for _, n := range names {
		fmt.Printf("  %-24s %d\n", n, counts[n])
	}
	fmt.Printf("span: %s\n", time.Duration((maxTS-minTS)*1e3)) // µs → ns
	if outOfOrder > 0 {
		fmt.Printf("note: %d out-of-order timestamps (multi-round trace)\n", outOfOrder)
	}
}

func invalid(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceview: invalid trace: "+format+"\n", args...)
	os.Exit(1)
}
