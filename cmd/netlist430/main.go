// netlist430 exposes the gate-level microcontroller netlist that the
// analysis runs on: statistics (the "processor description" the paper's
// tool consumes), the textual .gnl serialization, and a Graphviz rendering.
//
// Usage:
//
//	netlist430 -stats            # gate/DFF/level counts
//	netlist430 -gnl > mcu.gnl    # dump the netlist
//	netlist430 -dot > mcu.dot    # Graphviz (large!)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/glift"
	"repro/internal/netlist"
)

func main() {
	stats := flag.Bool("stats", true, "print netlist statistics")
	gnl := flag.Bool("gnl", false, "write the .gnl serialization to stdout")
	dot := flag.Bool("dot", false, "write a Graphviz rendering to stdout")
	flag.Parse()

	d := glift.SharedDesign()
	if *gnl {
		if err := netlist.Write(os.Stdout, d.NL); err != nil {
			fatal(err)
		}
		return
	}
	if *dot {
		if err := netlist.WriteDOT(os.Stdout, d.NL); err != nil {
			fatal(err)
		}
		return
	}
	if *stats {
		st := d.NL.ComputeStats()
		fmt.Printf("gate-level MSP430-class microcontroller\n")
		fmt.Printf("  nets:        %d\n", st.Nets)
		fmt.Printf("  gates:       %d\n", st.Gates)
		fmt.Printf("  flip-flops:  %d\n", st.DFFs)
		fmt.Printf("  inputs:      %d\n", st.Inputs)
		fmt.Printf("  outputs:     %d\n", st.Outputs)
		fmt.Printf("  logic depth: %d levels\n", st.Levels)
		fmt.Printf("  by op:\n")
		type kv struct {
			op string
			n  int
		}
		var ops []kv
		for op, n := range st.ByOp {
			ops = append(ops, kv{op.String(), n})
		}
		sort.Slice(ops, func(i, j int) bool { return ops[i].n > ops[j].n })
		for _, o := range ops {
			fmt.Printf("    %-6s %6d\n", o.op, o.n)
		}
		fmt.Printf("  probe nets: branch_taken, por, wdt_we, wdt_expired\n")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netlist430:", err)
	os.Exit(1)
}
