// secure430 is the end-to-end software-refactoring toolflow of Figures 10
// and 11: it analyzes an application against an information flow policy,
// identifies the root-cause instructions of every potential violation,
// automatically inserts address-masking instructions before the violating
// stores (re-analyzing after each round, since fixing a primary violation
// removes the conservative violations it induced), reports whether the
// watchdog-reset mechanism is required, and emits the modified assembly.
//
// The round loop itself lives in internal/repair and is shared with the
// gliftd repair-job mode, so the CLI and the daemon produce byte-identical
// patched assembly for identical inputs.
//
// Usage:
//
//	secure430 -tainted-in 1 -tainted-out 2 \
//	          -tainted-code task_start:task_end \
//	          -tainted-data 0x0400:0x0800 \
//	          -partition 0x0400:0x0400 -o fixed.s43 app.s43
//
// Exit codes follow the same fail-closed contract as gliftcheck: 0 when
// the final round verifies the modified application, 1 when violations
// remain, 2 on usage/input errors, 3 when the analysis was cut short by
// SIGINT, -deadline, or a budget (the result proves nothing) or crashed
// internally. The deadline covers all repair rounds together.
//
// -json emits the final round's report as one JSON document on stdout in
// the same wire shape the gliftd service returns; combine with -o to also
// keep the modified assembly.
//
// -trace <file> records the exploration dynamics of every analysis round
// into one Chrome trace_event JSON file (chrome://tracing, Perfetto, or
// cmd/traceview), which makes the shrinking violation frontier across
// repair rounds directly visible.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/obs"
	"repro/internal/repair"
	"repro/internal/sim"
	"repro/internal/target"
	"repro/internal/transform"
)

func main() {
	targetName := flag.String("target", "", target.FlagHelp()+"; repair requires a target with transform support")
	taintedIn := flag.String("tainted-in", "", "comma-separated tainted input ports (1-4)")
	taintedOut := flag.String("tainted-out", "", "comma-separated output ports tainted code may use (1-4)")
	taintedCode := flag.String("tainted-code", "", "comma-separated lo:hi tainted code ranges (symbols or hex)")
	taintedData := flag.String("tainted-data", "", "comma-separated lo:hi tainted data partitions (hex)")
	part := flag.String("partition", "0x0400:0x0400", "mask partition as base:size (size a power of two)")
	out := flag.String("o", "", "write the modified assembly here (default: stdout)")
	jsonOut := flag.Bool("json", false, "emit the final report as JSON on stdout (assembly then requires -o)")
	rounds := flag.Int("rounds", 8, "maximum analyze/repair rounds")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON trace covering all rounds to this file")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for all rounds together (0: none); expiry exits 3")
	workers := flag.Int("workers", 0, "engine exploration workers per round (0: GOMAXPROCS, 1: sequential); the report is identical either way")
	backendName := flag.String("backend", "", "gate-evaluation backend: "+backendHelp()+"; the report is byte-identical either way")
	specLanes := flag.Int("spec-lanes", 0, "pack up to N queued paths per speculation worker onto bitsliced lanes (0 or 1: scalar, max 64); the report is identical either way")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: secure430 [flags] app.s43 (see -help)")
		os.Exit(2)
	}
	tgt, err := target.Parse(*targetName)
	if err != nil {
		fatal(err)
	}
	if !tgt.SupportsRepair {
		fatal(fmt.Errorf("target %q is analysis-only: the repair pipeline rewrites msp430 assembly (use gliftcheck -target %s instead)", tgt.Name, tgt.Name))
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	partition, err := repair.ParsePartition(*part)
	if err != nil {
		fatal(err)
	}

	// The policy is resolved against the original image's symbols; the
	// tainted-code ranges are additionally re-resolved by the repair loop
	// against each round's (mask-shifted) image.
	baseStmts, err := asm.Parse(string(srcBytes))
	if err != nil {
		fatal(err)
	}
	img0, err := asm.Assemble(baseStmts)
	if err != nil {
		fatal(err)
	}
	pol := glift.Policy{Name: "secure430"}
	if pol.TaintedInPorts, err = repair.ParsePorts(*taintedIn); err != nil {
		fatal(err)
	}
	if pol.TaintedOutPorts, err = repair.ParsePorts(*taintedOut); err != nil {
		fatal(err)
	}
	codeRanges := repair.SplitRangeList(*taintedCode)
	if pol.TaintedCode, err = repair.ResolveRanges(codeRanges, img0); err != nil {
		fatal(err)
	}
	if pol.TaintedData, err = repair.ResolveRanges(repair.SplitRangeList(*taintedData), img0); err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	backend, err := sim.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	var xt *obs.ExplorationTrace
	opts := &glift.Options{Workers: *workers, Backend: backend, SpecLanes: *specLanes}
	if *traceFile != "" {
		xt = obs.NewExplorationTrace(0)
		opts.Tracer = xt.Record
	}

	spec := &repair.Spec{
		Source:     string(srcBytes),
		Policy:     pol,
		CodeRanges: codeRanges,
		Partition:  partition,
		MaxRounds:  *rounds,
		Options:    opts,
		OnRound: func(rr repair.Round) {
			fmt.Fprintf(os.Stderr, "round %d: %d masked stores, %d violations (%s in %s)\n",
				rr.Round, rr.MaskedStores, rr.Violations, rr.Stats, time.Duration(rr.Stats.WallNanos))
			for _, um := range rr.Unmaskable {
				fmt.Fprintf(os.Stderr, "  error: line %d (%s) violates the policy and cannot be masked; "+
					"change the software or the labels (Footnote 6)\n", um.Line, um.Text)
			}
		},
	}
	res, err := repair.Run(ctx, spec)
	if err != nil {
		fatal(err)
	}
	rep := res.Report

	if xt != nil {
		if err := writeChromeTrace(xt, *traceFile); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "secure430: %s: %d exploration events (%d dropped by the ring bound)\n",
			*traceFile, xt.Total(), xt.Dropped())
	}

	verdict := rep.Verdict()
	fmt.Fprintln(os.Stderr, "secure430: verdict:", verdict)
	switch verdict {
	case glift.InternalError:
		fmt.Fprintln(os.Stderr, "secure430:", rep.Err.Error())
	case glift.Incomplete:
		fmt.Fprintln(os.Stderr, "NOT PROVEN: the last analysis round did not run to completion")
	}
	for _, v := range rep.Violations {
		sev := "warning"
		if v.Kind == glift.OutputPortTainted || v.Kind == glift.C5WriteUntaintedPort || v.Kind == glift.C4ReadTaintedPort {
			sev = "error" // direct leak: programmer attention required (Footnote 6)
		}
		fmt.Fprintf(os.Stderr, "%s: %s\n", sev, v)
	}
	if rep.NeedsWatchdog() {
		fmt.Fprintln(os.Stderr, "note: tainted control flow remains; wrap the tainted task in the watchdog bound")
		fmt.Fprintf(os.Stderr, "      (arm WDTCTL with %#04x-style writes from untainted code; see internal/transform)\n",
			transform.PlanWatchdog(1000).WDTCTLValue())
	} else if rep.Secure() {
		fmt.Fprintln(os.Stderr, "SECURE: the modified application guarantees the information flow policy")
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(res.Asm), 0o644); err != nil {
			fatal(err)
		}
	} else if !*jsonOut {
		fmt.Print(res.Asm)
	}
	if *jsonOut {
		// stdout carries exactly one JSON document in the gliftd wire shape;
		// the modified assembly is available through -o.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep.JSON()); err != nil {
			fatal(err)
		}
	}
	os.Exit(verdict.ExitCode())
}

// backendHelp renders the registered backend names for flag help, with the
// registry's first entry marked as the default.
func backendHelp() string {
	names := sim.BackendNames()
	return names[0] + " (default), " + strings.Join(names[1:], ", ")
}

// writeChromeTrace dumps the recorded exploration trace to path.
func writeChromeTrace(xt *obs.ExplorationTrace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := xt.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fatal reports a usage/input error (exit code 2 in the documented
// contract); analysis outcomes exit through Verdict.ExitCode instead.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secure430:", err)
	os.Exit(2)
}
