// secure430 is the end-to-end software-refactoring toolflow of Figures 10
// and 11: it analyzes an application against an information flow policy,
// identifies the root-cause instructions of every potential violation,
// automatically inserts address-masking instructions before the violating
// stores (re-analyzing after each round, since fixing a primary violation
// removes the conservative violations it induced), reports whether the
// watchdog-reset mechanism is required, and emits the modified assembly.
//
// Usage:
//
//	secure430 -tainted-in 1 -tainted-out 2 \
//	          -tainted-code task_start:task_end \
//	          -tainted-data 0x0400:0x0800 \
//	          -partition 0x0400:0x0400 -o fixed.s43 app.s43
//
// Exit codes follow the same fail-closed contract as gliftcheck: 0 when
// the final round verifies the modified application, 1 when violations
// remain, 2 on usage/input errors, 3 when the analysis was cut short by
// SIGINT, -deadline, or a budget (the result proves nothing) or crashed
// internally. The deadline covers all repair rounds together.
//
// -json emits the final round's report as one JSON document on stdout in
// the same wire shape the gliftd service returns; combine with -o to also
// keep the modified assembly.
//
// -trace <file> records the exploration dynamics of every analysis round
// into one Chrome trace_event JSON file (chrome://tracing, Perfetto, or
// cmd/traceview), which makes the shrinking violation frontier across
// repair rounds directly visible.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transform"
)

func main() {
	taintedIn := flag.String("tainted-in", "", "comma-separated tainted input ports (1-4)")
	taintedOut := flag.String("tainted-out", "", "comma-separated output ports tainted code may use (1-4)")
	taintedCode := flag.String("tainted-code", "", "comma-separated lo:hi tainted code ranges (symbols or hex)")
	taintedData := flag.String("tainted-data", "", "comma-separated lo:hi tainted data partitions (hex)")
	part := flag.String("partition", "0x0400:0x0400", "mask partition as base:size (size a power of two)")
	out := flag.String("o", "", "write the modified assembly here (default: stdout)")
	jsonOut := flag.Bool("json", false, "emit the final report as JSON on stdout (assembly then requires -o)")
	rounds := flag.Int("rounds", 8, "maximum analyze/repair rounds")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON trace covering all rounds to this file")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for all rounds together (0: none); expiry exits 3")
	workers := flag.Int("workers", 0, "engine exploration workers per round (0: GOMAXPROCS, 1: sequential); the report is identical either way")
	backendName := flag.String("backend", "", "gate-evaluation backend: "+backendHelp()+"; the report is byte-identical either way")
	specLanes := flag.Int("spec-lanes", 0, "pack up to N queued paths per speculation worker onto bitsliced lanes (0 or 1: scalar, max 64); the report is identical either way")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: secure430 [flags] app.s43 (see -help)")
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	baseStmts, err := asm.Parse(string(srcBytes))
	if err != nil {
		fatal(err)
	}
	partition, err := parsePartition(*part)
	if err != nil {
		fatal(err)
	}

	// The policy is resolved against the original image's symbols.
	img0, err := asm.Assemble(baseStmts)
	if err != nil {
		fatal(err)
	}
	pol := &glift.Policy{Name: "secure430"}
	if pol.TaintedInPorts, err = parsePorts(*taintedIn); err != nil {
		fatal(err)
	}
	if pol.TaintedOutPorts, err = parsePorts(*taintedOut); err != nil {
		fatal(err)
	}
	if pol.TaintedCode, err = parseRanges(*taintedCode, img0); err != nil {
		fatal(err)
	}
	if pol.TaintedData, err = parseRanges(*taintedData, img0); err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	backend, err := sim.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	var xt *obs.ExplorationTrace
	opts := &glift.Options{Workers: *workers, Backend: backend, SpecLanes: *specLanes}
	if *traceFile != "" {
		xt = obs.NewExplorationTrace(0)
		opts.Tracer = xt.Record
	}

	flaggedLines := map[int]bool{}
	var finalStmts []asm.Stmt
	var rep *glift.Report
	for round := 0; round < *rounds; round++ {
		stmts, err := asm.Parse(string(srcBytes)) // fresh copy each round
		if err != nil {
			fatal(err)
		}
		flagged := map[int]bool{}
		for i := range stmts {
			if flaggedLines[stmts[i].Line] {
				flagged[i] = true
			}
		}
		masked := 0
		if len(flagged) > 0 {
			stmts, masked, err = transform.InsertMasks(stmts, flagged, partition)
			if err != nil {
				fatal(err)
			}
		}
		img, err := asm.Assemble(stmts)
		if err != nil {
			fatal(err)
		}
		// The tainted-code symbols keep their names across mask insertion,
		// so re-resolve policy ranges from the new image.
		p2 := *pol
		if p2.TaintedCode, err = parseRanges(*taintedCode, img); err != nil {
			fatal(err)
		}
		rep, err = glift.AnalyzeContext(ctx, img, &p2, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "round %d: %d masked stores, %d violations (%s in %s)\n",
			round, masked, len(rep.Violations), rep.Stats, time.Duration(rep.Stats.WallNanos))
		if v := rep.Verdict(); v == glift.Incomplete || v == glift.InternalError {
			// A truncated or crashed analysis proves nothing: repairing
			// against its violation list would be guesswork, so stop here
			// and let the verdict drive the (non-zero) exit code.
			finalStmts = stmts
			break
		}
		progress := false
		for _, pc := range rep.ViolatingStorePCs() {
			si, ok := img.AddrToStmt[pc]
			if !ok {
				continue
			}
			st := img.Stmts[si]
			if st.Line == 0 {
				continue
			}
			if _, maskable := transform.MaskableStoreTarget(&st); !maskable {
				fmt.Fprintf(os.Stderr, "  error: line %d (%s) violates the policy and cannot be masked; "+
					"change the software or the labels (Footnote 6)\n", st.Line, strings.TrimSpace(st.String()))
				continue
			}
			if !flaggedLines[st.Line] {
				flaggedLines[st.Line] = true
				progress = true
			}
		}
		finalStmts = stmts
		if !progress {
			break
		}
	}

	if xt != nil {
		if err := writeChromeTrace(xt, *traceFile); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "secure430: %s: %d exploration events (%d dropped by the ring bound)\n",
			*traceFile, xt.Total(), xt.Dropped())
	}

	verdict := rep.Verdict()
	fmt.Fprintln(os.Stderr, "secure430: verdict:", verdict)
	switch verdict {
	case glift.InternalError:
		fmt.Fprintln(os.Stderr, "secure430:", rep.Err.Error())
	case glift.Incomplete:
		fmt.Fprintln(os.Stderr, "NOT PROVEN: the last analysis round did not run to completion")
	}
	for _, v := range rep.Violations {
		sev := "warning"
		if v.Kind == glift.OutputPortTainted || v.Kind == glift.C5WriteUntaintedPort || v.Kind == glift.C4ReadTaintedPort {
			sev = "error" // direct leak: programmer attention required (Footnote 6)
		}
		fmt.Fprintf(os.Stderr, "%s: %s\n", sev, v)
	}
	if rep.NeedsWatchdog() {
		fmt.Fprintln(os.Stderr, "note: tainted control flow remains; wrap the tainted task in the watchdog bound")
		fmt.Fprintf(os.Stderr, "      (arm WDTCTL with %#04x-style writes from untainted code; see internal/transform)\n",
			transform.PlanWatchdog(1000).WDTCTLValue())
	} else if rep.Secure() {
		fmt.Fprintln(os.Stderr, "SECURE: the modified application guarantees the information flow policy")
	}

	text := asm.Print(finalStmts)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fatal(err)
		}
	} else if !*jsonOut {
		fmt.Print(text)
	}
	if *jsonOut {
		// stdout carries exactly one JSON document in the gliftd wire shape;
		// the modified assembly is available through -o.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep.JSON()); err != nil {
			fatal(err)
		}
	}
	os.Exit(verdict.ExitCode())
}

func parsePartition(s string) (transform.Partition, error) {
	lo, size, ok := strings.Cut(s, ":")
	if !ok {
		return transform.Partition{}, fmt.Errorf("bad partition %q (want base:size)", s)
	}
	l, err := strconv.ParseUint(strings.ToLower(lo), 0, 16)
	if err != nil {
		return transform.Partition{}, err
	}
	sz, err := strconv.ParseUint(strings.ToLower(size), 0, 17)
	if err != nil {
		return transform.Partition{}, err
	}
	p := transform.Partition{Lo: uint16(l), Size: uint16(sz)}
	return p, p.Validate()
}

func parsePorts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 || n > 4 {
			return nil, fmt.Errorf("bad port %q (want 1-4)", part)
		}
		out = append(out, n-1)
	}
	return out, nil
}

func parseRanges(s string, img *asm.Image) ([]glift.AddrRange, error) {
	if s == "" {
		return nil, nil
	}
	var out []glift.AddrRange
	for _, part := range strings.Split(s, ",") {
		lo, hi, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad range %q (want lo:hi)", part)
		}
		l, err := resolve(lo, img)
		if err != nil {
			return nil, err
		}
		h, err := resolve(hi, img)
		if err != nil {
			return nil, err
		}
		out = append(out, glift.AddrRange{Lo: l, Hi: h})
	}
	return out, nil
}

func resolve(s string, img *asm.Image) (uint16, error) {
	if v, ok := img.Symbol(s); ok {
		return v, nil
	}
	n, err := strconv.ParseUint(strings.ToLower(s), 0, 16)
	if err != nil {
		return 0, fmt.Errorf("cannot resolve %q as a symbol or address", s)
	}
	return uint16(n), nil
}

// backendHelp renders the registered backend names for flag help, with the
// registry's first entry marked as the default.
func backendHelp() string {
	names := sim.BackendNames()
	return names[0] + " (default), " + strings.Join(names[1:], ", ")
}

// writeChromeTrace dumps the recorded exploration trace to path.
func writeChromeTrace(xt *obs.ExplorationTrace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := xt.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fatal reports a usage/input error (exit code 2 in the documented
// contract); analysis outcomes exit through Verdict.ExitCode instead.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secure430:", err)
	os.Exit(2)
}
