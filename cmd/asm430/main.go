// asm430 assembles MSP430-class assembly (the subset defined in
// internal/asm) and prints the resulting image: segments, words, symbols
// and a disassembly listing.
//
// Usage:
//
//	asm430 [-listing] [-symbols] file.s43
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
)

func main() {
	listing := flag.Bool("listing", true, "print a disassembly listing")
	symbols := flag.Bool("symbols", false, "print the symbol table")
	ihex := flag.String("ihex", "", "write the loadable Intel HEX image here")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asm430 [-listing] [-symbols] file.s43")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, err := asm.AssembleSource(string(src))
	if err != nil {
		fatal(err)
	}
	if *ihex != "" {
		f, err := os.Create(*ihex)
		if err != nil {
			fatal(err)
		}
		if err := asm.WriteIHex(f, img); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("; %d words in %d segments, entry %#04x\n", img.SizeWords(), len(img.Segments), img.Entry)
	for _, seg := range img.Segments {
		fmt.Printf("\nsegment %#04x (%d words)\n", seg.Addr, len(seg.Words))
		if !*listing {
			continue
		}
		for i := 0; i < len(seg.Words); {
			addr := seg.Addr + uint16(2*i)
			in, n, err := isa.Decode(seg.Words[i:])
			if err != nil {
				fmt.Printf("  %04x: %04x            .word %#04x\n", addr, seg.Words[i], seg.Words[i])
				i++
				continue
			}
			fmt.Printf("  %04x:", addr)
			for j := 0; j < 3; j++ {
				if j < n {
					fmt.Printf(" %04x", seg.Words[i+j])
				} else {
					fmt.Printf("     ")
				}
			}
			fmt.Printf("  %s\n", in.String())
			i += n
		}
	}
	if *symbols {
		fmt.Println("\nsymbols:")
		names := make([]string, 0, len(img.Symbols))
		for n := range img.Symbols {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-24s %#04x\n", n, uint16(img.Symbols[n]))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asm430:", err)
	os.Exit(1)
}
