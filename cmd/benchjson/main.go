// Command benchjson measures analysis throughput over the scaffold
// benchmarks and emits a machine-readable baseline: cycles per second, peak
// conservative-table size, peak memory and wall time per benchmark, backend
// and worker count. The committed baseline (BENCH_1.json at the repository
// root) is regenerated with `make bench-json`; `make bench-check` re-runs
// the measurement and fails when sequential (Workers=1) throughput
// regressed more than -threshold against the baseline for any backend.
//
// Raw cycles/sec is meaningless across machines, so every run also times a
// fixed single-path calibration program per backend on the same binary and
// records its throughput. Regression checking compares benchmark throughput
// normalized by the matching backend's calibration probe, which cancels
// machine speed and leaves only changes attributable to the engine.
//
// -target selects the processor target (default msp430). The msp430 target
// measures the scaffold benchmarks; rv32 measures its smoke workloads on
// the RV32I-subset core. Each target calibrates with its own probe program,
// and non-default targets are recorded in the per-result "target" field so
// baselines from different targets never silently compare against each
// other.
//
// -fault-campaign switches to the batched fault-injection measurement
// (BENCH_2.json at the repository root): a fixed corpus of fault scenarios
// runs once sequentially (fault.Run, one compiled-backend system per
// scenario) and once per -fault-lanes entry through the bitsliced
// fault.RunBatch, recording aggregate lane-cycles per second and the
// speedup over the sequential baseline. The speedup is a same-machine,
// same-binary ratio — already normalized — so the regression gate compares
// it directly against the committed baseline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/glift"
	"repro/internal/logic"
	"repro/internal/rv32"
	"repro/internal/sim"
	"repro/internal/target"
)

// probeSrc is the calibration workload: one concrete path, no forks, no
// taint, so its throughput is a clean measure of raw gate-level simulation
// speed on this machine and binary.
const probeSrc = `
start:  mov #200, r6
outer:  mov #50, r5
loop:   dec r5
        jnz loop
        dec r6
        jnz outer
        jmp start
`

// rv32ProbeSrc is the same calibration shape transposed to the rv32 target:
// nested concrete countdown loops, no taint, no forks.
const rv32ProbeSrc = `
start:  li x6, 200
outer:  li x5, 50
loop:   addi x5, x5, -1
        bne x5, x0, loop
        addi x6, x6, -1
        bne x6, x0, outer
        j start
`

const probeCycles = 20_000

// probeSrcs maps each registered target to its calibration program. A
// target without a probe cannot be measured: normalization would silently
// compare against the wrong machine-speed reference.
var probeSrcs = map[string]string{
	"msp430": probeSrc,
	"rv32":   rv32ProbeSrc,
}

// minCompareCycles is the floor below which a benchmark's wall time is
// dominated by system construction rather than exploration; such
// measurements are too noisy for the regression gate and are skipped.
const minCompareCycles = 1000

// Result is one (benchmark, backend, workers) measurement.
type Result struct {
	Name string `json:"name"`
	// Target is the processor target the benchmark ran on; empty means the
	// default (msp430), which keeps pre-target baselines byte-compatible.
	Target       string  `json:"target,omitempty"`
	Backend      string  `json:"backend"`
	Workers      int     `json:"workers"`
	Cycles       uint64  `json:"cycles"`
	WallNanos    int64   `json:"wall_ns"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	TableStates  int     `json:"table_states"`
	PeakMemBytes int64   `json:"peak_mem_bytes"`
	Verdict      string  `json:"verdict"`
}

// FaultResult is one fault-campaign measurement: the whole scenario corpus
// executed either sequentially (fault.Run, one compiled-backend system per
// scenario) or through the bitsliced fault.RunBatch with the given number
// of scenarios submitted per call.
type FaultResult struct {
	// Mode is "sequential" (fault.Run) or "batched" (fault.RunBatch).
	Mode string `json:"mode"`
	// Lanes is the scenario count submitted per RunBatch call (1 for the
	// sequential mode); occupancy of the 64-wide batch is Lanes/64.
	Lanes     int    `json:"lanes"`
	Scenarios int    `json:"scenarios"`
	Cycles    uint64 `json:"cycles"` // aggregate simulated cycles over all scenarios
	WallNanos int64  `json:"wall_ns"`
	// CyclesPerSec is aggregate throughput: total scenario cycles divided
	// by the campaign's wall time.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// Speedup is CyclesPerSec over the sequential mode's, measured in the
	// same process — a machine-independent ratio, so the regression gate
	// compares it directly (sequential entries carry 1).
	Speedup float64 `json:"speedup_vs_sequential,omitempty"`
}

// Baseline is the benchjson output document. Schema glift-bench/2 added the
// backend dimension: results carry a backend name and the calibration probe
// is measured per backend (the probe map is keyed by backend name; since
// glift-bench/3 the probe is sampled before and after the sweep and the
// peak kept). Schema glift-bench/3 also added the fault-campaign document
// shape: -fault-campaign emits Fault entries (lane-count probes) instead
// of Results.
type Baseline struct {
	Schema            string             `json:"schema"`
	NumCPU            int                `json:"num_cpu"`
	GoMaxProcs        int                `json:"go_max_procs"`
	ProbeCyclesPerSec map[string]float64 `json:"probe_cycles_per_sec,omitempty"`
	Results           []Result           `json:"results,omitempty"`
	Fault             []FaultResult      `json:"fault,omitempty"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(2)
}

func measureProbe(tgt *target.Target, backend sim.BackendKind, reps int) (float64, error) {
	src, ok := probeSrcs[tgt.Name]
	if !ok {
		return 0, fmt.Errorf("no calibration probe for target %q", tgt.Name)
	}
	img, err := tgt.Assemble(src)
	if err != nil {
		return 0, fmt.Errorf("assemble probe: %w", err)
	}
	opt := &glift.Options{MaxCycles: probeCycles, Workers: 1, Backend: backend}
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		rep, err := glift.AnalyzeContextOn(context.Background(), tgt.Design(), img, &glift.Policy{Name: "probe"}, opt)
		if err != nil {
			return 0, fmt.Errorf("probe analysis (%s): %w", backend, err)
		}
		el := time.Since(start)
		if el <= 0 || rep.Stats.Cycles == 0 {
			return 0, fmt.Errorf("probe measured nothing (cycles=%d wall=%v)", rep.Stats.Cycles, el)
		}
		if cps := float64(rep.Stats.Cycles) / el.Seconds(); cps > best {
			best = cps
		}
	}
	return best, nil
}

// benchCase is one assembled workload ready to measure, abstracted over
// the benchmark suite that produced it (msp430 scaffold benchmarks or the
// rv32 smoke workloads).
type benchCase struct {
	name string
	img  *asm.Image
	pol  *glift.Policy
}

// casesFor builds the benchmark suite for a target, optionally filtered to
// a comma-separated name list.
func casesFor(tgt *target.Target, filter string) ([]benchCase, error) {
	var names []string
	if filter != "" {
		for _, n := range strings.Split(filter, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	var out []benchCase
	switch tgt.Name {
	case target.Default().Name:
		var benches []*bench.Benchmark
		if names == nil {
			benches = bench.All()
		} else {
			for _, n := range names {
				b := bench.ByName(n)
				if b == nil {
					return nil, fmt.Errorf("unknown benchmark %q", n)
				}
				benches = append(benches, b)
			}
		}
		for _, b := range benches {
			bt, err := bench.BuildUnmodified(b)
			if err != nil {
				return nil, err
			}
			out = append(out, benchCase{name: b.Name, img: bt.Img, pol: bt.Policy})
		}
	case "rv32":
		var benches []*rv32.Benchmark
		if names == nil {
			benches = rv32.Benchmarks()
		} else {
			for _, n := range names {
				b := rv32.BenchmarkByName(n)
				if b == nil {
					return nil, fmt.Errorf("unknown rv32 benchmark %q", n)
				}
				benches = append(benches, b)
			}
		}
		for _, b := range benches {
			img, err := b.Build()
			if err != nil {
				return nil, fmt.Errorf("assemble %s: %w", b.Name, err)
			}
			out = append(out, benchCase{name: b.Name, img: img, pol: b.Policy()})
		}
	default:
		return nil, fmt.Errorf("no benchmark suite for target %q", tgt.Name)
	}
	return out, nil
}

// measure runs the analysis reps times and keeps the fastest repetition:
// the minimum wall time is the least-noise estimate of the engine's cost,
// since scheduling interference and cold caches only ever add time.
func measure(tgt *target.Target, c benchCase, backend sim.BackendKind, workers, reps int) (Result, error) {
	tag := ""
	if tgt.Name != target.Default().Name {
		tag = tgt.Name
	}
	best := Result{}
	for i := 0; i < reps; i++ {
		start := time.Now()
		rep, err := glift.AnalyzeContextOn(context.Background(), tgt.Design(), c.img, c.pol, &glift.Options{Workers: workers, Backend: backend})
		if err != nil {
			return Result{}, fmt.Errorf("bench %s (%s, workers=%d): %w", c.name, backend, workers, err)
		}
		el := time.Since(start)
		if i == 0 || el.Nanoseconds() < best.WallNanos {
			best = Result{
				Name:         c.name,
				Target:       tag,
				Backend:      backend.String(),
				Workers:      workers,
				Cycles:       rep.Stats.Cycles,
				WallNanos:    el.Nanoseconds(),
				CyclesPerSec: float64(rep.Stats.Cycles) / el.Seconds(),
				TableStates:  rep.Stats.TableStates,
				PeakMemBytes: rep.Stats.PeakMemBytes,
				Verdict:      rep.Verdict().String(),
			}
		}
	}
	return best, nil
}

// campaignSrc is the fault-campaign workload: nested concrete countdown
// loops that run tens of thousands of cycles and then park on a self-jump,
// so every scenario terminates cleanly. The loops only touch r5/r6 and no
// ports, which lets the scenario corpus corrupt the rest of the machine
// without perturbing control flow — every lane simulates the same cycle
// count and the aggregate is a pure throughput measure.
const campaignSrc = `
start:  mov #200, r6
outer:  mov #50, r5
loop:   dec r5
        jnz loop
        dec r6
        jnz outer
park:   jmp park
`

const campaignMaxCycles = 1_000_000

// campaignScenarios builds n single-fault scenarios over nets the campaign
// program never reads: stuck-at bits in r8..r15 and unknown/tainted input
// ports. Sequential stuck-at runs pay a private netlist build per scenario
// — the real fault.Run cost the batched emulation avoids.
func campaignScenarios(n int) [][]fault.Fault {
	out := make([][]fault.Fault, n)
	for i := range out {
		if i%2 == 0 {
			v := logic.Zero
			if i%4 == 0 {
				v = logic.One
			}
			out[i] = []fault.Fault{fault.StuckFF{
				FF:    fmt.Sprintf("r%d:%d", 8+(i/2)%8, (i/16)%16),
				Value: v,
			}}
		} else {
			out[i] = []fault.Fault{fault.PortX{Port: (i / 2) % 4, Taint: i%4 == 3}}
		}
	}
	return out
}

// measureFaultSequential times the whole corpus through fault.Run, keeping
// the fastest repetition.
func measureFaultSequential(img *asm.Image, scenarios [][]fault.Fault, reps int) (FaultResult, error) {
	ctx := context.Background()
	best := FaultResult{}
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		var total uint64
		for i, sc := range scenarios {
			cycles, err := fault.Run(ctx, img, campaignMaxCycles, sc...)
			if err != nil {
				return FaultResult{}, fmt.Errorf("fault campaign scenario %d: %w", i, err)
			}
			total += cycles
		}
		el := time.Since(start)
		if rep == 0 || el.Nanoseconds() < best.WallNanos {
			best = FaultResult{
				Mode: "sequential", Lanes: 1, Scenarios: len(scenarios),
				Cycles: total, WallNanos: el.Nanoseconds(),
				CyclesPerSec: float64(total) / el.Seconds(),
				Speedup:      1,
			}
		}
	}
	return best, nil
}

// measureFaultBatched times the corpus through fault.RunBatch with `lanes`
// scenarios submitted per call, keeping the fastest repetition.
func measureFaultBatched(img *asm.Image, scenarios [][]fault.Fault, lanes, reps int) (FaultResult, error) {
	ctx := context.Background()
	best := FaultResult{}
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		var total uint64
		for off := 0; off < len(scenarios); off += lanes {
			end := min(off+lanes, len(scenarios))
			rs, err := fault.RunBatch(ctx, img, campaignMaxCycles, scenarios[off:end])
			if err != nil {
				return FaultResult{}, fmt.Errorf("fault campaign batch at %d: %w", off, err)
			}
			for i, r := range rs {
				if r.Err != nil {
					return FaultResult{}, fmt.Errorf("fault campaign scenario %d: %w", off+i, r.Err)
				}
				total += r.Cycles
			}
		}
		el := time.Since(start)
		if rep == 0 || el.Nanoseconds() < best.WallNanos {
			best = FaultResult{
				Mode: "batched", Lanes: lanes, Scenarios: len(scenarios),
				Cycles: total, WallNanos: el.Nanoseconds(),
				CyclesPerSec: float64(total) / el.Seconds(),
			}
		}
	}
	return best, nil
}

// runFaultCampaign fills doc.Fault with the sequential baseline plus one
// batched lane-count probe per entry of lanesList.
func runFaultCampaign(doc *Baseline, lanesList []int, reps int) error {
	img, err := asm.AssembleSource(campaignSrc)
	if err != nil {
		return fmt.Errorf("assemble campaign: %w", err)
	}
	scenarios := campaignScenarios(128)
	seq, err := measureFaultSequential(img, scenarios, reps)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fault-campaign sequential      %3d scenarios %9d cycles %12.0f cycles/sec\n",
		seq.Scenarios, seq.Cycles, seq.CyclesPerSec)
	doc.Fault = append(doc.Fault, seq)
	for _, lanes := range lanesList {
		r, err := measureFaultBatched(img, scenarios, lanes, reps)
		if err != nil {
			return err
		}
		if r.Cycles != seq.Cycles {
			return fmt.Errorf("batched campaign (lanes=%d) simulated %d cycles, sequential %d — modes diverged",
				lanes, r.Cycles, seq.Cycles)
		}
		r.Speedup = r.CyclesPerSec / seq.CyclesPerSec
		fmt.Fprintf(os.Stderr, "fault-campaign batched/lanes=%-2d %3d scenarios %9d cycles %12.0f cycles/sec %6.2fx\n",
			r.Lanes, r.Scenarios, r.Cycles, r.CyclesPerSec, r.Speedup)
		doc.Fault = append(doc.Fault, r)
	}
	return nil
}

// compareFault checks batched fault-campaign speedups against a baseline
// document. The speedup is already machine-normalized (a same-process
// ratio), so the gate compares it directly. Returns the regression count.
func compareFault(cur, base *Baseline, threshold float64) int {
	baseBy := map[int]FaultResult{}
	for _, r := range base.Fault {
		if r.Mode == "batched" {
			baseBy[r.Lanes] = r
		}
	}
	regressions := 0
	for _, r := range cur.Fault {
		if r.Mode != "batched" {
			continue
		}
		b, ok := baseBy[r.Lanes]
		if !ok || b.Speedup <= 0 {
			continue
		}
		ratio := r.Speedup / b.Speedup
		status := "ok"
		if ratio < 1-threshold {
			status = "REGRESSION"
			regressions++
		}
		fmt.Printf("fault-campaign lanes=%-2d speedup %.2fx -> %.2fx (%.0f%%) %s\n",
			r.Lanes, b.Speedup, r.Speedup, ratio*100, status)
	}
	return regressions
}

// compareKey identifies one gated measurement in a baseline.
type compareKey struct {
	name    string
	target  string
	backend string
}

// compare checks sequential throughput against a baseline file, normalized
// by each run's matching calibration probe. Returns the number of
// regressions.
func compare(cur *Baseline, baselinePath string, threshold float64) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parse %s: %w", baselinePath, err))
	}
	if base.Schema != cur.Schema {
		fatal(fmt.Errorf("baseline schema %q does not match %q (regenerate with make bench-json)",
			base.Schema, cur.Schema))
	}
	if len(cur.Fault) > 0 {
		return compareFault(cur, &base, threshold)
	}
	baseBy := map[compareKey]Result{}
	for _, r := range base.Results {
		if r.Workers == 1 {
			baseBy[compareKey{r.Name, r.Target, r.Backend}] = r
		}
	}
	regressions := 0
	for _, r := range cur.Results {
		if r.Workers != 1 {
			continue
		}
		b, ok := baseBy[compareKey{r.Name, r.Target, r.Backend}]
		if !ok {
			continue
		}
		baseProbe, curProbe := base.ProbeCyclesPerSec[r.Backend], cur.ProbeCyclesPerSec[r.Backend]
		if baseProbe <= 0 || curProbe <= 0 {
			fatal(fmt.Errorf("missing %s calibration probe (baseline %.0f, current %.0f)",
				r.Backend, baseProbe, curProbe))
		}
		if r.Cycles < minCompareCycles {
			fmt.Printf("%-10s %-8s workers=1 skipped (%d cycles: setup-dominated, too noisy to gate)\n",
				r.Name, r.Backend, r.Cycles)
			continue
		}
		baseNorm := b.CyclesPerSec / baseProbe
		curNorm := r.CyclesPerSec / curProbe
		ratio := curNorm / baseNorm
		status := "ok"
		if ratio < 1-threshold {
			status = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-10s %-8s workers=1 normalized %.3f -> %.3f (%.0f%%) %s\n",
			r.Name, r.Backend, baseNorm, curNorm, ratio*100, status)
	}
	return regressions
}

// speedupSummary prints the compiled backend's sequential throughput gain
// over the interpreter when both were measured, normalized per benchmark.
func speedupSummary(doc *Baseline) {
	interp := map[string]Result{}
	for _, r := range doc.Results {
		if r.Workers == 1 && r.Backend == sim.BackendInterp.String() {
			interp[r.Name] = r
		}
	}
	for _, r := range doc.Results {
		if r.Workers != 1 || r.Backend != sim.BackendCompiled.String() {
			continue
		}
		b, ok := interp[r.Name]
		if !ok || b.CyclesPerSec <= 0 || r.Cycles < minCompareCycles {
			continue
		}
		fmt.Fprintf(os.Stderr, "%-10s compiled/interp speedup %.2fx\n", r.Name, r.CyclesPerSec/b.CyclesPerSec)
	}
}

func main() {
	targetName := flag.String("target", "", target.FlagHelp())
	workersList := flag.String("workers", "1,4", "comma-separated engine worker counts to measure")
	backendsList := flag.String("backends", "compiled,interp", "comma-separated evaluation backends to measure")
	out := flag.String("o", "", "write the JSON baseline to this file (default: stdout)")
	baseline := flag.String("compare", "", "baseline JSON to check Workers=1 throughput against")
	threshold := flag.Float64("threshold", 0.20, "maximum tolerated normalized cycles/sec regression")
	reps := flag.Int("reps", 3, "repetitions per measurement (the fastest is kept)")
	filter := flag.String("bench", "", "comma-separated benchmark names (default: all)")
	faultCampaign := flag.Bool("fault-campaign", false, "measure the batched fault-injection campaign instead of the scaffold benchmarks")
	faultLanes := flag.String("fault-lanes", "1,8,64", "comma-separated RunBatch lane counts for -fault-campaign")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [flags] (see -help)")
		os.Exit(2)
	}

	var workers []int
	for _, f := range strings.Split(*workersList, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			fatal(fmt.Errorf("bad -workers entry %q", f))
		}
		workers = append(workers, w)
	}
	var backends []sim.BackendKind
	for _, f := range strings.Split(*backendsList, ",") {
		be, err := sim.ParseBackend(strings.TrimSpace(f))
		if err != nil {
			fatal(err)
		}
		backends = append(backends, be)
	}
	tgt, err := target.Parse(*targetName)
	if err != nil {
		fatal(err)
	}
	cases, err := casesFor(tgt, *filter)
	if err != nil {
		fatal(err)
	}

	if *reps < 1 {
		fatal(fmt.Errorf("bad -reps %d", *reps))
	}
	doc := &Baseline{
		Schema:     "glift-bench/3",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if *faultCampaign {
		if tgt.Name != target.Default().Name {
			fatal(fmt.Errorf("the fault campaign runs on the %s target only (internal/fault is tied to its design)", target.Default().Name))
		}
		var lanes []int
		for _, f := range strings.Split(*faultLanes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 || n > sim.BatchLanes {
				fatal(fmt.Errorf("bad -fault-lanes entry %q (want 1-%d)", f, sim.BatchLanes))
			}
			lanes = append(lanes, n)
		}
		if err := runFaultCampaign(doc, lanes, *reps); err != nil {
			fatal(err)
		}
	} else {
		// The probe is sampled both before and after the benchmark sweep
		// and the peak kept: on shared machines the effective CPU speed
		// drifts over the minutes the sweep takes, and a single
		// start-of-run sample would bake that instant's speed into every
		// normalized value. Peak-vs-peak matches the best-of-reps policy
		// the benchmarks themselves use.
		doc.ProbeCyclesPerSec = map[string]float64{}
		for _, be := range backends {
			probe, err := measureProbe(tgt, be, *reps)
			if err != nil {
				fatal(err)
			}
			doc.ProbeCyclesPerSec[be.String()] = probe
		}
		for _, c := range cases {
			for _, be := range backends {
				for _, w := range workers {
					r, err := measure(tgt, c, be, w, *reps)
					if err != nil {
						fatal(err)
					}
					fmt.Fprintf(os.Stderr, "%-10s %-8s workers=%d %8d cycles %10.0f cycles/sec table=%d\n",
						r.Name, r.Backend, r.Workers, r.Cycles, r.CyclesPerSec, r.TableStates)
					doc.Results = append(doc.Results, r)
				}
			}
		}
		for _, be := range backends {
			probe, err := measureProbe(tgt, be, *reps)
			if err != nil {
				fatal(err)
			}
			if probe > doc.ProbeCyclesPerSec[be.String()] {
				doc.ProbeCyclesPerSec[be.String()] = probe
			}
		}
		speedupSummary(doc)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
	} else if *baseline == "" {
		os.Stdout.Write(enc)
	}

	if *baseline != "" {
		if n := compare(doc, *baseline, *threshold); n > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%%\n", n, *threshold*100)
			os.Exit(1)
		}
	}
}
