// gliftd is the long-running analysis daemon: the glift engine behind an
// HTTP API with a bounded worker pool, per-job deadlines, live progress,
// cancellation, a content-addressed result cache, and an optional
// crash-safe persistent result store that survives restarts.
//
// Besides one-shot analysis, a submission with "mode": "repair" runs the
// secure430 analyze→mask→re-verify round loop (internal/repair — literally
// the same code the CLI runs) server-side: the result carries the patched
// assembly, per-round counts, the targeted-vs-always-on overhead comparison
// and the final report, with a round event on the job's SSE stream at every
// round boundary. See README.md "Repair as a service".
//
// Usage:
//
//	gliftd -addr :8430 -workers 4 -queue 64 -cache 1024 -deadline 2m \
//	       -store-dir /var/lib/gliftd -store-max-bytes 1073741824 \
//	       -tenant-rate 50 -tenant-burst 100
//
// API (see README.md "Running as a service" for curl examples):
//
//	POST   /jobs          submit {source|ihex, policy, options}; ?wait=1 blocks;
//	                      {mode: "repair", repair: {...}} runs the repair loop
//	GET    /jobs/{id}     status + live progress, report (and, for repair
//	                      jobs, the repair payload) when done
//	GET    /jobs/{id}/events  live SSE stream: state/progress/trace/round
//	                      events, terminal verdict event, Last-Event-ID resume
//	DELETE /jobs/{id}     cancel; the job completes with verdict incomplete
//	GET    /metrics       Prometheus text exposition (service + engine + store
//	                      series); the legacy JSON shape via Accept: application/json
//	GET    /metrics.json  jobs by verdict, cache/store hits, queue depth, ...
//	GET    /healthz       liveness
//
// Durability: with -store-dir set, completed Verified/Violations reports are
// fsynced to a content-addressed on-disk store before the submitter is
// answered, and startup recovery re-validates (SHA-256) and re-indexes every
// surviving record — a torn or corrupt record is quarantined, never served.
//
// Admission: per-tenant token buckets (X-Tenant header) reject over-quota
// submissions 429 + Retry-After; deadline-aware shedding rejects jobs whose
// deadline cannot be met at the predicted queue wait 503 + Retry-After; a
// full queue rejects 503 + Retry-After.
//
// Completed jobs map the CLI verdict/exit-code taxonomy onto HTTP statuses:
// verified → 200, violations → 409, incomplete → 504, internal error → 500;
// malformed submissions → 400.
//
// Logs are structured JSON on stderr (-log-level debug|info|warn|error),
// one line per event with job_id/tenant/verdict fields where applicable.
//
// Shutdown (SIGINT/SIGTERM) is ordered and bounded by -drain-timeout:
// stop accepting connections and drain in-flight HTTP, then drain the job
// queue and workers (persisting completed results), then stop the pool.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/target"
)

func main() {
	addr := flag.String("addr", ":8430", "listen address")
	targetName := flag.String("target", "", "default "+target.FlagHelp()+" for jobs that omit the target field")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent analysis workers")
	queue := flag.Int("queue", 64, "queued-job bound (a full queue rejects with 503)")
	cache := flag.Int("cache", 1024, "content-addressed result cache entries")
	deadline := flag.Duration("deadline", 0, "default per-job deadline (0: none)")
	engineWorkers := flag.Int("engine-workers", 1, "exploration workers per engine run (0: GOMAXPROCS); service workers multiply with engine workers")
	engineBackend := flag.String("engine-backend", "", "gate-evaluation backend for jobs that do not request one: "+backendHelp())
	engineSpecLanes := flag.Int("engine-spec-lanes", 0, "bitsliced speculation lanes per worker for jobs that do not request them (0 or 1: scalar, max 64)")
	storeDir := flag.String("store-dir", "", "crash-safe persistent result store directory (empty: memory-only cache)")
	storeMax := flag.Int64("store-max-bytes", 0, "persistent store byte cap, oldest evicted first (0: unbounded)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission rate in jobs/sec, keyed by X-Tenant (0: unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant token-bucket burst (0: ceil(rate))")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound: HTTP drain, then job-queue drain, then stop")
	streamRing := flag.Int("stream-ring", obs.DefaultRingEvents, "per-job event ring bound for GET /jobs/{id}/events (slow readers see gap events past this)")
	streamHeartbeat := flag.Duration("stream-heartbeat", 0, "SSE comment-heartbeat cadence on quiet streams (0: 15s default)")
	logLevel := flag.String("log-level", "info", "structured log threshold: debug, info, warn, or error")
	chaos503 := flag.Int("chaos-inject-503", 0, "TESTING: percent of submissions answered with a spurious 503 + Retry-After")
	chaosSlowWrite := flag.Duration("chaos-slow-write", 0, "TESTING: hold every store write half-written this long before fsync+rename")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: gliftd [flags] (see -help)")
		os.Exit(2)
	}
	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gliftd: %v\n", err)
		os.Exit(2)
	}
	// One JSON line per event on stderr: greppable by field (job_id, tenant,
	// verdict), machine-parseable by log shippers.
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	backend, err := sim.ParseBackend(*engineBackend)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gliftd: %v\n", err)
		os.Exit(2)
	}
	if _, err := target.Parse(*targetName); err != nil {
		fmt.Fprintf(os.Stderr, "gliftd: %v\n", err)
		os.Exit(2)
	}

	srv, err := service.New(service.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheEntries:       *cache,
		DefaultDeadline:    *deadline,
		EngineWorkers:      *engineWorkers,
		EngineBackend:      backend,
		EngineSpecLanes:    *engineSpecLanes,
		StoreDir:           *storeDir,
		StoreMaxBytes:      *storeMax,
		StoreWriteDelay:    *chaosSlowWrite,
		TenantRate:         *tenantRate,
		TenantBurst:        *tenantBurst,
		ChaosRejectPercent: *chaos503,
		StreamRingEvents:   *streamRing,
		StreamHeartbeat:    *streamHeartbeat,
		DefaultTarget:      *targetName,
		Logger:             logger,
	})
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	if st := srv.Store(); st != nil {
		stats := st.Stats()
		logger.Info("result store recovered",
			"dir", st.Dir(), "entries", stats.Recovered, "bytes", st.Bytes(),
			"quarantined", stats.Quarantined, "tmp_cleaned", stats.TmpCleaned)
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		// Explicit registration instead of the package's DefaultServeMux
		// side effect, so profiling stays opt-in behind the flag.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	hs := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "workers", *workers, "queue", *queue, "cache", *cache)

	select {
	case err := <-serveErr:
		// The listener failed before any signal (bad address, port in use).
		srv.Close()
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Ordered, bounded shutdown. One deadline covers all three stages so a
	// hung client or a long-running job cannot stall the exit forever:
	//  1. stop accepting connections and drain in-flight HTTP requests;
	//  2. drain the job queue and workers — completed results are persisted
	//     to the store before their waiters are released;
	//  3. stop the pool (anything still running after the deadline has been
	//     cancelled and completes Incomplete, which is never persisted).
	logger.Info("shutting down", "drain_bound", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http drain incomplete", "err", err)
		hs.Close() //nolint:errcheck // connections past the drain bound are cut, not waited on
	}
	if err := srv.Drain(shutdownCtx); err != nil {
		logger.Warn("job drain incomplete, cancelling stragglers", "err", err)
	}
	srv.Close()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("listener error", "err", err)
	}
	logger.Info("stopped")
}

// parseLevel maps the -log-level flag to a slog level.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -log-level %q (debug, info, warn, error)", s)
}

// backendHelp renders the registered backend names for flag help, with the
// registry's first entry marked as the default.
func backendHelp() string {
	names := sim.BackendNames()
	return names[0] + " (default), " + strings.Join(names[1:], ", ")
}
