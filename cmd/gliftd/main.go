// gliftd is the long-running analysis daemon: the glift engine behind an
// HTTP API with a bounded worker pool, per-job deadlines, live progress,
// cancellation, and a content-addressed result cache that serves repeated
// (program, policy, options) submissions without re-running the engine.
//
// Usage:
//
//	gliftd -addr :8430 -workers 4 -queue 64 -cache 1024 -deadline 2m
//
// API (see README.md "Running as a service" for curl examples):
//
//	POST   /jobs          submit {source|ihex, policy, options}; ?wait=1 blocks
//	GET    /jobs/{id}     status + live progress, report when done
//	DELETE /jobs/{id}     cancel; the job completes with verdict incomplete
//	GET    /metrics       Prometheus text exposition (service + engine series);
//	                      the legacy JSON shape via Accept: application/json
//	GET    /metrics.json  jobs by verdict, cache hits/misses, queue depth, ...
//	GET    /healthz       liveness
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/; engine
// runs carry pprof labels (glift_job, glift_policy), so profiles attribute
// CPU and heap to the jobs that burned them.
//
// Completed jobs map the CLI verdict/exit-code taxonomy onto HTTP statuses:
// verified → 200, violations → 409, incomplete → 504, internal error → 500;
// malformed submissions → 400. SIGINT/SIGTERM drain the pool and exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8430", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent analysis workers")
	queue := flag.Int("queue", 64, "queued-job bound (a full queue rejects with 503)")
	cache := flag.Int("cache", 1024, "content-addressed result cache entries")
	deadline := flag.Duration("deadline", 0, "default per-job deadline (0: none)")
	engineWorkers := flag.Int("engine-workers", 1, "exploration workers per engine run (0: GOMAXPROCS); service workers multiply with engine workers")
	engineBackend := flag.String("engine-backend", "", "gate-evaluation backend for jobs that do not request one: compiled (default) or interp")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: gliftd [flags] (see -help)")
		os.Exit(2)
	}
	backend, err := sim.ParseBackend(*engineBackend)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gliftd: %v\n", err)
		os.Exit(2)
	}

	srv := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		DefaultDeadline: *deadline,
		EngineWorkers:   *engineWorkers,
		EngineBackend:   backend,
	})
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *pprofOn {
		// Explicit registration instead of the package's DefaultServeMux
		// side effect, so profiling stays opt-in behind the flag.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("gliftd: pprof enabled on /debug/pprof/")
	}
	hs := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("gliftd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx) //nolint:errcheck // best-effort drain
	}()

	log.Printf("gliftd: serving on %s (%d workers, queue %d, cache %d)", *addr, *workers, *queue, *cache)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("gliftd: %v", err)
	}
	srv.Close() // cancel in-flight jobs and drain the pool
	log.Printf("gliftd: stopped")
}
