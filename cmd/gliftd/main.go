// gliftd is the long-running analysis daemon: the glift engine behind an
// HTTP API with a bounded worker pool, per-job deadlines, live progress,
// cancellation, and a content-addressed result cache that serves repeated
// (program, policy, options) submissions without re-running the engine.
//
// Usage:
//
//	gliftd -addr :8430 -workers 4 -queue 64 -cache 1024 -deadline 2m
//
// API (see README.md "Running as a service" for curl examples):
//
//	POST   /jobs          submit {source|ihex, policy, options}; ?wait=1 blocks
//	GET    /jobs/{id}     status + live progress, report when done
//	DELETE /jobs/{id}     cancel; the job completes with verdict incomplete
//	GET    /metrics       jobs by verdict, cache hits/misses, queue depth, ...
//	GET    /healthz       liveness
//
// Completed jobs map the CLI verdict/exit-code taxonomy onto HTTP statuses:
// verified → 200, violations → 409, incomplete → 504, internal error → 500;
// malformed submissions → 400. SIGINT/SIGTERM drain the pool and exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8430", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent analysis workers")
	queue := flag.Int("queue", 64, "queued-job bound (a full queue rejects with 503)")
	cache := flag.Int("cache", 1024, "content-addressed result cache entries")
	deadline := flag.Duration("deadline", 0, "default per-job deadline (0: none)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: gliftd [flags] (see -help)")
		os.Exit(2)
	}

	srv := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		DefaultDeadline: *deadline,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("gliftd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx) //nolint:errcheck // best-effort drain
	}()

	log.Printf("gliftd: serving on %s (%d workers, queue %d, cache %d)", *addr, *workers, *queue, *cache)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("gliftd: %v", err)
	}
	srv.Close() // cancel in-flight jobs and drain the pool
	log.Printf("gliftd: stopped")
}
