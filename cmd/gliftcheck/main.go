// gliftcheck is the paper's analysis tool (Figure 6): it takes a system
// binary (as assembly for this repository's assembler), an information
// flow security policy, and performs application-specific gate-level
// information flow tracking on the gate-level MSP430-class processor,
// reporting every possible violation with its root-cause instruction.
//
// Usage:
//
//	gliftcheck -tainted-in 1 -tainted-out 2 \
//	           -tainted-code task_start:task_end \
//	           -tainted-data 0x0400:0x0800 app.s43
//
// Ports are numbered 1-4 (P1..P4). Code ranges may use symbols defined in
// the program; data ranges are hex addresses.
//
// -target selects the processor target from the registry (default msp430;
// rv32 is the RV32I-subset core). The source is assembled with the
// target's assembler and analyzed on its gate-level design.
//
// The verdict enum (verified | violations | incomplete | internal-error)
// is printed on stderr and the exit code follows a fail-closed contract:
//
//	0  verified: the exploration completed and proved the policy
//	1  violations: the exploration completed and found potential violations
//	2  usage or input error (bad flags, unreadable or unassemblable source)
//	3  analysis incomplete (deadline, SIGINT, cycle or memory budget) or
//	   internal analyzer error — the absence of violations proves nothing
//
// -deadline bounds the wall-clock time of the exploration; SIGINT aborts
// it the same way. Both produce a partial report and exit code 3.
//
// -json replaces the human-readable stdout report with one JSON document in
// the same wire shape the gliftd service returns (internal/glift ReportJSON).
//
// -trace <file> records the exploration dynamics — path spans, forks,
// merges, prunes, widening escalations, violations, budget crossings — as
// Chrome trace_event JSON, viewable in chrome://tracing or Perfetto
// (validate/summarize with cmd/traceview). -taint-trace N prints the first
// N per-cycle tainted-state entries (the pre-PR-3 meaning of -trace).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/target"
)

// writeChromeTrace dumps the recorded exploration trace to path.
func writeChromeTrace(xt *obs.ExplorationTrace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := xt.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	targetName := flag.String("target", "", target.FlagHelp())
	taintedIn := flag.String("tainted-in", "", "comma-separated tainted input ports (1-4)")
	taintedOut := flag.String("tainted-out", "", "comma-separated output ports tainted code may use (1-4)")
	taintedCode := flag.String("tainted-code", "", "comma-separated lo:hi tainted code ranges (symbols or hex)")
	taintedData := flag.String("tainted-data", "", "comma-separated lo:hi tainted data partitions (hex)")
	initTainted := flag.String("initially-tainted", "", "comma-separated lo:hi initially tainted (secret) data")
	taintWords := flag.Bool("taint-code-words", false, "also mark tainted code's instruction words as tainted data")
	maxCycles := flag.Uint64("max-cycles", 0, "exploration cycle budget (0: default)")
	deadline := flag.Duration("deadline", 0, "wall-clock analysis deadline (0: none); expiry exits 3")
	softMem := flag.Int64("soft-mem", 0, "soft memory budget in bytes, escalates widening (0: default, <0: unlimited)")
	hardMem := flag.Int64("hard-mem", 0, "hard memory budget in bytes, aborts as incomplete (0: default, <0: unlimited)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON exploration trace to this file")
	traceN := flag.Int("taint-trace", 0, "print the first N per-cycle tainted-state entries")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout (the gliftd wire shape)")
	workers := flag.Int("workers", 0, "engine exploration workers (0: GOMAXPROCS, 1: sequential); the report is identical either way")
	backendName := flag.String("backend", "", "gate-evaluation backend: "+backendHelp()+"; the report is byte-identical either way")
	specLanes := flag.Int("spec-lanes", 0, "pack up to N queued paths per speculation worker onto bitsliced lanes (0 or 1: scalar, max 64); the report is identical either way")
	verbose := flag.Bool("v", false, "print exploration statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gliftcheck [flags] app.s43 (see -help)")
		os.Exit(2)
	}
	tgt, err := target.Parse(*targetName)
	if err != nil {
		fatal(err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, err := tgt.Assemble(string(src))
	if err != nil {
		fatal(err)
	}

	pol := &glift.Policy{Name: "cli", TaintCodeWords: *taintWords}
	if pol.TaintedInPorts, err = parsePorts(*taintedIn); err != nil {
		fatal(err)
	}
	if pol.TaintedOutPorts, err = parsePorts(*taintedOut); err != nil {
		fatal(err)
	}
	if pol.TaintedCode, err = parseRanges(*taintedCode, img); err != nil {
		fatal(err)
	}
	if pol.TaintedData, err = parseRanges(*taintedData, img); err != nil {
		fatal(err)
	}
	if pol.InitiallyTaintedData, err = parseRanges(*initTainted, img); err != nil {
		fatal(err)
	}

	backend, err := sim.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	opts := &glift.Options{MaxCycles: *maxCycles, SoftMemBytes: *softMem, HardMemBytes: *hardMem, Workers: *workers, Backend: backend, SpecLanes: *specLanes}
	var rec *glift.TraceRecorder
	if *traceN > 0 {
		rec = &glift.TraceRecorder{Max: *traceN}
		opts.Trace = rec.Hook()
	}
	var xt *obs.ExplorationTrace
	if *traceFile != "" {
		xt = obs.NewExplorationTrace(0)
		opts.Tracer = xt.Record
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	rep, err := glift.AnalyzeContextOn(ctx, tgt.Design(), img, pol, opts)
	if err != nil {
		fatal(err)
	}
	// With -json, stdout carries exactly one JSON document; the side-channel
	// prints move to stderr so the output stays machine-readable.
	traceDst, infoDst := os.Stdout, os.Stdout
	if *jsonOut {
		traceDst, infoDst = os.Stderr, os.Stderr
	}
	if rec != nil {
		fmt.Fprintln(traceDst, "per-cycle tainted state (first entries):")
		if _, err := rec.WriteTo(traceDst); err != nil {
			fatal(err)
		}
	}
	if xt != nil {
		if err := writeChromeTrace(xt, *traceFile); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gliftcheck: %s: %d exploration events (%d dropped by the ring bound)\n",
			*traceFile, xt.Total(), xt.Dropped())
	}
	if *verbose {
		fmt.Fprintf(infoDst, "exploration: %s in %s\n", rep.Stats, time.Duration(rep.Stats.WallNanos))
	}
	verdict := rep.Verdict()
	fmt.Fprintln(os.Stderr, "gliftcheck: verdict:", verdict)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep.JSON()); err != nil {
			fatal(err)
		}
		os.Exit(verdict.ExitCode())
	}
	switch verdict {
	case glift.Verified:
		fmt.Println("SECURE: no possible information flow violations for this application on this processor")
	case glift.InternalError:
		fmt.Fprintln(os.Stderr, "gliftcheck:", rep.Err.Error())
		if rep.Err.Stack != "" {
			fmt.Fprintln(os.Stderr, rep.Err.Stack)
		}
	default:
		if verdict == glift.Incomplete {
			fmt.Println("NOT PROVEN: the exploration did not run to completion; violations listed below are a lower bound")
		}
		fmt.Printf("%d potential information flow violations:\n", len(rep.Violations))
		for _, v := range rep.Violations {
			loc := ""
			if si, ok := img.AddrToStmt[v.PC]; ok {
				loc = fmt.Sprintf(" [line %d: %s]", img.Stmts[si].Line, strings.TrimSpace(img.Stmts[si].String()))
			}
			fmt.Printf("  %s%s\n", v, loc)
		}
		if pcs := rep.ViolatingStorePCs(); len(pcs) > 0 {
			fmt.Printf("stores needing address masking: %d\n", len(pcs))
		}
		if rep.NeedsWatchdog() {
			fmt.Println("tainted control flow detected: the watchdog-reset transform is required")
		}
	}
	os.Exit(verdict.ExitCode())
}

func parsePorts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 || n > 4 {
			return nil, fmt.Errorf("bad port %q (want 1-4)", part)
		}
		out = append(out, n-1)
	}
	return out, nil
}

func parseRanges(s string, img *asm.Image) ([]glift.AddrRange, error) {
	if s == "" {
		return nil, nil
	}
	var out []glift.AddrRange
	for _, part := range strings.Split(s, ",") {
		lo, hi, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad range %q (want lo:hi)", part)
		}
		l, err := resolve(lo, img)
		if err != nil {
			return nil, err
		}
		h, err := resolve(hi, img)
		if err != nil {
			return nil, err
		}
		out = append(out, glift.AddrRange{Lo: l, Hi: h})
	}
	return out, nil
}

func resolve(s string, img *asm.Image) (uint16, error) {
	if v, ok := img.Symbol(s); ok {
		return v, nil
	}
	n, err := strconv.ParseUint(strings.ToLower(s), 0, 16)
	if err != nil {
		return 0, fmt.Errorf("cannot resolve %q as a symbol or address", s)
	}
	return uint16(n), nil
}

// backendHelp renders the registered backend names for flag help, with the
// registry's first entry marked as the default.
func backendHelp() string {
	names := sim.BackendNames()
	return names[0] + " (default), " + strings.Join(names[1:], ", ")
}

// fatal reports a usage/input error (exit code 2 in the documented
// contract); analysis outcomes exit through Verdict.ExitCode instead.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gliftcheck:", err)
	os.Exit(2)
}
