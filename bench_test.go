// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation. Run everything once with
//
//	go test -bench . -benchtime 1x
//
// Each benchmark both exercises the code path that regenerates the artifact
// and reports the headline quantities as custom metrics, so `go test
// -bench` output doubles as the experiment log (EXPERIMENTS.md records the
// paper-vs-measured comparison).
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/asm"
	"repro/internal/bench"
	"repro/internal/energy"
	"repro/internal/glift"
	"repro/internal/logic"
	"repro/internal/motivate"
	"repro/internal/rtos"
)

// BenchmarkFigure1_NANDTruthTable regenerates the GLIFT truth table.
func BenchmarkFigure1_NANDTruthTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := logic.NANDTruthTable()
		if len(rows) != 16 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFigures2to5_Motivation analyzes the four Section 3 scenarios.
func BenchmarkFigures2to5_Motivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := motivate.RunAll(nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 4 {
			b.Fatal("want 4 scenarios")
		}
	}
}

// BenchmarkFigure7_ExecutionTree regenerates the symbolic execution tree of
// the illustrative example.
func BenchmarkFigure7_ExecutionTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tree, err := glift.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if len(tree.Common) != 3 || len(tree.Left) != 3 || len(tree.Right) != 3 {
			b.Fatal("bad tree shape")
		}
	}
}

func analyzeMicro(b *testing.B, src string, taintWords bool) *glift.Report {
	b.Helper()
	img, err := asm.AssembleSource(src)
	if err != nil {
		b.Fatal(err)
	}
	pol := &glift.Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedData:    []glift.AddrRange{{Lo: 0x0400, Hi: 0x0800}},
		TaintCodeWords: taintWords,
	}
	if lo, ok := img.Symbol("tstart"); ok {
		pol.TaintedCode = []glift.AddrRange{{Lo: lo, Hi: img.MustSymbol("tend")}}
	}
	rep, err := glift.Analyze(img, pol, nil)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkFigure8_WatchdogRecovery runs both Figure 8 micro-benchmarks:
// the unprotected task must violate condition 1 and the protected one must
// verify clean.
func BenchmarkFigure8_WatchdogRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unprot := analyzeMicro(b, `
start:  nop
tstart: mov #100, r10
loop:   nop
        dec r10
        jnz loop
        jmp start
tend:   nop
`, true)
		if len(unprot.ByKind(glift.C1TaintedState)) == 0 {
			b.Fatal("unprotected variant should violate C1")
		}
		prot := analyzeMicro(b, `
.equ WDTCTL, 0x0120
start:  mov #0x5a03, &WDTCTL
tstart: mov &0x0020, r10
        and #3, r10
loop:   nop
        dec r10
        jnz loop
spin:   jmp spin
tend:   nop
`, false)
		if !prot.Secure() {
			b.Fatalf("protected variant should verify: %v", prot.Violations)
		}
	}
}

// BenchmarkFigure9_MaskedStore runs both Figure 9 micro-benchmarks: the
// unmasked store must be flagged as a memory escape, the masked one not.
func BenchmarkFigure9_MaskedStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unmasked := analyzeMicro(b, `
start:  jmp tstart
tstart: mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        mov #500, 0(r14)
done:   jmp done
tend:   nop
`, false)
		if len(unmasked.ByKind(glift.C2MemoryEscape)) == 0 {
			b.Fatal("unmasked store should be flagged")
		}
		masked := analyzeMicro(b, `
start:  jmp tstart
tstart: mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        and #0x03ff, r14
        bis #0x0400, r14
        mov #500, 0(r14)
done:   jmp done
tend:   nop
`, false)
		if len(masked.ByKind(glift.C2MemoryEscape)) != 0 {
			b.Fatal("masked store should verify")
		}
	}
}

// Shared evaluations for the table benchmarks (expensive; computed once).
var (
	evalOnce sync.Once
	evals    []*bench.Evaluation
	evalErr  error
)

func evaluations(b *testing.B) []*bench.Evaluation {
	b.Helper()
	evalOnce.Do(func() {
		for _, bm := range bench.All() {
			ev, err := bench.Evaluate(bm, nil)
			if err != nil {
				evalErr = err
				return
			}
			evals = append(evals, ev)
		}
	})
	if evalErr != nil {
		b.Fatal(evalErr)
	}
	return evals
}

// BenchmarkTable2_Violations regenerates Table 2: which benchmarks violate
// sufficient conditions 1 and 2 before and after modification.
func BenchmarkTable2_Violations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := bench.Tables(evaluations(b))
		violating := 0
		for _, r := range rows {
			if r.UnmodC1 && r.UnmodC2 {
				violating++
			}
			if (r.UnmodC1 || r.UnmodC2) != r.ExpectC1C2 {
				b.Fatalf("%s: Table 2 mismatch", r.Name)
			}
			if r.ModC1 || r.ModC2 {
				b.Fatalf("%s: modified program still violates", r.Name)
			}
		}
		b.ReportMetric(float64(violating), "violating-benchmarks")
	}
}

// BenchmarkTable3_Overheads regenerates Table 3 and the 3.3x headline.
func BenchmarkTable3_Overheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows := bench.Tables(evaluations(b))
		var sumWith, sumWithout float64
		for _, r := range rows {
			sumWith += r.With
			sumWithout += r.Without
		}
		b.ReportMetric(sumWith/float64(len(rows)), "avg-with-%")
		b.ReportMetric(sumWithout/float64(len(rows)), "avg-without-%")
		b.ReportMetric(bench.ReductionFactor(rows), "reduction-x")
	}
}

// BenchmarkTable4_ProcessorSurvey regenerates the static survey table
// (printing handled by cmd/experiments; here we only assert its shape).
func BenchmarkTable4_ProcessorSurvey(b *testing.B) {
	processors := []string{"ARM Cortex-M0", "ARM Cortex-M3", "Atmel ATxmega128A4",
		"Freescale/NXP MC13224v", "Intel Quark-D1000", "Jennic/NXP JN5169",
		"SiLab Si2012", "TI MSP430"}
	for i := 0; i < b.N; i++ {
		if len(processors) != 8 {
			b.Fatal("Table 4 rows")
		}
	}
}

// BenchmarkAnalysisTime reports per-benchmark analysis wall time (the
// paper's Footnote 4 discusses analysis tractability).
func BenchmarkAnalysisTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var totalNanos int64
		var totalCycles uint64
		for _, ev := range evaluations(b) {
			totalNanos += ev.UnmodReport.Stats.WallNanos
			totalCycles += ev.UnmodReport.Stats.Cycles
		}
		b.ReportMetric(float64(totalNanos)/1e9, "total-analysis-s")
		b.ReportMetric(float64(totalCycles), "symbolic-cycles")
	}
}

// BenchmarkStarLogicBaseline reproduces Footnote 8: the application-
// agnostic *-logic analysis taints the majority of gates (including the
// watchdog) on applications with tainted control dependences.
func BenchmarkStarLogicBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bt, err := bench.BuildUnmodified(bench.ByName("binSearch"))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := glift.StarLogic(bt.Img, bt.Policy, 64)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.PCBecameUnknown || !rep.WatchdogTainted {
			b.Fatal("*-logic should degrade on binSearch")
		}
		b.ReportMetric(100*rep.GateTaintFraction, "gates-tainted-%")
	}
}

// BenchmarkRTOSUseCase reproduces Section 7.3 end to end.
func BenchmarkRTOSUseCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		uc, err := rtos.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		if !uc.ProtectedReport.Secure() {
			b.Fatal("protected RTOS system should verify")
		}
		b.ReportMetric(uc.OverheadPercent(), "overhead-%")
	}
}

// BenchmarkEnergyOverhead reports the average energy overhead of the
// analysis-guided protections (the paper's abstract reports 15%).
func BenchmarkEnergyOverhead(b *testing.B) {
	model := energy.Default
	for i := 0; i < b.N; i++ {
		var sum float64
		n := 0
		for _, ev := range evaluations(b) {
			if ev.WithMeasure == nil {
				continue
			}
			sum += model.OverheadPercent(
				ev.UnmodMeasure.PeriodCycles, ev.UnmodMeasure.Toggles,
				ev.WithMeasure.PeriodCycles, ev.WithMeasure.Toggles)
			n++
		}
		b.ReportMetric(sum/float64(n), "avg-energy-overhead-%")
	}
}

// BenchmarkIPC reports each benchmark's CPI (the paper: 1.25-1.39).
func BenchmarkIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sum float64
		for _, ev := range evaluations(b) {
			sum += ev.UnmodMeasure.CPI()
		}
		b.ReportMetric(sum/float64(len(evaluations(b))), "avg-cpi")
	}
}

// BenchmarkAblation_WidenThreshold contrasts immediate conservative
// widening (the naive reading of Algorithm 1, WidenAfter=1) against this
// implementation's precise unrolling below a visit threshold: immediate
// widening makes loop pointers unknown and flags clean code.
func BenchmarkAblation_WidenThreshold(b *testing.B) {
	bt, err := bench.BuildUnmodified(bench.ByName("intFilt"))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		eager, err := glift.Analyze(bt.Img, bt.Policy, &glift.Options{WidenAfter: 1})
		if err != nil {
			b.Fatal(err)
		}
		precise, err := glift.Analyze(bt.Img, bt.Policy, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !precise.Secure() {
			b.Fatal("intFilt should verify under precise unrolling")
		}
		b.ReportMetric(float64(len(eager.Violations)), "eager-false-positives")
		b.ReportMetric(float64(eager.Stats.Cycles), "eager-cycles")
		b.ReportMetric(float64(precise.Stats.Cycles), "precise-cycles")
	}
}

// BenchmarkGateSimThroughput measures the raw gate-level simulator speed in
// machine cycles per second (concrete execution of tea8).
func BenchmarkGateSimThroughput(b *testing.B) {
	bt, err := bench.BuildUnmodified(bench.ByName("tea8"))
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		m, err := bench.Measure(bt, 0x7777, 50_000)
		if err != nil {
			b.Fatal(err)
		}
		cycles += 2 * m.PeriodCycles
	}
	b.ReportMetric(float64(cycles), "machine-cycles")
}

// BenchmarkAssembler measures assembly throughput on the largest benchmark.
func BenchmarkAssembler(b *testing.B) {
	src := fmt.Sprintf(".org %#x\n", 0xf000)
	for i := 0; i < 200; i++ {
		src += fmt.Sprintf("l%d: mov #%d, r10\n    add r10, r11\n    jnz l%d\n", i, i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asm.AssembleSource(src); err != nil {
			b.Fatal(err)
		}
	}
}
