package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/target"
)

// cleanSrc verifies: no taint sources touched, trivial control flow.
const cleanSrc = `
start:  mov #0x0280, sp
        clr r10
loop:   jmp loop
`

// violSrc is the Figure 9 unmasked-store micro: a tainted-input-derived
// address escapes the tainted partition (C2), given the right policy.
const violSrc = `
start:  jmp tstart
tstart: mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        mov #500, 0(r14)
done:   jmp done
tend:   nop
`

// slowSrc runs essentially forever under a huge widening threshold: the
// outer counter r11 makes every outer iteration a fresh state, so precise
// unrolling never converges — the job ends only by budget or cancellation.
const slowSrc = `
start:  mov #0x0280, sp
        clr r11
outer:  mov #0xffff, r10
lp:     dec r10
        jnz lp
        inc r11
        jmp outer
`

// violPolicy labels violSrc: P1 tainted input, tstart..tend tainted code,
// 0x0400..0x0800 the tainted data partition.
func violPolicy(t *testing.T) PolicyRequest {
	t.Helper()
	img, err := asm.AssembleSource(violSrc)
	if err != nil {
		t.Fatal(err)
	}
	return PolicyRequest{
		Name:           "viol",
		TaintedInPorts: []int{0},
		TaintedCode:    []RangeRequest{{Lo: img.MustSymbol("tstart"), Hi: img.MustSymbol("tend")}},
		TaintedData:    []RangeRequest{{Lo: 0x0400, Hi: 0x0800}},
	}
}

func slowOptions() OptionsRequest {
	return OptionsRequest{
		MaxCycles:     1 << 34,
		MaxPathCycles: 1 << 34,
		WidenAfter:    1 << 30,
	}
}

type testClient struct {
	t   *testing.T
	srv *httptest.Server
	s   *Server
}

func newTestClient(t *testing.T, cfg Config) (*testClient, *Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return &testClient{t: t, srv: hs, s: s}, s
}

// close shuts the frontend and the service down early; tests that model a
// process restart call this before reopening the same store directory.
// Safe with the registered Cleanup — both closes are idempotent.
func (c *testClient) close() {
	c.srv.Close()
	c.s.Close()
}

func (c *testClient) do(method, path string, body any) (int, JobStatusJSON) {
	c.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		c.t.Fatalf("%s %s: decoding response: %v", method, path, err)
	}
	return resp.StatusCode, st
}

func (c *testClient) metrics() MetricsJSON {
	c.t.Helper()
	// The default /metrics representation is Prometheus text now; the JSON
	// shape stays reachable through content negotiation (and /metrics.json).
	req, err := http.NewRequest("GET", c.srv.URL+"/metrics", nil)
	if err != nil {
		c.t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsJSON
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		c.t.Fatal(err)
	}
	return m
}

// awaitDone polls a job until it reaches the done state.
func (c *testClient) awaitDone(id string, timeout time.Duration) JobStatusJSON {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		_, st := c.do("GET", "/jobs/"+id, nil)
		if st.State == stateDone {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.t.Fatalf("job %s did not finish within %s", id, timeout)
	return JobStatusJSON{}
}

// TestServiceMixedWorkload drives the full loop: concurrent submissions of
// a mix of verifying and violating jobs complete with correct verdicts and
// HTTP statuses, an identical resubmission is a recorded cache hit that
// skips engine execution, and /metrics agrees with the workload.
func TestServiceMixedWorkload(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 4, QueueDepth: 32})
	vp := violPolicy(t)

	const perKind = 3
	type result struct {
		code int
		st   JobStatusJSON
	}
	results := make([]result, 2*perKind)
	var wg sync.WaitGroup
	for i := 0; i < perKind; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			// Distinct max_cycles give each clean job its own content key,
			// making the expected engine-run count deterministic.
			code, st := c.do("POST", "/jobs?wait=1", &JobRequest{
				Source:  cleanSrc,
				Policy:  PolicyRequest{Name: "clean"},
				Options: OptionsRequest{MaxCycles: 4_000_000 + uint64(i)},
			})
			results[i] = result{code, st}
		}(i)
		go func(i int) {
			defer wg.Done()
			code, st := c.do("POST", "/jobs?wait=1", &JobRequest{
				Source:  violSrc,
				Policy:  vp,
				Options: OptionsRequest{MaxCycles: 4_000_000 + uint64(i)},
			})
			results[perKind+i] = result{code, st}
		}(i)
	}
	wg.Wait()

	for i := 0; i < perKind; i++ {
		r := results[i]
		if r.code != http.StatusOK || r.st.Verdict != "verified" || !r.st.Report.Secure {
			t.Errorf("clean job %d: code=%d verdict=%q", i, r.code, r.st.Verdict)
		}
	}
	for i := 0; i < perKind; i++ {
		r := results[perKind+i]
		if r.code != http.StatusConflict || r.st.Verdict != "violations" {
			t.Errorf("violating job %d: code=%d verdict=%q", i, r.code, r.st.Verdict)
			continue
		}
		found := false
		for _, v := range r.st.Report.Violations {
			if v.Kind == "C2-memory-escape" {
				found = true
			}
		}
		if !found {
			t.Errorf("violating job %d: no C2 violation in %+v", i, r.st.Report.Violations)
		}
	}

	m := c.metrics()
	if m.EngineRuns != 2*perKind || m.CacheMisses != 2*perKind || m.CacheHits != 0 {
		t.Errorf("after mixed phase: runs=%d misses=%d hits=%d, want %d/%d/0",
			m.EngineRuns, m.CacheMisses, m.CacheHits, 2*perKind, 2*perKind)
	}

	// Byte-identical resubmission: served from the cache, engine not re-run.
	code, st := c.do("POST", "/jobs?wait=1", &JobRequest{
		Source:  cleanSrc,
		Policy:  PolicyRequest{Name: "clean"},
		Options: OptionsRequest{MaxCycles: 4_000_000},
	})
	if code != http.StatusOK || !st.CacheHit || st.Verdict != "verified" {
		t.Errorf("resubmission: code=%d cache_hit=%v verdict=%q", code, st.CacheHit, st.Verdict)
	}

	m = c.metrics()
	if m.CacheHits != 1 || m.EngineRuns != 2*perKind {
		t.Errorf("cache hit must skip the engine: hits=%d runs=%d", m.CacheHits, m.EngineRuns)
	}
	if m.JobsSubmitted != 2*perKind+1 || m.JobsCompleted != 2*perKind {
		t.Errorf("submitted=%d completed=%d", m.JobsSubmitted, m.JobsCompleted)
	}
	if m.JobsByVerdict["verified"] != perKind || m.JobsByVerdict["violations"] != perKind {
		t.Errorf("jobs_by_verdict = %v", m.JobsByVerdict)
	}
	if m.CyclesSimulated == 0 {
		t.Error("cycles_simulated_total should be non-zero")
	}
	if m.CacheEntries != 2*perKind {
		t.Errorf("cache_entries = %d, want %d", m.CacheEntries, 2*perKind)
	}
	if m.QueueDepth != 0 || m.BusyWorkers != 0 {
		t.Errorf("idle service shows queue_depth=%d busy=%d", m.QueueDepth, m.BusyWorkers)
	}
}

// TestServiceCoalescing: two simultaneous identical submissions run the
// engine exactly once — they share one job record.
func TestServiceCoalescing(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 1, QueueDepth: 8})

	// Occupy the single worker so the identical pair stays queued together.
	_, blocker := c.do("POST", "/jobs", &JobRequest{
		Source: slowSrc, Policy: PolicyRequest{Name: "blocker"}, Options: slowOptions(),
	})
	if blocker.ID == "" {
		t.Fatal("no blocker job id")
	}

	ids := make([]string, 2)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, st := c.do("POST", "/jobs", &JobRequest{
				Source: cleanSrc, Policy: PolicyRequest{Name: "dup"},
			})
			if code != http.StatusAccepted {
				t.Errorf("duplicate submission %d: code=%d", i, code)
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if ids[0] == "" || ids[0] != ids[1] {
		t.Fatalf("identical submissions got distinct jobs: %q vs %q", ids[0], ids[1])
	}
	m := c.metrics()
	if m.JobsCoalesced != 1 {
		t.Errorf("jobs_coalesced = %d, want 1", m.JobsCoalesced)
	}

	// Release the worker and let the coalesced job run.
	if code, _ := c.do("DELETE", "/jobs/"+blocker.ID, nil); code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("cancel blocker: code=%d", code)
	}
	st := c.awaitDone(ids[0], 2*time.Minute)
	if st.Verdict != "verified" {
		t.Errorf("coalesced job verdict = %q", st.Verdict)
	}
	c.awaitDone(blocker.ID, 2*time.Minute)

	m = c.metrics()
	if m.EngineRuns != 2 { // blocker + one run for the coalesced pair
		t.Errorf("engine_runs = %d, want 2", m.EngineRuns)
	}
	// The cancelled blocker's Incomplete verdict must not be cached; only
	// the completed run is.
	if m.CacheEntries != 1 {
		t.Errorf("cache_entries = %d, want 1 (incomplete results are uncacheable)", m.CacheEntries)
	}
}

// TestServiceCancel: DELETE on a long-running job aborts it through the
// engine's cancellation path with the fail-closed Incomplete verdict.
func TestServiceCancel(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 1, QueueDepth: 8})

	_, sub := c.do("POST", "/jobs", &JobRequest{
		Source: slowSrc, Policy: PolicyRequest{Name: "slow"}, Options: slowOptions(),
	})
	// Wait until the exploration has demonstrably progressed so the cancel
	// exercises the mid-run path, not the queued path.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		_, st := c.do("GET", "/jobs/"+sub.ID, nil)
		if st.State == stateRunning && st.Progress.Cycles > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never progressed: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if code, _ := c.do("DELETE", "/jobs/"+sub.ID, nil); code != http.StatusAccepted {
		t.Fatalf("cancel: code=%d", code)
	}
	st := c.awaitDone(sub.ID, 2*time.Minute)
	if st.Verdict != "incomplete" || !st.Cancelled {
		t.Fatalf("cancelled job: verdict=%q cancelled=%v", st.Verdict, st.Cancelled)
	}
	found := false
	for _, v := range st.Report.Violations {
		if v.Kind == "analysis-incomplete" && strings.Contains(v.Detail, "cancelled") {
			found = true
		}
	}
	if !found {
		t.Errorf("no cancellation marker in report: %+v", st.Report.Violations)
	}
	// A finished job maps its verdict onto the HTTP status.
	code, _ := c.do("GET", "/jobs/"+sub.ID, nil)
	if code != http.StatusGatewayTimeout {
		t.Errorf("GET after cancel: code=%d, want 504", code)
	}
	m := c.metrics()
	if m.JobsByVerdict["incomplete"] != 1 || m.CancelRequests != 1 {
		t.Errorf("metrics after cancel: %+v", m)
	}
}

// TestServiceIHexEquivalence: an Intel-hex submission of the same program
// content-addresses identically to its assembly-source submission.
func TestServiceIHexEquivalence(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 2, QueueDepth: 8})

	code, _ := c.do("POST", "/jobs?wait=1", &JobRequest{
		Source: cleanSrc, Policy: PolicyRequest{Name: "src"},
	})
	if code != http.StatusOK {
		t.Fatalf("source submission: code=%d", code)
	}

	img, err := asm.AssembleSource(cleanSrc)
	if err != nil {
		t.Fatal(err)
	}
	var hexBuf bytes.Buffer
	if err := asm.WriteIHex(&hexBuf, img); err != nil {
		t.Fatal(err)
	}
	code, st := c.do("POST", "/jobs?wait=1", &JobRequest{
		IHex: hexBuf.String(), Entry: img.Entry, Policy: PolicyRequest{Name: "hex"},
	})
	if code != http.StatusOK || !st.CacheHit {
		t.Errorf("equivalent ihex submission should be a cache hit: code=%d hit=%v", code, st.CacheHit)
	}
}

// TestServiceBadRequests covers the 400/404 surface (the CLI exit-code-2
// analogue).
func TestServiceBadRequests(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 1, QueueDepth: 4})

	post := func(body string) int {
		resp, err := c.srv.Client().Post(c.srv.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: code=%d", code)
	}
	if code := post(`{"policy":{"name":"p"}}`); code != http.StatusBadRequest {
		t.Errorf("missing program: code=%d", code)
	}
	if code := post(`{"source":"bogus instruction here","policy":{"name":"p"}}`); code != http.StatusBadRequest {
		t.Errorf("unassemblable source: code=%d", code)
	}
	b, _ := json.Marshal(&JobRequest{
		Source: cleanSrc,
		Policy: PolicyRequest{Name: "p", TaintedData: []RangeRequest{{Lo: 0x0800, Hi: 0x0400}}},
	})
	if code := post(string(b)); code != http.StatusBadRequest {
		t.Errorf("invalid policy: code=%d", code)
	}
	if code, _ := c.do("GET", "/jobs/job-999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: code=%d", code)
	}
	if code, _ := c.do("DELETE", "/jobs/job-999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job delete: code=%d", code)
	}
	m := c.metrics()
	if m.JobsSubmitted != 0 {
		t.Errorf("rejected requests must not count as submissions: %d", m.JobsSubmitted)
	}
}

// TestJobKeySensitivity: the content address is stable for identical inputs
// and sensitive to every semantic component — but not to display names.
func TestJobKeySensitivity(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	img, err := asm.AssembleSource(cleanSrc)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := asm.AssembleSource(strings.Replace(cleanSrc, "r10", "r11", 1))
	if err != nil {
		t.Fatal(err)
	}
	pol := &glift.Policy{Name: "a", TaintedInPorts: []int{0}}
	opt := &glift.Options{}

	base := s.jobKey(target.Default(), img, pol, opt, 0)
	if s.jobKey(target.Default(), img, pol, opt, 0) != base {
		t.Error("key not deterministic")
	}
	renamed := *pol
	renamed.Name = "b"
	if s.jobKey(target.Default(), img, &renamed, opt, 0) != base {
		t.Error("policy display name must not change the key")
	}
	if s.jobKey(target.Default(), img2, pol, opt, 0) == base {
		t.Error("image change must change the key")
	}
	repol := &glift.Policy{Name: "a", TaintedInPorts: []int{1}}
	if s.jobKey(target.Default(), img, repol, opt, 0) == base {
		t.Error("policy change must change the key")
	}
	if s.jobKey(target.Default(), img, pol, &glift.Options{MaxCycles: 1000}, 0) == base {
		t.Error("options change must change the key")
	}
	if s.jobKey(target.Default(), img, pol, opt, time.Second) == base {
		t.Error("deadline change must change the key")
	}
	// Defaults spelled out explicitly hash like omitted defaults.
	n := opt.Normalized()
	if s.jobKey(target.Default(), img, pol, &glift.Options{MaxCycles: n.MaxCycles, MaxPathCycles: n.MaxPathCycles,
		WidenAfter: n.WidenAfter, SoftMemBytes: n.SoftMemBytes, HardMemBytes: n.HardMemBytes}, 0) != base {
		t.Error("explicit defaults must hash like omitted defaults")
	}
}

// TestResultCacheEviction: the cache is bounded with FIFO eviction.
func TestResultCacheEviction(t *testing.T) {
	cache := newResultCache(2)
	r := func(name string) *cachedResult { return &cachedResult{rep: &glift.Report{Policy: name}} }
	cache.put("a", r("a"))
	cache.put("b", r("b"))
	cache.put("a", r("a2")) // overwrite does not grow or reorder
	if cache.len() != 2 {
		t.Fatalf("len = %d", cache.len())
	}
	cache.put("c", r("c")) // evicts a (oldest)
	if _, ok := cache.get("a"); ok {
		t.Error("a should have been evicted")
	}
	if _, ok := cache.get("b"); !ok {
		t.Error("b should survive")
	}
	if _, ok := cache.get("c"); !ok {
		t.Error("c should be present")
	}
	if cache.len() != 2 {
		t.Errorf("len = %d after eviction", cache.len())
	}
}

// TestImageFromIHex: round-trip through the hex loader reproduces the
// assembled image's segments and default entry point.
func TestImageFromIHex(t *testing.T) {
	src := fmt.Sprintf(".org %#x\nstart: mov #1, r10\n.org %#x\nother: add r10, r11\n", 0xf000, 0xf100)
	img, err := asm.AssembleSource(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := asm.WriteIHex(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := imageFromIHex(buf.String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Segments) != len(img.Segments) {
		t.Fatalf("segments = %d, want %d", len(got.Segments), len(img.Segments))
	}
	for i, seg := range img.Segments {
		if got.Segments[i].Addr != seg.Addr || len(got.Segments[i].Words) != len(seg.Words) {
			t.Errorf("segment %d mismatch: %+v vs %+v", i, got.Segments[i], seg)
		}
		for k, w := range seg.Words {
			if got.Segments[i].Words[k] != w {
				t.Errorf("segment %d word %d = %#x, want %#x", i, k, got.Segments[i].Words[k], w)
			}
		}
	}
	if got.Entry != 0xf000 {
		t.Errorf("default entry = %#x, want 0xf000", got.Entry)
	}
	if _, err := imageFromIHex("", 0); err == nil {
		t.Error("empty ihex should fail")
	}
	if _, err := imageFromIHex(":garbage", 0); err == nil {
		t.Error("bad ihex should fail")
	}
}
