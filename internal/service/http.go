package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/obs"
	"repro/internal/repair"
	"repro/internal/target"
)

// The HTTP API, mapping the fail-closed verdict taxonomy onto status codes
// (mirroring the CLI exit-code contract 0/1/2/3):
//
//	POST   /jobs          submit a JobRequest; ?wait=1 blocks for the result
//	GET    /jobs/{id}     status + live progress; final report when done
//	DELETE /jobs/{id}     cancel; the run completes with verdict incomplete
//	GET    /metrics       Prometheus text exposition (JSON via Accept:
//	                      application/json, preserving the legacy shape)
//	GET    /metrics.json  service counters as JSON
//	GET    /healthz       liveness
//
// Verdict → status for completed jobs: verified → 200, violations → 409,
// incomplete → 504, internal-error → 500. Malformed submissions (bad JSON,
// unassemblable source, invalid policy — the CLI's exit code 2) → 400.

// ProgressJSON is the wire form of live job progress.
type ProgressJSON struct {
	Cycles      uint64 `json:"cycles"`
	Paths       int    `json:"paths"`
	TableStates int    `json:"table_states"`
	Pending     int    `json:"pending_paths"`
	// WallNanos is the elapsed exploration wall time at the snapshot.
	WallNanos int64 `json:"wall_ns"`
	Done      bool  `json:"done"`
}

// JobStatusJSON is the wire form of one job record.
type JobStatusJSON struct {
	ID        string            `json:"id"`
	Key       string            `json:"key"`
	State     string            `json:"state"`
	Mode      string            `json:"mode,omitempty"` // "repair" for repair jobs
	CacheHit  bool              `json:"cache_hit"`
	Coalesced int64             `json:"coalesced,omitempty"`
	Cancelled bool              `json:"cancelled,omitempty"`
	Verdict   string            `json:"verdict,omitempty"`
	Progress  ProgressJSON      `json:"progress"`
	Report    *glift.ReportJSON `json:"report,omitempty"`
	// Repair is the completed repair payload (patched assembly, per-round
	// counts, targeted-vs-always-on overheads, final report).
	Repair *repair.ResultJSON `json:"repair,omitempty"`
}

// MetricsJSON is the /metrics payload.
type MetricsJSON struct {
	JobsSubmitted   int64            `json:"jobs_submitted"`
	JobsCompleted   int64            `json:"jobs_completed"`
	JobsByVerdict   map[string]int64 `json:"jobs_by_verdict"`
	CacheHits       int64            `json:"cache_hits"`
	CacheMisses     int64            `json:"cache_misses"`
	CacheEntries    int              `json:"cache_entries"`
	JobsCoalesced   int64            `json:"jobs_coalesced"`
	EngineRuns      int64            `json:"engine_runs"`
	JobsRejected    int64            `json:"jobs_rejected"`
	DeadlineShed    int64            `json:"deadline_shed"`
	QuotaRejected   int64            `json:"quota_rejected"`
	ChaosInjected   int64            `json:"chaos_injected,omitempty"`
	CancelRequests  int64            `json:"cancel_requests"`
	QueueDepth      int              `json:"queue_depth"`
	Workers         int              `json:"workers"`
	BusyWorkers     int              `json:"busy_workers"`
	CyclesSimulated uint64           `json:"cycles_simulated_total"`
	Draining        bool             `json:"draining,omitempty"`

	// Repair-mode activity (mode: "repair" submissions).
	RepairJobs         int64 `json:"repair_jobs"`
	RepairRounds       int64 `json:"repair_rounds"`
	RepairMaskedStores int64 `json:"repair_masked_stores"`

	// Event-stream state (GET /jobs/{id}/events).
	StreamSubscribers int `json:"stream_subscribers"`
	StreamTopics      int `json:"stream_topics"`

	// Persistent-store metrics (all zero when persistence is disabled).
	StoreHits        int64 `json:"store_hits"`
	StoreEntries     int   `json:"store_entries"`
	StoreBytes       int64 `json:"store_bytes"`
	StoreRecovered   int64 `json:"store_recovered"`
	StoreQuarantined int64 `json:"store_quarantined"`
	StorePuts        int64 `json:"store_puts"`
	StorePutErrors   int64 `json:"store_put_errors"`
	StoreEvictions   int64 `json:"store_evictions"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
}

// verdictStatus maps the fail-closed verdict taxonomy onto HTTP statuses.
func verdictStatus(v glift.Verdict) int {
	switch v {
	case glift.Verified:
		return http.StatusOK
	case glift.Violations:
		return http.StatusConflict
	case glift.Incomplete:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // a broken client connection is not recoverable here
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// status snapshots one job record for the wire.
func (j *job) status() JobStatusJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatusJSON{
		ID:        j.id,
		Key:       j.key,
		State:     j.state,
		Mode:      j.mode,
		CacheHit:  j.cacheHit,
		Coalesced: j.coalesced,
		Cancelled: j.cancelled,
		Progress:  progressJSON(j.progress),
		Repair:    j.rres,
	}
	if j.report != nil {
		rj := j.report.JSON()
		st.Verdict = rj.Verdict
		st.Report = &rj
	}
	return st
}

// newJobLocked allocates a job record and its event-stream topic; the
// caller holds s.mu.
func (s *Server) newJobLocked(key string) *job {
	s.nextID++
	j := &job{
		id:      fmt.Sprintf("job-%d", s.nextID),
		key:     key,
		state:   stateQueued,
		done:    make(chan struct{}),
		created: time.Now(),
	}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	s.jobs[j.id] = j
	s.broker.Open(j.id)
	return j
}

// tryServeExistingLocked answers a submission from the memory cache or
// coalesces it onto an identical in-flight job. start is when the
// submission began (the cache-hit latency span). The caller holds s.mu;
// when it returns true the lock has been released and the response written.
func (s *Server) tryServeExistingLocked(w http.ResponseWriter, r *http.Request, key, mode string, wait bool, start time.Time) bool {
	// Content-addressed reuse: a completed identical job answers instantly.
	// Repair keys are domain-tagged, so a hit's shape always matches the
	// submission's mode.
	if c, ok := s.cache.get(key); ok {
		s.m.cacheHits++
		s.prom.cacheHits.Inc()
		j := s.newJobLocked(key)
		j.cacheHit = true
		j.mode = mode
		j.tenant = tenantOf(r)
		s.mu.Unlock()
		s.finishHit(j, c, start)
		s.respond(w, r, j, wait)
		return true
	}
	// In-flight dedup: an identical job already queued or running serves
	// this submission too; the engine executes once.
	if ex, ok := s.inflight[key]; ok {
		s.m.coalesced++
		s.prom.coalesced.Inc()
		s.mu.Unlock()
		ex.mu.Lock()
		ex.coalesced++
		ex.mu.Unlock()
		s.respond(w, r, ex, wait)
		return true
	}
	return false
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	submitStart := time.Now()
	// Fault injection (chaos harness): a spurious overload answer that a
	// well-behaved client absorbs by honoring Retry-After and retrying.
	if p := s.cfg.ChaosRejectPercent; p > 0 && rand.IntN(100) < p {
		s.mu.Lock()
		s.m.chaosInjected++
		s.mu.Unlock()
		s.prom.chaosInjected.Inc()
		setRetryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, "chaos: injected overload")
		return
	}
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var (
		tgt      *target.Target
		img      *asm.Image
		pol      *glift.Policy
		opt      *glift.Options
		deadline time.Duration
		rspec    *repair.Spec
		err      error
	)
	if req.Target == "" {
		req.Target = s.cfg.DefaultTarget
	}
	mode := req.Mode
	switch mode {
	case "analyze":
		mode = modeAnalyze // canonical form
		fallthrough
	case modeAnalyze:
		tgt, img, pol, opt, deadline, err = compile(&req)
	case modeRepair:
		rspec, opt, deadline, err = compileRepair(&req)
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q (want analyze or repair)", mode)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Per-tenant admission: an exhausted token bucket rejects before any
	// queue or cache state is touched.
	if s.quotas != nil {
		if ok, retry := s.quotas.admit(tenantOf(r)); !ok {
			s.mu.Lock()
			s.m.quotaRejected++
			s.mu.Unlock()
			s.prom.quotaRejected.Inc()
			setRetryAfter(w, retry)
			writeError(w, http.StatusTooManyRequests, "tenant %q over submission quota", tenantOf(r))
			return
		}
	}
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	wait := r.URL.Query().Get("wait") != "" && r.URL.Query().Get("wait") != "0"
	var key string
	if mode == modeRepair {
		key = s.repairKey(rspec, opt, deadline)
	} else {
		key = s.jobKey(tgt, img, pol, opt, deadline)
	}

	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		setRetryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.m.submitted++
	s.prom.jobsSubmitted.Inc()
	if s.tryServeExistingLocked(w, r, key, mode, wait, submitStart) {
		return
	}
	s.mu.Unlock()

	// Persistent-store probe, outside the server lock (it reads and
	// integrity-checks a record on disk). A validated hit is promoted into
	// the memory cache so the next identical submission skips the disk.
	var stored *cachedResult
	if mode == modeRepair {
		stored = s.lookupStoreRepair(key)
	} else if rep := s.lookupStore(key); rep != nil {
		stored = &cachedResult{rep: rep}
	}
	if stored != nil {
		s.mu.Lock()
		s.m.cacheHits++
		s.m.storeHits++
		s.prom.cacheHits.Inc()
		s.prom.storeHits.Inc()
		s.cache.put(key, stored)
		j := s.newJobLocked(key)
		j.cacheHit = true
		j.mode = mode
		j.tenant = tenantOf(r)
		s.mu.Unlock()
		s.finishHit(j, stored, submitStart)
		s.respond(w, r, j, wait)
		return
	}

	s.mu.Lock()
	// Re-check after the unlocked disk probe: an identical submission may
	// have completed or enqueued meanwhile.
	if s.tryServeExistingLocked(w, r, key, mode, wait, submitStart) {
		return
	}
	s.m.cacheMisses++
	s.prom.cacheMisses.Inc()
	// Deadline-aware shedding: a job that would time out waiting for a
	// worker is refused now, with the predicted wait as Retry-After,
	// instead of burning a worker on a result nobody can use.
	if estWait := s.estimatedQueueWaitLocked(); deadline > 0 && estWait > deadline {
		s.m.shed++
		s.m.submitted-- // not accepted (the prom counter stays monotonic)
		s.mu.Unlock()
		s.prom.jobsShed.Inc()
		setRetryAfter(w, estWait)
		writeError(w, http.StatusServiceUnavailable,
			"deadline %s cannot be met: estimated queue wait %s", deadline, estWait.Round(time.Millisecond))
		return
	}
	j := s.newJobLocked(key)
	j.tgt = tgt
	j.img, j.pol, j.opt, j.deadline = img, pol, *opt, deadline
	j.mode, j.rspec = mode, rspec
	j.backendSet = req.Options.Backend != ""
	j.tenant = tenantOf(r)
	j.streamTrace = req.Options.StreamTrace
	j.enqueued = time.Now()
	select {
	case s.queue <- j:
		s.inflight[key] = j
		s.m.queueDepth++
		s.mu.Unlock()
		s.prom.queueDepth.Add(1)
		s.publish(j.id, EventState, StateEventJSON{ID: j.id, State: stateQueued})
		s.log.Debug("job queued", "job_id", j.id, "tenant", j.tenant, "key", j.key)
	default:
		s.m.rejected++
		s.m.submitted-- // not accepted (the prom counter stays monotonic)
		s.prom.jobsRejected.Inc()
		delete(s.jobs, j.id)
		retry := s.estimatedQueueWaitLocked()
		s.mu.Unlock()
		j.cancel()
		s.broker.CloseTopic(j.id)
		setRetryAfter(w, retry)
		writeError(w, http.StatusServiceUnavailable, "queue full (%d jobs pending)", s.cfg.QueueDepth)
		return
	}
	s.respond(w, r, j, wait)
}

// respond answers a submission: blocking for the final report when wait is
// set, otherwise 202 with the job handle (or the final status if the job is
// already done, e.g. a cache hit).
func (s *Server) respond(w http.ResponseWriter, r *http.Request, j *job, wait bool) {
	if wait {
		select {
		case <-j.done:
		case <-r.Context().Done():
			return // client went away; the job keeps running for other waiters
		}
	}
	st := j.status()
	code := http.StatusAccepted
	if st.State == stateDone {
		code = verdictStatus(j.report.Verdict())
	}
	writeJSON(w, code, st)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.status()
	code := http.StatusOK
	if st.State == stateDone {
		code = verdictStatus(j.report.Verdict())
	}
	writeJSON(w, code, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if ok {
		s.m.cancels++
		s.prom.cancels.Inc()
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	j.cancelled = true
	already := j.state == stateDone
	j.mu.Unlock()
	j.cancel()
	code := http.StatusAccepted
	if already {
		code = http.StatusOK // finished before the cancel landed
	}
	writeJSON(w, code, j.status())
}

// handleMetrics serves the Prometheus text exposition; clients asking for
// application/json get the legacy JSON shape (also at /metrics.json).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		s.handleMetricsJSON(w, r)
		return
	}
	// The queue-depth gauge is maintained at enqueue/dequeue transitions
	// (sampling len(s.queue) here would race against concurrent senders
	// and receivers); only genuinely scrape-derived series sync here.
	s.mu.Lock()
	s.prom.cacheEntries.Set(float64(s.cache.len()))
	s.syncStoreMetricsLocked()
	s.mu.Unlock()
	s.prom.streamSubs.Set(float64(s.broker.Subscribers()))
	s.prom.streamTopics.Set(float64(s.broker.Topics()))
	w.Header().Set("Content-Type", obs.PromContentType)
	s.prom.reg.WritePrometheus(w) //nolint:errcheck // a broken client connection is not recoverable here
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	m := MetricsJSON{
		JobsSubmitted:   s.m.submitted,
		JobsCompleted:   s.m.completed,
		JobsByVerdict:   make(map[string]int64, len(s.m.byVerdict)),
		CacheHits:       s.m.cacheHits,
		CacheMisses:     s.m.cacheMisses,
		CacheEntries:    s.cache.len(),
		JobsCoalesced:   s.m.coalesced,
		EngineRuns:      s.m.engineRuns,
		JobsRejected:    s.m.rejected,
		DeadlineShed:    s.m.shed,
		QuotaRejected:   s.m.quotaRejected,
		ChaosInjected:   s.m.chaosInjected,
		CancelRequests:  s.m.cancels,
		QueueDepth:      s.m.queueDepth,
		Workers:         s.cfg.Workers,
		BusyWorkers:     s.m.busyWorkers,
		CyclesSimulated: s.m.cyclesTotal,
		Draining:        s.draining,
		StoreHits:       s.m.storeHits,

		RepairJobs:         s.m.repairJobs,
		RepairRounds:       s.m.repairRounds,
		RepairMaskedStores: s.m.repairMaskedStores,

		StreamSubscribers: s.broker.Subscribers(),
		StreamTopics:      s.broker.Topics(),
	}
	for k, v := range s.m.byVerdict {
		m.JobsByVerdict[k] = v
	}
	s.mu.Unlock()
	if s.store != nil {
		st := s.store.Stats()
		m.StoreEntries = s.store.Len()
		m.StoreBytes = s.store.Bytes()
		m.StoreRecovered = st.Recovered
		m.StoreQuarantined = st.Quarantined
		m.StorePuts = st.Puts
		m.StorePutErrors = st.PutErrors
		m.StoreEvictions = st.Evictions
	}
	writeJSON(w, http.StatusOK, m)
}
