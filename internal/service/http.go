package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/glift"
	"repro/internal/obs"
)

// The HTTP API, mapping the fail-closed verdict taxonomy onto status codes
// (mirroring the CLI exit-code contract 0/1/2/3):
//
//	POST   /jobs          submit a JobRequest; ?wait=1 blocks for the result
//	GET    /jobs/{id}     status + live progress; final report when done
//	DELETE /jobs/{id}     cancel; the run completes with verdict incomplete
//	GET    /metrics       Prometheus text exposition (JSON via Accept:
//	                      application/json, preserving the legacy shape)
//	GET    /metrics.json  service counters as JSON
//	GET    /healthz       liveness
//
// Verdict → status for completed jobs: verified → 200, violations → 409,
// incomplete → 504, internal-error → 500. Malformed submissions (bad JSON,
// unassemblable source, invalid policy — the CLI's exit code 2) → 400.

// ProgressJSON is the wire form of live job progress.
type ProgressJSON struct {
	Cycles      uint64 `json:"cycles"`
	Paths       int    `json:"paths"`
	TableStates int    `json:"table_states"`
	Pending     int    `json:"pending_paths"`
	// WallNanos is the elapsed exploration wall time at the snapshot.
	WallNanos int64 `json:"wall_ns"`
	Done      bool  `json:"done"`
}

// JobStatusJSON is the wire form of one job record.
type JobStatusJSON struct {
	ID        string            `json:"id"`
	Key       string            `json:"key"`
	State     string            `json:"state"`
	CacheHit  bool              `json:"cache_hit"`
	Coalesced int64             `json:"coalesced,omitempty"`
	Cancelled bool              `json:"cancelled,omitempty"`
	Verdict   string            `json:"verdict,omitempty"`
	Progress  ProgressJSON      `json:"progress"`
	Report    *glift.ReportJSON `json:"report,omitempty"`
}

// MetricsJSON is the /metrics payload.
type MetricsJSON struct {
	JobsSubmitted   int64            `json:"jobs_submitted"`
	JobsCompleted   int64            `json:"jobs_completed"`
	JobsByVerdict   map[string]int64 `json:"jobs_by_verdict"`
	CacheHits       int64            `json:"cache_hits"`
	CacheMisses     int64            `json:"cache_misses"`
	CacheEntries    int              `json:"cache_entries"`
	JobsCoalesced   int64            `json:"jobs_coalesced"`
	EngineRuns      int64            `json:"engine_runs"`
	JobsRejected    int64            `json:"jobs_rejected"`
	CancelRequests  int64            `json:"cancel_requests"`
	QueueDepth      int              `json:"queue_depth"`
	Workers         int              `json:"workers"`
	BusyWorkers     int              `json:"busy_workers"`
	CyclesSimulated uint64           `json:"cycles_simulated_total"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
}

// verdictStatus maps the fail-closed verdict taxonomy onto HTTP statuses.
func verdictStatus(v glift.Verdict) int {
	switch v {
	case glift.Verified:
		return http.StatusOK
	case glift.Violations:
		return http.StatusConflict
	case glift.Incomplete:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // a broken client connection is not recoverable here
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// status snapshots one job record for the wire.
func (j *job) status() JobStatusJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatusJSON{
		ID:        j.id,
		Key:       j.key,
		State:     j.state,
		CacheHit:  j.cacheHit,
		Coalesced: j.coalesced,
		Cancelled: j.cancelled,
		Progress: ProgressJSON{
			Cycles:      j.progress.Stats.Cycles,
			Paths:       j.progress.Stats.Paths,
			TableStates: j.progress.Stats.TableStates,
			Pending:     j.progress.Pending,
			WallNanos:   j.progress.Stats.WallNanos,
			Done:        j.progress.Done,
		},
	}
	if j.report != nil {
		rj := j.report.JSON()
		st.Verdict = rj.Verdict
		st.Report = &rj
	}
	return st
}

// newJobLocked allocates a job record; the caller holds s.mu.
func (s *Server) newJobLocked(key string) *job {
	s.nextID++
	j := &job{
		id:      fmt.Sprintf("job-%d", s.nextID),
		key:     key,
		state:   stateQueued,
		done:    make(chan struct{}),
		created: time.Now(),
	}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	s.jobs[j.id] = j
	return j
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	img, pol, opt, deadline, err := compile(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	wait := r.URL.Query().Get("wait") != "" && r.URL.Query().Get("wait") != "0"
	key := s.jobKey(img, pol, opt, deadline)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	s.m.submitted++
	s.prom.jobsSubmitted.Inc()

	// Content-addressed reuse: a completed identical job answers instantly.
	if rep, ok := s.cache.get(key); ok {
		s.m.cacheHits++
		s.prom.cacheHits.Inc()
		j := s.newJobLocked(key)
		j.cacheHit = true
		s.mu.Unlock()
		j.finish(rep)
		s.respond(w, r, j, wait)
		return
	}
	// In-flight dedup: an identical job already queued or running serves
	// this submission too; the engine executes once.
	if ex, ok := s.inflight[key]; ok {
		s.m.coalesced++
		s.prom.coalesced.Inc()
		s.mu.Unlock()
		ex.mu.Lock()
		ex.coalesced++
		ex.mu.Unlock()
		s.respond(w, r, ex, wait)
		return
	}
	s.m.cacheMisses++
	s.prom.cacheMisses.Inc()
	j := s.newJobLocked(key)
	j.img, j.pol, j.opt, j.deadline = img, pol, *opt, deadline
	j.backendSet = req.Options.Backend != ""
	select {
	case s.queue <- j:
		s.inflight[key] = j
		s.mu.Unlock()
	default:
		s.m.rejected++
		s.m.submitted-- // not accepted (the prom counter stays monotonic)
		s.prom.jobsRejected.Inc()
		delete(s.jobs, j.id)
		s.mu.Unlock()
		j.cancel()
		writeError(w, http.StatusServiceUnavailable, "queue full (%d jobs pending)", s.cfg.QueueDepth)
		return
	}
	s.respond(w, r, j, wait)
}

// respond answers a submission: blocking for the final report when wait is
// set, otherwise 202 with the job handle (or the final status if the job is
// already done, e.g. a cache hit).
func (s *Server) respond(w http.ResponseWriter, r *http.Request, j *job, wait bool) {
	if wait {
		select {
		case <-j.done:
		case <-r.Context().Done():
			return // client went away; the job keeps running for other waiters
		}
	}
	st := j.status()
	code := http.StatusAccepted
	if st.State == stateDone {
		code = verdictStatus(j.report.Verdict())
	}
	writeJSON(w, code, st)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.status()
	code := http.StatusOK
	if st.State == stateDone {
		code = verdictStatus(j.report.Verdict())
	}
	writeJSON(w, code, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if ok {
		s.m.cancels++
		s.prom.cancels.Inc()
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	j.cancelled = true
	already := j.state == stateDone
	j.mu.Unlock()
	j.cancel()
	code := http.StatusAccepted
	if already {
		code = http.StatusOK // finished before the cancel landed
	}
	writeJSON(w, code, j.status())
}

// handleMetrics serves the Prometheus text exposition; clients asking for
// application/json get the legacy JSON shape (also at /metrics.json).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		s.handleMetricsJSON(w, r)
		return
	}
	// Derivable gauges are synced at scrape time rather than on every
	// queue/cache transition.
	s.prom.queueDepth.Set(float64(len(s.queue)))
	s.mu.Lock()
	s.prom.cacheEntries.Set(float64(s.cache.len()))
	s.mu.Unlock()
	w.Header().Set("Content-Type", obs.PromContentType)
	s.prom.reg.WritePrometheus(w) //nolint:errcheck // a broken client connection is not recoverable here
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	m := MetricsJSON{
		JobsSubmitted:   s.m.submitted,
		JobsCompleted:   s.m.completed,
		JobsByVerdict:   make(map[string]int64, len(s.m.byVerdict)),
		CacheHits:       s.m.cacheHits,
		CacheMisses:     s.m.cacheMisses,
		CacheEntries:    s.cache.len(),
		JobsCoalesced:   s.m.coalesced,
		EngineRuns:      s.m.engineRuns,
		JobsRejected:    s.m.rejected,
		CancelRequests:  s.m.cancels,
		QueueDepth:      len(s.queue),
		Workers:         s.cfg.Workers,
		BusyWorkers:     s.m.busyWorkers,
		CyclesSimulated: s.m.cyclesTotal,
	}
	for k, v := range s.m.byVerdict {
		m.JobsByVerdict[k] = v
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, m)
}
