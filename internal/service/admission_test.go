package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// doRaw performs one request with arbitrary headers and returns the raw
// response (closed body, drained status decoded into JobStatusJSON when
// possible). Admission tests need the headers the sugar in do() hides.
func (c *testClient) doRaw(method, path string, body any, hdr map[string]string) *http.Response {
	c.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestTenantQuotaBucket unit-tests the token bucket under a fake clock:
// burst admits, exhaustion rejects with an accurate Retry-After, refill
// re-admits, and tenants are independent.
func TestTenantQuotaBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	q := newTenantQuotas(2, 4) // 2 tokens/sec, burst 4
	q.now = func() time.Time { return now }

	for i := 0; i < 4; i++ {
		if ok, _ := q.admit("a"); !ok {
			t.Fatalf("burst admit %d refused", i)
		}
	}
	ok, retry := q.admit("a")
	if ok {
		t.Fatal("admitted past burst")
	}
	// Empty bucket at 2 tokens/sec: next token in 500ms.
	if retry != 500*time.Millisecond {
		t.Errorf("retry = %s, want 500ms", retry)
	}
	// Tenant b is untouched by a's exhaustion.
	if ok, _ := q.admit("b"); !ok {
		t.Error("independent tenant refused")
	}
	// One second refills two tokens.
	now = now.Add(time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := q.admit("a"); !ok {
			t.Errorf("post-refill admit %d refused", i)
		}
	}
	if ok, _ := q.admit("a"); ok {
		t.Error("admitted a third token after a 2-token refill")
	}

	// Default burst: ceil(rate), floor 1.
	if q := newTenantQuotas(0.5, 0); q.burst != 1 {
		t.Errorf("default burst for rate 0.5 = %v, want 1", q.burst)
	}
	if q := newTenantQuotas(2.3, 0); q.burst != 3 {
		t.Errorf("default burst for rate 2.3 = %v, want 3", q.burst)
	}
}

// TestTenantQuotaSweep: at the bucket cap, fully-refilled (idle) buckets
// are dropped so one tenant per request cannot grow memory unboundedly.
func TestTenantQuotaSweep(t *testing.T) {
	now := time.Unix(1000, 0)
	q := newTenantQuotas(1, 1)
	q.now = func() time.Time { return now }
	for i := 0; i < maxTenantBuckets; i++ {
		q.admit(fmt.Sprintf("t%d", i))
	}
	if len(q.buckets) != maxTenantBuckets {
		t.Fatalf("buckets = %d, want %d", len(q.buckets), maxTenantBuckets)
	}
	// All existing buckets refill within a second; the next new tenant
	// triggers the sweep and the map collapses.
	now = now.Add(2 * time.Second)
	q.admit("fresh")
	if len(q.buckets) != 1 {
		t.Errorf("post-sweep buckets = %d, want 1", len(q.buckets))
	}
}

// TestServiceQuotaRejects429: an over-quota tenant gets 429 + Retry-After;
// a different X-Tenant is admitted; the default bucket covers unlabeled
// requests.
func TestServiceQuotaRejects429(t *testing.T) {
	// Glacial refill so the second submission within the test window is
	// deterministically over quota.
	c, _ := newTestClient(t, Config{
		Workers: 1, QueueDepth: 8, TenantRate: 0.0001, TenantBurst: 1,
	})
	req := &JobRequest{Source: cleanSrc, Policy: PolicyRequest{Name: "p"}}

	if resp := c.doRaw("POST", "/jobs?wait=1", req, map[string]string{"X-Tenant": "acme"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("first acme submission: code=%d", resp.StatusCode)
	}
	resp := c.doRaw("POST", "/jobs?wait=1", req, map[string]string{"X-Tenant": "acme"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second acme submission: code=%d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Quota applies before the cache: even a would-be cache hit is rejected.
	if m := c.metrics(); m.QuotaRejected != 1 {
		t.Errorf("quota_rejected = %d, want 1", m.QuotaRejected)
	}
	// A different tenant has its own bucket (and lands a cache hit).
	if resp := c.doRaw("POST", "/jobs?wait=1", req, map[string]string{"X-Tenant": "umbrella"}); resp.StatusCode != http.StatusOK {
		t.Errorf("other tenant: code=%d", resp.StatusCode)
	}
	// No header → the default bucket, also fresh.
	if resp := c.doRaw("POST", "/jobs?wait=1", req, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("default tenant: code=%d", resp.StatusCode)
	}
	if resp := c.doRaw("POST", "/jobs?wait=1", req, nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("default tenant second submission: code=%d, want 429", resp.StatusCode)
	}
}

// TestServiceDeadlineShed: with every worker busy and a run-duration EWMA
// that prices the queue wait beyond the job's deadline, the submission is
// shed 503 + Retry-After instead of queued to die.
func TestServiceDeadlineShed(t *testing.T) {
	c, s := newTestClient(t, Config{Workers: 1, QueueDepth: 8})

	_, blocker := c.do("POST", "/jobs", &JobRequest{
		Source: slowSrc, Policy: PolicyRequest{Name: "blocker"}, Options: slowOptions(),
	})
	waitBusy(t, s)

	// Seed the EWMA white-box: completed jobs "take an hour", so any
	// realistic deadline is unmeetable behind the busy worker.
	s.mu.Lock()
	s.m.avgRunNanos = float64(time.Hour)
	s.mu.Unlock()

	resp := c.doRaw("POST", "/jobs", &JobRequest{
		Source: cleanSrc, Policy: PolicyRequest{Name: "p"},
		Options: OptionsRequest{DeadlineMS: 2000},
	}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("doomed submission: code=%d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response without Retry-After")
	}
	m := c.metrics()
	if m.DeadlineShed != 1 {
		t.Errorf("deadline_shed = %d, want 1", m.DeadlineShed)
	}
	// Shed jobs never count as submitted-and-lost: queue stays empty.
	if m.QueueDepth != 0 {
		t.Errorf("queue_depth = %d, want 0", m.QueueDepth)
	}
	// A deadline-free job is still admitted — shedding is deadline-aware,
	// not a load switch.
	if code, _ := c.do("POST", "/jobs", &JobRequest{Source: cleanSrc, Policy: PolicyRequest{Name: "p"}}); code != http.StatusAccepted {
		t.Errorf("deadline-free submission: code=%d, want 202", code)
	}

	c.do("DELETE", "/jobs/"+blocker.ID, nil)
}

// waitBusy blocks until the single worker has picked up a job.
func waitBusy(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		s.mu.Lock()
		busy := s.m.busyWorkers
		s.mu.Unlock()
		if busy > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never became busy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// distinctSrc yields fast-verifying programs with distinct content hashes —
// the job key is blind to the policy name, so distinct jobs need distinct
// program bytes.
func distinctSrc(i int) string {
	return fmt.Sprintf("start: mov #0x0280, sp\n        mov #%d, r10\nloop:   jmp loop\n", i+1)
}

// TestServiceOverload503: a full queue rejects with 503 + Retry-After and
// counts the rejection; capacity freed by cancellation re-admits.
func TestServiceOverload503(t *testing.T) {
	c, s := newTestClient(t, Config{Workers: 1, QueueDepth: 1})

	_, blocker := c.do("POST", "/jobs", &JobRequest{
		Source: slowSrc, Policy: PolicyRequest{Name: "blocker"}, Options: slowOptions(),
	})
	waitBusy(t, s)

	// Fill the single queue slot with a distinct job.
	code, queued := c.do("POST", "/jobs", &JobRequest{Source: distinctSrc(0), Policy: PolicyRequest{Name: "q1"}})
	if code != http.StatusAccepted {
		t.Fatalf("queued submission: code=%d", code)
	}

	resp := c.doRaw("POST", "/jobs", &JobRequest{Source: distinctSrc(1), Policy: PolicyRequest{Name: "q2"}}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload submission: code=%d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("overload response without Retry-After")
	}
	m := c.metrics()
	if m.JobsRejected != 1 {
		t.Errorf("jobs_rejected = %d, want 1", m.JobsRejected)
	}
	if m.QueueDepth != 1 {
		t.Errorf("queue_depth = %d, want 1", m.QueueDepth)
	}

	// Cancelling the blocker frees the worker; the queue drains and the
	// previously rejected job is admitted on retry.
	c.do("DELETE", "/jobs/"+blocker.ID, nil)
	c.awaitDone(queued.ID, 2*time.Minute)
	code, st := c.do("POST", "/jobs?wait=1", &JobRequest{Source: distinctSrc(1), Policy: PolicyRequest{Name: "q2"}})
	if code != http.StatusOK || st.Verdict != "verified" {
		t.Errorf("retried submission: code=%d verdict=%q", code, st.Verdict)
	}
}

// TestServiceCancelFreesWorker: DELETE of a running job releases its worker
// promptly — the next submission runs to completion — and the cancelled
// (Incomplete) result is neither cached nor persisted.
func TestServiceCancelFreesWorker(t *testing.T) {
	dir := t.TempDir()
	c, s := newTestClient(t, Config{Workers: 1, QueueDepth: 8, StoreDir: dir})

	_, victim := c.do("POST", "/jobs", &JobRequest{
		Source: slowSrc, Policy: PolicyRequest{Name: "victim"}, Options: slowOptions(),
	})
	waitBusy(t, s)
	if code, _ := c.do("DELETE", "/jobs/"+victim.ID, nil); code != http.StatusAccepted {
		t.Fatalf("cancel: code=%d", code)
	}
	c.awaitDone(victim.ID, 2*time.Minute)

	// The worker is free again: a fresh job completes normally.
	code, st := c.do("POST", "/jobs?wait=1", &JobRequest{Source: cleanSrc, Policy: PolicyRequest{Name: "after"}})
	if code != http.StatusOK || st.Verdict != "verified" {
		t.Fatalf("post-cancel submission: code=%d verdict=%q", code, st.Verdict)
	}
	m := c.metrics()
	if m.BusyWorkers != 0 || m.QueueDepth != 0 {
		t.Errorf("busy=%d depth=%d after drain, want 0/0", m.BusyWorkers, m.QueueDepth)
	}
	// Only the completed run is durable; the Incomplete verdict is not.
	if m.StorePuts != 1 || m.CacheEntries != 1 {
		t.Errorf("store_puts=%d cache_entries=%d, want 1/1 (incomplete results are not stored)",
			m.StorePuts, m.CacheEntries)
	}
	// DELETE of an already-finished job acknowledges with 200 (nothing left
	// to cancel) and still returns the final status.
	if code, st := c.do("DELETE", "/jobs/"+victim.ID, nil); code != http.StatusOK || st.Verdict != "incomplete" {
		t.Errorf("cancel of finished job: code=%d verdict=%q, want 200/incomplete", code, st.Verdict)
	}
}

// TestServiceQueueDepthGauge: the transition-updated gauge tracks real
// enqueue/dequeue events exactly — never a sampled channel length.
func TestServiceQueueDepthGauge(t *testing.T) {
	c, s := newTestClient(t, Config{Workers: 1, QueueDepth: 8})

	_, blocker := c.do("POST", "/jobs", &JobRequest{
		Source: slowSrc, Policy: PolicyRequest{Name: "blocker"}, Options: slowOptions(),
	})
	waitBusy(t, s)

	ids := make([]string, 3)
	for i := range ids {
		code, st := c.do("POST", "/jobs", &JobRequest{
			Source: distinctSrc(i), Policy: PolicyRequest{Name: fmt.Sprintf("d%d", i)},
		})
		if code != http.StatusAccepted {
			t.Fatalf("submission %d: code=%d", i, code)
		}
		ids[i] = st.ID
		if m := c.metrics(); m.QueueDepth != i+1 {
			t.Errorf("after %d enqueues: queue_depth = %d", i+1, m.QueueDepth)
		}
	}

	c.do("DELETE", "/jobs/"+blocker.ID, nil)
	for _, id := range ids {
		c.awaitDone(id, 2*time.Minute)
	}
	m := c.metrics()
	if m.QueueDepth != 0 || m.BusyWorkers != 0 {
		t.Errorf("after drain: queue_depth=%d busy=%d, want 0/0", m.QueueDepth, m.BusyWorkers)
	}
}

// TestServiceChaosInjection: with ChaosRejectPercent=100 every submission
// is answered with a spurious 503 + Retry-After before any work happens —
// the fault clients must absorb in the soak harness.
func TestServiceChaosInjection(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 1, QueueDepth: 8, ChaosRejectPercent: 100})
	for i := 0; i < 3; i++ {
		resp := c.doRaw("POST", "/jobs?wait=1", &JobRequest{Source: cleanSrc, Policy: PolicyRequest{Name: "p"}}, nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("chaos submission %d: code=%d, want 503", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("chaos 503 without Retry-After")
		}
	}
	m := c.metrics()
	if m.ChaosInjected != 3 || m.JobsSubmitted != 0 || m.EngineRuns != 0 {
		t.Errorf("chaos metrics: injected=%d submitted=%d runs=%d, want 3/0/0",
			m.ChaosInjected, m.JobsSubmitted, m.EngineRuns)
	}
}
