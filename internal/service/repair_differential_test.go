package service

// Differential testing of the repair-job contract: a gliftd repair job must
// be indistinguishable from running cmd/secure430 on the same inputs —
// byte-identical patched assembly, identical per-round violating-PC and
// masked-store counts, and an identical final report modulo wall-clock
// stats. Both paths execute repair.Run (the shared round loop), so what
// this suite actually pins is everything the daemon wraps around it:
// request compilation, option plumbing, the JSON round-trip, and the
// performance knobs (workers, backend, spec-lanes) whose exclusion from the
// repair cache key is sound only if they can never change a byte of the
// result.

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/glift"
	"repro/internal/repair"
	"repro/internal/sim"
)

// benchRepairSpec is the reference input: the full unarmed benchmark system
// with the evaluation policy, exactly what the secure430 invocation in the
// integration suite passes on the command line.
func benchRepairSpec(b *bench.Benchmark) *repair.Spec {
	return &repair.Spec{
		Source: bench.Source(b),
		Policy: glift.Policy{
			Name:            "integrity",
			TaintedInPorts:  []int{0},
			TaintedOutPorts: []int{1},
			TaintedData:     []glift.AddrRange{{Lo: bench.PartLo, Hi: bench.PartLo + bench.PartSize}},
		},
		CodeRanges: []string{"task_start:task_end"},
		Options:    &glift.Options{Workers: 1, Backend: sim.BackendInterp},
	}
}

// benchRepairReq is the same input as an HTTP submission.
func benchRepairReq(b *bench.Benchmark, opt OptionsRequest) *JobRequest {
	return &JobRequest{
		Source: bench.Source(b),
		Mode:   "repair",
		Policy: PolicyRequest{
			Name:            "integrity",
			TaintedInPorts:  []int{0},
			TaintedOutPorts: []int{1},
			TaintedData:     []RangeRequest{{Lo: bench.PartLo, Hi: bench.PartLo + bench.PartSize}},
		},
		Repair:  &RepairRequest{TaintedCode: []string{"task_start:task_end"}},
		Options: opt,
	}
}

// normalizedRepairJSON serializes a repair payload with the report's
// wall-clock and peak-memory stats zeroed — the only fields allowed to
// differ between the CLI loop and the daemon, or between performance
// configurations.
func normalizedRepairJSON(t *testing.T, rj repair.ResultJSON) string {
	t.Helper()
	rj.Report.Stats.WallNanos = 0
	rj.Report.Stats.PeakMemBytes = 0
	out, err := json.MarshalIndent(rj, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// runReference executes the shared round loop directly — the exact code
// path cmd/secure430 runs — as the differential reference.
func runReference(t *testing.T, b *bench.Benchmark) *repair.Result {
	t.Helper()
	res, err := repair.Run(context.Background(), benchRepairSpec(b))
	if err != nil {
		t.Fatalf("reference repair.Run(%s): %v", b.Name, err)
	}
	return res
}

// diffRepair submits one repair job to a fresh daemon (each call gets its
// own server so the content-addressed cache cannot serve a previous
// configuration's bytes) and compares the served payload against the
// reference, field by field and then byte for byte.
func diffRepair(t *testing.T, b *bench.Benchmark, ref *repair.Result, opt OptionsRequest, label string) {
	t.Helper()
	c, _ := newTestClient(t, Config{Workers: 1, QueueDepth: 8})
	code, st := c.do("POST", "/jobs?wait=1", benchRepairReq(b, opt))
	wantCode := verdictStatus(ref.Report.Verdict())
	if code != wantCode {
		t.Fatalf("%s/%s: HTTP %d, reference verdict %s wants %d",
			b.Name, label, code, ref.Report.Verdict(), wantCode)
	}
	rj := st.Repair
	if rj == nil {
		t.Fatalf("%s/%s: no repair payload", b.Name, label)
	}
	if rj.PatchedAsm != ref.Asm {
		t.Errorf("%s/%s: patched assembly differs from the reference loop:\n--- daemon ---\n%s\n--- reference ---\n%s",
			b.Name, label, rj.PatchedAsm, ref.Asm)
	}
	refJSON := ref.JSON()
	if len(rj.Rounds) != len(refJSON.Rounds) {
		t.Fatalf("%s/%s: %d rounds, reference ran %d", b.Name, label, len(rj.Rounds), len(refJSON.Rounds))
	}
	for i := range rj.Rounds {
		if rj.Rounds[i] != refJSON.Rounds[i] {
			t.Errorf("%s/%s: round %d = %+v, reference %+v", b.Name, label, i, rj.Rounds[i], refJSON.Rounds[i])
		}
	}
	if got, want := normalizedRepairJSON(t, *rj), normalizedRepairJSON(t, refJSON); got != want {
		t.Errorf("%s/%s: repair payload differs beyond wall time:\n--- daemon ---\n%s\n--- reference ---\n%s",
			b.Name, label, got, want)
	}
}

// TestRepairDifferentialAllBenchmarks runs every scaffold benchmark through
// a gliftd repair job and through the reference loop, demanding equality.
// Benchmarks whose residual C1 violation is unfixable by masking end in
// `violations` on both paths; Figure-9-style programs end `verified` —
// either way the bytes must match.
func TestRepairDifferentialAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("repair differential sweep skipped in -short mode")
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			ref := runReference(t, b)
			if len(ref.Rounds) == 0 {
				t.Fatalf("reference ran no rounds")
			}
			diffRepair(t, b, ref, OptionsRequest{}, "default")
		})
	}
}

// TestRepairDifferentialKnobSweep sweeps the engine's performance knobs —
// workers × backend × spec-lanes — on two branchy benchmarks (data-
// dependent control flow forks the exploration, the hard case for engine
// determinism). Every configuration must reproduce the reference payload
// byte-identically; this is the guarantee that lets the repair cache key
// exclude all three knobs.
func TestRepairDifferentialKnobSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("repair differential sweep skipped in -short mode")
	}
	configs := []OptionsRequest{
		{Workers: 4, Backend: "interp"},
		{Workers: 1, Backend: "compiled"},
		{Workers: 4, Backend: "compiled"},
		{Workers: 1, Backend: "bitslice"},
		{Workers: 4, Backend: "compiled", SpecLanes: 8},
		{Workers: 2, Backend: "bitslice", SpecLanes: 4},
	}
	for _, name := range []string{"binSearch", "tHold"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b := bench.ByName(name)
			if b == nil {
				t.Fatalf("no benchmark %q", name)
			}
			ref := runReference(t, b)
			for _, opt := range configs {
				label := fmt.Sprintf("%s/w%d/l%d", opt.Backend, opt.Workers, opt.SpecLanes)
				diffRepair(t, b, ref, opt, label)
			}
		})
	}
}
