package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed frame from GET /jobs/{id}/events.
type sseEvent struct {
	id   uint64
	typ  string
	data []byte
}

// openStream connects to a job's SSE endpoint, optionally resuming after a
// cursor via the Last-Event-ID header.
func openStream(t *testing.T, c *testClient, id string, lastID uint64) (*http.Response, *bufio.Reader) {
	t.Helper()
	req, err := http.NewRequest("GET", c.srv.URL+"/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s/events: %s", id, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	return resp, bufio.NewReader(resp.Body)
}

// nextEvent reads one SSE event, skipping comment heartbeats. ok is false
// when the server ended the stream.
func nextEvent(t *testing.T, br *bufio.Reader) (sseEvent, bool) {
	t.Helper()
	var ev sseEvent
	pending := false
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF && !pending {
			return sseEvent{}, false
		}
		if err != nil && err != io.EOF {
			return sseEvent{}, false // connection cut mid-stream
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if pending {
				return ev, true
			}
		case strings.HasPrefix(line, ":"):
		case strings.HasPrefix(line, "id:"):
			n, perr := strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64)
			if perr != nil {
				t.Fatalf("bad SSE id line %q: %v", line, perr)
			}
			ev.id, pending = n, true
		case strings.HasPrefix(line, "event:"):
			ev.typ, pending = strings.TrimSpace(line[6:]), true
		case strings.HasPrefix(line, "data:"):
			ev.data, pending = []byte(strings.TrimSpace(line[5:])), true
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
		if err == io.EOF {
			if pending {
				return ev, true
			}
			return sseEvent{}, false
		}
	}
}

// drainStream reads to the end of a stream, enforcing the sequencing
// contract as it goes: sequence numbers strictly increase, every jump is
// explained by a preceding gap event, and gap events themselves carry no id.
func drainStream(t *testing.T, br *bufio.Reader, after uint64) []sseEvent {
	t.Helper()
	var evs []sseEvent
	prev, pendingLost := after, uint64(0)
	for {
		ev, ok := nextEvent(t, br)
		if !ok {
			return evs
		}
		evs = append(evs, ev)
		if ev.typ == EventGap {
			if ev.id != 0 {
				t.Fatalf("gap event carries SSE id %d; gaps must not advance the resume cursor", ev.id)
			}
			var gap GapEventJSON
			if err := json.Unmarshal(ev.data, &gap); err != nil || gap.Lost == 0 {
				t.Fatalf("gap event without positive lost count: %s", ev.data)
			}
			pendingLost += gap.Lost
			continue
		}
		if want := prev + pendingLost + 1; ev.id != want {
			t.Fatalf("seq %d after seq %d with %d lost (want %d)", ev.id, prev, pendingLost, want)
		}
		prev, pendingLost = ev.id, 0
	}
}

// TestStreamLifecycle: a submitted job's stream delivers its lifecycle in
// order — queued, running, progress—, and always terminates with the
// verdict event, after which the server closes the stream.
func TestStreamLifecycle(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 1, QueueDepth: 8})
	code, st := c.do("POST", "/jobs", &JobRequest{Source: cleanSrc, Policy: PolicyRequest{Name: "clean"}})
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}

	resp, br := openStream(t, c, st.ID, 0)
	defer resp.Body.Close()
	evs := drainStream(t, br, 0)
	if len(evs) < 2 {
		t.Fatalf("stream delivered %d events, want at least queued+verdict", len(evs))
	}
	var state StateEventJSON
	if evs[0].typ != EventState {
		t.Fatalf("first event is %s, want state", evs[0].typ)
	}
	if err := json.Unmarshal(evs[0].data, &state); err != nil || state.State != stateQueued {
		t.Fatalf("first state event = %s, want queued", evs[0].data)
	}
	sawRunning := false
	for _, ev := range evs {
		if ev.typ == EventState && json.Unmarshal(ev.data, &state) == nil && state.State == stateRunning {
			sawRunning = true
		}
	}
	if !sawRunning {
		t.Fatal("stream never delivered the running state transition")
	}
	last := evs[len(evs)-1]
	if last.typ != EventVerdict {
		t.Fatalf("stream ended with %s, want verdict", last.typ)
	}
	var v VerdictEventJSON
	if err := json.Unmarshal(last.data, &v); err != nil {
		t.Fatal(err)
	}
	if v.Verdict != "verified" || v.ID != st.ID || v.CacheHit {
		t.Fatalf("terminal verdict event = %+v", v)
	}
	if v.Stages.EngineRunNS <= 0 || v.Stages.TotalNS < v.Stages.EngineRunNS {
		t.Fatalf("implausible stage timings: %+v", v.Stages)
	}
}

// TestStreamResume: a second subscription with Last-Event-ID resumes
// exactly after the acknowledged event — no duplicates, no holes — and a
// late subscriber to a finished job still receives the full replay ending
// in the verdict.
func TestStreamResume(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 1, QueueDepth: 8})
	code, st := c.do("POST", "/jobs?wait=1", &JobRequest{Source: cleanSrc, Policy: PolicyRequest{Name: "clean"}})
	if code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}

	// Full replay of the finished job's stream.
	resp, br := openStream(t, c, st.ID, 0)
	full := drainStream(t, br, 0)
	resp.Body.Close()
	if len(full) < 3 {
		t.Fatalf("replay delivered %d events, want at least 3 (queued, running, verdict)", len(full))
	}

	// Resume after the second event: exactly the tail, nothing twice.
	resume := full[1].id
	resp2, br2 := openStream(t, c, st.ID, resume)
	tail := drainStream(t, br2, resume)
	resp2.Body.Close()
	if want := len(full) - 2; len(tail) != want {
		t.Fatalf("resume after seq %d delivered %d events, want %d", resume, len(tail), want)
	}
	for i, ev := range tail {
		orig := full[i+2]
		if ev.id != orig.id || ev.typ != orig.typ || string(ev.data) != string(orig.data) {
			t.Fatalf("resumed event %d = {%d %s %s}, want {%d %s %s}",
				i, ev.id, ev.typ, ev.data, orig.id, orig.typ, orig.data)
		}
	}
	if tail[len(tail)-1].typ != EventVerdict {
		t.Fatalf("resumed stream ended with %s, want verdict", tail[len(tail)-1].typ)
	}
}

// TestStreamGapOnOverflow: with a tiny per-job ring, a subscriber that
// arrives after the ring has wrapped gets an explicit gap event accounting
// for every evicted event, then a contiguous tail through the terminal
// verdict — loss is visible, never silent.
func TestStreamGapOnOverflow(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 1, QueueDepth: 8, StreamRingEvents: 4})
	code, st := c.do("POST", "/jobs", &JobRequest{
		Source: slowSrc, Policy: PolicyRequest{Name: "slow"}, Options: slowOptions(),
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}

	// Let the running engine push enough events to wrap the ring before
	// anyone subscribes: queued + running + 3 progress snapshots is 5
	// events against a ring of 4.
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, js := c.do("GET", "/jobs/"+st.ID, nil)
		if js.Progress.Cycles >= 8192*3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("engine never produced enough progress events")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, br := openStream(t, c, st.ID, 0)
	defer resp.Body.Close()
	ev, ok := nextEvent(t, br)
	if !ok || ev.typ != EventGap {
		t.Fatalf("late subscriber's first event = %+v, want a gap marker", ev)
	}
	var gap GapEventJSON
	if err := json.Unmarshal(ev.data, &gap); err != nil || gap.Lost == 0 {
		t.Fatalf("gap event payload = %s", ev.data)
	}
	ev, ok = nextEvent(t, br)
	if !ok {
		t.Fatal("stream ended right after the gap marker")
	}
	if want := gap.Lost + 1; ev.id != want {
		t.Fatalf("first event after gap has seq %d, want %d (cursor 0 + %d lost)", ev.id, want, gap.Lost)
	}

	// Cancellation completes the job Incomplete through the normal path;
	// the stream must still end with its verdict event.
	if code, _ := c.do("DELETE", "/jobs/"+st.ID, nil); code != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d", code)
	}
	evs := drainStream(t, br, ev.id)
	if len(evs) == 0 {
		t.Fatal("no events after cancellation")
	}
	last := evs[len(evs)-1]
	if last.typ != EventVerdict {
		t.Fatalf("stream ended with %s, want verdict", last.typ)
	}
	var v VerdictEventJSON
	if err := json.Unmarshal(last.data, &v); err != nil || v.Verdict != "incomplete" {
		t.Fatalf("cancelled job's terminal event = %s", last.data)
	}
}

// TestStreamSubscriberCleanup: a client that disconnects mid-stream is
// reaped — the server notices within a heartbeat interval and releases the
// subscription.
func TestStreamSubscriberCleanup(t *testing.T) {
	c, s := newTestClient(t, Config{Workers: 1, QueueDepth: 8, StreamHeartbeat: 25 * time.Millisecond})
	code, st := c.do("POST", "/jobs", &JobRequest{
		Source: slowSrc, Policy: PolicyRequest{Name: "slow"}, Options: slowOptions(),
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}

	resp, br := openStream(t, c, st.ID, 0)
	if _, ok := nextEvent(t, br); !ok {
		t.Fatal("no first event")
	}
	if n := s.broker.Subscribers(); n != 1 {
		t.Fatalf("subscribers = %d, want 1", n)
	}
	resp.Body.Close() // client walks away mid-stream

	deadline := time.Now().Add(5 * time.Second)
	for s.broker.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscription leaked after client disconnect: %d live", s.broker.Subscribers())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if code, _ := c.do("DELETE", "/jobs/"+st.ID, nil); code != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d", code)
	}
	c.awaitDone(st.ID, 30*time.Second)
}

// TestStreamDrainTerminal: Server.Drain past its deadline cancels running
// jobs; a live stream still receives the terminal verdict event (verdict
// incomplete) and ends cleanly rather than hanging or being cut.
func TestStreamDrainTerminal(t *testing.T) {
	c, s := newTestClient(t, Config{Workers: 1, QueueDepth: 8})
	code, st := c.do("POST", "/jobs", &JobRequest{
		Source: slowSrc, Policy: PolicyRequest{Name: "slow"}, Options: slowOptions(),
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}

	resp, br := openStream(t, c, st.ID, 0)
	defer resp.Body.Close()

	// Wait for the running transition so the drain provably lands mid-job.
	sawRunning := false
	var prev uint64
	for !sawRunning {
		ev, ok := nextEvent(t, br)
		if !ok {
			t.Fatal("stream ended before the job started running")
		}
		prev = ev.id
		var state StateEventJSON
		if ev.typ == EventState && json.Unmarshal(ev.data, &state) == nil && state.State == stateRunning {
			sawRunning = true
		}
	}

	// An already-expired drain context: cancel stragglers immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain with a cancelled context returned nil; wanted the straggler-cancelling path")
	}

	evs := drainStream(t, br, prev)
	if len(evs) == 0 {
		t.Fatal("no events after drain")
	}
	last := evs[len(evs)-1]
	if last.typ != EventVerdict {
		t.Fatalf("drained stream ended with %s, want verdict", last.typ)
	}
	var v VerdictEventJSON
	if err := json.Unmarshal(last.data, &v); err != nil || v.Verdict != "incomplete" {
		t.Fatalf("drained job's terminal event = %s", last.data)
	}
}
