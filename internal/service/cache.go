package service

import (
	"repro/internal/glift"
	"repro/internal/repair"
)

// cachedResult is one completed execution in the result cache: the final
// analysis report, plus — for repair jobs — the full repair payload in wire
// form. Analysis and repair keys live in disjoint keyspaces (repairKey is
// domain-tagged), so an entry's shape is determined by its key.
type cachedResult struct {
	rep  *glift.Report
	rres *repair.ResultJSON // non-nil for repair jobs
}

// resultCache is the content-addressed result store: completed results keyed
// by canonical job key. Results are immutable after completion, so entries
// are shared by pointer. Eviction is FIFO by insertion order — the cache is
// a bounded memo, not a working-set optimizer, and FIFO keeps it O(1) with
// no per-hit bookkeeping. All methods are called under Server.mu.
type resultCache struct {
	cap     int
	entries map[string]*cachedResult
	order   []string // insertion order for FIFO eviction
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, entries: make(map[string]*cachedResult)}
}

func (c *resultCache) get(key string) (*cachedResult, bool) {
	res, ok := c.entries[key]
	return res, ok
}

func (c *resultCache) put(key string, res *cachedResult) {
	if _, exists := c.entries[key]; exists {
		c.entries[key] = res
		return
	}
	for len(c.entries) >= c.cap && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = res
	c.order = append(c.order, key)
}

func (c *resultCache) len() int { return len(c.entries) }
