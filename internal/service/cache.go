package service

import "repro/internal/glift"

// resultCache is the content-addressed result store: completed reports keyed
// by canonical job key. Reports are immutable after completion, so entries
// are shared by pointer. Eviction is FIFO by insertion order — the cache is
// a bounded memo, not a working-set optimizer, and FIFO keeps it O(1) with
// no per-hit bookkeeping. All methods are called under Server.mu.
type resultCache struct {
	cap     int
	entries map[string]*glift.Report
	order   []string // insertion order for FIFO eviction
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, entries: make(map[string]*glift.Report)}
}

func (c *resultCache) get(key string) (*glift.Report, bool) {
	rep, ok := c.entries[key]
	return rep, ok
}

func (c *resultCache) put(key string, rep *glift.Report) {
	if _, exists := c.entries[key]; exists {
		c.entries[key] = rep
		return
	}
	for len(c.entries) >= c.cap && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = rep
	c.order = append(c.order, key)
}

func (c *resultCache) len() int { return len(c.entries) }
