package service

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/glift"
	"repro/internal/obs"
	"repro/internal/store"
)

// storeStats aliases store.Stats for the scrape-time delta sync below.
type storeStats = store.Stats

// promMetrics bundles every Prometheus series gliftd exports: the service
// series (request latency, queue/worker/cache state, job outcomes) and the
// engine series fed by each job's Progress stream. The JSON counters in
// Server.m keep the legacy /metrics.json shape; these series are the
// time-series view over the same events.
type promMetrics struct {
	reg *obs.Registry

	httpDur       *obs.HistogramVec // {route, code}
	stages        *obs.Spans        // {stage}: queue-wait, engine-run, persist, cache-hit
	streamEvents  *obs.CounterVec   // {type}
	streamGaps    *obs.Counter
	streamSubs    *obs.Gauge
	streamTopics  *obs.Gauge
	jobsSubmitted *obs.Counter
	jobsRejected  *obs.Counter
	jobsShed      *obs.Counter
	quotaRejected *obs.Counter
	chaosInjected *obs.Counter
	jobsCompleted *obs.CounterVec // {verdict}
	cancels       *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	coalesced     *obs.Counter
	cacheEntries  *obs.Gauge
	queueDepth    *obs.Gauge
	workers       *obs.Gauge
	workersBusy   *obs.Gauge
	repairJobs    *obs.Counter
	repairRounds  *obs.Counter
	repairMasked  *obs.Counter

	storeHits        *obs.Counter
	storePuts        *obs.Counter
	storePutErrors   *obs.Counter
	storeQuarantined *obs.Counter
	storeEvictions   *obs.Counter
	storeRecovered   *obs.Counter
	storeEntries     *obs.Gauge
	storeBytes       *obs.Gauge
	// prevStore is the last store.Stats snapshot folded into the counters
	// above (scrape-time delta sync); guarded by Server.mu.
	prevStore storeStats

	runDur          *obs.HistogramVec // {verdict}
	engCycles       *obs.Counter
	engPaths        *obs.Counter
	engForks        *obs.Counter
	engMerges       *obs.Counter
	engPrunes       *obs.Counter
	engEscalations  *obs.Counter
	engTableStates  *obs.Gauge
	engPeakMem      *obs.Gauge
	engCyclesPerSec *obs.Gauge

	engSpecBusy   *obs.Gauge
	engDequeDepth *obs.Gauge
	engSteals     *obs.Counter
	engSpecUsed   *obs.Counter
	engSpecWasted *obs.Counter

	engLaneBatches *obs.Counter
	engLanesPacked *obs.Counter
	engLanesWasted *obs.Counter
	engLaneOccup   *obs.Gauge
}

func newPromMetrics(workers int) *promMetrics {
	reg := obs.NewRegistry()
	m := &promMetrics{
		reg: reg,
		httpDur: reg.HistogramVec("gliftd_http_request_duration_seconds",
			"HTTP request latency by route pattern and status code.", obs.DefBuckets, "route", "code"),
		stages: reg.Spans("gliftd_stage_duration_seconds",
			"Per-stage job latency: queue-wait, engine-run, persist, cache-hit."),
		streamEvents: reg.CounterVec("gliftd_stream_events_total",
			"Events published to job event streams, by event type.", "type"),
		streamGaps: reg.Counter("gliftd_stream_gap_events_total",
			"Gap markers delivered to stream subscribers that fell behind a job's event ring."),
		streamSubs: reg.Gauge("gliftd_stream_subscribers",
			"Open GET /jobs/{id}/events subscriptions."),
		streamTopics: reg.Gauge("gliftd_stream_topics",
			"Job event-stream topics held by the broker."),
		jobsSubmitted: reg.Counter("gliftd_jobs_submitted_total",
			"Job submissions received, including later-rejected ones."),
		jobsRejected: reg.Counter("gliftd_jobs_rejected_total",
			"Submissions rejected because the queue was full."),
		jobsShed: reg.Counter("gliftd_jobs_shed_total",
			"Submissions shed because their deadline could not be met at the predicted queue wait."),
		quotaRejected: reg.Counter("gliftd_quota_rejected_total",
			"Submissions rejected by a tenant's exhausted token bucket."),
		chaosInjected: reg.Counter("gliftd_chaos_injected_total",
			"Spurious 503 responses injected by the chaos fault-injection hook."),
		jobsCompleted: reg.CounterVec("gliftd_jobs_completed_total",
			"Engine executions finished, by fail-closed verdict.", "verdict"),
		cancels: reg.Counter("gliftd_cancel_requests_total",
			"DELETE /jobs/{id} requests against known jobs."),
		cacheHits: reg.Counter("gliftd_cache_hits_total",
			"Submissions answered from the content-addressed result cache."),
		cacheMisses: reg.Counter("gliftd_cache_misses_total",
			"Submissions that had to run (or join) an engine execution."),
		coalesced: reg.Counter("gliftd_jobs_coalesced_total",
			"Submissions served by an identical job already queued or running."),
		cacheEntries: reg.Gauge("gliftd_cache_entries",
			"Completed reports currently held in the result cache."),
		queueDepth: reg.Gauge("gliftd_queue_depth",
			"Jobs waiting for a worker."),
		workers: reg.Gauge("gliftd_workers",
			"Configured analysis worker count."),
		workersBusy: reg.Gauge("gliftd_workers_busy",
			"Workers currently running an engine execution."),
		repairJobs: reg.Counter("gliftd_repair_jobs_total",
			"Repair-mode jobs executed (each runs the analyze/mask/re-verify loop)."),
		repairRounds: reg.Counter("gliftd_repair_rounds_total",
			"Analyze/mask/re-verify rounds run across all repair jobs."),
		repairMasked: reg.Counter("gliftd_repair_masked_stores_total",
			"Stores masked in the final patched builds of completed repair jobs."),
		storeHits: reg.Counter("gliftd_store_hits_total",
			"Submissions answered from the persistent result store after full integrity validation."),
		storePuts: reg.Counter("gliftd_store_puts_total",
			"Completed reports durably written (fsynced) to the persistent store."),
		storePutErrors: reg.Counter("gliftd_store_put_errors_total",
			"Store writes that failed (capacity or I/O); the result stayed memory-only."),
		storeQuarantined: reg.Counter("gliftd_store_quarantined_total",
			"Records that failed integrity validation and were quarantined instead of served."),
		storeEvictions: reg.Counter("gliftd_store_evictions_total",
			"Records evicted oldest-first to respect the store byte cap."),
		storeRecovered: reg.Counter("gliftd_store_recovered_total",
			"Valid records re-indexed by startup recovery."),
		storeEntries: reg.Gauge("gliftd_store_entries",
			"Records currently indexed in the persistent store."),
		storeBytes: reg.Gauge("gliftd_store_bytes",
			"Total bytes of records currently indexed in the persistent store."),
		runDur: reg.HistogramVec("glift_engine_run_seconds",
			"Wall time of one complete engine exploration, by verdict.", obs.RunBuckets, "verdict"),
		engCycles: reg.Counter("glift_engine_cycles_total",
			"Simulated machine cycles across all engine runs."),
		engPaths: reg.Counter("glift_engine_paths_total",
			"Path states processed from the exploration worklist."),
		engForks: reg.Counter("glift_engine_forks_total",
			"X-PC concretization forks."),
		engMerges: reg.Counter("glift_engine_merges_total",
			"Conservative-state-table superstate widenings."),
		engPrunes: reg.Counter("glift_engine_prunes_total",
			"Paths pruned as substates of a table entry."),
		engEscalations: reg.Counter("glift_engine_widen_escalations_total",
			"Soft-memory-budget widening escalations."),
		engTableStates: reg.Gauge("glift_engine_table_states",
			"Conservative-state-table entries across currently running explorations."),
		engPeakMem: reg.Gauge("glift_engine_peak_mem_bytes",
			"Largest approximate table-plus-worklist footprint any single run has reached."),
		engCyclesPerSec: reg.Gauge("glift_engine_cycles_per_second",
			"Exploration throughput over the most recent progress interval."),
		engSpecBusy: reg.Gauge("glift_engine_spec_workers_busy",
			"Speculation workers currently simulating a path segment, across running explorations."),
		engDequeDepth: reg.Gauge("glift_engine_deque_depth",
			"Queued path states not yet claimed by a speculation worker, across running explorations."),
		engSteals: reg.Counter("glift_engine_steals_total",
			"Path states claimed by speculation workers."),
		engSpecUsed: reg.Counter("glift_engine_spec_used_total",
			"Speculated traces replayed by the committer."),
		engSpecWasted: reg.Counter("glift_engine_spec_wasted_total",
			"Speculated segments discarded before use."),
		engLaneBatches: reg.Counter("glift_engine_lane_batches_total",
			"Bitsliced speculation batches evaluated (one batch packs up to spec-lanes paths)."),
		engLanesPacked: reg.Counter("glift_engine_lanes_packed_total",
			"Path states packed onto bitsliced speculation lanes."),
		engLanesWasted: reg.Counter("glift_engine_lanes_wasted_total",
			"Bitsliced speculation lanes left idle because fewer paths were queued than lanes available."),
		engLaneOccup: reg.Gauge("glift_engine_lane_occupancy",
			"Fraction of available bitsliced speculation lanes carrying a path over the most recent progress interval (0 when scalar)."),
	}
	m.workers.Set(float64(workers))
	return m
}

// engineProgress mirrors one running engine's Progress stream into the
// registry, converting the stream's cumulative Stats into counter deltas
// so concurrent jobs aggregate correctly. It runs on the job's worker
// goroutine and forwards every snapshot to the job's own sink.
type engineProgress struct {
	m         *promMetrics
	next      func(glift.Progress)
	prev      glift.Stats
	prevSched glift.SchedStats
}

// counterDelta clamps a cumulative-feed delta at zero. Registry counters
// panic on negative additions, and the cumulative values observed here are
// not guaranteed monotone: with parallel exploration a snapshot can carry a
// wall-clock or scheduler reading that interleaves against the previous
// one, and the final Done emission is taken after the speculation pool has
// been torn down. A clamped interval under-counts briefly and catches up on
// the next snapshot; a negative one would take the whole exporter down.
func counterDelta[T int | int64 | uint64](cur, prev T) float64 {
	if cur <= prev {
		return 0
	}
	return float64(cur - prev)
}

func (ep *engineProgress) observe(p glift.Progress) {
	s, m := p.Stats, ep.m
	m.engCycles.Add(counterDelta(s.Cycles, ep.prev.Cycles))
	m.engPaths.Add(counterDelta(s.Paths, ep.prev.Paths))
	m.engForks.Add(counterDelta(s.Forks, ep.prev.Forks))
	m.engMerges.Add(counterDelta(s.Merges, ep.prev.Merges))
	m.engPrunes.Add(counterDelta(s.Prunes, ep.prev.Prunes))
	m.engEscalations.Add(counterDelta(s.Escalations, ep.prev.Escalations))
	m.engTableStates.Add(float64(s.TableStates - ep.prev.TableStates))
	m.engPeakMem.SetMax(float64(s.PeakMemBytes))
	if dw := s.WallNanos - ep.prev.WallNanos; dw > 0 && s.Cycles > ep.prev.Cycles {
		m.engCyclesPerSec.Set(float64(s.Cycles-ep.prev.Cycles) / (float64(dw) / 1e9))
	}
	ep.prev = s

	sc := p.Sched
	m.engSpecBusy.Add(float64(sc.Busy - ep.prevSched.Busy))
	m.engDequeDepth.Add(float64(sc.DequeDepth - ep.prevSched.DequeDepth))
	m.engSteals.Add(counterDelta(sc.Steals, ep.prevSched.Steals))
	m.engSpecUsed.Add(counterDelta(sc.SpecUsed, ep.prevSched.SpecUsed))
	m.engSpecWasted.Add(counterDelta(sc.SpecWasted, ep.prevSched.SpecWasted))
	m.engLaneBatches.Add(counterDelta(sc.LaneBatches, ep.prevSched.LaneBatches))
	m.engLanesPacked.Add(counterDelta(sc.LanesPacked, ep.prevSched.LanesPacked))
	m.engLanesWasted.Add(counterDelta(sc.LanesWasted, ep.prevSched.LanesWasted))
	if db := sc.LaneBatches - ep.prevSched.LaneBatches; db > 0 && sc.SpecLanes > 1 {
		dp := sc.LanesPacked - ep.prevSched.LanesPacked
		m.engLaneOccup.Set(float64(dp) / float64(db*uint64(sc.SpecLanes)))
	}
	ep.prevSched = sc

	if p.Done {
		// The run's state table and scheduler are released with the engine;
		// remove their contribution so the gauges track live explorations
		// only.
		m.engTableStates.Add(-float64(s.TableStates))
		m.engSpecBusy.Add(-float64(sc.Busy))
		m.engDequeDepth.Add(-float64(sc.DequeDepth))
	}
	if ep.next != nil {
		ep.next(p)
	}
}

// syncStoreMetricsLocked folds the store's cumulative activity counters
// into the registry as deltas and refreshes the size gauges. The caller
// holds Server.mu, which guards prevStore.
func (s *Server) syncStoreMetricsLocked() {
	if s.store == nil {
		return
	}
	st := s.store.Stats()
	p := &s.prom.prevStore
	s.prom.storePuts.Add(counterDelta(st.Puts, p.Puts))
	s.prom.storePutErrors.Add(counterDelta(st.PutErrors, p.PutErrors))
	s.prom.storeQuarantined.Add(counterDelta(st.Quarantined, p.Quarantined))
	s.prom.storeEvictions.Add(counterDelta(st.Evictions, p.Evictions))
	s.prom.storeRecovered.Add(counterDelta(st.Recovered, p.Recovered))
	*p = st
	s.prom.storeEntries.Set(float64(s.store.Len()))
	s.prom.storeBytes.Set(float64(s.store.Bytes()))
}

// instrument wraps the API with the request-latency histogram.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.prom.httpDur.With(routeLabel(r), strconv.Itoa(sw.code)).
			Observe(time.Since(start).Seconds())
	})
}

// statusWriter captures the response status for the latency histogram.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE streams flush through the
// instrumentation layer instead of buffering until the job ends.
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// routeLabel normalizes the request path to its route pattern so the
// histogram's label set stays bounded — neither job IDs nor arbitrary
// not-found paths may mint new series.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch {
	case strings.HasPrefix(p, "/jobs/") && strings.HasSuffix(p, "/events"):
		p = "/jobs/{id}/events"
	case strings.HasPrefix(p, "/jobs/"):
		p = "/jobs/{id}"
	case p == "/jobs", p == "/metrics", p == "/metrics.json", p == "/healthz":
	default:
		p = "other"
	}
	return r.Method + " " + p
}
