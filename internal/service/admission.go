package service

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"
)

// Admission control: gliftd admits work in three gates, each of which fails
// fast with machine-actionable backpressure instead of queuing doomed work.
//
//  1. Per-tenant token buckets keyed by the X-Tenant request header bound
//     each tenant's sustained submission rate; an exhausted bucket rejects
//     429 with Retry-After set to the time until the next token.
//  2. Deadline-aware shedding: a job whose deadline cannot be met given the
//     current queue depth and the observed job-duration EWMA is rejected
//     503 with Retry-After — queueing it would only burn a worker on a
//     result nobody can use (the deadline would expire in the queue and the
//     run would end Incomplete).
//  3. The bounded queue itself: a full queue rejects 503 with Retry-After,
//     as before.

// defaultTenant is the bucket for requests without an X-Tenant header.
const defaultTenant = "default"

// maxTenantBuckets bounds quota-tracking memory: past it, full (idle)
// buckets are swept before admitting a new tenant.
const maxTenantBuckets = 4096

// tenantOf extracts the quota key for a request.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return defaultTenant
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// tenantQuotas is the per-tenant token-bucket admission gate.
type tenantQuotas struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64 // bucket capacity
	buckets map[string]*bucket
	now     func() time.Time // test hook
}

func newTenantQuotas(rate float64, burst int) *tenantQuotas {
	if burst <= 0 {
		burst = int(math.Max(1, math.Ceil(rate)))
	}
	return &tenantQuotas{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// admit takes one token from the tenant's bucket. On refusal it returns the
// duration until a token will be available — the Retry-After the client
// should honor.
func (q *tenantQuotas) admit(tenant string) (bool, time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b := q.buckets[tenant]
	if b == nil {
		if len(q.buckets) >= maxTenantBuckets {
			q.sweepLocked()
		}
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	b.tokens = math.Min(q.burst, b.tokens+now.Sub(b.last).Seconds()*q.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
}

// sweepLocked drops buckets that have refilled completely — tenants idle
// long enough that forgetting them loses nothing (a fresh bucket starts
// full).
func (q *tenantQuotas) sweepLocked() {
	now := q.now()
	for t, b := range q.buckets {
		if math.Min(q.burst, b.tokens+now.Sub(b.last).Seconds()*q.rate) >= q.burst {
			delete(q.buckets, t)
		}
	}
}

// estimatedQueueWaitLocked predicts how long a newly enqueued job would
// wait for a worker: the jobs ahead of it, paced by the completed-job
// duration EWMA, spread across the pool. Zero while a worker is free or
// before the first completion seeds the EWMA — admission stays open until
// the service has evidence it is saturated. Caller holds s.mu.
func (s *Server) estimatedQueueWaitLocked() time.Duration {
	if s.m.avgRunNanos <= 0 || s.m.busyWorkers < s.cfg.Workers {
		return 0
	}
	return time.Duration(float64(s.m.queueDepth+1) * s.m.avgRunNanos / float64(s.cfg.Workers))
}

// observeRunLocked folds one completed job's wall time into the duration
// EWMA that prices queue admission. Caller holds s.mu.
func (s *Server) observeRunLocked(dur time.Duration) {
	const alpha = 0.2
	if s.m.avgRunNanos == 0 {
		s.m.avgRunNanos = float64(dur)
		return
	}
	s.m.avgRunNanos += alpha * (float64(dur) - s.m.avgRunNanos)
}

// setRetryAfter stamps the standard backpressure header, rounding up to a
// whole second (the header's unit) with a floor of 1.
func setRetryAfter(w http.ResponseWriter, wait time.Duration) {
	secs := int64(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
}
