package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/pprof"
	"time"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/repair"
	"repro/internal/target"
)

// Repair-job mode: a submission with "mode": "repair" runs the
// analyze→mask→re-verify loop of internal/repair — the exact code path
// cmd/secure430 runs, which is what makes the daemon's patched assembly
// byte-identical to the CLI's for identical inputs — server-side on the
// worker pool, under the job's deadline/cancellation, admission and
// persistence machinery. Each round publishes a `round` event on the job's
// stream; the completed payload (patched assembly, per-round counts, the
// targeted-vs-always-on overhead comparison and the final report) is cached
// and persisted like an analysis result, in its own domain-tagged keyspace.

// compileRepair turns a repair-mode request into a validated repair spec,
// reporting user errors the HTTP layer maps to 400.
func compileRepair(req *JobRequest) (*repair.Spec, *glift.Options, time.Duration, error) {
	// Honest capability gating: the repair pipeline parses, rewrites and
	// re-assembles msp430 assembly; other targets are analysis-only until
	// their ISAs grow transform support.
	if tgt, err := target.Parse(req.Target); err != nil {
		return nil, nil, 0, err
	} else if !tgt.SupportsRepair {
		return nil, nil, 0, fmt.Errorf("repair mode is not supported for target %q (only msp430 has transform/repair support)", tgt.Name)
	}
	if req.IHex != "" {
		return nil, nil, 0, fmt.Errorf("repair mode requires source (the loop re-parses and rewrites assembly; ihex images cannot be repaired)")
	}
	if req.Source == "" {
		return nil, nil, 0, fmt.Errorf("missing program: repair mode requires source")
	}
	pol, err := compilePolicy(&req.Policy)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(req.Policy.TaintedCode) > 0 {
		// Mask insertion moves code, so numeric ranges fixed at submission
		// time would silently mislabel later rounds; symbolic ranges under
		// repair.tainted_code re-resolve per round instead.
		return nil, nil, 0, fmt.Errorf("repair mode rejects numeric policy.tainted_code ranges: give symbolic lo:hi specs in repair.tainted_code, re-resolved each round")
	}
	opt, deadline, err := compileOptions(&req.Options)
	if err != nil {
		return nil, nil, 0, err
	}
	rr := req.Repair
	if rr == nil {
		rr = &RepairRequest{}
	}
	if rr.Rounds < 0 {
		return nil, nil, 0, fmt.Errorf("negative repair rounds")
	}
	spec := &repair.Spec{
		Source:     req.Source,
		Policy:     *pol,
		CodeRanges: rr.TaintedCode,
		MaxRounds:  rr.Rounds,
		TaskCycles: rr.TaskCycles,
	}
	if rr.Partition != "" {
		if spec.Partition, err = repair.ParsePartition(rr.Partition); err != nil {
			return nil, nil, 0, err
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, nil, 0, err
	}
	return spec, opt, deadline, nil
}

// repairKey computes the canonical content address of a repair job — the
// same soundness contract as jobKey, over the repair loop's inputs: source
// text (the loop re-parses it every round, so the text itself is the
// input), policy, per-round code-range specs, partition, round budget,
// task-cycle anchor, normalized engine options and deadline. The "repair/v1"
// domain tag keeps repair keys disjoint from analysis keys, so one store
// and one cache serve both shapes without ambiguity.
func (s *Server) repairKey(spec *repair.Spec, opt *glift.Options, deadline time.Duration) string {
	h := sha256.New()
	h.Write(s.designFP[:])
	h.Write([]byte("repair/v1\x00"))
	put := func(v any) {
		if err := binary.Write(h, binary.LittleEndian, v); err != nil {
			panic(fmt.Sprintf("service: hashing repair key: %v", err))
		}
	}
	putBytes := func(b []byte) {
		put(uint32(len(b)))
		h.Write(b)
	}
	putBytes([]byte(spec.Source))
	putBytes(spec.Policy.CanonicalJSON())
	put(uint32(len(spec.CodeRanges)))
	for _, r := range spec.CodeRanges {
		putBytes([]byte(r))
	}
	put(spec.Partition.Lo)
	put(spec.Partition.Size)
	put(int64(spec.MaxRounds))
	put(spec.TaskCycles)
	// Workers/Backend/SpecLanes are byte-identical by the differential
	// contract (the repair differential suite sweeps them), so like jobKey
	// they stay out of the key.
	n := opt.Normalized()
	put(n.MaxCycles)
	put(n.MaxPathCycles)
	put(int64(n.WidenAfter))
	put(n.SoftMemBytes)
	put(n.HardMemBytes)
	put(int64(deadline))
	return hex.EncodeToString(h.Sum(nil))
}

// runRepairJob executes one repair job — the worker-pool counterpart of
// runJob. The whole round loop runs as the job's engine-run stage; every
// round gets a fresh engineProgress observer (the cumulative→delta
// conversion assumes one engine run per observer) and publishes a `round`
// boundary event on the job's stream.
func (s *Server) runRepairJob(j *job) {
	started := time.Now()
	queueWait := started.Sub(j.enqueued)
	s.prom.stages.Observe(StageQueueWait, queueWait)
	j.setState(stateRunning)
	s.publish(j.id, EventState, StateEventJSON{ID: j.id, State: stateRunning})
	ctx := j.ctx
	if j.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.deadline)
		defer cancel()
	}
	opt := j.opt
	if opt.Workers == 0 {
		opt.Workers = s.cfg.EngineWorkers
	}
	if !j.backendSet {
		opt.Backend = s.cfg.EngineBackend
	}
	if opt.SpecLanes == 0 {
		opt.SpecLanes = s.cfg.EngineSpecLanes
	}
	if j.streamTrace > 0 {
		opt.Tracer = s.traceSampler(j, j.streamTrace)
	}

	spec := j.rspec
	spec.Options = &opt
	spec.RoundProgress = func(int) func(glift.Progress) {
		return (&engineProgress{m: s.prom, next: func(p glift.Progress) {
			j.setProgress(p)
			s.publish(j.id, EventProgress, progressJSON(p))
		}}).observe
	}
	rounds, maskedStores := 0, 0
	var cycles uint64
	spec.OnRound = func(rr repair.Round) {
		rounds++
		cycles += rr.Stats.Cycles
		s.publish(j.id, EventRound, RoundEventJSON{
			ID:                j.id,
			Round:             rr.Round,
			MaskedStores:      rr.MaskedStores,
			Violations:        rr.Violations,
			ViolatingStorePCs: rr.ViolatingPCs,
			NewlyFlagged:      rr.NewlyFlagged,
			Verdict:           rr.Verdict.String(),
		})
	}

	var rep *glift.Report
	var rj *repair.ResultJSON
	var res *repair.Result
	var err error
	engStart := time.Now()
	pprof.Do(ctx, pprof.Labels("glift_job", j.id, "glift_policy", spec.Policy.Name),
		func(ctx context.Context) { res, err = repair.Run(ctx, spec) })
	if err != nil {
		// The spec was validated at submission time, so this is an internal
		// failure of the loop itself; report it fail-closed.
		rep = &glift.Report{Policy: spec.Policy.Name, Err: &glift.RunError{Reason: err.Error()}}
	} else {
		rep = res.Report
		v := res.JSON()
		rj = &v
		maskedStores = res.Overheads.Targeted.MaskedStores
	}
	engineRun := time.Since(engStart)
	s.prom.stages.Observe(StageEngineRun, engineRun)
	verdict := rep.Verdict()

	// Persist before publishing, exactly like analysis results: once any
	// waiter sees the completed payload it has been fsynced. Only completed
	// explorations persist — Incomplete/InternalError reflect the run.
	var persistDur time.Duration
	if rj != nil && (verdict == glift.Verified || verdict == glift.Violations) {
		pStart := time.Now()
		s.persistRepair(j.key, rj)
		persistDur = time.Since(pStart)
		s.prom.stages.Observe(StagePersist, persistDur)
	}

	s.mu.Lock()
	s.m.busyWorkers--
	s.m.engineRuns += int64(rounds) // every round is one engine run
	s.m.completed++
	s.m.byVerdict[verdict.String()]++
	s.m.cyclesTotal += cycles
	s.m.repairJobs++
	s.m.repairRounds += int64(rounds)
	s.m.repairMaskedStores += int64(maskedStores)
	s.observeRunLocked(time.Since(started))
	delete(s.inflight, j.key)
	if rj != nil && (verdict == glift.Verified || verdict == glift.Violations) {
		s.cache.put(j.key, &cachedResult{rep: rep, rres: rj})
	}
	s.mu.Unlock()
	s.prom.workersBusy.Add(-1)
	s.prom.jobsCompleted.With(verdict.String()).Inc()
	s.prom.repairJobs.Inc()
	s.prom.repairRounds.Add(float64(rounds))
	s.prom.repairMasked.Add(float64(maskedStores))
	s.prom.runDur.With(verdict.String()).Observe(float64(rep.Stats.WallNanos) / 1e9)
	if rj != nil {
		j.setRepair(rj)
	}
	s.finishJob(j, rep, false, StageTimesJSON{
		QueueWaitNS: queueWait.Nanoseconds(),
		EngineRunNS: engineRun.Nanoseconds(),
		PersistNS:   persistDur.Nanoseconds(),
		TotalNS:     time.Since(j.created).Nanoseconds(),
	})
	s.log.Info("repair job completed",
		"job_id", j.id, "tenant", j.tenant, "verdict", verdict.String(),
		"rounds", rounds, "masked_stores", maskedStores, "cycles", cycles,
		"queue_wait_ms", queueWait.Milliseconds(), "engine_run_ms", engineRun.Milliseconds())
}

// persistRepair writes one completed repair payload durably; like persist,
// a store failure degrades durability, never correctness.
func (s *Server) persistRepair(key string, rj *repair.ResultJSON) {
	if s.store == nil {
		return
	}
	payload, err := json.Marshal(rj)
	if err != nil {
		return
	}
	s.store.Put(key, payload) //nolint:errcheck // absorbed; counted in store stats
}

// lookupStoreRepair probes the persistent store for a completed repair
// payload, extending lookupStore's fail-closed contract to the repair
// shape: the payload must parse, its embedded report must rebuild and its
// verdict re-derive, the record must re-serialize byte-identically, and the
// patched assembly must still assemble. Any failure quarantines the record
// and reads as a miss.
func (s *Server) lookupStoreRepair(key string) *cachedResult {
	if s.store == nil {
		return nil
	}
	payload, ok := s.store.Get(key)
	if !ok {
		return nil
	}
	var rj repair.ResultJSON
	if err := json.Unmarshal(payload, &rj); err != nil {
		s.store.Quarantine(key)
		return nil
	}
	if err := rj.Validate(); err != nil {
		s.store.Quarantine(key)
		return nil
	}
	rep, err := rj.Report.Report()
	if err != nil {
		s.store.Quarantine(key)
		return nil
	}
	canon, err := json.Marshal(&rj)
	if err != nil || !bytes.Equal(canon, payload) {
		s.store.Quarantine(key)
		return nil
	}
	if _, err := asm.AssembleSource(rj.PatchedAsm); err != nil {
		s.store.Quarantine(key)
		return nil
	}
	return &cachedResult{rep: rep, rres: &rj}
}
