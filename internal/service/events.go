package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/glift"
	"repro/internal/obs"
)

// Live job telemetry: every job owns a broker topic (keyed by job ID) that
// receives its lifecycle transitions, progress snapshots, optional sampled
// engine trace events and one terminal verdict event. GET /jobs/{id}/events
// serves the topic as a Server-Sent Events stream with Last-Event-ID resume
// (each event's SSE id is its topic sequence number), comment heartbeats,
// and lossy-with-gap-marker semantics under backpressure: a reader that
// falls behind the per-job ring gets a `gap` event counting what it missed,
// never silently reordered or truncated data. The stream always ends with
// the `verdict` event — including on drain, where cancelled jobs complete
// Incomplete through the normal path — so a consumer can treat stream end
// without a verdict as a reconnect cue.

// Stage names for the per-stage latency spans (the `stage` label on
// gliftd_stage_duration_seconds and the *_ns fields of the verdict event).
const (
	StageQueueWait = "queue-wait"
	StageEngineRun = "engine-run"
	StagePersist   = "persist"
	StageCacheHit  = "cache-hit"
)

// Event types on GET /jobs/{id}/events.
const (
	// EventState: a lifecycle transition (queued, running).
	EventState = "state"
	// EventProgress: a ProgressJSON snapshot from the running engine.
	EventProgress = "progress"
	// EventTrace: one sampled engine exploration event (opt-in via
	// options.stream_trace).
	EventTrace = "trace"
	// EventRound: a repair-job round boundary — the per-round masked-store
	// and violation counts as the analyze→mask→re-verify loop iterates.
	EventRound = "round"
	// EventGap: events were evicted before this reader could see them
	// (carries the count); synthesized per subscriber, never stored.
	EventGap = "gap"
	// EventVerdict: the terminal event — verdict plus per-stage latencies.
	// Always the last event of a stream.
	EventVerdict = "verdict"
)

// StateEventJSON is the payload of a `state` event.
type StateEventJSON struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// TraceEventJSON is the payload of a `trace` event: one engine exploration
// event in wire form (see glift.TraceEventKind for the kinds).
type TraceEventJSON struct {
	Kind   string `json:"kind"`
	Cycle  uint64 `json:"cycle"`
	WallNS int64  `json:"wall_ns"`
	PC     uint16 `json:"pc"`
	Aux    int    `json:"aux,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// RoundEventJSON is the payload of a `round` event: one completed repair
// round, mirroring the per-round line secure430 prints.
type RoundEventJSON struct {
	ID                string `json:"id"`
	Round             int    `json:"round"`
	MaskedStores      int    `json:"masked_stores"`
	Violations        int    `json:"violations"`
	ViolatingStorePCs int    `json:"violating_store_pcs"`
	NewlyFlagged      int    `json:"newly_flagged"`
	Verdict           string `json:"verdict"`
}

// GapEventJSON is the payload of a `gap` event.
type GapEventJSON struct {
	// Lost is how many events were evicted unseen before the next one.
	Lost uint64 `json:"lost"`
}

// StageTimesJSON carries one job's per-stage latencies, in nanoseconds.
// Engine-executed jobs report queue-wait/engine-run/persist; cache and
// store hits report cache-hit. Total is submission to verdict.
type StageTimesJSON struct {
	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`
	EngineRunNS int64 `json:"engine_run_ns,omitempty"`
	PersistNS   int64 `json:"persist_ns,omitempty"`
	CacheHitNS  int64 `json:"cache_hit_ns,omitempty"`
	TotalNS     int64 `json:"total_ns"`
}

// VerdictEventJSON is the payload of the terminal `verdict` event.
type VerdictEventJSON struct {
	ID       string         `json:"id"`
	Verdict  string         `json:"verdict"`
	CacheHit bool           `json:"cache_hit,omitempty"`
	Stages   StageTimesJSON `json:"stages"`
}

// publish serializes one event onto a job's topic. Publishing to a closed
// topic (a finished job) is a silent no-op by broker contract — nothing may
// follow the verdict.
func (s *Server) publish(jobID, typ string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	if s.broker.Publish(jobID, typ, data) != 0 {
		s.prom.streamEvents.With(typ).Inc()
	}
}

// finishJob publishes the final report to waiters and the stream in one
// place: report to the job record, verdict event to the topic, then the
// terminal topic close. Every completion path — engine run, cache hit,
// store hit — funnels through here so no stream can end without its
// verdict event.
func (s *Server) finishJob(j *job, rep *glift.Report, cacheHit bool, stages StageTimesJSON) {
	j.finish(rep)
	s.publish(j.id, EventVerdict, VerdictEventJSON{
		ID:       j.id,
		Verdict:  rep.Verdict().String(),
		CacheHit: cacheHit,
		Stages:   stages,
	})
	s.broker.CloseTopic(j.id)
}

// finishHit completes a cache- or store-served job: the lookup duration is
// the job's cache-hit stage, and the stream carries the verdict as its
// only event — late subscribers replay it from the ring. Repair hits carry
// the full repair payload back to the job record.
func (s *Server) finishHit(j *job, c *cachedResult, start time.Time) {
	d := time.Since(start)
	s.prom.stages.Observe(StageCacheHit, d)
	if c.rres != nil {
		j.setRepair(c.rres)
	}
	s.finishJob(j, c.rep, true, StageTimesJSON{
		CacheHitNS: d.Nanoseconds(),
		TotalNS:    d.Nanoseconds(),
	})
	s.log.Info("job served from cache",
		"job_id", j.id, "tenant", j.tenant, "verdict", c.rep.Verdict().String())
}

// progressJSON converts an engine progress snapshot to its wire form
// (shared by GET /jobs/{id} and the `progress` stream event).
func progressJSON(p glift.Progress) ProgressJSON {
	return ProgressJSON{
		Cycles:      p.Stats.Cycles,
		Paths:       p.Stats.Paths,
		TableStates: p.Stats.TableStates,
		Pending:     p.Pending,
		WallNanos:   p.Stats.WallNanos,
		Done:        p.Done,
	}
}

// traceSampler returns an Options.Tracer hook publishing every n-th engine
// exploration event to the job's stream. The engine delivers trace events
// from one goroutine, so the counter needs no synchronization; the broker
// publish is internally locked either way.
func (s *Server) traceSampler(j *job, n int) func(glift.TraceEvent) {
	var count int
	return func(ev glift.TraceEvent) {
		count++
		if (count-1)%n != 0 {
			return
		}
		s.publish(j.id, EventTrace, TraceEventJSON{
			Kind:   ev.Kind.String(),
			Cycle:  ev.Cycle,
			WallNS: ev.WallNS,
			PC:     ev.PC,
			Aux:    ev.Aux,
			Detail: ev.Detail,
		})
	}
}

// resumeCursor extracts the client's resume position: the SSE-standard
// Last-Event-ID header (set automatically by EventSource reconnects),
// falling back to an ?after= query parameter for curl-style consumers.
func resumeCursor(r *http.Request) (uint64, error) {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("after")
	}
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad resume cursor %q: %w", v, err)
	}
	return n, nil
}

// handleEvents serves GET /jobs/{id}/events: the job's event stream as SSE.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	_, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	after, err := resumeCursor(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	sub, err := s.broker.Subscribe(r.PathValue("id"), after)
	if err != nil {
		writeError(w, http.StatusNotFound, "no event stream for this job")
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		// Each wait is bounded by the heartbeat cadence: a quiet stream
		// emits an SSE comment so intermediaries and clients can tell a
		// slow job from a dead connection.
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.StreamHeartbeat)
		ev, lost, err := sub.Next(ctx)
		cancel()
		switch {
		case err == nil:
		case errors.Is(err, obs.ErrStreamClosed):
			return // clean end: the verdict event has been delivered
		case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
			continue
		default:
			return // client disconnected
		}
		if lost > 0 {
			// Gap markers carry no SSE id: a reconnect resumes from the
			// last real event, re-deriving the gap if it still exists.
			s.prom.streamGaps.Inc()
			data, _ := json.Marshal(GapEventJSON{Lost: lost})
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", EventGap, data)
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data)
		fl.Flush()
	}
}
