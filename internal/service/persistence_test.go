package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
)

// rawReport extracts the raw "report" bytes from one job-status response so
// served reports can be compared byte-for-byte, not structurally.
func (c *testClient) rawReport(method, path string, body any) (int, json.RawMessage) {
	c.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var shell struct {
		Report json.RawMessage `json:"report"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&shell); err != nil {
		c.t.Fatalf("%s %s: decoding: %v", method, path, err)
	}
	return resp.StatusCode, shell.Report
}

// TestServicePersistenceAcrossRestart: a restarted server recovers every
// fsynced result and serves it byte-identically to the cold run, without
// re-running the engine.
func TestServicePersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, QueueDepth: 8, StoreDir: dir}
	c1, _ := newTestClient(t, cfg)
	vp := violPolicy(t)

	cleanReq := &JobRequest{Source: cleanSrc, Policy: PolicyRequest{Name: "clean"}}
	violReq := &JobRequest{Source: violSrc, Policy: vp}
	code, coldClean := c1.rawReport("POST", "/jobs?wait=1", cleanReq)
	if code != http.StatusOK {
		t.Fatalf("cold clean run: code=%d", code)
	}
	code, coldViol := c1.rawReport("POST", "/jobs?wait=1", violReq)
	if code != http.StatusConflict {
		t.Fatalf("cold violating run: code=%d", code)
	}
	if m := c1.metrics(); m.StorePuts != 2 || m.StorePutErrors != 0 {
		t.Fatalf("store puts = %d (errors %d), want 2/0", m.StorePuts, m.StorePutErrors)
	}
	c1.close()

	// Fresh process, same store dir: recovery must re-index both records.
	c2, _ := newTestClient(t, cfg)
	m := c2.metrics()
	if m.StoreRecovered != 2 || m.StoreQuarantined != 0 {
		t.Fatalf("recovery: recovered=%d quarantined=%d, want 2/0", m.StoreRecovered, m.StoreQuarantined)
	}

	code, warmClean := c2.rawReport("POST", "/jobs?wait=1", cleanReq)
	if code != http.StatusOK {
		t.Fatalf("recovered clean: code=%d", code)
	}
	code, warmViol := c2.rawReport("POST", "/jobs?wait=1", violReq)
	if code != http.StatusConflict {
		t.Fatalf("recovered violating: code=%d", code)
	}
	if !bytes.Equal(coldClean, warmClean) {
		t.Errorf("recovered clean report differs from cold run:\n cold %s\n warm %s", coldClean, warmClean)
	}
	if !bytes.Equal(coldViol, warmViol) {
		t.Errorf("recovered violating report differs from cold run:\n cold %s\n warm %s", coldViol, warmViol)
	}
	m = c2.metrics()
	if m.EngineRuns != 0 {
		t.Errorf("recovered submissions re-ran the engine %d times", m.EngineRuns)
	}
	if m.StoreHits != 2 || m.CacheHits != 2 {
		t.Errorf("store_hits=%d cache_hits=%d, want 2/2", m.StoreHits, m.CacheHits)
	}
	// Promoted into the memory cache: a third identical submission hits
	// memory, not disk.
	if code, _ := c2.rawReport("POST", "/jobs?wait=1", cleanReq); code != http.StatusOK {
		t.Fatalf("third submission: code=%d", code)
	}
	if m = c2.metrics(); m.StoreHits != 2 || m.CacheHits != 3 {
		t.Errorf("after memory promotion: store_hits=%d cache_hits=%d, want 2/3", m.StoreHits, m.CacheHits)
	}
}

// TestServiceCorruptEntryIsMissNeverServed: byte-level corruption under the
// running service and at recovery both quarantine the record; the engine
// re-runs and the verdict is unchanged.
func TestServiceCorruptEntryIsMissNeverServed(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 8, StoreDir: dir}
	c1, _ := newTestClient(t, cfg)

	code, st := c1.do("POST", "/jobs?wait=1", &JobRequest{Source: cleanSrc, Policy: PolicyRequest{Name: "p"}})
	if code != http.StatusOK {
		t.Fatalf("cold run: code=%d", code)
	}
	key := st.Key
	c1.close()

	// Flip one payload byte — simulated bit rot / torn write.
	path := filepath.Join(dir, "objects", key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, _ := newTestClient(t, cfg)
	m := c2.metrics()
	if m.StoreRecovered != 0 || m.StoreQuarantined != 1 {
		t.Fatalf("recovery stats: recovered=%d quarantined=%d, want 0/1", m.StoreRecovered, m.StoreQuarantined)
	}
	code, st = c2.do("POST", "/jobs?wait=1", &JobRequest{Source: cleanSrc, Policy: PolicyRequest{Name: "p"}})
	if code != http.StatusOK || st.CacheHit || st.Verdict != "verified" {
		t.Fatalf("after corruption: code=%d hit=%v verdict=%q (must re-run, not serve the torn record)",
			code, st.CacheHit, st.Verdict)
	}
	if m = c2.metrics(); m.EngineRuns != 1 {
		t.Errorf("engine_runs = %d, want 1", m.EngineRuns)
	}
}

// TestServiceSemanticCorruptionRejected: a record that passes the store's
// checksum but decodes to a report whose derived verdict disagrees with its
// serialized verdict is quarantined by the service's reconstruction check.
func TestServiceSemanticCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 8, StoreDir: dir}
	c1, _ := newTestClient(t, cfg)
	code, st := c1.do("POST", "/jobs?wait=1", &JobRequest{Source: violSrc, Policy: violPolicy(t)})
	if code != http.StatusConflict {
		t.Fatalf("cold run: code=%d", code)
	}
	key := st.Key
	c1.close()

	// Rewrite the record with internally-consistent framing (valid
	// checksum) but a tampered verdict field.
	raw, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload, ok := raw.Get(key)
	if !ok {
		t.Fatal("record missing")
	}
	tampered := bytes.Replace(payload, []byte(`"verdict":"violations"`), []byte(`"verdict":"verified"`), 1)
	if bytes.Equal(tampered, payload) {
		t.Fatal("tampering had no effect; test setup broken")
	}
	if err := raw.Put(key, tampered); err != nil {
		t.Fatal(err)
	}

	c2, _ := newTestClient(t, cfg)
	code, st = c2.do("POST", "/jobs?wait=1", &JobRequest{Source: violSrc, Policy: violPolicy(t)})
	if code != http.StatusConflict || st.CacheHit || st.Verdict != "violations" {
		t.Fatalf("tampered record: code=%d hit=%v verdict=%q (must re-run with the true verdict)",
			code, st.CacheHit, st.Verdict)
	}
	if m := c2.metrics(); m.StoreQuarantined != 1 {
		t.Errorf("store_quarantined = %d, want 1", m.StoreQuarantined)
	}
}

// TestServiceStoreCapDegradesGracefully: a store too small for any record
// turns durability off (put errors counted) without affecting results.
func TestServiceStoreCapDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 8, StoreDir: dir, StoreMaxBytes: 16}
	c, _ := newTestClient(t, cfg)
	code, st := c.do("POST", "/jobs?wait=1", &JobRequest{Source: cleanSrc, Policy: PolicyRequest{Name: "p"}})
	if code != http.StatusOK || st.Verdict != "verified" {
		t.Fatalf("capped store run: code=%d verdict=%q", code, st.Verdict)
	}
	m := c.metrics()
	if m.StorePutErrors != 1 || m.StoreEntries != 0 {
		t.Errorf("put_errors=%d entries=%d, want 1/0", m.StorePutErrors, m.StoreEntries)
	}
	// Served from memory regardless.
	if code, st = c.do("POST", "/jobs?wait=1", &JobRequest{Source: cleanSrc, Policy: PolicyRequest{Name: "p"}}); code != http.StatusOK || !st.CacheHit {
		t.Errorf("memory cache must still serve: code=%d hit=%v", code, st.CacheHit)
	}
}

// TestServiceDrainPersistsAndRejects: Drain refuses new submissions with
// 503 + Retry-After, waits for in-flight jobs (whose results are durable
// before their waiters are released), and leaves the store recoverable.
func TestServiceDrainPersistsAndRejects(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 8, StoreDir: dir}
	c1, s1 := newTestClient(t, cfg)
	code, _ := c1.do("POST", "/jobs?wait=1", &JobRequest{Source: cleanSrc, Policy: PolicyRequest{Name: "p"}})
	if code != http.StatusOK {
		t.Fatalf("run: code=%d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	resp, err := http.Post(c1.srv.URL+"/jobs", "application/json",
		bytes.NewReader([]byte(`{"source":"start: jmp start","policy":{"name":"p"}}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("draining submission: code=%d retry-after=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	c1.close()

	c2, _ := newTestClient(t, cfg)
	if m := c2.metrics(); m.StoreRecovered != 1 {
		t.Errorf("store_recovered = %d, want 1", m.StoreRecovered)
	}
}

// TestServiceDrainCancelsStragglers: a drain whose context expires cancels
// the running jobs instead of hanging; the cancelled run ends Incomplete
// and is never persisted.
func TestServiceDrainCancelsStragglers(t *testing.T) {
	dir := t.TempDir()
	c, s := newTestClient(t, Config{Workers: 1, QueueDepth: 8, StoreDir: dir})
	_, sub := c.do("POST", "/jobs", &JobRequest{
		Source: slowSrc, Policy: PolicyRequest{Name: "slow"}, Options: slowOptions(),
	})
	// Ensure it is running before draining.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		_, st := c.do("GET", "/jobs/"+sub.ID, nil)
		if st.State == stateRunning && st.Progress.Cycles > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never progressed: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain of a stuck job should report the expired context")
	}
	st := c.awaitDone(sub.ID, 2*time.Minute)
	if st.Verdict != "incomplete" {
		t.Errorf("drained straggler verdict = %q", st.Verdict)
	}
	if m := c.metrics(); m.StorePuts != 0 {
		t.Errorf("incomplete result persisted: puts=%d", m.StorePuts)
	}
}
