package client

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/service"
)

// wireEvent is one scripted server-side event for the reconnect tests.
type wireEvent struct {
	Seq  uint64
	Type string
	Data []byte
}

// scriptedStream serves a fixed event sequence over SSE, honoring
// Last-Event-ID, and cuts the connection after at most perConn events —
// forcing the client through its reconnect/resume path.
func scriptedStream(t *testing.T, events []wireEvent, perConn int) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var after uint64
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				t.Errorf("bad Last-Event-ID %q", v)
			}
			after = n
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		fl := w.(http.Flusher)
		fmt.Fprint(w, ": hb\n\n") // clients must absorb heartbeats anywhere
		sent := 0
		for _, ev := range events {
			if ev.Seq <= after {
				continue
			}
			if sent == perConn {
				return // cut mid-stream, verdict not yet delivered
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data)
			fl.Flush()
			sent++
		}
	}))
}

// TestStreamReconnectResume: a server that drops every connection after two
// events still yields the full, duplicate-free sequence through
// Last-Event-ID resume, ending cleanly on the verdict.
func TestStreamReconnectResume(t *testing.T) {
	events := []wireEvent{
		{Seq: 1, Type: service.EventState, Data: []byte(`{"id":"j","state":"queued"}`)},
		{Seq: 2, Type: service.EventState, Data: []byte(`{"id":"j","state":"running"}`)},
		{Seq: 3, Type: service.EventProgress, Data: []byte(`{"cycles":8192}`)},
		{Seq: 4, Type: service.EventProgress, Data: []byte(`{"cycles":16384}`)},
		{Seq: 5, Type: service.EventVerdict, Data: []byte(`{"id":"j","verdict":"verified","stages":{"total_ns":7}}`)},
	}
	ts := scriptedStream(t, events, 2)
	defer ts.Close()

	cl := fastClient(ts.URL, 8)
	var got []StreamEvent
	err := cl.Stream(context.Background(), "j", func(ev StreamEvent) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("delivered %d events, want %d: %+v", len(got), len(events), got)
	}
	for i, ev := range got {
		if ev.ID != events[i].Seq || ev.Type != events[i].Type {
			t.Fatalf("event %d = {%d %s}, want {%d %s}", i, ev.ID, ev.Type, events[i].Seq, events[i].Type)
		}
	}
}

// TestStreamGivesUp: a job the server has never heard of is a terminal
// error — the client must not reconnect-loop on 404.
func TestStreamGivesUp(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	cl := fastClient(ts.URL, 8)
	err := cl.Stream(context.Background(), "ghost", func(StreamEvent) error { return nil })
	if err == nil {
		t.Fatal("Stream of an unknown job returned nil")
	}
	if calls != 1 {
		t.Fatalf("client retried a 404 %d times; it is terminal", calls)
	}
}

// TestStreamToVerdictEndToEnd drives the real service: submit without wait,
// stream to the verdict, and check the aggregate matches the job.
func TestStreamToVerdictEndToEnd(t *testing.T) {
	srv, err := service.New(service.Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := fastClient(ts.URL, 8)
	res, err := cl.Submit(context.Background(), &service.JobRequest{
		Source: "start: mov #0x0280, sp\n        clr r10\nloop:   jmp loop\n",
		Policy: service.PolicyRequest{Name: "clean"},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := cl.StreamToVerdict(context.Background(), res.Status.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Verdict.Verdict != "verified" || sr.Verdict.ID != res.Status.ID {
		t.Fatalf("verdict event = %+v", sr.Verdict)
	}
	if sr.Events[service.EventVerdict] != 1 || sr.Events[service.EventState] < 1 {
		t.Fatalf("event counts = %v", sr.Events)
	}
	if sr.Lost != 0 {
		t.Fatalf("default ring lost %d events on a tiny job", sr.Lost)
	}
	if sr.Verdict.Stages.TotalNS <= 0 {
		t.Fatalf("stage timings = %+v", sr.Verdict.Stages)
	}
}
