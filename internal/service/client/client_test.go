package client

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

func fastClient(url string, attempts int) *Client {
	return New(Config{
		BaseURL:     url,
		MaxAttempts: attempts,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
	})
}

// TestClientRetriesBackpressure: 429/503 are retried until success; the
// verdict statuses are final.
func TestClientRetriesBackpressure(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		case 2:
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(service.JobStatusJSON{ID: "job-1", Verdict: "verified"})
		}
	}))
	defer ts.Close()

	// Retry-After: 1 would sleep a full second; MaxBackoff must cap it for
	// the test to stay fast — and that cap is itself part of the contract.
	c := New(Config{BaseURL: ts.URL, MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond})
	res, err := c.Submit(context.Background(), &service.JobRequest{Source: "x"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != http.StatusOK || res.Attempts != 3 || res.Status.Verdict != "verified" {
		t.Errorf("result: code=%d attempts=%d verdict=%q", res.Code, res.Attempts, res.Status.Verdict)
	}
}

// TestClientVerdictsAreFinal: 409 (violations) and 504 (incomplete) return
// immediately — they are outcomes, not backpressure.
func TestClientVerdictsAreFinal(t *testing.T) {
	for _, code := range []int{http.StatusConflict, http.StatusGatewayTimeout, http.StatusBadRequest} {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(code)
		}))
		c := fastClient(ts.URL, 5)
		res, err := c.Submit(context.Background(), &service.JobRequest{Source: "x"}, true)
		if err != nil {
			t.Fatalf("code %d: %v", code, err)
		}
		if res.Code != code || calls.Load() != 1 {
			t.Errorf("code %d: got %d after %d calls, want 1 call", code, res.Code, calls.Load())
		}
		ts.Close()
	}
}

// TestClientGivesUp: persistent backpressure exhausts MaxAttempts with an
// error naming the last failure.
func TestClientGivesUp(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := fastClient(ts.URL, 3)
	_, err := c.Get(context.Background(), "job-1")
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
}

// TestClientRidesThroughRestart: connection errors (dead listener) are
// retried, so a call issued while the daemon is down succeeds once it is
// back — the property the chaos harness's kill -9 loop leans on.
func TestClientRidesThroughRestart(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.JobStatusJSON{ID: "job-9", Verdict: "verified"})
	}))
	addr := ts.Listener.Addr().String()
	ts.Close() // daemon "killed"

	c := New(Config{BaseURL: "http://" + addr, MaxAttempts: 50,
		BaseBackoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond})
	done := make(chan *Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := c.Get(context.Background(), "job-9")
		if err != nil {
			errc <- err
			return
		}
		done <- res
	}()

	// "Restart" the daemon on the same address after a few failed attempts.
	time.Sleep(50 * time.Millisecond)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	ts2 := &httptest.Server{Listener: l, Config: &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.JobStatusJSON{ID: "job-9", Verdict: "verified"})
	})}}
	ts2.Start()
	defer ts2.Close()

	select {
	case res := <-done:
		if res.Status.ID != "job-9" {
			t.Errorf("status = %+v", res.Status)
		}
		if res.Attempts < 2 {
			t.Errorf("attempts = %d, want >1 (must have ridden through the outage)", res.Attempts)
		}
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("call never completed after restart")
	}
}

// TestClientContextCancellation: a cancelled context aborts the retry loop
// promptly with ctx.Err().
func TestClientContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, MaxAttempts: 10, BaseBackoff: time.Millisecond, MaxBackoff: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Get(ctx, "job-1")
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not interrupt the backoff sleep")
	}
}

// TestClientBackoffSchedule: Retry-After wins when present (capped at
// MaxBackoff); otherwise exponential-with-jitter stays within (0, base<<n].
func TestClientBackoffSchedule(t *testing.T) {
	c := New(Config{BaseURL: "http://x", BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Second})
	if d := c.backoff(0, "3"); d != time.Second {
		t.Errorf("Retry-After 3s with 1s cap: %s", d)
	}
	if d := c.backoff(0, "1"); d != time.Second {
		t.Errorf("Retry-After 1s: %s", d)
	}
	for n, max := range map[int]time.Duration{0: 10 * time.Millisecond, 2: 40 * time.Millisecond, 30: time.Second} {
		for i := 0; i < 20; i++ {
			if d := c.backoff(n, ""); d <= 0 || d > max {
				t.Errorf("backoff(%d) = %s, want (0, %s]", n, d, max)
			}
		}
	}
}

// TestClientTenantHeader: the configured tenant rides on every request.
func TestClientTenantHeader(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-Tenant"))
		json.NewEncoder(w).Encode(service.JobStatusJSON{})
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, Tenant: "acme"})
	if _, err := c.Get(context.Background(), "j"); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "acme" {
		t.Errorf("X-Tenant = %q", got.Load())
	}
}
