package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

// StreamEvent is one Server-Sent Event from GET /jobs/{id}/events.
type StreamEvent struct {
	// ID is the event's topic sequence number (the SSE id field, the
	// Last-Event-ID resume cursor). Gap markers carry no ID.
	ID uint64 `json:"seq,omitempty"`
	// Type is the event type: state, progress, trace, gap, or verdict.
	Type string `json:"type"`
	// Data is the event's JSON payload.
	Data json.RawMessage `json:"data"`
}

// fnError marks a callback failure as terminal: the consumer rejected the
// stream, so reconnecting would be wrong.
type fnError struct{ err error }

func (e *fnError) Error() string { return e.err.Error() }
func (e *fnError) Unwrap() error { return e.err }

// Stream consumes one job's event stream, invoking fn for every event in
// order. It implements the full SSE client discipline the daemon's
// streaming endpoint assumes: heartbeat comments are absorbed, and a
// connection loss (daemon restart, cut idle stream) reconnects with
// Last-Event-ID resume so no event is delivered twice and loss windows
// surface as server-sent gap events rather than silent holes.
//
// Stream returns nil once the terminal verdict event has been delivered and
// the server closed the stream; fn's error if fn fails (no reconnect);
// ctx.Err on cancellation; and a give-up error after MaxAttempts
// consecutive connection failures with no event progress.
func (c *Client) Stream(ctx context.Context, id string, fn func(StreamEvent) error) error {
	var lastID uint64
	sawVerdict := false
	failures := 0
	for {
		progressed, err := c.streamOnce(ctx, id, lastID, func(ev StreamEvent) error {
			if ev.ID > 0 {
				lastID = ev.ID
			}
			if ev.Type == service.EventVerdict {
				sawVerdict = true
			}
			return fn(ev)
		})
		switch {
		case err == nil && sawVerdict:
			return nil // clean terminal close
		case ctx.Err() != nil:
			return ctx.Err()
		}
		if fe, ok := err.(*fnError); ok {
			return fe.err
		}
		if te, ok := err.(*terminalErr); ok {
			return te.err
		}
		// Either a connection failure or a stream that ended without its
		// verdict (e.g. the daemon was killed mid-stream): reconnect and
		// resume after lastID.
		if progressed {
			failures = 0
		} else {
			failures++
			if failures >= c.cfg.MaxAttempts {
				return fmt.Errorf("stream %s: giving up after %d attempts: %w", id, failures, err)
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.backoff(failures, "")):
		}
	}
}

// terminalErr marks a server answer that retrying cannot change (404: the
// job does not exist on this daemon).
type terminalErr struct{ err error }

func (e *terminalErr) Error() string { return e.err.Error() }

// streamOnce runs a single SSE connection until the server closes it or the
// connection drops, reporting whether any event was delivered.
func (c *Client) streamOnce(ctx context.Context, id string, lastID uint64, fn func(StreamEvent) error) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/jobs/"+id+"/events", nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	if c.cfg.Tenant != "" {
		req.Header.Set("X-Tenant", c.cfg.Tenant)
	}
	// Streams outlive any sane request timeout: strip the transport-level
	// deadline and rely on ctx plus the server's heartbeat discipline.
	hc := &http.Client{Transport: c.hc.Transport}
	resp, err := hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return false, &terminalErr{err: fmt.Errorf("stream %s: %s", id, resp.Status)}
	default:
		return false, fmt.Errorf("stream %s: %s", id, resp.Status)
	}

	progressed := false
	var ev StreamEvent
	flush := func() error {
		if ev.Type == "" && ev.Data == nil {
			return nil
		}
		progressed = true
		err := fn(ev)
		ev = StreamEvent{}
		if err != nil {
			return &fnError{err: err}
		}
		return nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return progressed, err
			}
		case strings.HasPrefix(line, ":"):
			// Comment (heartbeat): keepalive only.
		case strings.HasPrefix(line, "id:"):
			n, err := strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64)
			if err == nil {
				ev.ID = n
			}
		case strings.HasPrefix(line, "event:"):
			ev.Type = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			ev.Data = json.RawMessage(strings.TrimSpace(line[5:]))
		}
	}
	if err := sc.Err(); err != nil {
		return progressed, err
	}
	if err := flush(); err != nil { // stream ended on a non-blank line
		return progressed, err
	}
	return progressed, nil
}

// StreamResult aggregates one job's stream for callers that just want the
// outcome: the terminal verdict event plus event counts by type.
type StreamResult struct {
	Verdict service.VerdictEventJSON
	// Events counts delivered events by type (gap markers included).
	Events map[string]int
	// Lost totals the events skipped across all gap markers.
	Lost uint64
}

// StreamToVerdict consumes a job's stream to its terminal event and returns
// the aggregate. Events are optionally forwarded to sink (nil: discarded).
func (c *Client) StreamToVerdict(ctx context.Context, id string, sink func(StreamEvent) error) (*StreamResult, error) {
	res := &StreamResult{Events: make(map[string]int)}
	err := c.Stream(ctx, id, func(ev StreamEvent) error {
		res.Events[ev.Type]++
		switch ev.Type {
		case service.EventVerdict:
			if err := json.Unmarshal(ev.Data, &res.Verdict); err != nil {
				return fmt.Errorf("decoding verdict event: %w", err)
			}
		case service.EventGap:
			var gap service.GapEventJSON
			if err := json.Unmarshal(ev.Data, &gap); err == nil {
				res.Lost += gap.Lost
			}
		}
		if sink != nil {
			return sink(ev)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
