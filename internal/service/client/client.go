// Package client is the Go client for the gliftd HTTP API with the retry
// discipline the daemon's admission control assumes: bounded exponential
// backoff with full jitter, honoring Retry-After on 429/503, and absorbing
// connection errors across daemon restarts. It is the substrate for
// cmd/gliftload and for embedding gliftd access in other tools.
//
// The client deliberately does NOT retry on semantic outcomes: a 409
// (violations) or 504 (incomplete) is a final verdict, not backpressure.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"repro/internal/service"
)

// Config tunes the retry discipline. The zero value gets sensible defaults
// from New.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8430".
	BaseURL string
	// Tenant, when non-empty, is sent as the X-Tenant header on every
	// request — the key the daemon's per-tenant quotas bucket by.
	Tenant string
	// MaxAttempts bounds tries per call (first attempt included).
	// Default 8.
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule. Default 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps a single sleep. Default 5s.
	MaxBackoff time.Duration
	// HTTPClient overrides the transport (tests). Default: a client with
	// a 2-minute request timeout.
	HTTPClient *http.Client
}

// Client talks to one gliftd instance.
type Client struct {
	cfg Config
	hc  *http.Client
}

// New builds a Client, applying defaults to zero Config fields.
func New(cfg Config) *Client {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 2 * time.Minute}
	}
	return &Client{cfg: cfg, hc: hc}
}

// Result is one finished (or rejected) call.
type Result struct {
	// Code is the final HTTP status.
	Code int
	// Status is the decoded job payload (zero for non-JSON errors).
	Status service.JobStatusJSON
	// RawReport preserves the report's exact bytes as served — the unit
	// of the soak harness's byte-identity differential check.
	RawReport json.RawMessage
	// RawRepair preserves the repair payload's exact bytes as served
	// (repair-mode jobs only) — the unit of the repair differential check.
	RawRepair json.RawMessage
	// Attempts is how many tries the call took.
	Attempts int

	body []byte // full response body, for non-job endpoints
}

// retryable reports whether a status is backpressure (retry) rather than an
// outcome (stop). 429 and 503 are the daemon's documented shed/quota/chaos
// signals.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// backoff computes the sleep before attempt n (0-based), preferring the
// server's Retry-After when present, else exponential with full jitter.
func (c *Client) backoff(n int, retryAfter string) time.Duration {
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
			d := time.Duration(secs) * time.Second
			if d > c.cfg.MaxBackoff {
				d = c.cfg.MaxBackoff
			}
			return d
		}
	}
	d := c.cfg.BaseBackoff << uint(n)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	// Full jitter: uniform in (0, d] decorrelates a retrying fleet.
	return time.Duration(rand.Int64N(int64(d))) + 1
}

// call runs one HTTP exchange with the retry loop. Connection errors are
// retried (the daemon may be restarting — the soak harness depends on
// riding through kill -9); retryable statuses honor Retry-After.
func (c *Client) call(ctx context.Context, method, path string, body []byte) (*Result, error) {
	var lastErr error
	for n := 0; n < c.cfg.MaxAttempts; n++ {
		if n > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(c.backoff(n-1, headerOf(lastErr))):
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.cfg.Tenant != "" {
			req.Header.Set("X-Tenant", c.cfg.Tenant)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = &retryErr{err: err} // connection refused/reset: daemon restarting
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = &retryErr{err: err}
			continue
		}
		if retryable(resp.StatusCode) {
			lastErr = &retryErr{
				err:        fmt.Errorf("%s %s: %s", method, path, resp.Status),
				retryAfter: resp.Header.Get("Retry-After"),
			}
			continue
		}
		res := &Result{Code: resp.StatusCode, Attempts: n + 1, body: data}
		if len(data) > 0 && json.Valid(data) {
			// Tolerate non-JSON bodies; report extraction must not lose
			// bytes, so RawReport comes from a raw re-decode, not from
			// re-marshaling Status.
			if err := json.Unmarshal(data, &res.Status); err != nil {
				return nil, fmt.Errorf("%s %s: decoding response: %w", method, path, err)
			}
			var shell struct {
				Report json.RawMessage `json:"report"`
				Repair json.RawMessage `json:"repair"`
			}
			if err := json.Unmarshal(data, &shell); err == nil {
				res.RawReport = shell.Report
				res.RawRepair = shell.Repair
			}
		}
		return res, nil
	}
	return nil, fmt.Errorf("giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// retryErr carries the server's Retry-After hint between attempts.
type retryErr struct {
	err        error
	retryAfter string
}

func (e *retryErr) Error() string { return e.err.Error() }
func (e *retryErr) Unwrap() error { return e.err }

func headerOf(err error) string {
	if re, ok := err.(*retryErr); ok {
		return re.retryAfter
	}
	return ""
}

// Submit posts a job and, with wait, blocks server-side for its verdict.
func (c *Client) Submit(ctx context.Context, req *service.JobRequest, wait bool) (*Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	path := "/jobs"
	if wait {
		path += "?wait=1"
	}
	return c.call(ctx, http.MethodPost, path, body)
}

// Get fetches a job's status by ID.
func (c *Client) Get(ctx context.Context, id string) (*Result, error) {
	return c.call(ctx, http.MethodGet, "/jobs/"+id, nil)
}

// Cancel requests cancellation of a job by ID.
func (c *Client) Cancel(ctx context.Context, id string) (*Result, error) {
	return c.call(ctx, http.MethodDelete, "/jobs/"+id, nil)
}

// MetricsJSON fetches the daemon's JSON metrics snapshot (with the same
// retry discipline as job calls — metrics polls ride through restarts too).
func (c *Client) MetricsJSON(ctx context.Context) (service.MetricsJSON, error) {
	var m service.MetricsJSON
	res, err := c.call(ctx, http.MethodGet, "/metrics.json", nil)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(res.body, &m); err != nil {
		return m, fmt.Errorf("decoding metrics: %w", err)
	}
	return m, nil
}

// Healthy reports whether the daemon answers /healthz, without retries —
// the probe restart loops poll.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
