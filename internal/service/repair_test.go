package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// repairReq builds a repair-mode submission over violSrc: the Figure 9
// program whose one escaping store the loop masks in round 1. Repair mode
// takes its tainted-code range symbolically (re-resolved per round), so the
// policy carries only the ports and the data partition.
func repairReq() *JobRequest {
	return &JobRequest{
		Source: violSrc,
		Mode:   "repair",
		Policy: PolicyRequest{
			Name:           "viol",
			TaintedInPorts: []int{0},
			TaintedData:    []RangeRequest{{Lo: 0x0400, Hi: 0x0800}},
		},
		Repair: &RepairRequest{TaintedCode: []string{"tstart:tend"}},
	}
}

// rawRepair submits with wait and returns the status plus the repair
// payload's exact bytes as served — the byte-identity unit for cache and
// store checks (mirroring persistence_test's rawReport).
func (c *testClient) rawRepair(body any) (int, json.RawMessage, JobStatusJSON) {
	c.t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.srv.Client().Post(c.srv.URL+"/jobs?wait=1", "application/json", bytes.NewReader(b))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	var st JobStatusJSON
	if err := json.Unmarshal(data, &st); err != nil {
		c.t.Fatalf("decoding response: %v", err)
	}
	var shell struct {
		Repair json.RawMessage `json:"repair"`
	}
	if err := json.Unmarshal(data, &shell); err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, shell.Repair, st
}

// TestRepairJobHTTP: a repair job over HTTP returns patched assembly whose
// re-verification verdict is verified, with per-round counts and the
// targeted-vs-always-on overhead comparison — the tentpole acceptance path.
func TestRepairJobHTTP(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 1, QueueDepth: 8})
	code, st := c.do("POST", "/jobs?wait=1", repairReq())
	if code != http.StatusOK {
		t.Fatalf("repair submit: HTTP %d (want 200 verified)", code)
	}
	if st.Mode != modeRepair {
		t.Errorf("mode = %q, want repair", st.Mode)
	}
	if st.Verdict != "verified" || st.Report == nil || !st.Report.Secure {
		t.Fatalf("verdict = %q, report = %+v", st.Verdict, st.Report)
	}
	rj := st.Repair
	if rj == nil {
		t.Fatal("no repair payload on a completed repair job")
	}
	if !strings.Contains(rj.PatchedAsm, "and #0x3ff, r14") || !strings.Contains(rj.PatchedAsm, "bis #0x400, r14") {
		t.Errorf("patched asm lacks the mask pair:\n%s", rj.PatchedAsm)
	}
	if len(rj.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(rj.Rounds))
	}
	if rj.Rounds[0].ViolatingStorePCs != 1 || rj.Rounds[0].NewlyFlagged != 1 {
		t.Errorf("round 0 = %+v, want one flagged violating store", rj.Rounds[0])
	}
	if rj.Rounds[1].MaskedStores != 1 || rj.Rounds[1].Verdict != "verified" {
		t.Errorf("round 1 = %+v, want one masked store, verified", rj.Rounds[1])
	}
	if rj.Targeted.MaskedStores != 1 || rj.Targeted.Watchdog || !rj.AlwaysOn.Watchdog {
		t.Errorf("overheads = targeted %+v / always-on %+v", rj.Targeted, rj.AlwaysOn)
	}
	if rj.ReductionFactor <= 1 {
		t.Errorf("reduction factor = %v, want > 1", rj.ReductionFactor)
	}
	if err := rj.Validate(); err != nil {
		t.Errorf("served payload fails the fail-closed gate: %v", err)
	}

	m := c.metrics()
	if m.RepairJobs != 1 || m.RepairRounds != 2 || m.RepairMaskedStores != 1 {
		t.Errorf("repair metrics = %d jobs / %d rounds / %d masked, want 1/2/1",
			m.RepairJobs, m.RepairRounds, m.RepairMaskedStores)
	}
	if m.EngineRuns != 2 {
		t.Errorf("engine runs = %d, want 2 (one per round)", m.EngineRuns)
	}
}

// TestRepairJobBadRequests: repair-mode user errors are 400s, rejected
// before any queue or engine state is touched.
func TestRepairJobBadRequests(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 1, QueueDepth: 8})
	cases := map[string]*JobRequest{
		"unknown mode": {Source: cleanSrc, Mode: "transmogrify", Policy: PolicyRequest{Name: "p"}},
		"ihex program": {IHex: ":00000001FF\n", Mode: "repair", Policy: PolicyRequest{Name: "p"}},
		"no program":   {Mode: "repair", Policy: PolicyRequest{Name: "p"}},
		"numeric tainted_code": {Source: violSrc, Mode: "repair",
			Policy: violPolicy(t), Repair: &RepairRequest{}},
		"bad partition": func() *JobRequest {
			r := repairReq()
			r.Repair.Partition = "0x100:0x300"
			return r
		}(),
		"bad range": func() *JobRequest {
			r := repairReq()
			r.Repair.TaintedCode = []string{"nosuchsym:tend"}
			return r
		}(),
		"negative rounds": func() *JobRequest {
			r := repairReq()
			r.Repair.Rounds = -1
			return r
		}(),
	}
	for name, req := range cases {
		if code, _ := c.do("POST", "/jobs", req); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, code)
		}
	}
	if m := c.metrics(); m.EngineRuns != 0 || m.RepairJobs != 0 {
		t.Errorf("bad requests reached the engine: runs=%d repair_jobs=%d", m.EngineRuns, m.RepairJobs)
	}
}

// TestRepairCacheHit: an identical repair resubmission is served from the
// result cache byte-identically, with zero additional engine runs.
func TestRepairCacheHit(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 1, QueueDepth: 8})
	code, first, st := c.rawRepair(repairReq())
	if code != http.StatusOK || st.CacheHit {
		t.Fatalf("first run: HTTP %d, cache_hit %v", code, st.CacheHit)
	}
	runs := c.metrics().EngineRuns

	code, second, st2 := c.rawRepair(repairReq())
	if code != http.StatusOK || !st2.CacheHit {
		t.Fatalf("resubmit: HTTP %d, cache_hit %v (want a cache hit)", code, st2.CacheHit)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached repair payload differs from the original:\n%s\nvs\n%s", first, second)
	}
	if m := c.metrics(); m.EngineRuns != runs {
		t.Errorf("engine runs grew %d -> %d on a cache hit", runs, m.EngineRuns)
	}
}

// TestRepairKeyDomains: a repair job and an analysis job over the same
// source never share a key — the repair keyspace is domain-tagged, so one
// cache and one store serve both shapes without ambiguity.
func TestRepairKeyDomains(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 1, QueueDepth: 8})
	_, stRepair := c.do("POST", "/jobs?wait=1", repairReq())
	analyze := repairReq()
	analyze.Mode = ""
	analyze.Repair = nil
	_, stAnalyze := c.do("POST", "/jobs?wait=1", analyze)
	if stRepair.Key == "" || stRepair.Key == stAnalyze.Key {
		t.Fatalf("repair key %q vs analysis key %q, want distinct", stRepair.Key, stAnalyze.Key)
	}
	if stAnalyze.CacheHit {
		t.Error("analysis submission hit the repair job's cache entry")
	}
	if stAnalyze.Repair != nil {
		t.Error("analysis job carries a repair payload")
	}
	if stAnalyze.Mode == modeRepair {
		t.Error("analysis job reported repair mode")
	}
}

// TestRepairStoreRecovery: a completed repair job persisted to the store is
// recovered byte-identically by a fresh server over the same directory,
// with zero engine re-runs — the service-level half of the crash-recovery
// contract (the integration suite exercises it with kill -9 on real
// binaries).
func TestRepairStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 8, StoreDir: dir}
	c1, _ := newTestClient(t, cfg)
	code, first, st := c1.rawRepair(repairReq())
	if code != http.StatusOK || st.CacheHit {
		t.Fatalf("first run: HTTP %d, cache_hit %v", code, st.CacheHit)
	}
	c1.close()

	c2, _ := newTestClient(t, cfg)
	code, second, st2 := c2.rawRepair(repairReq())
	if code != http.StatusOK {
		t.Fatalf("recovered run: HTTP %d", code)
	}
	if !st2.CacheHit {
		t.Fatal("recovered submission was not served from the store")
	}
	if !bytes.Equal(first, second) {
		t.Errorf("recovered repair payload differs:\n%s\nvs\n%s", first, second)
	}
	m := c2.metrics()
	if m.EngineRuns != 0 {
		t.Errorf("engine runs = %d after store recovery, want 0", m.EngineRuns)
	}
	if m.StoreHits != 1 {
		t.Errorf("store hits = %d, want 1", m.StoreHits)
	}
}

// TestRepairStoreFailClosed: a tampered persisted repair record is
// quarantined and re-run, never served. Flipping one verdict string inside
// the payload keeps it well-formed JSON but breaks the final-round/report
// verdict re-derivation the read path enforces.
func TestRepairStoreFailClosed(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 8, StoreDir: dir}
	c1, s1 := newTestClient(t, cfg)
	code, _, st := c1.rawRepair(repairReq())
	if code != http.StatusOK {
		t.Fatalf("first run: HTTP %d", code)
	}
	payload, ok := s1.Store().Get(st.Key)
	if !ok {
		t.Fatal("completed repair job not in the store")
	}
	tampered := bytes.Replace(payload, []byte(`"verdict":"verified"`), []byte(`"verdict":"violations"`), 1)
	if bytes.Equal(tampered, payload) {
		t.Fatalf("tamper pattern not found in persisted payload:\n%s", payload)
	}
	if err := s1.Store().Put(st.Key, tampered); err != nil {
		t.Fatal(err)
	}
	c1.close()

	c2, _ := newTestClient(t, cfg)
	code, _, st2 := c2.rawRepair(repairReq())
	if code != http.StatusOK {
		t.Fatalf("re-run after tamper: HTTP %d", code)
	}
	if st2.CacheHit {
		t.Fatal("tampered record was served instead of quarantined")
	}
	m := c2.metrics()
	if m.EngineRuns == 0 {
		t.Error("no engine re-run after quarantining the tampered record")
	}
	if m.StoreQuarantined == 0 {
		t.Error("tampered record was not quarantined")
	}
}

// TestRepairRoundEvents: the job's SSE stream carries one `round` event per
// repair round, matching the served payload's round records, all before the
// terminal verdict.
func TestRepairRoundEvents(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 1, QueueDepth: 8})
	code, st := c.do("POST", "/jobs?wait=1", repairReq())
	if code != http.StatusOK {
		t.Fatalf("repair submit: HTTP %d", code)
	}
	if st.Repair == nil {
		t.Fatal("no repair payload")
	}
	resp, br := openStream(t, c, st.ID, 0)
	defer resp.Body.Close()
	evs := drainStream(t, br, 0)
	var rounds []RoundEventJSON
	sawVerdict := false
	for _, ev := range evs {
		switch ev.typ {
		case EventRound:
			if sawVerdict {
				t.Error("round event after the terminal verdict")
			}
			var re RoundEventJSON
			if err := json.Unmarshal(ev.data, &re); err != nil {
				t.Fatalf("bad round event %s: %v", ev.data, err)
			}
			rounds = append(rounds, re)
		case EventVerdict:
			sawVerdict = true
		}
	}
	if !sawVerdict {
		t.Fatal("stream ended without a verdict event")
	}
	if len(rounds) != len(st.Repair.Rounds) {
		t.Fatalf("stream carried %d round events for %d rounds", len(rounds), len(st.Repair.Rounds))
	}
	for i, re := range rounds {
		want := st.Repair.Rounds[i]
		if re.Round != want.Round || re.MaskedStores != want.MaskedStores ||
			re.Violations != want.Violations || re.ViolatingStorePCs != want.ViolatingStorePCs ||
			re.NewlyFlagged != want.NewlyFlagged || re.Verdict != want.Verdict {
			t.Errorf("round event %d = %+v, payload round = %+v", i, re, want)
		}
		if re.ID != st.ID {
			t.Errorf("round event %d carries job %q, want %q", i, re.ID, st.ID)
		}
	}
}

// TestRepairDrainIncomplete: Server.Drain past its deadline mid-round
// cancels the repair loop; the stream still ends with a terminal incomplete
// verdict event, and nothing unproven is served later.
func TestRepairDrainIncomplete(t *testing.T) {
	c, s := newTestClient(t, Config{Workers: 1, QueueDepth: 8})
	req := &JobRequest{
		Source:  slowSrc,
		Mode:    "repair",
		Policy:  PolicyRequest{Name: "slow"},
		Options: slowOptions(),
	}
	code, st := c.do("POST", "/jobs", req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}

	resp, br := openStream(t, c, st.ID, 0)
	defer resp.Body.Close()

	// Wait for the running transition so the drain provably lands mid-round.
	sawRunning := false
	var prev uint64
	for !sawRunning {
		ev, ok := nextEvent(t, br)
		if !ok {
			t.Fatal("stream ended before the repair job started running")
		}
		prev = ev.id
		var state StateEventJSON
		if ev.typ == EventState && json.Unmarshal(ev.data, &state) == nil && state.State == stateRunning {
			sawRunning = true
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("Drain with a cancelled context returned nil; wanted the straggler-cancelling path")
	}

	evs := drainStream(t, br, prev)
	if len(evs) == 0 {
		t.Fatal("no events after drain")
	}
	last := evs[len(evs)-1]
	if last.typ != EventVerdict {
		t.Fatalf("drained stream ended with %s, want verdict", last.typ)
	}
	var v VerdictEventJSON
	if err := json.Unmarshal(last.data, &v); err != nil || v.Verdict != "incomplete" {
		t.Fatalf("drained repair job's terminal event = %s", last.data)
	}
	final := c.awaitDone(st.ID, 5*time.Second)
	if final.Verdict != "incomplete" {
		t.Errorf("final verdict = %q, want incomplete", final.Verdict)
	}
	if final.Repair != nil && final.Repair.Report.Verdict != "incomplete" {
		t.Errorf("repair payload verdict = %q, want incomplete", final.Repair.Report.Verdict)
	}
}

// TestRepairCoalesce: concurrent identical repair submissions share one
// execution — every waiter gets the same patched assembly, and the engine
// runs exactly one job's worth of rounds.
func TestRepairCoalesce(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 1, QueueDepth: 8})
	const n = 4
	type res struct {
		code int
		st   JobStatusJSON
	}
	results := make(chan res, n)
	for i := 0; i < n; i++ {
		go func() {
			code, st := c.do("POST", "/jobs?wait=1", repairReq())
			results <- res{code, st}
		}()
	}
	var asms []string
	for i := 0; i < n; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Errorf("waiter %d: HTTP %d", i, r.code)
			continue
		}
		if r.st.Repair == nil {
			t.Errorf("waiter %d: no repair payload", i)
			continue
		}
		asms = append(asms, r.st.Repair.PatchedAsm)
	}
	for i := 1; i < len(asms); i++ {
		if asms[i] != asms[0] {
			t.Errorf("waiter %d saw different patched asm", i)
		}
	}
	if m := c.metrics(); m.EngineRuns != 2 {
		t.Errorf("engine runs = %d for %d identical submissions, want 2 (one execution)", m.EngineRuns, n)
	}
}
