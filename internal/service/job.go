package service

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/mcu"
	"repro/internal/repair"
	"repro/internal/sim"
	"repro/internal/target"
)

// Job states.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
)

// Job modes: plain analysis (the zero value) or the analyze→mask→re-verify
// repair loop shared with cmd/secure430 through internal/repair.
const (
	modeAnalyze = ""
	modeRepair  = "repair"
)

// job is one tracked analysis execution. A single job may serve several
// submitters: concurrent identical submissions coalesce onto the job that
// is already queued or running.
type job struct {
	id  string
	key string
	// tgt is the processor target the job analyzes on (nil for repair
	// jobs, which run on the server's default design).
	tgt      *target.Target
	img      *asm.Image
	pol      *glift.Policy
	opt      glift.Options
	deadline time.Duration
	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{}
	// backendSet records whether the submission named a backend explicitly;
	// if not, the server's Config.EngineBackend applies at run time.
	backendSet bool
	// tenant is the submitting X-Tenant value, carried for structured logs.
	tenant string
	// enqueued is when the job entered the worker queue (the start of its
	// queue-wait span).
	enqueued time.Time
	// streamTrace > 0 publishes every streamTrace-th engine exploration
	// event to the job's event stream (opt-in sampling; 0 disables). Like
	// Workers it never affects results, so it is not part of the job key.
	streamTrace int
	// mode selects the execution path (modeAnalyze or modeRepair); repair
	// jobs carry their spec in rspec instead of img/pol.
	mode  string
	rspec *repair.Spec

	mu        sync.Mutex
	state     string
	progress  glift.Progress
	report    *glift.Report
	rres      *repair.ResultJSON // repair jobs: the full repair payload
	cacheHit  bool
	coalesced int64 // extra submissions served by this execution
	cancelled bool
	created   time.Time
	finished  time.Time
}

func (j *job) setState(st string) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

// setProgress is installed as the engine's Options.Progress hook; it runs
// on the worker goroutine.
func (j *job) setProgress(p glift.Progress) {
	j.mu.Lock()
	j.progress = p
	j.mu.Unlock()
}

// setRepair attaches the completed repair payload; it must happen before
// finish so waiters woken by the done channel see it.
func (j *job) setRepair(rj *repair.ResultJSON) {
	j.mu.Lock()
	j.rres = rj
	j.mu.Unlock()
}

// finish publishes the final report and wakes every waiter.
func (j *job) finish(rep *glift.Report) {
	j.mu.Lock()
	j.state = stateDone
	j.report = rep
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// RangeRequest is one address range in a job request ([lo, hi)).
type RangeRequest struct {
	Lo uint16 `json:"lo"`
	Hi uint16 `json:"hi"`
}

// PolicyRequest is the wire form of an information flow policy; field names
// match the canonical policy encoding. Ports are 0-based indices (P1 = 0).
type PolicyRequest struct {
	Name                 string         `json:"name"`
	TaintedInPorts       []int          `json:"tainted_in_ports"`
	TaintedOutPorts      []int          `json:"tainted_out_ports"`
	TaintedCode          []RangeRequest `json:"tainted_code"`
	TaintedData          []RangeRequest `json:"tainted_data"`
	InitiallyTaintedData []RangeRequest `json:"initially_tainted_data"`
	TaintCodeWords       bool           `json:"taint_code_words"`
}

// OptionsRequest selects engine options for one job; zero values take the
// engine defaults. DeadlineMS bounds the job's wall-clock time (expiry
// yields the Incomplete verdict through the engine's cancellation path).
type OptionsRequest struct {
	MaxCycles     uint64 `json:"max_cycles,omitempty"`
	MaxPathCycles uint64 `json:"max_path_cycles,omitempty"`
	WidenAfter    int    `json:"widen_after,omitempty"`
	SoftMemBytes  int64  `json:"soft_mem_bytes,omitempty"`
	HardMemBytes  int64  `json:"hard_mem_bytes,omitempty"`
	DeadlineMS    int64  `json:"deadline_ms,omitempty"`
	// Workers selects the engine's exploration worker count for this job
	// (0: the server's Config.EngineWorkers, then the engine default).
	// Reports are identical for every worker count, so this field does not
	// participate in the job's cache key.
	Workers int `json:"workers,omitempty"`
	// Backend selects the gate-evaluation backend for this job by its
	// registered name — "compiled", "interp", or "bitslice" (empty: the
	// server's Config.EngineBackend, then the compiled default). Reports
	// are byte-identical across backends, so like Workers this field does
	// not participate in the job's cache key.
	Backend string `json:"backend,omitempty"`
	// SpecLanes packs up to N queued exploration paths per speculation
	// worker onto bitsliced lanes (0 or 1: scalar speculation, max 64;
	// 0 falls back to the server's Config.EngineSpecLanes). Like Workers
	// it only changes wall time, never the report, so it does not
	// participate in the job's cache key.
	SpecLanes int `json:"spec_lanes,omitempty"`
	// StreamTrace opts this job into engine trace streaming: every N-th
	// exploration event (1: all of them) is published as a `trace` event
	// on GET /jobs/{id}/events. Tracing observes the run without changing
	// the report, so like Workers it does not participate in the job's
	// cache key — a traced submission may coalesce onto an untraced
	// execution, in which case no trace events flow (0: off).
	StreamTrace int `json:"stream_trace,omitempty"`
}

// RepairRequest tunes a repair-mode job, mirroring the secure430 flags.
type RepairRequest struct {
	// Rounds bounds the analyze/mask/re-verify iteration
	// (0: repair.DefaultMaxRounds, the secure430 -rounds default).
	Rounds int `json:"rounds,omitempty"`
	// Partition is the mask partition as "base:size" (size a power of two,
	// base size-aligned; default "0x0400:0x0400" — the -partition default).
	Partition string `json:"partition,omitempty"`
	// TaintedCode lists "lo:hi" tainted-code ranges whose endpoints are
	// symbols of the program (or addresses), re-resolved against each
	// round's mask-shifted image — the -tainted-code flag. Repair mode
	// requires symbolic ranges here instead of numeric policy.tainted_code
	// ranges, which cannot track the code movement mask insertion causes.
	TaintedCode []string `json:"tainted_code,omitempty"`
	// TaskCycles is the unprotected task period anchoring the
	// targeted-vs-always-on overhead comparison
	// (0: repair.DefaultTaskCycles).
	TaskCycles uint64 `json:"task_cycles,omitempty"`
}

// JobRequest is one analysis submission: a program (exactly one of Source
// assembly text or an Intel-hex image), a policy and options. Mode "repair"
// runs the analyze→mask→re-verify loop instead of a single analysis.
type JobRequest struct {
	// Target selects the processor target by registered name (empty:
	// msp430, preserving the pre-target schema). Unlike the wall-time
	// knobs (workers/backend/spec_lanes), the target changes the analyzed
	// system, so it IS part of the content-addressed job key: identical
	// programs submitted against different targets never coalesce and
	// never share cache entries.
	Target string `json:"target,omitempty"`
	// Source is assembly text for the selected target's assembler.
	Source string `json:"source,omitempty"`
	// IHex is an Intel-hex program image (the asm430 -ihex output shape).
	IHex string `json:"ihex,omitempty"`
	// Entry is the reset target for IHex images (default: lowest address).
	// Source images resolve their entry point through the assembler.
	Entry   uint16         `json:"entry,omitempty"`
	Policy  PolicyRequest  `json:"policy"`
	Options OptionsRequest `json:"options"`
	// Mode selects the execution path: "" or "analyze" for one analysis,
	// "repair" for the iterative repair loop (requires Source).
	Mode string `json:"mode,omitempty"`
	// Repair tunes repair mode (ignored otherwise).
	Repair *RepairRequest `json:"repair,omitempty"`
}

func toRanges(rs []RangeRequest) []glift.AddrRange {
	out := make([]glift.AddrRange, 0, len(rs))
	for _, r := range rs {
		out = append(out, glift.AddrRange{Lo: r.Lo, Hi: r.Hi})
	}
	return out
}

// compile turns a request into engine inputs, reporting user errors (bad
// target, bad source, bad policy) that the HTTP layer maps to 400.
func compile(req *JobRequest) (*target.Target, *asm.Image, *glift.Policy, *glift.Options, time.Duration, error) {
	tgt, err := target.Parse(req.Target)
	if err != nil {
		return nil, nil, nil, nil, 0, err
	}
	var img *asm.Image
	switch {
	case req.Source != "" && req.IHex != "":
		return nil, nil, nil, nil, 0, fmt.Errorf("give either source or ihex, not both")
	case req.Source != "":
		if img, err = tgt.Assemble(req.Source); err != nil {
			return nil, nil, nil, nil, 0, err
		}
	case req.IHex != "":
		if img, err = imageFromIHex(req.IHex, req.Entry); err != nil {
			return nil, nil, nil, nil, 0, err
		}
	default:
		return nil, nil, nil, nil, 0, fmt.Errorf("missing program: give source or ihex")
	}
	if err := validateImage(img, tgt.Design()); err != nil {
		return nil, nil, nil, nil, 0, err
	}

	pol, err := compilePolicy(&req.Policy)
	if err != nil {
		return nil, nil, nil, nil, 0, err
	}
	opt, deadline, err := compileOptions(&req.Options)
	if err != nil {
		return nil, nil, nil, nil, 0, err
	}
	return tgt, img, pol, opt, deadline, nil
}

// validateImage rejects images that do not fit the target's ROM: each
// target has its own memory geometry, and an out-of-range word would
// otherwise fault deep inside system construction instead of as a 400.
func validateImage(img *asm.Image, d *mcu.Design) error {
	for _, seg := range img.Segments {
		end := uint32(seg.Addr) + 2*uint32(len(seg.Words))
		if seg.Addr < d.Map.ROMStart || end > d.Map.ROMEnd {
			return fmt.Errorf("image segment [%#04x,%#06x) outside target ROM [%#04x,%#06x)",
				seg.Addr, end, d.Map.ROMStart, d.Map.ROMEnd)
		}
	}
	if img.Entry < d.Map.ROMStart || uint32(img.Entry) >= d.Map.ROMEnd {
		return fmt.Errorf("entry point %#04x outside target ROM [%#04x,%#06x)",
			img.Entry, d.Map.ROMStart, d.Map.ROMEnd)
	}
	return nil
}

// compilePolicy turns the wire policy into a validated engine policy.
func compilePolicy(pr *PolicyRequest) (*glift.Policy, error) {
	name := pr.Name
	if name == "" {
		name = "service"
	}
	pol := &glift.Policy{
		Name:                 name,
		TaintedInPorts:       pr.TaintedInPorts,
		TaintedOutPorts:      pr.TaintedOutPorts,
		TaintedCode:          toRanges(pr.TaintedCode),
		TaintedData:          toRanges(pr.TaintedData),
		InitiallyTaintedData: toRanges(pr.InitiallyTaintedData),
		TaintCodeWords:       pr.TaintCodeWords,
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	return pol, nil
}

// compileOptions turns the wire options into validated engine options and
// the job deadline.
func compileOptions(or *OptionsRequest) (*glift.Options, time.Duration, error) {
	backend, err := sim.ParseBackend(or.Backend)
	if err != nil {
		return nil, 0, err
	}
	opt := &glift.Options{
		MaxCycles:     or.MaxCycles,
		MaxPathCycles: or.MaxPathCycles,
		WidenAfter:    or.WidenAfter,
		SoftMemBytes:  or.SoftMemBytes,
		HardMemBytes:  or.HardMemBytes,
		Workers:       or.Workers,
		Backend:       backend,
		SpecLanes:     or.SpecLanes,
	}
	if or.DeadlineMS < 0 {
		return nil, 0, fmt.Errorf("negative deadline_ms")
	}
	if or.Workers < 0 {
		return nil, 0, fmt.Errorf("negative workers")
	}
	if or.SpecLanes < 0 {
		return nil, 0, fmt.Errorf("negative spec_lanes")
	}
	if or.StreamTrace < 0 {
		return nil, 0, fmt.Errorf("negative stream_trace")
	}
	return opt, time.Duration(or.DeadlineMS) * time.Millisecond, nil
}

// imageFromIHex reconstructs an assembled image from Intel-hex text: the
// words are grouped into contiguous segments and the entry point defaults
// to the lowest loaded address.
func imageFromIHex(text string, entry uint16) (*asm.Image, error) {
	words := map[uint16]uint16{}
	err := asm.ReadIHex(strings.NewReader(text), func(addr, w uint16) { words[addr] = w })
	if err != nil {
		return nil, err
	}
	if len(words) == 0 {
		return nil, fmt.Errorf("empty ihex image")
	}
	addrs := make([]int, 0, len(words))
	for a := range words {
		addrs = append(addrs, int(a))
	}
	sort.Ints(addrs)
	img := &asm.Image{Symbols: map[string]int64{}, AddrToStmt: map[uint16]int{}, StmtToAddr: map[int]uint16{}}
	var seg *asm.Segment
	for _, ai := range addrs {
		a := uint16(ai)
		if seg == nil || int(seg.Addr)+2*len(seg.Words) != int(a) {
			img.Segments = append(img.Segments, asm.Segment{Addr: a})
			seg = &img.Segments[len(img.Segments)-1]
		}
		seg.Words = append(seg.Words, words[a])
	}
	img.Entry = uint16(addrs[0])
	if entry != 0 {
		img.Entry = entry
	}
	return img, nil
}
