package service

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/glift"
)

// get fetches a raw body with an optional Accept header.
func (c *testClient) get(path, accept string) (*http.Response, string) {
	c.t.Helper()
	req, err := http.NewRequest("GET", c.srv.URL+path, nil)
	if err != nil {
		c.t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp, string(body)
}

// TestMetricsPrometheusExposition: after a real workload, /metrics defaults
// to the Prometheus text format and carries both service-derived and
// engine-derived series with plausible values; the JSON shape stays
// reachable via Accept and /metrics.json.
func TestMetricsPrometheusExposition(t *testing.T) {
	c, _ := newTestClient(t, Config{Workers: 2, QueueDepth: 8})

	if code, st := c.do("POST", "/jobs?wait=1", &JobRequest{
		Source: violSrc, Policy: violPolicy(t),
	}); code != http.StatusConflict || st.Verdict != "violations" {
		t.Fatalf("violating job: code=%d verdict=%q", code, st.Verdict)
	}
	if code, st := c.do("POST", "/jobs?wait=1", &JobRequest{
		Source: cleanSrc, Policy: PolicyRequest{Name: "clean"},
	}); code != http.StatusOK || st.Verdict != "verified" {
		t.Fatalf("clean job: code=%d verdict=%q", code, st.Verdict)
	}

	resp, body := c.get("/metrics", "")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default /metrics Content-Type = %q, want Prometheus text", ct)
	}
	for _, series := range []string{
		// service-derived
		"# TYPE gliftd_http_request_duration_seconds histogram",
		`gliftd_http_request_duration_seconds_bucket{route="POST /jobs",code="200",le="+Inf"}`,
		"gliftd_jobs_submitted_total 2",
		`gliftd_jobs_completed_total{verdict="verified"} 1`,
		`gliftd_jobs_completed_total{verdict="violations"} 1`,
		"gliftd_workers 2",
		"gliftd_queue_depth 0",
		// engine-derived
		"# TYPE glift_engine_run_seconds histogram",
		`glift_engine_run_seconds_count{verdict="violations"} 1`,
		"glift_engine_cycles_total",
		"glift_engine_forks_total",
		"glift_engine_paths_total",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
	// Both completed runs released their table states.
	if !strings.Contains(body, "glift_engine_table_states 0") {
		t.Errorf("table-states gauge not drained after completion")
	}
	// An unknown path must not mint a new route label.
	c.get("/no/such/path", "")
	_, body = c.get("/metrics", "")
	if !strings.Contains(body, `route="GET other"`) || strings.Contains(body, "/no/such/path") {
		t.Errorf("unbounded route label: %q", body)
	}

	// The parallel-exploration scheduler series exist even when the engine
	// ran sequentially (zero-valued), so dashboards never see gaps.
	for _, series := range []string{
		"glift_engine_spec_workers_busy", "glift_engine_deque_depth",
		"glift_engine_steals_total",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing scheduler series %q", series)
		}
	}

	resp, body = c.get("/metrics", "application/json")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Accept: application/json got Content-Type %q", ct)
	}
	if !strings.Contains(body, `"jobs_submitted"`) {
		t.Errorf("negotiated JSON body missing legacy fields: %s", body)
	}
	resp, body2 := c.get("/metrics.json", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body2, `"jobs_submitted"`) {
		t.Errorf("/metrics.json: code=%d body=%s", resp.StatusCode, body2)
	}
}

// TestEngineProgressNonMonotonic: the delta feed must survive cumulative
// readings that go backwards. Registry counters panic on negative Add, and
// a parallel run's snapshots are not guaranteed monotone in every field
// (the Done emission, for one, is taken after the speculation pool is torn
// down, so its scheduler counters reset to zero). The guard clamps such
// intervals instead of crashing the job's worker goroutine.
func TestEngineProgressNonMonotonic(t *testing.T) {
	m := newPromMetrics(1)
	ep := &engineProgress{m: m}

	grow := glift.Progress{
		Stats: glift.Stats{Cycles: 1000, Paths: 10, Forks: 5, WallNanos: 100},
		Sched: glift.SchedStats{Workers: 3, Busy: 2, DequeDepth: 4, Steals: 7, SpecUsed: 5, SpecWasted: 1,
			SpecLanes: 8, LaneBatches: 4, LanesPacked: 24, LanesWasted: 8},
	}
	ep.observe(grow)
	if v := m.engLaneOccup.Value(); v != 24.0/(4*8) {
		t.Errorf("lane-occupancy gauge = %v, want %v", v, 24.0/(4*8))
	}

	// A regressed snapshot: every cumulative field below its predecessor.
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("non-monotonic progress snapshot panicked the exporter: %v", r)
		}
	}()
	ep.observe(glift.Progress{
		Stats: glift.Stats{Cycles: 900, Paths: 8, Forks: 3, WallNanos: 90},
		Sched: glift.SchedStats{},
	})
	// And the Done emission with zeroed scheduler state must drain the
	// gauges back to zero rather than pushing them negative forever.
	ep.observe(glift.Progress{
		Stats: glift.Stats{Cycles: 1100, Paths: 11, Forks: 6, WallNanos: 120},
		Done:  true,
	})
	if v := m.engSpecBusy.Value(); v != 0 {
		t.Errorf("spec-busy gauge = %v after Done, want 0", v)
	}
	if v := m.engDequeDepth.Value(); v != 0 {
		t.Errorf("deque-depth gauge = %v after Done, want 0", v)
	}
}
