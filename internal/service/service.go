// Package service implements gliftd, a long-running concurrent analysis
// service over the glift engine. It accepts analysis jobs (a program as
// assembly source or an Intel-hex image, an information flow policy, and
// engine options) over HTTP, runs them on a bounded worker pool — each job
// under its own context with an optional deadline, inheriting the engine's
// fail-closed cancellation and memory-budget contract — and returns the
// full analysis report in the shared glift.ReportJSON wire shape.
//
// Results are stored in a content-addressed cache keyed by a canonical
// SHA-256 over (target name, netlist fingerprint, assembled image,
// canonical policy encoding, normalized engine options, job deadline), so a
// byte-identical resubmission is served without re-running the engine. An in-flight
// deduplication layer coalesces concurrent identical submissions onto a
// single execution. Only completed explorations (Verified or Violations
// verdicts) are cached: an Incomplete or InternalError outcome reflects the
// run, not the inputs, and must not be replayed to later submitters.
package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/mcu"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/target"
)

// Config tunes a Server.
type Config struct {
	// Workers is the number of concurrent analysis workers (default 2).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker; a full
	// queue rejects new work with 503 rather than buffering without bound
	// (default 64).
	QueueDepth int
	// CacheEntries bounds the result cache (default 1024, FIFO eviction).
	CacheEntries int
	// DefaultDeadline applies to jobs that do not specify deadline_ms
	// (0: no deadline).
	DefaultDeadline time.Duration
	// EngineWorkers is the per-engine exploration worker count applied to
	// jobs that do not request one (0: the engine default, GOMAXPROCS).
	// Service workers multiply with engine workers, so hosts running
	// several concurrent jobs usually want this pinned low.
	EngineWorkers int
	// EngineBackend is the gate-evaluation backend applied to jobs that do
	// not request one (zero value: the compiled default). Like
	// EngineWorkers it never affects results — backends are byte-identical
	// by the differential contract — so it participates in neither job
	// keys nor caching.
	EngineBackend sim.BackendKind
	// EngineSpecLanes is the bitsliced speculation lane count per engine
	// worker applied to jobs that do not request one (0 or 1: scalar
	// speculation, max 64). Like EngineWorkers and EngineBackend it only
	// changes wall time, never results, so it participates in neither job
	// keys nor caching.
	EngineSpecLanes int

	// StoreDir enables the crash-safe persistent result store: completed
	// Verified/Violations reports are fsynced there before the submitter is
	// answered, and startup recovery re-indexes every surviving record
	// ("" disables persistence; the in-memory cache still applies).
	StoreDir string
	// StoreMaxBytes caps the on-disk store; the oldest records are evicted
	// first (0: unbounded).
	StoreMaxBytes int64
	// StoreWriteDelay is a chaos-test hook holding every store write
	// half-written for the given duration before its fsync and rename —
	// widening the kill -9 window the atomic-write protocol must absorb.
	// Production use leaves it 0.
	StoreWriteDelay time.Duration

	// TenantRate enables per-tenant token-bucket admission, in jobs per
	// second of sustained refill keyed by the X-Tenant header (0 disables).
	// An exhausted bucket rejects 429 with Retry-After.
	TenantRate float64
	// TenantBurst is the token-bucket capacity (default: ceil(TenantRate),
	// at least 1).
	TenantBurst int

	// ChaosRejectPercent injects spurious 503 + Retry-After responses on
	// that percentage of submissions — a fault-injection hook for proving
	// client backoff and end-to-end verdict integrity under overload.
	// Production use leaves it 0.
	ChaosRejectPercent int

	// DefaultTarget is the processor target applied to submissions that
	// omit the "target" field (empty: the registry default, msp430). The
	// effective target always participates in the job key, so flipping
	// this between restarts never lets jobs from different targets share
	// cache entries.
	DefaultTarget string

	// StreamRingEvents bounds the per-job event ring behind
	// GET /jobs/{id}/events; a reader that falls further behind sees a gap
	// marker (default obs.DefaultRingEvents).
	StreamRingEvents int
	// StreamHeartbeat is the SSE comment-heartbeat cadence on quiet
	// streams (default 15s).
	StreamHeartbeat time.Duration
	// Logger receives structured per-job logs — submissions and
	// completions carry job_id/tenant/verdict attributes so server logs
	// correlate with stream events by job ID (nil: logs are discarded).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.StreamHeartbeat <= 0 {
		c.StreamHeartbeat = 15 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// counters aggregates service metrics; all fields are guarded by Server.mu.
type counters struct {
	submitted     int64
	completed     int64
	byVerdict     map[string]int64
	cacheHits     int64
	cacheMisses   int64
	storeHits     int64
	coalesced     int64
	engineRuns    int64
	rejected      int64
	shed          int64
	quotaRejected int64
	chaosInjected int64
	cancels       int64
	cyclesTotal   uint64
	busyWorkers   int
	// Repair-mode activity: jobs executed, rounds run across them, and
	// stores masked in their final patched builds.
	repairJobs         int64
	repairRounds       int64
	repairMaskedStores int64
	// queueDepth tracks enqueue/dequeue transitions (never sampled from the
	// channel, which would race against concurrent senders and receivers).
	queueDepth int
	// avgRunNanos is the completed-job duration EWMA pricing queue
	// admission for deadline-aware shedding.
	avgRunNanos float64
}

// Server is the analysis service: a job registry, a bounded worker pool and
// a content-addressed result cache behind an HTTP API.
type Server struct {
	cfg      Config
	design   *mcu.Design // the default target's design (or NewOn's override)
	designFP [sha256.Size]byte
	mux      *http.ServeMux
	// tmu guards tdesigns, the lazily-built designs of non-default targets
	// (fingerprinting a netlist is not free, so each is computed once).
	tmu      sync.Mutex
	tdesigns map[string]targetDesign
	queue    chan *job
	wg       sync.WaitGroup
	store    *store.Store  // nil: persistence disabled
	quotas   *tenantQuotas // nil: per-tenant admission disabled
	broker   *obs.Broker   // per-job event streams (GET /jobs/{id}/events)
	log      *slog.Logger

	mu       sync.Mutex
	jobs     map[string]*job
	inflight map[string]*job // content key -> running/queued job
	cache    *resultCache
	nextID   uint64
	closed   bool
	draining bool
	m        counters
	prom     *promMetrics
}

// New builds a Server analyzing on the shared processor design and starts
// its worker pool. Callers must Close it to stop the workers.
func New(cfg Config) (*Server, error) {
	return NewOn(glift.SharedDesign(), cfg)
}

// NewOn is New on an explicit design (the hook for tests and for serving
// analyses of modified netlists). Opening the persistent store — including
// its scan-validate-index recovery pass — happens here, so a server that
// starts is guaranteed to be serving only integrity-checked results.
func NewOn(d *mcu.Design, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if _, err := target.Parse(cfg.DefaultTarget); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		design:   d,
		designFP: d.NL.Fingerprint(),
		tdesigns: make(map[string]targetDesign),
		queue:    make(chan *job, cfg.QueueDepth),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		cache:    newResultCache(cfg.CacheEntries),
		prom:     newPromMetrics(cfg.Workers),
		broker:   obs.NewBroker(cfg.StreamRingEvents),
		log:      cfg.Logger,
	}
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, store.Options{
			MaxBytes:   cfg.StoreMaxBytes,
			WriteDelay: cfg.StoreWriteDelay,
		})
		if err != nil {
			return nil, fmt.Errorf("service: opening result store: %w", err)
		}
		s.store = st
	}
	if cfg.TenantRate > 0 {
		s.quotas = newTenantQuotas(cfg.TenantRate, cfg.TenantBurst)
	}
	s.m.byVerdict = make(map[string]int64)
	s.mux = http.NewServeMux()
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Store exposes the persistent result store (nil when persistence is
// disabled) — the hook for tests and operational tooling.
func (s *Server) Store() *store.Store { return s.store }

// Handler returns the HTTP API, instrumented with the request-latency
// histogram.
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// Metrics returns the Prometheus metrics registry (the hook for hosts that
// serve or push the registry themselves).
func (s *Server) Metrics() *obs.Registry { return s.prom.reg }

// Close stops accepting jobs, cancels everything in flight and waits for
// the worker pool to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, j := range s.jobs {
		j.cancel()
	}
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
	// Workers have drained every admitted job, so each topic already ended
	// with its verdict event; closing the rest releases any subscriber
	// still parked on a stream.
	s.broker.CloseAll()
}

// Drain is the graceful half of shutdown: it stops admitting new jobs
// (submissions are rejected 503 + Retry-After) and waits for every queued
// and running job to complete through the normal path — which persists
// completed results to the store before their waiters are released — until
// ctx expires, at which point the stragglers are cancelled and Drain
// returns ctx's error. Callers still Close afterwards; Drain followed by
// Close is the SIGTERM sequence, Close alone is the abrupt one.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		idle := s.m.queueDepth == 0 && s.m.busyWorkers == 0
		s.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			s.mu.Lock()
			for _, j := range s.jobs {
				j.cancel()
			}
			s.mu.Unlock()
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// targetDesign is one lazily-resolved non-default target: its immutable
// shared design and the netlist fingerprint that keys its jobs.
type targetDesign struct {
	d  *mcu.Design
	fp [sha256.Size]byte
}

// designFor resolves the design and netlist fingerprint a job's target
// analyzes on. The default target maps to the server's own design — which
// NewOn may have overridden with a modified netlist — so the pre-target
// semantics of every existing caller are preserved; other targets resolve
// through the registry, memoized per server.
func (s *Server) designFor(tgt *target.Target) (*mcu.Design, [sha256.Size]byte) {
	if tgt == nil || tgt.Name == target.Default().Name {
		return s.design, s.designFP
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if e, ok := s.tdesigns[tgt.Name]; ok {
		return e.d, e.fp
	}
	d := tgt.Design()
	e := targetDesign{d: d, fp: d.NL.Fingerprint()}
	s.tdesigns[tgt.Name] = e
	return e.d, e.fp
}

// jobKey computes the canonical content address of a job: the SHA-256 of
// the target name and its netlist fingerprint, the assembled image (entry
// point plus every segment), the policy's canonical JSON, the normalized
// engine options and the job deadline. Two submissions with equal keys are
// guaranteed to produce the same completed report, which is what makes
// cache reuse and in-flight coalescing sound — and why the target, which
// selects the analyzed system itself, participates in the key while the
// wall-time knobs (Workers/Backend/SpecLanes) do not.
func (s *Server) jobKey(tgt *target.Target, img *asm.Image, pol *glift.Policy, opt *glift.Options, deadline time.Duration) string {
	_, fp := s.designFor(tgt)
	h := sha256.New()
	h.Write([]byte(tgt.Name))
	h.Write([]byte{0})
	h.Write(fp[:])
	put := func(v any) {
		if err := binary.Write(h, binary.LittleEndian, v); err != nil {
			panic(fmt.Sprintf("service: hashing job key: %v", err))
		}
	}
	put(img.Entry)
	put(uint32(len(img.Segments)))
	for _, seg := range img.Segments {
		put(seg.Addr)
		put(uint32(len(seg.Words)))
		put(seg.Words)
	}
	h.Write(pol.CanonicalJSON())
	// Normalized() zeroes Options.Workers and Options.Backend: the parallel
	// engine guarantees byte-identical reports for every worker count, and
	// the evaluation backends are byte-identical by the same differential
	// contract (the suite in internal/glift enforces both), so hashing
	// either would only split the cache and defeat coalescing between
	// equivalent submissions.
	n := opt.Normalized()
	put(n.MaxCycles)
	put(n.MaxPathCycles)
	put(int64(n.WidenAfter))
	put(n.SoftMemBytes)
	put(n.HardMemBytes)
	put(int64(deadline))
	return hex.EncodeToString(h.Sum(nil))
}

// worker drains the queue until Close. The queued→busy transition is one
// critical section so an observer (Drain, /metrics) never sees a claimed
// job as neither queued nor running.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		s.m.queueDepth--
		s.m.busyWorkers++
		s.mu.Unlock()
		s.prom.queueDepth.Add(-1)
		s.prom.workersBusy.Add(1)
		if j.mode == modeRepair {
			s.runRepairJob(j)
		} else {
			s.runJob(j)
		}
	}
}

// runJob executes one job on the engine and publishes its result — to the
// job record (waiters), the job's event stream (terminal verdict event with
// per-stage latencies), the per-stage latency histograms, and the
// structured log. The engine run carries pprof labels (job id, policy), so
// CPU and heap profiles taken through gliftd's -pprof endpoint attribute
// samples to the job that burned them.
func (s *Server) runJob(j *job) {
	started := time.Now()
	queueWait := started.Sub(j.enqueued)
	s.prom.stages.Observe(StageQueueWait, queueWait)
	j.setState(stateRunning)
	s.publish(j.id, EventState, StateEventJSON{ID: j.id, State: stateRunning})
	ctx := j.ctx
	if j.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.deadline)
		defer cancel()
	}
	opt := j.opt
	if opt.Workers == 0 {
		opt.Workers = s.cfg.EngineWorkers
	}
	if !j.backendSet {
		opt.Backend = s.cfg.EngineBackend
	}
	if opt.SpecLanes == 0 {
		opt.SpecLanes = s.cfg.EngineSpecLanes
	}
	opt.Progress = (&engineProgress{m: s.prom, next: func(p glift.Progress) {
		j.setProgress(p)
		s.publish(j.id, EventProgress, progressJSON(p))
	}}).observe
	if j.streamTrace > 0 {
		opt.Tracer = s.traceSampler(j, j.streamTrace)
	}

	var rep *glift.Report
	engStart := time.Now()
	design, _ := s.designFor(j.tgt)
	eng, err := glift.NewEngineOn(design, j.img, j.pol, &opt)
	if err != nil {
		// Policy validation happens at submission time, so this is an
		// internal construction failure; report it fail-closed.
		rep = &glift.Report{Policy: j.pol.Name, Err: &glift.RunError{Reason: err.Error()}}
	} else {
		pprof.Do(ctx, pprof.Labels("glift_job", j.id, "glift_policy", j.pol.Name),
			func(ctx context.Context) { rep = eng.RunContext(ctx) })
	}
	engineRun := time.Since(engStart)
	s.prom.stages.Observe(StageEngineRun, engineRun)
	verdict := rep.Verdict()

	// Persist before publishing: once any waiter sees the completed result,
	// the result has been fsynced, so an acknowledged verdict survives
	// kill -9. Only completed explorations persist — like the in-memory
	// cache, Incomplete/InternalError reflect the run, not the inputs.
	var persistDur time.Duration
	if verdict == glift.Verified || verdict == glift.Violations {
		pStart := time.Now()
		s.persist(j.key, rep)
		persistDur = time.Since(pStart)
		s.prom.stages.Observe(StagePersist, persistDur)
	}

	s.mu.Lock()
	s.m.busyWorkers--
	s.m.engineRuns++
	s.m.completed++
	s.m.byVerdict[verdict.String()]++
	s.m.cyclesTotal += rep.Stats.Cycles
	s.observeRunLocked(time.Since(started))
	delete(s.inflight, j.key)
	if verdict == glift.Verified || verdict == glift.Violations {
		s.cache.put(j.key, &cachedResult{rep: rep})
	}
	s.mu.Unlock()
	s.prom.workersBusy.Add(-1)
	s.prom.jobsCompleted.With(verdict.String()).Inc()
	s.prom.runDur.With(verdict.String()).Observe(float64(rep.Stats.WallNanos) / 1e9)
	s.finishJob(j, rep, false, StageTimesJSON{
		QueueWaitNS: queueWait.Nanoseconds(),
		EngineRunNS: engineRun.Nanoseconds(),
		PersistNS:   persistDur.Nanoseconds(),
		TotalNS:     time.Since(j.created).Nanoseconds(),
	})
	s.log.Info("job completed",
		"job_id", j.id, "tenant", j.tenant, "verdict", verdict.String(),
		"cycles", rep.Stats.Cycles, "queue_wait_ms", queueWait.Milliseconds(),
		"engine_run_ms", engineRun.Milliseconds())
}

// persist writes one completed report durably. A store failure (cap
// exceeded, disk error) is absorbed: the result stays served from memory
// and is simply not durable, which the store's own PutErrors counter
// surfaces — durability degrades, correctness never does.
func (s *Server) persist(key string, rep *glift.Report) {
	if s.store == nil {
		return
	}
	payload, err := json.Marshal(rep.JSON())
	if err != nil {
		return
	}
	s.store.Put(key, payload) //nolint:errcheck // see above; counted in store stats
}

// lookupStore probes the persistent store for a completed report. A hit is
// trusted only after full reconstruction: the payload must parse, rebuild
// into a report, and re-serialize byte-identically — the same bytes a cold
// engine run would produce. Any failure quarantines the record and reads
// as a miss, extending the fail-closed contract to storage.
func (s *Server) lookupStore(key string) *glift.Report {
	if s.store == nil {
		return nil
	}
	payload, ok := s.store.Get(key)
	if !ok {
		return nil
	}
	var rj glift.ReportJSON
	if err := json.Unmarshal(payload, &rj); err != nil {
		s.store.Quarantine(key)
		return nil
	}
	rep, err := rj.Report()
	if err != nil {
		s.store.Quarantine(key)
		return nil
	}
	canon, err := json.Marshal(rep.JSON())
	if err != nil || !bytes.Equal(canon, payload) {
		s.store.Quarantine(key)
		return nil
	}
	return rep
}
