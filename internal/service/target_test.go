package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/target"
)

// crossTargetSource assembles under BOTH targets: a single raw word at each
// target's default origin. On msp430, 0x3fff is "jmp $" (instant park); on
// rv32, opcode 0x7f is invalid, which also parks. Identical request bytes
// modulo the target field — the sharpest possible coalescing probe.
const crossTargetSource = "start: .word 0x3fff\n"

func newTargetTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func submitTarget(t *testing.T, s *Server, tgt string) JobStatusJSON {
	t.Helper()
	req := JobRequest{Target: tgt, Source: crossTargetSource}
	req.Policy.Name = "x"
	body, _ := json.Marshal(&req)
	r := httptest.NewRequest("POST", "/jobs?wait=1", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("submit (target %q): %d %s", tgt, w.Code, w.Body.String())
	}
	var st JobStatusJSON
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestTargetsDoNotCoalesce: identical submissions against different targets
// must be distinct jobs — no coalescing, no cache sharing — because the
// target changes the analyzed system. The same submission resubmitted on
// the SAME target must still hit the cache.
func TestTargetsDoNotCoalesce(t *testing.T) {
	s := newTargetTestServer(t, Config{Workers: 2})
	st1 := submitTarget(t, s, "")       // default: msp430
	st2 := submitTarget(t, s, "rv32")   // same bytes, different target
	st3 := submitTarget(t, s, "rv32")   // identical re-submission: cache hit
	st4 := submitTarget(t, s, "msp430") // explicit default spells the same key
	for _, st := range []JobStatusJSON{st1, st2, st3, st4} {
		if st.Verdict != glift.Verified.String() {
			t.Fatalf("job %s: verdict %q, want verified", st.ID, st.Verdict)
		}
	}
	var m MetricsJSON
	r := httptest.NewRequest("GET", "/metrics.json", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.EngineRuns != 2 {
		t.Errorf("engine runs = %d, want 2 (one per target, never coalesced)", m.EngineRuns)
	}
	if m.JobsCoalesced != 0 {
		t.Errorf("coalesced = %d, want 0", m.JobsCoalesced)
	}
	if m.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2 (rv32 resubmit + explicit msp430)", m.CacheHits)
	}
}

// TestJobKeySeparatesTargets pins the key contract directly: same image
// bytes, policy, options — different target, different key.
func TestJobKeySeparatesTargets(t *testing.T) {
	s := newTargetTestServer(t, Config{})
	rv, err := target.Parse("rv32")
	if err != nil {
		t.Fatal(err)
	}
	// The same raw words at each target's origin (addresses differ, so use
	// each target's own assembly of the cross-target source).
	img430, err := target.Default().Assemble(crossTargetSource)
	if err != nil {
		t.Fatal(err)
	}
	imgRV, err := rv.Assemble(crossTargetSource)
	if err != nil {
		t.Fatal(err)
	}
	pol := &glift.Policy{Name: "x"}
	opt := &glift.Options{}
	if s.jobKey(target.Default(), img430, pol, opt, 0) == s.jobKey(rv, imgRV, pol, opt, 0) {
		t.Fatal("different targets produced the same job key")
	}
}

// TestUnknownTargetRejected: a bad target name is a 400 listing the valid
// set, for both analyze and repair modes.
func TestUnknownTargetRejected(t *testing.T) {
	s := newTargetTestServer(t, Config{})
	for _, mode := range []string{"", "repair"} {
		body, _ := json.Marshal(&JobRequest{Target: "z80", Source: crossTargetSource, Mode: mode})
		r := httptest.NewRequest("POST", "/jobs", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("mode %q: status %d, want 400", mode, w.Code)
		}
		for _, name := range target.Names() {
			if !strings.Contains(w.Body.String(), name) {
				t.Errorf("mode %q: error %q does not list %q", mode, w.Body.String(), name)
			}
		}
	}
}

// TestRepairRejectsAnalysisOnlyTarget: repair mode on a target without
// transform support is an honest 400, not a silent msp430 run.
func TestRepairRejectsAnalysisOnlyTarget(t *testing.T) {
	s := newTargetTestServer(t, Config{})
	body, _ := json.Marshal(&JobRequest{Target: "rv32", Source: crossTargetSource, Mode: "repair"})
	r := httptest.NewRequest("POST", "/jobs", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "msp430") {
		t.Fatalf("rejection %q does not explain the msp430-only constraint", w.Body.String())
	}
}

// TestImageOutsideTargetROMRejected: an image placed for one target's
// geometry is rejected as a 400 on another, instead of faulting in system
// construction.
func TestImageOutsideTargetROMRejected(t *testing.T) {
	s := newTargetTestServer(t, Config{})
	// .org to msp430 ROM, then submit as rv32 via ihex is awkward; simplest
	// honest probe: rv32 source is valid, but msp430's origin 0xf000 words
	// land outside rv32 ROM when submitted as ihex. Build the ihex from the
	// msp430 assembly of the cross-target program.
	img, err := target.Default().Assemble(crossTargetSource)
	if err != nil {
		t.Fatal(err)
	}
	var hx bytes.Buffer
	if err := asm.WriteIHex(&hx, img); err != nil {
		t.Fatal(err)
	}
	ihex := hx.String()
	body, _ := json.Marshal(&JobRequest{Target: "rv32", IHex: ihex})
	r := httptest.NewRequest("POST", "/jobs", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "ROM") {
		t.Fatalf("rejection %q does not mention the ROM bounds", w.Body.String())
	}
}
