package target

import (
	"strings"
	"testing"
)

func TestParseDefaultsToMSP430(t *testing.T) {
	tg, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if tg.Name != "msp430" {
		t.Fatalf("default target = %q, want msp430", tg.Name)
	}
	if tg != Default() {
		t.Fatalf("Parse(\"\") did not return Default()")
	}
}

func TestParseKnownTargets(t *testing.T) {
	for _, name := range Names() {
		tg, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if tg.Name != name {
			t.Fatalf("Parse(%q) = %q", name, tg.Name)
		}
		if tg.Design == nil || tg.NewDesign == nil || tg.Assemble == nil {
			t.Fatalf("target %q is missing hooks", name)
		}
	}
}

func TestParseUnknownListsValidSet(t *testing.T) {
	_, err := Parse("z80")
	if err == nil {
		t.Fatal("Parse(\"z80\") succeeded")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid target %q", err, name)
		}
	}
}

// TestDesignMemoized checks Design() returns the shared instance while
// NewDesign() builds fresh ones.
func TestDesignMemoized(t *testing.T) {
	for _, tg := range Targets() {
		if tg.Design() != tg.Design() {
			t.Fatalf("%s: Design() is not memoized", tg.Name)
		}
		if tg.NewDesign() == tg.Design() {
			t.Fatalf("%s: NewDesign() returned the shared design", tg.Name)
		}
	}
}

// TestDesignConventions checks every registered design carries the
// cross-target conventions the engine depends on.
func TestDesignConventions(t *testing.T) {
	for _, tg := range Targets() {
		d := tg.Design()
		if d.Map.RAMStart >= d.Map.RAMEnd || uint32(d.Map.ROMStart) >= d.Map.ROMEnd {
			t.Fatalf("%s: degenerate memory map %+v", tg.Name, d.Map)
		}
		if len(d.Trap) == 0 {
			t.Fatalf("%s: no trap fill pattern", tg.Name)
		}
		if d.PCStep == 0 || d.JumpWord == nil {
			t.Fatalf("%s: missing instruction-stream conventions", tg.Name)
		}
		if !d.JumpWord(d.Trap[0]) {
			t.Fatalf("%s: trap word %#04x is not a jump word (parked PCs would never merge)", tg.Name, d.Trap[0])
		}
		if len(d.PC) == 0 || d.PCNext == nil || d.BranchTaken == 0 {
			t.Fatalf("%s: missing engine fork nets", tg.Name)
		}
	}
}

// TestAssembleSmoke assembles one trivial program per target.
func TestAssembleSmoke(t *testing.T) {
	srcs := map[string]string{
		"msp430": "start:  jmp start\n",
		"rv32":   "start:  j start\n",
	}
	for _, tg := range Targets() {
		src, ok := srcs[tg.Name]
		if !ok {
			t.Fatalf("no smoke source for target %q — extend this test", tg.Name)
		}
		img, err := tg.Assemble(src)
		if err != nil {
			t.Fatalf("%s: %v", tg.Name, err)
		}
		if img.Entry != tg.Design().Map.ROMStart {
			t.Fatalf("%s: entry %#04x, want ROM start %#04x", tg.Name, img.Entry, tg.Design().Map.ROMStart)
		}
	}
}
