// Package target is the registry of analyzable processor targets. A Target
// bundles everything the toolchain needs to point the GLIFT engine at one
// MCU: gate-level design construction (with shared-design memoization, since
// synthesizing a netlist is expensive and the design is immutable), an
// assembler front end for its ISA, and capability flags for the parts of
// the toolchain that are still ISA-specific (binary repair).
//
// The registry mirrors sim's backend registry: it is the single source of
// target names, every -target CLI flag and the gliftd job schema derive
// their valid values from it, and the first entry (msp430) is the default
// so existing callers and serialized jobs keep their meaning. Unlike
// Workers/Backend/SpecLanes — wall-time knobs excluded from content-
// addressed job keys — the target changes the analyzed system itself, so
// it IS part of the key (see internal/service).
//
// Per-cycle mechanics need no target dispatch: design conventions (memory
// geometry, trap encoding, jump-word detection, register naming) travel on
// mcu.Design itself, so the engine, simulators and checkers stay
// target-agnostic. A new target registers here and implements those
// conventions in its Build().
package target

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/mcu"
	"repro/internal/rv32"
)

// Target is one registered processor target.
type Target struct {
	// Name is the registry key ("msp430", "rv32").
	Name string
	// Desc is a one-line description for CLI help.
	Desc string
	// Design returns the memoized shared design — safe for concurrent use
	// because designs are immutable after Build.
	Design func() *mcu.Design
	// NewDesign builds a fresh, unshared design (for callers that mutate
	// or instrument the netlist, e.g. fault injection).
	NewDesign func() *mcu.Design
	// Assemble assembles target assembly source into an image.
	Assemble func(src string) (*asm.Image, error)
	// SupportsRepair reports whether the binary repair pipeline
	// (internal/transform, internal/repair) understands this ISA.
	SupportsRepair bool
}

// registry is the single source of target names. Order is display order;
// the first entry is the default.
var registry = []*Target{
	{
		Name:           "msp430",
		Desc:           "16-bit MSP430 core, full bench suite, binary repair",
		Design:         mcu.Shared,
		NewDesign:      mcu.Build,
		Assemble:       asm.AssembleSource,
		SupportsRepair: true,
	},
	{
		Name:           "rv32",
		Desc:           "RV32I-subset core, smoke benchmarks, analysis only",
		Design:         rv32.Shared,
		NewDesign:      rv32.Build,
		Assemble:       rv32.AssembleSource,
		SupportsRepair: false,
	},
}

// Default is the default target (msp430), preserving the meaning of every
// pre-registry caller, CLI invocation and serialized job.
func Default() *Target { return registry[0] }

// Targets lists every registered target in registry order.
func Targets() []*Target {
	out := make([]*Target, len(registry))
	copy(out, registry)
	return out
}

// Names lists the registered target names in registry order — the valid
// values for every -target flag and the gliftd job "target" field.
func Names() []string {
	names := make([]string, len(registry))
	for i, t := range registry {
		names[i] = t.Name
	}
	return names
}

// Parse resolves a target name: empty selects the default (msp430);
// unknown names error with the full list of valid ones.
func Parse(s string) (*Target, error) {
	if s == "" {
		return Default(), nil
	}
	for _, t := range registry {
		if t.Name == s {
			return t, nil
		}
	}
	return nil, fmt.Errorf("target: unknown target %q (want one of: %s)", s, strings.Join(Names(), ", "))
}

// FlagHelp is the shared -target flag usage string.
func FlagHelp() string {
	return fmt.Sprintf("processor target (%s)", strings.Join(Names(), ", "))
}
