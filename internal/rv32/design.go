// Package rv32 constructs a deliberately minimal RV32I-subset gate-level
// core as a second analysis target. It produces the same *mcu.Design shape
// as the msp430 build — memory map, MMIO list, trap pattern, register
// names, PC step and jump-word predicate all carried on the design — so the
// simulation harness (mcu.System / mcu.BatchSystem) and the GLIFT engine
// run on it unchanged. The core exists to prove the Target abstraction is
// real, not to be a complete RISC-V: no shifts, no byte accesses, no
// interrupts, halfword loads/stores only.
//
// Conventions (see DESIGN.md "Target abstraction"):
//   - 16-bit address space: ROM 0x4000..0x8000, RAM 0x0800..0x1000,
//     reset vector at 0x7ffe, watchdog control at 0x0080, four GPIO
//     input/output port pairs at 0x0010+4i / 0x0012+4i.
//   - RV32E-style register file: x0 hardwired zero, x1..x15 are 32-bit
//     flip-flops; register fields are interpreted mod 16 (bit 4 of the
//     5-bit field is ignored — the assembler never emits x16..x31).
//   - Two-cycle instructions: StFetch reads the low half at PC into IR,
//     StExec reads the high half at PC+2 and executes, including the
//     memory access (the harness's multi-pass EvalCycle resolves the
//     load-use path combinationally within the cycle).
//   - Instruction subset: LUI AUIPC JAL JALR, BEQ BNE BLT BGE BLTU BGEU,
//     LH LHU SH, ADDI SLTI SLTIU XORI ORI ANDI, ADD SUB SLT SLTU XOR OR
//     AND. Anything else parks the PC (the trap/containment behaviour).
package rv32

import (
	"sync"

	"repro/internal/mcu"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// FSM state encodings (2-bit state register). StReset and StFetch must keep
// the shared cross-target encodings (mcu.StReset, mcu.StFetch): the engine
// accounts instructions and applies jump-word detection at StFetch.
const (
	StReset = mcu.StReset // power-on: fetch the reset vector
	StFetch = mcu.StFetch // read the instruction's low half into IR
	StExec  = 2           // read the high half, execute, write back
)

// Memory-map geometry.
const (
	ROMStart = 0x4000
	ROMEnd   = 0x8000
	RAMStart = 0x0800
	RAMEnd   = 0x1000
	ResetVec = 0x7ffe

	// AddrWDTCTL is the watchdog control register; writes must carry the
	// password in the high byte.
	AddrWDTCTL  = 0x0080
	WdtPassword = 0xa5
	WdtHold     = 0x80 // ctl bit 7: counting disabled (the reset value)
)

// PortInAddr returns the MMIO address of input port i (0-based).
func PortInAddr(i int) uint16 { return uint16(0x0010 + 4*i) }

// PortOutAddr returns the MMIO address of output port i (0-based).
func PortOutAddr(i int) uint16 { return uint16(0x0012 + 4*i) }

// straight-line major opcodes (low 7 bits of the instruction's low half).
const (
	opLUI    = 0x37
	opAUIPC  = 0x17
	opOpImm  = 0x13
	opOp     = 0x33
	opLoad   = 0x03
	opStore  = 0x23
	opBranch = 0x63
	opJAL    = 0x6f
	opJALR   = 0x67
)

// Build constructs the rv32 netlist.
func Build() *mcu.Design {
	nl := netlist.New()
	b := synth.NewBuilder(nl)
	d := &mcu.Design{NL: nl}

	// ---- Primary inputs ----
	d.Rst = nl.AddInput("rst")
	d.PmemRdata = b.InputWord("pmem_rdata", 16)
	d.DmemRdata = b.InputWord("dmem_rdata", 16)
	for i := 0; i < mcu.NumPorts; i++ {
		d.PortIn[i] = b.InputWord(portName("p", i, "in"), 16)
	}

	por := b.Named("por")
	d.POR = por
	high, low := b.High(), b.Low()
	zero16 := b.Const(16, 0)
	zero32 := b.Const(32, 0)

	// The interrupt-entry probe exists on every target (the engine forces it
	// during forks); this core never takes interrupts, so it is constant 0.
	irqTaken := b.Named("irq_taken")
	d.IrqTaken = irqTaken
	b.DriveBit(irqTaken, low)

	// ---- State registers ----
	cb := b.Scope("cpu")
	stateQ, stateD := cb.RegisterLoop("state", 2, por, high, StReset)
	pcQ, pcD := cb.RegisterLoop("pc", 16, por, high, 0)
	irQ, irD := cb.RegisterLoop("ir", 16, por, high, 0)
	d.State, d.PC, d.IR = stateQ, pcQ, irQ
	d.PCNext = pcD

	// One scope per register: flat names would collide ("x1" bit 10 and
	// "x11" bit 0 both flatten to "x110").
	rb := b.Scope("regs")
	var regQ, regD [16]synth.Word
	for r := 1; r < 16; r++ {
		regQ[r], regD[r] = rb.Scope(regName(r)).RegisterLoop("q", 32, por, high, 0)
		d.Regs[r] = regQ[r]
	}

	// ---- State decode ----
	stDec := b.Scope("st").Decode(stateQ)
	stFetch, stExec := stDec[StFetch], stDec[StExec]

	// ---- Instruction assembly and decode ----
	// IR holds the low half (fetched at PC in StFetch); in StExec program
	// memory is addressed at PC+2, so PmemRdata carries the high half.
	db := b.Scope("dec")
	insn := synth.Cat(irQ, d.PmemRdata) // 32 bits

	opcode := synth.Slice(insn, 0, 7)
	rdF := synth.Slice(insn, 7, 11) // register fields mod 16 (RV32E-style)
	f3 := synth.Slice(insn, 12, 15)
	rs1F := synth.Slice(insn, 15, 19)
	rs2F := synth.Slice(insn, 20, 24)
	f7 := synth.Slice(insn, 25, 32)

	isLUI := db.EqConst(opcode, opLUI)
	isAUIPC := db.EqConst(opcode, opAUIPC)
	isOpImm := db.EqConst(opcode, opOpImm)
	isOp := db.EqConst(opcode, opOp)
	isLoad := db.EqConst(opcode, opLoad)
	isStore := db.EqConst(opcode, opStore)
	isBranch := db.EqConst(opcode, opBranch)
	isJAL := db.EqConst(opcode, opJAL)
	isJALR := db.EqConst(opcode, opJALR)

	f3Dec := db.Decode(f3)

	// Validity: the supported subset only. Invalid instructions park the PC
	// (the containment behaviour the trap fill relies on).
	aluF3Ok := db.OrN(f3Dec[0], f3Dec[2], f3Dec[3], f3Dec[4], f3Dec[6], f3Dec[7])
	f7Zero := db.EqConst(f7, 0)
	f7Sub := db.EqConst(f7, 0x20)
	opOk := db.AndN(isOp, aluF3Ok, db.Or(f7Zero, db.And(f7Sub, f3Dec[0])))
	opImmOk := db.And(isOpImm, aluF3Ok)
	loadOk := db.And(isLoad, db.Or(f3Dec[1], f3Dec[5])) // LH / LHU
	storeOk := db.And(isStore, f3Dec[1])                // SH
	brF3Ok := db.OrN(f3Dec[0], f3Dec[1], f3Dec[4], f3Dec[5], f3Dec[6], f3Dec[7])
	branchOk := db.And(isBranch, brF3Ok)
	jalrOk := db.And(isJALR, f3Dec[0])
	valid := db.OrN(isLUI, isAUIPC, opImmOk, opOk, loadOk, storeOk, branchOk, isJAL, jalrOk)

	// ---- Immediates ----
	immI := synth.SignExtend(synth.Slice(insn, 20, 32), 32)
	immS := synth.SignExtend(synth.Cat(synth.Slice(insn, 7, 12), synth.Slice(insn, 25, 32)), 32)
	immB := synth.SignExtend(synth.Cat(
		synth.Word{low}, synth.Slice(insn, 8, 12), synth.Slice(insn, 25, 31),
		synth.Word{insn[7]}, synth.Word{insn[31]}), 32)
	immU := synth.Cat(b.Const(12, 0), synth.Slice(insn, 12, 32))
	immJ := synth.SignExtend(synth.Cat(
		synth.Word{low}, synth.Slice(insn, 21, 31), synth.Word{insn[20]},
		synth.Slice(insn, 12, 20), synth.Word{insn[31]}), 32)

	// ---- Register file read ----
	regOpts := make([]synth.Word, 16)
	regOpts[0] = zero32 // x0 reads as zero
	for r := 1; r < 16; r++ {
		regOpts[r] = regQ[r]
	}
	rs1Val := rb.MuxTree(rs1F, regOpts)
	rs2Val := rb.MuxTree(rs2F, regOpts)

	// ---- ALU ----
	ab := b.Scope("alu")
	useReg2 := ab.Or(isOp, isBranch)
	cmpB := ab.MuxW(useReg2, immI, rs2Val)
	sum, _, _ := ab.Add(rs1Val, cmpB, low)
	diff, noBorrow, _ := ab.Add(rs1Val, ab.NotW(cmpB), high)
	ltu := ab.Not(noBorrow)
	ovf := ab.And(ab.Xor(rs1Val[31], cmpB[31]), ab.Xor(rs1Val[31], diff[31]))
	ltS := ab.Xor(diff[31], ovf)
	eq := ab.EqW(rs1Val, cmpB)

	subSel := ab.And(isOp, insn[30]) // f7 bit 5: SUB (validity already checked)
	addRes := ab.MuxW(subSel, sum, diff)
	sltRes := ab.ZeroExtend(synth.Word{ltS}, 32)
	sltuRes := ab.ZeroExtend(synth.Word{ltu}, 32)
	aluRes := ab.MuxTree(f3, []synth.Word{
		addRes, zero32, sltRes, sltuRes,
		ab.XorW(rs1Val, cmpB), zero32, ab.OrW(rs1Val, cmpB), ab.AndW(rs1Val, cmpB),
	})

	takenRaw := ab.MuxTree(f3, []synth.Word{
		{eq}, {ab.Not(eq)}, {low}, {low},
		{ltS}, {ab.Not(ltS)}, {ltu}, {ab.Not(ltu)},
	})[0]
	branchTaken := ab.BufNamed("branch_taken", ab.AndN(stExec, isBranch, valid, takenRaw))
	d.BranchTaken = branchTaken

	// ---- Data-memory port ----
	mb := b.Scope("mem")
	notRst := mb.Not(d.Rst)
	eaImm := mb.MuxW(isStore, immI, immS)
	eaFull, _, _ := mb.Add(synth.Slice(rs1Val, 0, 16), synth.Slice(eaImm, 0, 16), low)
	dmemAddr := eaFull
	dmemRe := mb.AndN(notRst, stExec, isLoad, valid)
	dmemWe := mb.AndN(notRst, stExec, isStore, valid)
	dmemWdata := synth.Slice(rs2Val, 0, 16)

	// f3 bit 2 distinguishes LHU (zero-extend) from LH (sign-extend).
	loadVal := mb.MuxW(f3[2], synth.SignExtend(d.DmemRdata, 32), mb.ZeroExtend(d.DmemRdata, 32))

	// ---- PC next ----
	pb := b.Scope("pcnext")
	pcPlus2 := pb.AddConst(pcQ, 2)
	pcPlus4 := pb.AddConst(pcQ, 4)
	brT, _, _ := pb.Add(pcQ, synth.Slice(immB, 0, 16), low)
	jalT, _, _ := pb.Add(pcQ, synth.Slice(immJ, 0, 16), low)
	jalrT := synth.Cat(synth.Word{low}, synth.Slice(eaFull, 1, 16)) // bit 0 cleared

	execPC := pcPlus4
	execPC = pb.MuxW(branchTaken, execPC, brT)
	execPC = pb.MuxW(isJAL, execPC, jalT)
	execPC = pb.MuxW(jalrOk, execPC, jalrT)
	execPC = pb.MuxW(valid, pcQ, execPC) // invalid: park

	pcNext := pb.MuxTree(stateQ, []synth.Word{
		d.PmemRdata, // StReset: the fetched reset vector
		pcQ,         // StFetch: hold
		execPC,      // StExec
		pcQ,
	})
	pb.Drive(pcD, pcNext)

	// ---- Writeback ----
	wb := b.Scope("wb")
	pcU := wb.ZeroExtend(pcQ, 32)
	auipcRes, _, _ := wb.Add(pcU, immU, low)
	linkVal := wb.ZeroExtend(pcPlus4, 32)

	wbVal := aluRes
	wbVal = wb.MuxW(isLoad, wbVal, loadVal)
	wbVal = wb.MuxW(wb.Or(isJAL, isJALR), wbVal, linkVal)
	wbVal = wb.MuxW(isAUIPC, wbVal, auipcRes)
	wbVal = wb.MuxW(isLUI, wbVal, immU)

	writesRd := wb.OrN(isLUI, isAUIPC, isOpImm, isOp, isLoad, isJAL, isJALR)
	regWEn := wb.AndN(stExec, valid, writesRd)
	rdDec := rb.Decode(rdF)
	for r := 1; r < 16; r++ {
		en := rb.And(regWEn, rdDec[r])
		rb.Drive(regD[r], rb.MuxW(en, regQ[r], wbVal))
	}

	// ---- IR latch ----
	lb := b.Scope("latch")
	lb.Drive(irD, lb.MuxW(stFetch, irQ, d.PmemRdata))

	// ---- State next ----
	nb := b.Scope("next")
	st := func(v int) synth.Word { return b.Const(2, uint64(v)) }
	nb.Drive(stateD, nb.MuxTree(stateQ, []synth.Word{
		st(StFetch), st(StExec), st(StFetch), st(StReset),
	}))

	// ---- Watchdog timer ----
	// The same shape as the msp430 watchdog: an 8-bit password-protected
	// control register resetting to hold, a free-running interval counter,
	// and a power-on reset on expiry or password violation — the
	// untainted-reset recovery mechanism every target must provide.
	wd := b.Scope("wdt")
	wdtCtlQ, wdtCtlD := wd.RegisterLoop("ctl", 8, por, high, WdtHold)
	wdtCntQ, wdtCntD := wd.RegisterLoop("cnt", 16, por, high, 0)
	d.WdtCtl, d.WdtCnt = wdtCtlQ, wdtCntQ

	wdtSel := wd.And(dmemWe, wd.EqConst(dmemAddr, AddrWDTCTL))
	pwOk := wd.EqConst(synth.Slice(dmemWdata, 8, 16), WdtPassword)
	wdtWe := wd.BufNamed("wdt_we", wd.And(wdtSel, pwOk))
	d.WdtWe = wdtWe
	pwViolation := wd.And(wdtSel, wd.Not(pwOk))

	hold := wdtCtlQ[7]
	interval := wd.MuxTree(synth.Slice(wdtCtlQ, 0, 2), []synth.Word{
		b.Const(16, 32767), b.Const(16, 8191), b.Const(16, 511), b.Const(16, 63),
	})
	expired := wd.BufNamed("wdt_expired", wd.And(wd.Not(hold), wd.EqW(wdtCntQ, interval)))
	d.WdtExpired = expired

	cntPlus1 := wd.Inc(wdtCntQ)
	cntRun := wd.MuxW(hold, cntPlus1, wdtCntQ)
	cntNext := wd.MuxW(wd.OrN(wdtWe, expired), cntRun, zero16)
	wd.Drive(wdtCntD, cntNext)
	wd.Drive(wdtCtlD, wd.MuxW(wdtWe, wdtCtlQ, synth.Slice(dmemWdata, 0, 8)))

	b.DriveBit(por, b.OrN(d.Rst, expired, pwViolation))

	// ---- GPIO output ports ----
	gb := b.Scope("gpio")
	for i := 0; i < mcu.NumPorts; i++ {
		we := gb.And(dmemWe, gb.EqConst(dmemAddr, uint64(PortOutAddr(i))))
		q, dd := gb.RegisterLoop(portName("p", i, "out"), 16, por, high, 0)
		gb.Drive(dd, gb.MuxW(we, q, dmemWdata))
		d.PortOut[i] = q
	}

	// ---- Primary outputs ----
	pmemAddr := b.MuxTree(stateQ, []synth.Word{
		b.Const(16, ResetVec), // StReset
		pcQ,                   // StFetch: low half
		pcPlus2,               // StExec: high half
		pcQ,
	})
	d.PmemAddr = pmemAddr
	d.DmemAddr = dmemAddr
	d.DmemWdata = dmemWdata
	d.DmemRe = dmemRe
	d.DmemWe = dmemWe
	d.DmemBW = low // halfword accesses only

	b.OutputWord("pmem_addr", pmemAddr)
	b.OutputWord("dmem_addr", dmemAddr)
	b.OutputWord("dmem_wdata", dmemWdata)
	nl.AddOutput("dmem_re", dmemRe)
	nl.AddOutput("dmem_we", dmemWe)
	for i := 0; i < mcu.NumPorts; i++ {
		b.OutputWord(portName("p", i, "out"), d.PortOut[i])
	}

	// ---- Target conventions ----
	d.Map = mcu.MemMap{
		ROMStart: ROMStart, ROMEnd: ROMEnd,
		RAMStart: RAMStart, RAMEnd: RAMEnd,
		ResetVec: ResetVec,
		WdtCtl:   AddrWDTCTL,
	}
	for i := 0; i < mcu.NumPorts; i++ {
		d.Map.PortIn[i] = PortInAddr(i)
		d.Map.PortOut[i] = PortOutAddr(i)
		d.MMIO = append(d.MMIO,
			mcu.MMIOReg{Addr: PortInAddr(i), Nets: d.PortIn[i]},
			mcu.MMIOReg{Addr: PortOutAddr(i), Nets: d.PortOut[i]})
	}
	d.MMIO = append(d.MMIO,
		mcu.MMIOReg{Addr: AddrWDTCTL, Nets: d.WdtCtl, Mask: 0xff})
	// "jal x0, 0" parks 4-aligned candidate PCs; a candidate landing on the
	// odd half reads insn 0x006f0000 (invalid), which also parks.
	d.Trap = []uint16{0x006f, 0x0000}
	for r := 0; r < 16; r++ {
		d.RegName[r] = regName(r)
	}
	d.PCStep = 4
	// Any low half that is not a recognized straight-line opcode is treated
	// as a (possible) control transfer: JAL/JALR/branches and every invalid
	// encoding, so parked trap candidates always hit a merge point.
	d.JumpWord = func(w uint16) bool {
		switch w & 0x7f {
		case opLUI, opAUIPC, opOpImm, opOp, opLoad, opStore:
			return false
		}
		return true
	}

	if err := nl.Validate(); err != nil {
		panic("rv32: invalid netlist: " + err.Error())
	}
	return d
}

func regName(r int) string {
	const digits = "0123456789"
	if r < 10 {
		return "x" + digits[r:r+1]
	}
	return "x1" + digits[r-10:r-9]
}

func portName(prefix string, i int, suffix string) string {
	return prefix + string(rune('1'+i)) + suffix
}

var (
	sharedOnce sync.Once
	shared     *mcu.Design
)

// Shared returns the memoized rv32 design, mirroring mcu.Shared for the
// msp430 target: one build serves the engine, the service and the registry.
func Shared() *mcu.Design {
	sharedOnce.Do(func() { shared = Build() })
	return shared
}
