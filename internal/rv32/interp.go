package rv32

import (
	"errors"
	"fmt"
)

// ErrParked reports that the machine executed an instruction that does not
// advance the PC (an explicit "jal x0, 0" park or an invalid encoding) —
// the architectural termination convention shared with the gate core.
var ErrParked = errors.New("rv32: machine parked")

// Machine is the behavioural interpreter oracle for the rv32 core: the
// independently written reference the gate-level netlist is conformance-
// tested against (the same role isa.Machine plays for the msp430 target).
//
// Semantics mirror the documented core conventions: 32-bit x1..x15 with x0
// hardwired zero (register fields mod 16), a 16-bit PC and address space,
// halfword memory accesses only, and PC parking on invalid encodings.
type Machine struct {
	PC  uint16
	X   [16]uint32
	Mem []byte // 64 KiB flat memory, little-endian halfwords
	// Insns counts executed instructions; Cycles the two-cycles-per-
	// instruction cost model of the gate core (excluding reset).
	Insns  uint64
	Cycles uint64
}

// NewMachine returns a machine with zeroed memory and registers.
func NewMachine() *Machine {
	return &Machine{Mem: make([]byte, 1<<16)}
}

// LoadHalf reads a little-endian halfword.
func (m *Machine) LoadHalf(a uint16) uint16 {
	return uint16(m.Mem[a]) | uint16(m.Mem[a+1])<<8
}

// StoreHalf writes a little-endian halfword.
func (m *Machine) StoreHalf(a uint16, v uint16) {
	m.Mem[a] = byte(v)
	m.Mem[a+1] = byte(v >> 8)
}

// Reset loads the reset vector into the PC.
func (m *Machine) Reset() { m.PC = m.LoadHalf(ResetVec) }

// Step executes one instruction. A parked machine (invalid encoding or a
// self-targeting jump) returns ErrParked with the PC unchanged.
func (m *Machine) Step() error {
	insn := uint32(m.LoadHalf(m.PC)) | uint32(m.LoadHalf(m.PC+2))<<16
	next, wr, wv, err := m.exec(insn)
	if err != nil {
		return err
	}
	if next == m.PC {
		return ErrParked
	}
	if wr != 0 {
		m.X[wr] = wv
	}
	m.PC = next
	m.Insns++
	m.Cycles += 2
	return nil
}

// exec decodes and executes insn, returning the next PC, the destination
// register (0: none) and its value. Memory stores apply immediately.
func (m *Machine) exec(insn uint32) (next uint16, wr int, wv uint32, err error) {
	opcode := insn & 0x7f
	rd := int(insn >> 7 & 0xf) // register fields mod 16
	f3 := insn >> 12 & 0x7
	rs1 := m.X[insn>>15&0xf]
	rs2 := m.X[insn>>20&0xf]
	f7 := insn >> 25

	immI := signExt(insn>>20, 12)
	immS := signExt(insn>>25<<5|insn>>7&0x1f, 12)
	immB := signExt(insn>>31<<12|insn>>7&1<<11|insn>>25&0x3f<<5|insn>>8&0xf<<1, 13)
	immU := insn & 0xfffff000
	immJ := signExt(insn>>31<<20|insn>>12&0xff<<12|insn>>20&1<<11|insn>>21&0x3ff<<1, 21)

	seq := m.PC + 4
	park := m.PC
	switch opcode {
	case opLUI:
		return seq, rd, immU, nil
	case opAUIPC:
		return seq, rd, uint32(m.PC) + immU, nil
	case opJAL:
		return m.PC + uint16(immJ), rd, uint32(seq), nil
	case opJALR:
		if f3 != 0 {
			return park, 0, 0, nil
		}
		return uint16(rs1+immI) &^ 1, rd, uint32(seq), nil
	case opBranch:
		var taken bool
		switch f3 {
		case 0:
			taken = rs1 == rs2
		case 1:
			taken = rs1 != rs2
		case 4:
			taken = int32(rs1) < int32(rs2)
		case 5:
			taken = int32(rs1) >= int32(rs2)
		case 6:
			taken = rs1 < rs2
		case 7:
			taken = rs1 >= rs2
		default:
			return park, 0, 0, nil
		}
		if taken {
			return m.PC + uint16(immB), 0, 0, nil
		}
		return seq, 0, 0, nil
	case opLoad:
		a := uint16(rs1 + immI)
		switch f3 {
		case 1: // LH
			return seq, rd, uint32(int32(int16(m.LoadHalf(a)))), nil
		case 5: // LHU
			return seq, rd, uint32(m.LoadHalf(a)), nil
		}
		return park, 0, 0, nil
	case opStore:
		if f3 != 1 {
			return park, 0, 0, nil
		}
		m.StoreHalf(uint16(rs1+immS), uint16(rs2))
		return seq, 0, 0, nil
	case opOpImm, opOp:
		b := immI
		if opcode == opOp {
			b = rs2
			if f7 != 0 && !(f7 == 0x20 && f3 == 0) {
				return park, 0, 0, nil
			}
		}
		var r uint32
		switch f3 {
		case 0:
			if opcode == opOp && f7 == 0x20 {
				r = rs1 - b
			} else {
				r = rs1 + b
			}
		case 2:
			if int32(rs1) < int32(b) {
				r = 1
			}
		case 3:
			if rs1 < b {
				r = 1
			}
		case 4:
			r = rs1 ^ b
		case 6:
			r = rs1 | b
		case 7:
			r = rs1 & b
		default:
			return park, 0, 0, nil
		}
		return seq, rd, r, nil
	}
	return park, 0, 0, nil
}

// RunToPark steps until the machine parks or maxInsns elapses.
func (m *Machine) RunToPark(maxInsns int) error {
	for i := 0; i < maxInsns; i++ {
		if err := m.Step(); err != nil {
			if errors.Is(err, ErrParked) {
				return nil
			}
			return err
		}
	}
	return fmt.Errorf("rv32: did not park within %d instructions (pc=%#04x)", maxInsns, m.PC)
}

func signExt(v uint32, bits int) uint32 {
	shift := 32 - bits
	return uint32(int32(v<<shift) >> shift)
}
