package rv32

import (
	"strings"
	"testing"
)

// word32 reads the 32-bit instruction assembled at addr.
func word32(t *testing.T, src string, addr uint16) uint32 {
	t.Helper()
	img := MustAssemble(src)
	words := map[uint16]uint16{}
	img.Place(func(a, w uint16) { words[a] = w })
	lo, ok := words[addr]
	if !ok {
		t.Fatalf("nothing assembled at %#04x", addr)
	}
	return uint32(lo) | uint32(words[addr+2])<<16
}

// TestEncodings pins instruction encodings against independently computed
// RV32I reference values.
func TestEncodings(t *testing.T) {
	cases := []struct {
		src  string
		want uint32
	}{
		{"addi x1, x0, 5", 0x00500093},
		{"addi x2, x1, -1", 0xfff08113},
		{"add x3, x1, x2", 0x002081b3},
		{"sub x3, x1, x2", 0x402081b3},
		{"and x5, x6, x7", 0x007372b3},
		{"lui x1, 0xabcde", 0xabcde0b7},
		{"auipc x2, 0x10", 0x00010117},
		{"lh x1, 4(x2)", 0x00411083},
		{"lhu x1, 4(x2)", 0x00415083},
		{"sh x1, 4(x2)", 0x00111223},
		{"jalr x1, x2, 8", 0x008100e7},
		{"nop", 0x00000013},
	}
	for _, c := range cases {
		if got := word32(t, "start: "+c.src, ROMStart); got != c.want {
			t.Errorf("%s: encoded %#08x, want %#08x", c.src, got, c.want)
		}
	}
}

// TestBranchAndJumpOffsets checks label-relative encodings round-trip
// through the interpreter's immediate reconstruction.
func TestBranchAndJumpOffsets(t *testing.T) {
	src := `
start:  beq x1, x2, fwd
        nop
        nop
fwd:    jal x3, start
back:   j back
`
	img := MustAssemble(src)
	m := NewMachine()
	img.Place(m.StoreHalf)
	m.StoreHalf(ResetVec, img.Entry)
	m.Reset()
	m.X[1], m.X[2] = 7, 7 // taken
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.PC != ROMStart+12 {
		t.Fatalf("beq taken landed at %#04x, want %#04x", m.PC, ROMStart+12)
	}
	if err := m.Step(); err != nil { // jal back to start
		t.Fatal(err)
	}
	if m.PC != ROMStart {
		t.Fatalf("jal landed at %#04x, want %#04x", m.PC, ROMStart)
	}
	if m.X[3] != uint32(ROMStart)+16 {
		t.Fatalf("jal link = %#x, want %#x", m.X[3], ROMStart+16)
	}
}

// TestLiExpansion checks both forms of the li pseudo-instruction.
func TestLiExpansion(t *testing.T) {
	m := NewMachine()
	img := MustAssemble("start: li x1, -3\n li x2, 0x12345\n li x3, 0x7ffff800\ndone: j done\n")
	img.Place(m.StoreHalf)
	m.StoreHalf(ResetVec, img.Entry)
	m.Reset()
	if err := m.RunToPark(16); err != nil {
		t.Fatal(err)
	}
	if m.X[1] != 0xfffffffd {
		t.Errorf("li x1, -3 = %#x", m.X[1])
	}
	if m.X[2] != 0x12345 {
		t.Errorf("li x2, 0x12345 = %#x", m.X[2])
	}
	if m.X[3] != 0x7ffff800 {
		t.Errorf("li x3, 0x7ffff800 = %#x", m.X[3])
	}
}

// TestAssembleErrors checks that malformed sources are rejected with
// positioned diagnostics.
func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"bad register":    "start: addi x16, x0, 1\ndone: j done\n",
		"unknown label":   "start: beq x1, x2, nowhere\ndone: j done\n",
		"imm range":       "start: addi x1, x0, 5000\ndone: j done\n",
		"unknown op":      "start: mul x1, x2, x3\ndone: j done\n",
		"duplicate label": "start: nop\nstart: nop\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := AssembleSource(src); err == nil {
				t.Fatalf("assembled without error")
			} else if !strings.Contains(err.Error(), "line") {
				t.Fatalf("diagnostic lacks position: %v", err)
			}
		})
	}
}
