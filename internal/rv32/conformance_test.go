package rv32

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/logic"
	"repro/internal/mcu"
	"repro/internal/sim"
	"repro/internal/synth"
)

var testDesign = Shared()

func TestNetlistShape(t *testing.T) {
	st := testDesign.NL.ComputeStats()
	if st.DFFs < 400 {
		t.Fatalf("suspiciously few flip-flops: %d", st.DFFs)
	}
	if st.Gates < 2000 {
		t.Fatalf("suspiciously few gates: %d", st.Gates)
	}
	t.Logf("netlist: %d gates, %d DFFs, %d nets, %d levels", st.Gates, st.DFFs, st.Nets, st.Levels)
}

// reg32 reads a 32-bit architectural register bit by bit (System.GetWord
// packs into 16-bit sim.Words and would drop the high half).
func reg32(s *mcu.System, nets synth.Word) (uint32, bool) {
	var v uint32
	for i, id := range nets {
		switch sg := s.GetSig(id); sg.V {
		case logic.One:
			v |= 1 << uint(i)
		case logic.X:
			return 0, false
		}
	}
	return v, true
}

// newConformanceSystem prepares a gate-level system for concrete execution:
// zero-filled RAM (matching the oracle's flat memory) and the image in ROM.
func newConformanceSystem(t *testing.T, img *asm.Image) *mcu.System {
	t.Helper()
	s, err := mcu.NewSystem(testDesign)
	if err != nil {
		t.Fatal(err)
	}
	zeros := make([]byte, s.RAM.Size())
	s.RAM.Fill(s.RAM.Base(), zeros)
	img.Place(func(a, w uint16) { s.ROM.StoreWord(a, sim.ConcreteWord(w)) })
	s.SetResetVector(img.Entry)
	return s
}

// refMachine builds the interpreter twin for the same image.
func refMachine(img *asm.Image) *Machine {
	m := NewMachine()
	img.Place(m.StoreHalf)
	m.StoreHalf(ResetVec, img.Entry)
	m.Reset()
	return m
}

// compareState checks architectural state equality at an instruction
// boundary (gates must be sitting in StFetch).
func compareState(t *testing.T, s *mcu.System, m *Machine, tag string) {
	t.Helper()
	ci := s.EvalCycle(nil)
	if !ci.StateOK || ci.State != StFetch {
		t.Fatalf("%s: gates not at fetch (state=%d ok=%v)", tag, ci.State, ci.StateOK)
	}
	pc := s.GetWord(s.D.PC)
	if !pc.Concrete() || pc.Val != m.PC {
		t.Fatalf("%s: gate pc %s, oracle %#04x", tag, pc, m.PC)
	}
	for r := 1; r < 16; r++ {
		v, ok := reg32(s, testDesign.Regs[r])
		if !ok {
			t.Fatalf("%s: x%d not concrete", tag, r)
		}
		if v != m.X[r] {
			t.Fatalf("%s: x%d = %#08x, oracle has %#08x", tag, r, v, m.X[r])
		}
	}
}

// compareRAM checks the whole data memory against the oracle.
func compareRAM(t *testing.T, s *mcu.System, m *Machine, tag string) {
	t.Helper()
	for a := uint16(RAMStart); a < RAMEnd; a += 2 {
		w := s.RAM.LoadWord(a)
		if !w.Concrete() {
			t.Fatalf("%s: RAM[%#04x] not concrete: %s", tag, a, w)
		}
		if w.Val != m.LoadHalf(a) {
			t.Fatalf("%s: RAM[%#04x] = %#04x, oracle has %#04x", tag, a, w.Val, m.LoadHalf(a))
		}
	}
}

// runLockstep locksteps gates and oracle at instruction boundaries, then
// byte-compares data memory once the program parks.
func runLockstep(t *testing.T, src string, maxInsns int) {
	t.Helper()
	img, err := AssembleSource(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	s := newConformanceSystem(t, img)
	m := refMachine(img)
	s.PowerOn()
	s.Step() // StReset: the reset-vector fetch
	compareState(t, s, m, "after reset")
	for i := 0; i < maxInsns; i++ {
		pc := m.PC
		err := m.Step()
		parked := errors.Is(err, ErrParked)
		if err != nil && !parked {
			t.Fatalf("oracle at %#04x: %v", pc, err)
		}
		s.Step() // StFetch
		s.Step() // StExec
		tag := fmt.Sprintf("insn %d @%#04x", i, pc)
		compareState(t, s, m, tag)
		// Oracle cycles don't advance on the parked step; gates still ran two.
		if !parked && s.Cycle != m.Cycles+2 {
			t.Fatalf("%s: cycle divergence: gates %d, oracle %d (+2 reset)", tag, s.Cycle, m.Cycles)
		}
		if parked {
			compareRAM(t, s, m, tag)
			return
		}
	}
	t.Fatalf("did not park within %d instructions", maxInsns)
}

// TestConformanceHandwritten exercises every instruction of the subset with
// directed corner cases.
func TestConformanceHandwritten(t *testing.T) {
	cases := map[string]string{
		"alu_imm": `
start:  addi x1, x0, 100
        addi x2, x1, -49
        slti x3, x2, 52
        slti x4, x2, -1
        sltiu x5, x2, 52
        sltiu x6, x2, -1     # -1 is 0xfff...f unsigned: everything is below
        xori x7, x1, 0x5a
        ori  x8, x1, 0x0f
        andi x9, x1, 0x3c
done:   j done
`,
		"alu_reg": `
start:  li x1, 7
        li x2, -3
        add x3, x1, x2
        sub x4, x1, x2
        slt x5, x2, x1       # signed: -3 < 7
        slt x6, x1, x2
        sltu x7, x2, x1      # unsigned: 0xfffffffd < 7 is false
        sltu x8, x1, x2
        xor x9, x1, x2
        or  x10, x1, x2
        and x11, x1, x2
done:   j done
`,
		"lui_auipc": `
start:  lui x1, 0xabcde
        lui x2, 1
        auipc x3, 0
        auipc x4, 0x10
        li x5, 0x12345       # expands to lui+addi
        li x6, -70000
done:   j done
`,
		"mem": `
start:  li x8, 0x0800
        li x1, -2
        sh x1, 0(x8)
        sh x1, 6(x8)
        lh x2, 0(x8)         # sign-extends 0xfffe
        lhu x3, 0(x8)        # zero-extends
        li x4, 0x7fff
        sh x4, 2(x8)
        lh x5, 2(x8)
        sh x5, 0x40(x8)
        lhu x6, 0x40(x8)
done:   j done
`,
		"branches": `
start:  li x1, 5
        li x2, -5
        li x10, 0
        beq x1, x1, t1
        addi x10, x10, 1     # must be skipped
t1:     bne x1, x2, t2
        addi x10, x10, 2
t2:     blt x2, x1, t3       # signed taken
        addi x10, x10, 4
t3:     bge x1, x2, t4
        addi x10, x10, 8
t4:     bltu x1, x2, t5      # unsigned: 5 < 0xfff..b taken
        addi x10, x10, 16
t5:     bgeu x2, x1, t6
        addi x10, x10, 32
t6:     beq x1, x2, t7       # not taken
        addi x11, x11, 1
t7:     blt x1, x2, t8       # not taken
        addi x11, x11, 2
t8:     nop
done:   j done
`,
		"jal_jalr": `
start:  jal x1, f1
        mv x10, x2
        j done
f1:     li x2, 42
        jalr x3, x1, 0       # return, linking x3
done:   j done
`,
		"call_chain": `
start:  li x2, 0x0f00        # stackish pointer (unused, just state)
        jal x1, outer
        li x12, 1
done:   j done
outer:  li x5, 10
        mv x6, x1
        jal x1, inner
        mv x1, x6
        ret
inner:  addi x5, x5, 5
        ret
`,
		"x0_writes": `
start:  li x1, 7
        addi x0, x1, 1       # writes to x0 are dropped
        add x0, x1, x1
        lui x0, 5
        mv x2, x0
done:   j done
`,
		"invalid_parks": `
start:  li x1, 3
        .word 0x0007         # unrecognized opcode: parks
        .word 0x0000
        li x1, 99            # never reached
`,
		"wrap16": `
start:  li x1, 0x7ff0
        lui x2, 0xfffff      # -4096
        add x3, x1, x2
        li x8, 0x0ffe        # last RAM word
        sh x1, 0(x8)
        lh x4, 0(x8)
done:   j done
`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { runLockstep(t, src, 64) })
	}
}

// TestConformanceRandomCorpus locksteps the gate core against the oracle
// over a seeded corpus of generated programs: random ALU/memory straight
// lines threaded through forward branches — the rv32 analogue of the
// msp430 conformance matrix.
func TestConformanceRandomCorpus(t *testing.T) {
	for seed := int64(1); seed <= 24; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src, insns := generateProgram(rand.New(rand.NewSource(seed)))
			t.Logf("program:\n%s", src)
			runLockstep(t, src, insns+8)
		})
	}
}

// generateProgram emits a random terminating program: blocks of ALU and
// memory operations linked by forward branches (always toward the end, so
// every path terminates at the parking jump).
func generateProgram(rng *rand.Rand) (string, int) {
	var sb strings.Builder
	insns := 0
	emit := func(format string, args ...interface{}) {
		fmt.Fprintf(&sb, "        "+format+"\n", args...)
		insns++
	}
	sb.WriteString("start:\n")
	// x8 points into RAM; x1..x6 hold random data.
	emit("li x8, %#x", 0x0800+rng.Intn(0x300)*2)
	for r := 1; r <= 6; r++ {
		emit("li x%d, %d", r, int32(rng.Uint32()))
		insns++ // li of a large value expands to two instructions
	}
	aluImm := []string{"addi", "slti", "sltiu", "xori", "ori", "andi"}
	aluReg := []string{"add", "sub", "slt", "sltu", "xor", "or", "and"}
	branches := []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}
	reg := func() int { return 1 + rng.Intn(6) }
	blocks := 4 + rng.Intn(4)
	for blk := 0; blk < blocks; blk++ {
		if blk > 0 {
			fmt.Fprintf(&sb, "blk%d:\n", blk)
		}
		for n := 3 + rng.Intn(6); n > 0; n-- {
			switch rng.Intn(4) {
			case 0:
				emit("%s x%d, x%d, %d", aluImm[rng.Intn(len(aluImm))], reg(), reg(), rng.Intn(4096)-2048)
			case 1:
				emit("%s x%d, x%d, x%d", aluReg[rng.Intn(len(aluReg))], reg(), reg(), reg())
			case 2:
				emit("sh x%d, %d(x8)", reg(), rng.Intn(0x80)*2)
			case 3:
				if rng.Intn(2) == 0 {
					emit("lh x%d, %d(x8)", reg(), rng.Intn(0x80)*2)
				} else {
					emit("lhu x%d, %d(x8)", reg(), rng.Intn(0x80)*2)
				}
			}
		}
		// Branch forward over the rest of this round's blocks sometimes.
		if blk+1 < blocks && rng.Intn(2) == 0 {
			emit("%s x%d, x%d, blk%d", branches[rng.Intn(len(branches))], reg(), reg(), blk+1+rng.Intn(blocks-blk))
		}
	}
	fmt.Fprintf(&sb, "blk%d:\n", blocks)
	sb.WriteString("done:   j done\n")
	insns++
	return sb.String(), insns * 2
}
