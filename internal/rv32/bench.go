package rv32

import (
	"repro/internal/asm"
	"repro/internal/glift"
)

// Tainted-partition geometry shared by the rv32 smoke benchmarks: the top
// quarter of RAM holds tainted data, the rest stays untainted.
const (
	PartLo = 0x0e00
	PartHi = RAMEnd
)

// Benchmark is one rv32 smoke workload: a complete program (not a task
// fragment — the rv32 target has no system-code scaffolding yet) plus the
// information flow policy it runs under.
type Benchmark struct {
	Name string
	// Src is the full program; it must terminate by parking.
	Src string
	// Desc says what the workload demonstrates.
	Desc string
	// ExpectViolations is true when the workload is built to violate the
	// sufficient conditions (the branchy leak), false for the verified
	// straight-line workloads.
	ExpectViolations bool
}

// Policy returns the benchmark's analysis policy. All three smoke
// workloads share the paper's Section 7 setup transposed to the rv32
// memory map: input port P1 and output port P2 are tainted, the program
// is the tainted task, and the top of RAM is its data partition.
func (b *Benchmark) Policy() *glift.Policy {
	if b.Name == "portCopy" {
		// Fully untainted control workload.
		return &glift.Policy{Name: "rv32/" + b.Name}
	}
	return &glift.Policy{
		Name:            "rv32/" + b.Name,
		TaintedInPorts:  []int{0},
		TaintedOutPorts: []int{1},
		TaintedCode:     []glift.AddrRange{{Lo: ROMStart, Hi: ROMStart + 0x400}},
		TaintedData:     []glift.AddrRange{{Lo: PartLo, Hi: PartHi}},
	}
}

// Build assembles the benchmark.
func (b *Benchmark) Build() (*asm.Image, error) { return AssembleSource(b.Src) }

// Benchmarks returns the rv32 smoke workloads: two straight-line programs
// that must verify and one branchy program whose store address depends on
// tainted input (a sufficient-condition-2 escape).
func Benchmarks() []*Benchmark {
	return []*Benchmark{
		{
			Name: "straightSum",
			Desc: "tainted task: read P1 twice, sum, buffer in the partition, emit on P2",
			Src: `
start:  li x8, 0x0010        # P1 input port
        li x9, 0x0e00        # tainted partition base
        li x10, 0x0016       # P2 output port
        lh x5, 0(x8)         # tainted sample
        lh x6, 0(x8)         # second tainted sample
        add x7, x5, x6
        sh x7, 0(x9)         # buffer inside the partition
        sh x7, 2(x9)
        lh x4, 0(x9)
        sh x4, 0(x10)        # tainted-allowed output port
done:   j done
`,
		},
		{
			Name: "portCopy",
			Desc: "untainted control: constant compute through RAM to an untainted port",
			Src: `
start:  li x9, 0x0800
        li x5, 0x1234
        sh x5, 0(x9)
        lh x6, 0(x9)
        add x7, x6, x6
        sh x7, 2(x9)
        li x10, 0x0012       # P1 output port (untainted is fine: data is untainted)
        sh x7, 0(x10)
done:   j done
`,
		},
		{
			Name:             "branchLeak",
			ExpectViolations: true,
			Desc:             "branch on a tainted sample steers a store outside the partition",
			Src: `
start:  li x8, 0x0010        # P1 input port
        li x9, 0x0e00        # tainted partition base
        li x11, 0x0800       # untainted RAM
        lh x5, 0(x8)         # tainted, unknown sample
        beq x5, x0, safe
        sh x5, 0(x11)        # tainted store escaping the partition (C2)
safe:   sh x5, 0(x9)         # inside the partition: allowed
done:   j done
`,
		},
	}
}

// BenchmarkByName finds a benchmark, or nil.
func BenchmarkByName(name string) *Benchmark {
	for _, b := range Benchmarks() {
		if b.Name == name {
			return b
		}
	}
	return nil
}
