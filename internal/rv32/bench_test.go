package rv32_test

import (
	"testing"

	"repro/internal/glift"
	"repro/internal/rv32"
)

// TestBenchmarkVerdicts runs each rv32 smoke benchmark end to end through
// the GLIFT engine on the rv32 design and checks the expected verdict: the
// straight-line workloads verify, the branchy leak reports a C2 escape.
func TestBenchmarkVerdicts(t *testing.T) {
	for _, b := range rv32.Benchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			img, err := b.Build()
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			eng, err := glift.NewEngineOn(rv32.Shared(), img, b.Policy(), nil)
			if err != nil {
				t.Fatal(err)
			}
			rep := eng.Run()
			for _, v := range rep.Violations {
				t.Logf("violation: %s", v)
			}
			verdict := rep.Verdict()
			if b.ExpectViolations {
				if verdict != glift.Violations {
					t.Fatalf("verdict = %s, want violations", verdict)
				}
				if len(rep.ByKind(glift.C2MemoryEscape)) == 0 {
					t.Fatalf("expected a C2 memory escape, got %v", rep.Violations)
				}
			} else if verdict != glift.Verified {
				t.Fatalf("verdict = %s, want verified", verdict)
			}
		})
	}
}
