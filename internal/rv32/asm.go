package rv32

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/asm"
)

// AssembleSource assembles rv32 assembly into the shared image format
// (halfword little-endian segments), so every consumer of *asm.Image — the
// engine's ROM placement, the service's job schema, the benchmarks — works
// on rv32 programs unchanged.
//
// Syntax, one instruction per line ("#" or ";" comments, "label:" labels):
//
//	lui/auipc rd, imm20
//	addi/slti/sltiu/xori/ori/andi rd, rs1, imm
//	add/sub/slt/sltu/xor/or/and rd, rs1, rs2
//	lh/lhu rd, off(rs1)        sh rs2, off(rs1)
//	beq/bne/blt/bge/bltu/bgeu rs1, rs2, label
//	jal [rd,] label            jalr rd, rs1, imm
//	nop | mv rd, rs | li rd, imm | j label | ret
//	.org addr | .word imm16
//
// Registers are x0..x15. Programs originate at ROMStart; the entry point is
// the "start" label when present, else the first instruction.
func AssembleSource(src string) (*asm.Image, error) {
	p := &parser{symbols: map[string]int64{}}
	lines := strings.Split(src, "\n")

	// Pass 1: lay out statements and record label addresses.
	addr := uint16(ROMStart)
	type stmt struct {
		line  int
		text  string
		addr  uint16
		words int
	}
	var stmts []stmt
	for i, raw := range lines {
		text := stripComment(raw)
		for {
			lab, rest, ok := splitLabel(text)
			if !ok {
				break
			}
			if _, dup := p.symbols[lab]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", i+1, lab)
			}
			p.symbols[lab] = int64(addr)
			text = rest
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if next, ok, err := p.directiveAddr(text, addr); err != nil {
			return nil, fmt.Errorf("line %d: %v", i+1, err)
		} else if ok {
			addr = next
			continue
		}
		n, err := p.sizeWords(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", i+1, err)
		}
		stmts = append(stmts, stmt{line: i + 1, text: text, addr: addr, words: n})
		addr += uint16(2 * n)
	}

	// Pass 2: encode.
	img := &asm.Image{
		Symbols:    p.symbols,
		AddrToStmt: map[uint16]int{},
		StmtToAddr: map[int]uint16{},
	}
	segs := map[uint16][]uint16{} // start addr -> words, merged below
	var order []uint16
	var cur uint16
	var curWords []uint16
	flush := func() {
		if curWords != nil {
			segs[cur] = curWords
			order = append(order, cur)
			curWords = nil
		}
	}
	expect := uint16(0)
	for _, s := range stmts {
		words, err := p.encode(s.text, s.addr)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", s.line, err)
		}
		if curWords == nil || s.addr != expect {
			flush()
			cur = s.addr
		}
		curWords = append(curWords, words...)
		expect = s.addr + uint16(2*len(words))
	}
	flush()
	for _, a := range order {
		img.Segments = append(img.Segments, asm.Segment{Addr: a, Words: segs[a]})
	}

	if len(stmts) == 0 {
		return nil, fmt.Errorf("rv32: empty program")
	}
	img.Entry = stmts[0].addr
	if e, ok := p.symbols["start"]; ok {
		img.Entry = uint16(e)
	}
	return img, nil
}

// MustAssemble assembles a compiled-in program, panicking on error.
func MustAssemble(src string) *asm.Image {
	img, err := AssembleSource(src)
	if err != nil {
		panic(err)
	}
	return img
}

type parser struct {
	symbols map[string]int64
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, "#;"); i >= 0 {
		s = s[:i]
	}
	return s
}

func splitLabel(s string) (label, rest string, ok bool) {
	t := strings.TrimSpace(s)
	i := strings.Index(t, ":")
	if i <= 0 {
		return "", s, false
	}
	lab := strings.TrimSpace(t[:i])
	if !isIdent(lab) {
		return "", s, false
	}
	return lab, t[i+1:], true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// directiveAddr handles .org/.word layout during pass 1 (and .word is also
// re-handled in encode); returns the next layout address for .org.
func (p *parser) directiveAddr(text string, addr uint16) (uint16, bool, error) {
	f := strings.Fields(text)
	if f[0] != ".org" {
		return 0, false, nil
	}
	if len(f) != 2 {
		return 0, false, fmt.Errorf(".org wants one operand")
	}
	v, err := p.immediate(f[1])
	if err != nil {
		return 0, false, err
	}
	return uint16(v), true, nil
}

// sizeWords returns the halfword count of one statement (li may expand).
func (p *parser) sizeWords(text string) (int, error) {
	op, args, err := splitOp(text)
	if err != nil {
		return 0, err
	}
	switch op {
	case ".word":
		return 1, nil
	case "li":
		if len(args) != 2 {
			return 0, fmt.Errorf("li wants rd, imm")
		}
		v, err := p.immediate(args[1])
		if err != nil {
			return 0, err
		}
		if fitsImm12(v) {
			return 2, nil // addi rd, x0, imm
		}
		return 4, nil // lui + addi
	default:
		return 2, nil
	}
}

func splitOp(text string) (string, []string, error) {
	text = strings.TrimSpace(text)
	i := strings.IndexAny(text, " \t")
	if i < 0 {
		return text, nil, nil
	}
	op := text[:i]
	var args []string
	for _, a := range strings.Split(text[i+1:], ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return "", nil, fmt.Errorf("empty operand in %q", text)
		}
		args = append(args, a)
	}
	return op, args, nil
}

func fitsImm12(v int64) bool { return v >= -2048 && v <= 2047 }

func (p *parser) reg(s string) (uint32, error) {
	if !strings.HasPrefix(s, "x") {
		return 0, fmt.Errorf("bad register %q (want x0..x15)", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 15 {
		return 0, fmt.Errorf("bad register %q (want x0..x15)", s)
	}
	return uint32(n), nil
}

func (p *parser) immediate(s string) (int64, error) {
	if v, ok := p.symbols[s]; ok {
		return v, nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate or undefined symbol %q", s)
	}
	return v, nil
}

// memOperand parses "off(rs1)".
func (p *parser) memOperand(s string) (off int64, rs1 uint32, err error) {
	i := strings.Index(s, "(")
	if i < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q (want off(rs1))", s)
	}
	offS := strings.TrimSpace(s[:i])
	if offS == "" {
		offS = "0"
	}
	off, err = p.immediate(offS)
	if err != nil {
		return 0, 0, err
	}
	rs1, err = p.reg(strings.TrimSpace(s[i+1 : len(s)-1]))
	return off, rs1, err
}

var opImmF3 = map[string]uint32{
	"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7,
}
var opF3 = map[string]uint32{
	"add": 0, "sub": 0, "slt": 2, "sltu": 3, "xor": 4, "or": 6, "and": 7,
}
var branchF3 = map[string]uint32{
	"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7,
}

// encode emits one statement's halfwords (instruction low half first).
func (p *parser) encode(text string, addr uint16) ([]uint16, error) {
	op, args, err := splitOp(text)
	if err != nil {
		return nil, err
	}
	want := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	halves := func(insns ...uint32) []uint16 {
		var out []uint16
		for _, v := range insns {
			out = append(out, uint16(v), uint16(v>>16))
		}
		return out
	}

	switch op {
	case ".word":
		if err := want(1); err != nil {
			return nil, err
		}
		v, err := p.immediate(args[0])
		if err != nil {
			return nil, err
		}
		return []uint16{uint16(v)}, nil

	case "lui", "auipc":
		if err := want(2); err != nil {
			return nil, err
		}
		rd, err := p.reg(args[0])
		if err != nil {
			return nil, err
		}
		v, err := p.immediate(args[1])
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 0xfffff {
			return nil, fmt.Errorf("%s immediate %d out of range [0, 0xfffff]", op, v)
		}
		oc := uint32(opLUI)
		if op == "auipc" {
			oc = opAUIPC
		}
		return halves(uint32(v)<<12 | rd<<7 | oc), nil

	case "addi", "slti", "sltiu", "xori", "ori", "andi":
		if err := want(3); err != nil {
			return nil, err
		}
		rd, err1 := p.reg(args[0])
		rs1, err2 := p.reg(args[1])
		v, err3 := p.immediate(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		if !fitsImm12(v) {
			return nil, fmt.Errorf("%s immediate %d out of range [-2048, 2047]", op, v)
		}
		return halves(encI(opOpImm, rd, opImmF3[op], rs1, v)), nil

	case "add", "sub", "slt", "sltu", "xor", "or", "and":
		if err := want(3); err != nil {
			return nil, err
		}
		rd, err1 := p.reg(args[0])
		rs1, err2 := p.reg(args[1])
		rs2, err3 := p.reg(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		f7 := uint32(0)
		if op == "sub" {
			f7 = 0x20
		}
		return halves(f7<<25 | rs2<<20 | rs1<<15 | opF3[op]<<12 | rd<<7 | opOp), nil

	case "lh", "lhu":
		if err := want(2); err != nil {
			return nil, err
		}
		rd, err1 := p.reg(args[0])
		off, rs1, err2 := p.memOperand(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		if !fitsImm12(off) {
			return nil, fmt.Errorf("%s offset %d out of range", op, off)
		}
		f3 := uint32(1)
		if op == "lhu" {
			f3 = 5
		}
		return halves(encI(opLoad, rd, f3, rs1, off)), nil

	case "sh":
		if err := want(2); err != nil {
			return nil, err
		}
		rs2, err1 := p.reg(args[0])
		off, rs1, err2 := p.memOperand(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		if !fitsImm12(off) {
			return nil, fmt.Errorf("sh offset %d out of range", off)
		}
		imm := uint32(off) & 0xfff
		return halves(imm>>5<<25 | rs2<<20 | rs1<<15 | 1<<12 | imm&0x1f<<7 | opStore), nil

	case "beq", "bne", "blt", "bge", "bltu", "bgeu":
		if err := want(3); err != nil {
			return nil, err
		}
		rs1, err1 := p.reg(args[0])
		rs2, err2 := p.reg(args[1])
		tgt, err3 := p.immediate(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		off := int64(int16(uint16(tgt) - addr))
		if off < -4096 || off > 4094 || off&1 != 0 {
			return nil, fmt.Errorf("branch offset %d out of range or misaligned", off)
		}
		imm := uint32(off) & 0x1fff
		enc := imm>>12<<31 | imm>>5&0x3f<<25 | rs2<<20 | rs1<<15 |
			branchF3[op]<<12 | imm>>1&0xf<<8 | imm>>11&1<<7 | opBranch
		return halves(enc), nil

	case "jal", "j":
		rd := uint32(1)
		tgtArg := ""
		switch {
		case op == "j" && len(args) == 1:
			rd, tgtArg = 0, args[0]
		case op == "jal" && len(args) == 1:
			tgtArg = args[0]
		case op == "jal" && len(args) == 2:
			var err error
			if rd, err = p.reg(args[0]); err != nil {
				return nil, err
			}
			tgtArg = args[1]
		default:
			return nil, fmt.Errorf("%s wants [rd,] target", op)
		}
		tgt, err := p.immediate(tgtArg)
		if err != nil {
			return nil, err
		}
		off := int64(int16(uint16(tgt) - addr))
		if off < -(1<<20) || off >= 1<<20 || off&1 != 0 {
			return nil, fmt.Errorf("jump offset %d out of range or misaligned", off)
		}
		imm := uint32(off) & 0x1fffff
		enc := imm>>20<<31 | imm>>1&0x3ff<<21 | imm>>11&1<<20 | imm>>12&0xff<<12 | rd<<7 | uint32(opJAL)
		return halves(enc), nil

	case "jalr":
		if err := want(3); err != nil {
			return nil, err
		}
		rd, err1 := p.reg(args[0])
		rs1, err2 := p.reg(args[1])
		v, err3 := p.immediate(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		if !fitsImm12(v) {
			return nil, fmt.Errorf("jalr immediate %d out of range", v)
		}
		return halves(encI(opJALR, rd, 0, rs1, v)), nil

	case "ret":
		if err := want(0); err != nil {
			return nil, err
		}
		return halves(encI(opJALR, 0, 0, 1, 0)), nil

	case "nop":
		if err := want(0); err != nil {
			return nil, err
		}
		return halves(encI(opOpImm, 0, 0, 0, 0)), nil

	case "mv":
		if err := want(2); err != nil {
			return nil, err
		}
		rd, err1 := p.reg(args[0])
		rs1, err2 := p.reg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return halves(encI(opOpImm, rd, 0, rs1, 0)), nil

	case "li":
		if err := want(2); err != nil {
			return nil, err
		}
		rd, err1 := p.reg(args[0])
		v, err2 := p.immediate(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		if fitsImm12(v) {
			return halves(encI(opOpImm, rd, 0, 0, v)), nil
		}
		v32 := uint32(v)
		hi := (v32 + 0x800) >> 12
		lo := int64(int32(v32) - int32(hi<<12))
		return halves(
			hi&0xfffff<<12|rd<<7|opLUI,
			encI(opOpImm, rd, 0, rd, lo)), nil
	}
	return nil, fmt.Errorf("unknown mnemonic %q", op)
}

func encI(opcode, rd, f3, rs1 uint32, imm int64) uint32 {
	return uint32(imm)&0xfff<<20 | rs1<<15 | f3<<12 | rd<<7 | opcode
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
