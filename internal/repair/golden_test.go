package repair

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestResultJSONGolden pins the repair-job wire shape — patched assembly,
// per-round counts, the targeted-vs-always-on overhead comparison and the
// embedded final report — against a committed golden file, mirroring the
// ReportJSON golden test. Wall-clock and memory stats are zeroed (the only
// non-deterministic fields); everything else must be byte-stable, which is
// also what makes the persisted payload content-addressable.
func TestResultJSONGolden(t *testing.T) {
	res, err := Run(context.Background(), violSpec())
	if err != nil {
		t.Fatal(err)
	}
	rj := res.JSON()
	rj.Report.Stats.WallNanos = 0
	rj.Report.Stats.PeakMemBytes = 0

	got, err := json.MarshalIndent(rj, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "repair.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("repair result JSON drifted from %s (run with -update to regenerate):\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}

	// The golden payload must also pass the store's fail-closed read gate.
	var back ResultJSON
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("golden payload fails the fail-closed gate: %v", err)
	}
}
