package repair

import (
	"context"
	"strings"
	"testing"

	"repro/internal/glift"
	"repro/internal/transform"
)

// violSrc is the Figure 9 micro-benchmark: a tainted port value becomes a
// store address, so the store can escape the partition (C2) until masked.
const violSrc = "start:  jmp tstart\n" +
	"tstart: mov &0x0020, r15\n" +
	"        mov #0x0200, r14\n" +
	"        add r15, r14\n" +
	"        mov #500, 0(r14)\n" +
	"done:   jmp done\n" +
	"tend:   nop\n"

func violSpec() *Spec {
	return &Spec{
		Source: violSrc,
		Policy: glift.Policy{
			Name:           "test",
			TaintedInPorts: []int{0},
			TaintedData:    []glift.AddrRange{{Lo: 0x0400, Hi: 0x0800}},
		},
		CodeRanges: []string{"tstart:tend"},
		Options:    &glift.Options{Workers: 1},
	}
}

// TestRunFigure9 drives the repair loop end to end on the Figure 9 program:
// round 0 finds the escaping store, round 1 verifies the masked rebuild,
// and the result carries the patched text plus the overhead comparison.
func TestRunFigure9(t *testing.T) {
	res, err := Run(context.Background(), violSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Report.Verdict(); got != glift.Verified {
		t.Fatalf("verdict = %v, want verified", got)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(res.Rounds))
	}
	r0, r1 := res.Rounds[0], res.Rounds[1]
	if r0.MaskedStores != 0 || r0.ViolatingPCs == 0 || r0.NewlyFlagged != 1 {
		t.Errorf("round 0 = %+v, want unmasked with one newly flagged store", r0)
	}
	if r1.MaskedStores != 1 || r1.Violations != 0 || r1.Verdict != glift.Verified {
		t.Errorf("round 1 = %+v, want one masked store and a verified rerun", r1)
	}
	if !strings.Contains(res.Asm, "and #0x3ff, r14") || !strings.Contains(res.Asm, "bis #0x400, r14") {
		t.Errorf("patched asm lacks the mask pair:\n%s", res.Asm)
	}
	if len(res.Unmaskable) != 0 {
		t.Errorf("unexpected unmaskable stores: %+v", res.Unmaskable)
	}

	o := res.Overheads
	if o.Targeted.MaskedStores != 1 || o.Targeted.Watchdog {
		t.Errorf("targeted = %+v, want 1 masked store and no watchdog", o.Targeted)
	}
	if !o.AlwaysOn.Watchdog || o.AlwaysOn.MaskedStores < o.Targeted.MaskedStores {
		t.Errorf("always-on = %+v, want watchdog armed and at least the targeted masks", o.AlwaysOn)
	}
	if o.ReductionFactor <= 1 {
		t.Errorf("reduction factor = %v, want > 1 (always-on strictly costlier)", o.ReductionFactor)
	}
}

// TestRunDeterministic: two runs of the same spec produce byte-identical
// patched assembly and identical round records (modulo wall-clock stats) —
// the property the CLI/daemon differential contract is built on.
func TestRunDeterministic(t *testing.T) {
	a, err := Run(context.Background(), violSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), violSpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.Asm != b.Asm {
		t.Errorf("patched asm differs between identical runs")
	}
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(a.Rounds), len(b.Rounds))
	}
	for i := range a.Rounds {
		ra, rb := a.Rounds[i], b.Rounds[i]
		if ra.MaskedStores != rb.MaskedStores || ra.Violations != rb.Violations ||
			ra.ViolatingPCs != rb.ViolatingPCs || ra.NewlyFlagged != rb.NewlyFlagged ||
			ra.Verdict != rb.Verdict {
			t.Errorf("round %d differs: %+v vs %+v", i, ra, rb)
		}
	}
}

// TestRunOnRoundOrder: the OnRound hook sees every round, in order, and the
// per-round progress factory is invoked once per round.
func TestRunOnRoundOrder(t *testing.T) {
	spec := violSpec()
	var hookRounds []int
	spec.OnRound = func(rr Round) { hookRounds = append(hookRounds, rr.Round) }
	progressRounds := 0
	spec.RoundProgress = func(round int) func(glift.Progress) {
		if round != progressRounds {
			t.Errorf("RoundProgress(%d) out of order, want %d", round, progressRounds)
		}
		progressRounds++
		return func(glift.Progress) {}
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(hookRounds) != len(res.Rounds) {
		t.Fatalf("OnRound fired %d times for %d rounds", len(hookRounds), len(res.Rounds))
	}
	for i, r := range hookRounds {
		if r != i {
			t.Errorf("OnRound order: got round %d at position %d", r, i)
		}
	}
	if progressRounds != len(res.Rounds) {
		t.Errorf("RoundProgress called %d times for %d rounds", progressRounds, len(res.Rounds))
	}
}

// TestRunCancelled: a pre-cancelled context stops the loop fail-closed with
// an Incomplete final verdict, not an error.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, violSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Report.Verdict(); got != glift.Incomplete {
		t.Fatalf("verdict = %v, want incomplete", got)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds = %d, want 1 (the loop must stop on an unproven round)", len(res.Rounds))
	}
}

// TestSpecValidate: user-input errors are caught before any engine run.
func TestSpecValidate(t *testing.T) {
	cases := map[string]*Spec{
		"empty source":      {Source: "   \n"},
		"unparsable source": {Source: "start: bogus r1, r2\n"},
		"bad partition":     {Source: "start: nop\n", Partition: transform.Partition{Lo: 0x100, Size: 0x300}},
		"bad range":         {Source: "start: nop\n", CodeRanges: []string{"nosuchsym:0x200"}},
		"negative rounds":   {Source: "start: nop\n", MaxRounds: -1},
	}
	for name, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, spec)
		}
	}
	if err := violSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestParsePartition mirrors the secure430 -partition contract.
func TestParsePartition(t *testing.T) {
	p, err := ParsePartition("0x0400:0x0400")
	if err != nil || p.Lo != 0x0400 || p.Size != 0x0400 {
		t.Fatalf("ParsePartition = %+v, %v", p, err)
	}
	for _, bad := range []string{"", "0x0400", "zz:0x400", "0x0400:zz", "0x100:0x300", "0x0300:0x0200"} {
		if _, err := ParsePartition(bad); err == nil {
			t.Errorf("ParsePartition(%q) accepted", bad)
		}
	}
}

// TestParsePorts mirrors the secure430 -tainted-in contract (1-based wire,
// 0-based policy).
func TestParsePorts(t *testing.T) {
	ports, err := ParsePorts("1, 3")
	if err != nil || len(ports) != 2 || ports[0] != 0 || ports[1] != 2 {
		t.Fatalf("ParsePorts = %v, %v", ports, err)
	}
	if ports, err := ParsePorts(""); err != nil || ports != nil {
		t.Errorf("ParsePorts(\"\") = %v, %v", ports, err)
	}
	for _, bad := range []string{"0", "5", "x", "1,,2"} {
		if _, err := ParsePorts(bad); err == nil {
			t.Errorf("ParsePorts(%q) accepted", bad)
		}
	}
}

// TestResultJSONValidate: the fail-closed gate rejects internally
// inconsistent wire payloads.
func TestResultJSONValidate(t *testing.T) {
	res, err := Run(context.Background(), violSpec())
	if err != nil {
		t.Fatal(err)
	}
	rj := res.JSON()
	if err := rj.Validate(); err != nil {
		t.Fatalf("fresh result rejected: %v", err)
	}

	broken := res.JSON()
	broken.Rounds = nil
	if err := broken.Validate(); err == nil {
		t.Error("no-rounds payload accepted")
	}
	broken = res.JSON()
	broken.Rounds[len(broken.Rounds)-1].Verdict = "violations"
	if err := broken.Validate(); err == nil {
		t.Error("final-round/report verdict mismatch accepted")
	}
	broken = res.JSON()
	broken.Rounds[0].Round = 7
	if err := broken.Validate(); err == nil {
		t.Error("renumbered rounds accepted")
	}
	broken = res.JSON()
	broken.Report.Verdict = "violations"
	if err := broken.Validate(); err == nil {
		t.Error("tampered report verdict accepted")
	}
}
