package repair

import (
	"fmt"

	"repro/internal/glift"
	"repro/internal/transform"
)

// ResultJSON is the wire/persistence shape of a repair run — the payload a
// gliftd repair job returns, persists to the result store, and the golden
// test pins down.
type ResultJSON struct {
	// PatchedAsm is the printed patched assembly, byte-identical to the
	// secure430 -o output for the same inputs.
	PatchedAsm string `json:"patched_asm"`
	// Rounds is the per-iteration record in order.
	Rounds []RoundJSON `json:"rounds"`
	// Unmaskable lists stores that violate the policy but cannot be
	// masked (deduplicated by source line).
	Unmaskable []UnmaskableJSON `json:"unmaskable,omitempty"`
	// Targeted and AlwaysOn are the two columns of the overhead
	// comparison; ReductionFactor is always-on percent over targeted
	// percent.
	Targeted        OverheadsJSON `json:"targeted"`
	AlwaysOn        OverheadsJSON `json:"always_on"`
	ReductionFactor float64       `json:"reduction_factor"`
	// Report is the final round's full analysis report.
	Report glift.ReportJSON `json:"report"`
}

// RoundJSON is one analyze/mask/re-verify iteration on the wire.
type RoundJSON struct {
	Round             int    `json:"round"`
	MaskedStores      int    `json:"masked_stores"`
	Violations        int    `json:"violations"`
	ViolatingStorePCs int    `json:"violating_store_pcs"`
	NewlyFlagged      int    `json:"newly_flagged"`
	Verdict           string `json:"verdict"`
}

// UnmaskableJSON is one flagged-but-unmaskable store on the wire.
type UnmaskableJSON struct {
	Line int    `json:"line"`
	Text string `json:"text"`
}

// OverheadsJSON is one overhead column on the wire.
type OverheadsJSON struct {
	BaseCycles      uint64       `json:"base_cycles"`
	MaskedStores    int          `json:"masked_stores"`
	MaskCycles      uint64       `json:"mask_cycles"`
	Watchdog        bool         `json:"watchdog"`
	WdtPlan         *WdtPlanJSON `json:"wdt_plan,omitempty"`
	ProtectedCycles uint64       `json:"protected_cycles"`
	OverheadPercent float64      `json:"overhead_percent"`
}

// WdtPlanJSON is a watchdog slicing plan on the wire.
type WdtPlanJSON struct {
	IntervalCycles uint32 `json:"interval_cycles"`
	Slices         int    `json:"slices"`
	BoundCycles    uint64 `json:"bound_cycles"`
	OverheadCycles uint64 `json:"overhead_cycles"`
}

// JSON converts a result to its wire shape.
func (r *Result) JSON() ResultJSON {
	out := ResultJSON{
		PatchedAsm:      r.Asm,
		Rounds:          make([]RoundJSON, 0, len(r.Rounds)),
		Targeted:        overheadsJSON(r.Overheads.Targeted),
		AlwaysOn:        overheadsJSON(r.Overheads.AlwaysOn),
		ReductionFactor: r.Overheads.ReductionFactor,
		Report:          r.Report.JSON(),
	}
	for _, rr := range r.Rounds {
		out.Rounds = append(out.Rounds, RoundJSON{
			Round:             rr.Round,
			MaskedStores:      rr.MaskedStores,
			Violations:        rr.Violations,
			ViolatingStorePCs: rr.ViolatingPCs,
			NewlyFlagged:      rr.NewlyFlagged,
			Verdict:           rr.Verdict.String(),
		})
	}
	for _, um := range r.Unmaskable {
		out.Unmaskable = append(out.Unmaskable, UnmaskableJSON{Line: um.Line, Text: um.Text})
	}
	return out
}

// Validate cross-checks a decoded wire result the way ReportJSON.Report
// does for analysis results: the embedded report must re-derive its
// verdict, the final round's verdict must match it, and the counters must
// be internally consistent. It is the fail-closed gate on every store read.
func (rj *ResultJSON) Validate() error {
	if _, err := rj.Report.Report(); err != nil {
		return fmt.Errorf("repair result: embedded report: %w", err)
	}
	if len(rj.Rounds) == 0 {
		return fmt.Errorf("repair result: no rounds")
	}
	last := rj.Rounds[len(rj.Rounds)-1]
	if last.Verdict != rj.Report.Verdict {
		return fmt.Errorf("repair result: final round verdict %q != report verdict %q",
			last.Verdict, rj.Report.Verdict)
	}
	for i, r := range rj.Rounds {
		if r.Round != i {
			return fmt.Errorf("repair result: round %d recorded as %d", i, r.Round)
		}
	}
	return nil
}

func overheadsJSON(o transform.Overheads) OverheadsJSON {
	out := OverheadsJSON{
		BaseCycles:      o.BaseCycles,
		MaskedStores:    o.MaskedStores,
		MaskCycles:      o.MaskCycles,
		Watchdog:        o.Watchdog,
		ProtectedCycles: o.ProtectedCycles,
		OverheadPercent: o.Percent(),
	}
	if o.Watchdog {
		out.WdtPlan = &WdtPlanJSON{
			IntervalCycles: o.WdtPlanUsed.IntervalCycles,
			Slices:         o.WdtPlanUsed.Slices,
			BoundCycles:    o.WdtPlanUsed.BoundCycles,
			OverheadCycles: o.WdtPlanUsed.OverheadCycles,
		}
	}
	return out
}
