// Package repair is the paper's iterative software-refactoring toolflow
// (Figures 10 and 11) as a reusable library: analyze an application against
// an information flow policy, map every violating store PC back to its
// root-cause source line, insert address-masking instruction pairs before
// those stores, reassemble, and re-verify — repeating because fixing a
// primary violation removes the conservative violations it induced — until
// the analysis stops reporting maskable escapes or the round budget runs
// out. The cmd/secure430 CLI and the gliftd repair-job mode both run
// exactly this loop, so their patched assembly is byte-identical for
// identical inputs by construction.
//
// Alongside the patched program the loop reports the paper's headline
// comparison (Table 3): the overhead of the targeted protections the
// analysis proved necessary versus the "always on" baseline that masks
// every maskable store and unconditionally arms the watchdog bound.
package repair

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/transform"
)

// Defaults for zero Spec fields.
const (
	// DefaultMaxRounds bounds the analyze/mask/re-verify iteration; every
	// round masks at least one new store, so the bound is rarely reached.
	DefaultMaxRounds = 8
	// DefaultTaskCycles is the nominal unprotected task period used for the
	// overhead comparison when the submitter does not measure one. The
	// comparison is deterministic arithmetic either way; the default only
	// anchors the percentages.
	DefaultTaskCycles = 1000
	// MaskCyclesPerStore is the static cost model for one executed AND/BIS
	// mask pair (the same model the benchmark pipeline plans watchdog
	// slices with; Section 7.2).
	MaskCyclesPerStore = 4
)

// Spec describes one repair run.
type Spec struct {
	// Source is the application's assembly text. Every round re-parses it
	// fresh and re-inserts the cumulative mask set, so the patched output
	// preserves the original statement order, labels and comments.
	Source string
	// Policy is the information flow policy. When CodeRanges is non-empty
	// its TaintedCode field is overwritten every round with the ranges
	// re-resolved against that round's image (mask insertion moves code;
	// symbols keep their names).
	Policy glift.Policy
	// CodeRanges lists "lo:hi" tainted-code specs, each endpoint a symbol
	// of the program or a hex/decimal address, re-resolved per round.
	CodeRanges []string
	// Partition is the tainted data partition masked stores are pinned
	// into (zero value: 0x0400:0x0400, the benchmark default).
	Partition transform.Partition
	// MaxRounds bounds the iteration (0: DefaultMaxRounds).
	MaxRounds int
	// TaskCycles is the unprotected task period for the overhead
	// comparison (0: DefaultTaskCycles).
	TaskCycles uint64
	// Options are the engine options each round's analysis runs with
	// (nil: engine defaults). The per-round Progress hook installed
	// through RoundProgress takes precedence over Options.Progress.
	Options *glift.Options
	// OnRound, when set, receives each completed round record in order —
	// the hook the CLI prints its per-round lines from and the daemon
	// publishes round-boundary stream events from.
	OnRound func(Round)
	// RoundProgress, when set, is called at each round's start and its
	// result installed as that round's engine Progress hook — one fresh
	// observer per engine run, so cumulative-to-delta metric conversion
	// never sees a counter reset.
	RoundProgress func(round int) func(glift.Progress)
}

// Round records one analyze/mask/re-verify iteration.
type Round struct {
	// Round is the 0-based iteration index.
	Round int
	// MaskedStores is the number of stores masked in this round's build
	// (cumulative: each round rebuilds from the original source with every
	// line flagged so far).
	MaskedStores int
	// Violations is the total violation count this round's analysis
	// reported.
	Violations int
	// ViolatingPCs is how many distinct violating store PCs (C2 memory
	// escapes) the analysis reported.
	ViolatingPCs int
	// NewlyFlagged is how many new source lines this round added to the
	// mask set; zero means the loop has converged.
	NewlyFlagged int
	// Verdict is this round's analysis verdict.
	Verdict glift.Verdict
	// Stats are this round's exploration statistics.
	Stats glift.Stats
	// Unmaskable lists stores the analysis flagged that cannot be masked
	// (not register-indexed stores); they need a source change (Footnote 6).
	Unmaskable []Unmaskable
}

// Unmaskable is one flagged store the transform layer cannot mask.
type Unmaskable struct {
	// Line is the store's source line.
	Line int
	// Text is the trimmed statement text.
	Text string
}

// Comparison is the targeted-versus-always-on overhead gap (Table 3).
type Comparison struct {
	// Targeted is the cost of only the protections the analysis proved
	// necessary: the masks actually inserted, plus the watchdog bound only
	// when tainted control flow remains.
	Targeted transform.Overheads
	// AlwaysOn is the no-application-knowledge baseline: every maskable
	// store masked and the watchdog bound always armed.
	AlwaysOn transform.Overheads
	// ReductionFactor is AlwaysOn overhead percent over Targeted overhead
	// percent (0 when the targeted overhead is zero) — the paper's 3.3x
	// headline shape.
	ReductionFactor float64
}

// Result is one completed repair run.
type Result struct {
	// Stmts is the final (patched) statement list.
	Stmts []asm.Stmt
	// Asm is the printed patched assembly — the byte-identity unit of the
	// CLI/daemon differential contract.
	Asm string
	// Report is the final round's analysis report; its verdict is the
	// run's verdict (fail-closed: an Incomplete round stops the loop and
	// proves nothing about the patched program).
	Report *glift.Report
	// Rounds records every iteration in order.
	Rounds []Round
	// Unmaskable aggregates the flagged-but-unmaskable stores across all
	// rounds, deduplicated by source line in first-seen order.
	Unmaskable []Unmaskable
	// Overheads is the targeted-versus-always-on comparison.
	Overheads Comparison
}

// Validate checks a spec without running the engine: the source must parse
// and assemble, the partition must be well-formed, and every code-range
// spec must resolve against the unpatched image. Errors are user errors
// (the HTTP 400 / CLI exit 2 class).
func (s *Spec) Validate() error {
	if strings.TrimSpace(s.Source) == "" {
		return fmt.Errorf("repair: empty source")
	}
	if err := s.partition().Validate(); err != nil {
		return err
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("repair: negative max rounds")
	}
	stmts, err := asm.Parse(s.Source)
	if err != nil {
		return err
	}
	img, err := asm.Assemble(stmts)
	if err != nil {
		return err
	}
	if _, err := ResolveRanges(s.CodeRanges, img); err != nil {
		return err
	}
	return nil
}

func (s *Spec) partition() transform.Partition {
	if s.Partition == (transform.Partition{}) {
		return transform.Partition{Lo: 0x0400, Size: 0x0400}
	}
	return s.Partition
}

func (s *Spec) maxRounds() int {
	if s.MaxRounds <= 0 {
		return DefaultMaxRounds
	}
	return s.MaxRounds
}

func (s *Spec) taskCycles() uint64 {
	if s.TaskCycles == 0 {
		return DefaultTaskCycles
	}
	return s.TaskCycles
}

// Run executes the repair loop. A non-nil error is a user/input error
// (unparseable source, unresolvable range, invalid partition); analysis
// outcomes — including cancellation and budget exhaustion, which surface as
// an Incomplete final verdict — are reported through Result.Report.
func Run(ctx context.Context, spec *Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	partition := spec.partition()

	flaggedLines := map[int]bool{}
	res := &Result{}
	seenUnmaskable := map[int]bool{}
	var finalStmts []asm.Stmt
	var rep *glift.Report
	maskedFinal := 0
	for round := 0; round < spec.maxRounds(); round++ {
		stmts, err := asm.Parse(spec.Source) // fresh copy each round
		if err != nil {
			return nil, err
		}
		flagged := map[int]bool{}
		for i := range stmts {
			if flaggedLines[stmts[i].Line] {
				flagged[i] = true
			}
		}
		masked := 0
		if len(flagged) > 0 {
			stmts, masked, err = transform.InsertMasks(stmts, flagged, partition)
			if err != nil {
				return nil, err
			}
		}
		img, err := asm.Assemble(stmts)
		if err != nil {
			return nil, err
		}
		// The tainted-code symbols keep their names across mask insertion,
		// so re-resolve the policy ranges from the new image.
		pol := spec.Policy
		if len(spec.CodeRanges) > 0 {
			if pol.TaintedCode, err = ResolveRanges(spec.CodeRanges, img); err != nil {
				return nil, err
			}
		}
		var opts glift.Options
		if spec.Options != nil {
			opts = *spec.Options
		}
		if spec.RoundProgress != nil {
			opts.Progress = spec.RoundProgress(round)
		}
		rep, err = glift.AnalyzeContext(ctx, img, &pol, &opts)
		if err != nil {
			return nil, err
		}
		pcs := rep.ViolatingStorePCs()
		rr := Round{
			Round:        round,
			MaskedStores: masked,
			Violations:   len(rep.Violations),
			ViolatingPCs: len(pcs),
			Verdict:      rep.Verdict(),
			Stats:        rep.Stats,
		}
		finalStmts, maskedFinal = stmts, masked
		if v := rr.Verdict; v == glift.Incomplete || v == glift.InternalError {
			// A truncated or crashed analysis proves nothing: repairing
			// against its violation list would be guesswork, so stop here
			// and let the verdict drive the outcome.
			res.Rounds = append(res.Rounds, rr)
			if spec.OnRound != nil {
				spec.OnRound(rr)
			}
			break
		}
		progress := false
		for _, pc := range pcs {
			si, ok := img.AddrToStmt[pc]
			if !ok {
				continue
			}
			st := img.Stmts[si]
			if st.Line == 0 {
				continue // an inserted mask instruction cannot be the root cause
			}
			if _, maskable := transform.MaskableStoreTarget(&st); !maskable {
				um := Unmaskable{Line: st.Line, Text: strings.TrimSpace(st.String())}
				rr.Unmaskable = append(rr.Unmaskable, um)
				if !seenUnmaskable[st.Line] {
					seenUnmaskable[st.Line] = true
					res.Unmaskable = append(res.Unmaskable, um)
				}
				continue
			}
			if !flaggedLines[st.Line] {
				flaggedLines[st.Line] = true
				rr.NewlyFlagged++
				progress = true
			}
		}
		res.Rounds = append(res.Rounds, rr)
		if spec.OnRound != nil {
			spec.OnRound(rr)
		}
		if !progress {
			break
		}
	}

	res.Stmts = finalStmts
	res.Asm = asm.Print(finalStmts)
	res.Report = rep
	res.Overheads = compareOverheads(spec, rep, maskedFinal)
	return res, nil
}

// compareOverheads builds the Table 3 comparison with the static cost model
// the benchmark pipeline plans with: each masked store adds
// MaskCyclesPerStore executed cycles to the task period, and an armed
// watchdog stretches the period to its plan's deterministic bound. The
// targeted column arms the watchdog only when the final analysis says
// tainted control flow remains; the always-on column masks every maskable
// store in the program and always arms it.
func compareOverheads(spec *Spec, rep *glift.Report, targetedMasks int) Comparison {
	base := spec.taskCycles()
	cmp := Comparison{
		Targeted: overheadsFor(base, targetedMasks, rep != nil && rep.NeedsWatchdog()),
	}
	allMasks := 0
	if stmts, err := asm.Parse(spec.Source); err == nil {
		allMasks = len(transform.MaskableStoreIdxs(stmts))
	}
	cmp.AlwaysOn = overheadsFor(base, allMasks, true)
	if tp := cmp.Targeted.Percent(); tp > 0 {
		cmp.ReductionFactor = cmp.AlwaysOn.Percent() / tp
	}
	return cmp
}

// overheadsFor prices one protection configuration.
func overheadsFor(base uint64, masks int, watchdog bool) transform.Overheads {
	o := transform.Overheads{
		BaseCycles:   base,
		MaskedStores: masks,
		MaskCycles:   MaskCyclesPerStore * uint64(masks),
		Watchdog:     watchdog,
	}
	o.ProtectedCycles = base + o.MaskCycles
	if watchdog {
		o.WdtPlanUsed = transform.PlanWatchdog(o.ProtectedCycles)
		o.ProtectedCycles = o.WdtPlanUsed.BoundCycles
	}
	return o
}

// ParsePartition parses a "base:size" partition spec (hex or decimal, size
// a power of two, base size-aligned) — the secure430 -partition syntax and
// the repair request's partition field.
func ParsePartition(s string) (transform.Partition, error) {
	lo, size, ok := strings.Cut(s, ":")
	if !ok {
		return transform.Partition{}, fmt.Errorf("bad partition %q (want base:size)", s)
	}
	l, err := strconv.ParseUint(strings.ToLower(lo), 0, 16)
	if err != nil {
		return transform.Partition{}, err
	}
	sz, err := strconv.ParseUint(strings.ToLower(size), 0, 17)
	if err != nil {
		return transform.Partition{}, err
	}
	p := transform.Partition{Lo: uint16(l), Size: uint16(sz)}
	return p, p.Validate()
}

// ParsePorts parses a comma-separated list of 1-based port numbers into the
// 0-based indices policies use (the secure430/gliftcheck -tainted-in
// syntax).
func ParsePorts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 || n > 4 {
			return nil, fmt.Errorf("bad port %q (want 1-4)", part)
		}
		out = append(out, n-1)
	}
	return out, nil
}

// SplitRangeList splits a comma-separated "lo:hi,lo:hi" flag value into
// individual range specs ("" yields nil).
func SplitRangeList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

// ResolveRanges resolves "lo:hi" specs against an image: each endpoint is a
// symbol of the image or a hex/decimal address.
func ResolveRanges(specs []string, img *asm.Image) ([]glift.AddrRange, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	out := make([]glift.AddrRange, 0, len(specs))
	for _, spec := range specs {
		lo, hi, ok := strings.Cut(strings.TrimSpace(spec), ":")
		if !ok {
			return nil, fmt.Errorf("bad range %q (want lo:hi)", spec)
		}
		l, err := Resolve(lo, img)
		if err != nil {
			return nil, err
		}
		h, err := Resolve(hi, img)
		if err != nil {
			return nil, err
		}
		out = append(out, glift.AddrRange{Lo: l, Hi: h})
	}
	return out, nil
}

// Resolve maps one range endpoint to an address: image symbols win, then
// hex/decimal literals.
func Resolve(s string, img *asm.Image) (uint16, error) {
	if v, ok := img.Symbol(s); ok {
		return v, nil
	}
	n, err := strconv.ParseUint(strings.ToLower(s), 0, 16)
	if err != nil {
		return 0, fmt.Errorf("cannot resolve %q as a symbol or address", s)
	}
	return uint16(n), nil
}
