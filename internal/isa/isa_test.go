package isa

import (
	"math/rand"
	"testing"
)

func TestRegString(t *testing.T) {
	if PC.String() != "pc" || SP.String() != "sp" || SR.String() != "sr" || Reg(7).String() != "r7" {
		t.Fatal("register names wrong")
	}
}

func TestOpcodeClasses(t *testing.T) {
	if !MOV.IsFmt1() || !AND.IsFmt1() || RRC.IsFmt1() {
		t.Fatal("IsFmt1 wrong")
	}
	if !RRC.IsFmt2() || !RETI.IsFmt2() || JNE.IsFmt2() || AND.IsFmt2() {
		t.Fatal("IsFmt2 wrong")
	}
	if !JNE.IsJump() || !JMP.IsJump() || RETI.IsJump() {
		t.Fatal("IsJump wrong")
	}
	if CMP.WritesDst() || BIT.WritesDst() || !ADD.WritesDst() {
		t.Fatal("WritesDst wrong")
	}
	if MOV.SetsFlags() || BIS.SetsFlags() || !ADD.SetsFlags() || !CMP.SetsFlags() || JMP.SetsFlags() {
		t.Fatal("SetsFlags wrong")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: MOV, Src: 4, As: ModeReg, Dst: 5},
		{Op: ADD, Src: PC, As: ModeIncr, SrcExt: 0x1234, Dst: 10},                  // add #0x1234, r10
		{Op: MOV, Src: 4, As: ModeIndexed, SrcExt: 6, Dst: 5},                      // mov 6(r4), r5
		{Op: MOV, Src: SR, As: ModeIndexed, SrcExt: 0x200, Dst: 5},                 // mov &0x200, r5
		{Op: MOV, Src: 4, As: ModeReg, Dst: 5, Ad: 1, DstExt: 8},                   // mov r4, 8(r5)
		{Op: MOV, Src: PC, As: ModeIncr, SrcExt: 7, Dst: SR, Ad: 1, DstExt: 0x210}, // mov #7, &0x210
		{Op: CMP, Src: CG, As: ModeIndexed, Dst: 9},                                // cmp #1, r9
		{Op: AND, BW: true, Src: 6, As: ModeIndirect, Dst: 7},                      // and.b @r6, r7
		{Op: XOR, Src: 8, As: ModeIncr, Dst: 9},                                    // xor @r8+, r9
		{Op: RRA, Src: 12, As: ModeReg},
		{Op: PUSH, Src: 10, As: ModeReg},
		{Op: PUSH, Src: PC, As: ModeIncr, SrcExt: 0xbeef}, // push #0xbeef
		{Op: CALL, Src: PC, As: ModeIncr, SrcExt: 0xf100}, // call #0xf100
		{Op: RETI},
		{Op: JMP, Off: -3},
		{Op: JNE, Off: 200},
		{Op: JL, Off: -512},
	}
	for _, in := range cases {
		words, err := in.Encode()
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		got, n, err := Decode(words)
		if err != nil {
			t.Fatalf("decode %v: %v", words, err)
		}
		if n != len(words) {
			t.Fatalf("%s: consumed %d of %d words", in.String(), n, len(words))
		}
		// Normalize: decode of fmt2 mirrors Src into Dst.
		if in.Op.IsFmt2() && in.Op != RETI {
			in.Dst = in.Src
		}
		if got != in {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, got)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	bad := []Instr{
		{Op: JMP, Off: 600},
		{Op: JMP, Off: -600},
		{Op: SWPB, BW: true, Src: 4},
		{Op: SXT, BW: true, Src: 4},
		{Op: numOpcodes},
	}
	for _, in := range bad {
		if _, err := in.Encode(); err == nil {
			t.Errorf("encode %+v should fail", in)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]uint16{
		{},       // empty
		{0x0000}, // undefined
		{0x1380}, // fmt II opcode 7
		{0x4010}, // mov x(r0),... missing ext word
		{0x4090}, // mov x(r0), 2(r0) missing second ext
	}
	for _, ws := range cases {
		if _, _, err := Decode(ws); err == nil {
			t.Errorf("decode %#v should fail", ws)
		}
	}
}

func TestDecodeJumpOffsetSignExtension(t *testing.T) {
	in := Instr{Op: JMP, Off: -1}
	ws, _ := in.Encode()
	got, _, err := Decode(ws)
	if err != nil || got.Off != -1 {
		t.Fatalf("jmp -1 decoded to %+v, %v", got, err)
	}
}

func TestConstantGenerator(t *testing.T) {
	cases := []struct {
		r    Reg
		as   AMode
		want uint16
	}{
		{CG, ModeReg, 0}, {CG, ModeIndexed, 1}, {CG, ModeIndirect, 2}, {CG, ModeIncr, 0xffff},
		{SR, ModeIndirect, 4}, {SR, ModeIncr, 8},
	}
	for _, c := range cases {
		if !isCG(c.r, c.as) {
			t.Errorf("isCG(%s,%d) = false", c.r, c.as)
		}
		if got := cgValue(c.r, c.as); got != c.want {
			t.Errorf("cgValue(%s,%d) = %d, want %d", c.r, c.as, got, c.want)
		}
	}
	if isCG(SR, ModeReg) || isCG(SR, ModeIndexed) || isCG(4, ModeIncr) {
		t.Error("isCG false positives")
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: MOV, Src: 4, As: ModeReg, Dst: 5}, "mov r4, r5"},
		{Instr{Op: ADD, BW: true, Src: 6, As: ModeIndirect, Dst: 7}, "add.b @r6, r7"},
		{Instr{Op: MOV, Src: PC, As: ModeIncr, SrcExt: 0x64, Dst: 10}, "mov #0x0064, r10"},
		{Instr{Op: CMP, Src: CG, As: ModeIndexed, Dst: 9}, "cmp #1, r9"},
		{Instr{Op: MOV, Src: SR, As: ModeIndexed, SrcExt: 0x120, Dst: 4}, "mov &0x0120, r4"},
		{Instr{Op: PUSH, Src: 10, As: ModeReg}, "push r10"},
		{Instr{Op: RETI}, "reti"},
		{Instr{Op: JNE, Off: -5}, "jne -5"},
		{Instr{Op: MOV, Src: CG, As: ModeIncr, Dst: 5}, "mov #-1, r5"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}

// Property: every encodable instruction decodes to itself.
func TestPropertyEncodeDecodeFuzz(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		var in Instr
		switch rnd.Intn(3) {
		case 0:
			in.Op = MOV + Opcode(rnd.Intn(12))
			in.Src = Reg(rnd.Intn(16))
			in.As = AMode(rnd.Intn(4))
			in.Dst = Reg(rnd.Intn(16))
			in.Ad = AMode(rnd.Intn(2))
			in.BW = rnd.Intn(2) == 0
		case 1:
			in.Op = RRC + Opcode(rnd.Intn(6)) // skip RETI (fields must be 0)
			in.Src = Reg(rnd.Intn(16))
			in.As = AMode(rnd.Intn(4))
			in.BW = rnd.Intn(2) == 0 && in.Op != SWPB && in.Op != SXT && in.Op != CALL
		default:
			in.Op = JNE + Opcode(rnd.Intn(8))
			in.Off = int16(rnd.Intn(1024) - 512)
		}
		if in.SrcUsesExt() {
			in.SrcExt = uint16(rnd.Uint32())
		}
		if in.DstUsesExt() {
			in.DstExt = uint16(rnd.Uint32())
		}
		words, err := in.Encode()
		if err != nil {
			continue
		}
		got, n, err := Decode(words)
		if err != nil {
			t.Fatalf("decode of encoded %q failed: %v", in.String(), err)
		}
		want := in
		if want.Op.IsFmt2() {
			want.Dst = want.Src
		}
		if got != want || n != len(words) {
			t.Fatalf("fuzz mismatch:\n in: %+v\nout: %+v", want, got)
		}
	}
}

func TestCyclesFor(t *testing.T) {
	cases := []struct {
		in   Instr
		want int
	}{
		{Instr{Op: MOV, Src: 4, As: ModeReg, Dst: 5}, 1},
		{Instr{Op: MOV, Src: PC, As: ModeIncr, Dst: 5}, 2},          // #imm
		{Instr{Op: MOV, Src: CG, As: ModeIncr, Dst: 5}, 1},          // #-1 via CG
		{Instr{Op: MOV, Src: 4, As: ModeIndexed, Dst: 5}, 2},        // x(r4), r5
		{Instr{Op: MOV, Src: 4, As: ModeReg, Dst: 5, Ad: 1}, 2},     // r4, x(r5)
		{Instr{Op: MOV, Src: 4, As: ModeIndexed, Dst: 5, Ad: 1}, 3}, // x(r4), y(r5)
		{Instr{Op: PUSH, Src: 10, As: ModeReg}, 2},
		{Instr{Op: PUSH, Src: PC, As: ModeIncr}, 3},
		{Instr{Op: CALL, Src: PC, As: ModeIncr}, 3},
		{Instr{Op: RETI}, 3},
		{Instr{Op: JMP}, 1},
		{Instr{Op: RRA, Src: 4, As: ModeReg}, 1},
		{Instr{Op: RRA, Src: 4, As: ModeIndirect}, 3}, // read + write back
	}
	for _, c := range cases {
		if got := CyclesFor(&c.in); got != c.want {
			t.Errorf("CyclesFor(%s) = %d, want %d", c.in.String(), got, c.want)
		}
	}
}
