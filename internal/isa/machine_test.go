package isa

import "testing"

// run assembles (by hand-encoding) a program at ROMStart, points the reset
// vector at it, resets the machine and steps n instructions.
func run(t *testing.T, n int, prog ...Instr) *Machine {
	t.Helper()
	mem := new(FlatMem)
	addr := uint16(ROMStart)
	for i := range prog {
		ws, err := prog[i].Encode()
		if err != nil {
			t.Fatalf("encode %v: %v", prog[i], err)
		}
		mem.LoadProgram(addr, ws)
		addr += uint16(2 * len(ws))
	}
	mem.StoreWord(ResetVec, ROMStart)
	m := NewMachine(mem)
	m.Reset()
	for i := 0; i < n; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	return m
}

func imm(v uint16, dst Reg) Instr {
	return Instr{Op: MOV, Src: PC, As: ModeIncr, SrcExt: v, Dst: dst}
}

func TestMovImmediate(t *testing.T) {
	m := run(t, 1, imm(0x1234, 5))
	if m.R[5] != 0x1234 {
		t.Fatalf("r5 = %#x", m.R[5])
	}
	if m.R[PC] != ROMStart+4 {
		t.Fatalf("pc = %#x", m.R[PC])
	}
}

func TestAddSetsFlags(t *testing.T) {
	m := run(t, 3, imm(0x7fff, 4), imm(1, 5), Instr{Op: ADD, Src: 4, As: ModeReg, Dst: 5})
	if m.R[5] != 0x8000 {
		t.Fatalf("r5 = %#x", m.R[5])
	}
	if !m.flag(FlagN) || m.flag(FlagZ) || m.flag(FlagC) || !m.flag(FlagV) {
		t.Fatalf("flags = %#x, want N,V", m.R[SR])
	}
}

func TestSubAndCarryIsNotBorrow(t *testing.T) {
	// 5 - 3 = 2, C=1 (no borrow)
	m := run(t, 3, imm(5, 4), imm(3, 5), Instr{Op: SUB, Src: 5, As: ModeReg, Dst: 4})
	if m.R[4] != 2 || !m.flag(FlagC) || m.flag(FlagN) {
		t.Fatalf("r4=%#x sr=%#x", m.R[4], m.R[SR])
	}
	// 3 - 5 borrows: C=0, N=1
	m = run(t, 3, imm(3, 4), imm(5, 5), Instr{Op: SUB, Src: 5, As: ModeReg, Dst: 4})
	if m.R[4] != 0xfffe || m.flag(FlagC) || !m.flag(FlagN) {
		t.Fatalf("r4=%#x sr=%#x", m.R[4], m.R[SR])
	}
}

func TestCmpDoesNotWrite(t *testing.T) {
	m := run(t, 3, imm(7, 4), imm(7, 5), Instr{Op: CMP, Src: 5, As: ModeReg, Dst: 4})
	if m.R[4] != 7 {
		t.Fatalf("cmp modified r4 = %#x", m.R[4])
	}
	if !m.flag(FlagZ) {
		t.Fatal("cmp equal should set Z")
	}
}

func TestLogicOpsAndFlags(t *testing.T) {
	m := run(t, 3, imm(0xf0f0, 4), imm(0xff00, 5), Instr{Op: AND, Src: 4, As: ModeReg, Dst: 5})
	if m.R[5] != 0xf000 || !m.flag(FlagC) || !m.flag(FlagN) || m.flag(FlagZ) {
		t.Fatalf("and: r5=%#x sr=%#x", m.R[5], m.R[SR])
	}
	m = run(t, 3, imm(0xf0f0, 4), imm(0x0f0f, 5), Instr{Op: AND, Src: 4, As: ModeReg, Dst: 5})
	if m.R[5] != 0 || m.flag(FlagC) || !m.flag(FlagZ) {
		t.Fatalf("and zero: r5=%#x sr=%#x", m.R[5], m.R[SR])
	}
	m = run(t, 3, imm(0x00ff, 4), imm(0x0f0f, 5), Instr{Op: BIC, Src: 4, As: ModeReg, Dst: 5})
	if m.R[5] != 0x0f00 {
		t.Fatalf("bic: r5=%#x", m.R[5])
	}
	m = run(t, 3, imm(0x00ff, 4), imm(0x0f00, 5), Instr{Op: BIS, Src: 4, As: ModeReg, Dst: 5})
	if m.R[5] != 0x0fff {
		t.Fatalf("bis: r5=%#x", m.R[5])
	}
	m = run(t, 3, imm(0x8001, 4), imm(0x8000, 5), Instr{Op: XOR, Src: 4, As: ModeReg, Dst: 5})
	if m.R[5] != 1 || !m.flag(FlagV) || !m.flag(FlagC) {
		t.Fatalf("xor: r5=%#x sr=%#x", m.R[5], m.R[SR])
	}
}

func TestByteOps(t *testing.T) {
	// add.b with carry out of bit 7, and upper-byte clearing on register dst.
	m := run(t, 3, imm(0x12f0, 4), imm(0x3420, 5), Instr{Op: ADD, BW: true, Src: 4, As: ModeReg, Dst: 5})
	if m.R[5] != 0x0010 {
		t.Fatalf("add.b: r5=%#x, want 0x0010", m.R[5])
	}
	if !m.flag(FlagC) {
		t.Fatal("add.b should carry out of bit 7")
	}
}

func TestMemoryIndexedStoreLoad(t *testing.T) {
	m := run(t, 4,
		imm(0x0300, 4),
		imm(0xbeef, 5),
		Instr{Op: MOV, Src: 5, As: ModeReg, Dst: 4, Ad: 1, DstExt: 8}, // mov r5, 8(r4)
		Instr{Op: MOV, Src: 4, As: ModeIndexed, SrcExt: 8, Dst: 6},    // mov 8(r4), r6
	)
	if m.R[6] != 0xbeef {
		t.Fatalf("r6 = %#x", m.R[6])
	}
	if m.Bus.LoadWord(0x0308) != 0xbeef {
		t.Fatal("memory not written")
	}
}

func TestAbsoluteMode(t *testing.T) {
	m := run(t, 2,
		Instr{Op: MOV, Src: PC, As: ModeIncr, SrcExt: 0x1234, Dst: SR, Ad: 1, DstExt: 0x0400}, // mov #x, &0x400
		Instr{Op: MOV, Src: SR, As: ModeIndexed, SrcExt: 0x0400, Dst: 7},                      // mov &0x400, r7
	)
	if m.R[7] != 0x1234 {
		t.Fatalf("r7 = %#x", m.R[7])
	}
}

func TestAutoIncrement(t *testing.T) {
	m := run(t, 4,
		Instr{Op: MOV, Src: PC, As: ModeIncr, SrcExt: 0xaaaa, Dst: SR, Ad: 1, DstExt: 0x0300},
		Instr{Op: MOV, Src: PC, As: ModeIncr, SrcExt: 0xbbbb, Dst: SR, Ad: 1, DstExt: 0x0302},
		imm(0x0300, 4),
		Instr{Op: MOV, Src: 4, As: ModeIncr, Dst: 5}, // mov @r4+, r5
	)
	if m.R[5] != 0xaaaa || m.R[4] != 0x0302 {
		t.Fatalf("r5=%#x r4=%#x", m.R[5], m.R[4])
	}
}

func TestByteAutoIncrementStep(t *testing.T) {
	m := run(t, 2, imm(0x0300, 4), Instr{Op: MOV, BW: true, Src: 4, As: ModeIncr, Dst: 5})
	if m.R[4] != 0x0301 {
		t.Fatalf("byte @r4+ stepped to %#x, want 0x0301", m.R[4])
	}
}

func TestJumps(t *testing.T) {
	// jz taken: skip the poison instruction.
	m := run(t, 4,
		imm(0, 4),
		Instr{Op: CMP, Src: CG, As: ModeReg, Dst: 4}, // cmp #0, r4
		Instr{Op: JEQ, Off: 1},
		imm(0xdead, 5), // skipped
	)
	if m.R[5] == 0xdead {
		t.Fatal("jeq not taken")
	}
	// jne not taken: poison executes.
	m = run(t, 4,
		imm(0, 4),
		Instr{Op: CMP, Src: CG, As: ModeReg, Dst: 4},
		Instr{Op: JNE, Off: 1},
		imm(0xdead, 5),
	)
	if m.R[5] != 0xdead {
		t.Fatal("jne should fall through")
	}
}

func TestSignedJumps(t *testing.T) {
	// -1 < 1 signed: JL taken.
	m := run(t, 4,
		imm(0xffff, 4),
		Instr{Op: CMP, Src: CG, As: ModeIndexed, Dst: 4}, // cmp #1, r4
		Instr{Op: JL, Off: 1},
		imm(0xdead, 5),
	)
	if m.R[5] == 0xdead {
		t.Fatal("jl should be taken for -1 < 1")
	}
}

func TestPushPopCallRet(t *testing.T) {
	m := run(t, 5,
		imm(0x0400, SP),
		imm(0x5678, 4),
		Instr{Op: PUSH, Src: 4, As: ModeReg},
		imm(0, 4),
		Instr{Op: MOV, Src: SP, As: ModeIncr, Dst: 4}, // pop r4
	)
	if m.R[4] != 0x5678 || m.R[SP] != 0x0400 {
		t.Fatalf("r4=%#x sp=%#x", m.R[4], m.R[SP])
	}
}

func TestCallAndReturn(t *testing.T) {
	mem := new(FlatMem)
	// main: mov #0x400, sp; call #0xf100; mov #1, r10 (after return)
	prog := []Instr{
		imm(0x0400, SP),
		{Op: CALL, Src: PC, As: ModeIncr, SrcExt: 0xf100},
		imm(1, 10),
	}
	addr := uint16(ROMStart)
	for i := range prog {
		ws, _ := prog[i].Encode()
		mem.LoadProgram(addr, ws)
		addr += uint16(2 * len(ws))
	}
	// sub at 0xf100: mov #7, r9 ; ret (mov @sp+, pc)
	sub := []Instr{
		imm(7, 9),
		{Op: MOV, Src: SP, As: ModeIncr, Dst: PC},
	}
	addr = 0xf100
	for i := range sub {
		ws, _ := sub[i].Encode()
		mem.LoadProgram(addr, ws)
		addr += uint16(2 * len(ws))
	}
	mem.StoreWord(ResetVec, ROMStart)
	m := NewMachine(mem)
	m.Reset()
	for i := 0; i < 5; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.R[9] != 7 || m.R[10] != 1 {
		t.Fatalf("r9=%#x r10=%#x", m.R[9], m.R[10])
	}
	if m.R[SP] != 0x0400 {
		t.Fatalf("sp leaked: %#x", m.R[SP])
	}
}

func TestFmt2Ops(t *testing.T) {
	m := run(t, 2, imm(0x8005, 4), Instr{Op: RRA, Src: 4, As: ModeReg})
	if m.R[4] != 0xc002 || !m.flag(FlagC) {
		t.Fatalf("rra: r4=%#x sr=%#x", m.R[4], m.R[SR])
	}
	m = run(t, 3, imm(1, 4), Instr{Op: RRA, Src: 4, As: ModeReg}, Instr{Op: RRC, Src: 4, As: ModeReg})
	if m.R[4] != 0x8000 {
		t.Fatalf("rrc: r4=%#x", m.R[4])
	}
	m = run(t, 2, imm(0x1234, 4), Instr{Op: SWPB, Src: 4, As: ModeReg})
	if m.R[4] != 0x3412 {
		t.Fatalf("swpb: r4=%#x", m.R[4])
	}
	m = run(t, 2, imm(0x0080, 4), Instr{Op: SXT, Src: 4, As: ModeReg})
	if m.R[4] != 0xff80 || !m.flag(FlagN) {
		t.Fatalf("sxt: r4=%#x sr=%#x", m.R[4], m.R[SR])
	}
}

func TestFmt2MemoryOperand(t *testing.T) {
	m := run(t, 3,
		Instr{Op: MOV, Src: PC, As: ModeIncr, SrcExt: 0x0004, Dst: SR, Ad: 1, DstExt: 0x0300},
		imm(0x0300, 4),
		Instr{Op: RRA, Src: 4, As: ModeIndirect}, // rra @r4
	)
	if got := m.Bus.LoadWord(0x0300); got != 0x0002 {
		t.Fatalf("rra @r4 result = %#x", got)
	}
}

func TestRETI(t *testing.T) {
	mem := new(FlatMem)
	// Pre-build a stack frame: SR then PC.
	mem.StoreWord(0x03fc, 0x0003) // saved SR
	mem.StoreWord(0x03fe, 0xf200) // saved PC
	prog := []Instr{
		imm(0x03fc, SP),
		{Op: RETI},
	}
	addr := uint16(ROMStart)
	for i := range prog {
		ws, _ := prog[i].Encode()
		mem.LoadProgram(addr, ws)
		addr += uint16(2 * len(ws))
	}
	mem.StoreWord(ResetVec, ROMStart)
	m := NewMachine(mem)
	m.Reset()
	for i := 0; i < 2; i++ {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.R[PC] != 0xf200 || m.R[SR] != 0x0003 || m.R[SP] != 0x0400 {
		t.Fatalf("pc=%#x sr=%#x sp=%#x", m.R[PC], m.R[SR], m.R[SP])
	}
}

func TestWriteToCGDiscarded(t *testing.T) {
	m := run(t, 1, imm(0x1234, CG))
	if m.R[CG] != 0 {
		t.Fatalf("r3 = %#x, want 0", m.R[CG])
	}
}

func TestBranchViaMovToPC(t *testing.T) {
	m := run(t, 1, imm(0xf800, PC)) // br #0xf800
	if m.R[PC] != 0xf800 {
		t.Fatalf("pc = %#x", m.R[PC])
	}
}

func TestSymbolicMode(t *testing.T) {
	// mov data(pc), r5 where data is 10 bytes past the extension word.
	mem := new(FlatMem)
	in := Instr{Op: MOV, Src: PC, As: ModeIndexed, SrcExt: 10, Dst: 5}
	ws, _ := in.Encode()
	mem.LoadProgram(ROMStart, ws)
	mem.StoreWord(ROMStart+2+10, 0xcafe)
	mem.StoreWord(ResetVec, ROMStart)
	m := NewMachine(mem)
	m.Reset()
	if _, err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.R[5] != 0xcafe {
		t.Fatalf("r5 = %#x", m.R[5])
	}
}

func TestCycleAccounting(t *testing.T) {
	m := run(t, 3,
		imm(5, 4), // 2 cycles
		Instr{Op: MOV, Src: 4, As: ModeReg, Dst: 5},                       // 1 cycle
		Instr{Op: MOV, Src: 4, As: ModeReg, Dst: 5, Ad: 1, DstExt: 0x300}, // 2 cycles
	)
	want := uint64(ResetCycles + 2 + 1 + 2)
	if m.Cycles != want {
		t.Fatalf("cycles = %d, want %d", m.Cycles, want)
	}
	if m.Insns != 3 {
		t.Fatalf("insns = %d", m.Insns)
	}
}

func TestStepDecodeError(t *testing.T) {
	mem := new(FlatMem)
	mem.StoreWord(ResetVec, ROMStart) // ROM is zeroed: opcode 0 is undefined
	m := NewMachine(mem)
	m.Reset()
	if _, err := m.Step(); err == nil {
		t.Fatal("expected decode error")
	}
}
