// Package isa defines the MSP430-class instruction set used throughout the
// reproduction: instruction formats, addressing modes, encoding/decoding, a
// disassembler, and a behavioural reference interpreter. The gate-level
// microcontroller in internal/mcu implements exactly these semantics; the
// interpreter is the oracle for differential testing.
//
// The ISA follows the MSP430 core instruction set: 12 two-operand (format
// I) instructions, 7 single-operand (format II) instructions and 8 relative
// jumps, with the standard 7 addressing modes and the R2/R3 constant
// generator. Deviation: DADD (BCD add) executes as a plain ADD; the
// assembler rejects it (documented in DESIGN.md).
package isa

import "fmt"

// Reg is a register number R0..R15. R0=PC, R1=SP, R2=SR/CG1, R3=CG2.
type Reg uint8

// Special registers.
const (
	PC Reg = 0
	SP Reg = 1
	SR Reg = 2
	CG Reg = 3
)

// String returns "pc", "sp", "sr", or "rN".
func (r Reg) String() string {
	switch r {
	case PC:
		return "pc"
	case SP:
		return "sp"
	case SR:
		return "sr"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Status register flag bits.
const (
	FlagC   uint16 = 1 << 0 // carry
	FlagZ   uint16 = 1 << 1 // zero
	FlagN   uint16 = 1 << 2 // negative
	FlagGIE uint16 = 1 << 3
	FlagV   uint16 = 1 << 8 // signed overflow
)

// Opcode enumerates all instructions across the three formats.
type Opcode uint8

// Format I (two-operand) opcodes, in encoding order starting at 0x4.
const (
	MOV Opcode = iota
	ADD
	ADDC
	SUBC
	SUB
	CMP
	DADD
	BIT
	BIC
	BIS
	XOR
	AND
	// Format II (single-operand) opcodes, in encoding order.
	RRC
	SWPB
	RRA
	SXT
	PUSH
	CALL
	RETI
	// Jump opcodes, in condition-code order.
	JNE
	JEQ
	JNC
	JC
	JN
	JGE
	JL
	JMP
	numOpcodes
)

var opcodeNames = [...]string{
	"mov", "add", "addc", "subc", "sub", "cmp", "dadd", "bit", "bic", "bis", "xor", "and",
	"rrc", "swpb", "rra", "sxt", "push", "call", "reti",
	"jne", "jeq", "jnc", "jc", "jn", "jge", "jl", "jmp",
}

// String returns the canonical lower-case mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// IsFmt1 reports whether o is a two-operand instruction.
func (o Opcode) IsFmt1() bool { return o <= AND }

// IsFmt2 reports whether o is a single-operand instruction.
func (o Opcode) IsFmt2() bool { return o >= RRC && o <= RETI }

// IsJump reports whether o is a conditional/unconditional jump.
func (o Opcode) IsJump() bool { return o >= JNE && o <= JMP }

// WritesDst reports whether a format I op writes its destination (CMP and
// BIT only set flags).
func (o Opcode) WritesDst() bool { return o != CMP && o != BIT }

// SetsFlags reports whether the op updates the status flags.
func (o Opcode) SetsFlags() bool {
	switch o {
	case MOV, BIC, BIS, SWPB, PUSH, CALL, RETI:
		return false
	}
	return !o.IsJump()
}

// AMode is a raw addressing mode field value (As: 0..3, Ad: 0..1).
type AMode uint8

// Source addressing modes (As field).
const (
	ModeReg      AMode = 0 // Rn
	ModeIndexed  AMode = 1 // X(Rn); R0: symbolic, R2: absolute
	ModeIndirect AMode = 2 // @Rn
	ModeIncr     AMode = 3 // @Rn+; R0: #immediate
)

// Instr is one decoded instruction.
type Instr struct {
	Op     Opcode
	BW     bool // byte (.b) operation
	Src    Reg
	As     AMode
	SrcExt uint16 // source extension word (imm/index), when used
	Dst    Reg
	Ad     AMode  // 0 or 1
	DstExt uint16 // destination extension word, when used
	Off    int16  // jump offset in words (PC-relative)
}

// SrcUsesExt reports whether the source operand consumes an extension word.
func (in *Instr) SrcUsesExt() bool {
	if in.Op.IsJump() || in.Op == RETI {
		return false
	}
	if isCG(in.Src, in.As) {
		return false
	}
	return in.As == ModeIndexed || (in.As == ModeIncr && in.Src == PC)
}

// DstUsesExt reports whether the destination operand consumes an extension
// word.
func (in *Instr) DstUsesExt() bool {
	return in.Op.IsFmt1() && in.Ad == 1
}

// Words returns the encoded length in 16-bit words.
func (in *Instr) Words() int {
	n := 1
	if in.SrcUsesExt() {
		n++
	}
	if in.DstUsesExt() {
		n++
	}
	return n
}

// isCG reports whether (reg, as) selects the constant generator rather than
// a real operand access.
func isCG(r Reg, as AMode) bool {
	if r == CG {
		return true
	}
	return r == SR && as >= ModeIndirect
}

// cgValue returns the generated constant for a constant-generator operand.
func cgValue(r Reg, as AMode) uint16 {
	if r == SR {
		if as == ModeIndirect {
			return 4
		}
		return 8
	}
	switch as {
	case ModeReg:
		return 0
	case ModeIndexed:
		return 1
	case ModeIndirect:
		return 2
	default:
		return 0xffff
	}
}

// Encode emits the instruction's machine words.
func (in *Instr) Encode() ([]uint16, error) {
	var w0 uint16
	switch {
	case in.Op.IsFmt1():
		w0 = uint16(4+in.Op-MOV) << 12
		w0 |= uint16(in.Src) << 8
		if in.Ad > 1 {
			return nil, fmt.Errorf("isa: bad Ad %d", in.Ad)
		}
		w0 |= uint16(in.Ad) << 7
		if in.BW {
			w0 |= 1 << 6
		}
		w0 |= uint16(in.As) << 4
		w0 |= uint16(in.Dst)
	case in.Op.IsFmt2():
		// The single operand lives in Src/As/SrcExt by convention.
		w0 = 0x1000 | uint16(in.Op-RRC)<<7
		if in.BW {
			if in.Op == SWPB || in.Op == SXT || in.Op == CALL || in.Op == RETI {
				return nil, fmt.Errorf("isa: %s has no byte form", in.Op)
			}
			w0 |= 1 << 6
		}
		w0 |= uint16(in.As) << 4
		w0 |= uint16(in.Src)
	case in.Op.IsJump():
		if in.Off < -512 || in.Off > 511 {
			return nil, fmt.Errorf("isa: jump offset %d out of range", in.Off)
		}
		w0 = 0x2000 | uint16(in.Op-JNE)<<10 | uint16(in.Off)&0x3ff
	default:
		return nil, fmt.Errorf("isa: bad opcode %d", in.Op)
	}
	words := []uint16{w0}
	if in.SrcUsesExt() {
		words = append(words, in.SrcExt)
	}
	if in.DstUsesExt() {
		words = append(words, in.DstExt)
	}
	return words, nil
}

// Decode decodes one instruction starting at words[0]; extension words are
// taken from the following entries. It returns the instruction and the
// number of words consumed.
func Decode(words []uint16) (Instr, int, error) {
	if len(words) == 0 {
		return Instr{}, 0, fmt.Errorf("isa: empty decode")
	}
	w0 := words[0]
	var in Instr
	switch {
	case w0>>13 == 1: // 001x: jump
		in.Op = JNE + Opcode(w0>>10&7)
		off := w0 & 0x3ff
		if off&0x200 != 0 {
			off |= 0xfc00
		}
		in.Off = int16(off)
		return in, 1, nil
	case w0>>10 == 4: // 000100: format II
		in.Op = RRC + Opcode(w0>>7&7)
		if in.Op > RETI {
			return Instr{}, 0, fmt.Errorf("isa: bad format II opcode in %#04x", w0)
		}
		in.BW = w0&0x40 != 0
		in.As = AMode(w0 >> 4 & 3)
		in.Dst = Reg(w0 & 15)
		// Format II operand is encoded in the destination fields but uses
		// source addressing; normalize so Src carries the operand register.
		in.Src = in.Dst
		n := 1
		if in.SrcUsesExt() {
			if len(words) < 2 {
				return Instr{}, 0, fmt.Errorf("isa: truncated extension word")
			}
			in.SrcExt = words[1]
			n = 2
		}
		return in, n, nil
	case w0>>12 >= 4: // format I
		in.Op = MOV + Opcode(w0>>12-4)
		in.Src = Reg(w0 >> 8 & 15)
		in.Ad = AMode(w0 >> 7 & 1)
		in.BW = w0&0x40 != 0
		in.As = AMode(w0 >> 4 & 3)
		in.Dst = Reg(w0 & 15)
		n := 1
		if in.SrcUsesExt() {
			if len(words) < n+1 {
				return Instr{}, 0, fmt.Errorf("isa: truncated src extension")
			}
			in.SrcExt = words[n]
			n++
		}
		if in.DstUsesExt() {
			if len(words) < n+1 {
				return Instr{}, 0, fmt.Errorf("isa: truncated dst extension")
			}
			in.DstExt = words[n]
			n++
		}
		return in, n, nil
	}
	return Instr{}, 0, fmt.Errorf("isa: undefined encoding %#04x", w0)
}

// srcString renders a source operand at the given extension-word address
// (for symbolic mode display).
func (in *Instr) srcString() string {
	return operandString(in.Src, in.As, in.SrcExt)
}

func operandString(r Reg, as AMode, ext uint16) string {
	if isCG(r, as) {
		return fmt.Sprintf("#%d", int16(cgValue(r, as)))
	}
	switch as {
	case ModeReg:
		return r.String()
	case ModeIndexed:
		if r == SR {
			return fmt.Sprintf("&%#04x", ext)
		}
		return fmt.Sprintf("%d(%s)", int16(ext), r)
	case ModeIndirect:
		return "@" + r.String()
	default:
		if r == PC {
			return fmt.Sprintf("#%#04x", ext)
		}
		return "@" + r.String() + "+"
	}
}

// String disassembles the instruction.
func (in *Instr) String() string {
	suffix := ""
	if in.BW {
		suffix = ".b"
	}
	switch {
	case in.Op.IsJump():
		return fmt.Sprintf("%s %+d", in.Op, in.Off)
	case in.Op == RETI:
		return "reti"
	case in.Op.IsFmt2():
		return fmt.Sprintf("%s%s %s", in.Op, suffix, in.srcString())
	default:
		dst := operandString(in.Dst, AMode(in.Ad), in.DstExt)
		return fmt.Sprintf("%s%s %s, %s", in.Op, suffix, in.srcString(), dst)
	}
}

// Memory map constants shared by the gate-level MCU, the behavioural system
// model and the benchmarks. Word-aligned MMIO, MSP430-flavoured layout.
const (
	AddrP1IN   = 0x0020
	AddrP1OUT  = 0x0022
	AddrP2IN   = 0x0024
	AddrP2OUT  = 0x0026
	AddrP3IN   = 0x0028
	AddrP3OUT  = 0x002a
	AddrP4IN   = 0x002c
	AddrP4OUT  = 0x002e
	AddrWDTCTL = 0x0120
	AddrTACTL  = 0x0160 // Timer_A-lite control: bit0 enable; any write clears TAIFG
	AddrTACCR0 = 0x0162 // Timer_A-lite compare value
	AddrTAR    = 0x0164 // Timer_A-lite counter (read-only)

	RAMStart = 0x0200
	RAMEnd   = 0x0a00 // 2 KiB of data memory
	ROMStart = 0xf000 // 4 KiB of program memory
	ResetVec = 0xfffe
	// TimerVec is the Timer_A-lite interrupt vector.
	TimerVec = 0xfff6

	// WDTPW is the watchdog password expected in the upper byte of any
	// WDTCTL write; a write with a wrong password triggers a POR.
	WDTPW = 0x5a00
	// WDTHold stops the watchdog counter.
	WDTHold = 0x0080
)

// WDTIntervals lists the selectable watchdog expiry intervals in cycles,
// indexed by the two WDTCTL interval-select bits (IS1:IS0), as in the
// MSP430: 0 -> 32768, 1 -> 8192, 2 -> 512, 3 -> 64.
var WDTIntervals = [4]uint32{32768, 8192, 512, 64}
