package isa

import "fmt"

// Bus is the memory system seen by the reference interpreter. Word accesses
// are aligned (the low address bit is ignored).
type Bus interface {
	LoadWord(addr uint16) uint16
	StoreWord(addr uint16, val uint16)
	LoadByte(addr uint16) uint8
	StoreByte(addr uint16, val uint8)
}

// FlatMem is a trivial 64 KiB Bus with no MMIO, used for tests.
type FlatMem [1 << 16]byte

// LoadWord implements Bus.
func (m *FlatMem) LoadWord(addr uint16) uint16 {
	a := addr &^ 1
	return uint16(m[a]) | uint16(m[a+1])<<8
}

// StoreWord implements Bus.
func (m *FlatMem) StoreWord(addr uint16, val uint16) {
	a := addr &^ 1
	m[a] = byte(val)
	m[a+1] = byte(val >> 8)
}

// LoadByte implements Bus.
func (m *FlatMem) LoadByte(addr uint16) uint8 { return m[addr] }

// StoreByte implements Bus.
func (m *FlatMem) StoreByte(addr uint16, val uint8) { m[addr] = val }

// LoadProgram copies machine words into memory starting at addr.
func (m *FlatMem) LoadProgram(addr uint16, words []uint16) {
	for i, w := range words {
		m.StoreWord(addr+uint16(2*i), w)
	}
}

// Machine is the behavioural reference interpreter. Its observable
// behaviour — register/memory contents after each instruction and the
// per-instruction cycle count — matches the gate-level microcontroller in
// internal/mcu cycle for cycle; differential tests enforce this.
type Machine struct {
	R      [16]uint16
	Bus    Bus
	Cycles uint64
	Insns  uint64

	// dstRegPre holds the register-destination value sampled before the
	// source autoincrement of the current instruction commits, matching the
	// single-cycle read/modify behaviour of the gate-level datapath.
	dstRegPre uint16
}

// NewMachine wraps a bus.
func NewMachine(b Bus) *Machine { return &Machine{Bus: b} }

// Reset performs a power-on reset: registers clear and the PC is loaded
// from the reset vector. It costs ResetCycles cycles, matching the
// gate-level FSM's reset sequence.
func (m *Machine) Reset() {
	m.R = [16]uint16{}
	m.R[PC] = m.Bus.LoadWord(ResetVec)
	m.Cycles += ResetCycles
}

// ResetCycles is the cost of the power-on-reset sequence (one cycle with
// reset asserted, one vector-fetch state).
const ResetCycles = 2

func (m *Machine) flag(f uint16) bool { return m.R[SR]&f != 0 }

func (m *Machine) setFlag(f uint16, v bool) {
	if v {
		m.R[SR] |= f
	} else {
		m.R[SR] &^= f
	}
}

// loadOp loads a memory operand honouring byte mode.
func (m *Machine) loadOp(addr uint16, bw bool) uint16 {
	if bw {
		return uint16(m.Bus.LoadByte(addr))
	}
	return m.Bus.LoadWord(addr)
}

// storeOp stores a result honouring byte mode.
func (m *Machine) storeOp(addr uint16, val uint16, bw bool) {
	if bw {
		m.Bus.StoreByte(addr, uint8(val))
	} else {
		m.Bus.StoreWord(addr, val)
	}
}

// writeReg writes a register result; byte-mode writes clear the upper byte,
// and writes to the constant generator R3 are discarded.
func (m *Machine) writeReg(r Reg, val uint16, bw bool) {
	if r == CG {
		return
	}
	if bw {
		val &= 0xff
	}
	m.R[r] = val
}

// IrqCycles is the cost of an interrupt entry (recognize + two pushes).
const IrqCycles = 3

// Interrupt performs a maskable-interrupt entry at an instruction boundary:
// push PC, push SR, clear GIE, vector. The caller decides *when* (the timer
// source lives gate-side; differential harnesses drive this from the
// gate-level machine's observed entry). Returns false if GIE is clear.
func (m *Machine) Interrupt(vector uint16) bool {
	if m.R[SR]&FlagGIE == 0 {
		return false
	}
	m.R[SP] -= 2
	m.Bus.StoreWord(m.R[SP], m.R[PC])
	m.R[SP] -= 2
	m.Bus.StoreWord(m.R[SP], m.R[SR])
	m.R[SR] &^= FlagGIE
	m.R[PC] = m.Bus.LoadWord(vector)
	m.Cycles += IrqCycles
	return true
}

// CyclesFor returns the gate-level FSM's cycle count for one instruction.
func CyclesFor(in *Instr) int {
	if in.Op.IsJump() {
		return 1
	}
	n := 1 // fetch/execute state
	needSrc := !isCG(in.Src, in.As) && in.As != ModeReg
	if needSrc {
		n++
	}
	switch {
	case in.Op == RETI:
		n += 2
	case in.Op == PUSH || in.Op == CALL:
		n++
	case in.Op.IsFmt2(): // RRC/RRA/SWPB/SXT with a memory operand write back
		if needSrc {
			n++
		}
	case in.Ad == 1:
		n++
	}
	return n
}

// Step executes one instruction and returns its cycle count.
func (m *Machine) Step() (int, error) {
	pc0 := m.R[PC]
	words := [3]uint16{
		m.Bus.LoadWord(pc0),
		m.Bus.LoadWord(pc0 + 2),
		m.Bus.LoadWord(pc0 + 4),
	}
	in, n, err := Decode(words[:])
	if err != nil {
		return 0, fmt.Errorf("at %#04x: %w", pc0, err)
	}
	m.R[PC] = pc0 + uint16(2*n)
	cycles := CyclesFor(&in)
	m.Cycles += uint64(cycles)
	m.Insns++

	switch {
	case in.Op.IsJump():
		if m.jumpTaken(in.Op) {
			m.R[PC] = pc0 + 2 + uint16(2*in.Off)
		}
		return cycles, nil
	case in.Op == RETI:
		m.R[SR] = m.Bus.LoadWord(m.R[SP])
		m.R[SP] += 2
		m.R[PC] = m.Bus.LoadWord(m.R[SP])
		m.R[SP] += 2
		return cycles, nil
	}

	// Capture a register destination before the source autoincrement can
	// modify it (the hardware reads both in the same cycle).
	if in.Op.IsFmt1() && in.Ad == 0 {
		m.dstRegPre = m.R[in.Dst]
	}
	src := m.srcOperand(&in, pc0)

	switch in.Op {
	case PUSH:
		m.R[SP] -= 2
		m.Bus.StoreWord(m.R[SP], src)
		return cycles, nil
	case CALL:
		m.R[SP] -= 2
		m.Bus.StoreWord(m.R[SP], m.R[PC])
		m.R[PC] = src
		return cycles, nil
	}

	if in.Op.IsFmt2() {
		res := m.execFmt2(&in, src)
		m.writeBack(&in, pc0, res)
		return cycles, nil
	}

	// Format I. Register destinations are read before the source
	// autoincrement commits, matching the gate-level datapath where both
	// happen in the same cycle (relevant for e.g. "add @r4+, r4").
	dst, dstEA := m.dstOperand(&in, pc0)
	res, writes := m.execFmt1(&in, src, dst)
	if writes {
		if in.Ad == 0 {
			m.writeReg(in.Dst, res, in.BW)
		} else {
			m.storeOp(dstEA, res, in.BW)
		}
	}
	return cycles, nil
}

func (m *Machine) jumpTaken(op Opcode) bool {
	switch op {
	case JNE:
		return !m.flag(FlagZ)
	case JEQ:
		return m.flag(FlagZ)
	case JNC:
		return !m.flag(FlagC)
	case JC:
		return m.flag(FlagC)
	case JN:
		return m.flag(FlagN)
	case JGE:
		return m.flag(FlagN) == m.flag(FlagV)
	case JL:
		return m.flag(FlagN) != m.flag(FlagV)
	default: // JMP
		return true
	}
}

// srcOperand resolves the source operand (value only; autoincrement applied
// here, as in the gate FSM's source state).
func (m *Machine) srcOperand(in *Instr, pc0 uint16) uint16 {
	mask := uint16(0xffff)
	if in.BW {
		mask = 0xff
	}
	if isCG(in.Src, in.As) {
		return cgValue(in.Src, in.As) & mask
	}
	switch in.As {
	case ModeReg:
		return m.R[in.Src] & mask
	case ModeIndexed:
		base := m.R[in.Src]
		if in.Src == SR {
			base = 0 // absolute
		}
		if in.Src == PC {
			base = pc0 + 2 // symbolic: PC points at the extension word
		}
		return m.loadOp(base+in.SrcExt, in.BW)
	case ModeIndirect:
		return m.loadOp(m.R[in.Src], in.BW)
	default: // ModeIncr
		if in.Src == PC {
			return in.SrcExt & mask // #immediate
		}
		v := m.loadOp(m.R[in.Src], in.BW)
		step := uint16(2)
		if in.BW && in.Src != SP {
			step = 1
		}
		m.R[in.Src] += step
		return v
	}
}

// dstOperand resolves the destination operand value and effective address.
func (m *Machine) dstOperand(in *Instr, pc0 uint16) (val, ea uint16) {
	mask := uint16(0xffff)
	if in.BW {
		mask = 0xff
	}
	if in.Ad == 0 {
		return m.dstRegPre & mask, 0
	}
	base := m.R[in.Dst]
	if in.Dst == SR {
		base = 0
	}
	if in.Dst == PC {
		// Symbolic destination: PC points at the dst extension word.
		base = pc0 + 2
		if in.SrcUsesExt() {
			base += 2
		}
	}
	ea = base + in.DstExt
	if in.Op == MOV {
		return 0, ea // MOV never reads the old destination
	}
	return m.loadOp(ea, in.BW), ea
}

// execFmt1 computes a format I result and updates flags. The second result
// reports whether the destination is written.
func (m *Machine) execFmt1(in *Instr, src, dst uint16) (uint16, bool) {
	msb := uint16(0x8000)
	mask := uint32(0xffff)
	if in.BW {
		msb = 0x80
		mask = 0xff
	}
	var res uint16
	var carry, overflow bool
	arith := false
	switch in.Op {
	case MOV:
		res = src
	case ADD, ADDC:
		cin := uint32(0)
		if in.Op == ADDC && m.flag(FlagC) {
			cin = 1
		}
		full := uint32(src) + uint32(dst) + cin
		res = uint16(full & mask)
		carry = full > mask
		overflow = (src&msb) == (dst&msb) && (res&msb) != (dst&msb)
		arith = true
	case SUB, SUBC, CMP, DADD:
		// dst - src == dst + ^src + 1 (DADD deviates: executes as ADD-style
		// subtract-complement path is not used; treat DADD as ADD below).
		if in.Op == DADD {
			full := uint32(src) + uint32(dst)
			res = uint16(full & mask)
			carry = full > mask
			overflow = (src&msb) == (dst&msb) && (res&msb) != (dst&msb)
			arith = true
			break
		}
		nsrc := uint16(mask) ^ src
		cin := uint32(1)
		if in.Op == SUBC {
			cin = 0
			if m.flag(FlagC) {
				cin = 1
			}
		}
		full := uint32(nsrc) + uint32(dst) + cin
		res = uint16(full & mask)
		carry = full > mask
		overflow = (nsrc&msb) == (dst&msb) && (res&msb) != (dst&msb)
		arith = true
	case BIT, AND:
		res = src & dst
	case BIC:
		res = ^src & dst
	case BIS:
		res = src | dst
	case XOR:
		res = src ^ dst
		overflow = src&msb != 0 && dst&msb != 0
	}
	res &= uint16(mask)
	if in.Op.SetsFlags() && !(in.Op.WritesDst() && in.Ad == 0 && in.Dst == SR) {
		m.setFlag(FlagZ, res == 0)
		m.setFlag(FlagN, res&msb != 0)
		if arith {
			m.setFlag(FlagC, carry)
			m.setFlag(FlagV, overflow)
		} else {
			m.setFlag(FlagC, res != 0)
			m.setFlag(FlagV, overflow) // false except XOR
		}
	}
	return res, in.Op.WritesDst()
}

// execFmt2 computes a single-operand result and updates flags.
func (m *Machine) execFmt2(in *Instr, src uint16) uint16 {
	msb := uint16(0x8000)
	mask := uint16(0xffff)
	if in.BW {
		msb = 0x80
		mask = 0xff
	}
	var res uint16
	switch in.Op {
	case RRC:
		res = src >> 1
		if m.flag(FlagC) {
			res |= msb
		}
		m.setFlag(FlagC, src&1 != 0)
	case RRA:
		res = src>>1 | src&msb
		m.setFlag(FlagC, src&1 != 0)
	case SWPB:
		res = src>>8 | src<<8
	case SXT:
		res = src & 0xff
		if res&0x80 != 0 {
			res |= 0xff00
		}
		msb, mask = 0x8000, 0xffff // SXT flags are word flags
	}
	res &= mask
	if in.Op.SetsFlags() {
		m.setFlag(FlagZ, res == 0)
		m.setFlag(FlagN, res&msb != 0)
		if in.Op == SXT {
			m.setFlag(FlagC, res != 0)
		}
		m.setFlag(FlagV, false)
	}
	return res
}

// writeBack stores a format II result to its operand location.
func (m *Machine) writeBack(in *Instr, pc0 uint16, res uint16) {
	switch in.As {
	case ModeReg:
		m.writeReg(in.Src, res, in.BW)
	case ModeIndexed:
		base := m.R[in.Src]
		if in.Src == SR {
			base = 0
		}
		if in.Src == PC {
			base = pc0 + 2
		}
		m.storeOp(base+in.SrcExt, res, in.BW)
	case ModeIndirect, ModeIncr:
		// Write back to the (pre-increment) operand address. The source
		// state already applied the autoincrement, so recompute.
		addr := m.R[in.Src]
		if in.As == ModeIncr {
			step := uint16(2)
			if in.BW && in.Src != SP {
				step = 1
			}
			addr -= step
		}
		m.storeOp(addr, res, in.BW)
	}
}
