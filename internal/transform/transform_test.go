package transform

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/isa"
)

func parse(t *testing.T, src string) []asm.Stmt {
	t.Helper()
	stmts, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return stmts
}

func TestPartitionValidation(t *testing.T) {
	good := Partition{Lo: 0x0400, Size: 0x0400}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.MaskAnd() != 0x03ff || good.MaskOr() != 0x0400 {
		t.Fatalf("masks = %#x %#x", good.MaskAnd(), good.MaskOr())
	}
	for _, bad := range []Partition{{0x0400, 0x0300}, {0x0200, 0x0400}, {0, 0}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("partition %+v should be invalid", bad)
		}
	}
}

func TestInsertMasksFigure9(t *testing.T) {
	// The Figure 9 left-hand listing: a store through a tainted offset.
	src := `
start:  mov #4096, &0x0250
        mov #49, r15
        mov.b #1, 0(r15)
        mov #32, r15
        mov @r15, r15
        mov #512, r14
        add r15, r14
store:  mov #500, 0(r14)
        mov r15, &0x0200
`
	stmts := parse(t, src)
	// Find the flagged store by label.
	flagged := map[int]bool{}
	for i := range stmts {
		if stmts[i].Label == "store" {
			flagged[i] = true
		}
	}
	out, n, err := InsertMasks(stmts, flagged, Partition{Lo: 0x0400, Size: 0x0400})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("masked %d stores", n)
	}
	printed := asm.Print(out)
	if !strings.Contains(printed, "and #0x3ff, r14") || !strings.Contains(printed, "bis #0x400, r14") {
		t.Fatalf("mask instructions missing:\n%s", printed)
	}
	// The label must have moved to the mask.
	for i := range out {
		if out[i].Label == "store" && out[i].Mnemonic != "and" {
			t.Fatal("label did not move to the inserted mask")
		}
	}
	// The result must still assemble.
	if _, err := asm.Assemble(out); err != nil {
		t.Fatalf("reassemble: %v\n%s", printed, err)
	}
}

// End-to-end: the Figure 9 flow — analyze, flag, mask, re-verify.
func TestMaskRoundTripVerifies(t *testing.T) {
	src := `
start:  mov &0x0020, r15     ; tainted input
        mov #0x0200, r14
        add r15, r14
        mov #500, 0(r14)
done:   jmp done
`
	img, err := asm.AssembleSource(src)
	if err != nil {
		t.Fatal(err)
	}
	pol := &glift.Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedData:    []glift.AddrRange{{Lo: 0x0400, Hi: 0x0800}},
	}
	rep, err := glift.Analyze(img, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	storePCs := rep.ViolatingStorePCs()
	if len(storePCs) != 1 {
		t.Fatalf("expected 1 violating store, got %v", storePCs)
	}
	flagged, err := FlagStores(img, storePCs)
	if err != nil {
		t.Fatal(err)
	}
	out, n, err := InsertMasks(img.Stmts, flagged, Partition{Lo: 0x0400, Size: 0x0400})
	if err != nil || n != 1 {
		t.Fatalf("mask insertion: n=%d err=%v", n, err)
	}
	img2, err := asm.Assemble(out)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := glift.Analyze(img2, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.ByKind(glift.C2MemoryEscape)) != 0 {
		t.Fatalf("C2 persists after masking: %v", rep2.Violations)
	}
}

func TestInsertMasksRejectsNonStore(t *testing.T) {
	stmts := parse(t, "start: nop")
	if _, _, err := InsertMasks(stmts, map[int]bool{0: true}, Partition{Lo: 0x0400, Size: 0x0400}); err == nil {
		t.Fatal("expected error for non-store statement")
	}
}

func TestMaskAllStores(t *testing.T) {
	src := `
start:  mov r5, 0(r14)       ; store 1
        add r5, 2(r14)       ; store 2 (read-modify-write)
        cmp r5, 4(r14)       ; not a store
        mov 0(r14), r5       ; load, not a store
        mov r5, &0x0300      ; absolute store: statically bounded, unmasked
        push r5              ; stack push: handled by SP discipline
        mov r5, r6           ; register move
`
	stmts := parse(t, src)
	out, n, err := MaskAllStores(stmts, Partition{Lo: 0x0400, Size: 0x0400})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("masked %d stores, want 2\n%s", n, asm.Print(out))
	}
	if got := len(MaskableStoreIdxs(stmts)); got != 2 {
		t.Fatalf("MaskableStoreIdxs = %d", got)
	}
}

func TestFlagStoresBadPC(t *testing.T) {
	img, err := asm.AssembleSource("start: nop")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FlagStores(img, []uint16{0x1234}); err == nil {
		t.Fatal("expected error for unknown PC")
	}
}

func TestPlanWatchdogShortTask(t *testing.T) {
	// A 100-cycle task: 64-cycle slices have 34 useful cycles each -> 3
	// slices = 192-cycle bound; 512-cycle slice bounds it in one 512-cycle
	// slice. 192 < 512, so the planner picks 64x3.
	p := PlanWatchdog(100)
	if p.IntervalCycles != 64 || p.Slices != 3 {
		t.Fatalf("plan = %+v", p)
	}
	if p.BoundCycles != 192 || p.OverheadCycles != 92 {
		t.Fatalf("bound/overhead = %d/%d", p.BoundCycles, p.OverheadCycles)
	}
}

func TestPlanWatchdogLongerTask(t *testing.T) {
	// 3000 cycles: 64-cycle slices -> 89 slices = 5696; 512 -> 7 slices =
	// 3584; 8192 -> 1 slice = 8192. Planner picks 512x7.
	p := PlanWatchdog(3000)
	if p.IntervalCycles != 512 || p.Slices != 7 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestPlanWatchdogTiny(t *testing.T) {
	p := PlanWatchdog(1)
	if p.Slices != 1 || p.IntervalCycles != 64 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestWDTCTLValue(t *testing.T) {
	p := PlanWatchdog(100)
	if p.WDTCTLValue() != isa.WDTPW|3 {
		t.Fatalf("wdtctl = %#x", p.WDTCTLValue())
	}
	// interval index 3 is the 64-cycle interval
	if isa.WDTIntervals[3] != 64 {
		t.Fatal("interval table changed")
	}
}

func TestOverheadsPercent(t *testing.T) {
	o := Overheads{BaseCycles: 1000, ProtectedCycles: 1150}
	if got := o.Percent(); got != 15 {
		t.Fatalf("percent = %v", got)
	}
	if (Overheads{}).Percent() != 0 {
		t.Fatal("zero base should be 0%")
	}
}

// Property: the plan always bounds the task and never chooses a slice whose
// overhead exceeds every alternative.
func TestPlanWatchdogProperties(t *testing.T) {
	for task := uint64(1); task < 100000; task += 371 {
		p := PlanWatchdog(task)
		useful := int64(p.IntervalCycles)*int64(p.Slices) - int64(p.Slices)*SliceOverheadCycles
		if useful < int64(task) {
			t.Fatalf("task %d: plan %+v does not fit the task", task, p)
		}
		if p.BoundCycles != uint64(p.Slices)*uint64(p.IntervalCycles) {
			t.Fatalf("task %d: inconsistent bound", task)
		}
	}
}
