package transform_test

// Property tests for the masking transform, over a seeded pseudo-random
// program corpus (fixed seeds: the corpus is deterministic, so a failure
// reproduces). Three properties the repair loop leans on:
//
//  1. InsertMasks is idempotent — re-masking an already-masked program is a
//     byte-for-byte no-op. The repair loop re-flags violating PCs every
//     round; without idempotence each round would stack another AND/BIS
//     pair in front of the same store.
//  2. A masked address always lands inside the partition — exhaustively,
//     for every 16-bit address and every legal partition geometry. This is
//     the security property the inserted pair enforces at runtime.
//  3. FlagStores round-trips every violating PC to exactly the flagged
//     statement set — the PC→statement mapping is how analysis findings
//     become rewrites, and an off-by-one here masks the wrong store.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/transform"
)

var testPartition = transform.Partition{Lo: 0x0400, Size: 0x0400}

// genProgram emits a random but always-assemblable program: a straight-line
// mix of register ALU ops, immediate loads, register-indexed stores (the
// maskable kind), absolute stores (not maskable), and compares, ended with
// an idle loop. Base registers stay in r4..r13, clear of pc/sp/sr/cg.
func genProgram(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("start:  mov #0x0280, sp\n")
	reg := func() string { return fmt.Sprintf("r%d", 4+rng.Intn(10)) }
	n := 4 + rng.Intn(20)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			fmt.Fprintf(&sb, "        mov #0x%04x, %s\n", rng.Intn(0x10000), reg())
		case 1:
			fmt.Fprintf(&sb, "        add %s, %s\n", reg(), reg())
		case 2: // register-indexed store: maskable
			fmt.Fprintf(&sb, "        mov #%d, %d(%s)\n", rng.Intn(500), 2*rng.Intn(4), reg())
		case 3: // another maskable store shape, sometimes labelled
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&sb, "l%d:     clr %d(%s)\n", i, 2*rng.Intn(4), reg())
			} else {
				fmt.Fprintf(&sb, "        add %s, %d(%s)\n", reg(), 2*rng.Intn(4), reg())
			}
		case 4: // absolute store: writes memory but has no base register
			fmt.Fprintf(&sb, "        mov %s, &0x%04x\n", reg(), 0x0200+2*rng.Intn(16))
		case 5:
			fmt.Fprintf(&sb, "        cmp %s, %s\n", reg(), reg())
		}
	}
	sb.WriteString("done:   jmp done\n")
	return sb.String()
}

// corpus builds the deterministic program corpus shared by the properties.
func corpus(t *testing.T, size int) [][]asm.Stmt {
	t.Helper()
	rng := rand.New(rand.NewSource(430))
	out := make([][]asm.Stmt, 0, size)
	for i := 0; i < size; i++ {
		src := genProgram(rng)
		stmts, err := asm.Parse(src)
		if err != nil {
			t.Fatalf("corpus program %d does not parse: %v\n%s", i, err, src)
		}
		out = append(out, stmts)
	}
	return out
}

// TestInsertMasksIdempotent: masking every maskable store, then masking the
// result again, changes nothing — zero new masks, byte-identical text.
func TestInsertMasksIdempotent(t *testing.T) {
	for i, stmts := range corpus(t, 64) {
		once, n1, err := transform.MaskAllStores(stmts, testPartition)
		if err != nil {
			t.Fatalf("program %d: first pass: %v", i, err)
		}
		twice, n2, err := transform.MaskAllStores(once, testPartition)
		if err != nil {
			t.Fatalf("program %d: second pass: %v", i, err)
		}
		if n2 != 0 {
			t.Errorf("program %d: second pass inserted %d masks over the %d existing", i, n2, n1)
		}
		if a, b := asm.Print(once), asm.Print(twice); a != b {
			t.Errorf("program %d: re-masking changed the program:\n--- once ---\n%s\n--- twice ---\n%s", i, a, b)
		}
		// Idempotence must also hold across a parse round-trip — the repair
		// loop re-parses the patched text before re-flagging.
		reparsed, err := asm.Parse(asm.Print(once))
		if err != nil {
			t.Fatalf("program %d: masked text does not re-parse: %v", i, err)
		}
		_, n3, err := transform.MaskAllStores(reparsed, testPartition)
		if err != nil {
			t.Fatalf("program %d: pass over re-parsed text: %v", i, err)
		}
		if n3 != 0 {
			t.Errorf("program %d: re-parse broke idempotence: %d masks inserted", i, n3)
		}
	}
}

// TestMaskConfinesAddress: the AND/BIS pair's arithmetic confines every
// 16-bit address into [Lo, Lo+Size), exhaustively, for every partition
// geometry Validate accepts in the low half of memory.
func TestMaskConfinesAddress(t *testing.T) {
	for _, p := range []transform.Partition{
		{Lo: 0x0400, Size: 0x0400},
		{Lo: 0x0200, Size: 0x0200},
		{Lo: 0x0800, Size: 0x0100},
		{Lo: 0x0000, Size: 0x1000},
		{Lo: 0x1000, Size: 0x0002},
	} {
		if err := p.Validate(); err != nil {
			t.Fatalf("partition %+v: %v", p, err)
		}
		lo, hi := uint32(p.Lo), uint32(p.Lo)+uint32(p.Size)
		for x := 0; x < 0x10000; x++ {
			masked := uint32(uint16(x)&p.MaskAnd() | p.MaskOr())
			if masked < lo || masked >= hi {
				t.Fatalf("partition %+v: address %#04x masks to %#04x, outside [%#04x, %#04x)",
					p, x, masked, lo, hi)
			}
			if uint16(x) >= p.Lo && uint32(uint16(x)) < hi && masked != uint32(uint16(x)) {
				t.Fatalf("partition %+v: in-partition address %#04x rewritten to %#04x",
					p, x, masked)
			}
		}
	}
}

// TestMaskedStoresStayMaskable: after masking, every flagged store is still
// a maskable register-indexed store immediately preceded by its exact
// AND/BIS pair, and any label the store carried has moved to the AND so a
// jump to the store still executes the mask.
func TestMaskedStoresStayMaskable(t *testing.T) {
	for i, stmts := range corpus(t, 64) {
		labels := map[int]string{}
		for si := range stmts {
			if _, ok := transform.MaskableStoreTarget(&stmts[si]); ok && stmts[si].Label != "" {
				labels[si] = stmts[si].Label
			}
		}
		masked, n, err := transform.MaskAllStores(stmts, testPartition)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if want := len(transform.MaskableStoreIdxs(stmts)); n != want {
			t.Errorf("program %d: masked %d stores, program has %d maskable", i, n, want)
		}
		for si := range masked {
			reg, ok := transform.MaskableStoreTarget(&masked[si])
			if !ok {
				continue
			}
			if si < 2 {
				t.Errorf("program %d: store at %d has no room for its mask pair", i, si)
				continue
			}
			and, bis := masked[si-2], masked[si-1]
			if and.Mnemonic != "and" || bis.Mnemonic != "bis" {
				t.Errorf("program %d: store at %d preceded by %s/%s, want and/bis",
					i, si, and.Mnemonic, bis.Mnemonic)
				continue
			}
			if av, _ := and.Ops[0].Expr.ConstOnly(); av != int64(testPartition.MaskAnd()) {
				t.Errorf("program %d: AND immediate %#x, want %#x", i, av, testPartition.MaskAnd())
			}
			if bv, _ := bis.Ops[0].Expr.ConstOnly(); bv != int64(testPartition.MaskOr()) {
				t.Errorf("program %d: BIS immediate %#x, want %#x", i, bv, testPartition.MaskOr())
			}
			if and.Ops[1].Reg != reg || bis.Ops[1].Reg != reg {
				t.Errorf("program %d: mask pair targets r%d/r%d, store uses r%d",
					i, and.Ops[1].Reg, bis.Ops[1].Reg, reg)
			}
			if masked[si].Label != "" {
				t.Errorf("program %d: masked store kept label %q; a jump would skip the mask",
					i, masked[si].Label)
			}
		}
		// Every label that sat on a store must survive, on the AND above it.
		text := asm.Print(masked)
		for _, lbl := range labels {
			if !strings.Contains(text, lbl+":") {
				t.Errorf("program %d: label %q lost during masking:\n%s", i, lbl, text)
			}
		}
	}
}

// TestFlagStoresRoundTrip: for every program in the corpus, the set of
// maskable-store PCs maps back through FlagStores to exactly the maskable-
// store statement indices — no drops, no spurious flags — and the flagged
// set feeds InsertMasks without error.
func TestFlagStoresRoundTrip(t *testing.T) {
	for i, stmts := range corpus(t, 64) {
		img, err := asm.Assemble(stmts)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		want := map[int]bool{}
		for _, si := range transform.MaskableStoreIdxs(stmts) {
			want[si] = true
		}
		var pcs []uint16
		for pc, si := range img.AddrToStmt {
			if want[si] {
				pcs = append(pcs, pc)
			}
		}
		flagged, err := transform.FlagStores(img, pcs)
		if err != nil {
			t.Fatalf("program %d: FlagStores: %v", i, err)
		}
		if len(flagged) != len(want) {
			t.Errorf("program %d: flagged %d statements from %d PCs, want %d",
				i, len(flagged), len(pcs), len(want))
		}
		for si := range flagged {
			if !want[si] {
				t.Errorf("program %d: FlagStores flagged non-store statement %d", i, si)
			}
		}
		for si := range want {
			if !flagged[si] {
				t.Errorf("program %d: store statement %d lost in the PC round-trip", i, si)
			}
		}
		if _, _, err := transform.InsertMasks(stmts, flagged, testPartition); err != nil {
			t.Errorf("program %d: round-tripped flags rejected by InsertMasks: %v", i, err)
		}
		// A PC that maps to no statement must error, never silently drop.
		if _, err := transform.FlagStores(img, []uint16{0xfffe}); err == nil {
			t.Errorf("program %d: unmapped PC accepted", i)
		}
	}
}
