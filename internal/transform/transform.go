// Package transform implements the paper's software techniques for
// eliminating insecure information flows (Section 5.2) as automatic
// rewrites of the assembly statement list produced by internal/asm:
//
//   - Software masked addressing: AND/BIS instruction pairs inserted before
//     stores whose address can be tainted or unknown, pinning the effective
//     address into the task's tainted data partition (Figure 9).
//   - Untainted watchdog-timer reset: planning of deterministic time slices
//     over the hardware watchdog intervals so that a tainted task's
//     execution time is bounded and the pipeline is recovered to an
//     untainted state by a power-on reset (Figure 8), including the
//     idle-loop padding and context-switch cost model of Section 7.2.
//
// Both an application-specific variant (masking only the stores flagged by
// root-cause analysis) and an "always-on" variant (masking every maskable
// store, bounding every tainted task) are provided; the cost gap between
// them is the paper's headline 3.3x result (Table 3).
package transform

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Partition is a power-of-two-sized, size-aligned data-memory region that
// tainted code is allowed to write.
type Partition struct {
	Lo   uint16
	Size uint16
}

// Validate checks alignment constraints.
func (p Partition) Validate() error {
	if p.Size == 0 || p.Size&(p.Size-1) != 0 {
		return fmt.Errorf("transform: partition size %#x is not a power of two", p.Size)
	}
	if p.Lo%p.Size != 0 {
		return fmt.Errorf("transform: partition base %#x not aligned to size %#x", p.Lo, p.Size)
	}
	return nil
}

// MaskAnd is the AND-immediate confining an address to the partition size.
func (p Partition) MaskAnd() uint16 { return p.Size - 1 }

// MaskOr is the BIS-immediate pinning the partition base.
func (p Partition) MaskOr() uint16 { return p.Lo }

// MaskableStoreTarget reports whether a statement is a store through a
// register (the kind that can escape a partition and can be masked),
// returning the base register.
func MaskableStoreTarget(st *asm.Stmt) (isa.Reg, bool) { return maskableStore(st) }

// maskableStore reports whether a statement is a store through a register
// (the kind that can escape a partition and can be masked), returning the
// base register.
func maskableStore(st *asm.Stmt) (isa.Reg, bool) {
	if st.Kind != asm.SInstr {
		return 0, false
	}
	mn := st.Mnemonic
	switch mn {
	case "mov", "add", "addc", "sub", "subc", "bic", "bis", "xor", "and",
		"inc", "incd", "dec", "decd", "inv", "clr", "rla", "rlc", "adc", "sbc",
		"rra", "rrc", "swpb", "sxt":
	default:
		return 0, false // cmp/bit/tst/jumps/push do not write memory operands
	}
	// The destination operand is the last one.
	if len(st.Ops) == 0 {
		return 0, false
	}
	dst := st.Ops[len(st.Ops)-1]
	if dst.Kind != asm.OpIndexed {
		return 0, false
	}
	return dst.Reg, true
}

// isMaskInstr reports whether a statement is exactly `mn #imm, reg` — one
// half of a masking pair for the given base register.
func isMaskInstr(st *asm.Stmt, mn string, imm int64, reg isa.Reg) bool {
	if st.Kind != asm.SInstr || st.Mnemonic != mn || st.BW || len(st.Ops) != 2 {
		return false
	}
	if st.Ops[0].Kind != asm.OpImm {
		return false
	}
	v, ok := st.Ops[0].Expr.ConstOnly()
	if !ok || v != imm {
		return false
	}
	return st.Ops[1].Kind == asm.OpReg && st.Ops[1].Reg == reg
}

// maskStmts builds the two masking instructions for a base register.
func maskStmts(r isa.Reg, p Partition, why string) []asm.Stmt {
	and := asm.InstrStmt("and", asm.Imm(asm.Int(int64(p.MaskAnd()))), asm.RegOp(r))
	and.Comment = "mask: " + why
	bis := asm.InstrStmt("bis", asm.Imm(asm.Int(int64(p.MaskOr()))), asm.RegOp(r))
	return []asm.Stmt{and, bis}
}

// InsertMasks inserts address-masking instructions before the statements
// whose indices are flagged (the root-cause list from the analysis). It
// returns the rewritten statement list and the number of masked stores.
// Flagged statements that are not maskable register-indexed stores are
// reported as errors, mirroring the toolflow's compile errors (Section 6).
//
// InsertMasks is idempotent: a flagged store already immediately preceded
// by its exact AND/BIS mask pair for this partition is left untouched (and
// not counted), so re-masking an already-masked program is a no-op.
func InsertMasks(stmts []asm.Stmt, flagged map[int]bool, p Partition) ([]asm.Stmt, int, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	var out []asm.Stmt
	masked := 0
	for i := range stmts {
		st := stmts[i]
		if !flagged[i] {
			out = append(out, st)
			continue
		}
		reg, ok := maskableStore(&st)
		if !ok {
			return nil, 0, fmt.Errorf("transform: line %d (%s) flagged but is not a maskable store", st.Line, st.String())
		}
		if i >= 2 && isMaskInstr(&stmts[i-2], "and", int64(p.MaskAnd()), reg) &&
			isMaskInstr(&stmts[i-1], "bis", int64(p.MaskOr()), reg) {
			out = append(out, st)
			continue
		}
		ms := maskStmts(reg, p, "inserted by root-cause analysis")
		// A label on the store must move to the first inserted instruction
		// so control transfers still execute the mask.
		if st.Label != "" {
			ms[0].Label = st.Label
			st.Label = ""
		}
		out = append(out, ms...)
		out = append(out, st)
		masked++
	}
	return out, masked, nil
}

// MaskAllStores applies masking to every maskable store — the "always on"
// software baseline that assumes no application knowledge. It returns the
// rewritten list and the number of masked stores.
func MaskAllStores(stmts []asm.Stmt, p Partition) ([]asm.Stmt, int, error) {
	flagged := map[int]bool{}
	for i := range stmts {
		if _, ok := maskableStore(&stmts[i]); ok {
			flagged[i] = true
		}
	}
	return InsertMasks(stmts, flagged, p)
}

// MaskableStoreIdxs lists the statement indices of every maskable store.
func MaskableStoreIdxs(stmts []asm.Stmt) []int {
	var out []int
	for i := range stmts {
		if _, ok := maskableStore(&stmts[i]); ok {
			out = append(out, i)
		}
	}
	return out
}

// FlagStores maps violating store addresses (from the analysis report) back
// to statement indices using the image's address map.
func FlagStores(img *asm.Image, pcs []uint16) (map[int]bool, error) {
	flagged := map[int]bool{}
	for _, pc := range pcs {
		si, ok := img.AddrToStmt[pc]
		if !ok {
			return nil, fmt.Errorf("transform: violating PC %#04x maps to no statement", pc)
		}
		flagged[si] = true
	}
	return flagged, nil
}

// Watchdog cost model constants (Section 7.2 / footnote 9).
const (
	// ContextSwitchCycles is the cost of saving and restoring a task's state.
	ContextSwitchCycles = 20
	// WdtArmCycles is the cost of watchdog initialization and reset handling.
	WdtArmCycles = 10
	// SliceOverheadCycles is the per-slice fixed cost.
	SliceOverheadCycles = ContextSwitchCycles + WdtArmCycles
)

// WdtPlan is a deterministic execution-time bound for a tainted task:
// Slices intervals of IntervalCycles each, totalling BoundCycles, of which
// OverheadCycles are not useful task work (switching plus idle padding).
type WdtPlan struct {
	IntervalIdx    int // index into isa.WDTIntervals
	IntervalCycles uint32
	Slices         int
	BoundCycles    uint64
	OverheadCycles uint64
}

// PlanWatchdog selects the number and duration of watchdog intervals that
// minimize overhead while deterministically bounding a task of taskCycles
// cycles (Section 7.2: fewer, longer slices cost less switching but more
// idle padding in the final slice).
func PlanWatchdog(taskCycles uint64) WdtPlan {
	best := WdtPlan{}
	first := true
	for idx, iv := range isa.WDTIntervals {
		useful := int64(iv) - SliceOverheadCycles
		if useful <= 0 {
			continue
		}
		n := int((int64(taskCycles) + useful - 1) / useful)
		if n < 1 {
			n = 1
		}
		bound := uint64(n) * uint64(iv)
		plan := WdtPlan{
			IntervalIdx:    idx,
			IntervalCycles: iv,
			Slices:         n,
			BoundCycles:    bound,
			OverheadCycles: bound - taskCycles,
		}
		if first || plan.BoundCycles < best.BoundCycles {
			best = plan
			first = false
		}
	}
	return best
}

// WDTCTLValue returns the WDTCTL write that arms the plan's interval.
func (p WdtPlan) WDTCTLValue() uint16 {
	return isa.WDTPW | uint16(p.IntervalIdx)
}

// Overheads summarizes the runtime cost of protecting one application.
type Overheads struct {
	BaseCycles      uint64  // unprotected task period
	MaskedStores    int     // number of store sites masked
	MaskCycles      uint64  // extra cycles from executed mask instructions
	Watchdog        bool    // whether the watchdog bound is applied
	WdtPlanUsed     WdtPlan // the chosen plan (if Watchdog)
	ProtectedCycles uint64  // resulting task period
}

// Percent returns the overhead percentage.
func (o Overheads) Percent() float64 {
	if o.BaseCycles == 0 {
		return 0
	}
	return 100 * float64(o.ProtectedCycles-o.BaseCycles) / float64(o.BaseCycles)
}
