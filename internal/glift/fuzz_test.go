package glift

// Randomized differential fuzzing of the parallel exploration mode and the
// evaluation backends. A seeded generator emits small legal MSP430 programs
// exercising the constructs the engine must replay exactly — branches on
// tainted inputs (forks), stores to RAM and ports (violation checks),
// concrete loops (merge points), and watchdog arming/resets (POR forks) —
// and each program is analyzed under a (backend, workers) sweep. Every
// report must serialize identically modulo wall time to the reference
// (interpreter, Workers=1). A failing program is dumped to testdata/ so it
// can be replayed:
//
//	go test ./internal/glift -run Fuzz -seed <n>
//
// With no -seed, a fixed set of seeds runs, so CI is deterministic.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

var (
	fuzzSeed  = flag.Int64("seed", 0, "run the differential fuzz test with this single seed (0: fixed seed set)")
	fuzzProgs = flag.Int("fuzz-programs", 4, "programs generated per seed in the differential fuzz test")
)

// fuzzRegs are the scratch registers the generator draws from; SP/SR/CG
// stay untouched so every generated program is legal.
var fuzzRegs = []string{"r4", "r5", "r6", "r7", "r8", "r9"}

// genProgram emits one small legal MSP430 program. Control flow is kept
// well-formed by construction: branches always target a forward label that
// is emitted one to three instructions later, and the program ends by
// jumping back to start, so exploration terminates only through the
// conservative table (widening) or the cycle budgets — both of which the
// parallel mode must reproduce exactly.
func genProgram(r *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString(".equ WDTCTL, 0x0120\n")
	sb.WriteString("start:\n")

	reg := func() string { return fuzzRegs[r.Intn(len(fuzzRegs))] }
	ramAddr := func() uint16 { return uint16(0x0300 + 2*r.Intn(64)) }

	// pending forward-branch labels: name -> instructions remaining until
	// the label must be emitted.
	type fwd struct {
		name  string
		after int
	}
	var pending []fwd
	labels := 0
	emitLabels := func() {
		kept := pending[:0]
		for _, f := range pending {
			f.after--
			if f.after <= 0 {
				fmt.Fprintf(&sb, "%s:\n", f.name)
			} else {
				kept = append(kept, f)
			}
		}
		pending = kept
	}

	n := 8 + r.Intn(12)
	for i := 0; i < n; i++ {
		switch r.Intn(10) {
		case 0: // tainted input load (P1IN)
			fmt.Fprintf(&sb, "        mov &0x0020, %s\n", reg())
		case 1: // untainted input load (P3IN)
			fmt.Fprintf(&sb, "        mov &0x0028, %s\n", reg())
		case 2: // register arithmetic
			ops := []string{"add", "sub", "xor", "and", "bis"}
			fmt.Fprintf(&sb, "        %s %s, %s\n", ops[r.Intn(len(ops))], reg(), reg())
		case 3: // immediate arithmetic (masking bounds taint spread)
			ops := []string{"add", "and", "xor"}
			fmt.Fprintf(&sb, "        %s #%d, %s\n", ops[r.Intn(len(ops))], 1+r.Intn(15), reg())
		case 4: // RAM store
			fmt.Fprintf(&sb, "        mov %s, &0x%04x\n", reg(), ramAddr())
		case 5: // RAM load
			fmt.Fprintf(&sb, "        mov &0x%04x, %s\n", ramAddr(), reg())
		case 6: // branch on a (possibly tainted) low bit: the fork driver
			labels++
			name := fmt.Sprintf("skip%d", labels)
			x := reg()
			fmt.Fprintf(&sb, "        and #1, %s\n", x)
			fmt.Fprintf(&sb, "        jnz %s\n", name)
			pending = append(pending, fwd{name: name, after: 1 + r.Intn(3)})
		case 7: // flag-setting compare plus a conditional jump
			labels++
			name := fmt.Sprintf("skip%d", labels)
			jcc := []string{"jz", "jc", "jge", "jn"}
			fmt.Fprintf(&sb, "        cmp %s, %s\n", reg(), reg())
			fmt.Fprintf(&sb, "        %s %s\n", jcc[r.Intn(len(jcc))], name)
			pending = append(pending, fwd{name: name, after: 1 + r.Intn(3)})
		case 8: // small concrete countdown loop: a guaranteed merge point
			labels++
			name := fmt.Sprintf("loop%d", labels)
			x := reg()
			fmt.Fprintf(&sb, "        mov #%d, %s\n", 1+r.Intn(5), x)
			fmt.Fprintf(&sb, "%s: dec %s\n", name, x)
			fmt.Fprintf(&sb, "        jnz %s\n", name)
		case 9: // watchdog: arm the shortest interval, or hold the counter
			if r.Intn(2) == 0 {
				sb.WriteString("        mov #0x5a03, &WDTCTL ; arm 63-cycle interval\n")
			} else {
				sb.WriteString("        mov #0x5a80, &WDTCTL ; hold the counter\n")
			}
		}
		// occasionally leak to an output port; whether it violates depends
		// on what the registers carry, and both modes must agree
		if r.Intn(8) == 0 {
			if r.Intn(2) == 0 {
				fmt.Fprintf(&sb, "        mov %s, &0x0026\n", reg()) // P2OUT (tainted-allowed)
			} else {
				fmt.Fprintf(&sb, "        mov %s, &0x002e\n", reg()) // P4OUT (must stay clean)
			}
		}
		emitLabels()
	}
	for _, f := range pending {
		fmt.Fprintf(&sb, "%s:\n", f.name)
	}
	sb.WriteString("        jmp start\n")
	return sb.String()
}

// fuzzConfig is one point in the (backend, workers, spec-lanes) sweep.
type fuzzConfig struct {
	backend sim.BackendKind
	workers int
	lanes   int
}

func (c fuzzConfig) String() string {
	if c.lanes > 0 {
		return fmt.Sprintf("%s/workers=%d/lanes=%d", c.backend, c.workers, c.lanes)
	}
	return fmt.Sprintf("%s/workers=%d", c.backend, c.workers)
}

// fuzzRef is the reference configuration; fuzzSweep holds the ones compared
// against it.
var (
	fuzzRef   = fuzzConfig{backend: sim.BackendInterp, workers: 1}
	fuzzSweep = []fuzzConfig{
		{backend: sim.BackendInterp, workers: 4},
		{backend: sim.BackendCompiled, workers: 1},
		{backend: sim.BackendCompiled, workers: 4},
		{backend: sim.BackendBitslice, workers: 1},
		{backend: sim.BackendCompiled, workers: 4, lanes: 64},
	}
)

// fuzzOptions bounds one analysis tightly so a fuzz run stays fast while
// still exercising widening, budgets, and fork-heavy exploration.
func fuzzOptions(c fuzzConfig) *Options {
	return &Options{
		Workers:       c.workers,
		Backend:       c.backend,
		SpecLanes:     c.lanes,
		MaxCycles:     40_000,
		MaxPathCycles: 4_000,
		WidenAfter:    16,
	}
}

// fuzzReport analyzes src and returns the wall-time-normalized report JSON.
func fuzzReport(t *testing.T, src string, c fuzzConfig) []byte {
	t.Helper()
	rep, err := Analyze(mustImage(t, src), &Policy{
		Name:            "integrity",
		TaintedInPorts:  []int{0},
		TaintedOutPorts: []int{1},
	}, fuzzOptions(c))
	if err != nil {
		t.Fatalf("analyze (%s): %v", c, err)
	}
	j := rep.JSON()
	j.Stats.WallNanos = 0
	out, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return out
}

// dumpFailure writes a mismatching program (plus both reports) under
// testdata/ and returns the path for the failure message.
func dumpFailure(t *testing.T, seed int64, idx int, src string, c fuzzConfig, ref, got []byte) string {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatalf("mkdir testdata: %v", err)
	}
	path := filepath.Join("testdata", fmt.Sprintf("fuzz_seed%d_prog%d.s", seed, idx))
	body := fmt.Sprintf("; differential fuzz failure: seed=%d program=%d config=%s\n; repro: go test ./internal/glift -run Fuzz -seed %d\n%s\n; --- %s report ---\n; %s\n; --- %s report ---\n; %s\n",
		seed, idx, c, seed, src,
		fuzzRef, strings.ReplaceAll(string(ref), "\n", "\n; "),
		c, strings.ReplaceAll(string(got), "\n", "\n; "))
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	return path
}

func fuzzOneSeed(t *testing.T, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < *fuzzProgs; i++ {
		src := genProgram(r)
		ref := fuzzReport(t, src, fuzzRef)
		for _, c := range fuzzSweep {
			got := fuzzReport(t, src, c)
			if string(ref) != string(got) {
				path := dumpFailure(t, seed, i, src, c, ref, got)
				t.Errorf("seed %d program %d: %s report differs from %s (program dumped to %s)\n--- %s ---\n%s\n--- %s ---\n%s",
					seed, i, c, fuzzRef, path, fuzzRef, ref, c, got)
			}
		}
	}
}

// TestFuzzDifferentialPrograms generates random legal MSP430 programs and
// requires every (backend, workers) configuration to agree on every one.
func TestFuzzDifferentialPrograms(t *testing.T) {
	if *fuzzSeed != 0 {
		fuzzOneSeed(t, *fuzzSeed)
		return
	}
	for _, seed := range []int64{1, 2, 3, 4, 5, 6} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			fuzzOneSeed(t, seed)
		})
	}
}
