package glift

import (
	"fmt"
	"testing"

	"repro/internal/mcu"
)

func TestDebugMergeXPC(t *testing.T) {
	src := `
start:  mov &0x0020, r15     ; tainted key
        mov #0x0200, r14
        add r15, r14
        mov #500, 0(r14)
        mov #3, r10
lp:     dec r10
        jnz lp
done:   jmp done
`
	img := mustImage(t, src)
	pol := &Policy{Name: "integrity", TaintedInPorts: []int{0}, TaintedData: []AddrRange{{0x0400, 0x0800}}}
	e, err := NewEngine(img, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.debugMerge = func(k forkKey, c *mcu.Snapshot) {
		fmt.Printf("MERGE key(%#x,%d): pc=%s\n", k.pc, k.dir, e.Sys.SnapshotPC(c))
	}
	rep := e.Run()
	fmt.Println(rep.Violations)
}
