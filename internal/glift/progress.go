package glift

// Progress is a point-in-time view of a running exploration, delivered to
// Options.Progress. It lets long-running hosts (the gliftd service, TUIs)
// surface live statistics without touching engine internals: the hook is
// called from the exploration goroutine roughly every ProgressEvery cycles
// and once more, with Done set, when RunContext returns.
type Progress struct {
	// Stats is a copy of the exploration statistics so far.
	Stats Stats
	// Pending is the number of path states still queued for exploration.
	Pending int
	// Done marks the final callback of a run (the report is complete).
	Done bool
}

// progressEvery is the cycle granularity of Options.Progress callbacks; a
// power of two so the hot path tests it with a mask.
const progressEvery = 8192

// emitProgress delivers one progress snapshot if a hook is installed.
func (e *Engine) emitProgress(done bool) {
	if e.opt.Progress == nil {
		return
	}
	e.opt.Progress(Progress{Stats: e.report.Stats, Pending: len(e.work), Done: done})
}
