package glift

// Progress is a point-in-time view of a running exploration, delivered to
// Options.Progress. It lets long-running hosts (the gliftd service, TUIs)
// surface live statistics without touching engine internals: the hook is
// called from the exploration goroutine every progressEvery committed
// cycles and once more, with Done set, when RunContext returns.
type Progress struct {
	// Stats is a copy of the exploration statistics so far. WallNanos is
	// refreshed on every emission, so mid-run snapshots carry the elapsed
	// wall time, not zero.
	Stats Stats
	// Pending is the number of path states still queued for exploration.
	Pending int
	// Sched is a snapshot of the parallel-exploration scheduler (busy
	// workers, deque depth, steal/speculation counters). It is the zero
	// value on sequential runs, and lives here rather than in Stats so
	// reports stay byte-identical across worker counts.
	Sched SchedStats
	// Done marks the final callback of a run (the report is complete).
	Done bool
}

// progressEvery is the cycle granularity of Options.Progress callbacks,
// counted in cycles committed since the last emission (commits during fork
// concretization count too, so fork-heavy runs cannot starve the hook).
// A variable only so cadence tests can shrink it; production code must
// treat it as a constant.
var progressEvery uint64 = 8192

// emitProgress delivers one progress snapshot if a hook is installed, and
// restarts the cycles-since-emission counter either way.
func (e *Engine) emitProgress(done bool) {
	e.sinceEmit = 0
	if e.opt.Progress == nil {
		return
	}
	e.report.Stats.WallNanos = e.sinceStart().Nanoseconds()
	p := Progress{Stats: e.report.Stats, Pending: len(e.work), Done: done}
	if e.pool != nil {
		p.Sched = e.pool.sched()
	}
	e.opt.Progress(p)
}
