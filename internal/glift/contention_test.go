package glift

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// contentionSrc funnels every forked path back through the same merge
// point: two independent tainted branches per iteration fork the
// exploration, and all resulting paths re-enter the loop through the jump
// at "again", hammering one forkKey.pc in the conservative state table.
// Convergence happens only when widening at that shared entry saturates,
// so the run's table traffic is dominated by a single hot key — the worst
// case for parallel exploration, since nearly every speculated segment's
// fate is decided by a table entry some other path just changed.
const contentionSrc = `
start:  mov &0x0020, r5      ; tainted input (P1IN)
        and #3, r5
loop:   mov &0x0020, r6
        and #1, r6
        jnz skip1            ; tainted branch: fork
        inc r5
skip1:  mov &0x0020, r7
        and #1, r7
        jnz skip2            ; second tainted branch: fork again
        dec r5
skip2:  and #7, r5
again:  jmp loop             ; shared merge point for every path
`

func contentionReport(t *testing.T, workers int) *Report {
	t.Helper()
	rep, err := Analyze(mustImage(t, contentionSrc), unboundedPolicy(), &Options{Workers: workers})
	if err != nil {
		t.Fatalf("analyze (workers=%d): %v", workers, err)
	}
	return rep
}

// TestTableContentionParallel stresses the hot-key case under the race
// detector: a pool of workers speculating paths that all merge at the same
// forkKey.pc must produce exactly the sequential run's table — no lost
// merges, no duplicated entries, no drifted widen counts.
func TestTableContentionParallel(t *testing.T) {
	seq := contentionReport(t, 1)
	for _, w := range []int{4, 8} {
		par := contentionReport(t, w)
		if seq.Stats.TableStates != par.Stats.TableStates {
			t.Errorf("workers=%d: table size %d, sequential %d (lost or duplicated merge)",
				w, par.Stats.TableStates, seq.Stats.TableStates)
		}
		if seq.Stats.Merges != par.Stats.Merges {
			t.Errorf("workers=%d: merges %d, sequential %d", w, par.Stats.Merges, seq.Stats.Merges)
		}
		if seq.Stats.Prunes != par.Stats.Prunes {
			t.Errorf("workers=%d: prunes %d, sequential %d", w, par.Stats.Prunes, seq.Stats.Prunes)
		}
		sj, pj := seq.JSON(), par.JSON()
		sj.Stats.WallNanos, pj.Stats.WallNanos = 0, 0
		sb, _ := json.Marshal(sj)
		pb, _ := json.Marshal(pj)
		if string(sb) != string(pb) {
			t.Errorf("workers=%d report differs from sequential:\n%s\nvs\n%s", w, pb, sb)
		}
	}
}

// TestParallelCancellation verifies the PR 1 contract survives the worker
// pool: cancelling mid-run must stop promptly (workers abandoned, pool
// drained, no deadlock on the condition variable) and report Incomplete,
// never Verified.
func TestParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := AnalyzeContext(ctx, mustImage(t, countdownSrc), &Policy{Name: "integrity"},
		func() *Options { o := noWiden(); o.Workers = 4; return o }())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation ignored with workers: ran %v", elapsed)
	}
	if v := rep.Verdict(); v != Incomplete {
		t.Fatalf("verdict = %v, want Incomplete", v)
	}
	if rep.Secure() {
		t.Fatal("a cancelled parallel run must never read as secure")
	}
}

// TestParallelMemoryBudget verifies the hard memory budget still aborts the
// run when speculation workers are active, and that the verdict semantics
// (Incomplete, AnalysisIncomplete violation) are unchanged.
func TestParallelMemoryBudget(t *testing.T) {
	opt := &Options{Workers: 4, SoftMemBytes: -1, HardMemBytes: 1 << 16}
	rep, err := Analyze(mustImage(t, contentionSrc), unboundedPolicy(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Verdict(); v != Incomplete {
		t.Fatalf("verdict = %v, want Incomplete", v)
	}
	if !hasKind(rep, AnalysisIncomplete) {
		t.Fatalf("hard budget abort not recorded: %v", rep.Violations)
	}
}
