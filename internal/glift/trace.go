package glift

import (
	"fmt"
	"io"

	"repro/internal/mcu"
)

// TraceEntry is one cycle of the per-cycle tainted state that
// input-independent gate-level taint tracking produces (the intermediate
// artifact between the two stages of Figure 6).
type TraceEntry struct {
	Cycle        uint64
	Instr        uint16 // address of the executing instruction
	State        uint64 // FSM state
	PCTainted    bool
	SRTainted    bool
	TaintedRegs  uint16 // bitmask over R0..R15
	TaintedRAM   int    // tainted bytes in data memory
	WdtTainted   bool
	PortsTainted uint8 // bitmask over output ports P1..P4
}

// String renders one trace line. RegNames supplies per-target register
// names; nil falls back to rN.
func (e TraceEntry) String() string { return e.Render(nil) }

// Render renders one trace line with the given register names (nil: rN).
func (e TraceEntry) Render(regName *[16]string) string {
	regs := ""
	for r := 0; r < 16; r++ {
		if e.TaintedRegs>>uint(r)&1 == 1 {
			if regs != "" {
				regs += ","
			}
			if regName != nil && regName[r] != "" {
				regs += regName[r]
			} else {
				regs += fmt.Sprintf("r%d", r)
			}
		}
	}
	if regs == "" {
		regs = "-"
	}
	return fmt.Sprintf("cycle %6d pc=%#04x st=%d pcT=%v srT=%v regs=%s ram=%dB wdt=%v ports=%04b",
		e.Cycle, e.Instr, e.State, e.PCTainted, e.SRTainted, regs, e.TaintedRAM, e.WdtTainted, e.PortsTainted)
}

// TraceRecorder captures the per-cycle tainted state during an analysis.
// Install with Options.Trace = recorder.Hook(). Sampling and a hard cap
// keep long explorations bounded.
type TraceRecorder struct {
	// Every samples one entry per N cycles (default 1).
	Every uint64
	// Max caps the number of retained entries (default 10000).
	Max int

	Entries []TraceEntry

	// regName is the analyzed target's register naming, captured from the
	// engine on the first hook call so WriteTo renders target names.
	regName *[16]string
}

// Hook returns the per-cycle callback to install in Options.Trace.
func (tr *TraceRecorder) Hook() func(e *Engine, ci *mcu.CycleInfo) {
	every := tr.Every
	if every == 0 {
		every = 1
	}
	max := tr.Max
	if max == 0 {
		max = 10000
	}
	return func(e *Engine, ci *mcu.CycleInfo) {
		if tr.regName == nil {
			tr.regName = &e.Sys.D.RegName
		}
		if len(tr.Entries) >= max {
			return
		}
		c := e.report.Stats.Cycles
		if c%every != 0 {
			return
		}
		entry := TraceEntry{
			Cycle:      c,
			Instr:      e.curInstr,
			State:      ci.State,
			PCTainted:  ci.PC.Tainted(),
			SRTainted:  e.Sys.GetWord(e.Sys.D.SR).Tainted(),
			TaintedRAM: e.Sys.RAM.TaintedBytes(e.Sys.D.Map.RAMStart, e.Sys.D.Map.RAMEnd),
			WdtTainted: e.Sys.GetWord(e.Sys.D.WdtCtl).Tainted() || e.Sys.GetWord(e.Sys.D.WdtCnt).Tainted(),
		}
		for r := 0; r < 16; r++ {
			if e.Sys.D.Regs[r] == nil {
				continue
			}
			if e.Sys.GetWord(e.Sys.D.Regs[r]).Tainted() {
				entry.TaintedRegs |= 1 << uint(r)
			}
		}
		for p := 0; p < mcu.NumPorts; p++ {
			if e.Sys.GetWord(e.Sys.D.PortOut[p]).Tainted() {
				entry.PortsTainted |= 1 << uint(p)
			}
		}
		tr.Entries = append(tr.Entries, entry)
	}
}

// WriteTo dumps the trace.
func (tr *TraceRecorder) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, e := range tr.Entries {
		m, err := fmt.Fprintln(w, e.Render(tr.regName))
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
