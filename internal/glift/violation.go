package glift

import (
	"fmt"
	"sort"
)

// Kind classifies an information flow violation. C1..C5 correspond to the
// five sufficient conditions of Section 5.1; the remaining kinds are direct
// policy violations or integrity failures of the protection mechanisms.
type Kind uint8

// Violation kinds.
const (
	// C1: a processor state element is tainted while untainted code executes.
	C1TaintedState Kind = iota
	// C2: a store may taint an untainted memory partition.
	C2MemoryEscape
	// C3: untainted code loads from a tainted memory partition.
	C3LoadTainted
	// C4: untainted code reads from a tainted input port.
	C4ReadTaintedPort
	// C5: tainted code writes to an untainted output port.
	C5WriteUntaintedPort
	// OutputPortTainted: tainted data reaches an output port that the policy
	// requires to stay untainted (a direct non-interference violation).
	OutputPortTainted
	// WatchdogTainted: the watchdog timer's control state or write strobe
	// can be tainted, so the untainted-reset recovery mechanism is unsound.
	WatchdogTainted
	// PCUnresolved: the program counter becomes unknown in a way the
	// analysis cannot concretize (e.g. an indirect jump through tainted
	// data); the path is abandoned conservatively.
	PCUnresolved
	// AnalysisIncomplete: an exploration budget was exhausted.
	AnalysisIncomplete
	numKinds
)

var kindNames = [...]string{
	"C1-tainted-state", "C2-memory-escape", "C3-load-tainted", "C4-read-tainted-port",
	"C5-write-untainted-port", "output-port-tainted", "watchdog-tainted",
	"pc-unresolved", "analysis-incomplete",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Condition returns 1..5 for the sufficient-condition kinds, 0 otherwise.
func (k Kind) Condition() int {
	if k <= C5WriteUntaintedPort {
		return int(k) + 1
	}
	return 0
}

// Violation is one potential information flow security violation, rooted at
// a static instruction address (root-cause identification, Section 6).
type Violation struct {
	Kind   Kind
	PC     uint16 // address of the offending instruction
	Cycle  uint64 // first cycle it was observed
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at %#04x (cycle %d): %s", v.Kind, v.PC, v.Cycle, v.Detail)
}

// Report is the output of an analysis run.
type Report struct {
	Policy     string
	Violations []Violation
	Stats      Stats
	// Err is non-nil when the engine aborted on an internal error (a
	// recovered panic). The rest of the report describes the partial
	// exploration up to that point and must not be read as a security
	// result; Verdict() returns InternalError.
	Err *RunError
}

// Verdict classifies the run fail-closed: InternalError dominates
// Incomplete, which dominates Violations. A cancelled or budget-exhausted
// run therefore can never read as Verified, even if no violation was
// observed before the exploration stopped.
func (r *Report) Verdict() Verdict {
	switch {
	case r.Err != nil:
		return InternalError
	case len(r.ByKind(AnalysisIncomplete)) > 0:
		return Incomplete
	case len(r.Violations) > 0:
		return Violations
	default:
		return Verified
	}
}

// Secure reports whether the run *proved* the policy: the exploration must
// have completed (Section 5.4's theorem quantifies over all executions, so
// a truncated exploration proves nothing) and found no violation.
func (r *Report) Secure() bool { return r.Verdict() == Verified }

// ByKind groups violations.
func (r *Report) ByKind(k Kind) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Kind == k {
			out = append(out, v)
		}
	}
	return out
}

// ViolatedConditions returns the set of sufficient conditions (1..5)
// violated, for the Table 2 rows.
func (r *Report) ViolatedConditions() []int {
	set := map[int]bool{}
	for _, v := range r.Violations {
		if c := v.Kind.Condition(); c != 0 {
			set[c] = true
		}
	}
	var out []int
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// ViolatingStorePCs lists the static addresses of store instructions that
// need masking (the input to the mask-insertion transform).
func (r *Report) ViolatingStorePCs() []uint16 {
	seen := map[uint16]bool{}
	var out []uint16
	for _, v := range r.Violations {
		if v.Kind == C2MemoryEscape && !seen[v.PC] {
			seen[v.PC] = true
			out = append(out, v.PC)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NeedsWatchdog reports whether tainted control flow was observed (C1), the
// condition that requires the watchdog-reset transform.
func (r *Report) NeedsWatchdog() bool { return len(r.ByKind(C1TaintedState)) > 0 }

// Stats describes the exploration.
type Stats struct {
	Cycles      uint64 // simulated machine cycles
	Paths       int    // execution points processed from the worklist
	Forks       int    // PC concretization forks
	Prunes      int    // paths terminated by the conservative state table
	Merges      int    // superstate widenings
	TableStates int    // distinct (branch, direction) table entries
	WallNanos   int64
	// PeakMemBytes is the peak approximate footprint of the conservative
	// state table plus the work queue (snapshot-sized units).
	PeakMemBytes int64
	// Escalations counts soft-memory-budget widening escalations (each one
	// halves the effective WidenAfter to force convergence).
	Escalations int
}

func (s Stats) String() string {
	out := fmt.Sprintf("cycles=%d paths=%d forks=%d prunes=%d merges=%d table=%d",
		s.Cycles, s.Paths, s.Forks, s.Prunes, s.Merges, s.TableStates)
	if s.PeakMemBytes > 0 {
		out += fmt.Sprintf(" mem=%dKiB", s.PeakMemBytes>>10)
	}
	if s.Escalations > 0 {
		out += fmt.Sprintf(" widen-escalations=%d", s.Escalations)
	}
	return out
}
