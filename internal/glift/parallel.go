package glift

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/logic"
	"repro/internal/mcu"
	"repro/internal/sim"
)

// Parallel exploration.
//
// The work queue's paths are independent simulations, but the conservative
// state table is not: whether a path prunes, how table entries widen, and
// every Stats counter depend on the exact order in which merge points hit
// the table. A racy table behind locks would make reports depend on thread
// scheduling — unacceptable, because Options.Workers is excluded from
// content-addressed job keys on the guarantee that results are identical.
//
// The engine therefore parallelizes the expensive part (gate-level
// simulation) while keeping the table protocol strictly sequential:
//
//   - N-1 speculation workers pull queued pathStates and simulate them
//     table-blind on private mcu.System instances, recording a trace: the
//     post-state snapshot at every PC-changing commit, the violations
//     raised in between, and how the segment ended (fork, abandonment,
//     truncation).
//   - The committer (the RunContext goroutine) pops the work queue in
//     normal DFS order. When a completed trace exists for the popped item
//     it replays the recorded table operations through the same
//     tableApply/push protocol the live path uses — at snapshot-compare
//     speed instead of simulation speed. The moment the authoritative
//     table disagrees with what the speculation assumed (a prune, or a
//     widen that changes the continuation state), the remaining trace is
//     discarded and the committer resumes live simulation from the last
//     recorded snapshot.
//
// Speculation is sound because table feedback into a running path happens
// only at a widen (the path continues from the merged superstate) — and
// that is exactly where replay falls back to live execution. Everywhere
// else the sequential engine continues from its own post-state, which the
// worker, having started from the same snapshot and simulated the same
// deterministic netlist, reproduced bit-identically. Misprediction
// therefore costs wasted worker time, never a wrong answer.

// SchedStats is a point-in-time view of the speculation scheduler,
// exported through Progress for observability. It is deliberately kept out
// of Stats: reports must stay byte-identical across worker counts.
type SchedStats struct {
	// Workers is the number of speculation workers (0: sequential run).
	Workers int
	// Busy is how many workers are simulating a segment right now.
	Busy int
	// DequeDepth is the number of queued path states no worker has claimed.
	DequeDepth int
	// Steals counts path states claimed by speculation workers.
	Steals uint64
	// SpecUsed counts speculated traces the committer replayed.
	SpecUsed uint64
	// SpecWasted counts speculated segments discarded before use (the
	// committer reached the item first, or the run ended).
	SpecWasted uint64
	// SpecLanes is the configured lane count per speculation batch
	// (0: scalar speculation).
	SpecLanes int
	// LaneBatches counts lockstep batches started by lane-packed workers.
	LaneBatches uint64
	// LanesPacked counts path states packed into those batches; divided by
	// LaneBatches*SpecLanes it is the lane occupancy.
	LanesPacked uint64
	// LanesWasted counts packed lanes abandoned before their trace was
	// published (committer reached the item mid-flight, or the run ended).
	LanesWasted uint64
}

// specItem states. An item moves specPending → specClaimed → specDone as a
// worker processes it; the committer moves it to specTaken from any
// non-done state when it pops the item, which tells an in-flight worker to
// abandon the segment.
const (
	specPending int32 = iota
	specClaimed
	specDone
	specTaken
)

// specEvent is one recorded violation raise (or, with budget set, the
// EvBudget trace marker that precedes the straight-line-budget violation),
// stamped with the segment-relative committed-cycle count at raise time.
type specEvent struct {
	cycles uint64
	kind   Kind
	pc     uint16
	detail string
	budget bool
}

// specOp is one recorded PC-changing commit: the table key, the post-commit
// machine state, and everything observed since the previous op.
type specOp struct {
	key      forkKey
	post     *mcu.Snapshot
	curInstr uint16
	cycles   uint64 // segment cycles committed, including this op's cycle
	events   []specEvent
}

// specAction is one fork-combination outcome, in enumeration order: either
// an unresolved-PC violation (viol set) or a committed successor state.
type specAction struct {
	viol *specEvent
	key  forkKey
	snap *mcu.Snapshot
}

// specEnd tells the committer how a speculated segment terminated.
type specEnd uint8

const (
	// endTruncated: the worker stopped early (self-covering loop, op or
	// byte cap, global-cycle bound); resume live from the last op.
	endTruncated specEnd = iota
	// endPathDone: the path ended in a violation (unresolved fetch or the
	// straight-line cycle budget); preEnd carries the terminal events.
	endPathDone
	// endFork: the path reached an unknown-PC cycle; fork holds the
	// concretized outcomes.
	endFork
)

// specTrace is the complete record of one speculated segment.
type specTrace struct {
	ops    []specOp
	preEnd []specEvent // events after the last op, including terminal ones
	end    specEnd
	// endCycles is the segment cycle count when the terminal cycle was
	// evaluated (commits before it, excluding fork-successor commits).
	endCycles uint64
	endInstr  uint16
	fork      []specAction
	bytes     int64 // snapshot bytes accounted against the pool budget
}

// specItem is one queued path state as the pool tracks it.
type specItem struct {
	id       uint64
	snap     *mcu.Snapshot
	curInstr uint16
	state    atomic.Int32
	trace    *specTrace
}

// maxSpecOps caps the ops recorded per segment, bounding both a single
// trace's memory and the worst-case waste when a trace is discarded.
const maxSpecOps = 4096

// specPool runs the speculation workers and tracks per-item state.
type specPool struct {
	e       *Engine
	workers int
	// lanes is the per-worker lockstep batch width (Options.SpecLanes
	// resolved; 1 means scalar speculation on private mcu.Systems).
	lanes int
	// budget bounds the snapshot bytes retained by not-yet-replayed traces
	// across all workers (the atomic footprint counter for speculation).
	// Crossing it only truncates new traces — it never aborts anything, so
	// it cannot influence the report.
	budget int64

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*specItem
	items   map[uint64]*specItem
	stopped bool

	wg   sync.WaitGroup
	done atomic.Bool

	busy        atomic.Int64
	steals      atomic.Uint64
	used        atomic.Uint64
	wasted      atomic.Uint64
	specBytes   atomic.Int64
	laneBatches atomic.Uint64
	lanesPacked atomic.Uint64
	lanesWasted atomic.Uint64
}

func newSpecPool(e *Engine, workers int) *specPool {
	budget := int64(512 << 20)
	if e.opt.SoftMemBytes > 0 {
		budget = e.opt.SoftMemBytes
	}
	lanes := e.opt.SpecLanes
	if lanes > sim.BatchLanes {
		lanes = sim.BatchLanes
	}
	if lanes < 1 {
		lanes = 1
	}
	p := &specPool{
		e:       e,
		workers: workers,
		lanes:   lanes,
		budget:  budget,
		items:   make(map[uint64]*specItem),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// offer registers a freshly enqueued path state for speculation. Called by
// the committer only; snapshots are immutable once taken, so sharing them
// with workers needs no copying.
func (p *specPool) offer(id uint64, snap *mcu.Snapshot, curInstr uint16) {
	it := &specItem{id: id, snap: snap, curInstr: curInstr}
	p.mu.Lock()
	p.items[id] = it
	p.pending = append(p.pending, it)
	p.mu.Unlock()
	p.cond.Signal()
}

// take claims the popped item for the committer. It returns the completed
// speculation trace if one exists; otherwise it marks the item taken (which
// aborts any in-flight worker) and the committer simulates live.
func (p *specPool) take(id uint64) *specTrace {
	p.mu.Lock()
	it := p.items[id]
	delete(p.items, id)
	p.mu.Unlock()
	if it == nil {
		return nil
	}
	for {
		switch st := it.state.Load(); st {
		case specDone:
			p.used.Add(1)
			p.specBytes.Add(-it.trace.bytes)
			return it.trace
		default:
			if it.state.CompareAndSwap(st, specTaken) {
				if st == specClaimed {
					p.wasted.Add(1)
				}
				return nil
			}
		}
	}
}

// stop terminates the workers and waits for them; in-flight segments are
// abandoned at their next poll.
func (p *specPool) stop() {
	p.done.Store(true)
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// sched snapshots the scheduler state for Progress emissions.
func (p *specPool) sched() SchedStats {
	depth := 0
	p.mu.Lock()
	for _, it := range p.pending {
		if it.state.Load() == specPending {
			depth++
		}
	}
	p.mu.Unlock()
	lanes := 0
	if p.lanes > 1 {
		lanes = p.lanes
	}
	return SchedStats{
		Workers:     p.workers,
		Busy:        int(p.busy.Load()),
		DequeDepth:  depth,
		Steals:      p.steals.Load(),
		SpecUsed:    p.used.Load(),
		SpecWasted:  p.wasted.Load(),
		SpecLanes:   lanes,
		LaneBatches: p.laneBatches.Load(),
		LanesPacked: p.lanesPacked.Load(),
		LanesWasted: p.lanesWasted.Load(),
	}
}

// next claims the most recently queued unclaimed item — the one the
// committer will reach soonest under DFS order, which maximizes the chance
// the speculation completes in time to be used.
func (p *specPool) next() *specItem {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for len(p.pending) > 0 {
			it := p.pending[len(p.pending)-1]
			p.pending = p.pending[:len(p.pending)-1]
			if it.state.CompareAndSwap(specPending, specClaimed) {
				p.steals.Add(1)
				return it
			}
		}
		if p.stopped {
			return nil
		}
		p.cond.Wait()
	}
}

// worker is one speculation goroutine: claim, simulate, publish. With
// SpecLanes > 1 it runs the lane-packed variant (speclanes.go) instead.
func (p *specPool) worker() {
	defer p.wg.Done()
	if p.lanes > 1 {
		p.batchWorker()
		return
	}
	var sys *mcu.System
	for {
		it := p.next()
		if it == nil {
			return
		}
		if sys == nil {
			s, err := buildSystem(p.e.design, p.e.img, p.e.Pol, p.e.opt.Backend)
			if err != nil {
				// Cannot build a private system: release the claim so the
				// committer simulates live, and retire this worker.
				it.state.CompareAndSwap(specClaimed, specTaken)
				return
			}
			sys = s
		}
		p.busy.Add(1)
		tr := p.speculateSafe(sys, it)
		p.busy.Add(-1)
		sys.Events() // drain diagnostics so a reused system cannot grow unbounded
		p.publish(it, tr)
	}
}

// publish installs a completed trace on its item (or releases the claim when
// tr is nil, so the committer simulates the item live).
func (p *specPool) publish(it *specItem, tr *specTrace) {
	if tr == nil {
		it.state.CompareAndSwap(specClaimed, specTaken)
		return
	}
	p.specBytes.Add(tr.bytes)
	it.trace = tr
	if !it.state.CompareAndSwap(specClaimed, specDone) {
		// The committer reached the item while we simulated it.
		p.specBytes.Add(-tr.bytes)
		p.wasted.Add(1)
	}
}

// speculateSafe runs speculate under a recover barrier: if the simulation
// panics, the trace is dropped and the committer reproduces the panic live
// inside RunContext's fail-closed recover, so parallel runs keep the exact
// InternalError semantics of sequential ones.
func (p *specPool) speculateSafe(sys *mcu.System, it *specItem) (tr *specTrace) {
	defer func() {
		if r := recover(); r != nil {
			tr = nil
		}
	}()
	return p.speculate(sys, it)
}

// speculate simulates one queued path state table-blind, recording the
// trace the committer needs to replay it deterministically. It mirrors
// runPathFrom cycle for cycle; the only table it consults is its own
// segment-local one (selfTab), used purely to stop simulating loops that
// will certainly prune. Returns nil when the segment was abandoned
// (committer took the item, or the pool stopped).
func (p *specPool) speculate(sys *mcu.System, it *specItem) *specTrace {
	e := p.e
	sys.Restore(it.snap)
	tr := &specTrace{}
	var cycles uint64
	curInstr := it.curInstr
	var pending []specEvent
	seen := make(map[Violation]bool)
	selfTab := make(map[forkKey]*mcu.Snapshot)

	raise := func(k Kind, pc uint16, detail string) {
		key := violationDedupKey(k, pc)
		if seen[key] {
			return
		}
		seen[key] = true
		pending = append(pending, specEvent{cycles: cycles, kind: k, pc: pc, detail: detail})
	}
	chk := cycleChecker{sys: sys, pol: e.Pol, ramRange: e.ramRange, raise: raise}
	truncate := func() *specTrace {
		tr.end = endTruncated
		tr.endCycles = cycles
		tr.endInstr = curInstr
		return tr
	}

	for {
		// An atomic load per cycle is noise next to a netlist evaluation,
		// and abandoning a segment the committer already passed frees this
		// worker for an item whose trace can still arrive in time.
		if it.state.Load() == specTaken || p.done.Load() {
			return nil
		}
		ci := sys.EvalCycle(nil)
		if ci.StateOK && ci.State == mcu.StFetch && ci.PmemOK {
			curInstr = ci.PmemAddr
		}
		if !ci.PmemOK {
			raise(PCUnresolved, curInstr, fmt.Sprintf("fetch address is unknown (pc=%s)", ci.PC))
			tr.preEnd, tr.end, tr.endCycles, tr.endInstr = pending, endPathDone, cycles, curInstr
			return tr
		}
		chk.check(ci, curInstr)
		if ci.PCNext.XM != 0 || ci.POR.V == logic.X || ci.IrqTkn.V == logic.X {
			tr.preEnd, tr.endCycles, tr.endInstr = pending, cycles, curInstr
			pending = nil
			forkOutcomes(sys, ci,
				func(detail string) {
					key := violationDedupKey(PCUnresolved, curInstr)
					if seen[key] {
						return
					}
					seen[key] = true
					tr.fork = append(tr.fork, specAction{
						viol: &specEvent{kind: PCUnresolved, pc: curInstr, detail: detail},
					})
				},
				func(k forkKey, civ *mcu.CycleInfo) {
					commitOn(sys, civ, func() { cycles++ })
					tr.fork = append(tr.fork, specAction{key: k, snap: sys.Snapshot()})
					tr.bytes += e.snapBytes
				})
			tr.end = endFork
			return tr
		}
		commitOn(sys, ci, func() { cycles++ })
		if modifiesPC(e.design, ci) {
			k := forkKey{pc: ci.PC.Val, state: stateCode(ci), dir: dirCode(ci.BranchTkn.V, ci.POR.V, ci.IrqTkn.V)}
			post := sys.Snapshot()
			tr.ops = append(tr.ops, specOp{key: k, post: post, curInstr: curInstr, cycles: cycles, events: pending})
			pending = nil
			tr.bytes += e.snapBytes
			if e.tableCovers(k, post) {
				// The authoritative table already covers this state: the
				// committer will almost certainly prune at this op, so
				// simulating further is almost certainly waste. This read
				// is advisory — it decides only where the trace stops,
				// never what it contains, so a stale answer costs time,
				// not determinism.
				return truncate()
			}
			if prev, ok := selfTab[k]; ok && post.SubstateOf(prev) {
				// The segment revisits its own merge point with a covered
				// state: the authoritative table will prune here too (its
				// entry covers at least as much), so simulating further is
				// pure waste.
				return truncate()
			}
			selfTab[k] = post
			if len(tr.ops) >= maxSpecOps || p.specBytes.Load()+tr.bytes > p.budget {
				return truncate()
			}
		}
		if cycles > e.opt.MaxPathCycles {
			pending = append(pending, specEvent{
				cycles: cycles, pc: curInstr, detail: "straight-line path cycle budget", budget: true,
			})
			raise(AnalysisIncomplete, curInstr, "path exceeded straight-line cycle budget")
			tr.preEnd, tr.end, tr.endCycles, tr.endInstr = pending, endPathDone, cycles, curInstr
			return tr
		}
		if cycles >= e.opt.MaxCycles {
			// The segment alone exceeds the whole run's cycle budget;
			// whatever the committer does, it will stop inside this stretch.
			return truncate()
		}
	}
}

// tableCovers reports whether the authoritative table entry at k already
// covers post. Speculation workers use it to stop simulating a segment the
// committer will prune — in the converged regime most popped paths die at
// their first merge point, and a table-blind worker would otherwise burn
// its time simulating far beyond it. The answer is advisory: it truncates
// the trace (whose tail the committer replaces with live execution when
// the real table disagrees), so a racy-stale read can cost throughput but
// can never change the report.
func (e *Engine) tableCovers(k forkKey, post *mcu.Snapshot) bool {
	e.tableMu.RLock()
	defer e.tableMu.RUnlock()
	c, ok := e.table[k]
	return ok && post.SubstateOf(c.snap)
}

// replayTrace commits one speculated segment: it re-applies the recorded
// merge points to the authoritative state table in exact sequential order,
// emits the recorded violations and trace events with their exact cycle
// stamps, and falls back to live simulation the moment the table's verdict
// diverges from what the speculation could assume (a prune ends the path; a
// widen resumes it live from the merged superstate; a global-budget
// crossing finishes the stretch cycle by cycle so the stop lands exactly
// where the sequential run stops).
func (e *Engine) replayTrace(ps pathState, tr *specTrace) {
	segBase := e.report.Stats.Cycles
	committed := uint64(0)
	advanceTo := func(c uint64) {
		if c > committed {
			e.advanceCycles(c - committed)
			committed = c
		}
	}
	emit := func(ev *specEvent) {
		advanceTo(ev.cycles)
		if ev.budget {
			e.traceEvent(EvBudget, ev.pc, len(e.work), ev.detail)
			return
		}
		e.violation(ev.kind, ev.pc, ev.detail)
	}
	// resumeAt switches to live simulation from a recorded state. The
	// straight-line budget is checked first because the sequential loop
	// checks it after the merge point that replay just applied.
	resumeAt := func(snap *mcu.Snapshot, curInstr uint16, pathCycles uint64) {
		e.Sys.Restore(snap)
		e.curInstr = curInstr
		if pathCycles > e.opt.MaxPathCycles {
			e.traceEvent(EvBudget, e.curInstr, len(e.work), "straight-line path cycle budget")
			e.violation(AnalysisIncomplete, e.curInstr, "path exceeded straight-line cycle budget")
			return
		}
		e.runPathFrom(pathCycles)
	}
	// resumeLast resumes from the most recent recorded op (or the segment
	// start when nothing was recorded yet).
	resumeLast := func() {
		if n := len(tr.ops); n > 0 {
			o := &tr.ops[n-1]
			resumeAt(o.post, o.curInstr, o.cycles)
			return
		}
		resumeAt(ps.snap, ps.curInstr, 0)
	}

	for i := range tr.ops {
		op := &tr.ops[i]
		if e.ctx.Err() != nil {
			return // the outer loop records the cancellation
		}
		if segBase+op.cycles > e.opt.MaxCycles {
			// This op's stretch crosses the global cycle budget: finish it
			// live so the run stops on the exact cycle the sequential
			// exploration would.
			if i == 0 {
				resumeAt(ps.snap, ps.curInstr, 0)
			} else {
				prev := &tr.ops[i-1]
				resumeAt(prev.post, prev.curInstr, prev.cycles)
			}
			return
		}
		for j := range op.events {
			emit(&op.events[j])
		}
		advanceTo(op.cycles)
		e.curInstr = op.curInstr
		switch oc, cont := e.tableApply(op.key, op.post); oc {
		case tablePruned:
			return
		case tableInserted:
			e.noteMem()
		case tableWidened:
			// The table continues from the merged superstate, which the
			// table-blind speculation could not know; the rest of the
			// trace no longer applies.
			resumeAt(cont, op.curInstr, op.cycles)
			return
		}
	}
	if e.ctx.Err() != nil {
		return
	}
	if tr.end == endTruncated {
		resumeLast()
		return
	}
	if segBase+tr.endCycles >= e.opt.MaxCycles {
		// The trailing stretch reaches (or crosses) the global budget
		// before the terminal cycle could execute: replay it live for an
		// exact stop.
		resumeLast()
		return
	}
	for j := range tr.preEnd {
		emit(&tr.preEnd[j])
	}
	advanceTo(tr.endCycles)
	e.curInstr = tr.endInstr
	if tr.end == endFork {
		for i := range tr.fork {
			a := &tr.fork[i]
			if a.viol != nil {
				e.violation(a.viol.kind, a.viol.pc, a.viol.detail)
				continue
			}
			e.advanceCycles(1)
			e.report.Stats.Forks++
			e.push(a.snap, e.curInstr, a.key, true)
			e.traceEvent(EvFork, a.key.pc, len(e.work), "")
		}
	}
}
