package glift

import (
	"encoding/json"
	"sort"
)

// canonicalRange is the canonical wire form of one address range.
type canonicalRange struct {
	Lo uint16 `json:"lo"`
	Hi uint16 `json:"hi"`
}

// canonicalPolicy is the canonical wire form of a Policy. Field order is
// fixed by the struct declaration; every slice is sorted and deduplicated
// before marshalling, so two policies produce byte-identical encodings
// exactly when they are semantically identical. Name is deliberately
// excluded: it is a display label and must not split otherwise identical
// cache entries.
type canonicalPolicy struct {
	TaintedInPorts       []int            `json:"tainted_in_ports"`
	TaintedOutPorts      []int            `json:"tainted_out_ports"`
	TaintedCode          []canonicalRange `json:"tainted_code"`
	TaintedData          []canonicalRange `json:"tainted_data"`
	InitiallyTaintedData []canonicalRange `json:"initially_tainted_data"`
	TaintCodeWords       bool             `json:"taint_code_words"`
}

func canonicalPorts(ps []int) []int {
	out := append([]int{}, ps...)
	sort.Ints(out)
	dst := out[:0]
	for i, p := range out {
		if i == 0 || p != out[i-1] {
			dst = append(dst, p)
		}
	}
	return dst
}

func canonicalRanges(rs []AddrRange) []canonicalRange {
	out := make([]canonicalRange, 0, len(rs))
	for _, r := range rs {
		out = append(out, canonicalRange{Lo: r.Lo, Hi: r.Hi})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lo != out[j].Lo {
			return out[i].Lo < out[j].Lo
		}
		return out[i].Hi < out[j].Hi
	})
	dst := out[:0]
	for i, r := range out {
		if i == 0 || r != out[i-1] {
			dst = append(dst, r)
		}
	}
	return dst
}

// CanonicalJSON returns a deterministic JSON encoding of the policy's
// semantic content: ports and ranges sorted and deduplicated, fields in a
// fixed order, the display Name excluded. It is the policy component of the
// service's content-addressed cache key — byte equality of two encodings
// implies the policies constrain the analysis identically.
func (p *Policy) CanonicalJSON() []byte {
	c := canonicalPolicy{
		TaintedInPorts:       canonicalPorts(p.TaintedInPorts),
		TaintedOutPorts:      canonicalPorts(p.TaintedOutPorts),
		TaintedCode:          canonicalRanges(p.TaintedCode),
		TaintedData:          canonicalRanges(p.TaintedData),
		InitiallyTaintedData: canonicalRanges(p.InitiallyTaintedData),
		TaintCodeWords:       p.TaintCodeWords,
	}
	b, err := json.Marshal(c)
	if err != nil {
		// canonicalPolicy contains only ints, bools and structs of uint16;
		// Marshal cannot fail on it.
		panic(err)
	}
	return b
}
