package glift

import "testing"

// Byte stores through tainted addresses are flagged like word stores.
func TestByteStoreEscapeFlagged(t *testing.T) {
	rep := analyze(t, `
start:  mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        mov.b #7, 0(r14)
done:   jmp done
`, &Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedData:    []AddrRange{{0x0400, 0x0800}},
	})
	if !hasKind(rep, C2MemoryEscape) {
		t.Fatalf("byte-store escape missed: %v", rep.Violations)
	}
}

// A tainted store *inside* the allowed partition is not a violation.
func TestInPartitionTaintedStoreAllowed(t *testing.T) {
	img := mustImage(t, `
start:  jmp tstart
t_done: jmp start
tstart: mov &0x0020, r5
        mov r5, &0x0500      ; tainted data into the tainted partition
        clr r5
        mov #0, sr
        jmp t_done
tend:   nop
`)
	pol := &Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedData:    []AddrRange{{0x0400, 0x0800}},
		TaintedCode:    []AddrRange{{img.MustSymbol("tstart"), img.MustSymbol("tend")}},
	}
	rep, err := Analyze(img, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hasKind(rep, C2MemoryEscape) {
		t.Fatalf("in-partition store wrongly flagged: %v", rep.Violations)
	}
}

// Loads through tainted addresses by untainted code are C3-flagged when the
// cover can reach the tainted partition.
func TestTaintedAddressLoadFlagged(t *testing.T) {
	rep := analyze(t, `
start:  mov &0x0500, r15     ; read an initially-secret word as an "index"
        mov #0x0200, r14
        add r15, r14
        mov @r14, r5          ; load through the secret-derived address
done:   jmp done
`, &Policy{
		Name:                 "confidentiality",
		TaintedData:          []AddrRange{{0x0400, 0x0800}},
		InitiallyTaintedData: []AddrRange{{0x0500, 0x0502}},
	})
	if !hasKind(rep, C3LoadTainted) {
		t.Fatalf("tainted-address load missed: %v", rep.Violations)
	}
}

// Stores whose write strobe could reach WDTCTL are watchdog violations even
// when they originate in untainted code moving tainted data.
func TestUntaintedCodeTaintedStoreToWdtRegion(t *testing.T) {
	rep := analyze(t, `
start:  mov &0x0020, r15
        mov #0x0100, r14
        add r15, r14         ; tainted address near the peripheral window
        mov #0x5a80, 0(r14)
done:   jmp done
`, &Policy{Name: "integrity", TaintedInPorts: []int{0}})
	if !hasKind(rep, WatchdogTainted) {
		t.Fatalf("wdt cover missed: %v", rep.Violations)
	}
}
