package glift

import (
	"encoding/json"
	"testing"
)

// TestCanonicalJSONDeterministic: semantically identical policies encode
// byte-identically regardless of slice order, duplicates, or display name.
func TestCanonicalJSONDeterministic(t *testing.T) {
	a := &Policy{
		Name:            "a",
		TaintedInPorts:  []int{2, 0, 2},
		TaintedOutPorts: []int{1},
		TaintedCode:     []AddrRange{{Lo: 0xf100, Hi: 0xf200}, {Lo: 0xf000, Hi: 0xf080}},
		TaintedData:     []AddrRange{{Lo: 0x0400, Hi: 0x0800}},
	}
	b := &Policy{
		Name:            "totally-different-name",
		TaintedInPorts:  []int{0, 2},
		TaintedOutPorts: []int{1},
		TaintedCode:     []AddrRange{{Lo: 0xf000, Hi: 0xf080}, {Lo: 0xf100, Hi: 0xf200}},
		TaintedData:     []AddrRange{{Lo: 0x0400, Hi: 0x0800}},
	}
	if string(a.CanonicalJSON()) != string(b.CanonicalJSON()) {
		t.Errorf("equivalent policies encode differently:\n%s\n%s", a.CanonicalJSON(), b.CanonicalJSON())
	}
	c := &Policy{Name: "a", TaintedInPorts: []int{0, 2}, TaintedOutPorts: []int{1, 3}}
	if string(a.CanonicalJSON()) == string(c.CanonicalJSON()) {
		t.Error("different policies encode identically")
	}
	// The encoding is valid JSON with the expected field set.
	var m map[string]any
	if err := json.Unmarshal(a.CanonicalJSON(), &m); err != nil {
		t.Fatalf("canonical encoding is not JSON: %v", err)
	}
	for _, k := range []string{"tainted_in_ports", "tainted_out_ports", "tainted_code",
		"tainted_data", "initially_tainted_data", "taint_code_words"} {
		if _, ok := m[k]; !ok {
			t.Errorf("canonical encoding missing %q", k)
		}
	}
	if _, ok := m["name"]; ok {
		t.Error("canonical encoding must exclude the display name")
	}
}

// TestReportJSONShape: the shared wire form carries verdict, exit code and
// stringly-typed violation kinds.
func TestReportJSONShape(t *testing.T) {
	rep := &Report{
		Policy: "p",
		Violations: []Violation{
			{Kind: C2MemoryEscape, PC: 0xf01c, Cycle: 42, Detail: "d"},
			{Kind: C1TaintedState, PC: 0xf020, Cycle: 50, Detail: "e"},
		},
		Stats: Stats{Cycles: 100, Paths: 3},
	}
	j := rep.JSON()
	if j.Verdict != "violations" || j.ExitCode != 1 || j.Secure {
		t.Errorf("verdict mapping wrong: %+v", j)
	}
	if len(j.Violations) != 2 || j.Violations[0].Kind != "C2-memory-escape" ||
		j.Violations[0].PC != "0xf01c" || j.Violations[0].Condition != 2 {
		t.Errorf("violations wire form wrong: %+v", j.Violations)
	}
	if len(j.ViolatedConditions) != 2 {
		t.Errorf("violated conditions = %v", j.ViolatedConditions)
	}
	if len(j.StoresNeedingMask) != 1 || j.StoresNeedingMask[0] != "0xf01c" {
		t.Errorf("stores needing mask = %v", j.StoresNeedingMask)
	}
	if !j.NeedsWatchdog {
		t.Error("C1 should imply needs_watchdog")
	}

	clean := &Report{Policy: "p", Stats: Stats{Cycles: 10}}
	cj := clean.JSON()
	if cj.Verdict != "verified" || cj.ExitCode != 0 || !cj.Secure {
		t.Errorf("clean report wire form wrong: %+v", cj)
	}
	// Violations must encode as [] rather than null so consumers can index
	// the field unconditionally.
	b, err := json.Marshal(cj)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["violations"].([]any); !ok {
		t.Errorf("violations should marshal as an array, got %T", m["violations"])
	}

	crashed := &Report{Policy: "p", Err: &RunError{Reason: "boom", Panic: "p"}}
	if j := crashed.JSON(); j.Verdict != "internal-error" || j.ExitCode != 3 || j.Err == nil || j.Err.Panic != "p" {
		t.Errorf("internal error wire form wrong: %+v", j)
	}
}

// TestReportJSONRoundTrip: ReportJSON.Report inverts Report.JSON and the
// re-serialized bytes are identical — the integrity contract the persistent
// result store builds on.
func TestReportJSONRoundTrip(t *testing.T) {
	reports := []*Report{
		{Policy: "clean", Stats: Stats{Cycles: 10, Paths: 1, WallNanos: 123, PeakMemBytes: 1 << 20}},
		{
			Policy: "viol",
			Violations: []Violation{
				{Kind: C2MemoryEscape, PC: 0xf01c, Cycle: 42, Detail: "store escapes"},
				{Kind: C1TaintedState, PC: 0xf020, Cycle: 50, Detail: "sr tainted"},
				{Kind: WatchdogTainted, PC: 0x0120, Cycle: 7, Detail: "wdt strobe"},
			},
			Stats: Stats{Cycles: 100, Paths: 3, Forks: 2, Merges: 1, TableStates: 4, Escalations: 1},
		},
		{
			Policy:     "cancelled",
			Violations: []Violation{{Kind: AnalysisIncomplete, PC: 0xf000, Cycle: 9, Detail: "cancelled"}},
			Stats:      Stats{Cycles: 9},
		},
	}
	for _, rep := range reports {
		want, err := json.Marshal(rep.JSON())
		if err != nil {
			t.Fatal(err)
		}
		var rj ReportJSON
		if err := json.Unmarshal(want, &rj); err != nil {
			t.Fatal(err)
		}
		back, err := rj.Report()
		if err != nil {
			t.Fatalf("%s: reconstructing: %v", rep.Policy, err)
		}
		got, err := json.Marshal(back.JSON())
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: round trip not byte-identical:\n got %s\nwant %s", rep.Policy, got, want)
		}
		if back.Verdict() != rep.Verdict() {
			t.Errorf("%s: verdict %v != %v", rep.Policy, back.Verdict(), rep.Verdict())
		}
	}

	// Corrupt wire forms are rejected, never silently reinterpreted.
	viol := reports[1].JSON()
	viol.Violations[0].Kind = "no-such-kind"
	if _, err := viol.Report(); err == nil {
		t.Error("unknown violation kind must fail reconstruction")
	}
	viol = reports[1].JSON()
	viol.Violations[0].PC = "not-hex"
	if _, err := viol.Report(); err == nil {
		t.Error("unparsable pc must fail reconstruction")
	}
	viol = reports[1].JSON()
	viol.Verdict = "verified" // derived field tampered with
	if _, err := viol.Report(); err == nil {
		t.Error("verdict mismatch must fail reconstruction")
	}
}

// TestKindFromString: every named kind round-trips.
func TestKindFromString(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Error("bogus kind should not parse")
	}
}

// TestOptionsNormalized: normalization fills every default, so an explicit
// default and an omitted field are indistinguishable (the property the
// content-addressed cache key relies on).
func TestOptionsNormalized(t *testing.T) {
	var zero *Options
	n := zero.Normalized()
	if n.MaxCycles == 0 || n.MaxPathCycles == 0 || n.WidenAfter == 0 ||
		n.SoftMemBytes == 0 || n.HardMemBytes == 0 {
		t.Errorf("defaults not applied: %+v", n)
	}
	explicit := &Options{MaxCycles: n.MaxCycles, MaxPathCycles: n.MaxPathCycles,
		WidenAfter: n.WidenAfter, SoftMemBytes: n.SoftMemBytes, HardMemBytes: n.HardMemBytes}
	e := explicit.Normalized()
	if e.MaxCycles != n.MaxCycles || e.MaxPathCycles != n.MaxPathCycles ||
		e.WidenAfter != n.WidenAfter || e.SoftMemBytes != n.SoftMemBytes ||
		e.HardMemBytes != n.HardMemBytes {
		t.Errorf("explicit defaults normalize differently: %+v vs %+v", e, n)
	}
}
