package glift_test

// Byte-identity pinning for the msp430 target across refactors.
//
// The differential suite proves reports are identical across performance
// knobs *within* one build; this test pins them across *builds*: the
// committed digests in testdata/msp430_report_digests.json were captured
// before the Target refactor, so any change to the engine, the mcu core,
// or the target plumbing that perturbs a single report byte (beyond wall
// time) fails here. Regenerate deliberately with:
//
//	go test ./internal/glift -run TestGoldenReportDigests -update-golden
//
// and justify the regeneration in the commit that carries it.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/bench"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/msp430_report_digests.json from the current build")

const goldenPath = "testdata/msp430_report_digests.json"

func TestGoldenReportDigests(t *testing.T) {
	got := map[string]string{}
	for _, b := range bench.All() {
		bt, err := bench.BuildUnmodified(b)
		if err != nil {
			t.Fatalf("build %s: %v", b.Name, err)
		}
		rep := analyzeConfig(t, bt, refConfig)
		sum := sha256.Sum256(normalizedReportJSON(t, rep))
		got[b.Name] = hex.EncodeToString(sum[:])
	}

	if *updateGolden {
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d digests", goldenPath, len(got))
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden digests (regenerate with -update-golden): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}

	names := make([]string, 0, len(got))
	for n := range got {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w, ok := want[n]
		if !ok {
			t.Errorf("%s: no committed digest (regenerate with -update-golden)", n)
			continue
		}
		if got[n] != w {
			t.Errorf("%s: report bytes changed: digest %s, committed %s", n, got[n], w)
		}
	}
	for n := range want {
		if _, ok := got[n]; !ok {
			t.Errorf("%s: committed digest has no benchmark", n)
		}
	}
}
