package glift

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/mcu"
)

// unboundedSrc loops forever over tainted input: the exploration converges
// only via widening, so it is a good subject for budget/cancellation tests.
const unboundedSrc = `
start:  mov &0x0020, r5
        and #7, r5
loop:   dec r5
        jnz loop
        jmp start
`

func unboundedPolicy() *Policy {
	return &Policy{Name: "integrity", TaintedInPorts: []int{0}}
}

// countdownSrc is a deep concrete nested loop (~2^32 cycles): with widening
// effectively disabled it unrolls precisely on a single straight-line path,
// which is what deadline and per-path-budget enforcement must interrupt.
const countdownSrc = `
start:  mov #0xffff, r6
outer:  mov #0xffff, r5
loop:   dec r5
        jnz loop
        dec r6
        jnz outer
        jmp start
`

// noWiden disables every convergence aid so only the mechanism under test
// can stop the countdown.
func noWiden() *Options {
	return &Options{
		MaxCycles: 1 << 40, MaxPathCycles: 1 << 40, WidenAfter: 1 << 30,
		SoftMemBytes: -1, HardMemBytes: -1,
	}
}

// A pre-cancelled context must return immediately with the Incomplete
// verdict — never Verified — and no hang or panic.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := AnalyzeContext(ctx, mustImage(t, unboundedSrc), unboundedPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Verdict(); v != Incomplete {
		t.Fatalf("verdict = %v, want Incomplete", v)
	}
	if rep.Secure() {
		t.Fatal("a cancelled run must never read as secure")
	}
	if !hasKind(rep, AnalysisIncomplete) {
		t.Fatalf("cancellation not recorded: %v", rep.Violations)
	}
}

// A deadline that expires mid-exploration aborts promptly with a partial
// report carrying Incomplete.
func TestRunDeadlineExpires(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := AnalyzeContext(ctx, mustImage(t, countdownSrc), &Policy{Name: "integrity"}, noWiden())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("deadline ignored: ran %v", elapsed)
	}
	if v := rep.Verdict(); v != Incomplete {
		t.Fatalf("verdict = %v, want Incomplete (violations %v)", v, rep.Violations)
	}
	found := false
	for _, v := range rep.ByKind(AnalysisIncomplete) {
		if strings.Contains(v.Detail, "cancelled") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cancellation diagnostic in %v", rep.Violations)
	}
}

// MaxCycles exhaustion on the unbounded loop: Incomplete verdict, pending
// paths recorded, no hang.
func TestMaxCyclesExhaustionVerdict(t *testing.T) {
	rep, err := Analyze(mustImage(t, unboundedSrc), unboundedPolicy(), &Options{MaxCycles: 20})
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Verdict(); v != Incomplete {
		t.Fatalf("verdict = %v, want Incomplete", v)
	}
	if rep.Secure() {
		t.Fatal("budget-exhausted run must never read as secure")
	}
}

// MaxPathCycles exhaustion: a straight-line runaway (widening disabled so
// the loop never merges) trips the per-path budget, not a hang.
func TestMaxPathCyclesExhaustionVerdict(t *testing.T) {
	rep, err := Analyze(mustImage(t, countdownSrc), &Policy{Name: "integrity"},
		&Options{MaxPathCycles: 50, WidenAfter: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(rep, AnalysisIncomplete) {
		t.Fatalf("path budget exhaustion not recorded: %v", rep.Violations)
	}
	if v := rep.Verdict(); v != Incomplete {
		t.Fatalf("verdict = %v, want Incomplete", v)
	}
}

// A soft memory budget of one byte forces widening escalation on every new
// table entry; the run still converges (graceful degradation) and records
// the escalations.
func TestSoftMemBudgetEscalates(t *testing.T) {
	rep, err := Analyze(mustImage(t, unboundedSrc), unboundedPolicy(),
		&Options{SoftMemBytes: 1, HardMemBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Escalations == 0 {
		t.Fatal("soft budget crossing did not escalate widening")
	}
	if rep.Stats.PeakMemBytes == 0 {
		t.Fatal("memory accounting recorded nothing")
	}
	if hasKind(rep, AnalysisIncomplete) {
		t.Fatalf("escalated widening should still converge: %v", rep.Violations)
	}
	t.Logf("stats: %s", rep.Stats)
}

// A hard memory budget of one byte aborts fail-closed with Incomplete.
func TestHardMemBudgetAborts(t *testing.T) {
	rep, err := Analyze(mustImage(t, unboundedSrc), unboundedPolicy(),
		&Options{SoftMemBytes: -1, HardMemBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Verdict(); v != Incomplete {
		t.Fatalf("verdict = %v, want Incomplete", v)
	}
	found := false
	for _, v := range rep.ByKind(AnalysisIncomplete) {
		if strings.Contains(v.Detail, "memory budget") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no memory-budget diagnostic in %v", rep.Violations)
	}
}

// An internal panic (here injected through the per-cycle trace hook) is
// recovered into the InternalError verdict with the diagnostic attached —
// the engine never lets a crash read as a security result.
func TestPanicRecoveredAsInternalError(t *testing.T) {
	eng, err := NewEngine(mustImage(t, unboundedSrc), unboundedPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetTrace(func(e *Engine, ci *mcu.CycleInfo) {
		panic("injected engine fault")
	})
	rep := eng.Run()
	if rep == nil {
		t.Fatal("no report after panic")
	}
	if v := rep.Verdict(); v != InternalError {
		t.Fatalf("verdict = %v, want InternalError", v)
	}
	if rep.Secure() {
		t.Fatal("a crashed run must never read as secure")
	}
	if rep.Err == nil || rep.Err.Panic != "injected engine fault" {
		t.Fatalf("panic diagnostic lost: %+v", rep.Err)
	}
	if rep.Err.Stack == "" {
		t.Fatal("no stack captured")
	}
	if !strings.Contains(rep.Err.Error(), "injected engine fault") {
		t.Fatalf("Error() omits the panic: %s", rep.Err.Error())
	}
	if rep.Stats.WallNanos == 0 {
		t.Fatal("wall time not stamped on the partial report")
	}
}

// Verdict precedence and the CLI exit-code contract.
func TestVerdictPrecedenceAndExitCodes(t *testing.T) {
	cases := []struct {
		name string
		rep  *Report
		want Verdict
		code int
	}{
		{"clean", &Report{}, Verified, 0},
		{"violations", &Report{Violations: []Violation{{Kind: C2MemoryEscape}}}, Violations, 1},
		{"incomplete", &Report{Violations: []Violation{{Kind: AnalysisIncomplete}}}, Incomplete, 3},
		{"incomplete-masks-violations", &Report{Violations: []Violation{
			{Kind: C2MemoryEscape}, {Kind: AnalysisIncomplete}}}, Incomplete, 3},
		{"internal-error-dominates", &Report{
			Violations: []Violation{{Kind: C2MemoryEscape}},
			Err:        &RunError{Reason: "x"}}, InternalError, 3},
	}
	for _, tc := range cases {
		if got := tc.rep.Verdict(); got != tc.want {
			t.Errorf("%s: verdict = %v, want %v", tc.name, got, tc.want)
		}
		if got := tc.rep.Verdict().ExitCode(); got != tc.code {
			t.Errorf("%s: exit code = %d, want %d", tc.name, got, tc.code)
		}
	}
	for v := Verified; v <= InternalError; v++ {
		if v.String() == "" || strings.HasPrefix(v.String(), "verdict(") {
			t.Errorf("missing name for verdict %d", v)
		}
	}
}

// Cancellation inside a long straight-line path (between merge points) is
// honoured via the periodic in-path check.
func TestCancelMidPath(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	img := mustImage(t, countdownSrc)
	eng, err := NewEngine(img, &Policy{Name: "integrity"}, noWiden())
	if err != nil {
		t.Fatal(err)
	}
	var cycles int
	eng.SetTrace(func(e *Engine, ci *mcu.CycleInfo) {
		cycles++
		if cycles == 100 {
			cancel()
		}
	})
	done := make(chan *Report, 1)
	go func() { done <- eng.RunContext(ctx) }()
	select {
	case rep := <-done:
		if v := rep.Verdict(); v != Incomplete {
			t.Fatalf("verdict = %v, want Incomplete", v)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation not honoured: run still going after 30s")
	}
}
