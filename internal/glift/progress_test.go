package glift

import (
	"testing"

	"repro/internal/asm"
)

// TestProgressHook: an installed Progress hook observes intermediate
// snapshots on long runs and always a final Done snapshot whose stats match
// the returned report.
func TestProgressHook(t *testing.T) {
	img, err := asm.AssembleSource(`
start:  mov #0x0280, sp
        mov #9000, r10
lp:     dec r10
        jnz lp
end:    jmp end
`)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Progress
	opt := &Options{
		// Unroll the loop precisely so the run is long enough to cross the
		// progress granularity at least once.
		WidenAfter: 1 << 20,
		Progress:   func(p Progress) { snaps = append(snaps, p) },
	}
	rep, err := Analyze(img, &Policy{Name: "progress"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress callbacks")
	}
	last := snaps[len(snaps)-1]
	if !last.Done {
		t.Error("final snapshot should have Done set")
	}
	if last.Stats.Cycles != rep.Stats.Cycles {
		t.Errorf("final snapshot cycles %d != report cycles %d", last.Stats.Cycles, rep.Stats.Cycles)
	}
	if rep.Stats.Cycles <= progressEvery {
		t.Fatalf("run too short (%d cycles) to exercise intermediate progress", rep.Stats.Cycles)
	}
	if len(snaps) < 2 {
		t.Error("expected at least one intermediate snapshot on a long run")
	}
	for i, p := range snaps[:len(snaps)-1] {
		if p.Done {
			t.Errorf("snapshot %d marked Done before the run finished", i)
		}
	}
	// WallNanos is refreshed on every snapshot, not only when RunContext
	// returns: each one carries a positive, non-decreasing elapsed time.
	var prev int64
	for i, p := range snaps {
		if p.Stats.WallNanos <= 0 {
			t.Errorf("snapshot %d: WallNanos %d not populated", i, p.Stats.WallNanos)
		}
		if p.Stats.WallNanos < prev {
			t.Errorf("snapshot %d: WallNanos went backwards (%d < %d)", i, p.Stats.WallNanos, prev)
		}
		prev = p.Stats.WallNanos
	}
}

// TestProgressForkHeavyCadence: cycles committed during fork concretization
// happen outside runPath's loop, so a cadence test on absolute cycle
// positions could be stepped over indefinitely. Counting cycles since the
// last emission must keep intermediate snapshots flowing on fork-heavy runs.
func TestProgressForkHeavyCadence(t *testing.T) {
	// The tainted flag makes every jnz fork into two briefly-divergent
	// successors, so a large share of all cycle commits happens inside the
	// fork path rather than runPath's main loop. Shrinking the cadence keeps
	// the (exponential) benchmark small while still crossing the granularity
	// dozens of times.
	defer func(prev uint64) { progressEvery = prev }(progressEvery)
	progressEvery = 512
	img, err := asm.AssembleSource(`
start:  mov #0x0280, sp
        mov #10, r10
lp:     mov &0x0020, r5     ; tainted P1IN
        bit #1, r5          ; tainted Z flag
        jnz join            ; forks on the unknown branch condition
        nop
join:   dec r10
        jnz lp
end:    jmp end
`)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Progress
	opt := &Options{
		WidenAfter: 1 << 20, // unroll precisely so every lap forks
		Progress:   func(p Progress) { snaps = append(snaps, p) },
	}
	rep, err := Analyze(img, &Policy{Name: "fork-cadence", TaintedInPorts: []int{0}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Forks == 0 {
		t.Fatalf("benchmark did not fork: %s", rep.Stats)
	}
	if rep.Stats.Cycles <= 2*progressEvery {
		t.Fatalf("run too short (%d cycles) to exercise the cadence", rep.Stats.Cycles)
	}
	if len(snaps) < 2 {
		t.Fatalf("fork-heavy run starved the progress hook: %d snapshots over %d cycles",
			len(snaps), rep.Stats.Cycles)
	}
	// Emissions land within one progressEvery window of each other.
	for i := 1; i < len(snaps); i++ {
		if d := snaps[i].Stats.Cycles - snaps[i-1].Stats.Cycles; d > 2*progressEvery {
			t.Errorf("gap of %d cycles between snapshots %d and %d (cadence %d)",
				d, i-1, i, progressEvery)
		}
	}
}
