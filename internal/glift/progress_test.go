package glift

import (
	"testing"

	"repro/internal/asm"
)

// TestProgressHook: an installed Progress hook observes intermediate
// snapshots on long runs and always a final Done snapshot whose stats match
// the returned report.
func TestProgressHook(t *testing.T) {
	img, err := asm.AssembleSource(`
start:  mov #0x0280, sp
        mov #9000, r10
lp:     dec r10
        jnz lp
end:    jmp end
`)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Progress
	opt := &Options{
		// Unroll the loop precisely so the run is long enough to cross the
		// progress granularity at least once.
		WidenAfter: 1 << 20,
		Progress:   func(p Progress) { snaps = append(snaps, p) },
	}
	rep, err := Analyze(img, &Policy{Name: "progress"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress callbacks")
	}
	last := snaps[len(snaps)-1]
	if !last.Done {
		t.Error("final snapshot should have Done set")
	}
	if last.Stats.Cycles != rep.Stats.Cycles {
		t.Errorf("final snapshot cycles %d != report cycles %d", last.Stats.Cycles, rep.Stats.Cycles)
	}
	if rep.Stats.Cycles <= progressEvery {
		t.Fatalf("run too short (%d cycles) to exercise intermediate progress", rep.Stats.Cycles)
	}
	if len(snaps) < 2 {
		t.Error("expected at least one intermediate snapshot on a long run")
	}
	for i, p := range snaps[:len(snaps)-1] {
		if p.Done {
			t.Errorf("snapshot %d marked Done before the run finished", i)
		}
	}
}
