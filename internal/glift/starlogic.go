package glift

import (
	"time"

	"repro/internal/asm"
	"repro/internal/logic"
)

// StarReport summarizes an application-agnostic *-logic style analysis
// (Tiwari et al. [19]) applied directly to commodity hardware. Unlike the
// application-specific engine, *-logic does not concretize an unknown PC:
// once input-dependent control flow taints the PC, the unknown tainted PC
// propagates through instruction fetch and decode until most of the
// software-exercisable design is unknown and tainted — including the state
// the software protection mechanisms rely on (Footnote 8 of the paper).
type StarReport struct {
	// PCBecameUnknown reports whether input-dependent control flow occurred.
	PCBecameUnknown bool
	// GateTaintFraction is the fraction of gate outputs tainted after the
	// analysis settles.
	GateTaintFraction float64
	// DFFTaintFraction is the fraction of flip-flops tainted.
	DFFTaintFraction float64
	// WatchdogTainted reports whether the watchdog timer state was tainted —
	// when true, software techniques cannot be verified under *-logic.
	WatchdogTainted bool
	// Cycles simulated.
	Cycles uint64
	// WallNanos is the analysis wall-clock time.
	WallNanos int64
}

// StarLogic runs the application-agnostic baseline on a system binary. The
// simulation proceeds concretely-symbolically like Algorithm 1, but on the
// first unknown PC the PC register is replaced by a tainted unknown (no
// per-path concretization) and the machine is settled for settleCycles
// cycles before measuring taint coverage.
func StarLogic(img *asm.Image, pol *Policy, settleCycles int) (*StarReport, error) {
	e, err := NewEngine(img, pol, nil)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rep := &StarReport{}
	s := e.Sys
	s.PowerOn()
	s.Step()

	// Run until the PC's next value becomes unknown (or the program settles
	// into a fixpoint, detected crudely by a cycle budget).
	for i := 0; i < 100_000; i++ {
		ci := s.EvalCycle(nil)
		rep.Cycles++
		if ci.PCNext.XM != 0 {
			rep.PCBecameUnknown = true
			break
		}
		s.Commit(ci)
	}

	if rep.PCBecameUnknown {
		// *-logic keeps the abstract PC: make it a tainted unknown and let
		// the machine degrade.
		for _, bit := range s.D.PC {
			s.C.SetInput(bit, logic.XT)
		}
		for i := 0; i < settleCycles; i++ {
			ci := s.EvalCycle(nil)
			s.Commit(ci)
			rep.Cycles++
		}
	}

	s.EvalCycle(nil)
	gates := s.D.NL.Gates
	tainted := 0
	for i := range gates {
		if s.C.Get(gates[i].Out).T {
			tainted++
		}
	}
	rep.GateTaintFraction = float64(tainted) / float64(len(gates))
	dffs := s.D.NL.DFFs
	dt := 0
	for i := range dffs {
		if s.C.Get(dffs[i].Q).T {
			dt++
		}
	}
	rep.DFFTaintFraction = float64(dt) / float64(len(dffs))
	rep.WatchdogTainted = s.GetWord(s.D.WdtCtl).Tainted() || s.GetWord(s.D.WdtCnt).Tainted()
	rep.WallNanos = time.Since(start).Nanoseconds()
	return rep, nil
}
