// Package glift implements the paper's primary contribution:
// application-specific gate-level information flow tracking. Given a
// processor netlist (internal/mcu), a complete system binary and an
// information flow security policy, it performs input-independent symbolic
// gate-level taint tracking of every possible execution (Algorithm 1),
// checks the non-interference policy via the five sufficient conditions of
// Section 5.1, and identifies the root-cause instructions of every possible
// violation so that internal/transform can repair the software.
package glift

import "fmt"

// AddrRange is a half-open address interval [Lo, Hi).
type AddrRange struct {
	Lo, Hi uint16
}

// Contains reports membership.
func (r AddrRange) Contains(a uint16) bool { return a >= r.Lo && a < r.Hi }

// Intersects reports whether any address matching the free/want pattern
// falls in the range (free bits may take any value).
func (r AddrRange) IntersectsPattern(free, want uint16) bool {
	fixed := ^free
	for a := uint32(r.Lo); a < uint32(r.Hi); a++ {
		if uint16(a)&fixed == want&fixed {
			return true
		}
	}
	return false
}

// Policy is one information flow security policy instance. The paper's
// non-interference policy uses two independent taints (untrusted and
// secret); each is analyzed by its own Policy value — the semantics here
// are "tainted data must never reach an untainted sink".
type Policy struct {
	Name string

	// TaintedInPorts lists input-port indices whose data is tainted
	// (untrusted or secret). All other input ports provide untainted
	// unknowns.
	TaintedInPorts []int

	// TaintedOutPorts lists output ports tainted code may legally drive.
	// Every other output port must remain untainted forever.
	TaintedOutPorts []int

	// TaintedCode lists program-memory partitions holding tainted code
	// (the untrusted task); UntaintedCode is everything else.
	TaintedCode []AddrRange

	// TaintedData lists the data-memory partitions tainted code owns and
	// tainted data may occupy. All other RAM is the untainted partition.
	TaintedData []AddrRange

	// InitiallyTaintedData marks data partitions whose *initial* contents
	// are tainted (e.g. a secret key region).
	InitiallyTaintedData []AddrRange

	// TaintCodeWords, when set, additionally marks the instruction words of
	// the tainted code partitions as tainted data in program memory (the
	// Figure 8 experiment). The default (false) follows footnote 3 of the
	// paper: partition labels steer the checker, but instruction words are
	// not taint sources; tainted control flow then arises only through
	// control dependences on tainted data.
	TaintCodeWords bool
}

// InTaintedCode reports whether an instruction address belongs to a tainted
// code partition.
func (p *Policy) InTaintedCode(a uint16) bool {
	for _, r := range p.TaintedCode {
		if r.Contains(a) {
			return true
		}
	}
	return false
}

// InTaintedData reports whether a data address is inside a tainted
// partition.
func (p *Policy) InTaintedData(a uint16) bool {
	for _, r := range p.TaintedData {
		if r.Contains(a) {
			return true
		}
	}
	return false
}

// PatternEscapesTaintedData reports whether an address pattern with free
// bits could reach RAM outside every tainted data partition.
func (p *Policy) patternEscapes(free, want uint16, ram AddrRange) bool {
	fixed := ^free
	for a := uint32(ram.Lo); a < uint32(ram.Hi); a++ {
		if uint16(a)&fixed != want&fixed {
			continue
		}
		if !p.InTaintedData(uint16(a)) {
			return true
		}
	}
	return false
}

// TaintedInPort reports whether input port i is a taint source.
func (p *Policy) TaintedInPort(i int) bool {
	for _, t := range p.TaintedInPorts {
		if t == i {
			return true
		}
	}
	return false
}

// TaintedOutPort reports whether output port i is a legal tainted sink.
func (p *Policy) TaintedOutPort(i int) bool {
	for _, t := range p.TaintedOutPorts {
		if t == i {
			return true
		}
	}
	return false
}

// Validate sanity-checks the policy.
func (p *Policy) Validate() error {
	for _, r := range append(append([]AddrRange{}, p.TaintedCode...), p.TaintedData...) {
		if r.Lo >= r.Hi {
			return fmt.Errorf("glift: empty range %#04x..%#04x in policy %q", r.Lo, r.Hi, p.Name)
		}
	}
	return nil
}
