package glift

import "testing"

// The paper's Section 5.2 argument against interrupt-based recovery, shown
// in gates: a timer interrupt returns control to trusted code, but the
// entry spills the tainted PC and SR onto the stack, and the PC itself
// remains control-tainted — only the untainted watchdog power-on reset
// recovers trusted execution.
func TestInterruptRecoveryIsUnsound(t *testing.T) {
	src := `
.equ TACTL,  0x0160
.equ TACCR0, 0x0162
.equ P1IN,   0x0020
start:  mov #0x0380, sp      ; stack in the untainted region
        mov #50, &TACCR0
        mov #1, &TACTL
        eint
        jmp tstart
tstart: mov &P1IN, r10       ; tainted input
        and #3, r10
loop:   dec r10
        jnz loop             ; tainted control flow
spin:   jmp spin             ; wait for the "rescue" interrupt
tend:   nop

.org 0xf100
isr:    mov #1, &TACTL       ; trusted ISR: acknowledge and return
        reti

.org 0xfff6
        .word isr
`
	img := mustImage(t, src)
	pol := &Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedCode:    []AddrRange{{img.MustSymbol("tstart"), img.MustSymbol("tend")}},
		TaintedData:    []AddrRange{{0x0400, 0x0800}},
	}
	rep, err := Analyze(img, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The ISR executes with a tainted PC (condition 1) and the entry spills
	// tainted state into untainted memory (condition 2) — the interrupt
	// does not rescue the system.
	if !hasKind(rep, C1TaintedState) {
		t.Fatalf("expected C1 (ISR runs under tainted control), got %v", rep.Violations)
	}
	if !hasKind(rep, C2MemoryEscape) {
		t.Fatalf("expected C2 (tainted PC/SR pushed to untainted stack), got %v", rep.Violations)
	}
}

// The same rescue attempt via the watchdog verifies (the companion result;
// Figure 8's mechanism). The tainted task is identical; the recovery
// mechanism is the only difference.
func TestWatchdogRecoveryIsSound(t *testing.T) {
	src := `
.equ WDTCTL, 0x0120
.equ P1IN,   0x0020
start:  mov #0x0380, sp
        mov #0x5a03, &WDTCTL ; 64-cycle deterministic bound
        jmp tstart
tstart: mov &P1IN, r10
        and #3, r10
loop:   dec r10
        jnz loop
spin:   jmp spin             ; wait for the power-on reset
tend:   nop
`
	img := mustImage(t, src)
	pol := &Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedCode:    []AddrRange{{img.MustSymbol("tstart"), img.MustSymbol("tend")}},
		TaintedData:    []AddrRange{{0x0400, 0x0800}},
	}
	rep, err := Analyze(img, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Secure() {
		t.Fatalf("watchdog recovery should verify: %v", rep.Violations)
	}
}

// An interrupt-driven system that keeps interrupts away from the tainted
// task (GIE off during the task; the timer serves only trusted code) leaks
// nothing: no taint violation of any kind is reported. What conservative
// merging *cannot* always do is fully resolve interrupt-return targets
// once saved-PC stack slots have been widened across many entry points —
// the analysis then reports an explicit PCUnresolved rather than silently
// under-approximating (the paper's Footnote 4 notes that complex control
// structures may need exploration heuristics; its own systems sidestep
// this by using the watchdog reset, not interrupt returns, for recovery).
func TestInterruptsInTrustedCodeOnlyVerify(t *testing.T) {
	src := `
.equ TACTL,  0x0160
.equ TACCR0, 0x0162
start:  mov #0x0380, sp
        mov #60, &TACCR0
        mov #1, &TACTL
        eint
main:   inc r9               ; trusted foreground
        jmp main

.org 0xf100
isr:    add #1, &0x0310      ; trusted bookkeeping
        mov #1, &TACTL
        reti

.org 0xfff6
        .word isr
`
	img := mustImage(t, src)
	rep, err := Analyze(img, &Policy{Name: "integrity"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		if v.Kind != PCUnresolved && v.Kind != AnalysisIncomplete {
			t.Fatalf("trusted interrupt system leaked taint: %v", v)
		}
	}
}
