package glift

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/asm"
	"repro/internal/logic"
	"repro/internal/mcu"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// SharedDesign returns the singleton msp430 gate-level processor netlist,
// shared with the target registry (internal/target) so both consumers
// memoize one build.
func SharedDesign() *mcu.Design { return mcu.Shared() }

// Options tunes an analysis run.
type Options struct {
	// MaxCycles bounds total simulated cycles (0: default 4M).
	MaxCycles uint64
	// Workers is the number of exploration workers (0: default GOMAXPROCS;
	// 1: strictly sequential, the pre-parallel behavior). Additional workers
	// speculatively simulate queued path states on private mcu.System
	// instances while a single committer replays their recorded traces
	// through the conservative state table in exact sequential order, so a
	// run produces the same Report — byte-identical modulo wall-time fields
	// — for every worker count. Because results cannot depend on it,
	// Workers is deliberately excluded from Normalized() and from
	// content-addressed job keys. Runs with a per-cycle Trace hook are
	// forced sequential (the hook observes live simulation state).
	Workers int
	// Backend selects the gate-evaluation backend for every simulation
	// instance of the run, including the speculation pool's private
	// systems (zero value: sim.BackendCompiled). Backends are
	// observationally identical — the differential suite byte-compares
	// reports across them — so like Workers, Backend changes only wall
	// time and is excluded from Normalized() and content-addressed job
	// keys.
	Backend sim.BackendKind
	// SpecLanes packs queued path states into word-parallel speculation
	// batches: each speculation worker claims up to SpecLanes states and
	// simulates them in lockstep on one bitsliced sim.BatchBackend, one
	// state per lane, instead of one at a time (0 or 1: scalar speculation;
	// capped at sim.BatchLanes). Lanes that hit a fork retire with a
	// truncated trace, which the committer finishes live — the standard
	// truncation path — so like Workers and Backend this changes only wall
	// time, never the report, and is excluded from Normalized() and
	// content-addressed job keys. Ignored for sequential runs (Workers 1).
	SpecLanes int
	// MaxPathCycles bounds cycles on one path segment without a merge point
	// (0: default 200k) — a straight-line runaway guard.
	MaxPathCycles uint64
	// WidenAfter is the number of visits to one PC-changing site after
	// which states are widened (merged to a conservative superstate) rather
	// than tracked precisely. Below the threshold, concretely-bounded loops
	// unroll exactly, preserving loop-pointer precision; above it, widening
	// forces convergence of input-dependent or unbounded loops (0: 512).
	WidenAfter int
	// SoftMemBytes is the approximate memory budget for the conservative
	// state table plus the work queue. While the footprint exceeds it, each
	// new table entry halves the effective WidenAfter (down to 1), trading
	// loop-unrolling precision for convergence so the run can still finish
	// (0: default 512 MiB; negative: unlimited).
	SoftMemBytes int64
	// HardMemBytes is the fail-closed memory ceiling: crossing it aborts
	// the exploration with an AnalysisIncomplete verdict instead of letting
	// the process die on OOM (0: default 2 GiB; negative: unlimited).
	HardMemBytes int64
	// Trace receives per-cycle callbacks (e.g. taint trace recording).
	Trace func(e *Engine, ci *mcu.CycleInfo)
	// Tracer, when set, receives structured exploration events — path
	// starts/ends, forks, merges, prunes, widening escalations, violations
	// and budget crossings — each stamped with the cycle count and wall
	// time (the feed for obs.ExplorationTrace and its Chrome trace_event
	// output). Called from the exploration goroutine; nil costs one
	// pointer test per event site, never per cycle.
	Tracer func(TraceEvent)
	// Progress, when set, receives a statistics snapshot every
	// progressEvery committed cycles and once more (Done=true) when the
	// run finishes. It is called from the exploration goroutine; hooks
	// that publish to other goroutines must do their own synchronization.
	Progress func(Progress)
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.MaxCycles == 0 {
		out.MaxCycles = 4_000_000
	}
	if out.MaxPathCycles == 0 {
		out.MaxPathCycles = 200_000
	}
	if out.WidenAfter == 0 {
		out.WidenAfter = 512
	}
	if out.SoftMemBytes == 0 {
		out.SoftMemBytes = 512 << 20
	}
	if out.HardMemBytes == 0 {
		out.HardMemBytes = 2 << 30
	}
	return out
}

// Normalized returns the options with every default applied — the canonical
// form used for content-addressed job keys, so an explicitly spelled-out
// default and an omitted field hash identically. The callback fields do not
// participate in normalization, and Workers and Backend are zeroed: neither
// the worker count nor the evaluation backend can change the report (the
// parallel mode's determinism guarantee and the backend differential
// guarantee), so submissions differing only in them must share one cache
// entry.
func (o *Options) Normalized() Options {
	out := o.withDefaults()
	out.Workers = 0
	out.Backend = sim.BackendCompiled
	out.SpecLanes = 0
	return out
}

// forkKey identifies a conservative-state-table entry: a PC-changing
// commit site (PC value plus FSM state, since a mid-instruction cycle's PC
// can equal another instruction's fetch address) plus the concrete control
// decisions taken (Algorithm 1's table of previously observed states).
type forkKey struct {
	pc    uint16
	state uint8
	dir   uint8
}

type pathState struct {
	snap     *mcu.Snapshot
	curInstr uint16
	// id orders every enqueued state over the run; the speculation pool
	// addresses its per-item bookkeeping by it (sequential runs carry the
	// ids too — assignment is deterministic and costs one increment).
	id uint64
}

// tableEntry is one conservative-state-table slot: the reference state for
// pruning, and how many times the site has been visited.
type tableEntry struct {
	snap   *mcu.Snapshot
	visits int
}

// Engine performs input-independent gate-level taint tracking of one system
// binary under one policy.
type Engine struct {
	Sys *mcu.System
	Pol *Policy
	opt Options

	table map[forkKey]*tableEntry
	// tableMu guards table contents against the speculation workers'
	// advisory reads (tableCovers). The committer is the only writer, so
	// sequential runs pay one uncontended lock per table application.
	tableMu  sync.RWMutex
	work     []pathState
	curInstr uint16
	seen     map[Violation]bool
	report   *Report

	ramRange AddrRange

	// design and img rebuild per-worker mcu.System instances for the
	// speculation pool (circuits are mutable and cannot be shared).
	design *mcu.Design
	img    *asm.Image
	// pool is the speculation worker pool; nil for sequential runs.
	pool *specPool
	// pushSeq issues pathState ids in enqueue order.
	pushSeq uint64

	// ctx aborts the exploration between cycles; set by RunContext.
	ctx context.Context
	// runStart anchors wall-time stamping for progress snapshots and
	// exploration trace events; set by RunContext.
	runStart time.Time
	// sinceEmit counts cycles committed since the last Progress emission,
	// so snapshots can never be starved by commits that happen outside the
	// main path loop (e.g. fork concretization).
	sinceEmit uint64
	// widenAfter is the effective widening threshold; it starts at
	// opt.WidenAfter and is halved by soft-memory-budget escalations.
	widenAfter int
	// snapBytes is the approximate footprint of one machine snapshot, the
	// unit of the memory accounting.
	snapBytes int64

	// debugMerge, when set, observes every superstate widening.
	debugMerge func(k forkKey, c *mcu.Snapshot)
}

// CurInstr returns the instruction address currently executing (diagnostics).
func (e *Engine) CurInstr() uint16 { return e.curInstr }

// SetTrace installs a per-cycle observer after construction.
func (e *Engine) SetTrace(f func(e *Engine, ci *mcu.CycleInfo)) { e.opt.Trace = f }

// DebugMerge installs a widening observer (diagnostics; reports the key and
// the merged PC rendering).
func (e *Engine) DebugMerge(f func(pc uint16, dir uint8, pcWord string)) {
	e.debugMerge = func(k forkKey, c *mcu.Snapshot) {
		f(k.pc, k.dir, e.Sys.SnapshotPC(c).String())
	}
}

// NewEngine prepares a system for analysis: program loaded, policy taints
// applied (tainted code partitions, initially tainted data, tainted ports).
func NewEngine(img *asm.Image, pol *Policy, opt *Options) (*Engine, error) {
	return NewEngineOn(SharedDesign(), img, pol, opt)
}

// NewEngineOn is NewEngine on an explicit design instead of the shared
// singleton — the hook for analyses of modified netlists such as the
// fault-injection harness in internal/fault.
func NewEngineOn(d *mcu.Design, img *asm.Image, pol *Policy, opt *Options) (*Engine, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	o := opt.withDefaults()
	sys, err := buildSystem(d, img, pol, o.Backend)
	if err != nil {
		return nil, err
	}
	eng := &Engine{
		Sys:      sys,
		Pol:      pol,
		opt:      o,
		table:    make(map[forkKey]*tableEntry),
		seen:     make(map[Violation]bool),
		report:   &Report{Policy: pol.Name},
		ramRange: AddrRange{Lo: d.Map.RAMStart, Hi: d.Map.RAMEnd},
		design:   d,
		img:      img,
	}
	eng.widenAfter = eng.opt.WidenAfter
	eng.snapBytes = sys.SnapshotBytes()
	return eng, nil
}

// buildSystem prepares one simulation instance on the selected evaluation
// backend: program loaded, policy taints applied. The speculation pool uses
// it to give each worker a private system whose ROM, port inputs and reset
// line are identical to the committer's — everything else (flip-flops, RAM)
// arrives via Restore, so two systems built here evaluate any snapshot
// bit-identically.
func buildSystem(d *mcu.Design, img *asm.Image, pol *Policy, backend sim.BackendKind) (*mcu.System, error) {
	sys, err := mcu.NewSystemBackend(d, backend)
	if err != nil {
		return nil, err
	}
	// Pad all of program memory with the target's self-parking traps before
	// placing the image: conservative merging of return addresses can
	// propose candidate PCs that were never actually pushed, and without
	// padding those candidates would execute unknown (X) instruction words
	// and cascade into spurious violations. A trapped candidate parks and
	// is pruned.
	d.FillTraps(func(a, w uint16) { sys.ROM.StoreWord(a, sim.ConcreteWord(w)) })
	img.Place(func(a, w uint16) { sys.ROM.StoreWord(a, sim.ConcreteWord(w)) })
	sys.SetResetVector(img.Entry)
	if pol.TaintCodeWords {
		for _, r := range pol.TaintedCode {
			sys.TaintCode(r.Lo, r.Hi)
		}
	}
	for _, r := range pol.InitiallyTaintedData {
		sys.RAM.SetTaint(r.Lo, r.Hi)
	}
	for i := 0; i < mcu.NumPorts; i++ {
		w := sim.Word{XM: 0xffff}
		if pol.TaintedInPort(i) {
			w.TT = 0xffff
		}
		sys.SetPortIn(i, w)
	}
	return sys, nil
}

// Analyze runs Algorithm 1 end to end for one policy.
func Analyze(img *asm.Image, pol *Policy, opt *Options) (*Report, error) {
	return AnalyzeContext(context.Background(), img, pol, opt)
}

// AnalyzeContext is Analyze under a cancellation context: cancellation or
// deadline expiry aborts the exploration cleanly with a partial report
// whose verdict is Incomplete.
func AnalyzeContext(ctx context.Context, img *asm.Image, pol *Policy, opt *Options) (*Report, error) {
	return AnalyzeContextOn(ctx, SharedDesign(), img, pol, opt)
}

// AnalyzeContextOn is AnalyzeContext on an explicit design — the entry
// point for analyzing non-default targets (the design carries all target
// conventions the engine needs).
func AnalyzeContextOn(ctx context.Context, d *mcu.Design, img *asm.Image, pol *Policy, opt *Options) (*Report, error) {
	e, err := NewEngineOn(d, img, pol, opt)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx), nil
}

// Run explores all possible executions and returns the violation report.
func (e *Engine) Run() *Report { return e.RunContext(context.Background()) }

// RunContext explores all possible executions under a cancellation context.
// It always returns a usable Report, fail-closed: cancellation and budget
// exhaustion yield the Incomplete verdict, and any internal panic is
// recovered into an InternalError verdict carrying the panic diagnostic —
// a crash can never masquerade as "verified".
func (e *Engine) RunContext(ctx context.Context) (rep *Report) {
	e.runStart = time.Now()
	e.ctx = ctx
	defer func() {
		e.report.Stats.WallNanos = e.sinceStart().Nanoseconds()
		if p := recover(); p != nil {
			e.report.Err = recoveredError(p)
		}
		rep = e.report
		e.emitProgress(true)
	}()

	if w := e.workerCount(); w > 1 {
		e.pool = newSpecPool(e, w-1)
		defer func() {
			e.pool.stop()
			e.pool = nil
		}()
	}

	e.Sys.PowerOn()
	e.Sys.Step() // StReset: fetch the reset vector
	entryW := e.Sys.GetWord([]netlist.NetID(e.Sys.D.PC))
	e.curInstr = entryW.Val
	e.push(e.Sys.Snapshot(), e.curInstr, forkKey{}, false)

	for len(e.work) > 0 && e.report.Stats.Cycles < e.opt.MaxCycles {
		if ctx.Err() != nil {
			e.violation(AnalysisIncomplete, e.curInstr,
				fmt.Sprintf("analysis cancelled (%v) with %d pending paths", ctx.Err(), len(e.work)))
			return e.report
		}
		if e.opt.HardMemBytes > 0 && e.memInUse() > e.opt.HardMemBytes {
			e.traceEvent(EvBudget, e.curInstr, len(e.work), "hard memory budget")
			e.violation(AnalysisIncomplete, e.curInstr,
				fmt.Sprintf("memory budget exhausted (%d MiB in use, hard budget %d MiB) with %d pending paths",
					e.memInUse()>>20, e.opt.HardMemBytes>>20, len(e.work)))
			return e.report
		}
		ps := e.work[len(e.work)-1]
		e.work = e.work[:len(e.work)-1]
		e.report.Stats.Paths++
		var tr *specTrace
		if e.pool != nil {
			tr = e.pool.take(ps.id)
		}
		if tr != nil {
			e.traceEvent(EvPathStart, ps.curInstr, len(e.work), "")
			e.replayTrace(ps, tr)
		} else {
			e.Sys.Restore(ps.snap)
			e.curInstr = ps.curInstr
			e.traceEvent(EvPathStart, ps.curInstr, len(e.work), "")
			e.runPathFrom(0)
		}
		e.traceEvent(EvPathEnd, e.curInstr, len(e.work), "")
	}
	if e.ctx.Err() != nil {
		e.violation(AnalysisIncomplete, e.curInstr,
			fmt.Sprintf("analysis cancelled (%v) with %d pending paths", e.ctx.Err(), len(e.work)))
		return e.report
	}
	if len(e.work) > 0 {
		e.traceEvent(EvBudget, e.curInstr, len(e.work), "cycle budget")
		e.violation(AnalysisIncomplete, e.curInstr, fmt.Sprintf("cycle budget exhausted with %d pending paths", len(e.work)))
	}
	return e.report
}

// sinceStart is wall time since RunContext started.
func (e *Engine) sinceStart() time.Duration { return time.Since(e.runStart) }

// workerCount resolves Options.Workers: 0 means GOMAXPROCS, and a per-cycle
// Trace hook forces sequential exploration — the hook contract is to observe
// the live simulation of every committed cycle in order, which speculative
// re-execution cannot honor.
func (e *Engine) workerCount() int {
	w := e.opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if e.opt.Trace != nil {
		w = 1
	}
	return w
}

// memInUse approximates the retained footprint of the conservative state
// table plus the work queue (each entry owns one snapshot).
func (e *Engine) memInUse() int64 {
	used := int64(len(e.table)+len(e.work)) * e.snapBytes
	if used > e.report.Stats.PeakMemBytes {
		e.report.Stats.PeakMemBytes = used
	}
	return used
}

// noteMem re-accounts after table/work growth and, while over the soft
// budget, escalates widening: halving the effective WidenAfter makes hot
// sites merge into superstates on their next visit, which bounds both the
// table and the work queue — graceful degradation (precision for
// convergence) before the hard budget fails the run closed.
func (e *Engine) noteMem() {
	used := e.memInUse()
	if e.opt.SoftMemBytes > 0 && used > e.opt.SoftMemBytes && e.widenAfter > 1 {
		e.widenAfter /= 2
		e.report.Stats.Escalations++
		e.traceEvent(EvEscalation, e.curInstr, e.widenAfter, "soft memory budget")
	}
}

// runPathFrom simulates from the current state until the path is pruned,
// forked, or abandoned. pathCycles seeds the straight-line budget counter:
// 0 for a fresh path, or the cycles already replayed when the committer
// resumes live execution in the middle of a speculated segment.
func (e *Engine) runPathFrom(pathCycles uint64) {
	for e.report.Stats.Cycles < e.opt.MaxCycles {
		if pathCycles&1023 == 1023 && e.ctx.Err() != nil {
			return // the outer loop records the cancellation
		}
		ci := e.Sys.EvalCycle(nil)
		if ci.StateOK && ci.State == mcu.StFetch && ci.PmemOK {
			e.curInstr = ci.PmemAddr
		}
		if !ci.PmemOK {
			e.violation(PCUnresolved, e.curInstr, fmt.Sprintf("fetch address is unknown (pc=%s)", ci.PC))
			return
		}
		e.checkCycle(ci)
		if e.opt.Trace != nil {
			e.opt.Trace(e, ci)
		}
		if ci.PCNext.XM != 0 || ci.POR.V == logic.X || ci.IrqTkn.V == logic.X {
			// Input-dependent control flow, an uncertain watchdog reset, or
			// an uncertain interrupt decision: concretize every direction
			// (Algorithm 1 lines 29-37).
			e.fork(ci)
			return
		}
		e.commitCycle(ci)
		pathCycles++
		if modifiesPC(e.design, ci) {
			// Key the conservative state table on the committing cycle's PC
			// (unique per commit site — including the reset vector load,
			// whose PC is 0) plus the semantic control decisions.
			if e.mergePoint(forkKey{pc: ci.PC.Val, state: stateCode(ci), dir: dirCode(ci.BranchTkn.V, ci.POR.V, ci.IrqTkn.V)}) {
				return // pruned: this state (or a superstate) was explored
			}
		}
		if pathCycles > e.opt.MaxPathCycles {
			e.traceEvent(EvBudget, e.curInstr, len(e.work), "straight-line path cycle budget")
			e.violation(AnalysisIncomplete, e.curInstr, "path exceeded straight-line cycle budget")
			return
		}
	}
}

// commitCycle commits one evaluated cycle and enforces the paper's
// control-flow recovery rule (Section 5.2): once the PC is tainted, only an
// *untainted* power-on reset may untaint it. Architectural PC writes with
// untainted data (a yield jump, a return through a clean stack frame, an
// interrupt-style RETI) do not help, because *when* they execute is itself
// attacker-influenced — so the engine re-taints the PC after any commit
// that is not a clean reset.
func (e *Engine) commitCycle(ci *mcu.CycleInfo) {
	commitOn(e.Sys, ci, e.countCommit)
}

// countCommit accounts one committed cycle against the report and drives
// the progress cadence. Progress is counted in cycles since the last
// emission, not in absolute cycle positions: commits also happen outside
// runPathFrom's loop (fork concretization), so a boundary-position test
// could be stepped over indefinitely and starve the hook on fork-heavy
// runs.
func (e *Engine) countCommit() {
	e.report.Stats.Cycles++
	if e.sinceEmit++; e.sinceEmit >= progressEvery {
		e.emitProgress(false)
	}
}

// advanceCycles accounts delta already-simulated cycles at once — the
// committer's bulk form of countCommit when it replays a speculated
// segment whose cycles were simulated on a worker.
func (e *Engine) advanceCycles(delta uint64) {
	e.report.Stats.Cycles += delta
	if e.sinceEmit += delta; e.sinceEmit >= progressEvery {
		e.emitProgress(false)
	}
}

// commitOn commits one evaluated cycle on sys and applies the re-taint
// rule; onCommitted (the engine's cycle accounting, or a speculation
// worker's local counter) runs between the commit and the re-taint.
func commitOn(sys *mcu.System, ci *mcu.CycleInfo, onCommitted func()) {
	pcWasTainted := ci.PC.TT != 0
	sys.Commit(ci)
	onCommitted()
	cleanReset := ci.POR.V == logic.One && !ci.POR.T
	if pcWasTainted && !cleanReset {
		for _, bit := range sys.D.PC {
			sg := sys.C.Get(bit)
			sg.T = true
			sys.C.SetInput(bit, sg)
		}
	}
}

// modifiesPC reports whether the committed cycle changed the PC
// non-sequentially — a PC-changing instruction in Algorithm 1's sense.
// These are the points where the conservative state table applies. The
// target's conventions supply the sequential PC step and the jump-word
// predicate (which catches taken self-jumps the delta test cannot see).
func modifiesPC(d *mcu.Design, ci *mcu.CycleInfo) bool {
	if ci.PCNext.XM != 0 || ci.PC.XM != 0 || ci.POR.V != logic.Zero || ci.IrqTkn.V != logic.Zero {
		return true
	}
	if ci.StateOK && ci.State == mcu.StFetch && ci.Fetch.XM == 0 && d.JumpWord(ci.Fetch.Val) {
		return true // a jump instruction, including a self-jump (jmp $)
	}
	return ci.PCNext.Val != ci.PC.Val && ci.PCNext.Val != ci.PC.Val+d.PCStep
}

// tableOutcome classifies one application of the conservative state table
// to a PC-changing commit's post-state.
type tableOutcome uint8

const (
	// tableInserted: first visit; a clone of the state became the entry.
	tableInserted tableOutcome = iota
	// tableReplaced: below the widening threshold; the entry now tracks
	// this precise state and the path continues from it unchanged.
	tableReplaced
	// tablePruned: the state is covered by the entry; stop the path.
	tablePruned
	// tableWidened: the entry was widened to a superstate covering this
	// state; the path must continue from the returned superstate.
	tableWidened
)

// tableApply runs the conservative-state-table protocol for key k against
// post — the single authority shared by merge points, successor pushes and
// speculation replay, so all three stay byte-for-byte equivalent. On
// tableWidened the second result is the conservative superstate (owned by
// the table; callers must Clone before mutating or enqueueing it).
func (e *Engine) tableApply(k forkKey, post *mcu.Snapshot) (tableOutcome, *mcu.Snapshot) {
	e.tableMu.Lock()
	defer e.tableMu.Unlock()
	if c, ok := e.table[k]; ok {
		c.visits++
		if post.SubstateOf(c.snap) {
			e.report.Stats.Prunes++
			e.traceEvent(EvPrune, k.pc, len(e.table), "")
			return tablePruned, nil
		}
		if c.visits <= e.widenAfter {
			// Below the widening threshold: track the precise state so
			// concretely-bounded loops unroll exactly.
			c.snap = post.Clone()
			return tableReplaced, nil
		}
		c.snap.MergeFrom(post)
		e.report.Stats.Merges++
		e.traceEvent(EvMerge, k.pc, len(e.table), "")
		if e.debugMerge != nil {
			e.debugMerge(k, c.snap)
		}
		return tableWidened, c.snap
	}
	e.table[k] = &tableEntry{snap: post.Clone(), visits: 1}
	e.report.Stats.TableStates = len(e.table)
	return tableInserted, nil
}

// mergePoint applies the conservative state table after committing a
// PC-changing cycle. It returns true when the path should stop (the state
// is covered by what has already been explored); otherwise the simulation
// continues from the (possibly widened) conservative superstate.
func (e *Engine) mergePoint(k forkKey) bool {
	switch oc, cont := e.tableApply(k, e.Sys.Snapshot()); oc {
	case tablePruned:
		return true
	case tableWidened:
		e.Sys.Restore(cont)
	case tableInserted:
		e.noteMem()
	}
	return false
}

// fork concretizes an unknown PC-next value by re-evaluating the cycle with
// the unknown control decisions forced to each combination of concrete
// values (keeping their taint, so a tainted condition taints the PC on both
// paths), then enqueues the surviving successor states. Two decision nets
// can make the PC unknown: the branch_taken probe (input-dependent
// conditional control flow) and the power-on-reset (a watchdog expiry whose
// countdown state was widened to X by conservative merging — the reset may
// or may not fire this cycle, so both worlds are explored).
func (e *Engine) fork(ci *mcu.CycleInfo) {
	forkOutcomes(e.Sys, ci,
		func(detail string) {
			e.violation(PCUnresolved, e.curInstr, detail)
		},
		func(k forkKey, civ *mcu.CycleInfo) {
			e.commitCycle(civ)
			e.report.Stats.Forks++
			e.push(e.Sys.Snapshot(), e.curInstr, k, true)
			e.traceEvent(EvFork, k.pc, len(e.work), "")
		})
}

// forkOutcomes enumerates every concretization of an unknown-PC cycle in a
// fixed deterministic order, shared by the live engine and the speculation
// workers. For each combination it either reports an unresolved target
// (onUnresolved, with the violation detail) or evaluates the forced cycle
// and hands it to onSucc, which must commit it; sys is left in the last
// combination's state.
func forkOutcomes(sys *mcu.System, ci *mcu.CycleInfo,
	onUnresolved func(detail string), onSucc func(k forkKey, civ *mcu.CycleInfo)) {
	pre := sys.Snapshot()

	type cand struct {
		net netlist.NetID
		sig logic.Sig
	}
	var cands []cand
	if ci.BranchTkn.V == logic.X {
		cands = append(cands, cand{sys.D.BranchTaken, ci.BranchTkn})
	}
	if por := sys.C.Get(sys.D.POR); por.V == logic.X {
		cands = append(cands, cand{sys.D.POR, por})
	}
	if ci.IrqTkn.V == logic.X {
		cands = append(cands, cand{sys.D.IrqTaken, ci.IrqTkn})
	}
	if len(cands) == 0 {
		// The unknown PC comes from data (e.g. a return address widened by
		// conservative merging, or a computed branch target). When only a
		// few bits are unknown, enumerate the candidate targets by forcing
		// the PC register's D inputs — Algorithm 1's
		// possible_PC_next_vals(e') for the data-dependent case. Beyond
		// that, report conservatively (Footnote 4's heuristics territory).
		const maxXBits = 4
		var xbits []int
		for i := 0; i < 16; i++ {
			if ci.PCNext.XM>>uint(i)&1 == 1 {
				xbits = append(xbits, i)
			}
		}
		if len(xbits) == 0 || len(xbits) > maxXBits {
			onUnresolved("PC target unknown (indirect control flow through unknown data)")
			return
		}
		for combo := 0; combo < 1<<len(xbits); combo++ {
			sys.Restore(pre)
			forced := make(map[netlist.NetID]logic.Sig, len(xbits))
			for j, bit := range xbits {
				forced[sys.D.PCNext[bit]] = logic.Sig{
					V: logic.FromBool(combo>>uint(j)&1 == 1),
					T: ci.PCNext.TT>>uint(bit)&1 == 1,
				}
			}
			civ := sys.EvalCycle(forced)
			if civ.PCNext.XM != 0 {
				onUnresolved("PC target unknown even with candidate enumeration")
				continue
			}
			onSucc(forkKey{pc: civ.PC.Val, state: stateCode(civ), dir: uint8(100 + combo)}, civ)
		}
		return
	}

	for combo := 0; combo < 1<<len(cands); combo++ {
		sys.Restore(pre)
		forced := make(map[netlist.NetID]logic.Sig, len(cands))
		for i, c := range cands {
			v := logic.Zero
			if combo>>uint(i)&1 == 1 {
				v = logic.One
			}
			forced[c.net] = logic.Sig{V: v, T: c.sig.T}
		}
		civ := sys.EvalCycle(forced)
		if civ.PCNext.XM != 0 {
			onUnresolved(fmt.Sprintf("PC target unknown even with control decisions forced (st=%d pcnext=%s)", civ.State, civ.PCNext))
			continue
		}
		onSucc(forkKey{pc: civ.PC.Val, state: stateCode(civ), dir: dirCode(civ.BranchTkn.V, civ.POR.V, civ.IrqTkn.V)}, civ)
	}
}

// dirCode encodes the semantic control decisions of a committed cycle (the
// branch decision, the power-on reset, and the interrupt entry) so that
// conservative-state-table entries never mix states with different
// successor PCs.
func dirCode(bt, por, irq logic.V) uint8 {
	return (uint8(bt)*3+uint8(por))*3 + uint8(irq)
}

// stateCode tags a cycle with its FSM state for the fork key.
func stateCode(ci *mcu.CycleInfo) uint8 {
	if !ci.StateOK {
		return 0xff
	}
	return uint8(ci.State)
}

// push enqueues a successor state, first applying the conservative state
// table (prune if covered, widen otherwise).
func (e *Engine) push(post *mcu.Snapshot, curInstr uint16, k forkKey, applyTable bool) {
	next := curInstr
	if applyTable {
		switch oc, cont := e.tableApply(k, post); oc {
		case tablePruned:
			return
		case tableWidened:
			post = cont.Clone()
		}
	}
	e.pushSeq++
	e.work = append(e.work, pathState{snap: post, curInstr: next, id: e.pushSeq})
	if e.pool != nil {
		e.pool.offer(e.pushSeq, post, next)
	}
	e.noteMem()
}

// violationDedupKey is the (kind, pc) identity violations deduplicate on.
// State-condition kinds latch machine-wide: once the watchdog or an output
// port register is tainted, every later cycle re-observes it; those
// deduplicate on the kind alone so only the first (root-cause) report
// survives. Shared with the speculation workers, whose local deduplication
// must drop exactly the raises the live engine would drop.
func violationDedupKey(k Kind, pc uint16) Violation {
	if k == WatchdogTainted || k == OutputPortTainted || k == C1TaintedState {
		pc = 0
	}
	return Violation{Kind: k, PC: pc}
}

func (e *Engine) violation(k Kind, pc uint16, detail string) {
	key := violationDedupKey(k, pc)
	if e.seen[key] {
		return
	}
	e.seen[key] = true
	v := Violation{Kind: k, PC: pc, Detail: detail, Cycle: e.report.Stats.Cycles}
	e.report.Violations = append(e.report.Violations, v)
	e.traceEvent(EvViolation, pc, 0, k.String())
}

// ---- Per-cycle policy checking (Section 4.2 / 5.1) ----

// machineView is the read-only probe surface the per-cycle policy checks
// need from a simulation instance. *mcu.System implements it directly;
// mcu.LaneView adapts one lane of a batched (bitsliced) system, so the same
// checker runs unchanged on scalar and lane-packed speculation.
type machineView interface {
	Design() *mcu.Design
	GetWord(nets []netlist.NetID) sim.Word
	GetSig(id netlist.NetID) logic.Sig
}

// anyTainted scans a probe word bit by bit. Unlike GetWord(...).Tainted()
// it is width-safe: GetWord packs into a 16-bit sim.Word and silently
// drops bits 16 and up, which would make the scan unsound for a target
// with registers wider than 16 bits (identical behaviour at width <= 16).
func anyTainted(v machineView, nets []netlist.NetID) bool {
	for _, id := range nets {
		if v.GetSig(id).T {
			return true
		}
	}
	return false
}

// cycleChecker evaluates the per-cycle policy conditions against one
// simulation instance, raising violations through a pluggable sink. The
// live engine raises into its report; speculation workers record raises
// into their segment trace for deterministic replay.
type cycleChecker struct {
	sys      machineView
	pol      *Policy
	ramRange AddrRange
	raise    func(k Kind, pc uint16, detail string)
}

// checkCycle runs the policy checks on the engine's own system.
func (e *Engine) checkCycle(ci *mcu.CycleInfo) {
	c := cycleChecker{sys: e.Sys, pol: e.Pol, ramRange: e.ramRange, raise: e.violation}
	c.check(ci, e.curInstr)
}

func (c *cycleChecker) check(ci *mcu.CycleInfo, curInstr uint16) {
	taintedTask := c.pol.InTaintedCode(curInstr)

	// C1: untainted code must start executing on an untainted processor.
	if ci.StateOK && ci.State == mcu.StFetch && !taintedTask {
		if name, bad := c.coreStateTainted(); bad {
			c.raise(C1TaintedState, curInstr, fmt.Sprintf("untainted code fetch with tainted state element %s", name))
		}
	}

	if ci.Re.V != logic.Zero {
		c.checkLoad(ci, curInstr, taintedTask)
	}
	if ci.We.V != logic.Zero {
		c.checkStore(ci, curInstr, taintedTask)
	}

	// Watchdog integrity: the untainted-reset mechanism is sound only while
	// the watchdog's state and write strobe stay untainted (Section 5.2).
	d := c.sys.Design()
	if c.sys.GetSig(d.WdtWe).T ||
		anyTainted(c.sys, d.WdtCtl) ||
		anyTainted(c.sys, d.WdtCnt) {
		c.raise(WatchdogTainted, curInstr, "watchdog control state or write strobe tainted")
	}

	// Direct non-interference: untainted output ports must stay untainted.
	for i := 0; i < mcu.NumPorts; i++ {
		if c.pol.TaintedOutPort(i) {
			continue
		}
		if anyTainted(c.sys, d.PortOut[i]) {
			c.raise(OutputPortTainted, curInstr, fmt.Sprintf("output port P%d is tainted", i+1))
		}
	}
}

// coreStateTainted scans the processor's architectural flip-flops: the PC,
// status register and register file. The IR/SRCREG/EA latches and the FSM
// state register are excluded: they are dead at instruction boundaries by
// construction (every instruction writes them before any read, and nothing
// else can observe them), so residual taint there cannot influence a later
// task — see DESIGN.md.
func (c *cycleChecker) coreStateTainted() (string, bool) {
	d := c.sys.Design()
	named := []struct {
		name string
		w    []netlist.NetID
	}{
		{"pc", d.PC}, {"sr", d.SR},
	}
	for _, n := range named {
		if anyTainted(c.sys, n.w) {
			return n.name, true
		}
	}
	for r := 0; r < 16; r++ {
		if d.Regs[r] == nil {
			continue
		}
		if anyTainted(c.sys, d.Regs[r]) {
			return d.RegName[r], true
		}
	}
	return "", false
}

func (c *cycleChecker) checkLoad(ci *mcu.CycleInfo, curInstr uint16, taintedTask bool) {
	if taintedTask {
		return // tainted code may read anything tainted; C4 guards the rest
	}
	addr := ci.Addr
	free := addr.XM | addr.TT
	if free == 0 {
		a := addr.Val
		if c.pol.InTaintedData(a) {
			c.raise(C3LoadTainted, curInstr, fmt.Sprintf("untainted code loads from tainted partition address %#04x", a))
		}
		if i, ok := portInIndex(c.sys.Design(), a); ok && c.pol.TaintedInPort(i) {
			c.raise(C4ReadTaintedPort, curInstr, fmt.Sprintf("untainted code reads tainted input port P%d", i+1))
		}
		return
	}
	// Unknown address: check the whole cover.
	for _, r := range c.pol.TaintedData {
		if r.IntersectsPattern(free, addr.Val) {
			c.raise(C3LoadTainted, curInstr, "unknown load address may reach a tainted partition")
			break
		}
	}
	for i := 0; i < mcu.NumPorts; i++ {
		if c.pol.TaintedInPort(i) && matchesPattern(c.sys.Design().Map.PortIn[i], free, addr.Val) {
			c.raise(C4ReadTaintedPort, curInstr, "unknown load address may reach a tainted input port")
			break
		}
	}
}

func (c *cycleChecker) checkStore(ci *mcu.CycleInfo, curInstr uint16, taintedTask bool) {
	d := c.sys.Design()
	addr, data := ci.Addr, ci.WData
	free := addr.XM | addr.TT
	taintsTarget := data.Tainted() || addr.TT != 0 || ci.We.T

	if free == 0 {
		a := addr.Val
		switch {
		case c.ramRange.Contains(a):
			if taintsTarget && !c.pol.InTaintedData(a) {
				c.raise(C2MemoryEscape, curInstr, fmt.Sprintf("tainted store to untainted memory %#04x", a))
			}
		case a&^1 == d.Map.WdtCtl:
			if taintedTask || taintsTarget {
				c.raise(WatchdogTainted, curInstr, "tainted code or tainted data writes WDTCTL")
			}
		default:
			if i, ok := portOutIndex(d, a); ok && !c.pol.TaintedOutPort(i) {
				if taintedTask {
					c.raise(C5WriteUntaintedPort, curInstr, fmt.Sprintf("tainted code writes untainted output port P%d", i+1))
				} else if taintsTarget {
					c.raise(OutputPortTainted, curInstr, fmt.Sprintf("tainted data written to untainted output port P%d", i+1))
				}
			}
		}
		return
	}

	// Unknown store address: what it may cover is at risk — but only a
	// store that can *taint* its target (tainted data, tainted address
	// bits, or a tainted write strobe) violates the information flow
	// policy. An unknown-but-untainted address (e.g. a loop induction
	// variable widened by conservative merging) writes unknown values,
	// not attacker-influenced ones.
	if !taintsTarget {
		return
	}
	if c.pol.patternEscapes(free, addr.Val, c.ramRange) {
		c.raise(C2MemoryEscape, curInstr, "store address unknown/tainted: may taint an untainted memory partition")
	}
	if matchesPattern(d.Map.WdtCtl, free, addr.Val) {
		c.raise(WatchdogTainted, curInstr, "unknown store address may reach WDTCTL")
	}
	for i := 0; i < mcu.NumPorts; i++ {
		if !c.pol.TaintedOutPort(i) && matchesPattern(d.Map.PortOut[i], free, addr.Val) {
			kind := OutputPortTainted
			if taintedTask {
				kind = C5WriteUntaintedPort
			}
			c.raise(kind, curInstr, fmt.Sprintf("unknown store address may reach untainted output port P%d", i+1))
		}
	}
}

func matchesPattern(a, free, want uint16) bool {
	fixed := ^free
	return a&fixed == want&fixed || (a+1)&fixed == want&fixed
}

func portInIndex(d *mcu.Design, a uint16) (int, bool) {
	for i := 0; i < mcu.NumPorts; i++ {
		if a&^1 == d.Map.PortIn[i] {
			return i, true
		}
	}
	return 0, false
}

func portOutIndex(d *mcu.Design, a uint16) (int, bool) {
	for i := 0; i < mcu.NumPorts; i++ {
		if a&^1 == d.Map.PortOut[i] {
			return i, true
		}
	}
	return 0, false
}
