package glift_test

// Differential testing of the parallel exploration mode: the engine
// guarantees that Options.Workers changes wall-clock time and nothing else,
// and the content-addressed job cache in internal/service relies on that
// guarantee (Workers is excluded from job keys). This harness enforces it
// the strong way — every scaffold benchmark is analyzed sequentially and
// with a worker pool, and the two reports must serialize byte-identically
// once the wall-time field (the one documented exception) is zeroed.

import (
	"encoding/json"
	"fmt"
	"sort"
	"testing"

	"repro/internal/bench"
	"repro/internal/glift"
)

// normalizedReportJSON serializes a report with wall-time zeroed, the only
// field allowed to differ between worker counts.
func normalizedReportJSON(t *testing.T, rep *glift.Report) []byte {
	t.Helper()
	j := rep.JSON()
	j.Stats.WallNanos = 0
	out, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return out
}

// violationSet order-normalizes a report's violations for set comparison.
func violationSet(rep *glift.Report) []string {
	out := make([]string, 0, len(rep.Violations))
	for _, v := range rep.Violations {
		out = append(out, fmt.Sprintf("%s@%#04x: %s", v.Kind, v.PC, v.Detail))
	}
	sort.Strings(out)
	return out
}

func analyzeWorkers(t *testing.T, bt *bench.Built, workers int) *glift.Report {
	t.Helper()
	rep, err := glift.Analyze(bt.Img, bt.Policy, &glift.Options{Workers: workers})
	if err != nil {
		t.Fatalf("analyze %s (workers=%d): %v", bt.Bench.Name, workers, err)
	}
	return rep
}

// TestDifferentialScaffoldBenchmarks runs every scaffold benchmark with
// Workers=1 and Workers=4 and asserts identical verdicts, order-normalized
// violation sets, conservative-table sizes, and finally byte-identical
// reports modulo wall time (which subsumes the weaker checks; they run
// first only to localize a failure).
func TestDifferentialScaffoldBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			bt, err := bench.BuildUnmodified(b)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			seq := analyzeWorkers(t, bt, 1)
			par := analyzeWorkers(t, bt, 4)

			if sv, pv := seq.Verdict(), par.Verdict(); sv != pv {
				t.Errorf("verdict mismatch: sequential %v, parallel %v", sv, pv)
			}
			svs, pvs := violationSet(seq), violationSet(par)
			if len(svs) != len(pvs) {
				t.Errorf("violation count mismatch: sequential %d, parallel %d", len(svs), len(pvs))
			} else {
				for i := range svs {
					if svs[i] != pvs[i] {
						t.Errorf("violation set mismatch at %d:\n  sequential: %s\n  parallel:   %s", i, svs[i], pvs[i])
					}
				}
			}
			if st, pt := seq.Stats.TableStates, par.Stats.TableStates; st != pt {
				t.Errorf("table size mismatch: sequential %d, parallel %d", st, pt)
			}

			sj, pj := normalizedReportJSON(t, seq), normalizedReportJSON(t, par)
			if string(sj) != string(pj) {
				t.Errorf("reports differ beyond wall time:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", sj, pj)
			}
		})
	}
}

// TestDifferentialWorkerSweep covers worker counts beyond the canonical
// 1-vs-4 pair on a fork-heavy benchmark, including pools larger than the
// path count.
func TestDifferentialWorkerSweep(t *testing.T) {
	bt, err := bench.BuildUnmodified(bench.ByName("binSearch"))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	want := normalizedReportJSON(t, analyzeWorkers(t, bt, 1))
	for _, w := range []int{2, 3, 8} {
		got := normalizedReportJSON(t, analyzeWorkers(t, bt, w))
		if string(got) != string(want) {
			t.Errorf("workers=%d report differs from sequential:\n%s\nvs\n%s", w, got, want)
		}
	}
}
