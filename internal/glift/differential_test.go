package glift_test

// Differential testing of the engine's "performance knobs change nothing"
// contract: Options.Workers and Options.Backend change wall-clock time and
// nothing else, and the content-addressed job cache in internal/service
// relies on that guarantee (both are excluded from job keys). This harness
// enforces it the strong way — every scaffold benchmark is analyzed under a
// sweep of (backend, workers) configurations and every report must
// serialize byte-identically to the reference (interpreter, sequential)
// once the wall-time field (the one documented exception) is zeroed.

import (
	"encoding/json"
	"fmt"
	"sort"
	"testing"

	"repro/internal/bench"
	"repro/internal/glift"
	"repro/internal/sim"
)

// normalizedReportJSON serializes a report with wall-time zeroed, the only
// field allowed to differ between configurations.
func normalizedReportJSON(t *testing.T, rep *glift.Report) []byte {
	t.Helper()
	j := rep.JSON()
	j.Stats.WallNanos = 0
	out, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return out
}

// violationSet order-normalizes a report's violations for set comparison.
func violationSet(rep *glift.Report) []string {
	out := make([]string, 0, len(rep.Violations))
	for _, v := range rep.Violations {
		out = append(out, fmt.Sprintf("%s@%#04x: %s", v.Kind, v.PC, v.Detail))
	}
	sort.Strings(out)
	return out
}

// analysisConfig is one point in the (backend, workers, spec-lanes) sweep.
type analysisConfig struct {
	backend sim.BackendKind
	workers int
	lanes   int
}

func (c analysisConfig) String() string {
	if c.lanes > 0 {
		return fmt.Sprintf("%s/workers=%d/lanes=%d", c.backend, c.workers, c.lanes)
	}
	return fmt.Sprintf("%s/workers=%d", c.backend, c.workers)
}

// refConfig is the differential reference: the interpreter backend run
// sequentially, the simplest configuration the engine supports.
var refConfig = analysisConfig{backend: sim.BackendInterp, workers: 1}

// sweepConfigs are the configurations compared against refConfig: the
// parallel interpreter, the compiled backend at both worker counts, the
// bitsliced backend, and lane-packed speculation.
var sweepConfigs = []analysisConfig{
	{backend: sim.BackendInterp, workers: 4},
	{backend: sim.BackendCompiled, workers: 1},
	{backend: sim.BackendCompiled, workers: 4},
	{backend: sim.BackendBitslice, workers: 1},
	{backend: sim.BackendCompiled, workers: 4, lanes: 64},
	{backend: sim.BackendBitslice, workers: 4, lanes: 8},
}

func analyzeConfig(t *testing.T, bt *bench.Built, c analysisConfig) *glift.Report {
	t.Helper()
	rep, err := glift.Analyze(bt.Img, bt.Policy, &glift.Options{Workers: c.workers, Backend: c.backend, SpecLanes: c.lanes})
	if err != nil {
		t.Fatalf("analyze %s (%s): %v", bt.Bench.Name, c, err)
	}
	return rep
}

// TestDifferentialScaffoldBenchmarks runs every scaffold benchmark under the
// full (backend, workers) sweep and asserts identical verdicts,
// order-normalized violation sets, conservative-table sizes, and finally
// byte-identical reports modulo wall time (which subsumes the weaker checks;
// they run first only to localize a failure).
func TestDifferentialScaffoldBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			bt, err := bench.BuildUnmodified(b)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			ref := analyzeConfig(t, bt, refConfig)
			refJSON := normalizedReportJSON(t, ref)
			for _, c := range sweepConfigs {
				got := analyzeConfig(t, bt, c)

				if rv, gv := ref.Verdict(), got.Verdict(); rv != gv {
					t.Errorf("%s: verdict mismatch: %s %v, %s %v", c, refConfig, rv, c, gv)
				}
				rvs, gvs := violationSet(ref), violationSet(got)
				if len(rvs) != len(gvs) {
					t.Errorf("%s: violation count mismatch: %s %d, %s %d", c, refConfig, len(rvs), c, len(gvs))
				} else {
					for i := range rvs {
						if rvs[i] != gvs[i] {
							t.Errorf("%s: violation set mismatch at %d:\n  %s: %s\n  %s: %s", c, i, refConfig, rvs[i], c, gvs[i])
						}
					}
				}
				if rt, gt := ref.Stats.TableStates, got.Stats.TableStates; rt != gt {
					t.Errorf("%s: table size mismatch: %s %d, %s %d", c, refConfig, rt, c, gt)
				}

				gotJSON := normalizedReportJSON(t, got)
				if string(refJSON) != string(gotJSON) {
					t.Errorf("%s: report differs beyond wall time:\n--- %s ---\n%s\n--- %s ---\n%s",
						c, refConfig, refJSON, c, gotJSON)
				}
			}
		})
	}
}

// TestDifferentialWorkerSweep covers worker counts beyond the canonical
// 1-vs-4 pair on a fork-heavy benchmark, including pools larger than the
// path count, on both backends.
func TestDifferentialWorkerSweep(t *testing.T) {
	bt, err := bench.BuildUnmodified(bench.ByName("binSearch"))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	want := normalizedReportJSON(t, analyzeConfig(t, bt, refConfig))
	for _, be := range sim.Backends() {
		for _, w := range []int{2, 3, 8} {
			c := analysisConfig{backend: be, workers: w}
			got := normalizedReportJSON(t, analyzeConfig(t, bt, c))
			if string(got) != string(want) {
				t.Errorf("%s report differs from %s:\n%s\nvs\n%s", c, refConfig, got, want)
			}
		}
	}
}

// TestDifferentialSpecLanes sweeps lane-packed speculation widths on a
// fork-heavy benchmark: every (workers, SpecLanes) combination must produce
// the reference report byte-identically, including ragged widths and lanes
// exceeding the path count.
func TestDifferentialSpecLanes(t *testing.T) {
	bt, err := bench.BuildUnmodified(bench.ByName("binSearch"))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	want := normalizedReportJSON(t, analyzeConfig(t, bt, refConfig))
	for _, lanes := range []int{2, 7, 64} {
		for _, w := range []int{2, 4} {
			c := analysisConfig{backend: sim.BackendCompiled, workers: w, lanes: lanes}
			got := normalizedReportJSON(t, analyzeConfig(t, bt, c))
			if string(got) != string(want) {
				t.Errorf("%s report differs from %s:\n%s\nvs\n%s", c, refConfig, got, want)
			}
		}
	}
}
