package glift

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/logic"
)

func mustImage(t *testing.T, src string) *asm.Image {
	t.Helper()
	img, err := asm.AssembleSource(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

func analyze(t *testing.T, src string, pol *Policy) *Report {
	t.Helper()
	rep, err := Analyze(mustImage(t, src), pol, nil)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep
}

func hasKind(rep *Report, k Kind) bool { return len(rep.ByKind(k)) > 0 }

// A trivial untainted program touching only untainted resources must verify
// secure (Figure 3's scenario).
func TestSecureProgramVerifies(t *testing.T) {
	rep := analyze(t, `
start:  mov &0x0028, r5      ; P3IN (untainted port)
        add #1, r5
        mov r5, &0x002e      ; P4OUT (untainted port is fine for clean data)
        jmp start
`, &Policy{Name: "integrity"})
	if !rep.Secure() {
		t.Fatalf("expected secure, got %v", rep.Violations)
	}
	if rep.Stats.Prunes == 0 {
		t.Fatal("the infinite loop should have been pruned by the state table")
	}
	t.Logf("stats: %s", rep.Stats)
}

// A data-dependent loop over tainted input forks and still terminates via
// conservative merging.
func TestTaintedControlFlowTerminates(t *testing.T) {
	rep := analyze(t, `
start:  mov &0x0020, r5      ; tainted P1IN
        and #7, r5
loop:   dec r5
        jnz loop
        mov #1, &0x0026      ; P2OUT, tainted sink (allowed)
        jmp start
`, &Policy{
		Name:            "integrity",
		TaintedInPorts:  []int{0},
		TaintedOutPorts: []int{1},
	})
	if rep.Stats.Forks == 0 {
		t.Fatal("expected forks on the tainted loop condition")
	}
	if hasKind(rep, AnalysisIncomplete) {
		t.Fatalf("analysis did not converge: %v", rep.Violations)
	}
	t.Logf("stats: %s, violations: %v", rep.Stats, rep.Violations)
}

// Figure 4's vulnerable pattern: tainted input used as a store offset
// reaches untainted memory -> C2.
func TestFigure4TaintedOffsetViolates(t *testing.T) {
	rep := analyze(t, `
start:  mov &0x0020, r15     ; offset = <P1> (tainted)
        mov #0x0200, r14
        add r15, r14
        mov #500, 0(r14)     ; c[i+offset] = ...
done:   jmp done
`, &Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedData:    []AddrRange{{0x0400, 0x0800}},
	})
	if !hasKind(rep, C2MemoryEscape) {
		t.Fatalf("expected C2, got %v", rep.Violations)
	}
	// Root cause must be the store instruction (the 4th instruction).
	img := mustImage(t, `
start:  mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        mov #500, 0(r14)
done:   jmp done
`)
	storePCs := rep.ViolatingStorePCs()
	if len(storePCs) != 1 {
		t.Fatalf("expected exactly one violating store, got %v", storePCs)
	}
	si := img.AddrToStmt[storePCs[0]]
	if img.Stmts[si].Mnemonic != "mov" || img.Stmts[si].Ops[1].Kind != asm.OpIndexed {
		t.Fatalf("root cause points at %q", img.Stmts[si].String())
	}
}

// Figure 5 / Figure 9 right-hand: masking the address makes it secure.
func TestFigure5MaskedOffsetVerifies(t *testing.T) {
	rep := analyze(t, `
start:  mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        and #0x03ff, r14
        bis #0x0400, r14
        mov #500, 0(r14)
done:   jmp done
`, &Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedData:    []AddrRange{{0x0400, 0x0800}},
	})
	if hasKind(rep, C2MemoryEscape) {
		t.Fatalf("masked store still flagged: %v", rep.Violations)
	}
}

// Figure 8 left-hand: once tainted code runs, the PC is tainted and jumping
// back to untainted code violates C1.
func TestFigure8UnprotectedViolatesC1(t *testing.T) {
	src := `
start:  nop
tstart: mov #3, r10          ; tainted partition begins here
loop:   nop
        dec r10
        jnz loop
        jmp start
tend:
`
	img := mustImage(t, src)
	pol := &Policy{
		Name:           "integrity",
		TaintedCode:    []AddrRange{{img.MustSymbol("tstart"), img.MustSymbol("tend")}},
		TaintCodeWords: true, // Figure 8 explicitly marks the instructions tainted
	}
	rep, err := Analyze(img, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(rep, C1TaintedState) {
		t.Fatalf("expected C1, got %v", rep.Violations)
	}
	if !rep.NeedsWatchdog() {
		t.Fatal("report should request the watchdog transform")
	}
}

// Figure 8 right-hand: arming the watchdog in the untainted partition and
// letting it reset the pipeline removes the C1 violation. The tainted task
// has control flow dependent on a tainted input (the benchmark scenario of
// Section 7), which taints the PC until the watchdog reset recovers it.
func TestFigure8WatchdogProtectionVerifies(t *testing.T) {
	src := `
.equ WDTCTL, 0x0120
start:  mov #0x5a03, &WDTCTL ; arm watchdog, 64-cycle interval (untainted)
tstart: mov &0x0020, r10     ; tainted input (P1IN)
        and #3, r10
loop:   nop
        dec r10
        jnz loop             ; tainted control flow
spin:   jmp spin             ; pad until the watchdog fires
tend:
`
	img := mustImage(t, src)
	pol := &Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedCode:    []AddrRange{{img.MustSymbol("tstart"), img.MustSymbol("tend")}},
	}
	rep, err := Analyze(img, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hasKind(rep, C1TaintedState) {
		t.Fatalf("watchdog protection failed: %v", rep.Violations)
	}
	if hasKind(rep, WatchdogTainted) {
		t.Fatalf("watchdog integrity flagged: %v", rep.Violations)
	}
	if hasKind(rep, AnalysisIncomplete) || hasKind(rep, PCUnresolved) {
		t.Fatalf("analysis failed to converge: %v", rep.Violations)
	}
	t.Logf("stats: %s", rep.Stats)
}

// Tainted code writing the watchdog control register is flagged, because it
// breaks the recovery mechanism's soundness.
func TestTaintedCodeWritingWatchdogFlagged(t *testing.T) {
	src := `
.equ WDTCTL, 0x0120
start:  nop
tstart: mov #0x5a80, &WDTCTL ; tainted code holds the watchdog
        jmp tstart
tend:
`
	img := mustImage(t, src)
	pol := &Policy{
		Name:        "integrity",
		TaintedCode: []AddrRange{{img.MustSymbol("tstart"), img.MustSymbol("tend")}},
	}
	rep, err := Analyze(img, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(rep, WatchdogTainted) {
		t.Fatalf("expected watchdog violation, got %v", rep.Violations)
	}
}

// C4: untainted code reading a tainted port.
func TestC4UntaintedReadsTaintedPort(t *testing.T) {
	rep := analyze(t, `
start:  mov &0x0020, r5
done:   jmp done
`, &Policy{Name: "integrity", TaintedInPorts: []int{0}})
	if !hasKind(rep, C4ReadTaintedPort) {
		t.Fatalf("expected C4, got %v", rep.Violations)
	}
}

// C5: tainted code writing an untainted output port.
func TestC5TaintedWritesUntaintedPort(t *testing.T) {
	src := `
start:  nop
tstart: mov #1, &0x002e      ; P4OUT is untainted
        jmp tstart
tend:
`
	img := mustImage(t, src)
	pol := &Policy{
		Name:        "integrity",
		TaintedCode: []AddrRange{{img.MustSymbol("tstart"), img.MustSymbol("tend")}},
	}
	rep, err := Analyze(img, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(rep, C5WriteUntaintedPort) {
		t.Fatalf("expected C5, got %v", rep.Violations)
	}
}

// C3: untainted code loading from a tainted data partition.
func TestC3UntaintedLoadsTaintedData(t *testing.T) {
	rep := analyze(t, `
start:  mov &0x0500, r5      ; inside the tainted partition
done:   jmp done
`, &Policy{
		Name:                 "integrity",
		TaintedData:          []AddrRange{{0x0400, 0x0800}},
		InitiallyTaintedData: []AddrRange{{0x0400, 0x0800}},
	})
	if !hasKind(rep, C3LoadTainted) {
		t.Fatalf("expected C3, got %v", rep.Violations)
	}
}

// Direct non-interference: untainted code moving tainted data out an
// untainted port.
func TestDirectOutputViolation(t *testing.T) {
	rep := analyze(t, `
start:  mov &0x0020, r5      ; tainted input (also a C4)
        mov r5, &0x002e      ; P4OUT untainted
done:   jmp done
`, &Policy{Name: "integrity", TaintedInPorts: []int{0}})
	if !hasKind(rep, OutputPortTainted) {
		t.Fatalf("expected direct output violation, got %v", rep.Violations)
	}
}

// Indirect control flow through unknown data cannot be concretized and is
// reported conservatively.
func TestUnresolvedIndirectJump(t *testing.T) {
	rep := analyze(t, `
start:  mov &0x0020, r5
        br r5
`, &Policy{Name: "integrity", TaintedInPorts: []int{0}})
	if !hasKind(rep, PCUnresolved) {
		t.Fatalf("expected PCUnresolved, got %v", rep.Violations)
	}
}

// The watchdog-expiry fork: after merging, the countdown is unknown and the
// engine explores both reset and no-reset worlds without diverging.
func TestWatchdogForkConverges(t *testing.T) {
	rep := analyze(t, `
.equ WDTCTL, 0x0120
start:  mov #0x5a03, &WDTCTL
spin:   jmp spin
`, &Policy{Name: "integrity"})
	if hasKind(rep, AnalysisIncomplete) {
		t.Fatalf("did not converge: %v (stats %s)", rep.Violations, rep.Stats)
	}
	if !rep.Secure() {
		t.Fatalf("expected secure, got %v", rep.Violations)
	}
}

func TestReportHelpers(t *testing.T) {
	rep := &Report{Violations: []Violation{
		{Kind: C1TaintedState, PC: 0xf010},
		{Kind: C2MemoryEscape, PC: 0xf020},
		{Kind: C2MemoryEscape, PC: 0xf004},
	}}
	if got := rep.ViolatedConditions(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("conditions = %v", got)
	}
	if got := rep.ViolatingStorePCs(); len(got) != 2 || got[0] != 0xf004 {
		t.Fatalf("store PCs = %v", got)
	}
	if !rep.NeedsWatchdog() {
		t.Fatal("NeedsWatchdog")
	}
	if rep.Secure() {
		t.Fatal("Secure with violations")
	}
}

func TestKindStringsAndConditions(t *testing.T) {
	if C1TaintedState.Condition() != 1 || C5WriteUntaintedPort.Condition() != 5 {
		t.Fatal("condition numbering broken")
	}
	if OutputPortTainted.Condition() != 0 {
		t.Fatal("non-condition kind mapped to a condition")
	}
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" {
			t.Fatal("missing kind name")
		}
	}
}

func TestPolicyHelpers(t *testing.T) {
	p := &Policy{
		Name:            "x",
		TaintedInPorts:  []int{0, 2},
		TaintedOutPorts: []int{1},
		TaintedCode:     []AddrRange{{0xf100, 0xf200}},
		TaintedData:     []AddrRange{{0x0400, 0x0800}},
	}
	if !p.TaintedInPort(0) || p.TaintedInPort(1) || !p.TaintedInPort(2) {
		t.Fatal("TaintedInPort")
	}
	if !p.TaintedOutPort(1) || p.TaintedOutPort(0) {
		t.Fatal("TaintedOutPort")
	}
	if !p.InTaintedCode(0xf100) || p.InTaintedCode(0xf200) {
		t.Fatal("InTaintedCode")
	}
	if !p.InTaintedData(0x0400) || p.InTaintedData(0x0800) {
		t.Fatal("InTaintedData")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Policy{TaintedCode: []AddrRange{{5, 5}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty range should fail validation")
	}
}

// Figure 7 reproduction: the exact (value, taint) table from the paper.
func TestFigure7ExecutionTree(t *testing.T) {
	tree, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	sig := func(v logic.V, tt bool) logic.Sig { return logic.S(v, tt) }
	wantCommon := []Fig7Row{
		{0, sig(logic.X, false), sig(logic.X, false), sig(logic.One, false), sig(logic.X, false)},
		{1, sig(logic.Zero, false), sig(logic.One, false), sig(logic.Zero, false), sig(logic.One, false)},
		{2, sig(logic.One, false), sig(logic.Zero, true), sig(logic.Zero, false), sig(logic.One, true)},
	}
	wantLeft := []Fig7Row{
		{3, sig(logic.One, true), sig(logic.X, false), sig(logic.Zero, false), sig(logic.X, true)},
		{4, sig(logic.X, true), sig(logic.X, false), sig(logic.One, true), sig(logic.X, true)},
		{5, sig(logic.Zero, true), sig(logic.Zero, false), sig(logic.Zero, false), sig(logic.Zero, true)},
	}
	wantRight := []Fig7Row{
		{3, sig(logic.One, true), sig(logic.One, true), sig(logic.Zero, false), sig(logic.Zero, true)},
		{4, sig(logic.Zero, true), sig(logic.X, true), sig(logic.One, false), sig(logic.X, true)},
		{5, sig(logic.Zero, false), sig(logic.Zero, false), sig(logic.Zero, false), sig(logic.Zero, false)},
	}
	checkRows := func(name string, got, want []Fig7Row) {
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows", name, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s cycle %d:\n got %s\nwant %s", name, want[i].Cycle, got[i], want[i])
			}
		}
	}
	checkRows("common", tree.Common, wantCommon)
	checkRows("left", tree.Left, wantLeft)
	checkRows("right", tree.Right, wantRight)
}

// The *-logic baseline degrades on input-dependent control flow: the PC
// taints most of the design including the watchdog (Footnote 8).
func TestStarLogicDegrades(t *testing.T) {
	img := mustImage(t, `
start:  mov &0x0020, r5
        and #3, r5
loop:   dec r5
        jnz loop
        jmp start
`)
	rep, err := StarLogic(img, &Policy{Name: "integrity", TaintedInPorts: []int{0}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PCBecameUnknown {
		t.Fatal("PC should have become unknown")
	}
	if rep.GateTaintFraction < 0.5 {
		t.Fatalf("gate taint fraction = %.2f, expected majority tainted", rep.GateTaintFraction)
	}
	if !rep.WatchdogTainted {
		t.Fatal("the watchdog should be tainted under *-logic")
	}
	t.Logf("*-logic: %.1f%% gates, %.1f%% DFFs tainted; wdt tainted=%v",
		100*rep.GateTaintFraction, 100*rep.DFFTaintFraction, rep.WatchdogTainted)
}

// On a straight-line (input-independent) program *-logic stays precise.
func TestStarLogicPreciseWithoutControlDependence(t *testing.T) {
	img := mustImage(t, `
start:  mov &0x0028, r5
        add #1, r5
done:   jmp done
`)
	rep, err := StarLogic(img, &Policy{Name: "integrity"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PCBecameUnknown {
		t.Fatal("PC should have stayed known")
	}
	if rep.GateTaintFraction != 0 {
		t.Fatalf("nothing should be tainted, got %.2f", rep.GateTaintFraction)
	}
}

func TestAddrRangePattern(t *testing.T) {
	r := AddrRange{0x0400, 0x0480}
	if !r.IntersectsPattern(0x00ff, 0x0400) {
		t.Fatal("pattern with free low bits should intersect")
	}
	if r.IntersectsPattern(0x00ff, 0x0200) {
		t.Fatal("pattern pinned outside should not intersect")
	}
	_ = isa.RAMStart
}
