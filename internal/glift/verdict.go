package glift

import (
	"fmt"
	"runtime/debug"
)

// Verdict is the fail-closed outcome of an analysis run. The paper's
// guarantee (Section 5.4) holds only when the symbolic exploration ran to
// completion with no sufficient condition violated, so every abnormal
// termination — cancellation, an exhausted cycle or memory budget, an
// internal panic — must map to a non-Verified verdict. Verified is the only
// verdict that asserts security; everything else means "not proven".
type Verdict uint8

// Verdicts, ordered by severity. A report's verdict is the most severe
// applicable one: an incomplete exploration masks even found violations
// (the violation list is still available in the report), because an
// incomplete run can neither prove security nor enumerate all violations.
const (
	// Verified: the exploration completed and no sufficient condition was
	// violated — the system guarantees the policy.
	Verified Verdict = iota
	// Violations: the exploration completed and found potential violations.
	Violations
	// Incomplete: an exploration budget was exhausted or the run was
	// cancelled; the absence of reported violations proves nothing.
	Incomplete
	// InternalError: the engine itself failed (a recovered panic); no part
	// of the report may be trusted as a security result.
	InternalError
)

var verdictNames = [...]string{"verified", "violations", "incomplete", "internal-error"}

// String names the verdict.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// ExitCode maps the verdict onto the documented CLI exit-code contract:
// 0 = verified, 1 = violations found, 3 = incomplete or internal error
// (2 is reserved for usage/input errors and never produced by a verdict).
func (v Verdict) ExitCode() int {
	switch v {
	case Verified:
		return 0
	case Violations:
		return 1
	default:
		return 3
	}
}

// RunError describes an abnormal engine termination. It is attached to the
// Report (never returned bare) so that a partial report and its diagnostics
// travel together, and it forces the InternalError verdict.
type RunError struct {
	// Reason is a one-line human-readable diagnostic.
	Reason string
	// Panic holds the recovered panic value when the error comes from the
	// engine's recover() boundary, nil otherwise.
	Panic any
	// Stack is the goroutine stack captured at recovery time.
	Stack string
}

// Error implements the error interface.
func (e *RunError) Error() string {
	if e.Panic != nil {
		return fmt.Sprintf("glift: internal error: %s (panic: %v)", e.Reason, e.Panic)
	}
	return "glift: internal error: " + e.Reason
}

// recoveredError converts a recovered panic value into a RunError carrying
// the panic diagnostic and stack.
func recoveredError(p any) *RunError {
	return &RunError{
		Reason: "engine panic during symbolic exploration",
		Panic:  p,
		Stack:  string(debug.Stack()),
	}
}
