package glift

import "testing"

// TestCycleBudgetExhaustion: a tiny budget must surface AnalysisIncomplete
// rather than silently truncating coverage.
func TestCycleBudgetExhaustion(t *testing.T) {
	rep := analyze(t, `
start:  mov &0x0020, r5
        and #7, r5
loop:   dec r5
        jnz loop
        jmp start
`, &Policy{Name: "integrity", TaintedInPorts: []int{0}})
	if hasKind(rep, AnalysisIncomplete) {
		t.Fatal("default budget should suffice for the control test")
	}
	img := mustImage(t, `
start:  mov &0x0020, r5
        and #7, r5
loop:   dec r5
        jnz loop
        jmp start
`)
	small, err := Analyze(img, &Policy{Name: "integrity", TaintedInPorts: []int{0}},
		&Options{MaxCycles: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(small, AnalysisIncomplete) {
		t.Fatalf("tiny budget should report incompleteness: %v", small.Violations)
	}
}

// TestAnalysisDeterminism: identical inputs produce identical reports.
func TestAnalysisDeterminism(t *testing.T) {
	src := `
start:  mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        mov #500, 0(r14)
        mov &0x0020, r5
        and #3, r5
lp:     dec r5
        jnz lp
done:   jmp done
`
	pol := &Policy{Name: "integrity", TaintedInPorts: []int{0}, TaintedData: []AddrRange{{0x0400, 0x0800}}}
	a := analyze(t, src, pol)
	b := analyze(t, src, pol)
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("nondeterministic: %d vs %d violations", len(a.Violations), len(b.Violations))
	}
	for i := range a.Violations {
		va, vb := a.Violations[i], b.Violations[i]
		va.Cycle, vb.Cycle = 0, 0
		if va != vb {
			t.Fatalf("violation %d differs: %v vs %v", i, va, vb)
		}
	}
	if a.Stats.Cycles != b.Stats.Cycles || a.Stats.Forks != b.Stats.Forks {
		t.Fatalf("exploration differs: %s vs %s", a.Stats, b.Stats)
	}
}

// TestWidenAfterOne mirrors the ablation: eager widening must still be
// sound (it may add false positives, never lose true ones).
func TestWidenAfterOne(t *testing.T) {
	src := `
start:  mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        mov #500, 0(r14)
done:   jmp done
`
	pol := &Policy{Name: "integrity", TaintedInPorts: []int{0}, TaintedData: []AddrRange{{0x0400, 0x0800}}}
	img := mustImage(t, src)
	eager, err := Analyze(img, pol, &Options{WidenAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(eager.ByKind(C2MemoryEscape)) == 0 {
		t.Fatalf("eager widening lost the true violation: %v", eager.Violations)
	}
}

// TestYieldCannotUntaintPC reproduces Section 5.2's core argument: a
// tainted task that "voluntarily" returns control — even through a clean,
// untainted return address with full register hygiene — leaves the PC
// tainted, because when the yield executes is attacker-influenced. Only the
// untainted watchdog reset recovers trusted control flow (the companion
// Figure 8 test).
func TestYieldCannotUntaintPC(t *testing.T) {
	src := `
start:  mov #0x0400, sp
        jmp tstart
t_done: nop                  ; untainted code resumes here after the yield
        jmp start
tstart: mov &0x0020, r5      ; tainted input
        and #3, r5
loop:   dec r5
        jnz loop             ; tainted control flow -> tainted PC
        clr r5               ; full register/flag hygiene
        mov #0, sr
        br #t_done           ; "yield": clean, constant return target
tend:   nop
`
	img := mustImage(t, src)
	pol := &Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedCode:    []AddrRange{{img.MustSymbol("tstart"), img.MustSymbol("tend")}},
	}
	rep, err := Analyze(img, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(rep, C1TaintedState) {
		t.Fatalf("the yield must not launder PC taint: %v", rep.Violations)
	}
}
