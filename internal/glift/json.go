package glift

import (
	"fmt"
	"strconv"
)

// This file defines the one JSON serialization of an analysis report shared
// by every surface that emits reports: the gliftcheck/secure430 -json flags
// and the gliftd service return exactly this shape, so downstream tooling
// parses a single schema regardless of how the analysis was invoked.

// ViolationJSON is the wire form of one Violation.
type ViolationJSON struct {
	Kind string `json:"kind"`
	// Condition is 1..5 for the sufficient-condition kinds, omitted
	// otherwise.
	Condition int    `json:"condition,omitempty"`
	PC        string `json:"pc"` // hex, e.g. "0xf01c"
	Cycle     uint64 `json:"cycle"`
	Detail    string `json:"detail"`
}

// StatsJSON is the wire form of the exploration statistics.
type StatsJSON struct {
	Cycles       uint64 `json:"cycles"`
	Paths        int    `json:"paths"`
	Forks        int    `json:"forks"`
	Prunes       int    `json:"prunes"`
	Merges       int    `json:"merges"`
	TableStates  int    `json:"table_states"`
	WallNanos    int64  `json:"wall_ns"`
	PeakMemBytes int64  `json:"peak_mem_bytes"`
	Escalations  int    `json:"widen_escalations"`
}

// RunErrorJSON is the wire form of an internal engine error.
type RunErrorJSON struct {
	Reason string `json:"reason"`
	Panic  string `json:"panic,omitempty"`
}

// ReportJSON is the wire form of a full analysis report.
type ReportJSON struct {
	Policy             string          `json:"policy"`
	Verdict            string          `json:"verdict"`
	ExitCode           int             `json:"exit_code"`
	Secure             bool            `json:"secure"`
	Violations         []ViolationJSON `json:"violations"`
	ViolatedConditions []int           `json:"violated_conditions,omitempty"`
	// StoresNeedingMask lists the static addresses of stores the transform
	// layer would mask (hex).
	StoresNeedingMask []string      `json:"stores_needing_mask,omitempty"`
	NeedsWatchdog     bool          `json:"needs_watchdog"`
	Stats             StatsJSON     `json:"stats"`
	Err               *RunErrorJSON `json:"error,omitempty"`
}

// JSON converts the report into the shared wire form.
func (r *Report) JSON() ReportJSON {
	verdict := r.Verdict()
	out := ReportJSON{
		Policy:             r.Policy,
		Verdict:            verdict.String(),
		ExitCode:           verdict.ExitCode(),
		Secure:             r.Secure(),
		Violations:         []ViolationJSON{},
		ViolatedConditions: r.ViolatedConditions(),
		NeedsWatchdog:      r.NeedsWatchdog(),
		Stats: StatsJSON{
			Cycles:       r.Stats.Cycles,
			Paths:        r.Stats.Paths,
			Forks:        r.Stats.Forks,
			Prunes:       r.Stats.Prunes,
			Merges:       r.Stats.Merges,
			TableStates:  r.Stats.TableStates,
			WallNanos:    r.Stats.WallNanos,
			PeakMemBytes: r.Stats.PeakMemBytes,
			Escalations:  r.Stats.Escalations,
		},
	}
	for _, v := range r.Violations {
		out.Violations = append(out.Violations, ViolationJSON{
			Kind:      v.Kind.String(),
			Condition: v.Kind.Condition(),
			PC:        fmt.Sprintf("%#04x", v.PC),
			Cycle:     v.Cycle,
			Detail:    v.Detail,
		})
	}
	for _, pc := range r.ViolatingStorePCs() {
		out.StoresNeedingMask = append(out.StoresNeedingMask, fmt.Sprintf("%#04x", pc))
	}
	if r.Err != nil {
		ej := &RunErrorJSON{Reason: r.Err.Reason}
		if r.Err.Panic != nil {
			ej.Panic = fmt.Sprint(r.Err.Panic)
		}
		out.Err = ej
	}
	return out
}

// KindFromString inverts Kind.String for the named kinds.
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Report reconstructs the engine report a ReportJSON was serialized from.
// It is the inverse of Report.JSON for everything that shapes a verdict:
// round-tripping a report and re-serializing it yields byte-identical JSON,
// which is what lets the persistent result store prove that a recovered
// entry is exactly the report a cold engine run would have produced. The
// derived fields (verdict, exit code, secure, violated conditions, masked
// stores) are recomputed from the reconstructed violations rather than
// trusted, and a mismatch against the serialized verdict is reported as an
// error — a store entry that fails this check is corrupt, not stale.
//
// One field is deliberately lossy: RunError.Stack is never serialized, so
// an internal-error report does not round-trip its stack trace. Such
// reports are never cached or persisted (the verdict reflects the run, not
// the inputs), so the store never observes the loss.
func (rj *ReportJSON) Report() (*Report, error) {
	rep := &Report{
		Policy: rj.Policy,
		Stats: Stats{
			Cycles:       rj.Stats.Cycles,
			Paths:        rj.Stats.Paths,
			Forks:        rj.Stats.Forks,
			Prunes:       rj.Stats.Prunes,
			Merges:       rj.Stats.Merges,
			TableStates:  rj.Stats.TableStates,
			WallNanos:    rj.Stats.WallNanos,
			PeakMemBytes: rj.Stats.PeakMemBytes,
			Escalations:  rj.Stats.Escalations,
		},
	}
	for i, v := range rj.Violations {
		kind, ok := KindFromString(v.Kind)
		if !ok {
			return nil, fmt.Errorf("glift: violation %d: unknown kind %q", i, v.Kind)
		}
		pc, err := strconv.ParseUint(v.PC, 0, 16)
		if err != nil {
			return nil, fmt.Errorf("glift: violation %d: bad pc %q: %v", i, v.PC, err)
		}
		rep.Violations = append(rep.Violations, Violation{
			Kind:   kind,
			PC:     uint16(pc),
			Cycle:  v.Cycle,
			Detail: v.Detail,
		})
	}
	if rj.Err != nil {
		re := &RunError{Reason: rj.Err.Reason}
		if rj.Err.Panic != "" {
			re.Panic = rj.Err.Panic
		}
		rep.Err = re
	}
	if got := rep.Verdict().String(); got != rj.Verdict {
		return nil, fmt.Errorf("glift: reconstructed verdict %q does not match serialized %q", got, rj.Verdict)
	}
	return rep, nil
}
