package glift

import (
	"bytes"
	"strings"
	"testing"
)

// The paper's non-interference policy tracks two independent taints —
// untrusted (integrity) and secret (confidentiality) — analyzed separately
// (Section 4.2). These tests exercise the confidentiality dimension: the
// taint source is a secret key region in memory, and the untainted sinks
// are the non-secret output ports.

// A device that exfiltrates its key to the radio port violates
// confidentiality.
func TestConfidentialityKeyLeaks(t *testing.T) {
	img := mustImage(t, `
.equ KEY, 0x0400
.equ P4OUT, 0x002e
start:  mov &KEY, r5         ; load a secret key word
        mov r5, &P4OUT       ; ...and leak it out the non-secret port
done:   jmp done
`)
	pol := &Policy{
		Name:                 "confidentiality",
		TaintedData:          []AddrRange{{0x0400, 0x0420}},
		InitiallyTaintedData: []AddrRange{{0x0400, 0x0420}},
		TaintedCode:          []AddrRange{{img.MustSymbol("start"), img.MustSymbol("done")}},
	}
	rep, err := Analyze(img, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(rep, OutputPortTainted) && !hasKind(rep, C5WriteUntaintedPort) {
		t.Fatalf("secret leak not detected: %v", rep.Violations)
	}
}

// The same device writing only a MAC-like digest to its *secret-allowed*
// port verifies under confidentiality.
func TestConfidentialityContainedKeyUse(t *testing.T) {
	img := mustImage(t, `
.equ KEY, 0x0400
.equ P2OUT, 0x0026
start:  mov &KEY, r5
        xor &KEY+2, r5       ; fold the key
        mov r5, &P2OUT       ; the secret-allowed channel
        mov r5, &KEY+16      ; scratch inside the secret region
        clr r5
        mov #0, sr
done:   jmp done
`)
	pol := &Policy{
		Name:                 "confidentiality",
		TaintedData:          []AddrRange{{0x0400, 0x0420}},
		InitiallyTaintedData: []AddrRange{{0x0400, 0x0420}},
		TaintedOutPorts:      []int{1},
		TaintedCode:          []AddrRange{{img.MustSymbol("start"), img.MustSymbol("done")}},
	}
	rep, err := Analyze(img, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Secure() {
		t.Fatalf("contained key use should verify: %v", rep.Violations)
	}
}

// A timing channel: a loop whose trip count depends on the secret key
// taints the PC; condition 1 catches the implicit flow when non-secret
// code resumes. This is the class of channel ISA-level taint tracking
// misses and gate-level tracking catches (Section 1).
func TestConfidentialityTimingChannel(t *testing.T) {
	img := mustImage(t, `
.equ KEY, 0x0400
start:  jmp tstart
t_done: jmp start            ; non-secret code
tstart: mov &KEY, r5         ; secret-dependent loop bound
        and #7, r5
loop:   dec r5
        jnz loop             ; secret-dependent control flow
        jmp t_done
tend:   nop
`)
	pol := &Policy{
		Name:                 "confidentiality",
		TaintedData:          []AddrRange{{0x0400, 0x0420}},
		InitiallyTaintedData: []AddrRange{{0x0400, 0x0420}},
		TaintedCode:          []AddrRange{{img.MustSymbol("tstart"), img.MustSymbol("tend")}},
	}
	rep, err := Analyze(img, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(rep, C1TaintedState) {
		t.Fatalf("secret-dependent timing should taint the PC into non-secret code: %v", rep.Violations)
	}
}

// TestTraceRecorder exercises the per-cycle tainted-state capture.
func TestTraceRecorder(t *testing.T) {
	img := mustImage(t, `
start:  mov &0x0020, r5
        mov r5, &0x0404
done:   jmp done
`)
	pol := &Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedData:    []AddrRange{{0x0400, 0x0800}},
	}
	rec := &TraceRecorder{}
	if _, err := Analyze(img, pol, &Options{Trace: rec.Hook()}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) < 5 {
		t.Fatalf("only %d trace entries", len(rec.Entries))
	}
	// r5 must appear tainted at some point, and RAM taint must grow after
	// the store.
	sawR5 := false
	sawRAM := false
	for _, e := range rec.Entries {
		if e.TaintedRegs>>5&1 == 1 {
			sawR5 = true
		}
		if e.TaintedRAM > 0 {
			sawRAM = true
		}
	}
	if !sawR5 || !sawRAM {
		t.Fatalf("trace missed taint movement (r5=%v ram=%v)", sawR5, sawRAM)
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ram=") {
		t.Fatal("trace rendering broken")
	}
}

// TestTraceRecorderSampling checks Every/Max limits.
func TestTraceRecorderSampling(t *testing.T) {
	img := mustImage(t, `
start:  mov &0x0020, r5
        and #7, r5
loop:   dec r5
        jnz loop
        jmp start
`)
	pol := &Policy{Name: "integrity", TaintedInPorts: []int{0}}
	rec := &TraceRecorder{Every: 10, Max: 20}
	if _, err := Analyze(img, pol, &Options{Trace: rec.Hook()}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) > 20 {
		t.Fatalf("cap not applied: %d entries", len(rec.Entries))
	}
	for _, e := range rec.Entries {
		if e.Cycle%10 != 0 {
			t.Fatalf("sampling broken at cycle %d", e.Cycle)
		}
	}
}
