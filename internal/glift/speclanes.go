package glift

import (
	"fmt"
	"math/bits"

	"repro/internal/logic"
	"repro/internal/mcu"
	"repro/internal/sim"
)

// Lane-packed speculation (Options.SpecLanes > 1).
//
// A batch worker claims up to SpecLanes queued path states at once and
// simulates them in lockstep on one bitsliced mcu.BatchSystem, one state per
// lane: every gate evaluation advances all packed paths for the cost of a
// few word operations. Each lane records exactly the specTrace a scalar
// worker would have recorded — same ops, same snapshots, same events — and
// publishes it the moment the lane retires, so the unchanged sequential
// committer replays it through the same table protocol.
//
// The one divergence from scalar speculation is the fork cycle: forking
// needs per-combination forced re-evaluation, which cannot be done for one
// lane without disturbing the others. A lane that reaches an unknown-PC
// cycle therefore retires with endTruncated, the standard "resume live from
// the last recorded op" path — the committer re-simulates the short stretch
// to the fork and performs the fork itself. Truncation is correctness-
// neutral by construction, so reports stay byte-identical at every
// worker/lane count (TestDifferentialSpecLanes).

// nextBatch claims up to max unclaimed items, most recently queued first
// (the ones the committer will reach soonest). It blocks while the queue is
// empty and returns nil once the pool stops.
func (p *specPool) nextBatch(max int) []*specItem {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		var out []*specItem
		for len(p.pending) > 0 && len(out) < max {
			it := p.pending[len(p.pending)-1]
			p.pending = p.pending[:len(p.pending)-1]
			if it.state.CompareAndSwap(specPending, specClaimed) {
				p.steals.Add(1)
				out = append(out, it)
			}
		}
		if len(out) > 0 {
			return out
		}
		if p.stopped {
			return nil
		}
		p.cond.Wait()
	}
}

// batchWorker is one lane-packed speculation goroutine.
func (p *specPool) batchWorker() {
	var bs *mcu.BatchSystem
	for {
		its := p.nextBatch(p.lanes)
		if its == nil {
			return
		}
		if bs == nil {
			b, err := buildBatchSystem(p.e, p.lanes)
			if err != nil {
				// Cannot build the batch machine: release the claims so the
				// committer simulates live, and retire this worker.
				for _, it := range its {
					it.state.CompareAndSwap(specClaimed, specTaken)
				}
				return
			}
			bs = b
		}
		p.busy.Add(1)
		p.speculateBatchSafe(bs, its)
		p.busy.Add(-1)
	}
}

// buildBatchSystem prepares one lane-packed simulation instance whose every
// lane is equivalent to a buildSystem scalar worker system: trap-padded
// shared ROM with the image and reset vector (and tainted code partitions),
// policy port taints on every lane. Per-path state (flip-flops, RAM)
// arrives via RestoreLane.
func buildBatchSystem(e *Engine, lanes int) (*mcu.BatchSystem, error) {
	bs, err := mcu.NewBatchSystem(e.design, lanes)
	if err != nil {
		return nil, err
	}
	d := e.design
	rom := sim.NewTaintMem(d.Map.ROMStart, int(d.Map.ROMEnd)-int(d.Map.ROMStart))
	d.FillTraps(func(a, w uint16) { rom.StoreWord(a, sim.ConcreteWord(w)) })
	e.img.Place(func(a, w uint16) { rom.StoreWord(a, sim.ConcreteWord(w)) })
	rom.StoreWord(d.Map.ResetVec, sim.ConcreteWord(e.img.Entry))
	if e.Pol.TaintCodeWords {
		for _, r := range e.Pol.TaintedCode {
			rom.SetTaint(r.Lo, r.Hi)
		}
	}
	bs.ShareROM(rom)
	for lane := 0; lane < lanes; lane++ {
		for i := 0; i < mcu.NumPorts; i++ {
			w := sim.Word{XM: 0xffff}
			if e.Pol.TaintedInPort(i) {
				w.TT = 0xffff
			}
			bs.SetLanePortIn(lane, i, w)
		}
	}
	return bs, nil
}

// speculateBatchSafe runs speculateBatch under a recover barrier: on panic,
// every lane whose trace was not yet published releases its claim, and the
// committer reproduces the panic live inside RunContext's fail-closed
// recover — the scalar speculateSafe contract, batch-wide.
func (p *specPool) speculateBatchSafe(bs *mcu.BatchSystem, its []*specItem) {
	defer func() {
		if r := recover(); r != nil {
			for _, it := range its {
				it.state.CompareAndSwap(specClaimed, specTaken)
			}
		}
	}()
	p.speculateBatch(bs, its)
}

// specLaneCtx is one lane's private speculation state: the scalar
// speculate()'s locals, per lane.
type specLaneCtx struct {
	it       *specItem
	tr       *specTrace
	cycles   uint64
	curInstr uint16
	pending  []specEvent
	seen     map[Violation]bool
	selfTab  map[forkKey]*mcu.Snapshot
	chk      cycleChecker
}

// speculateBatch simulates the claimed path states in lockstep, one per
// lane, publishing each lane's trace as it retires. It mirrors the scalar
// speculate() cycle for cycle; see the file comment for the fork-cycle
// truncation that is the only behavioural difference.
func (p *specPool) speculateBatch(bs *mcu.BatchSystem, its []*specItem) {
	e := p.e
	p.laneBatches.Add(1)
	p.lanesPacked.Add(uint64(len(its)))

	lanes := make([]specLaneCtx, len(its))
	active := uint64(0)
	for i := range lanes {
		lc := &lanes[i]
		lc.it = its[i]
		lc.tr = &specTrace{}
		lc.curInstr = its[i].curInstr
		lc.seen = make(map[Violation]bool)
		lc.selfTab = make(map[forkKey]*mcu.Snapshot)
		raise := func(k Kind, pc uint16, detail string) {
			key := violationDedupKey(k, pc)
			if lc.seen[key] {
				return
			}
			lc.seen[key] = true
			lc.pending = append(lc.pending, specEvent{cycles: lc.cycles, kind: k, pc: pc, detail: detail})
		}
		lc.chk = cycleChecker{sys: bs.Lane(i), pol: e.Pol, ramRange: e.ramRange, raise: raise}
		bs.RestoreLane(i, its[i].snap)
		active |= 1 << i
	}

	retire := func(lane int, tr *specTrace) {
		active &^= 1 << lane
		if tr == nil {
			p.lanesWasted.Add(1)
		}
		p.publish(lanes[lane].it, tr)
	}
	truncated := func(lc *specLaneCtx) *specTrace {
		lc.tr.end = endTruncated
		lc.tr.endCycles = lc.cycles
		lc.tr.endInstr = lc.curInstr
		return lc.tr
	}
	pathDone := func(lc *specLaneCtx) *specTrace {
		lc.tr.preEnd, lc.tr.end = lc.pending, endPathDone
		lc.tr.endCycles, lc.tr.endInstr = lc.cycles, lc.curInstr
		return lc.tr
	}

	for active != 0 {
		if p.done.Load() {
			for m := active; m != 0; m &= m - 1 {
				retire(bits.TrailingZeros64(m), nil)
			}
			return
		}
		// Abandon lanes whose item the committer already passed; their word
		// slots keep evaluating (rides along for free) but nothing reads them.
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			if lanes[lane].it.state.Load() == specTaken {
				retire(lane, nil)
			}
		}
		if active == 0 {
			return
		}

		cis := bs.EvalCycle(active)
		commit := active
		for m := active; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			lc := &lanes[lane]
			ci := &cis[lane]
			if ci.StateOK && ci.State == mcu.StFetch && ci.PmemOK {
				lc.curInstr = ci.PmemAddr
			}
			if !ci.PmemOK {
				lc.chk.raise(PCUnresolved, lc.curInstr, fmt.Sprintf("fetch address is unknown (pc=%s)", ci.PC))
				retire(lane, pathDone(lc))
				commit &^= 1 << lane
				continue
			}
			lc.chk.check(ci, lc.curInstr)
			if ci.PCNext.XM != 0 || ci.POR.V == logic.X || ci.IrqTkn.V == logic.X {
				// Fork cycle: retire truncated without committing it; the
				// committer resumes live from the last op and forks there.
				retire(lane, truncated(lc))
				commit &^= 1 << lane
				continue
			}
		}
		bs.CommitLanes(commit, cis)

		for m := commit; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			lc := &lanes[lane]
			ci := &cis[lane]
			lc.cycles++
			// The control-flow recovery rule of commitOn, per lane: once the
			// PC is tainted only a clean reset may untaint it.
			if ci.PC.TT != 0 && !(ci.POR.V == logic.One && !ci.POR.T) {
				for _, bit := range e.design.PC {
					sg := bs.LaneSig(lane, bit)
					sg.T = true
					bs.B.SetLane(lane, bit, sg)
				}
			}
			if modifiesPC(e.design, ci) {
				k := forkKey{pc: ci.PC.Val, state: stateCode(ci), dir: dirCode(ci.BranchTkn.V, ci.POR.V, ci.IrqTkn.V)}
				post := bs.SnapshotLane(lane)
				lc.tr.ops = append(lc.tr.ops, specOp{key: k, post: post, curInstr: lc.curInstr, cycles: lc.cycles, events: lc.pending})
				lc.pending = nil
				lc.tr.bytes += e.snapBytes
				if e.tableCovers(k, post) {
					retire(lane, truncated(lc))
					continue
				}
				if prev, ok := lc.selfTab[k]; ok && post.SubstateOf(prev) {
					retire(lane, truncated(lc))
					continue
				}
				lc.selfTab[k] = post
				if len(lc.tr.ops) >= maxSpecOps || p.specBytes.Load()+lc.tr.bytes > p.budget {
					retire(lane, truncated(lc))
					continue
				}
			}
			if lc.cycles > e.opt.MaxPathCycles {
				lc.pending = append(lc.pending, specEvent{
					cycles: lc.cycles, pc: lc.curInstr, detail: "straight-line path cycle budget", budget: true,
				})
				lc.chk.raise(AnalysisIncomplete, lc.curInstr, "path exceeded straight-line cycle budget")
				retire(lane, pathDone(lc))
				continue
			}
			if lc.cycles >= e.opt.MaxCycles {
				retire(lane, truncated(lc))
				continue
			}
		}
	}
	// Drain lane event logs so a reused batch machine cannot grow unbounded.
	for i := range lanes {
		bs.LaneEvents(i)
	}
}
