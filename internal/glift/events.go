package glift

import "fmt"

// TraceEventKind classifies one structured exploration event delivered to
// Options.Tracer. The kinds mirror the dynamics of Algorithm 1 that the
// end-of-run Stats integers aggregate away: where paths start and end,
// where the exploration forks on X-PCs, where the conservative state table
// prunes or widens, and where budget pressure changes the engine's
// behaviour.
type TraceEventKind uint8

// Exploration event kinds.
const (
	// EvPathStart: a path state was popped from the worklist and simulation
	// resumed from it (Aux = pending paths remaining).
	EvPathStart TraceEventKind = iota
	// EvPathEnd: the path was abandoned — pruned, forked, or budgeted out
	// (Aux = pending paths remaining).
	EvPathEnd
	// EvFork: one concretized successor of an unknown-PC cycle was
	// enqueued (PC = the successor's commit PC, Aux = pending paths after
	// the push). One event per successor, so the count equals Stats.Forks.
	EvFork
	// EvMerge: a conservative-state-table entry was widened to a
	// superstate (PC = the table key's commit site, Aux = table size).
	EvMerge
	// EvPrune: a path was covered by an existing table entry and dropped
	// (PC = the table key's commit site, Aux = table size).
	EvPrune
	// EvEscalation: the soft memory budget forced a widening escalation
	// (Aux = the new effective WidenAfter threshold).
	EvEscalation
	// EvViolation: a violation was recorded in the report (PC = root-cause
	// instruction, Detail = the violation kind name). The count equals
	// len(Report.Violations).
	EvViolation
	// EvBudget: a hard exploration budget was crossed — cycle budget,
	// straight-line path budget, or the hard memory ceiling (Detail names
	// the budget). The run ends or the path is abandoned right after.
	EvBudget
	// NumTraceEventKinds bounds the enum for per-kind accounting.
	NumTraceEventKinds
)

var traceEventNames = [...]string{
	"path_start", "path_end", "fork", "merge", "prune",
	"widen_escalation", "violation", "budget",
}

// String names the kind (the Chrome trace event name).
func (k TraceEventKind) String() string {
	if int(k) < len(traceEventNames) {
		return traceEventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// TraceEvent is one structured exploration event. Every event is stamped
// with the simulated cycle count and the wall time since RunContext
// started, so a recorded stream can be laid out on either time axis.
type TraceEvent struct {
	Kind TraceEventKind
	// Cycle is the total simulated cycle count when the event fired.
	Cycle uint64
	// WallNS is wall-clock time since the run started, in nanoseconds.
	WallNS int64
	// PC is the instruction address the event is rooted at (the commit
	// site for forks/merges/prunes, the root cause for violations).
	PC uint16
	// Aux carries the kind-specific quantity documented on each kind:
	// pending-queue depth, table size, or the new widening threshold.
	Aux int
	// Detail carries the kind-specific text documented on each kind.
	Detail string
}

// traceEvent delivers one exploration event to the Tracer hook; with no
// tracer installed the cost is a single nil check.
func (e *Engine) traceEvent(kind TraceEventKind, pc uint16, aux int, detail string) {
	if e.opt.Tracer == nil {
		return
	}
	e.opt.Tracer(TraceEvent{
		Kind:   kind,
		Cycle:  e.report.Stats.Cycles,
		WallNS: e.sinceStart().Nanoseconds(),
		PC:     pc,
		Aux:    aux,
		Detail: detail,
	})
}
