package glift

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Fig7Row is one cycle of the Figure 7 illustrative example: the values and
// taints of the state bit S, the input In, the reset, and the combinational
// next-state S' = S XOR In.
type Fig7Row struct {
	Cycle int
	S     logic.Sig
	In    logic.Sig
	Rst   logic.Sig
	SNext logic.Sig
}

// String renders the row like the paper's table.
func (r Fig7Row) String() string {
	return fmt.Sprintf("cycle %d: S=%s In=%s rst=%s S'=%s", r.Cycle, r.S, r.In, r.Rst, r.SNext)
}

// Fig7Tree is the symbolic execution tree of Figure 7: a common prefix
// (cycles 0-2) followed by two paths (cycles 3-5) after the PC becomes
// unknown.
type Fig7Tree struct {
	Common, Left, Right []Fig7Row
}

// fig7Input is one cycle's stimulus.
type fig7Input struct {
	in, rst logic.Sig
}

// Figure7 reproduces the application-specific gate-level information flow
// tracking example of Figure 7 on the paper's toy circuit: a flip-flop S
// with next-state S XOR In and a synchronous clear. The left path ends with
// a *tainted* reset (value forced, taint retained); the right path with an
// untainted reset (fully cleaned).
func Figure7() (*Fig7Tree, error) {
	nl := netlist.New()
	in := nl.AddInput("in")
	rst := nl.AddInput("rst")
	s := nl.NewNet("s")
	sNext := nl.NewNet("s_next")
	nl.AddGate(logic.Xor, sNext, s, in)
	nl.AddDFF(s, sNext, rst, nl.Const1(), logic.Zero)
	c, err := sim.NewCircuit(nl)
	if err != nil {
		return nil, err
	}

	run := func(start int, inputs []fig7Input) []Fig7Row {
		var rows []Fig7Row
		for i, stim := range inputs {
			c.SetInput(in, stim.in)
			c.SetInput(rst, stim.rst)
			c.Eval(nil)
			rows = append(rows, Fig7Row{
				Cycle: start + i,
				S:     c.Get(s),
				In:    stim.in,
				Rst:   stim.rst,
				SNext: c.Get(sNext),
			})
			c.Clock()
		}
		return rows
	}

	tree := &Fig7Tree{}
	// Cycles 0-2: untainted reset, then an untainted 1, then a tainted 0.
	tree.Common = run(0, []fig7Input{
		{in: logic.X0, rst: logic.One0},
		{in: logic.One0, rst: logic.Zero0},
		{in: logic.Zero1, rst: logic.Zero0},
	})
	split := c.DFFState()

	// Left path: unknown untainted input, then a *tainted* reset.
	tree.Left = run(3, []fig7Input{
		{in: logic.X0, rst: logic.Zero0},
		{in: logic.X0, rst: logic.One1},
		{in: logic.Zero0, rst: logic.Zero0},
	})

	// Right path: tainted 1, then an untainted reset.
	c.RestoreDFFState(split)
	tree.Right = run(3, []fig7Input{
		{in: logic.One1, rst: logic.Zero0},
		{in: logic.XT, rst: logic.One0},
		{in: logic.Zero0, rst: logic.Zero0},
	})
	return tree, nil
}
