package motivate

import "testing"

func TestScenarioOutcomes(t *testing.T) {
	results, err := RunAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("want 4 scenarios, got %d", len(results))
	}
	for _, r := range results {
		if r.Scenario.Unknown {
			if r.Star == nil || !r.Star.PCBecameUnknown || r.Star.GateTaintFraction < 0.5 {
				t.Errorf("figure %d: unknown-application view should degrade, got %+v", r.Scenario.Figure, r.Star)
			}
			continue
		}
		if r.Secure != r.Scenario.Secure {
			t.Errorf("figure %d (%s): secure=%v, want %v; violations: %v",
				r.Scenario.Figure, r.Scenario.Name, r.Secure, r.Scenario.Secure, r.Report.Violations)
		}
	}
}

func TestFigure4RootCause(t *testing.T) {
	results, err := RunAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	fig4 := results[2]
	if got := fig4.Report.ViolatingStorePCs(); len(got) == 0 {
		t.Fatal("figure 4 should identify the violating store")
	}
}
