// Package motivate reproduces the motivating examples of Section 3
// (Figures 2-5): the same commodity processor running (2) an unknown
// application, (3) a known application with cleanly separated flows, (4) a
// known application that uses a tainted input as a store offset, and (5)
// the same application repaired by masking. Together they make the paper's
// argument: application knowledge turns "must assume every violation is
// possible" into a per-application guarantee, and software-only repairs
// suffice.
package motivate

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/glift"
)

// Scenario is one motivating example.
type Scenario struct {
	Figure  int
	Name    string
	Source  string // assembly, empty for the unknown-application scenario
	Policy  *glift.Policy
	Expect  string // the paper's conclusion for the figure
	Secure  bool   // whether the analysis should prove security
	Unknown bool   // Figure 2: the application is unknown
}

// policy43 is the Figures 3-5 policy: P1 tainted in, P2 tainted out,
// tainted partition for the c[] array, untainted d[] partition elsewhere.
func policy43() *glift.Policy {
	return &glift.Policy{
		Name:            "integrity",
		TaintedInPorts:  []int{0},
		TaintedOutPorts: []int{1},
		TaintedData:     []glift.AddrRange{{Lo: 0x0400, Hi: 0x0800}},
	}
}

// Scenarios returns the four figures in order.
func Scenarios() []*Scenario {
	return []*Scenario{
		{
			Figure:  2,
			Name:    "unknown application",
			Unknown: true,
			Expect: "an unknown application may read every tainted source and write every untainted sink: " +
				"only secure-by-design hardware can guarantee information flow security",
		},
		{
			Figure: 3,
			Name:   "known application, separated flows",
			Source: `
; Figure 3: tainted code uses tainted ports into its own partition,
; untainted code uses untainted ports into the untainted partition.
.equ P1IN, 0x0020
.equ P2OUT, 0x0026
.equ P3IN, 0x0028
.equ P4OUT, 0x002e
start:  jmp t_start
t_done: mov #25, r10         ; for i in 0..24: d[i] = P3 + d[i]
        mov #0x0200, r4      ; d[] in the untainted partition
loop2:  mov &P3IN, r5
        add @r4, r5
        mov r5, 0(r4)
        mov r5, &P4OUT
        incd r4
        dec r10
        jnz loop2
        jmp start
t_start:                     ; ---- tainted task ----
        mov #25, r10         ; for i in 0..24: c[i+3] = P1 + c[i]
        mov #0x0400, r4      ; c[] in the tainted partition
loop1:  mov &P1IN, r5
        add @r4, r5
        mov r5, 6(r4)        ; c[i+3]
        mov r5, &P2OUT
        incd r4
        dec r10
        jnz loop1
        clr r4               ; register hygiene before yielding
        clr r5
        mov #0, sr
        jmp t_done
t_end:  nop
`,
			Policy: policy43(),
			Secure: true,
			Expect: "no insecure information flows are possible: the system is secure on a commodity processor " +
				"with no hardware or software changes",
		},
		{
			Figure: 4,
			Name:   "tainted offset store",
			Source: `
; Figure 4: the base pointer (offset) is read from the tainted port and
; used to address a store — tainted data can reach the untainted memory.
.equ P1IN, 0x0020
.equ P2OUT, 0x0026
start:  jmp t_start
t_done: jmp start
t_start:                     ; ---- tainted task ----
        mov &P1IN, r6        ; offset = <P1>
        mov #25, r10
        mov #0x0400, r4
loop:   mov &P1IN, r5        ; a = <P1>
        add @r4, r5
        mov r4, r7           ; &c[i + offset]
        add r6, r7
        add r6, r7
        add #6, r7
        mov r5, 0(r7)
        mov r5, &P2OUT
        incd r4
        dec r10
        jnz loop
        clr r4
        clr r5
        clr r6
        clr r7
        mov #0, sr
        jmp t_done
t_end:  nop
`,
			Policy: policy43(),
			Secure: false,
			Expect: "the tainted write offset lets tainted data reach untainted memory: the application is " +
				"vulnerable to an insecure information flow",
		},
		{
			Figure: 5,
			Name:   "masked offset store",
			Source: `
; Figure 5: Offset = mask(offset) pins the computed addresses inside the
; tainted partition, eliminating the violation in software.
.equ P1IN, 0x0020
.equ P2OUT, 0x0026
start:  jmp t_start
t_done: jmp start
t_start:                     ; ---- tainted task ----
        mov &P1IN, r6        ; offset = <P1>
        mov #25, r10
        mov #0x0400, r4
loop:   mov &P1IN, r5
        add @r4, r5
        mov r4, r7
        add r6, r7
        add r6, r7
        add #6, r7
        and #0x03ff, r7      ; Offset = mask(offset)
        bis #0x0400, r7
        mov r5, 0(r7)
        mov r5, &P2OUT
        incd r4
        dec r10
        jnz loop
        clr r4
        clr r5
        clr r6
        clr r7
        mov #0, sr
        jmp t_done
t_end:  nop
`,
			Policy: policy43(),
			Secure: true,
			Expect: "masking the tainted address renders the system immune to insecure information flows: " +
				"security restored purely in software",
		},
	}
}

// Result is the analyzed outcome of a scenario.
type Result struct {
	Scenario *Scenario
	Report   *glift.Report // nil for the unknown-application scenario
	Star     *glift.StarReport
	Secure   bool
}

// Run analyzes one scenario.
func Run(s *Scenario, opt *glift.Options) (*Result, error) {
	if s.Unknown {
		// Figure 2: with no application knowledge, analyze a program whose
		// control flow immediately depends on unknown tainted input — the
		// application-agnostic *-logic view degrades to "everything may be
		// tainted".
		img, err := asm.AssembleSource(`
.equ P1IN, 0x0020
start:  mov &P1IN, r5
        and #3, r5
loop:   dec r5
        jnz loop
        jmp start
`)
		if err != nil {
			return nil, err
		}
		star, err := glift.StarLogic(img, &glift.Policy{Name: "integrity", TaintedInPorts: []int{0}}, 64)
		if err != nil {
			return nil, err
		}
		return &Result{Scenario: s, Star: star, Secure: false}, nil
	}
	img, err := asm.AssembleSource(s.Source)
	if err != nil {
		return nil, fmt.Errorf("figure %d: %w", s.Figure, err)
	}
	pol := *s.Policy
	if lo, ok := img.Symbol("t_start"); ok {
		hi := img.MustSymbol("t_end")
		pol.TaintedCode = []glift.AddrRange{{Lo: lo, Hi: hi}}
	}
	rep, err := glift.Analyze(img, &pol, opt)
	if err != nil {
		return nil, err
	}
	return &Result{Scenario: s, Report: rep, Secure: rep.Secure()}, nil
}

// RunAll analyzes every scenario.
func RunAll(opt *glift.Options) ([]*Result, error) {
	var out []*Result
	for _, s := range Scenarios() {
		r, err := Run(s, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
