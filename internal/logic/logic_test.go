package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sig(v V, t bool) Sig { return Sig{V: v, T: t} }

func TestVString(t *testing.T) {
	if Zero.String() != "0" || One.String() != "1" || X.String() != "X" {
		t.Fatalf("bad V strings: %s %s %s", Zero, One, X)
	}
	if got := sig(One, true).String(); got != "1*" {
		t.Fatalf("tainted sig string = %q", got)
	}
}

func TestFromBool(t *testing.T) {
	if FromBool(true) != One || FromBool(false) != Zero {
		t.Fatal("FromBool broken")
	}
}

func TestKnown(t *testing.T) {
	if !Zero.Known() || !One.Known() || X.Known() {
		t.Fatal("Known broken")
	}
}

func TestMergeV(t *testing.T) {
	cases := []struct{ a, b, want V }{
		{Zero, Zero, Zero}, {One, One, One}, {X, X, X},
		{Zero, One, X}, {One, Zero, X}, {Zero, X, X}, {X, One, X},
	}
	for _, c := range cases {
		if got := MergeV(c.a, c.b); got != c.want {
			t.Errorf("MergeV(%s,%s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestMergeSubstateLaws(t *testing.T) {
	all := []Sig{Zero0, One0, X0, Zero1, One1, XT}
	for _, a := range all {
		if !Substate(a, a) {
			t.Errorf("Substate(%s,%s) should be reflexive", a, a)
		}
		for _, b := range all {
			m := Merge(a, b)
			if !Substate(a, m) || !Substate(b, m) {
				t.Errorf("Merge(%s,%s)=%s is not an upper bound", a, b, m)
			}
			if Merge(a, b) != Merge(b, a) {
				t.Errorf("Merge not commutative for %s,%s", a, b)
			}
		}
	}
	// X covers everything of equal-or-lower taint.
	if !Substate(Zero0, XT) || !Substate(One1, XT) {
		t.Error("XT should cover all signals")
	}
	if Substate(Zero1, X0) {
		t.Error("untainted X must not cover tainted 0")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	for _, s := range []Sig{Zero0, One0, X0, Zero1, One1, XT} {
		if got := Unpack(Pack(s)); got != s {
			t.Errorf("round trip %s -> %v", s, got)
		}
	}
}

// TestFigure1NANDTable checks the exact 16 rows shown in Figure 1 of the
// paper.
func TestFigure1NANDTable(t *testing.T) {
	want := [][6]uint8{
		{0, 0, 0, 0, 1, 0},
		{0, 0, 0, 1, 1, 0},
		{0, 0, 1, 0, 1, 0},
		{0, 0, 1, 1, 1, 0},
		{0, 1, 0, 0, 1, 0},
		{0, 1, 0, 1, 1, 1},
		{0, 1, 1, 0, 1, 1},
		{0, 1, 1, 1, 1, 1},
		{1, 0, 0, 0, 1, 0},
		{1, 0, 0, 1, 1, 1},
		{1, 0, 1, 0, 0, 0},
		{1, 0, 1, 1, 0, 1},
		{1, 1, 0, 0, 1, 0},
		{1, 1, 0, 1, 1, 1},
		{1, 1, 1, 0, 0, 1},
		{1, 1, 1, 1, 0, 1},
	}
	rows := NANDTruthTable()
	if len(rows) != 16 {
		t.Fatalf("want 16 rows, got %d", len(rows))
	}
	for i, r := range rows {
		got := [6]uint8{r.A, r.AT, r.B, r.BT, r.O, r.OT}
		if got != want[i] {
			t.Errorf("row %d: got %v, want %v", i, got, want[i])
		}
	}
}

func TestEvalConcreteGates(t *testing.T) {
	b := func(x bool) Sig { return Sig{V: FromBool(x)} }
	for _, op := range []Op{And, Or, Nand, Nor, Xor, Xnor} {
		for _, a := range []bool{false, true} {
			for _, c := range []bool{false, true} {
				got := Eval(op, b(a), b(c))
				want := boolEval(op, []bool{a, c})
				if got.V != FromBool(want) || got.T {
					t.Errorf("%s(%v,%v) = %s", op, a, c, got)
				}
			}
		}
	}
	if Eval(Not, b(true)).V != Zero || Eval(Buf, b(true)).V != One {
		t.Error("not/buf broken")
	}
	if Eval(Const0).V != Zero || Eval(Const1).V != One {
		t.Error("const broken")
	}
}

func TestEvalXPropagation(t *testing.T) {
	// AND with a controlling 0 hides X.
	if got := Eval(And, Zero0, X0); got != Zero0 {
		t.Errorf("and(0,X) = %s, want 0", got)
	}
	if got := Eval(Or, One0, X0); got != One0 {
		t.Errorf("or(1,X) = %s, want 1", got)
	}
	if got := Eval(And, One0, X0); got != X0 {
		t.Errorf("and(1,X) = %s, want X", got)
	}
	if got := Eval(Xor, X0, X0); got != X0 {
		t.Errorf("xor(X,X) = %s, want X", got)
	}
	if got := Eval(Not, X0); got != X0 {
		t.Errorf("not(X) = %s, want X", got)
	}
}

func TestEvalTaintMasking(t *testing.T) {
	// A controlling untainted input masks taint: and(0, 1*) = 0 untainted.
	if got := Eval(And, Zero0, One1); got != Zero0 {
		t.Errorf("and(0,1*) = %s, want 0 untainted", got)
	}
	// A non-controlling untainted input lets taint through.
	if got := Eval(And, One0, One1); got != One1 {
		t.Errorf("and(1,1*) = %s, want 1*", got)
	}
	// XOR always propagates taint.
	if got := Eval(Xor, Zero0, Zero1); !got.T {
		t.Errorf("xor(0,0*) = %s, want tainted", got)
	}
	// An untainted X paired with a tainted input is conservatively tainted
	// (some resolution of the X lets the taint through).
	if got := Eval(And, X0, One1); got.V != X || !got.T {
		t.Errorf("and(X,1*) = %s, want X*", got)
	}
	// But a concrete untainted controlling input always masks, even when the
	// tainted input is X.
	if got := Eval(And, Zero0, XT); got != Zero0 {
		t.Errorf("and(0,X*) = %s, want 0", got)
	}
}

func TestEvalMuxSemantics(t *testing.T) {
	// Concrete select chooses an input; taint follows the chosen input.
	if got := Eval(Mux, Zero0, One1, Zero0); got != One1 {
		t.Errorf("mux(0, 1*, 0) = %s, want 1*", got)
	}
	if got := Eval(Mux, One0, One1, Zero0); got != Zero0 {
		t.Errorf("mux(1, 1*, 0) = %s, want 0", got)
	}
	// Tainted select with differing data taints the output.
	if got := Eval(Mux, Zero1, Zero0, One0); got.V != Zero || !got.T {
		t.Errorf("mux(0*, 0, 1) = %s, want 0*", got)
	}
	// Tainted select with identical untainted data leaks nothing.
	if got := Eval(Mux, Zero1, One0, One0); got != One0 {
		t.Errorf("mux(0*, 1, 1) = %s, want 1", got)
	}
	// X select merges data values.
	if got := Eval(Mux, X0, Zero0, One0); got.V != X {
		t.Errorf("mux(X, 0, 1) = %s, want X", got)
	}
}

// The tainted-reset behaviour of Figure 7 expressed as a mux: a DFF's next
// state is mux(rst, nextval, rstval). A tainted asserted reset forces the
// value but cannot clear the taint.
func TestFigure7TaintedResetMux(t *testing.T) {
	d := Sig{V: X, T: true} // tainted unknown next value
	rstval := Zero0
	// Untainted asserted reset: fully cleans the state.
	if got := Eval(Mux, One0, d, rstval); got != Zero0 {
		t.Errorf("untainted reset: got %s, want 0", got)
	}
	// Tainted asserted reset: value forced to 0 but taint retained.
	if got := Eval(Mux, One1, d, rstval); got.V != Zero || !got.T {
		t.Errorf("tainted reset: got %s, want 0*", got)
	}
}

func TestLUTsMatchEval(t *testing.T) {
	valid := []Sig{Zero0, One0, X0, Zero1, One1, XT}
	for _, op := range []Op{Buf, Not} {
		for _, a := range valid {
			if got, want := Unpack(Eval1(op, Pack(a))), Eval(op, a); got != want {
				t.Errorf("lut1 %s(%s) = %s, want %s", op, a, got, want)
			}
		}
	}
	for _, op := range []Op{And, Or, Nand, Nor, Xor, Xnor} {
		for _, a := range valid {
			for _, b := range valid {
				if got, want := Unpack(Eval2(op, Pack(a), Pack(b))), Eval(op, a, b); got != want {
					t.Errorf("lut2 %s(%s,%s) = %s, want %s", op, a, b, got, want)
				}
			}
		}
	}
	for _, s := range valid {
		for _, a := range valid {
			for _, b := range valid {
				if got, want := Unpack(EvalMux(Pack(s), Pack(a), Pack(b))), Eval(Mux, s, a, b); got != want {
					t.Errorf("lut3 mux(%s,%s,%s) = %s, want %s", s, a, b, got, want)
				}
			}
		}
	}
}

// Property: taint never appears from untainted inputs.
func TestPropertyNoSpontaneousTaint(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	f := func() bool {
		op := Op(2 + rnd.Intn(int(numOps)-2))
		in := make([]Sig, op.Arity())
		for i := range in {
			in[i] = Sig{V: V(rnd.Intn(3))}
		}
		return !Eval(op, in...).T
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: soundness of value evaluation — if all inputs are concretized in
// any way compatible with the ternary inputs, the concrete output is
// compatible with the ternary output.
func TestPropertyValueSoundness(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	f := func() bool {
		op := Op(2 + rnd.Intn(int(numOps)-2))
		in := make([]Sig, op.Arity())
		for i := range in {
			in[i] = Sig{V: V(rnd.Intn(3))}
		}
		out := Eval(op, in...)
		// Try every concretization.
		n := op.Arity()
		conc := make([]bool, n)
		var walk func(i int) bool
		walk = func(i int) bool {
			if i == n {
				got := boolEval(op, conc)
				return out.V == X || out.V == FromBool(got)
			}
			switch in[i].V {
			case Zero:
				conc[i] = false
				return walk(i + 1)
			case One:
				conc[i] = true
				return walk(i + 1)
			default:
				conc[i] = false
				if !walk(i + 1) {
					return false
				}
				conc[i] = true
				return walk(i + 1)
			}
		}
		return walk(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: taint soundness — flipping the value of any tainted input never
// changes the (concrete) output of a gate whose output is untainted.
func TestPropertyTaintSoundness(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	f := func() bool {
		op := Op(2 + rnd.Intn(int(numOps)-2))
		n := op.Arity()
		in := make([]Sig, n)
		for i := range in {
			in[i] = Sig{V: V(rnd.Intn(2)), T: rnd.Intn(2) == 0} // concrete values
		}
		out := Eval(op, in...)
		if out.T {
			return true // nothing to check
		}
		// Untainted output: every assignment of tainted inputs must produce
		// the same output value.
		conc := make([]bool, n)
		first := true
		var ref bool
		ok := true
		var walk func(i int)
		walk = func(i int) {
			if i == n {
				got := boolEval(op, conc)
				if first {
					ref, first = got, false
				} else if got != ref {
					ok = false
				}
				return
			}
			if in[i].T {
				conc[i] = false
				walk(i + 1)
				conc[i] = true
				walk(i + 1)
				return
			}
			conc[i] = in[i].V == One
			walk(i + 1)
		}
		walk(0)
		return ok && FromBool(ref) == out.V
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestEvalArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong arity")
		}
	}()
	Eval(And, One0)
}

func BenchmarkEval2LUT(b *testing.B) {
	x := Pack(One1)
	y := Pack(X0)
	for i := 0; i < b.N; i++ {
		x = Eval2(And, x&7, y)
	}
	_ = x
}
