// Package logic implements the ternary (0/1/X) logic values and the
// gate-level information flow tracking (GLIFT) propagation rules that the
// rest of the system is built on.
//
// Every signal in a tracked design carries a pair (V, T): a ternary logic
// value V and a taint bit T. Values follow standard Kleene ternary
// semantics. Taint follows the GLIFT rule of Tiwari et al. (exemplified for
// a NAND gate in Figure 1 of the paper): the output of a gate is tainted
// exactly when some tainted input is able to affect the output value, given
// the values of the remaining inputs. Unknown (X) untainted inputs are
// handled conservatively: if any resolution of the unknown inputs would let
// a tainted input affect the output, the output is tainted.
package logic

import "fmt"

// V is a ternary logic value.
type V uint8

const (
	// Zero is logic 0.
	Zero V = 0
	// One is logic 1.
	One V = 1
	// X is the unknown value used by input-independent (symbolic)
	// simulation.
	X V = 2
)

// String returns "0", "1" or "X".
func (v V) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "X"
	}
	return fmt.Sprintf("V(%d)", uint8(v))
}

// FromBool converts a Go bool to a concrete ternary value.
func FromBool(b bool) V {
	if b {
		return One
	}
	return Zero
}

// Known reports whether v is a concrete 0 or 1.
func (v V) Known() bool { return v == Zero || v == One }

// MergeV returns the least upper bound of two ternary values: the value
// itself when both agree, X otherwise. It is used when joining execution
// states conservatively.
func MergeV(a, b V) V {
	if a == b {
		return a
	}
	return X
}

// Sig is a GLIFT-tracked signal: a ternary value plus a taint bit.
type Sig struct {
	V V
	T bool
}

// Common signal constants.
var (
	Zero0 = Sig{V: Zero}          // untainted 0
	One0  = Sig{V: One}           // untainted 1
	X0    = Sig{V: X}             // untainted unknown
	XT    = Sig{V: X, T: true}    // tainted unknown
	Zero1 = Sig{V: Zero, T: true} // tainted 0
	One1  = Sig{V: One, T: true}  // tainted 1
)

// S builds a signal from a ternary value and a taint flag.
func S(v V, t bool) Sig { return Sig{V: v, T: t} }

// String renders the signal as e.g. "1", "0*", "X*" (a trailing star marks
// taint).
func (s Sig) String() string {
	if s.T {
		return s.V.String() + "*"
	}
	return s.V.String()
}

// Merge returns the conservative join of two signals: values merge to X when
// they disagree and taint is the union. Used for conservative superstates.
func Merge(a, b Sig) Sig {
	return Sig{V: MergeV(a.V, b.V), T: a.T || b.T}
}

// Substate reports whether signal a is covered by the (potentially more
// conservative) signal b: b either agrees with a or is X, and b is at least
// as tainted as a.
func Substate(a, b Sig) bool {
	if a.T && !b.T {
		return false
	}
	return b.V == X || a.V == b.V
}

// Packed is the byte encoding of a Sig used by the simulator's dense net
// arrays: bits 1:0 hold V, bit 2 holds T. Only 6 of the 8 values are valid.
type Packed = uint8

// NumPacked is the size of lookup tables indexed by a Packed signal.
const NumPacked = 8

// Pack encodes a Sig into its dense byte representation.
func Pack(s Sig) Packed {
	p := Packed(s.V)
	if s.T {
		p |= 4
	}
	return p
}

// Unpack decodes a Packed signal.
func Unpack(p Packed) Sig {
	return Sig{V: V(p & 3), T: p&4 != 0}
}

// Op identifies a combinational gate function.
type Op uint8

// Gate operations. Const0/Const1 take no inputs; Buf and Not take one;
// And..Xnor take two; Mux takes three (select, in0, in1).
const (
	Const0 Op = iota
	Const1
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	Mux
	numOps
)

var opNames = [...]string{"const0", "const1", "buf", "not", "and", "or", "nand", "nor", "xor", "xnor", "mux"}

// String returns the lower-case mnemonic of the op.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Arity returns the number of inputs the op consumes.
func (o Op) Arity() int {
	switch o {
	case Const0, Const1:
		return 0
	case Buf, Not:
		return 1
	case Mux:
		return 3
	default:
		return 2
	}
}

// boolEval evaluates the op over concrete boolean inputs. For Mux, in[0] is
// the select, in[1] the value when select=0, in[2] the value when select=1.
func boolEval(o Op, in []bool) bool {
	switch o {
	case Const0:
		return false
	case Const1:
		return true
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And:
		return in[0] && in[1]
	case Or:
		return in[0] || in[1]
	case Nand:
		return !(in[0] && in[1])
	case Nor:
		return !(in[0] || in[1])
	case Xor:
		return in[0] != in[1]
	case Xnor:
		return in[0] == in[1]
	case Mux:
		if in[0] {
			return in[2]
		}
		return in[1]
	}
	panic("logic: bad op")
}

// evalGeneric computes the GLIFT-tracked output of op over the given inputs
// by brute-force case analysis (inputs are at most 3, so at most 8 cases).
//
// Output value: the set of outputs reachable when every X-valued input
// ranges over {0,1} and every concrete input is fixed; a singleton set gives
// a concrete output, otherwise X.
//
// Output taint: tainted iff there is an assignment of the untainted inputs
// (consistent with their values: concrete fixed, X free) under which the
// output still depends on the tainted inputs (which range over {0,1}
// regardless of their current value, since a tainted value is
// attacker-influenced).
func evalGeneric(o Op, in []Sig) Sig {
	n := o.Arity()
	if n == 0 {
		if o == Const1 {
			return One0
		}
		return Zero0
	}

	// Value: enumerate resolutions of X inputs at their observed values.
	var vals [3]bool
	seen0, seen1 := false, false
	var walkVal func(i int)
	walkVal = func(i int) {
		if i == n {
			if boolEval(o, vals[:n]) {
				seen1 = true
			} else {
				seen0 = true
			}
			return
		}
		switch in[i].V {
		case Zero:
			vals[i] = false
			walkVal(i + 1)
		case One:
			vals[i] = true
			walkVal(i + 1)
		default: // X: both
			vals[i] = false
			walkVal(i + 1)
			vals[i] = true
			walkVal(i + 1)
		}
	}
	walkVal(0)
	var outV V
	switch {
	case seen0 && seen1:
		outV = X
	case seen1:
		outV = One
	default:
		outV = Zero
	}

	// Taint: any tainted input at all?
	anyTaint := false
	for i := 0; i < n; i++ {
		if in[i].T {
			anyTaint = true
			break
		}
	}
	if !anyTaint {
		return Sig{V: outV}
	}
	// For each assignment of untainted inputs consistent with their values,
	// check whether varying the tainted inputs changes the output.
	tainted := false
	var walkU func(i int)
	checkDep := func() {
		s0, s1 := false, false
		var walkT func(i int)
		walkT = func(i int) {
			if i == n {
				if boolEval(o, vals[:n]) {
					s1 = true
				} else {
					s0 = true
				}
				return
			}
			if !in[i].T {
				walkT(i + 1) // already fixed by walkU
				return
			}
			vals[i] = false
			walkT(i + 1)
			vals[i] = true
			walkT(i + 1)
		}
		walkT(0)
		if s0 && s1 {
			tainted = true
		}
	}
	walkU = func(i int) {
		if tainted {
			return
		}
		if i == n {
			checkDep()
			return
		}
		if in[i].T {
			walkU(i + 1) // assigned in the inner walk
			return
		}
		switch in[i].V {
		case Zero:
			vals[i] = false
			walkU(i + 1)
		case One:
			vals[i] = true
			walkU(i + 1)
		default:
			vals[i] = false
			walkU(i + 1)
			vals[i] = true
			walkU(i + 1)
		}
	}
	walkU(0)
	return Sig{V: outV, T: tainted}
}

// Eval computes the GLIFT-tracked output of op applied to the given inputs.
// It panics if the number of inputs does not match the op's arity.
func Eval(o Op, in ...Sig) Sig {
	if len(in) != o.Arity() {
		panic(fmt.Sprintf("logic: %s expects %d inputs, got %d", o, o.Arity(), len(in)))
	}
	return evalGeneric(o, in)
}

// Dense lookup tables used by the simulator inner loop. Indexed by packed
// signals; invalid packed encodings map to themselves harmlessly (the
// simulator never produces them).
var (
	lut1 [numOps][NumPacked]Packed
	lut2 [numOps][NumPacked * NumPacked]Packed
	lut3 [NumPacked * NumPacked * NumPacked]Packed // Mux only
)

func init() {
	// Enumerate the 6 valid packed encodings directly.
	valid := []Packed{0, 1, 2, 4, 5, 6}
	for _, o := range []Op{Buf, Not} {
		for _, a := range valid {
			lut1[o][a] = Pack(evalGeneric(o, []Sig{Unpack(a)}))
		}
	}
	for _, o := range []Op{And, Or, Nand, Nor, Xor, Xnor} {
		for _, a := range valid {
			for _, b := range valid {
				lut2[o][int(a)*NumPacked+int(b)] = Pack(evalGeneric(o, []Sig{Unpack(a), Unpack(b)}))
			}
		}
	}
	for _, s := range valid {
		for _, a := range valid {
			for _, b := range valid {
				idx := (int(s)*NumPacked+int(a))*NumPacked + int(b)
				lut3[idx] = Pack(evalGeneric(Mux, []Sig{Unpack(s), Unpack(a), Unpack(b)}))
			}
		}
	}
}

// Eval1 evaluates a 1-input op on packed signals via lookup table.
func Eval1(o Op, a Packed) Packed { return lut1[o][a] }

// Eval2 evaluates a 2-input op on packed signals via lookup table.
func Eval2(o Op, a, b Packed) Packed { return lut2[o][int(a)*NumPacked+int(b)] }

// EvalMux evaluates a mux (sel, in0, in1) on packed signals via lookup table.
func EvalMux(sel, a, b Packed) Packed {
	return lut3[(int(sel)*NumPacked+int(a))*NumPacked+int(b)]
}

// LUT1 returns the dense lookup row of a 1-input op: NumPacked entries
// indexed by the packed input. The slice aliases the live table and must be
// treated as read-only. Compiled evaluation backends concatenate these rows
// into one flat table addressed by per-instruction offsets.
func LUT1(o Op) []Packed {
	if o.Arity() != 1 {
		panic(fmt.Sprintf("logic: LUT1(%s): not a 1-input op", o))
	}
	return lut1[o][:]
}

// LUT2 returns the dense lookup row of a 2-input op: NumPacked*NumPacked
// entries indexed by a*NumPacked+b. Read-only, like LUT1.
func LUT2(o Op) []Packed {
	if o.Arity() != 2 {
		panic(fmt.Sprintf("logic: LUT2(%s): not a 2-input op", o))
	}
	return lut2[o][:]
}

// LUTMux returns the dense mux lookup table: NumPacked^3 entries indexed by
// (sel*NumPacked+a)*NumPacked+b. Read-only, like LUT1.
func LUTMux() []Packed {
	return lut3[:]
}

// NANDRow is one row of the Figure 1 GLIFT truth table for a NAND gate.
type NANDRow struct {
	A, AT, B, BT, O, OT uint8
}

// NANDTruthTable regenerates the 16-row gate-level information flow tracking
// truth table for a NAND gate shown in Figure 1 of the paper.
func NANDTruthTable() []NANDRow {
	rows := make([]NANDRow, 0, 16)
	for a := uint8(0); a < 2; a++ {
		for at := uint8(0); at < 2; at++ {
			for b := uint8(0); b < 2; b++ {
				for bt := uint8(0); bt < 2; bt++ {
					out := Eval(Nand, Sig{V: V(a), T: at == 1}, Sig{V: V(b), T: bt == 1})
					o := uint8(0)
					if out.V == One {
						o = 1
					}
					ot := uint8(0)
					if out.T {
						ot = 1
					}
					rows = append(rows, NANDRow{A: a, AT: at, B: b, BT: bt, O: o, OT: ot})
				}
			}
		}
	}
	return rows
}
