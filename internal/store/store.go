// Package store implements a crash-safe, content-addressed on-disk result
// store: immutable records keyed by the service's canonical job key, written
// with write-temp + fsync + atomic-rename so a record is either durably
// complete or absent, and verified by SHA-256 on every read so a torn,
// truncated or bit-rotted entry is quarantined and reported as a miss —
// never served. The fail-closed verdict contract extends to storage: the
// only two answers the store ever gives are "here is the exact payload that
// was fsynced" and "no entry".
//
// Layout under the store directory:
//
//	objects/<key>      one record per result (see record layout below)
//	tmp/               in-progress writes; anything here after a crash is
//	                   garbage by construction and removed at Open
//	quarantine/        records that failed validation, moved aside with a
//	                   timestamp suffix for post-mortem inspection
//
// Record layout: a fixed magic string, the SHA-256 of the payload, the
// payload length as 8 little-endian bytes, then the payload — a JSON
// envelope {"key": ..., "report": ...} binding the record to its key so a
// renamed or cross-copied file cannot answer for a different job.
//
// Durability contract: once Put returns nil the record survives kill -9 and
// power loss (file fsynced before the rename, directory fsynced after).
// A crash at any other point leaves either the old state or a tmp/ orphan;
// neither is ever visible to Get. Open re-validates every surviving record,
// so recovery after an unclean shutdown indexes exactly the set of records
// whose Put completed.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

var magic = []byte("glift-store-1\n")

// headerSize is the fixed prefix before the payload: magic, SHA-256,
// 8-byte length.
const headerSize = len("glift-store-1\n") + sha256.Size + 8

// ErrFull reports a Put whose record cannot fit the configured byte cap
// even after evicting every other entry. The caller keeps its in-memory
// copy; the result is simply not durable.
var ErrFull = errors.New("store: record exceeds capacity")

// Options tunes a Store.
type Options struct {
	// MaxBytes caps the total size of objects/ (0: unbounded). When a Put
	// would exceed the cap, the oldest records are evicted first; a record
	// larger than the whole cap fails with ErrFull.
	MaxBytes int64
	// WriteDelay is a chaos-test hook: it is inserted mid-payload during
	// Put, before the fsync and rename, widening the window in which a
	// kill -9 lands on an in-progress write. Production use leaves it 0.
	WriteDelay time.Duration
}

// Stats counts store activity since Open. Snapshot via Store.Stats.
type Stats struct {
	// Recovered is the number of valid records indexed at Open.
	Recovered int64
	// TmpCleaned is the number of abandoned in-progress writes removed at
	// Open (each one is a crash that the atomic-rename protocol absorbed).
	TmpCleaned int64
	// Quarantined counts records that failed validation (at Open or on a
	// later Get) and were moved to quarantine/ instead of being served.
	Quarantined int64
	Puts        int64
	PutErrors   int64
	Evictions   int64
	Hits        int64
	Misses      int64
}

type entry struct {
	size int64
}

// Store is the on-disk result store. All methods are safe for concurrent
// use; disk operations are serialized, which is acceptable because records
// are small (one analysis report) and Get is only on the miss path of the
// in-memory cache layered above.
type Store struct {
	dir  string
	opts Options

	mu    sync.Mutex
	index map[string]entry
	order []string // eviction order: recovery mtime order, then Put order
	bytes int64
	stats Stats
}

// Open creates the store layout under dir if needed, removes abandoned
// in-progress writes, validates and indexes every surviving record
// (quarantining any that fail), and enforces the byte cap.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{dir: dir, opts: opts, index: make(map[string]entry)}
	for _, sub := range []string{s.objectsDir(), s.tmpDir(), s.quarantineDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) objectsDir() string    { return filepath.Join(s.dir, "objects") }
func (s *Store) tmpDir() string        { return filepath.Join(s.dir, "tmp") }
func (s *Store) quarantineDir() string { return filepath.Join(s.dir, "quarantine") }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// recover scans objects/, validating every record: valid ones are indexed
// in modification-time order (so eviction age survives restarts), invalid
// ones are quarantined. tmp/ is cleared — an in-progress write that never
// reached its rename is garbage by construction.
func (s *Store) recover() error {
	tmps, err := os.ReadDir(s.tmpDir())
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range tmps {
		if err := os.Remove(filepath.Join(s.tmpDir(), e.Name())); err == nil {
			s.stats.TmpCleaned++
		}
	}

	ents, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	type candidate struct {
		key   string
		size  int64
		mtime time.Time
	}
	var cands []candidate
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with a concurrent delete; nothing to index
		}
		cands = append(cands, candidate{key: e.Name(), size: info.Size(), mtime: info.ModTime()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mtime.Before(cands[j].mtime) })

	for _, c := range cands {
		if !validKey(c.key) {
			s.quarantineLocked(c.key)
			continue
		}
		if _, err := s.readRecord(c.key); err != nil {
			s.quarantineLocked(c.key)
			continue
		}
		s.index[c.key] = entry{size: c.size}
		s.order = append(s.order, c.key)
		s.bytes += c.size
		s.stats.Recovered++
	}
	// A cap smaller than the surviving set (the operator shrank it, or the
	// process crashed mid-eviction) is enforced now rather than lazily.
	s.evictForLocked(0)
	return nil
}

// validKey admits only keys that are safe flat filenames: the service's
// hex-encoded SHA-256 job keys pass, path separators and dot-files do not.
func validKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// envelope binds a stored payload to its key.
type envelope struct {
	Key    string          `json:"key"`
	Report json.RawMessage `json:"report"`
}

// Get returns the validated report payload for key, or reports a miss.
// A record that fails any integrity check — bad magic, wrong length,
// checksum mismatch, malformed envelope, or an envelope bound to a
// different key — is quarantined and reported as a miss, never served.
func (s *Store) Get(key string) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; !ok {
		s.stats.Misses++
		return nil, false
	}
	report, err := s.readRecord(key)
	if err != nil {
		s.dropLocked(key)
		s.quarantineLocked(key)
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	return report, true
}

// readRecord reads and fully validates one record, returning its report
// payload.
func (s *Store) readRecord(key string) (json.RawMessage, error) {
	data, err := os.ReadFile(filepath.Join(s.objectsDir(), key))
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("store: %s: truncated header (%d bytes)", key, len(data))
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return nil, fmt.Errorf("store: %s: bad magic", key)
	}
	var sum [sha256.Size]byte
	copy(sum[:], data[len(magic):len(magic)+sha256.Size])
	n := binary.LittleEndian.Uint64(data[len(magic)+sha256.Size : headerSize])
	payload := data[headerSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("store: %s: truncated payload (%d of %d bytes)", key, len(payload), n)
	}
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("store: %s: checksum mismatch", key)
	}
	var env envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return nil, fmt.Errorf("store: %s: bad envelope: %v", key, err)
	}
	if env.Key != key {
		return nil, fmt.Errorf("store: %s: envelope bound to key %s", key, env.Key)
	}
	return env.Report, nil
}

// Put durably records the report payload under key: the record is written
// to tmp/, fsynced, atomically renamed into objects/, and the directory
// fsynced. When Put returns nil the record survives an immediate kill -9.
// Overwrites are allowed (records are content-addressed, so a rewrite
// carries identical bytes) and refresh the entry's eviction age.
func (s *Store) Put(key string, report []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	payload, err := json.Marshal(envelope{Key: key, Report: report})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	recordSize := int64(headerSize + len(payload))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.MaxBytes > 0 && recordSize > s.opts.MaxBytes {
		s.stats.PutErrors++
		return ErrFull
	}
	if old, ok := s.index[key]; ok {
		// Replace in place: retire the old accounting first so the eviction
		// loop below never counts the record twice.
		s.bytes -= old.size
		delete(s.index, key)
		s.removeOrderLocked(key)
	}
	s.evictForLocked(recordSize)

	if err := s.writeRecordLocked(key, payload); err != nil {
		s.stats.PutErrors++
		return err
	}
	s.index[key] = entry{size: recordSize}
	s.order = append(s.order, key)
	s.bytes += recordSize
	s.stats.Puts++
	return nil
}

// writeRecordLocked performs the write-temp + fsync + rename + dir-fsync
// protocol for one record.
func (s *Store) writeRecordLocked(key string, payload []byte) error {
	f, err := os.CreateTemp(s.tmpDir(), key+".*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmpName)
	}

	var sum = sha256.Sum256(payload)
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(payload)))
	half := len(payload) / 2
	for _, chunk := range [][]byte{magic, sum[:], lenBuf[:], payload[:half]} {
		if _, err := f.Write(chunk); err != nil {
			cleanup()
			return fmt.Errorf("store: %w", err)
		}
	}
	if s.opts.WriteDelay > 0 {
		// Chaos hook: hold the record half-written so kill -9 tests land
		// inside the window the protocol must make invisible.
		time.Sleep(s.opts.WriteDelay)
	}
	if _, err := f.Write(payload[half:]); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.objectsDir(), key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	syncDir(s.objectsDir())
	return nil
}

// syncDir fsyncs a directory so a completed rename is durable. Best-effort:
// on filesystems that reject directory fsync the rename is still atomic,
// only its durability lags to the next journal flush.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // see above
	d.Close()
}

// evictForLocked removes oldest records until need more bytes fit under the
// cap.
func (s *Store) evictForLocked(need int64) {
	if s.opts.MaxBytes <= 0 {
		return
	}
	for s.bytes+need > s.opts.MaxBytes && len(s.order) > 0 {
		oldest := s.order[0]
		s.order = s.order[1:]
		if e, ok := s.index[oldest]; ok {
			delete(s.index, oldest)
			s.bytes -= e.size
			os.Remove(filepath.Join(s.objectsDir(), oldest)) //nolint:errcheck // already unindexed
			s.stats.Evictions++
		}
	}
}

// dropLocked removes key from the index without touching the file.
func (s *Store) dropLocked(key string) {
	if e, ok := s.index[key]; ok {
		delete(s.index, key)
		s.bytes -= e.size
		s.removeOrderLocked(key)
	}
}

func (s *Store) removeOrderLocked(key string) {
	for i, k := range s.order {
		if k == key {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// quarantineLocked moves a failed record aside for post-mortem inspection;
// if the move itself fails the record is deleted, because a record that
// failed validation must never be picked up by a later recovery.
func (s *Store) quarantineLocked(key string) {
	src := filepath.Join(s.objectsDir(), key)
	dst := filepath.Join(s.quarantineDir(), fmt.Sprintf("%s.%d", key, time.Now().UnixNano()))
	if err := os.Rename(src, dst); err != nil {
		os.Remove(src) //nolint:errcheck // removal is the fallback, not a guarantee we can check
	}
	s.stats.Quarantined++
}

// Quarantine moves a record aside and drops it from the index. Callers use
// it when a record passes the store's byte-level checks but fails a
// higher-level validation (e.g. the service's report reconstruction) — the
// same never-serve-it-again contract as an internal checksum failure.
func (s *Store) Quarantine(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropLocked(key)
	s.quarantineLocked(key)
}

// Len returns the number of indexed records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes returns the total indexed record size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Keys returns the indexed keys in eviction order (oldest first).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Stats snapshots the activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
