package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func mustPut(t *testing.T, s *Store, key string, report []byte) {
	t.Helper()
	if err := s.Put(key, report); err != nil {
		t.Fatalf("Put(%s): %v", key[:8], err)
	}
}

func report(i int) []byte {
	return []byte(fmt.Sprintf(`{"policy":"p%d","verdict":"verified","stats":{"cycles":%d}}`, i, i))
}

// TestPutGetRoundTrip: stored payloads come back byte-identical.
func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	mustPut(t, s, k, report(1))
	got, ok := s.Get(k)
	if !ok || string(got) != string(report(1)) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, report(1))
	}
	if _, ok := s.Get(testKey(2)); ok {
		t.Error("missing key should miss")
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Overwrite refreshes, does not duplicate.
	mustPut(t, s, k, report(1))
	if s.Len() != 1 {
		t.Errorf("len after overwrite = %d", s.Len())
	}
}

// TestRecovery: a reopened store indexes exactly the fsynced records and
// removes abandoned in-progress writes.
func TestRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustPut(t, s, testKey(i), report(i))
	}
	// Simulate a crash mid-write: an orphaned temp file from a Put that
	// never reached its rename.
	if err := os.WriteFile(filepath.Join(dir, "tmp", "orphan.123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Recovered != 5 || st.Quarantined != 0 || st.TmpCleaned != 1 {
		t.Fatalf("recovery stats = %+v", st)
	}
	for i := 0; i < 5; i++ {
		got, ok := s2.Get(testKey(i))
		if !ok || string(got) != string(report(i)) {
			t.Errorf("recovered Get(%d) = %q, %v", i, got, ok)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "tmp", "orphan.123")); !os.IsNotExist(err) {
		t.Error("orphaned temp file should have been removed")
	}
}

// corruptions is the torn/rotted-record matrix: every mutation of a valid
// record on disk must be quarantined, never served.
var corruptions = []struct {
	name   string
	mutate func(data []byte) []byte
}{
	{"empty", func(data []byte) []byte { return nil }},
	{"truncated-header", func(data []byte) []byte { return data[:headerSize/2] }},
	{"truncated-payload", func(data []byte) []byte { return data[:len(data)-3] }},
	{"bit-flip-payload", func(data []byte) []byte {
		out := append([]byte(nil), data...)
		out[len(out)-1] ^= 0x40
		return out
	}},
	{"bit-flip-checksum", func(data []byte) []byte {
		out := append([]byte(nil), data...)
		out[len(magic)] ^= 0x01
		return out
	}},
	{"bad-magic", func(data []byte) []byte {
		out := append([]byte(nil), data...)
		out[0] = 'X'
		return out
	}},
	{"extra-trailing-bytes", func(data []byte) []byte { return append(append([]byte(nil), data...), "junk"...) }},
}

// TestCorruptRecordsQuarantinedOnGet: a record corrupted after indexing is
// detected by the per-read checksum and quarantined.
func TestCorruptRecordsQuarantinedOnGet(t *testing.T) {
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			k := testKey(0)
			mustPut(t, s, k, report(0))
			path := filepath.Join(dir, "objects", k)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, c.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(k); ok {
				t.Fatalf("corrupt record served: %q", got)
			}
			if st := s.Stats(); st.Quarantined != 1 {
				t.Errorf("quarantined = %d, want 1", st.Quarantined)
			}
			if s.Len() != 0 {
				t.Errorf("len = %d after quarantine", s.Len())
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt record should have been moved out of objects/")
			}
			// The quarantined copy is preserved for post-mortem inspection.
			q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
			if err != nil || len(q) != 1 {
				t.Errorf("quarantine dir entries = %d (%v)", len(q), err)
			}
			// A subsequent Get stays a miss; the miss is stable.
			if _, ok := s.Get(k); ok {
				t.Error("quarantined key served on second read")
			}
		})
	}
}

// TestCorruptRecordsQuarantinedOnOpen: recovery validates every surviving
// record, so a torn write (or bit rot) present at startup never enters the
// index.
func TestCorruptRecordsQuarantinedOnOpen(t *testing.T) {
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			good, bad := testKey(0), testKey(1)
			mustPut(t, s, good, report(0))
			mustPut(t, s, bad, report(1))
			path := filepath.Join(dir, "objects", bad)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, c.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			st := s2.Stats()
			if st.Recovered != 1 || st.Quarantined != 1 {
				t.Fatalf("recovery stats = %+v", st)
			}
			if _, ok := s2.Get(bad); ok {
				t.Error("corrupt record recovered into the index")
			}
			if got, ok := s2.Get(good); !ok || string(got) != string(report(0)) {
				t.Errorf("good record lost: %q, %v", got, ok)
			}
		})
	}
}

// TestEnvelopeKeyBinding: a record copied under another name (or a swapped
// pair) cannot answer for the wrong key.
func TestEnvelopeKeyBinding(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := testKey(0), testKey(1)
	mustPut(t, s, a, report(0))
	data, err := os.ReadFile(filepath.Join(dir, "objects", a))
	if err != nil {
		t.Fatal(err)
	}
	// The record is internally consistent (checksum valid) but bound to a.
	if err := os.WriteFile(filepath.Join(dir, "objects", b), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(b); ok {
		t.Error("record bound to key a served for key b")
	}
	if _, ok := s2.Get(a); !ok {
		t.Error("original record should survive")
	}
}

// TestEviction: the byte cap evicts oldest-first, and a record larger than
// the whole cap fails with ErrFull instead of evicting everything.
func TestEviction(t *testing.T) {
	dir := t.TempDir()
	probe, err := Open(filepath.Join(dir, "probe"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, probe, testKey(0), report(0))
	one := probe.Bytes() // size of one record at this payload shape

	s, err := Open(filepath.Join(dir, "capped"), Options{MaxBytes: 3*one + one/2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustPut(t, s, testKey(i), report(i))
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3 under cap", s.Len())
	}
	for i := 0; i < 2; i++ {
		if _, ok := s.Get(testKey(i)); ok {
			t.Errorf("oldest record %d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if got, ok := s.Get(testKey(i)); !ok || string(got) != string(report(i)) {
			t.Errorf("record %d missing after eviction: %v", i, ok)
		}
	}
	if st := s.Stats(); st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if s.Bytes() > 3*one+one/2 {
		t.Errorf("bytes = %d over cap", s.Bytes())
	}

	huge := make([]byte, 4*one)
	for i := range huge {
		huge[i] = 'x'
	}
	if err := s.Put(testKey(9), []byte(`{"pad":"`+string(huge)+`"}`)); err != ErrFull {
		t.Errorf("oversized Put = %v, want ErrFull", err)
	}
	if s.Len() != 3 {
		t.Errorf("oversized Put disturbed the index: len = %d", s.Len())
	}

	// A reopened store under a smaller cap evicts down at recovery.
	s2, err := Open(filepath.Join(dir, "capped"), Options{MaxBytes: one + one/2})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Errorf("reopen under smaller cap: len = %d, want 1", s2.Len())
	}
	if _, ok := s2.Get(testKey(4)); !ok {
		t.Error("newest record should survive the cap shrink")
	}
}

// TestInvalidKeys: keys that are not safe flat filenames are rejected on
// Put, and alien files in objects/ are quarantined at recovery.
func TestInvalidKeys(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "../escape", "a/b", ".hidden", "key with space"} {
		if err := s.Put(k, report(0)); err == nil {
			t.Errorf("Put(%q) should fail", k)
		}
	}
}

// TestConcurrentAccess: concurrent Put/Get across overlapping keys stays
// consistent (run with -race).
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				k := testKey(i % 4)
				if (i+g)%2 == 0 {
					if err := s.Put(k, report(i%4)); err != nil {
						t.Errorf("goroutine %d: Put: %v", g, err)
					}
				} else if got, ok := s.Get(k); ok && string(got) != string(report(i%4)) {
					t.Errorf("goroutine %d: stale or torn read: %q", g, got)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Errorf("len = %d, want 4", s.Len())
	}
}
