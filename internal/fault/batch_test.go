package fault

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/logic"
)

func errText(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// Batched concrete runs agree with sequential ones scenario-for-scenario:
// cycle counts and error text from RunBatch match a fault.Run call per
// scenario over the whole corpus — injected faults, multi-fault stacks,
// clean runs and validation failures alike.
func TestFaultBackendsAgreeBatched(t *testing.T) {
	ctx := context.Background()
	const maxCycles = 10_000

	maskedImg := mustImage(t, maskedSrc)
	secureImg := mustImage(t, secureSrc)
	bisExt := stmtExtAddr(t, maskedImg, "bis")

	progs := []struct {
		name      string
		img       *asm.Image
		scenarios [][]Fault
	}{
		{
			name: "masked",
			img:  maskedImg,
			scenarios: [][]Fault{
				nil, // clean: parks on jmp $
				{ROMCorrupt{Addr: bisExt, Xor: 0x0600}},
				{ROMCorrupt{Addr: maskedImg.Entry, MakeX: 0xffff}},
				{ROMCorrupt{Addr: bisExt, Taint: true}},
				{StuckFF{FF: "r14:10", Value: logic.Zero}},
				{StuckFF{FF: "r14:0", Value: logic.One}},
				{PortX{Port: 0}},
				{PortX{Port: 0, Taint: true}},
				{PortX{Port: 0, Taint: true}, ROMCorrupt{Addr: bisExt, Xor: 0x0600}},
				{StuckFF{FF: "r14:10", Value: logic.Zero}, StuckFF{FF: "r15:3", Value: logic.One}},
				// Validation failures must surface identically per lane.
				{StuckFF{FF: "r99:0", Value: logic.Zero}},
				{StuckFF{FF: "r14:10", Value: logic.X}},
				{PortX{Port: 9}},
				{ROMCorrupt{Addr: 0x0100}},
				{StuckFF{FF: "no_such_net", Value: logic.One}},
			},
		},
		{
			name: "secure",
			img:  secureImg,
			scenarios: [][]Fault{
				nil,
				{PortX{Port: 2}},
				{PortX{Port: 2, Taint: true}},
				{StuckFF{FF: "r5:0", Value: logic.One}},
			},
		},
	}

	for _, prog := range progs {
		prog := prog
		t.Run(prog.name, func(t *testing.T) {
			batch, err := RunBatch(ctx, prog.img, maxCycles, prog.scenarios)
			if err != nil {
				t.Fatalf("RunBatch: %v", err)
			}
			if len(batch) != len(prog.scenarios) {
				t.Fatalf("RunBatch returned %d results for %d scenarios", len(batch), len(prog.scenarios))
			}
			for i, faults := range prog.scenarios {
				name := "clean"
				if len(faults) > 0 {
					name = faults[0].Describe()
					for _, f := range faults[1:] {
						name += " + " + f.Describe()
					}
				}
				cycles, err := Run(ctx, prog.img, maxCycles, faults...)
				want := fmt.Sprintf("cycles=%d err=%s", cycles, errText(err))
				got := fmt.Sprintf("cycles=%d err=%s", batch[i].Cycles, errText(batch[i].Err))
				if got != want {
					t.Errorf("scenario %d (%s):\n  sequential: %s\n  batched:    %s", i, name, want, got)
				}
			}
		})
	}
}

// Chunking: more scenarios than lanes split transparently across batches.
func TestFaultBatchChunks(t *testing.T) {
	img := mustImage(t, maskedSrc)
	scenarios := make([][]Fault, 70)
	for i := range scenarios {
		if i%3 == 1 {
			scenarios[i] = []Fault{PortX{Port: 0}}
		}
		if i%3 == 2 {
			scenarios[i] = []Fault{ROMCorrupt{Addr: img.Entry, MakeX: 0xffff}}
		}
	}
	batch, err := RunBatch(context.Background(), img, 10_000, scenarios)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	cleanCycles, err := Run(context.Background(), img, 10_000)
	if err != nil {
		t.Fatalf("clean Run: %v", err)
	}
	for i, r := range batch {
		switch i % 3 {
		case 0:
			if r.Err != nil || r.Cycles != cleanCycles {
				t.Errorf("lane %d: clean run got cycles=%d err=%v, want cycles=%d", i, r.Cycles, r.Err, cleanCycles)
			}
		case 2:
			if r.Err == nil {
				t.Errorf("lane %d: X-word run completed as if healthy", i)
			}
		}
	}
}
