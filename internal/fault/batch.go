package fault

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/logic"
	"repro/internal/mcu"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// BatchResult is one scenario's outcome from RunBatch, comparable
// field-for-field with a scalar Run call on the same faults.
type BatchResult struct {
	Cycles uint64
	Err    error
}

// stuckLane is a StuckFF lowered for batched execution: instead of
// rewiring the netlist (which would change it for every lane), the lane's
// Q bit is pinned to the constant after every clock edge. Q is sourceless,
// so the pin persists through evaluation passes — observably identical to
// the scalar rewiring, which latches the constant on each edge.
type stuckLane struct {
	q   netlist.NetID
	sig logic.Sig
}

func lowerStuckFF(d *mcu.Design, f StuckFF) (stuckLane, error) {
	if f.Value != logic.Zero && f.Value != logic.One {
		return stuckLane{}, fmt.Errorf("fault: stuck value must be 0 or 1, got %s", f.Value)
	}
	q, err := f.qNet(d)
	if err != nil {
		return stuckLane{}, err
	}
	for i := range d.NL.DFFs {
		if d.NL.DFFs[i].Q == q {
			return stuckLane{q: q, sig: logic.S(f.Value, false)}, nil
		}
	}
	return stuckLane{}, fmt.Errorf("fault: net %q is not a flip-flop output", f.FF)
}

// RunBatch executes up to len(scenarios) concrete faulted runs in lockstep
// over the bitsliced backend, one scenario per lane (chunking internally at
// 64 lanes). Each lane gets its own program copy, memories, ports and
// parking detector; lanes retire from the batch as they park, error or get
// cancelled. Per-lane results — cycle counts and error text — are identical
// to running fault.Run once per scenario, which TestFaultBackendsAgreeBatched
// enforces over the whole fault corpus.
func RunBatch(ctx context.Context, img *asm.Image, maxCycles uint64, scenarios [][]Fault) ([]BatchResult, error) {
	results := make([]BatchResult, len(scenarios))
	for base := 0; base < len(scenarios); base += sim.BatchLanes {
		n := len(scenarios) - base
		if n > sim.BatchLanes {
			n = sim.BatchLanes
		}
		if err := runBatchChunk(ctx, img, maxCycles, scenarios[base:base+n], results[base:base+n]); err != nil {
			return nil, err
		}
	}
	return results, nil
}

func runBatchChunk(ctx context.Context, img *asm.Image, maxCycles uint64, scenarios [][]Fault, results []BatchResult) error {
	d := glift.SharedDesign()
	bsys, err := mcu.NewBatchSystem(d, len(scenarios))
	if err != nil {
		return err
	}
	stuck := make([][]stuckLane, len(scenarios))
	alive := uint64(0)
	for lane, faults := range scenarios {
		rom := bsys.LaneROM(lane)
		img.Place(func(a, w uint16) { rom.StoreWord(a, sim.ConcreteWord(w)) })
		rom.StoreWord(d.Map.ResetVec, sim.ConcreteWord(img.Entry))
		laneErr := func() error {
			for _, f := range faults {
				switch ft := f.(type) {
				case StuckFF:
					sl, err := lowerStuckFF(d, ft)
					if err != nil {
						return err
					}
					stuck[lane] = append(stuck[lane], sl)
				case PortX:
					if ft.Port < 0 || ft.Port >= mcu.NumPorts {
						return fmt.Errorf("fault: port index %d out of range", ft.Port)
					}
					w := sim.Word{XM: 0xffff}
					if ft.Taint {
						w.TT = 0xffff
					}
					bsys.SetLanePortIn(lane, ft.Port, w)
				case ROMCorrupt:
					if !rom.Contains(ft.Addr) {
						return fmt.Errorf("fault: %#04x is outside program memory", ft.Addr)
					}
					w := rom.LoadWord(ft.Addr)
					w.Val ^= ft.Xor
					w.XM |= ft.MakeX
					if ft.Taint {
						w.TT = 0xffff
					}
					rom.StoreWord(ft.Addr, w)
				default:
					return fmt.Errorf("fault: %s cannot run batched", f.Describe())
				}
			}
			return nil
		}()
		if laneErr != nil {
			results[lane] = BatchResult{Err: laneErr}
			continue
		}
		alive |= 1 << lane
	}

	bsys.PowerOn()
	applyStuck := func(mask uint64) {
		for m := mask; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			for _, sl := range stuck[lane] {
				bsys.B.SetLane(lane, sl.q, sl.sig)
			}
		}
	}
	applyStuck(alive)

	lastPC := make([]uint32, len(scenarios))
	samePC := make([]int, len(scenarios))
	for lane := range lastPC {
		lastPC[lane] = 1 << 20
	}
	start := bsys.Cycle
	for alive != 0 && bsys.Cycle-start < maxCycles {
		if bsys.Cycle&1023 == 0 && ctx.Err() != nil {
			for m := alive; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros64(m)
				results[lane] = BatchResult{
					Cycles: bsys.Cycle - start,
					Err:    fmt.Errorf("fault: concrete run cancelled at cycle %d: %w", bsys.Cycle, ctx.Err()),
				}
			}
			return nil
		}
		cis := bsys.EvalCycle(alive)
		for m := alive; m != 0; m &= m - 1 {
			lane := bits.TrailingZeros64(m)
			ci := &cis[lane]
			if !ci.PmemOK {
				results[lane] = BatchResult{
					Cycles: bsys.Cycle - start,
					Err:    fmt.Errorf("fault: pc became unknown at cycle %d", bsys.Cycle),
				}
				alive &^= 1 << lane // scalar Run returns before committing
				continue
			}
			if ci.StateOK && ci.State == mcu.StFetch {
				if uint32(ci.PmemAddr) == lastPC[lane] {
					samePC[lane]++
					if samePC[lane] >= 2 {
						results[lane] = BatchResult{Cycles: bsys.Cycle - start} // parked on jmp $
						alive &^= 1 << lane
						continue
					}
				} else {
					samePC[lane] = 0
				}
				lastPC[lane] = uint32(ci.PmemAddr)
			}
		}
		bsys.CommitLanes(alive, cis)
		applyStuck(alive)
	}
	for m := alive; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		results[lane] = BatchResult{
			Cycles: bsys.Cycle - start,
			Err:    fmt.Errorf("fault: did not terminate in %d cycles", maxCycles),
		}
	}
	return nil
}
