// Package fault is a gate-level fault-injection harness for the analysis
// runtime: it corrupts a system under test — stuck-at flip-flops in the
// netlist, spurious unknown/tainted values on input ports, flipped or
// unknown ROM words — and re-runs the concrete simulator or the symbolic
// checker on the damaged system.
//
// Its purpose is to exercise the fail-closed contract, not to model real
// silicon defects: under every injected fault the checker must report a
// violation or an Incomplete/InternalError verdict, never a clean
// "verified". A fault that slips through as Verified would mean the
// sufficient-condition checks have a blind spot.
package fault

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/logic"
	"repro/internal/mcu"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/synth"
)

// Fault is one injected defect. Implementations mutate either the netlist
// of a freshly built design (stuck-at faults) or the constructed system's
// environment (port and ROM faults); the harness applies both phases in
// order and never touches the shared design singleton.
type Fault interface {
	// Describe renders the fault for logs and test names.
	Describe() string
	// rewritesNetlist reports whether the fault needs a private mcu.Build()
	// (netlist mutations must never reach glift.SharedDesign()).
	rewritesNetlist() bool
	// applyDesign mutates the freshly built design, before the simulator is
	// constructed. No-op for system-level faults.
	applyDesign(d *mcu.Design) error
	// applySystem mutates the constructed system (ports, ROM contents),
	// after program placement and policy taints.
	applySystem(sys *mcu.System) error
}

// StuckFF pins one flip-flop's output to a constant: its D input is rewired
// to the constant, reset is disconnected and the enable is forced, so the
// value latches on the first clock edge and never changes again.
type StuckFF struct {
	// FF names the flip-flop by its Q net: either a convenience form
	// "pc:5", "sr:3", "r14:11", "wdtcnt:0", "wdtctl:2" (register:bit), or a
	// raw netlist net name.
	FF string
	// Value is the stuck level, logic.Zero or logic.One.
	Value logic.V
}

func (f StuckFF) Describe() string      { return fmt.Sprintf("stuck-at-%s flip-flop %s", f.Value, f.FF) }
func (f StuckFF) rewritesNetlist() bool { return true }

func (f StuckFF) qNet(d *mcu.Design) (netlist.NetID, error) {
	name := f.FF
	if i := strings.IndexByte(name, ':'); i >= 0 {
		base, bitStr := name[:i], name[i+1:]
		bit, err := strconv.Atoi(bitStr)
		if err != nil {
			return 0, fmt.Errorf("fault: bad bit index in %q", name)
		}
		var w synth.Word
		switch {
		case base == "pc":
			w = d.PC
		case base == "sr":
			w = d.SR
		case base == "wdtcnt":
			w = d.WdtCnt
		case base == "wdtctl":
			w = d.WdtCtl
		case strings.HasPrefix(base, "r"):
			r, err := strconv.Atoi(base[1:])
			if err != nil || r < 0 || r > 15 {
				return 0, fmt.Errorf("fault: bad register in %q", name)
			}
			w = d.Regs[r]
			if w == nil {
				return 0, fmt.Errorf("fault: register %s has no register-file flip-flops", base)
			}
		default:
			return 0, fmt.Errorf("fault: unknown register %q in %q", base, name)
		}
		if bit < 0 || bit >= len(w) {
			return 0, fmt.Errorf("fault: bit %d out of range for %q", bit, name)
		}
		return w[bit], nil
	}
	id, ok := d.NL.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("fault: no net named %q", name)
	}
	return id, nil
}

func (f StuckFF) applyDesign(d *mcu.Design) error {
	if f.Value != logic.Zero && f.Value != logic.One {
		return fmt.Errorf("fault: stuck value must be 0 or 1, got %s", f.Value)
	}
	q, err := f.qNet(d)
	if err != nil {
		return err
	}
	cv := d.NL.Const0()
	if f.Value == logic.One {
		cv = d.NL.Const1()
	}
	for i := range d.NL.DFFs {
		ff := &d.NL.DFFs[i]
		if ff.Q == q {
			ff.D = cv
			ff.Rst = d.NL.Const0()
			ff.En = d.NL.Const1()
			return nil
		}
	}
	return fmt.Errorf("fault: net %q is not a flip-flop output", f.FF)
}

func (f StuckFF) applySystem(sys *mcu.System) error { return nil }

// PortX forces an input port to unknown (X) on every cycle, optionally
// carrying taint — a floating or adversarial pin the policy did not expect.
type PortX struct {
	Port  int // 0-based port index (P1IN..P4IN)
	Taint bool
}

func (f PortX) Describe() string {
	if f.Taint {
		return fmt.Sprintf("tainted-X input port P%dIN", f.Port+1)
	}
	return fmt.Sprintf("unknown input port P%dIN", f.Port+1)
}
func (f PortX) rewritesNetlist() bool           { return false }
func (f PortX) applyDesign(d *mcu.Design) error { return nil }

func (f PortX) applySystem(sys *mcu.System) error {
	if f.Port < 0 || f.Port >= mcu.NumPorts {
		return fmt.Errorf("fault: port index %d out of range", f.Port)
	}
	w := sim.Word{XM: 0xffff}
	if f.Taint {
		w.TT = 0xffff
	}
	sys.SetPortIn(f.Port, w)
	return nil
}

// ROMCorrupt damages one program-memory word after image placement: Xor
// flips value bits, MakeX turns bits unknown, Taint marks the whole word
// tainted (a compromised or rowhammered flash word).
type ROMCorrupt struct {
	Addr  uint16
	Xor   uint16
	MakeX uint16
	Taint bool
}

func (f ROMCorrupt) Describe() string {
	return fmt.Sprintf("corrupt ROM word %#04x (xor=%#04x x=%#04x taint=%v)", f.Addr, f.Xor, f.MakeX, f.Taint)
}
func (f ROMCorrupt) rewritesNetlist() bool           { return false }
func (f ROMCorrupt) applyDesign(d *mcu.Design) error { return nil }

func (f ROMCorrupt) applySystem(sys *mcu.System) error {
	if !sys.ROM.Contains(f.Addr) {
		return fmt.Errorf("fault: %#04x is outside program memory", f.Addr)
	}
	w := sys.ROM.LoadWord(f.Addr)
	w.Val ^= f.Xor
	w.XM |= f.MakeX
	if f.Taint {
		w.TT = 0xffff
	}
	sys.ROM.StoreWord(f.Addr, w)
	return nil
}

// Result pairs the injected faults with the checker's report on the
// damaged system.
type Result struct {
	Faults []Fault
	Report *glift.Report
}

// FailClosed reports whether the checker honoured the fail-closed contract
// under the faults: any verdict except a clean Verified.
func (r *Result) FailClosed() bool { return r.Report.Verdict() != glift.Verified }

// design prepares the design for the fault set: the shared singleton when
// no fault rewrites the netlist, otherwise a private build with every
// design-phase mutation applied.
func design(faults []Fault) (*mcu.Design, error) {
	fresh := false
	for _, f := range faults {
		if f.rewritesNetlist() {
			fresh = true
			break
		}
	}
	if !fresh {
		return glift.SharedDesign(), nil
	}
	d := mcu.Build()
	for _, f := range faults {
		if err := f.applyDesign(d); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Analyze runs the symbolic checker on the faulted system: the program and
// policy are set up exactly as in glift.Analyze, then the faults' system
// phase is applied on top (so a fault can override policy port values), and
// the exploration runs under ctx.
func Analyze(ctx context.Context, img *asm.Image, pol *glift.Policy, opt *glift.Options, faults ...Fault) (*Result, error) {
	d, err := design(faults)
	if err != nil {
		return nil, err
	}
	eng, err := glift.NewEngineOn(d, img, pol, opt)
	if err != nil {
		return nil, err
	}
	for _, f := range faults {
		if err := f.applySystem(eng.Sys); err != nil {
			return nil, err
		}
	}
	return &Result{Faults: faults, Report: eng.RunContext(ctx)}, nil
}

// Run executes the faulted system concretely until the program parks on a
// self-jump, the cycle budget runs out, or the machine state degenerates
// (unknown PC) — the latter two return an error, keeping concrete fault
// runs fail-closed too.
func Run(ctx context.Context, img *asm.Image, maxCycles uint64, faults ...Fault) (uint64, error) {
	d, err := design(faults)
	if err != nil {
		return 0, err
	}
	sys, err := mcu.NewSystem(d)
	if err != nil {
		return 0, err
	}
	img.Place(func(a, w uint16) { sys.ROM.StoreWord(a, sim.ConcreteWord(w)) })
	sys.SetResetVector(img.Entry)
	for _, f := range faults {
		if err := f.applySystem(sys); err != nil {
			return 0, err
		}
	}
	sys.PowerOn()

	var lastPC uint32 = 1 << 20
	samePC := 0
	start := sys.Cycle
	for sys.Cycle-start < maxCycles {
		if sys.Cycle&1023 == 0 && ctx.Err() != nil {
			return sys.Cycle - start, fmt.Errorf("fault: concrete run cancelled at cycle %d: %w", sys.Cycle, ctx.Err())
		}
		ci := sys.EvalCycle(nil)
		if !ci.PmemOK {
			return sys.Cycle - start, fmt.Errorf("fault: pc became unknown at cycle %d", sys.Cycle)
		}
		if ci.StateOK && ci.State == mcu.StFetch {
			if uint32(ci.PmemAddr) == lastPC {
				samePC++
				if samePC >= 2 {
					return sys.Cycle - start, nil // parked on jmp $
				}
			} else {
				samePC = 0
			}
			lastPC = uint32(ci.PmemAddr)
		}
		sys.Commit(ci)
	}
	return sys.Cycle - start, fmt.Errorf("fault: did not terminate in %d cycles", maxCycles)
}
