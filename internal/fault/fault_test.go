package fault

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/glift"
	"repro/internal/logic"
	"repro/internal/sim"
)

// maskedSrc is the Figure 5 protected program as a tainted task: a tainted
// offset masked into the tainted partition [0x0400, 0x0800). Under
// maskedPolicy the unfaulted checker verifies it clean; every fault
// scenario below must break that verification.
const maskedSrc = `
tstart: mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        and #0x03ff, r14
        bis #0x0400, r14
        mov #500, 0(r14)
done:   jmp done
tend:
`

func maskedPolicy(img *asm.Image) *glift.Policy {
	return &glift.Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedCode:    []glift.AddrRange{{Lo: img.MustSymbol("tstart"), Hi: img.MustSymbol("tend")}},
		TaintedData:    []glift.AddrRange{{Lo: 0x0400, Hi: 0x0800}},
	}
}

// secureSrc copies an untainted input port to an untainted output port —
// clean under the empty-taint policy until a fault taints P3IN.
const secureSrc = `
start:  mov &0x0028, r5      ; P3IN (untainted port)
        add #1, r5
        mov r5, &0x002e      ; P4OUT (untainted port)
        jmp start
`

func mustImage(t *testing.T, src string) *asm.Image {
	t.Helper()
	img, err := asm.AssembleSource(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

// stmtExtAddr returns the address of the extension word of the first
// statement using the given mnemonic (opcode word + 2).
func stmtExtAddr(t *testing.T, img *asm.Image, mnemonic string) uint16 {
	t.Helper()
	for i := range img.Stmts {
		if img.Stmts[i].Mnemonic == mnemonic {
			return img.StmtToAddr[i] + 2
		}
	}
	t.Fatalf("no %q statement in image", mnemonic)
	return 0
}

// The harness itself must not disturb a clean system: zero faults on the
// masked program still verifies.
func TestNoFaultBaselineVerifies(t *testing.T) {
	img := mustImage(t, maskedSrc)
	res, err := Analyze(context.Background(), img, maskedPolicy(img), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Report.Verdict(); v != glift.Verified {
		t.Fatalf("baseline verdict = %v, violations: %v", v, res.Report.Violations)
	}
}

// scenarios is the fail-closed matrix: every entry damages a system that
// verifies clean, and the checker must return a non-Verified verdict.
func TestInjectedFaultsNeverVerify(t *testing.T) {
	maskedImg := mustImage(t, maskedSrc)
	secureImg := mustImage(t, secureSrc)

	cases := []struct {
		name   string
		img    *asm.Image
		pol    *glift.Policy
		faults []Fault
	}{
		{
			// Flipping the partition-base constant of the bis from 0x0400
			// to 0x0200 re-bases the masked store window onto untainted RAM
			// (back to the Figure 4 vulnerability).
			name:   "rom-flip-rebases-mask",
			img:    maskedImg,
			pol:    maskedPolicy(maskedImg),
			faults: []Fault{ROMCorrupt{Addr: stmtExtAddr(t, maskedImg, "bis"), Xor: 0x0600}},
		},
		{
			// An unknown instruction word makes decode — and so the next
			// PC — unresolvable.
			name:   "rom-x-unresolves-pc",
			img:    maskedImg,
			pol:    maskedPolicy(maskedImg),
			faults: []Fault{ROMCorrupt{Addr: maskedImg.Entry, MakeX: 0xffff}},
		},
		{
			// Tainting the bis' #0x0400 extension word taints the address's
			// partition bit, so the store pattern escapes the partition.
			name:   "rom-tainted-word",
			img:    maskedImg,
			pol:    maskedPolicy(maskedImg),
			faults: []Fault{ROMCorrupt{Addr: stmtExtAddr(t, maskedImg, "bis"), Taint: true}},
		},
		{
			// Spurious taint on P3IN, which the policy trusts: the copied
			// value reaches the untainted output port P4OUT.
			name:   "tainted-input-port",
			img:    secureImg,
			pol:    &glift.Policy{Name: "integrity"},
			faults: []Fault{PortX{Port: 2, Taint: true}},
		},
		{
			// r14's partition bit (0x0400, set by the bis) stuck at zero:
			// the masked address slides down into untainted RAM while still
			// carrying the tainted offset bits.
			name:   "stuck-ff-clears-partition-bit",
			img:    maskedImg,
			pol:    maskedPolicy(maskedImg),
			faults: []Fault{StuckFF{FF: "r14:10", Value: logic.Zero}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Analyze(context.Background(), tc.img, tc.pol, nil, tc.faults...)
			if err != nil {
				t.Fatal(err)
			}
			if !res.FailClosed() {
				t.Fatalf("fault %s slipped through as Verified (stats %s)",
					res.Faults[0].Describe(), res.Report.Stats)
			}
			t.Logf("%s -> %v: %v", res.Faults[0].Describe(), res.Report.Verdict(), res.Report.Violations)
		})
	}

	// Netlist mutations must never leak into the shared design: after the
	// stuck-at scenarios above, a plain analysis still verifies.
	rep, err := glift.Analyze(maskedImg, maskedPolicy(maskedImg), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Verdict(); v != glift.Verified {
		t.Fatalf("shared design polluted by fault injection: verdict %v, %v", v, rep.Violations)
	}
}

// Faulted systems are analyzed identically by both evaluation backends:
// a mutated netlist (stuck flip-flop) is lowered and explored by the
// compiled backend exactly as the interpreter sweeps it, modulo wall time.
func TestFaultBackendsAgree(t *testing.T) {
	img := mustImage(t, maskedSrc)
	pol := maskedPolicy(img)
	fault := StuckFF{FF: "r14:10", Value: logic.Zero}
	norm := func(b sim.BackendKind) string {
		res, err := Analyze(context.Background(), img, pol, &glift.Options{Backend: b}, fault)
		if err != nil {
			t.Fatalf("analyze (%s): %v", b, err)
		}
		j := res.Report.JSON()
		j.Stats.WallNanos = 0
		out, err := json.MarshalIndent(j, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(out)
	}
	interp, compiled := norm(sim.BackendInterp), norm(sim.BackendCompiled)
	if interp != compiled {
		t.Errorf("faulted-system reports differ between backends:\n--- interp ---\n%s\n--- compiled ---\n%s", interp, compiled)
	}
}

// Concrete runs fail closed too: an unknown instruction word degenerates
// the PC, which the runner reports as an error instead of completing.
func TestConcreteRunFailsClosedOnXWord(t *testing.T) {
	img := mustImage(t, maskedSrc)
	// Unfaulted: the program parks on jmp $ and the run succeeds.
	if _, err := Run(context.Background(), img, 10_000); err != nil {
		t.Fatalf("clean concrete run: %v", err)
	}
	_, err := Run(context.Background(), img, 10_000, ROMCorrupt{Addr: img.Entry, MakeX: 0xffff})
	if err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("expected unknown-PC error, got %v", err)
	}
}

// A stuck flip-flop alters concrete execution as well: with the partition
// bit stuck low, the store's unknown address may reach WDTCTL inside the
// netlist, the watchdog state goes unknown and the run degenerates — the
// runner must report an error rather than completing as if healthy.
func TestConcreteRunStuckFF(t *testing.T) {
	img := mustImage(t, maskedSrc)
	if _, err := Run(context.Background(), img, 10_000); err != nil {
		t.Fatalf("clean concrete run: %v", err)
	}
	if _, err := Run(context.Background(), img, 10_000, StuckFF{FF: "r14:10", Value: logic.Zero}); err == nil {
		t.Fatal("stuck-ff concrete run completed as if healthy")
	}
}

// Fault validation: bad names and values are typed errors, not panics.
func TestFaultValidation(t *testing.T) {
	img := mustImage(t, maskedSrc)
	pol := maskedPolicy(img)
	ctx := context.Background()
	if _, err := Analyze(ctx, img, pol, nil, StuckFF{FF: "r99:0", Value: logic.Zero}); err == nil {
		t.Fatal("bad register accepted")
	}
	if _, err := Analyze(ctx, img, pol, nil, StuckFF{FF: "r14:10", Value: logic.X}); err == nil {
		t.Fatal("stuck-at-X accepted")
	}
	if _, err := Analyze(ctx, img, pol, nil, PortX{Port: 9}); err == nil {
		t.Fatal("bad port accepted")
	}
	if _, err := Analyze(ctx, img, pol, nil, ROMCorrupt{Addr: 0x0100}); err == nil {
		t.Fatal("non-ROM address accepted")
	}
	if _, err := Analyze(ctx, img, pol, nil, StuckFF{FF: "no_such_net", Value: logic.One}); err == nil {
		t.Fatal("unknown net accepted")
	}
}
