package netlist

import (
	"fmt"

	"repro/internal/logic"
)

// OptStats summarizes an optimization pass.
type OptStats struct {
	GatesBefore, GatesAfter int
	Folded                  int // constant-folded gates
	Collapsed               int // identity-simplified gates (buf, and-with-1, ...)
	Dead                    int // gates removed as unreachable from any root
}

// Optimize returns a functionally — and GLIFT-taint — equivalent netlist
// with constants folded, identities collapsed and dead logic removed. Roots
// are the primary outputs, every flip-flop's D/Rst/En cone, and any nets
// named in keep (e.g. analysis probe nets). Net names of surviving nets are
// preserved, so probes remain addressable by name.
//
// All rewrites are taint-preserving under the GLIFT evaluation rules:
// constants are always untainted, a controlling untainted constant masks
// taint in both the original and simplified forms, and select-independent
// muxes pass exactly their data's taint.
func Optimize(n *Netlist, keep ...string) (*Netlist, OptStats, error) {
	lv, err := n.Levelize()
	if err != nil {
		return nil, OptStats{}, err
	}
	order := lv.Order
	st := OptStats{GatesBefore: len(n.Gates)}

	// alias maps a net to its replacement (possibly a constant net).
	alias := make([]NetID, n.NumNets())
	for i := range alias {
		alias[i] = NetID(i)
	}
	resolve := func(id NetID) NetID {
		for alias[id] != id {
			id = alias[id]
		}
		return id
	}
	constVal := func(id NetID) (logic.V, bool) {
		switch resolve(id) {
		case n.const0:
			return logic.Zero, true
		case n.const1:
			return logic.One, true
		}
		return 0, false
	}

	// gateRepl records per-gate disposition: either an alias was installed
	// (gate vanishes) or the gate survives (possibly with a new op/inputs).
	type newGate struct {
		op logic.Op
		in [3]NetID
	}
	surviving := make(map[int]newGate)

	for _, gi := range order {
		g := n.Gates[gi]
		in := make([]NetID, g.NIn())
		vals := make([]logic.V, g.NIn())
		allConst := true
		for i := 0; i < g.NIn(); i++ {
			in[i] = resolve(g.In[i])
			if v, ok := constVal(in[i]); ok {
				vals[i] = v
			} else {
				allConst = false
				vals[i] = logic.X
			}
		}

		// Full constant folding.
		if allConst || g.NIn() == 0 {
			sigs := make([]logic.Sig, g.NIn())
			for i := range sigs {
				sigs[i] = logic.S(vals[i], false)
			}
			out := logic.Eval(g.Op, sigs...)
			if out.V == logic.One {
				alias[g.Out] = n.const1
			} else {
				alias[g.Out] = n.const0
			}
			st.Folded++
			continue
		}

		// Identity simplifications.
		simplified := false
		setAlias := func(to NetID) {
			alias[g.Out] = to
			st.Collapsed++
			simplified = true
		}
		emit := func(op logic.Op, ins ...NetID) {
			var ng newGate
			ng.op = op
			for i := range ng.in {
				ng.in[i] = Invalid
			}
			copy(ng.in[:], ins)
			surviving[int(gi)] = ng
			simplified = true
		}
		c := func(i int) (logic.V, bool) { return constVal(in[i]) }
		switch g.Op {
		case logic.Buf:
			setAlias(in[0])
		case logic.And:
			if v, ok := c(0); ok {
				if v == logic.Zero {
					setAlias(n.const0)
				} else {
					setAlias(in[1])
				}
			} else if v, ok := c(1); ok {
				if v == logic.Zero {
					setAlias(n.const0)
				} else {
					setAlias(in[0])
				}
			} else if in[0] == in[1] {
				setAlias(in[0])
			}
		case logic.Or:
			if v, ok := c(0); ok {
				if v == logic.One {
					setAlias(n.const1)
				} else {
					setAlias(in[1])
				}
			} else if v, ok := c(1); ok {
				if v == logic.One {
					setAlias(n.const1)
				} else {
					setAlias(in[0])
				}
			} else if in[0] == in[1] {
				setAlias(in[0])
			}
		case logic.Xor:
			if v, ok := c(0); ok {
				if v == logic.Zero {
					setAlias(in[1])
				} else {
					emit(logic.Not, in[1])
				}
			} else if v, ok := c(1); ok {
				if v == logic.Zero {
					setAlias(in[0])
				} else {
					emit(logic.Not, in[0])
				}
			}
			// NOTE: xor(x,x) is NOT rewritten to 0. Per-gate GLIFT treats
			// the two (correlated) inputs independently, so the original
			// gate reports taint when x is tainted; rewriting would change
			// analysis results (strict GLIFT equivalence is the contract).
		case logic.Xnor:
			if v, ok := c(0); ok {
				if v == logic.One {
					setAlias(in[1])
				} else {
					emit(logic.Not, in[1])
				}
			} else if v, ok := c(1); ok {
				if v == logic.One {
					setAlias(in[0])
				} else {
					emit(logic.Not, in[0])
				}
			}
			// xnor(x,x): kept, same GLIFT-equivalence argument as xor.
		case logic.Mux: // in[0]=sel, in[1]=when0, in[2]=when1
			if v, ok := c(0); ok {
				if v == logic.Zero {
					setAlias(in[1])
				} else {
					setAlias(in[2])
				}
			} else if in[1] == in[2] {
				setAlias(in[1])
			}
		}
		if !simplified {
			var ng newGate
			ng.op = g.Op
			for i := range ng.in {
				ng.in[i] = Invalid
			}
			copy(ng.in[:], in)
			surviving[int(gi)] = ng
		}
	}

	// Mark live gates: reachable backwards from the roots.
	roots := make([]NetID, 0, 64)
	for _, p := range n.Ports {
		if p.Dir == DirOutput {
			roots = append(roots, resolve(p.Net))
		}
	}
	for _, d := range n.DFFs {
		roots = append(roots, resolve(d.D), resolve(d.Rst), resolve(d.En))
	}
	for _, name := range keep {
		id, ok := n.Lookup(name)
		if !ok {
			return nil, OptStats{}, fmt.Errorf("netlist: keep net %q not found", name)
		}
		roots = append(roots, resolve(id))
	}

	driverGate := make(map[NetID]int) // resolved output net -> surviving gate index
	for gi, ng := range surviving {
		_ = ng
		driverGate[n.Gates[gi].Out] = gi
	}
	liveNet := make(map[NetID]bool)
	liveGate := make(map[int]bool)
	var walk func(id NetID)
	walk = func(id NetID) {
		if liveNet[id] {
			return
		}
		liveNet[id] = true
		if gi, ok := driverGate[id]; ok {
			liveGate[gi] = true
			ng := surviving[gi]
			for i := 0; i < ng.op.Arity(); i++ {
				walk(ng.in[i])
			}
		}
	}
	for _, r := range roots {
		walk(r)
	}
	// DFF Q nets are sources too (they appear as inputs to live logic).
	// Mark them live so they are carried over.
	for _, d := range n.DFFs {
		liveNet[d.Q] = true
	}

	// Rebuild.
	out := New()
	newID := make(map[NetID]NetID)
	newID[n.const0] = out.const0
	newID[n.const1] = out.const1
	mapNet := func(id NetID) NetID {
		id = resolve(id)
		if nid, ok := newID[id]; ok {
			return nid
		}
		nid := out.NewNet(n.Name(id))
		newID[id] = nid
		return nid
	}
	for _, p := range n.Ports {
		if p.Dir == DirInput {
			nid := out.NewNet(p.Name)
			out.driver[nid] = srcInput
			out.Ports = append(out.Ports, Port{Name: p.Name, Net: nid, Dir: DirInput})
			newID[p.Net] = nid
		}
	}
	// Emit surviving live gates in topological order.
	for _, gi := range order {
		if !liveGate[int(gi)] {
			if _, was := surviving[int(gi)]; was {
				st.Dead++
			}
			continue
		}
		ng := surviving[int(gi)]
		ins := make([]NetID, ng.op.Arity())
		for i := range ins {
			ins[i] = mapNet(ng.in[i])
		}
		out.AddGate(ng.op, mapNet(n.Gates[gi].Out), ins...)
	}
	for _, d := range n.DFFs {
		out.AddDFF(mapNet(d.Q), mapNet(d.D), mapNet(d.Rst), mapNet(d.En), d.RstVal)
	}
	for _, p := range n.Ports {
		if p.Dir == DirOutput {
			out.AddOutput(p.Name, mapNet(p.Net))
		}
	}
	// A kept net may have been aliased away (e.g. a named buffer probe):
	// re-materialize it as a buffer so it stays addressable by name.
	for _, name := range keep {
		if _, ok := out.Lookup(name); ok {
			continue
		}
		id, _ := n.Lookup(name)
		probe := out.NewNet(name)
		out.AddGate(logic.Buf, probe, mapNet(id))
	}
	st.GatesAfter = len(out.Gates)
	if err := out.Validate(); err != nil {
		return nil, st, fmt.Errorf("netlist: optimize produced invalid netlist: %w", err)
	}
	return out, st, nil
}
