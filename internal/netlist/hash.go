package netlist

import (
	"crypto/sha256"
	"encoding/hex"
)

// Fingerprint returns a stable SHA-256 content hash of the netlist. The hash
// is computed over the canonical .gnl serialization (Write), which emits
// ports, gates and flip-flops in their structural declaration order, so the
// same construction sequence always yields the same digest across processes
// and platforms. It is the netlist component of the analysis service's
// content-addressed cache key.
func (n *Netlist) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	if err := Write(h, n); err != nil {
		// hash.Hash's Write never returns an error.
		panic(err)
	}
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// FingerprintHex is Fingerprint rendered as a lowercase hex string.
func (n *Netlist) FingerprintHex() string {
	fp := n.Fingerprint()
	return hex.EncodeToString(fp[:])
}
