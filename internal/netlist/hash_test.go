package netlist

import (
	"testing"

	"repro/internal/logic"
)

func buildSmall(extraGate bool) *Netlist {
	n := New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	y := n.NewNet("y")
	n.AddGate(logic.Nand, y, a, b)
	q := n.NewNet("q")
	n.AddDFF(q, y, n.Const0(), n.Const1(), logic.Zero)
	if extraGate {
		z := n.NewNet("z")
		n.AddGate(logic.Not, z, q)
		n.AddOutput("z", z)
	} else {
		n.AddOutput("q", q)
	}
	return n
}

// TestFingerprintStable: the same construction sequence always produces the
// same digest, and any structural change produces a different one.
func TestFingerprintStable(t *testing.T) {
	n1 := buildSmall(false)
	n2 := buildSmall(false)
	if n1.Fingerprint() != n2.Fingerprint() {
		t.Error("identical netlists have different fingerprints")
	}
	if n1.FingerprintHex() != n2.FingerprintHex() {
		t.Error("hex fingerprints differ")
	}
	if len(n1.FingerprintHex()) != 64 {
		t.Errorf("hex fingerprint length = %d, want 64", len(n1.FingerprintHex()))
	}
	n3 := buildSmall(true)
	if n1.Fingerprint() == n3.Fingerprint() {
		t.Error("different netlists share a fingerprint")
	}
	// Fingerprinting must not perturb the netlist.
	if err := n1.Validate(); err != nil {
		t.Errorf("netlist invalid after fingerprinting: %v", err)
	}
	if n1.Fingerprint() != n2.Fingerprint() {
		t.Error("fingerprint unstable across repeated calls")
	}
}
