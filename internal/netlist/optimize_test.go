package netlist

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

func TestOptimizeConstantFolding(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	x := n.NewNet("x")
	y := n.NewNet("y")
	z := n.NewNet("z")
	n.AddGate(logic.And, x, n.Const1(), n.Const0()) // folds to 0
	n.AddGate(logic.Or, y, x, a)                    // or(0,a) -> a
	n.AddGate(logic.Buf, z, y)                      // buf -> alias
	n.AddOutput("out", z)
	opt, st, err := Optimize(n)
	if err != nil {
		t.Fatal(err)
	}
	if st.GatesAfter != 0 {
		t.Fatalf("expected full collapse, got %d gates (%+v)", st.GatesAfter, st)
	}
	// The output should now be wired straight to the input.
	outNet, _ := opt.OutputPort("out")
	inNet, _ := opt.InputPort("a")
	if outNet != inNet {
		t.Fatalf("output not aliased to input: %v vs %v", outNet, inNet)
	}
}

func TestOptimizeIdentities(t *testing.T) {
	cases := []struct {
		build func(n *Netlist, a NetID) NetID // returns the output net
		gates int                             // surviving gate count
	}{
		{func(n *Netlist, a NetID) NetID { o := n.NewNet("o"); n.AddGate(logic.And, o, a, n.Const1()); return o }, 0},
		{func(n *Netlist, a NetID) NetID { o := n.NewNet("o"); n.AddGate(logic.Or, o, a, a); return o }, 0},
		{func(n *Netlist, a NetID) NetID { o := n.NewNet("o"); n.AddGate(logic.Xor, o, a, n.Const1()); return o }, 1}, // becomes not
		// xor(a,a)/xnor(a,a) must survive: rewriting them changes per-gate
		// GLIFT taint (see optimize.go).
		{func(n *Netlist, a NetID) NetID { o := n.NewNet("o"); n.AddGate(logic.Xor, o, a, a); return o }, 1},
		{func(n *Netlist, a NetID) NetID { o := n.NewNet("o"); n.AddGate(logic.Xnor, o, a, n.Const0()); return o }, 1},
		{func(n *Netlist, a NetID) NetID { o := n.NewNet("o"); n.AddGate(logic.Mux, o, a, a, a); return o }, 0},
		{func(n *Netlist, a NetID) NetID {
			o := n.NewNet("o")
			n.AddGate(logic.Mux, o, n.Const1(), n.Const0(), a)
			return o
		}, 0},
	}
	for i, c := range cases {
		n := New()
		a := n.AddInput("a")
		o := c.build(n, a)
		n.AddOutput("out", o)
		opt, st, err := Optimize(n)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(opt.Gates) != c.gates {
			t.Fatalf("case %d: %d gates survive, want %d (%+v)", i, len(opt.Gates), c.gates, st)
		}
	}
}

func TestOptimizeDeadElimination(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	live := n.NewNet("live")
	dead := n.NewNet("dead")
	dead2 := n.NewNet("dead2")
	n.AddGate(logic.And, live, a, b)
	n.AddGate(logic.Xor, dead, a, b)
	n.AddGate(logic.Not, dead2, dead)
	n.AddOutput("out", live)
	opt, st, err := Optimize(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Gates) != 1 || st.Dead != 2 {
		t.Fatalf("gates=%d dead=%d (%+v)", len(opt.Gates), st.Dead, st)
	}
}

func TestOptimizeKeepsProbes(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	probe := n.NewNet("probe")
	n.AddGate(logic.Not, probe, a)
	// No output uses the probe: without keep it dies, with keep it lives.
	out := n.NewNet("out")
	n.AddGate(logic.Buf, out, a)
	n.AddOutput("out", out)

	opt, _, err := Optimize(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := opt.Lookup("probe"); ok {
		t.Fatal("dead probe should vanish without keep")
	}
	opt2, _, err := Optimize(n, "probe")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := opt2.Lookup("probe"); !ok {
		t.Fatal("kept probe lost")
	}
	if _, _, err := Optimize(n, "nonexistent"); err == nil {
		t.Fatal("unknown keep should error")
	}
}

// randNetlist builds a random DAG of gates over a few inputs and a couple
// of flip-flops, with some constants mixed in to exercise folding.
func randNetlist(rnd *rand.Rand, gates int) *Netlist {
	n := New()
	pool := []NetID{n.Const0(), n.Const1()}
	for i := 0; i < 4; i++ {
		pool = append(pool, n.AddInput(""))
	}
	// Two flip-flops whose D comes from late logic (wired after).
	q1, q2 := n.NewNet("q1"), n.NewNet("q2")
	pool = append(pool, q1, q2)
	ops := []logic.Op{logic.Buf, logic.Not, logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor, logic.Mux}
	for i := 0; i < gates; i++ {
		op := ops[rnd.Intn(len(ops))]
		out := n.NewNet("")
		in := make([]NetID, op.Arity())
		for j := range in {
			in[j] = pool[rnd.Intn(len(pool))]
		}
		n.AddGate(op, out, in...)
		pool = append(pool, out)
	}
	rst := pool[2] // an input
	n.AddDFF(q1, pool[len(pool)-1], rst, n.Const1(), logic.Zero)
	n.AddDFF(q2, pool[len(pool)-2], rst, n.Const1(), logic.One)
	for i := 0; i < 3; i++ {
		n.AddOutput("", pool[len(pool)-3-i])
	}
	return n
}

// evalAll evaluates a netlist combinationally for given input/state
// assignments and returns the output port signals.
func evalAll(t *testing.T, n *Netlist, inputs map[string]logic.Sig, dffQ []logic.Sig) []logic.Sig {
	t.Helper()
	lv, err := n.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	order := lv.Order
	vals := make([]logic.Sig, n.NumNets())
	for i := range vals {
		vals[i] = logic.X0
	}
	vals[n.Const0()] = logic.Zero0
	vals[n.Const1()] = logic.One0
	for _, p := range n.Ports {
		if p.Dir == DirInput {
			vals[p.Net] = inputs[p.Name]
		}
	}
	for i, d := range n.DFFs {
		vals[d.Q] = dffQ[i]
	}
	for _, gi := range order {
		g := n.Gates[gi]
		in := make([]logic.Sig, g.NIn())
		for i := range in {
			in[i] = vals[g.In[i]]
		}
		vals[g.Out] = logic.Eval(g.Op, in...)
	}
	var outs []logic.Sig
	for _, p := range n.Ports {
		if p.Dir == DirOutput {
			outs = append(outs, vals[p.Net])
		}
	}
	return outs
}

// TestOptimizeEquivalence: for random netlists and random (value, X, taint)
// input assignments, the optimized netlist produces identical output
// signals — values AND taints — to the original.
func TestOptimizeEquivalence(t *testing.T) {
	sigs := []logic.Sig{logic.Zero0, logic.One0, logic.X0, logic.Zero1, logic.One1, logic.XT}
	for seed := 0; seed < 30; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed)))
		n := randNetlist(rnd, 40)
		opt, _, err := Optimize(n)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(opt.DFFs) != len(n.DFFs) {
			t.Fatalf("seed %d: DFF count changed", seed)
		}
		for trial := 0; trial < 20; trial++ {
			inputs := map[string]logic.Sig{}
			for _, p := range n.InputNets() {
				inputs[p.Name] = sigs[rnd.Intn(len(sigs))]
			}
			dffQ := []logic.Sig{sigs[rnd.Intn(len(sigs))], sigs[rnd.Intn(len(sigs))]}
			a := evalAll(t, n, inputs, dffQ)
			b := evalAll(t, opt, inputs, dffQ)
			if len(a) != len(b) {
				t.Fatalf("seed %d: output count differs", seed)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d trial %d: output %d differs: %s vs %s", seed, trial, i, a[i], b[i])
				}
			}
		}
	}
}

// TestOptimizeStats sanity-checks bookkeeping on a mixed circuit.
func TestOptimizeStats(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	n := randNetlist(rnd, 60)
	opt, st, err := Optimize(n)
	if err != nil {
		t.Fatal(err)
	}
	if st.GatesBefore != 60 {
		t.Fatalf("before = %d", st.GatesBefore)
	}
	if st.GatesAfter != len(opt.Gates) {
		t.Fatalf("after mismatch: %d vs %d", st.GatesAfter, len(opt.Gates))
	}
	if st.GatesAfter > st.GatesBefore {
		t.Fatal("optimizer grew the netlist")
	}
}
