// Textual serialization of netlists (.gnl format).
//
// The format is line-based:
//
//	# comment
//	input  <name>
//	output <name> <net>
//	net    <name>                      (optional pre-declaration)
//	<op>   <out> <in>...               e.g. "nand y a b", "mux y s a b"
//	dff    <q> <d> rst=<net> en=<net> rstval=<0|1>
//
// Nets are created on first mention. The well-known nets const0/const1 are
// always available. The paper's tool consumes a processor's gate-level
// netlist; this format is our interchange for the same artifact.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/logic"
)

var opByName = map[string]logic.Op{
	"buf": logic.Buf, "not": logic.Not, "and": logic.And, "or": logic.Or,
	"nand": logic.Nand, "nor": logic.Nor, "xor": logic.Xor, "xnor": logic.Xnor,
	"mux": logic.Mux,
}

// Write serializes the netlist in .gnl form.
func Write(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# gnl netlist: %d nets, %d gates, %d dffs\n", n.NumNets(), len(n.Gates), len(n.DFFs))
	for _, p := range n.Ports {
		if p.Dir == DirInput {
			fmt.Fprintf(bw, "input %s\n", p.Name)
		}
	}
	for _, g := range n.Gates {
		fmt.Fprintf(bw, "%s %s", g.Op, n.Name(g.Out))
		for i := 0; i < g.NIn(); i++ {
			fmt.Fprintf(bw, " %s", n.Name(g.In[i]))
		}
		fmt.Fprintln(bw)
	}
	for _, d := range n.DFFs {
		rv := 0
		if d.RstVal == logic.One {
			rv = 1
		}
		fmt.Fprintf(bw, "dff %s %s rst=%s en=%s rstval=%d\n",
			n.Name(d.Q), n.Name(d.D), n.Name(d.Rst), n.Name(d.En), rv)
	}
	for _, p := range n.Ports {
		if p.Dir == DirOutput {
			fmt.Fprintf(bw, "output %s %s\n", p.Name, n.Name(p.Net))
		}
	}
	return bw.Flush()
}

// Read parses a .gnl netlist.
func Read(r io.Reader) (*Netlist, error) {
	n := New()
	get := func(name string) NetID {
		if id, ok := n.Lookup(name); ok {
			return id
		}
		return n.NewNet(name)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		errf := func(format string, args ...any) error {
			return fmt.Errorf("gnl line %d: %s", lineno, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "input":
			if len(fields) != 2 {
				return nil, errf("input wants 1 operand")
			}
			if _, ok := n.Lookup(fields[1]); ok {
				return nil, errf("input %q redeclares an existing net", fields[1])
			}
			n.AddInput(fields[1])
		case "output":
			if len(fields) != 3 {
				return nil, errf("output wants 2 operands")
			}
			n.AddOutput(fields[1], get(fields[2]))
		case "net":
			if len(fields) != 2 {
				return nil, errf("net wants 1 operand")
			}
			get(fields[1])
		case "dff":
			if len(fields) != 6 {
				return nil, errf("dff wants: q d rst= en= rstval=")
			}
			q := get(fields[1])
			d := get(fields[2])
			var rstName, enName, rstvalStr string
			for _, f := range fields[3:] {
				k, v, ok := strings.Cut(f, "=")
				if !ok {
					return nil, errf("bad dff attribute %q", f)
				}
				switch k {
				case "rst":
					rstName = v
				case "en":
					enName = v
				case "rstval":
					rstvalStr = v
				default:
					return nil, errf("unknown dff attribute %q", k)
				}
			}
			if rstName == "" || enName == "" || rstvalStr == "" {
				return nil, errf("dff missing rst/en/rstval")
			}
			rv := logic.Zero
			switch rstvalStr {
			case "0":
			case "1":
				rv = logic.One
			default:
				return nil, errf("bad rstval %q", rstvalStr)
			}
			n.AddDFF(q, d, get(rstName), get(enName), rv)
		default:
			op, ok := opByName[fields[0]]
			if !ok {
				return nil, errf("unknown directive %q", fields[0])
			}
			if len(fields) != 2+op.Arity() {
				return nil, errf("%s wants %d inputs", fields[0], op.Arity())
			}
			out := get(fields[1])
			in := make([]NetID, op.Arity())
			for i := range in {
				in[i] = get(fields[2+i])
			}
			n.AddGate(op, out, in...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// WriteDOT emits a Graphviz rendering of the netlist, useful when debugging
// small circuits such as the Figure 7 example.
func WriteDOT(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph netlist {")
	fmt.Fprintln(bw, "  rankdir=LR;")
	for _, p := range n.Ports {
		shape := "invtriangle"
		if p.Dir == DirOutput {
			shape = "triangle"
		}
		fmt.Fprintf(bw, "  %q [shape=%s];\n", p.Name, shape)
	}
	for gi, g := range n.Gates {
		node := fmt.Sprintf("g%d_%s", gi, g.Op)
		fmt.Fprintf(bw, "  %q [shape=box,label=%q];\n", node, g.Op.String())
		for i := 0; i < g.NIn(); i++ {
			fmt.Fprintf(bw, "  %q -> %q;\n", n.Name(g.In[i]), node)
		}
		fmt.Fprintf(bw, "  %q -> %q;\n", node, n.Name(g.Out))
	}
	for di, d := range n.DFFs {
		node := fmt.Sprintf("dff%d", di)
		fmt.Fprintf(bw, "  %q [shape=box3d,label=\"DFF\"];\n", node)
		fmt.Fprintf(bw, "  %q -> %q [label=\"D\"];\n", n.Name(d.D), node)
		fmt.Fprintf(bw, "  %q -> %q [label=\"rst\"];\n", n.Name(d.Rst), node)
		fmt.Fprintf(bw, "  %q -> %q;\n", node, n.Name(d.Q))
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
