// Package netlist defines the gate-level netlist intermediate representation
// consumed by the simulator and the information-flow analysis: nets, gates,
// D flip-flops with synchronous reset/enable, and primary ports. It also
// provides validation, levelization (a topological evaluation order for the
// combinational logic) and a textual serialization format (.gnl).
//
// The netlist plays the role of the placed-and-routed processor description
// in the paper's toolflow; see DESIGN.md for the substitution rationale.
package netlist

import (
	"fmt"
	"sort"

	"repro/internal/logic"
)

// NetID identifies a net (a single wire) within a netlist.
type NetID int32

// Invalid is the zero-ish NetID used for "no net".
const Invalid NetID = -1

// Gate is one combinational gate instance. In holds the gate's inputs in
// order (for Mux: select, in0, in1); unused slots are Invalid.
type Gate struct {
	Op  logic.Op
	In  [3]NetID
	Out NetID
}

// NIn returns the number of inputs the gate consumes.
func (g Gate) NIn() int { return g.Op.Arity() }

// DFF is a D flip-flop with synchronous reset and clock enable. On each
// clock edge:
//
//	if Rst is 1:       Q <- RstVal
//	else if En is 1:   Q <- D
//	else:              Q <- Q
//
// Rst and En may be tied to the netlist's constant nets. X or tainted
// control inputs are handled conservatively by the simulator via the GLIFT
// mux rule, which reproduces the tainted-reset behaviour of Figure 7 in the
// paper (an asserted but tainted reset forces the value yet keeps the state
// tainted).
type DFF struct {
	D      NetID
	Q      NetID
	Rst    NetID
	En     NetID
	RstVal logic.V
}

// PortDir distinguishes primary inputs from primary outputs.
type PortDir uint8

// Port directions.
const (
	DirInput PortDir = iota
	DirOutput
)

// Port is a primary input or output of the netlist.
type Port struct {
	Name string
	Net  NetID
	Dir  PortDir
}

// Netlist is a flat gate-level design.
type Netlist struct {
	names  []string
	byName map[string]NetID

	Gates []Gate
	DFFs  []DFF
	Ports []Port

	const0, const1 NetID

	driver []int32 // per net: gate index, or dffBase+i, or srcInput/srcConst

	level *Levels // levelized evaluation structure (lazily built)
}

const (
	srcNone  = -1
	srcInput = -2
	srcConst = -3
)

// New returns an empty netlist with the two constant nets pre-created.
func New() *Netlist {
	n := &Netlist{byName: make(map[string]NetID)}
	n.const0 = n.NewNet("const0")
	n.const1 = n.NewNet("const1")
	n.driver[n.const0] = srcConst
	n.driver[n.const1] = srcConst
	return n
}

// Const0 returns the net that is constant logic 0.
func (n *Netlist) Const0() NetID { return n.const0 }

// Const1 returns the net that is constant logic 1.
func (n *Netlist) Const1() NetID { return n.const1 }

// NumNets returns the total number of nets.
func (n *Netlist) NumNets() int { return len(n.names) }

// NewNet creates a net. An empty name is auto-generated; names must be
// unique.
func (n *Netlist) NewNet(name string) NetID {
	id := NetID(len(n.names))
	if name == "" {
		name = fmt.Sprintf("n%d", id)
	}
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("netlist: duplicate net name %q", name))
	}
	n.names = append(n.names, name)
	n.byName[name] = id
	n.driver = append(n.driver, srcNone)
	n.level = nil
	return id
}

// Name returns the name of a net.
func (n *Netlist) Name(id NetID) string { return n.names[id] }

// Lookup finds a net by name.
func (n *Netlist) Lookup(name string) (NetID, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// MustNet finds a net by name and panics if it does not exist. It is used
// for the well-known probe nets of a processor netlist (e.g. "branch_taken").
func (n *Netlist) MustNet(name string) NetID {
	id, ok := n.byName[name]
	if !ok {
		panic(fmt.Sprintf("netlist: no net named %q", name))
	}
	return id
}

// AddGate adds a combinational gate driving out.
func (n *Netlist) AddGate(op logic.Op, out NetID, in ...NetID) {
	if len(in) != op.Arity() {
		panic(fmt.Sprintf("netlist: %s expects %d inputs, got %d", op, op.Arity(), len(in)))
	}
	n.checkUndriven(out)
	g := Gate{Op: op, Out: out}
	for i := range g.In {
		g.In[i] = Invalid
	}
	copy(g.In[:], in)
	n.driver[out] = int32(len(n.Gates))
	n.Gates = append(n.Gates, g)
	n.level = nil
}

// AddDFF adds a flip-flop driving q.
func (n *Netlist) AddDFF(q, d, rst, en NetID, rstVal logic.V) {
	n.checkUndriven(q)
	n.driver[q] = int32(1<<30) + int32(len(n.DFFs))
	n.DFFs = append(n.DFFs, DFF{D: d, Q: q, Rst: rst, En: en, RstVal: rstVal})
	n.level = nil
}

// AddInput declares name as a primary input and returns its net.
func (n *Netlist) AddInput(name string) NetID {
	id := n.NewNet(name)
	n.driver[id] = srcInput
	n.Ports = append(n.Ports, Port{Name: name, Net: id, Dir: DirInput})
	return id
}

// AddOutput declares an existing net as a primary output under the given
// name.
func (n *Netlist) AddOutput(name string, net NetID) {
	n.Ports = append(n.Ports, Port{Name: name, Net: net, Dir: DirOutput})
}

// InputPort returns the net of the named primary input.
func (n *Netlist) InputPort(name string) (NetID, bool) {
	for _, p := range n.Ports {
		if p.Dir == DirInput && p.Name == name {
			return p.Net, true
		}
	}
	return Invalid, false
}

// OutputPort returns the net of the named primary output.
func (n *Netlist) OutputPort(name string) (NetID, bool) {
	for _, p := range n.Ports {
		if p.Dir == DirOutput && p.Name == name {
			return p.Net, true
		}
	}
	return Invalid, false
}

func (n *Netlist) checkUndriven(id NetID) {
	if n.driver[id] != srcNone {
		panic(fmt.Sprintf("netlist: net %q has multiple drivers", n.names[id]))
	}
}

// IsDFFOutput reports whether the net is driven by a flip-flop.
func (n *Netlist) IsDFFOutput(id NetID) bool { return n.driver[id] >= 1<<30 }

// Stats summarizes a netlist.
type Stats struct {
	Nets    int
	Gates   int
	DFFs    int
	Inputs  int
	Outputs int
	ByOp    map[logic.Op]int
	Levels  int
}

// ComputeStats gathers size statistics, levelizing if necessary.
func (n *Netlist) ComputeStats() Stats {
	s := Stats{Nets: n.NumNets(), Gates: len(n.Gates), DFFs: len(n.DFFs), ByOp: map[logic.Op]int{}}
	for _, p := range n.Ports {
		if p.Dir == DirInput {
			s.Inputs++
		} else {
			s.Outputs++
		}
	}
	for _, g := range n.Gates {
		s.ByOp[g.Op]++
	}
	if lv, err := n.Levelize(); err == nil {
		s.Levels = lv.NumLevels()
	}
	return s
}

// Validate checks structural well-formedness: every net referenced as a gate
// or DFF input is driven (by a gate, DFF, input port, or constant), and the
// combinational logic is acyclic.
func (n *Netlist) Validate() error {
	for gi, g := range n.Gates {
		for i := 0; i < g.NIn(); i++ {
			if err := n.checkDriven(g.In[i], fmt.Sprintf("gate %d (%s)", gi, g.Op)); err != nil {
				return err
			}
		}
	}
	for di, d := range n.DFFs {
		for _, in := range []NetID{d.D, d.Rst, d.En} {
			if err := n.checkDriven(in, fmt.Sprintf("dff %d", di)); err != nil {
				return err
			}
		}
	}
	_, err := n.Levelize()
	return err
}

func (n *Netlist) checkDriven(id NetID, ctx string) error {
	if id == Invalid {
		return fmt.Errorf("netlist: %s references an invalid net", ctx)
	}
	if n.driver[id] == srcNone {
		return fmt.Errorf("netlist: %s input %q is undriven", ctx, n.names[id])
	}
	return nil
}

// Levels is the levelized evaluation structure of a netlist's combinational
// logic: a topological gate order grouped into levels (level 0 gates read
// only sources — DFF outputs, primary inputs, constants; a level-l gate has
// at least one input driven by a level l-1 gate), plus the net-level
// adjacency that change-driven evaluation and structural optimization need.
type Levels struct {
	// Order holds gate indices in topological order, grouped by level:
	// Order[Bounds[l]:Bounds[l+1]] are the level-l gates, in ascending gate
	// index within a level.
	Order []int32
	// Bounds has NumLevels()+1 entries delimiting the levels inside Order.
	Bounds []int32
	// GateLevel maps a gate index to its level.
	GateLevel []int32
	// DriverGate maps a net to the index of the combinational gate driving
	// it, or -1 for sources (primary inputs, constants, DFF outputs) and
	// undriven nets.
	DriverGate []int32

	// FanoutIndex/fanout form a CSR adjacency from nets to the gates that
	// consume them: fanout[FanoutIndex[id]:FanoutIndex[id+1]] are the
	// indices of gates reading net id, ascending. A gate listing one net on
	// two input pins appears twice.
	FanoutIndex []int32
	fanout      []int32
}

// NumLevels returns the number of combinational levels (the netlist's logic
// depth in gates).
func (l *Levels) NumLevels() int { return len(l.Bounds) - 1 }

// Level returns the gate indices of one level.
func (l *Levels) Level(lev int) []int32 { return l.Order[l.Bounds[lev]:l.Bounds[lev+1]] }

// NetFanout returns the indices of the gates consuming a net.
func (l *Levels) NetFanout(id NetID) []int32 {
	return l.fanout[l.FanoutIndex[id]:l.FanoutIndex[id+1]]
}

// Levelize computes the Levels structure: a topological order such that each
// gate appears after all gates driving its inputs, with per-level boundaries
// and per-net fanout/driver adjacency. DFF outputs, primary inputs and
// constants are sources. The result is cached until the netlist changes.
func (n *Netlist) Levelize() (*Levels, error) {
	if n.level != nil {
		return n.level, nil
	}
	// Kahn's algorithm over gates, also assigning each gate its level
	// (1 + the maximum level of its gate-driven inputs).
	indeg := make([]int32, len(n.Gates))
	// gateFan: driving gate -> consuming gates
	gateFan := make([][]int32, len(n.Gates))
	for gi, g := range n.Gates {
		for i := 0; i < g.NIn(); i++ {
			d := n.driver[g.In[i]]
			if d >= 0 && d < 1<<30 { // driven by a gate
				indeg[gi]++
				gateFan[d] = append(gateFan[d], int32(gi))
			}
		}
	}
	glevel := make([]int32, len(n.Gates))
	popped := make([]int32, 0, len(n.Gates))
	queue := make([]int32, 0, len(n.Gates))
	for gi := range n.Gates {
		if indeg[gi] == 0 {
			queue = append(queue, int32(gi))
		}
	}
	maxLevel := int32(-1)
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		popped = append(popped, gi)
		if glevel[gi] > maxLevel {
			maxLevel = glevel[gi]
		}
		for _, f := range gateFan[gi] {
			if glevel[gi]+1 > glevel[f] {
				glevel[f] = glevel[gi] + 1
			}
			indeg[f]--
			if indeg[f] == 0 {
				queue = append(queue, f)
			}
		}
	}
	if len(popped) != len(n.Gates) {
		// Identify one net on a cycle for the error message.
		for gi := range n.Gates {
			if indeg[gi] > 0 {
				return nil, fmt.Errorf("netlist: combinational cycle through net %q", n.names[n.Gates[gi].Out])
			}
		}
		return nil, fmt.Errorf("netlist: combinational cycle")
	}

	// Regroup by level. Gates are binned in ascending index (the range order
	// below), which makes the within-level order deterministic regardless of
	// the FIFO's interleaving.
	lv := &Levels{GateLevel: glevel}
	lv.Bounds = make([]int32, maxLevel+2)
	for _, l := range glevel {
		lv.Bounds[l+1]++
	}
	for l := 1; l < len(lv.Bounds); l++ {
		lv.Bounds[l] += lv.Bounds[l-1]
	}
	lv.Order = make([]int32, len(n.Gates))
	fill := append([]int32(nil), lv.Bounds...)
	for gi := range n.Gates {
		l := glevel[gi]
		lv.Order[fill[l]] = int32(gi)
		fill[l]++
	}

	// Net -> driving gate.
	lv.DriverGate = make([]int32, n.NumNets())
	for i := range lv.DriverGate {
		lv.DriverGate[i] = -1
	}
	for gi, g := range n.Gates {
		lv.DriverGate[g.Out] = int32(gi)
	}

	// Net -> consuming gates, CSR.
	lv.FanoutIndex = make([]int32, n.NumNets()+1)
	for _, g := range n.Gates {
		for i := 0; i < g.NIn(); i++ {
			lv.FanoutIndex[g.In[i]+1]++
		}
	}
	for i := 1; i < len(lv.FanoutIndex); i++ {
		lv.FanoutIndex[i] += lv.FanoutIndex[i-1]
	}
	lv.fanout = make([]int32, lv.FanoutIndex[n.NumNets()])
	cursor := append([]int32(nil), lv.FanoutIndex...)
	for gi, g := range n.Gates {
		for i := 0; i < g.NIn(); i++ {
			in := g.In[i]
			lv.fanout[cursor[in]] = int32(gi)
			cursor[in]++
		}
	}

	n.level = lv
	return lv, nil
}

// InputNets returns the nets of all primary inputs, sorted by name for
// deterministic iteration.
func (n *Netlist) InputNets() []Port {
	var ps []Port
	for _, p := range n.Ports {
		if p.Dir == DirInput {
			ps = append(ps, p)
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return ps
}
