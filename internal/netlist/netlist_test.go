package netlist

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/logic"
)

// buildToy builds the Figure 7 circuit: S' = S XOR In, with a resettable
// flip-flop.
func buildToy() (*Netlist, NetID, NetID, NetID) {
	n := New()
	in := n.AddInput("in")
	rst := n.AddInput("rst")
	s := n.NewNet("s")
	sNext := n.NewNet("s_next")
	n.AddGate(logic.Xor, sNext, s, in)
	n.AddDFF(s, sNext, rst, n.Const1(), logic.Zero)
	n.AddOutput("state", s)
	return n, in, rst, s
}

func TestBuildAndValidate(t *testing.T) {
	n, _, _, _ := buildToy()
	if err := n.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	st := n.ComputeStats()
	if st.Gates != 1 || st.DFFs != 1 || st.Inputs != 2 || st.Outputs != 1 {
		t.Fatalf("bad stats: %+v", st)
	}
	if st.Levels != 1 {
		t.Fatalf("levels = %d, want 1", st.Levels)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	n := New()
	n.NewNet("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.NewNet("a")
}

func TestMultipleDriversPanics(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	out := n.NewNet("out")
	n.AddGate(logic.Buf, out, a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.AddGate(logic.Not, out, a)
}

func TestUndrivenInputDetected(t *testing.T) {
	n := New()
	floating := n.NewNet("floating")
	out := n.NewNet("out")
	n.AddGate(logic.Buf, out, floating)
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "undriven") {
		t.Fatalf("want undriven error, got %v", err)
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	n := New()
	a := n.NewNet("a")
	b := n.NewNet("b")
	n.AddGate(logic.Not, a, b)
	n.AddGate(logic.Not, b, a)
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestDFFBreaksCycle(t *testing.T) {
	// A register feedback loop is not a combinational cycle.
	n := New()
	q := n.NewNet("q")
	d := n.NewNet("d")
	n.AddGate(logic.Not, d, q)
	n.AddDFF(q, d, n.Const0(), n.Const1(), logic.Zero)
	if err := n.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !n.IsDFFOutput(q) || n.IsDFFOutput(d) {
		t.Fatal("IsDFFOutput wrong")
	}
}

func TestLevelizeOrder(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	ab := n.NewNet("ab")
	abn := n.NewNet("abn")
	out := n.NewNet("out")
	// Add in reverse dependency order to exercise sorting.
	n.AddGate(logic.Or, out, abn, a)
	n.AddGate(logic.Not, abn, ab)
	n.AddGate(logic.And, ab, a, b)
	lv, err := n.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[NetID]int{}
	for i, gi := range lv.Order {
		pos[n.Gates[gi].Out] = i
	}
	if !(pos[ab] < pos[abn] && pos[abn] < pos[out]) {
		t.Fatalf("bad topo order: %v", pos)
	}
}

func TestLevelizeLevels(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	ab := n.NewNet("ab")
	abn := n.NewNet("abn")
	out := n.NewNet("out")
	n.AddGate(logic.Or, out, abn, a) // gate 0, level 2
	n.AddGate(logic.Not, abn, ab)    // gate 1, level 1
	n.AddGate(logic.And, ab, a, b)   // gate 2, level 0
	lv, err := n.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	if lv.NumLevels() != 3 {
		t.Fatalf("NumLevels = %d, want 3", lv.NumLevels())
	}
	wantLevels := map[int32]int32{0: 2, 1: 1, 2: 0} // gate index -> level
	for gi, l := range lv.GateLevel {
		if wantLevels[int32(gi)] != l {
			t.Fatalf("GateLevel[%d] = %d, want %d", gi, l, wantLevels[int32(gi)])
		}
	}
	for l := 0; l < lv.NumLevels(); l++ {
		gates := lv.Level(l)
		if len(gates) != 1 {
			t.Fatalf("level %d has %d gates, want 1", l, len(gates))
		}
		if lv.GateLevel[gates[0]] != int32(l) {
			t.Fatalf("level %d contains gate %d of level %d", l, gates[0], lv.GateLevel[gates[0]])
		}
	}
	// Every gate's inputs must come from strictly lower levels (or sources),
	// and a level-l gate (l>0) must have at least one input at level l-1.
	for gi, g := range n.Gates {
		best := int32(-1)
		for i := 0; i < g.NIn(); i++ {
			if d := lv.DriverGate[g.In[i]]; d >= 0 {
				if lv.GateLevel[d] >= lv.GateLevel[gi] {
					t.Fatalf("gate %d (level %d) reads gate %d (level %d)", gi, lv.GateLevel[gi], d, lv.GateLevel[d])
				}
				if lv.GateLevel[d] > best {
					best = lv.GateLevel[d]
				}
			}
		}
		if lv.GateLevel[gi] != best+1 {
			t.Fatalf("gate %d level = %d, want %d", gi, lv.GateLevel[gi], best+1)
		}
	}
}

func TestLevelizeFanoutAndDrivers(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	ab := n.NewNet("ab")
	aa := n.NewNet("aa")
	out := n.NewNet("out")
	n.AddGate(logic.And, ab, a, b)   // gate 0
	n.AddGate(logic.Xor, aa, a, a)   // gate 1: net a on both pins
	n.AddGate(logic.Or, out, ab, aa) // gate 2
	lv, err := n.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	wantFan := map[NetID][]int32{
		a:   {0, 1, 1}, // duplicated pin appears twice
		b:   {0},
		ab:  {2},
		aa:  {2},
		out: nil,
	}
	for id, want := range wantFan {
		got := lv.NetFanout(id)
		if len(got) != len(want) {
			t.Fatalf("NetFanout(%s) = %v, want %v", n.Name(id), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("NetFanout(%s) = %v, want %v", n.Name(id), got, want)
			}
		}
	}
	wantDrv := map[NetID]int32{a: -1, b: -1, ab: 0, aa: 1, out: 2, n.Const0(): -1, n.Const1(): -1}
	for id, want := range wantDrv {
		if got := lv.DriverGate[id]; got != want {
			t.Fatalf("DriverGate[%s] = %d, want %d", n.Name(id), got, want)
		}
	}
	// The cache must be invalidated by structural growth.
	c := n.NewNet("c")
	n.AddGate(logic.Not, c, out)
	lv2, err := n.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	if len(lv2.NetFanout(out)) != 1 || lv2.DriverGate[c] != 3 {
		t.Fatal("Levelize cache not invalidated by AddGate")
	}
}

func TestPortLookups(t *testing.T) {
	n, in, _, s := buildToy()
	if got, ok := n.InputPort("in"); !ok || got != in {
		t.Fatal("InputPort failed")
	}
	if got, ok := n.OutputPort("state"); !ok || got != s {
		t.Fatal("OutputPort failed")
	}
	if _, ok := n.InputPort("nope"); ok {
		t.Fatal("phantom input")
	}
	if _, ok := n.OutputPort("nope"); ok {
		t.Fatal("phantom output")
	}
	ins := n.InputNets()
	if len(ins) != 2 || ins[0].Name != "in" || ins[1].Name != "rst" {
		t.Fatalf("InputNets = %v", ins)
	}
}

func TestMustNet(t *testing.T) {
	n, _, _, _ := buildToy()
	if n.MustNet("s") == Invalid {
		t.Fatal("MustNet existing failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing net")
		}
	}()
	n.MustNet("missing")
}

func TestTextRoundTrip(t *testing.T) {
	n, _, _, _ := buildToy()
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	n2, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read back: %v\n%s", err, buf.String())
	}
	s1, s2 := n.ComputeStats(), n2.ComputeStats()
	if s1.Gates != s2.Gates || s1.DFFs != s2.DFFs || s1.Inputs != s2.Inputs ||
		s1.Outputs != s2.Outputs || s1.Levels != s2.Levels {
		t.Fatalf("round trip stats mismatch: %+v vs %+v", s1, s2)
	}
	// Second round trip must be byte-identical (canonical form).
	var buf2 bytes.Buffer
	if err := Write(&buf2, n2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("serialization not canonical")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"input",                       // missing operand
		"frobnicate y a",              // unknown op
		"and y a",                     // wrong arity
		"dff q d rst=r en=e",          // missing rstval
		"dff q d rst=r en=e rstval=2", // bad rstval
		"dff q d bogus",               // malformed attribute
		"output x",                    // missing net
		"input const0",                // redeclares constant
		"not a a",                     // cycle (validate)
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", c)
		}
	}
}

func TestReadCreatesConstants(t *testing.T) {
	src := "net y\nand y const0 const1\noutput y y\n"
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Gates) != 1 {
		t.Fatalf("gates = %d", len(n.Gates))
	}
}

func TestWriteDOT(t *testing.T) {
	n, _, _, _ := buildToy()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, n); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "xor", "DFF"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}
