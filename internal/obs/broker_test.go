package obs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// TestBrokerOrderedDelivery: a subscriber sees every published event in
// order with contiguous sequence numbers and no reported loss.
func TestBrokerOrderedDelivery(t *testing.T) {
	b := NewBroker(16)
	b.Open("j1")
	sub, err := b.Subscribe("j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 10; i++ {
		b.Publish("j1", "progress", []byte(fmt.Sprintf("%d", i)))
	}
	for i := 0; i < 10; i++ {
		ev, lost, err := sub.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if lost != 0 {
			t.Fatalf("event %d: unexpected loss %d", i, lost)
		}
		if ev.Seq != uint64(i+1) || string(ev.Data) != fmt.Sprintf("%d", i) {
			t.Fatalf("event %d: got seq=%d data=%q", i, ev.Seq, ev.Data)
		}
	}
}

// TestBrokerGapOnOverflow: a subscriber that falls behind a full ring gets
// the retained tail plus an exact count of the evicted events.
func TestBrokerGapOnOverflow(t *testing.T) {
	b := NewBroker(4)
	b.Open("j")
	sub, err := b.Subscribe("j", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 10; i++ { // seqs 1..10; ring keeps 7..10
		b.Publish("j", "e", nil)
	}
	ev, lost, err := sub.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if lost != 6 || ev.Seq != 7 {
		t.Fatalf("got lost=%d seq=%d, want lost=6 seq=7", lost, ev.Seq)
	}
	for want := uint64(8); want <= 10; want++ {
		ev, lost, err := sub.Next(context.Background())
		if err != nil || lost != 0 || ev.Seq != want {
			t.Fatalf("got seq=%d lost=%d err=%v, want seq=%d", ev.Seq, lost, err, want)
		}
	}
}

// TestBrokerResume: subscribing with a Last-Event-ID cursor replays only
// later events; a cursor past the newest event clamps instead of hanging.
func TestBrokerResume(t *testing.T) {
	b := NewBroker(16)
	for i := 0; i < 5; i++ {
		b.Publish("j", "e", nil)
	}
	sub, err := b.Subscribe("j", 3)
	if err != nil {
		t.Fatal(err)
	}
	ev, lost, err := sub.Next(context.Background())
	if err != nil || lost != 0 || ev.Seq != 4 {
		t.Fatalf("resume after 3: got seq=%d lost=%d err=%v", ev.Seq, lost, err)
	}
	sub.Close()

	// A bogus future cursor (previous server incarnation) clamps to the
	// current head and delivers the next published event.
	sub2, err := b.Subscribe("j", 999)
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	done := make(chan StreamEvent, 1)
	go func() {
		ev, _, err := sub2.Next(context.Background())
		if err == nil {
			done <- ev
		}
	}()
	time.Sleep(10 * time.Millisecond)
	b.Publish("j", "late", nil)
	select {
	case ev := <-done:
		if ev.Type != "late" || ev.Seq != 6 {
			t.Fatalf("clamped cursor got %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("clamped subscriber never woke")
	}
}

// TestBrokerCloseDrains: a closed topic still serves its retained ring,
// then reports ErrStreamClosed; publishing after close is a no-op.
func TestBrokerCloseDrains(t *testing.T) {
	b := NewBroker(8)
	b.Publish("j", "a", nil)
	b.Publish("j", "verdict", nil)
	b.CloseTopic("j")
	if seq := b.Publish("j", "late", nil); seq != 0 {
		t.Fatalf("publish after close returned seq %d, want 0", seq)
	}
	sub, err := b.Subscribe("j", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 2; i++ {
		if _, _, err := sub.Next(context.Background()); err != nil {
			t.Fatalf("drain event %d: %v", i, err)
		}
	}
	if _, _, err := sub.Next(context.Background()); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("got %v, want ErrStreamClosed", err)
	}
}

// TestBrokerBlockedSubscriberWakes: Next parked on an empty topic wakes on
// publish and on close, and honors context cancellation.
func TestBrokerBlockedSubscriberWakes(t *testing.T) {
	b := NewBroker(8)
	b.Open("j")
	sub, err := b.Subscribe("j", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := sub.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}

	got := make(chan error, 1)
	go func() {
		_, _, err := sub.Next(context.Background())
		got <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Publish("j", "e", nil)
	if err := <-got; err != nil {
		t.Fatalf("publish wake: %v", err)
	}

	go func() {
		_, _, err := sub.Next(context.Background())
		got <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.CloseAll()
	if err := <-got; !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("close wake: got %v, want ErrStreamClosed", err)
	}
}

// TestBrokerSubscriberAccounting: Subscribers tracks open subscriptions and
// Close is idempotent.
func TestBrokerSubscriberAccounting(t *testing.T) {
	b := NewBroker(8)
	b.Open("j")
	s1, _ := b.Subscribe("j", 0)
	s2, _ := b.Subscribe("j", 0)
	if n := b.Subscribers(); n != 2 {
		t.Fatalf("subscribers=%d, want 2", n)
	}
	s1.Close()
	s1.Close() // idempotent
	if n := b.Subscribers(); n != 1 {
		t.Fatalf("subscribers=%d after close, want 1", n)
	}
	s2.Close()
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("subscribers=%d after both closed, want 0", n)
	}
	if _, err := b.Subscribe("nope", 0); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("unknown topic: got %v, want ErrNoTopic", err)
	}
}

// TestBrokerConcurrent: many publishers and subscribers race under -race;
// every subscriber observes strictly increasing sequence numbers and
// accounted losses (delivered + lost spans the full range).
func TestBrokerConcurrent(t *testing.T) {
	b := NewBroker(32)
	b.Open("j")
	const publishers, events, readers = 4, 200, 4
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		sub, err := b.Subscribe("j", 0)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sub.Close()
			var prev, seen, lostTotal uint64
			for {
				ev, lost, err := sub.Next(context.Background())
				if errors.Is(err, ErrStreamClosed) {
					break
				}
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if ev.Seq <= prev {
					t.Errorf("sequence not increasing: %d after %d", ev.Seq, prev)
					return
				}
				if ev.Seq != prev+lost+1 {
					t.Errorf("unaccounted gap: seq %d after %d with lost=%d", ev.Seq, prev, lost)
					return
				}
				prev, seen, lostTotal = ev.Seq, seen+1, lostTotal+lost
			}
			if seen+lostTotal != publishers*events {
				t.Errorf("delivered %d + lost %d != published %d", seen, lostTotal, publishers*events)
			}
		}()
	}
	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			for i := 0; i < events; i++ {
				b.Publish("j", "e", nil)
			}
		}()
	}
	pubWG.Wait()
	b.CloseTopic("j")
	wg.Wait()
}

// TestSpansQuantile: spans land in the stage-labeled histogram and the
// interpolated quantile estimate is sane.
func TestSpansQuantile(t *testing.T) {
	reg := NewRegistry()
	sp := reg.Spans("test_stage_seconds", "test")
	for i := 0; i < 100; i++ {
		sp.Observe("engine-run", 2*time.Millisecond)
	}
	sp.Observe("engine-run", 2*time.Second)
	if n := sp.Count("engine-run"); n != 101 {
		t.Fatalf("count=%d, want 101", n)
	}
	p50 := sp.Quantile("engine-run", 0.50)
	if p50 < 0.001 || p50 > 0.005 {
		t.Fatalf("p50=%v, want within the 2ms bucket range", p50)
	}
	p99 := sp.Quantile("engine-run", 0.995)
	if p99 < 1 || p99 > 2.5 {
		t.Fatalf("p99.5=%v, want within the 2s bucket range", p99)
	}
	if !math.IsNaN(sp.Quantile("no-such-stage", 0.5)) {
		t.Fatal("quantile of an empty stage should be NaN")
	}

	span := sp.Start("persist")
	time.Sleep(time.Millisecond)
	if d := span.End(); d <= 0 {
		t.Fatalf("span duration %v", d)
	}
	if n := sp.Count("persist"); n != 1 {
		t.Fatalf("persist count=%d, want 1", n)
	}
}
