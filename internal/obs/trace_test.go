package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/asm"
	"repro/internal/glift"
)

// taintedSrc is the Figure 4/9 pattern: a tainted-input-derived loop bound
// (forks) plus a tainted store offset (violations), so one run exercises
// fork, merge/prune, violation and path events.
const taintedSrc = `
start:  mov &0x0020, r5      ; tainted P1IN
        and #3, r5
loop:   dec r5
        jnz loop             ; tainted condition: forks
        mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        mov #500, 0(r14)     ; tainted store offset: C2 violation
end:    jmp end
`

func taintedReport(t *testing.T, tr *ExplorationTrace) *glift.Report {
	t.Helper()
	img, err := asm.AssembleSource(taintedSrc)
	if err != nil {
		t.Fatal(err)
	}
	pol := &glift.Policy{Name: "trace-test", TaintedInPorts: []int{0}}
	rep, err := glift.Analyze(img, pol, &glift.Options{Tracer: tr.Record})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestTraceCountsMatchStats: the recorder's whole-run per-kind counts must
// equal the report's Stats counters exactly — every fork/merge/prune the
// engine counts emits exactly one event, and vice versa.
func TestTraceCountsMatchStats(t *testing.T) {
	tr := NewExplorationTrace(0)
	rep := taintedReport(t, tr)
	s := rep.Stats
	if s.Forks == 0 || s.Prunes+s.Merges == 0 {
		t.Fatalf("benchmark not exercising the engine: %s", s)
	}
	checks := []struct {
		kind glift.TraceEventKind
		want uint64
	}{
		{glift.EvPathStart, uint64(s.Paths)},
		{glift.EvPathEnd, uint64(s.Paths)},
		{glift.EvFork, uint64(s.Forks)},
		{glift.EvMerge, uint64(s.Merges)},
		{glift.EvPrune, uint64(s.Prunes)},
		{glift.EvEscalation, uint64(s.Escalations)},
		{glift.EvViolation, uint64(len(rep.Violations))},
	}
	for _, c := range checks {
		if got := tr.Count(c.kind); got != c.want {
			t.Errorf("%s events: got %d, stats say %d", c.kind, got, c.want)
		}
	}
	if tr.Dropped() != 0 {
		t.Errorf("nothing should be evicted at the default capacity, dropped %d", tr.Dropped())
	}
}

// TestWriteChromeTrace: the serialized trace is valid Chrome trace_event
// JSON, time-ordered, with balanced path spans.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewExplorationTrace(0)
	rep := taintedReport(t, tr)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	open, begins, forks := 0, 0, 0
	prev := -1.0
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "B":
			begins++
			open++
		case "E":
			if open == 0 {
				t.Fatalf("event %d: unbalanced span end", i)
			}
			open--
		}
		if ev.Name == "fork" {
			forks++
		}
		if ev.TS < prev {
			t.Fatalf("event %d (%s): timestamp %v before %v", i, ev.Name, ev.TS, prev)
		}
		prev = ev.TS
	}
	if open != 0 {
		t.Errorf("%d path spans never closed", open)
	}
	if begins != rep.Stats.Paths {
		t.Errorf("path spans %d != Stats.Paths %d", begins, rep.Stats.Paths)
	}
	if forks != rep.Stats.Forks {
		t.Errorf("fork events %d != Stats.Forks %d", forks, rep.Stats.Forks)
	}
}

// TestTraceRingEviction: a tiny ring keeps the most recent events, the
// whole-run totals survive eviction, and the serialized form stays balanced
// even when a path's begin event was evicted.
func TestTraceRingEviction(t *testing.T) {
	tr := NewExplorationTrace(4)
	for i := 0; i < 10; i++ {
		tr.Record(glift.TraceEvent{Kind: glift.EvFork, Cycle: uint64(i), WallNS: int64(i)})
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d, want 10/6", tr.Total(), tr.Dropped())
	}
	if tr.Count(glift.EvFork) != 10 {
		t.Errorf("per-kind count lost evicted events: %d", tr.Count(glift.EvFork))
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Cycle != want {
			t.Errorf("event %d: cycle %d, want %d (most recent window, in order)", i, ev.Cycle, want)
		}
	}

	// An EvPathEnd whose begin was evicted must not serialize an orphan "E".
	tr2 := NewExplorationTrace(2)
	tr2.Record(glift.TraceEvent{Kind: glift.EvPathStart})
	tr2.Record(glift.TraceEvent{Kind: glift.EvFork, WallNS: 1})
	tr2.Record(glift.TraceEvent{Kind: glift.EvPathEnd, WallNS: 2}) // evicts the start
	var buf bytes.Buffer
	if err := tr2.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "E" {
			t.Error("orphan span end serialized after its begin was evicted")
		}
	}
}
