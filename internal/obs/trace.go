package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/glift"
)

// DefaultTraceCap bounds a trace recorder that was constructed with no
// explicit capacity: 256k events is a few tens of MB serialized — enough
// for any Table-1 benchmark while keeping a runaway exploration bounded.
const DefaultTraceCap = 1 << 18

// ExplorationTrace is a ring-buffered sink for the engine's structured
// exploration events. Install it with Options.Tracer = t.Record; after the
// run, WriteChromeTrace serializes the retained events as Chrome
// trace_event JSON for chrome://tracing or Perfetto ("Open trace file").
//
// The ring keeps the most recent events when the run overflows the
// capacity (the interesting dynamics — state-table blowup, widening
// escalations — cluster at the end of a struggling run); per-kind counts
// and the total cover the whole run regardless of eviction. Record is safe
// for concurrent use, although a single engine delivers sequentially.
type ExplorationTrace struct {
	mu     sync.Mutex
	cap    int
	events []glift.TraceEvent
	start  int // ring read position once the buffer is full
	total  uint64
	counts [glift.NumTraceEventKinds]uint64
}

// NewExplorationTrace returns a recorder retaining at most capacity events
// (<= 0 selects DefaultTraceCap).
func NewExplorationTrace(capacity int) *ExplorationTrace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &ExplorationTrace{cap: capacity}
}

// Record appends one event; the signature matches glift.Options.Tracer.
func (t *ExplorationTrace) Record(ev glift.TraceEvent) {
	t.mu.Lock()
	t.total++
	if int(ev.Kind) < len(t.counts) {
		t.counts[ev.Kind]++
	}
	if len(t.events) < t.cap {
		t.events = append(t.events, ev)
	} else {
		t.events[t.start] = ev
		t.start = (t.start + 1) % t.cap
	}
	t.mu.Unlock()
}

// Events returns the retained events in recording order.
func (t *ExplorationTrace) Events() []glift.TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]glift.TraceEvent, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Total is the number of events recorded over the whole run, including
// any evicted from the ring.
func (t *ExplorationTrace) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped is the number of events evicted by the ring bound.
func (t *ExplorationTrace) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.events))
}

// Count returns how many events of one kind were recorded over the whole
// run (eviction does not lower it).
func (t *ExplorationTrace) Count(k glift.TraceEventKind) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(k) >= len(t.counts) {
		return 0
	}
	return t.counts[k]
}

// chromeEvent is one entry of the Chrome trace_event JSON array.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace_event format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes the retained events in the Chrome
// trace_event JSON format. Path start/end events become B/E duration
// slices (so each explored path shows as a span on the timeline); every
// other kind becomes a thread-scoped instant event carrying its cycle
// count, PC and kind-specific argument.
func (t *ExplorationTrace) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := chromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1, TID: 1,
		Args: map[string]any{"name": "glift exploration"},
	})
	open := 0 // path B/E nesting depth in the retained window
	for _, ev := range events {
		ce := chromeEvent{
			Name:  ev.Kind.String(),
			TS:    float64(ev.WallNS) / 1e3,
			PID:   1,
			TID:   1,
			Scope: "t",
			Phase: "i",
			Args: map[string]any{
				"cycle": ev.Cycle,
				"pc":    fmt.Sprintf("%#04x", ev.PC),
			},
		}
		switch ev.Kind {
		case glift.EvPathStart:
			ce.Name, ce.Phase, ce.Scope = "path", "B", ""
			ce.Args["pending"] = ev.Aux
			open++
		case glift.EvPathEnd:
			if open == 0 {
				continue // its B event was evicted by the ring; drop the E
			}
			open--
			ce.Name, ce.Phase, ce.Scope = "path", "E", ""
			ce.Args = nil
		case glift.EvFork:
			ce.Args["pending"] = ev.Aux
		case glift.EvMerge, glift.EvPrune:
			ce.Args["table"] = ev.Aux
		case glift.EvEscalation:
			ce.Args["widen_after"] = ev.Aux
			ce.Args["detail"] = ev.Detail
		case glift.EvViolation, glift.EvBudget:
			ce.Args["detail"] = ev.Detail
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
