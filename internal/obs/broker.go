package obs

import (
	"context"
	"errors"
	"sync"
)

// ErrStreamClosed is returned by Subscription.Next once a closed topic has
// been fully drained: no further events will ever arrive.
var ErrStreamClosed = errors.New("obs: stream closed")

// ErrNoTopic is returned by Subscribe for a topic the broker has never seen.
var ErrNoTopic = errors.New("obs: no such topic")

// DefaultRingEvents bounds a topic created by a Broker configured with no
// explicit per-topic capacity. 512 events comfortably retains a job's
// lifecycle transitions plus its progress stream; a trace-sampled job can
// overflow it, which is exactly what the gap-marker protocol is for.
const DefaultRingEvents = 512

// StreamEvent is one published event on a broker topic. Seq is 1-based and
// strictly increasing per topic — the resume cursor of the SSE protocol.
// Data is opaque to the broker (the service publishes JSON).
type StreamEvent struct {
	Seq  uint64
	Type string
	Data []byte
}

// Broker is a bounded in-process pub/sub hub: named topics, each a fixed-
// capacity ring of StreamEvents with monotonically increasing sequence
// numbers. Publishing never blocks and never drops the newest event —
// under backpressure the oldest retained events are evicted and a slow
// subscriber observes the loss as a gap (Subscription.Next reports how many
// events it skipped), never as silent corruption. Subscribers pull at their
// own pace through a per-subscription cursor, which is what makes
// Last-Event-ID resume after a reconnect a one-line operation.
//
// All methods are safe for concurrent use.
type Broker struct {
	ringCap int

	mu     sync.Mutex
	topics map[string]*topic
	subs   int
}

// topic is one event stream: a ring of the most recent events plus a
// broadcast channel subscribers park on while the ring is drained.
type topic struct {
	mu      sync.Mutex
	ring    []StreamEvent
	start   int // ring index of the oldest retained event
	count   int
	nextSeq uint64
	closed  bool
	wake    chan struct{} // closed and replaced on every publish/close
}

// NewBroker returns a broker whose topics retain at most ringEvents events
// each (<= 0 selects DefaultRingEvents).
func NewBroker(ringEvents int) *Broker {
	if ringEvents <= 0 {
		ringEvents = DefaultRingEvents
	}
	return &Broker{ringCap: ringEvents, topics: make(map[string]*topic)}
}

// Open creates a topic if it does not exist yet. Creating the topic before
// the first publish lets early subscribers attach without racing the
// publisher.
func (b *Broker) Open(name string) {
	b.mu.Lock()
	if _, ok := b.topics[name]; !ok {
		b.topics[name] = &topic{
			ring: make([]StreamEvent, b.ringCap),
			wake: make(chan struct{}),
		}
	}
	b.mu.Unlock()
}

func (b *Broker) topic(name string) *topic {
	b.mu.Lock()
	t := b.topics[name]
	b.mu.Unlock()
	return t
}

// Publish appends one event to a topic and returns its sequence number. The
// topic is created on first use. Publishing to a closed topic is a no-op
// returning 0: the close was the terminal event, nothing may follow it.
func (b *Broker) Publish(name, typ string, data []byte) uint64 {
	b.Open(name)
	t := b.topic(name)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return 0
	}
	t.nextSeq++
	ev := StreamEvent{Seq: t.nextSeq, Type: typ, Data: data}
	if t.count < len(t.ring) {
		t.ring[(t.start+t.count)%len(t.ring)] = ev
		t.count++
	} else {
		t.ring[t.start] = ev
		t.start = (t.start + 1) % len(t.ring)
	}
	seq := ev.Seq
	close(t.wake)
	t.wake = make(chan struct{})
	t.mu.Unlock()
	return seq
}

// CloseTopic marks a topic terminal: subscribers drain the retained ring and
// then get ErrStreamClosed. Closing an unknown or already-closed topic is a
// no-op.
func (b *Broker) CloseTopic(name string) {
	t := b.topic(name)
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.closed {
		t.closed = true
		close(t.wake)
		t.wake = make(chan struct{})
	}
	t.mu.Unlock()
}

// CloseAll closes every topic — the shutdown backstop that releases any
// subscriber still parked when the server stops.
func (b *Broker) CloseAll() {
	b.mu.Lock()
	names := make([]string, 0, len(b.topics))
	for name := range b.topics {
		names = append(names, name)
	}
	b.mu.Unlock()
	for _, name := range names {
		b.CloseTopic(name)
	}
}

// Topics returns the number of topics the broker currently holds.
func (b *Broker) Topics() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.topics)
}

// Subscribers returns the number of open subscriptions across all topics.
func (b *Broker) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.subs
}

// Subscription is one reader's cursor into a topic. Not safe for concurrent
// use by multiple goroutines (each reader subscribes for itself).
type Subscription struct {
	b      *Broker
	t      *topic
	cursor uint64 // next sequence number to deliver
	closed bool
}

// Subscribe attaches a reader to a topic, resuming after sequence number
// `after` (0: from the oldest retained event). A cursor pointing past the
// newest event — e.g. a Last-Event-ID from a previous server incarnation —
// is clamped so the reader picks up with whatever is published next.
func (b *Broker) Subscribe(name string, after uint64) (*Subscription, error) {
	t := b.topic(name)
	if t == nil {
		return nil, ErrNoTopic
	}
	t.mu.Lock()
	if after > t.nextSeq {
		after = t.nextSeq
	}
	t.mu.Unlock()
	b.mu.Lock()
	b.subs++
	b.mu.Unlock()
	return &Subscription{b: b, t: t, cursor: after + 1}, nil
}

// Next blocks until the next event is available and returns it together
// with the number of events that were evicted before it could be read (0:
// no loss; a positive value is the subscriber's cue to surface a gap
// marker). It returns ErrStreamClosed once a closed topic is drained, and
// ctx.Err when the context ends first.
func (s *Subscription) Next(ctx context.Context) (StreamEvent, uint64, error) {
	for {
		s.t.mu.Lock()
		var lost uint64
		if s.t.count > 0 {
			oldest := s.t.ring[s.t.start].Seq
			latest := oldest + uint64(s.t.count) - 1
			if s.cursor < oldest {
				lost = oldest - s.cursor
				s.cursor = oldest
			}
			if s.cursor <= latest {
				ev := s.t.ring[(s.t.start+int(s.cursor-oldest))%len(s.t.ring)]
				s.cursor++
				s.t.mu.Unlock()
				return ev, lost, nil
			}
		}
		if s.t.closed {
			s.t.mu.Unlock()
			return StreamEvent{}, 0, ErrStreamClosed
		}
		wake := s.t.wake
		s.t.mu.Unlock()
		select {
		case <-ctx.Done():
			return StreamEvent{}, 0, ctx.Err()
		case <-wake:
		}
	}
}

// Close releases the subscription. Safe to call more than once.
func (s *Subscription) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.b.mu.Lock()
	s.b.subs--
	s.b.mu.Unlock()
}
