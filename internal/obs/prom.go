package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// labelEscaper applies the exposition format's label-value escaping.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4). Families are sorted by name and
// children by label values, so the output is deterministic for a
// deterministic sequence of updates — which is what makes golden-file
// tests over the endpoint possible.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

// write renders one family: HELP/TYPE header then one line per series
// (several for histograms), children sorted by label values.
func (f *family) write(w *bufio.Writer) {
	w.WriteString("# HELP " + f.name + " " + f.help + "\n")
	w.WriteString("# TYPE " + f.name + " " + typeNames[f.typ] + "\n")

	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()

	for _, c := range children {
		switch f.typ {
		case typeCounter, typeGauge:
			w.WriteString(f.name)
			writeLabels(w, f.labels, c.labelVals, "")
			w.WriteString(" " + formatFloat(math.Float64frombits(c.valBits.Load())) + "\n")
		case typeHistogram:
			// Per-bucket counts are stored non-cumulative; the exposition
			// format wants cumulative counts ending in the +Inf bucket.
			var cum uint64
			for i, ub := range f.buckets {
				cum += c.bucketCounts[i].Load()
				w.WriteString(f.name + "_bucket")
				writeLabels(w, f.labels, c.labelVals, formatFloat(ub))
				w.WriteString(" " + strconv.FormatUint(cum, 10) + "\n")
			}
			count := c.count.Load()
			w.WriteString(f.name + "_bucket")
			writeLabels(w, f.labels, c.labelVals, "+Inf")
			w.WriteString(" " + strconv.FormatUint(count, 10) + "\n")
			w.WriteString(f.name + "_sum")
			writeLabels(w, f.labels, c.labelVals, "")
			w.WriteString(" " + formatFloat(math.Float64frombits(c.sumBits.Load())) + "\n")
			w.WriteString(f.name + "_count")
			writeLabels(w, f.labels, c.labelVals, "")
			w.WriteString(" " + strconv.FormatUint(count, 10) + "\n")
		}
	}
}

// writeLabels renders {k="v",...}, appending an le="…" bucket label when le
// is non-empty; no braces are emitted for a label-free series.
func writeLabels(w *bufio.Writer, names, vals []string, le string) {
	if len(names) == 0 && le == "" {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(n + `="` + labelEscaper.Replace(vals[i]) + `"`)
	}
	if le != "" {
		if len(names) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(`le="` + le + `"`)
	}
	w.WriteByte('}')
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
