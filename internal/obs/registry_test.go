package obs

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenRegistry builds a registry with every metric shape and fixed,
// deterministic values, so the exposition can be compared byte-for-byte.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests handled.")
	c.Add(41)
	c.Inc()
	cv := r.CounterVec("test_jobs_total", "Jobs by verdict.", "verdict")
	cv.With("verified").Add(3)
	cv.With("violations").Add(2)
	cv.With(`weird"label\n`).Inc() // exercises label escaping
	g := r.Gauge("test_queue_depth", "Jobs waiting.")
	g.Set(7)
	g.Add(-2)
	gv := r.GaugeVec("test_pool_size", "Pool size by kind.", "kind")
	gv.With("worker").Set(4)
	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	hv := r.HistogramVec("test_run_seconds", "Run time by verdict.", []float64{1, 60}, "verdict")
	hv.With("verified").Observe(0.25)
	hv.With("verified").Observe(90)
	return r
}

// TestWritePrometheusGolden compares the full text exposition against the
// checked-in golden file (regenerate with go test ./internal/obs -update).
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
	// Determinism: a second registry built the same way writes the same bytes.
	var buf2 bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two identical registries produced different expositions")
	}
}

// parseExposition picks every sample line (name{labels} value) apart; it is
// deliberately independent of the writer's internals.
func parseExposition(t *testing.T, text string) []struct {
	name, labels string
	value        float64
} {
	t.Helper()
	var out []struct {
		name, labels string
		value        float64
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name, labels := series, ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name, labels = series[:i], series[i:]
		}
		out = append(out, struct {
			name, labels string
			value        float64
		}{name, labels, v})
	}
	return out
}

// TestHistogramBucketsCumulative: for every histogram series, bucket counts
// are non-decreasing in le order and the +Inf bucket equals _count.
func TestHistogramBucketsCumulative(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.String())

	// Buckets are written in le order per child, so grouping by the labels
	// minus le while preserving order is enough to check monotonicity.
	type key struct{ name, labels string }
	lastBucket := map[key]float64{}
	infBucket := map[key]float64{}
	counts := map[key]float64{}
	stripLE := func(labels string) string {
		i := strings.Index(labels, "le=\"")
		if i < 0 {
			return labels
		}
		j := strings.IndexByte(labels[i+4:], '"')
		rest := labels[:i] + labels[i+4+j+1:]
		rest = strings.Replace(rest, ",}", "}", 1) // le was the last label
		if rest == "{}" {
			rest = ""
		}
		return rest
	}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			k := key{strings.TrimSuffix(s.name, "_bucket"), stripLE(s.labels)}
			if prev, ok := lastBucket[k]; ok && s.value < prev {
				t.Errorf("%s%s: bucket count %v decreased from %v", s.name, s.labels, s.value, prev)
			}
			lastBucket[k] = s.value
			if strings.Contains(s.labels, `le="+Inf"`) {
				infBucket[k] = s.value
			}
		case strings.HasSuffix(s.name, "_count"):
			counts[key{strings.TrimSuffix(s.name, "_count"), s.labels}] = s.value
		}
	}
	if len(infBucket) == 0 {
		t.Fatal("no +Inf buckets found")
	}
	for k, inf := range infBucket {
		if c, ok := counts[k]; !ok || c != inf {
			t.Errorf("%s%s: +Inf bucket %v != _count %v", k.name, k.labels, inf, counts[k])
		}
	}
}

// TestRegistryConcurrency hammers every metric type from many goroutines
// while scraping concurrently; run under -race this is the data-race proof,
// and the final counts must be exact (no lost updates).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "c")
	cv := r.CounterVec("ccv_total", "cv", "l")
	g := r.Gauge("cg", "g")
	h := r.Histogram("ch_seconds", "h", []float64{1, 10})

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := fmt.Sprintf("w%d", w%3)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				cv.With(lbl).Add(2)
				g.Add(1)
				g.SetMax(float64(i))
				h.Observe(float64(i % 20))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent scrapes while writers run
		for {
			select {
			case <-done:
				return
			default:
				if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(done)

	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Errorf("counter lost updates: got %v want %d", got, total)
	}
	if got := g.Value(); got < float64(perWorker-1) {
		t.Errorf("gauge SetMax went backwards: %v", got)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram lost observations: got %d want %d", got, total)
	}
	var sum float64
	for w := 0; w < 3; w++ {
		sum += cv.With(fmt.Sprintf("w%d", w)).Value()
	}
	if sum != 2*total {
		t.Errorf("counter vec lost updates: got %v want %d", sum, 2*total)
	}
}

// TestReRegistrationAndMismatch: re-registering an identical schema returns
// the same series; a conflicting schema panics loudly instead of silently
// splitting the family.
func TestReRegistrationAndMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help")
	b := r.Counter("dup_total", "help")
	a.Inc()
	if b.Value() != 1 {
		t.Error("re-registration did not return the same series")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("dup_total", "help")
}
