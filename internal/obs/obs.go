// Package obs is the repository's zero-dependency observability layer:
// a metrics registry (counters, gauges, fixed-bucket histograms, with
// label support) that renders the Prometheus text exposition format, and
// an exploration trace recorder that turns the glift engine's structured
// exploration events (forks, merges, prunes, widening escalations,
// violations, budget crossings) into Chrome trace_event JSON viewable in
// chrome://tracing or Perfetto.
//
// The package deliberately depends on nothing outside the standard
// library (plus internal/glift for the trace event types), so it can sit
// under every layer — the gliftd service, the CLIs, tests — without
// pulling a client library into the module. Metric updates are lock-free
// (atomics) after the first registration of a series, so instrumented hot
// paths pay one map lookup at registration time and an atomic add per
// update afterwards; uninstalled hooks cost a nil check.
package obs
