package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType discriminates the three supported metric families.
type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

var typeNames = [...]string{"counter", "gauge", "histogram"}

// DefBuckets are the default request-latency histogram buckets in seconds
// (the conventional Prometheus spread from 1ms to 10s).
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// RunBuckets suit whole-analysis durations: engine runs range from
// milliseconds (cache-warm micro-benchmarks) to many minutes.
var RunBuckets = []float64{0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use; registering
// an existing name returns the existing family (a schema mismatch panics —
// series names are compile-time constants, so a mismatch is a programming
// error, not an operational one).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

// family is one named metric family: its schema plus a child per distinct
// label-value combination.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogram upper bounds, ascending; +Inf implicit

	mu       sync.RWMutex
	children map[string]*child
}

// child carries the numeric state of one series. Counter and gauge values
// live in valBits (float64 bits); histograms additionally keep per-bucket
// (non-cumulative) counts, the observation count and the sum. Everything
// is atomic so updates never take a lock.
type child struct {
	labelVals    []string
	valBits      atomic.Uint64
	bucketCounts []atomic.Uint64
	count        atomic.Uint64
	sumBits      atomic.Uint64
}

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (r *Registry) family(name, help string, typ metricType, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*child),
	}
	if typ == typeHistogram {
		f.buckets = append([]float64(nil), buckets...)
		sort.Float64s(f.buckets)
		for i := 1; i < len(f.buckets); i++ {
			if f.buckets[i] == f.buckets[i-1] {
				panic(fmt.Sprintf("obs: histogram %q has duplicate bucket %v", name, f.buckets[i]))
			}
		}
	}
	r.families[name] = f
	return f
}

// child returns (creating on first use) the series for one label-value
// combination. The fast path is a read-locked map hit.
func (f *family) child(vals []string) *child {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\x1f")
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.children[key]; c != nil {
		return c
	}
	c = &child{labelVals: append([]string(nil), vals...)}
	if f.typ == typeHistogram {
		c.bucketCounts = make([]atomic.Uint64, len(f.buckets))
	}
	f.children[key] = c
	return c
}

// Counter is a monotonically increasing series.
type Counter struct{ c *child }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (panics when negative: counters are monotonic by contract).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decremented")
	}
	addFloat(&c.c.valBits, v)
}

// Value returns the current value (tests and JSON mirrors).
func (c *Counter) Value() float64 { return math.Float64frombits(c.c.valBits.Load()) }

// Gauge is a series that can go up and down.
type Gauge struct{ c *child }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.c.valBits.Store(math.Float64bits(v)) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) { addFloat(&g.c.valBits, v) }

// SetMax raises the gauge to v if v exceeds the current value (a
// high-water mark; atomic against concurrent SetMax calls).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.c.valBits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.c.valBits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.c.valBits.Load()) }

// Histogram is a fixed-bucket distribution series.
type Histogram struct {
	f *family
	c *child
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.f.buckets {
		if v <= ub {
			h.c.bucketCounts[i].Add(1)
			break
		}
	}
	h.c.count.Add(1)
	addFloat(&h.c.sumBits, v)
}

// Count returns the number of observations (tests).
func (h *Histogram) Count() uint64 { return h.c.count.Load() }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the series for the given label values (created on first use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{c: v.f.child(labelValues)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the series for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{c: v.f.child(labelValues)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the series for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{f: v.f, c: v.f.child(labelValues)}
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, typeCounter, nil, nil)
	return &Counter{c: f.child(nil)}
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, typeCounter, labels, nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, typeGauge, nil, nil)
	return &Gauge{c: f.child(nil)}
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, typeGauge, labels, nil)}
}

// Histogram registers (or fetches) an unlabeled fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, typeHistogram, nil, buckets)
	return &Histogram{f: f, c: f.child(nil)}
}

// HistogramVec registers (or fetches) a labeled fixed-bucket histogram
// family. Every child shares the family's buckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, typeHistogram, labels, buckets)}
}
