package obs

import (
	"math"
	"time"
)

// StageBuckets suit per-stage service latencies: queue waits and persist
// fsyncs live in the sub-millisecond to tens-of-milliseconds range while
// engine runs stretch to minutes, so the spread covers 100µs to 5 minutes.
var StageBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Spans records named per-stage latencies into one fixed-bucket histogram
// family labeled by stage — the primitive behind the service's
// queue-wait / engine-run / persist / cache-hit timing. A Spans is cheap to
// share: it is a thin handle over a registry HistogramVec.
type Spans struct {
	hv *HistogramVec
}

// Spans registers (or fetches) a stage-labeled histogram family on the
// registry using StageBuckets.
func (r *Registry) Spans(name, help string) *Spans {
	return &Spans{hv: r.HistogramVec(name, help, StageBuckets, "stage")}
}

// Start opens a span for one stage; End records it.
func (s *Spans) Start(stage string) *Span {
	return &Span{spans: s, stage: stage, start: time.Now()}
}

// Observe records an already-measured stage duration.
func (s *Spans) Observe(stage string, d time.Duration) {
	s.hv.With(stage).Observe(d.Seconds())
}

// Quantile estimates the q-quantile (0 < q < 1) of one stage's recorded
// distribution; see Histogram.Quantile.
func (s *Spans) Quantile(stage string, q float64) float64 {
	return s.hv.With(stage).Quantile(q)
}

// Count returns how many spans one stage has recorded.
func (s *Spans) Count(stage string) uint64 {
	return s.hv.With(stage).Count()
}

// Span is one in-flight stage measurement.
type Span struct {
	spans *Spans
	stage string
	start time.Time
}

// End records the span and returns its duration. Recording twice would
// double-count, so End is one-shot by convention (the service calls it
// exactly once per stage).
func (sp *Span) End() time.Duration {
	d := time.Since(sp.start)
	sp.spans.Observe(sp.stage, d)
	return d
}

// Quantile estimates the q-quantile (0 < q < 1) of the recorded
// distribution by linear interpolation within the bucket that contains it,
// the standard Prometheus histogram_quantile estimate. With no
// observations it returns NaN; a quantile landing in the overflow bucket
// (beyond the last upper bound) returns the last upper bound — fixed-bucket
// histograms cannot resolve further, which is why budget gates compare
// against exact client-side samples and use this only as a server-side
// cross-check.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.c.count.Load()
	if total == 0 || q <= 0 || q >= 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum, prevCum uint64
	for i, ub := range h.f.buckets {
		prevCum = cum
		cum += h.c.bucketCounts[i].Load()
		if float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.f.buckets[i-1]
			}
			if cum == prevCum {
				return ub
			}
			return lo + (ub-lo)*(rank-float64(prevCum))/float64(cum-prevCum)
		}
	}
	// The quantile falls in the implicit +Inf bucket.
	return h.f.buckets[len(h.f.buckets)-1]
}
