package core

import (
	"testing"

	"repro/internal/asm"
)

// The alias surface must be usable end to end.
func TestCoreSurface(t *testing.T) {
	img, err := asm.AssembleSource(`
start:  mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        mov #500, 0(r14)
done:   jmp done
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(img, &Policy{
		Name:           "integrity",
		TaintedInPorts: []int{0},
		TaintedData:    []AddrRange{{Lo: 0x0400, Hi: 0x0800}},
	}, &Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Secure() {
		t.Fatal("vulnerable program should not verify")
	}
	if len(rep.ByKind(C2MemoryEscape)) == 0 {
		t.Fatalf("expected a C2 violation, got %v", rep.Violations)
	}
}
