// Package core is the canonical entry point for the paper's primary
// contribution — application-specific gate-level information flow tracking
// — re-exporting the analysis engine implemented in internal/glift. Use
// this package when you only need the analysis surface:
//
//	img, _ := asm.AssembleSource(src)
//	report, _ := core.Analyze(img, &core.Policy{...}, nil)
//	if report.Secure() { ... }
//
// The full API (the *-logic baseline, the Figure 7 reproduction, trace
// recording, engine internals) lives in internal/glift.
package core

import "repro/internal/glift"

// Core analysis types.
type (
	// Policy is an information flow security policy instance.
	Policy = glift.Policy
	// AddrRange is a half-open address interval.
	AddrRange = glift.AddrRange
	// Report is the output of an analysis run.
	Report = glift.Report
	// Violation is one potential information flow violation.
	Violation = glift.Violation
	// Kind classifies a violation.
	Kind = glift.Kind
	// Options tunes an analysis run.
	Options = glift.Options
	// Stats describes the exploration.
	Stats = glift.Stats
)

// Violation kinds (the five sufficient conditions of Section 5.1 plus the
// direct and integrity checks).
const (
	C1TaintedState       = glift.C1TaintedState
	C2MemoryEscape       = glift.C2MemoryEscape
	C3LoadTainted        = glift.C3LoadTainted
	C4ReadTaintedPort    = glift.C4ReadTaintedPort
	C5WriteUntaintedPort = glift.C5WriteUntaintedPort
	OutputPortTainted    = glift.OutputPortTainted
	WatchdogTainted      = glift.WatchdogTainted
	PCUnresolved         = glift.PCUnresolved
	AnalysisIncomplete   = glift.AnalysisIncomplete
)

// Analyze runs Algorithm 1 end to end for one policy.
var Analyze = glift.Analyze

// StarLogic runs the application-agnostic baseline (Footnote 8).
var StarLogic = glift.StarLogic
