package mcu

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asm"
)

func TestAttachVCDAndHelpers(t *testing.T) {
	img, err := asm.AssembleSource(`
start:  mov #5, r10
loop:   dec r10
        jnz loop
done:   jmp done
`)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	// Exercise LoadProgram/SetResetVector directly (the low-level loading
	// path used by external images).
	for _, seg := range img.Segments {
		s.LoadProgram(seg.Addr, seg.Words)
	}
	s.SetResetVector(img.Entry)
	s.TaintCode(img.Entry, img.Entry+2) // label the first instruction

	var buf bytes.Buffer
	v, err := s.AttachVCD(&buf, []string{"jump.branch_taken", "por"})
	if err != nil {
		t.Fatal(err)
	}
	s.PowerOn()
	for i := 0; i < 20; i++ {
		s.Step()
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "$enddefinitions") || !strings.Contains(out, "jump.branch_taken") {
		t.Fatalf("vcd malformed:\n%s", out)
	}
	// The taken loop branch must show a rising branch_taken somewhere.
	if !strings.Contains(out, "1!") && !strings.Contains(out, "1#") {
		t.Fatal("no branch activity recorded")
	}
	// SnapshotPC agrees with the live PC.
	s.EvalCycle(nil)
	sn := s.Snapshot()
	if got, live := s.SnapshotPC(sn), s.GetWord(s.D.PC); got != live {
		t.Fatalf("SnapshotPC %s != live %s", got, live)
	}
	// Fetch from the tainted partition: the fetched word carries the label.
	if w := s.ROM.LoadWord(img.Entry); !w.Tainted() {
		t.Fatal("TaintCode label lost")
	}
}
