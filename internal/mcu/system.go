package mcu

import (
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// System binds the microcontroller netlist to behavioural program/data
// memories and memory-mapped peripherals, and drives it cycle by cycle.
// It supports both concrete execution (differential testing, performance
// measurement) and symbolic execution with GLIFT taint (the engine behind
// the paper's Algorithm 1 lives in internal/glift and calls EvalCycle /
// Commit / Snapshot / Restore).
type System struct {
	D *Design
	C *sim.Circuit

	ROM *sim.TaintMem // program memory incl. the reset vector
	RAM *sim.TaintMem // data memory

	Cycle uint64

	rst    logic.Sig
	portIn [NumPorts]sim.Word
	events []string       // unusual accesses (unmapped, fetch outside ROM, ...)
	pcDFF  []int          // lazily built PC bit -> DFF index map (diagnostics)
	vcd    *sim.VCDWriter // optional waveform dump, sampled at each commit
	mem    memIO          // behavioural memory model bound to C/ROM/RAM
}

// CycleInfo describes one evaluated (not yet committed) cycle.
type CycleInfo struct {
	State     uint64
	StateOK   bool
	PmemAddr  uint16
	PmemOK    bool
	Fetch     sim.Word // word returned by program memory
	Re, We    logic.Sig
	BW        logic.Sig
	Addr      sim.Word // data memory address
	WData     sim.Word
	PCNext    sim.Word
	PC        sim.Word
	BranchTkn logic.Sig
	POR       logic.Sig
	IrqTkn    logic.Sig
}

// NewSystem builds the design (or wraps a provided one) and its memories,
// simulating on the default evaluation backend.
func NewSystem(d *Design) (*System, error) {
	return NewSystemBackend(d, sim.BackendCompiled)
}

// NewSystemBackend is NewSystem on an explicit gate-evaluation backend.
func NewSystemBackend(d *Design, kind sim.BackendKind) (*System, error) {
	c, err := sim.NewCircuitBackend(d.NL, kind)
	if err != nil {
		return nil, err
	}
	s := &System{
		D:   d,
		C:   c,
		ROM: sim.NewTaintMem(d.Map.ROMStart, int(d.Map.ROMEnd)-int(d.Map.ROMStart)),
		RAM: sim.NewTaintMem(d.Map.RAMStart, int(d.Map.RAMEnd)-int(d.Map.RAMStart)),
		rst: logic.Zero0,
	}
	s.mem = memIO{d: d, rom: s.ROM, ram: s.RAM, get: s.getWord, logf: s.logf}
	// Port inputs default to untainted X.
	for i := 0; i < NumPorts; i++ {
		s.SetPortIn(i, sim.Word{XM: 0xffff})
	}
	return s, nil
}

func (s *System) logf(format string, args ...interface{}) {
	s.events = append(s.events, fmt.Sprintf("cycle %d: ", s.Cycle)+fmt.Sprintf(format, args...))
}

// LoadProgram writes machine words into program memory, untainted.
func (s *System) LoadProgram(addr uint16, words []uint16) {
	for i, w := range words {
		s.ROM.StoreWord(addr+uint16(2*i), sim.ConcreteWord(w))
	}
}

// SetResetVector points the reset vector at entry.
func (s *System) SetResetVector(entry uint16) {
	s.ROM.StoreWord(s.D.Map.ResetVec, sim.ConcreteWord(entry))
}

// TaintCode marks the program-memory range [lo, hi) as tainted (a tainted
// code partition in the paper's terminology). Instruction words keep their
// concrete values but carry taint into decode, which is how a tainted task
// taints the PC on its first fetched instruction (Figure 8).
func (s *System) TaintCode(lo, hi uint16) { s.ROM.SetTaint(lo, hi) }

// SetPortIn presents a value on input port i (read at its MMIO address).
// The value persists across cycles (and power-on) until changed.
func (s *System) SetPortIn(i int, w sim.Word) {
	s.portIn[i] = w
	s.applyPortIn()
}

func (s *System) applyPortIn() {
	for i := 0; i < NumPorts; i++ {
		for bit := 0; bit < 16; bit++ {
			s.C.SetInput(s.D.PortIn[i][bit], s.portIn[i].Sig(bit))
		}
	}
}

// SetRst drives the external reset input on subsequent cycles.
func (s *System) SetRst(sig logic.Sig) { s.rst = sig }

// Events drains the unusual-access log.
func (s *System) Events() []string {
	e := s.events
	s.events = nil
	return e
}

func (s *System) getWord(w []netlist.NetID) sim.Word {
	var out sim.Word
	for i, id := range w {
		sg := s.C.Get(id)
		switch sg.V {
		case logic.One:
			out.Val |= 1 << uint(i)
		case logic.X:
			out.XM |= 1 << uint(i)
		}
		if sg.T {
			out.TT |= 1 << uint(i)
		}
	}
	return out
}

func (s *System) setWord(w []netlist.NetID, v sim.Word) {
	for i, id := range w {
		s.C.SetInput(id, v.Sig(i))
	}
}

// GetWord exposes a probe word's current signals (after EvalCycle).
func (s *System) GetWord(w []netlist.NetID) sim.Word { return s.getWord(w) }

// GetSig exposes one net's current signal (after EvalCycle).
func (s *System) GetSig(id netlist.NetID) logic.Sig { return s.C.Get(id) }

// Design returns the machine's design, shared with batched lane views.
func (s *System) Design() *Design { return s.D }

// readMMIO returns the word visible at a peripheral address, if any.
func (s *System) readMMIO(addr uint16) (sim.Word, bool) { return s.mem.readMMIO(addr) }

// loadDispatch resolves a data-memory read for a (possibly partially
// unknown, possibly tainted) address.
func (s *System) loadDispatch(addr sim.Word, re logic.Sig) sim.Word {
	return s.mem.loadDispatch(addr, re)
}

func (s *System) readAt(addr uint16) sim.Word { return s.mem.readAt(addr) }

// EvalCycle evaluates one full cycle (multi-pass, feeding the behavioural
// memories) without committing flip-flops or stores. forced overrides nets
// during every pass — the fork mechanism for unknown branch decisions.
func (s *System) EvalCycle(forced map[netlist.NetID]logic.Sig) *CycleInfo {
	ci := &CycleInfo{}
	s.C.SetInput(s.D.Rst, s.rst)
	s.applyPortIn()

	// Pass 1: registers -> program-memory address.
	s.C.Eval(forced)
	paw := s.getWord(s.D.PmemAddr)
	ci.PmemAddr, ci.PmemOK = paw.Val, paw.Concrete()
	fetch := s.mem.fetch(paw)
	ci.Fetch = fetch
	s.setWord(s.D.PmemRdata, fetch)

	// Pass 2: extension word -> data-memory address.
	s.C.Eval(forced)
	ci.Re = s.C.Get(s.D.DmemRe)
	addr := s.getWord(s.D.DmemAddr)
	ci.Addr = addr
	rdata := sim.Word{XM: 0xffff}
	if ci.Re.V != logic.Zero {
		rdata = s.loadDispatch(addr, ci.Re)
	}
	s.setWord(s.D.DmemRdata, rdata)

	// Pass 3: final settle.
	s.C.Eval(forced)
	ci.We = s.C.Get(s.D.DmemWe)
	ci.BW = s.C.Get(s.D.DmemBW)
	ci.WData = s.getWord(s.D.DmemWdata)
	ci.Addr = s.getWord(s.D.DmemAddr)
	ci.PCNext = s.getWord(s.D.PCNext)
	ci.PC = s.getWord(s.D.PC)
	ci.BranchTkn = s.C.Get(s.D.BranchTaken)
	ci.POR = s.C.Get(s.D.POR)
	ci.IrqTkn = s.C.Get(s.D.IrqTaken)
	st, stOK, _ := s.C.GetWord(s.D.State)
	ci.State, ci.StateOK = st, stOK
	return ci
}

// Commit applies the evaluated cycle: the data-memory store (with
// conservative unknown-address semantics) and the clock edge.
func (s *System) Commit(ci *CycleInfo) {
	if s.vcd != nil {
		s.vcd.Sample()
	}
	if ci.We.V != logic.Zero {
		s.commitStore(ci)
	}
	s.C.Clock()
	s.Cycle++
}

// AttachVCD streams the named nets (plus their taint channels) as a Value
// Change Dump, sampled once per committed cycle. Call Flush on the returned
// writer when done.
func (s *System) AttachVCD(w io.Writer, names []string) (*sim.VCDWriter, error) {
	v, err := sim.NewVCDWriter(w, s.C, names)
	if err != nil {
		return nil, err
	}
	s.vcd = v
	return v, nil
}

func (s *System) commitStore(ci *CycleInfo) { s.mem.commitStore(ci) }

// Step evaluates and commits one cycle; the caller must ensure the PC next
// value is concrete (concrete-input runs always are).
func (s *System) Step() *CycleInfo {
	ci := s.EvalCycle(nil)
	s.Commit(ci)
	return ci
}

// PowerOn initializes every flip-flop to untainted X, asserts the external
// reset for one cycle and releases it. Two further cycles of pipeline
// startup (the StReset vector fetch) happen during normal stepping.
func (s *System) PowerOn() {
	s.C.InitX()
	s.SetRst(logic.One0)
	s.Step()
	s.SetRst(logic.Zero0)
}

// RunToCompletion steps until the PC parks on a self-jump ("jmp $") or
// maxCycles elapses, returning the cycle count consumed after power-on.
// It is the harness for concrete performance runs.
func (s *System) RunToCompletion(maxCycles uint64) (uint64, error) {
	start := s.Cycle
	var lastPC uint64 = 1 << 20
	samePC := 0
	for s.Cycle-start < maxCycles {
		ci := s.EvalCycle(nil)
		if !ci.PmemOK {
			return s.Cycle - start, fmt.Errorf("pc became unknown at cycle %d", s.Cycle)
		}
		if ci.State == StFetch && ci.StateOK {
			if uint64(ci.PmemAddr) == lastPC {
				samePC++
				if samePC >= 2 {
					return s.Cycle - start, nil // parked on jmp $
				}
			} else {
				samePC = 0
			}
			lastPC = uint64(ci.PmemAddr)
		}
		s.Commit(ci)
	}
	return s.Cycle - start, fmt.Errorf("did not terminate in %d cycles", maxCycles)
}

// Snapshot captures the machine state (flip-flops + data memory).
type Snapshot struct {
	DFF []logic.Packed
	RAM *sim.TaintMem
}

// Snapshot captures flip-flop and RAM state.
func (s *System) Snapshot() *Snapshot {
	return &Snapshot{DFF: s.C.DFFState(), RAM: s.RAM.Snapshot()}
}

// SnapshotBytes approximates the heap footprint of one Snapshot — the unit
// of the analysis engine's memory accounting (it multiplies this by the
// number of retained snapshots rather than tracking allocations).
func (s *System) SnapshotBytes() int64 {
	return int64(len(s.D.NL.DFFs)) + s.RAM.FootprintBytes() + 64
}

// SnapshotPC extracts the PC register value from a snapshot (diagnostics).
func (s *System) SnapshotPC(sn *Snapshot) sim.Word {
	if s.pcDFF == nil {
		idx := map[netlist.NetID]int{}
		for i, d := range s.D.NL.DFFs {
			idx[d.Q] = i
		}
		for _, bit := range s.D.PC {
			s.pcDFF = append(s.pcDFF, idx[bit])
		}
	}
	var w sim.Word
	for i, di := range s.pcDFF {
		sg := logic.Unpack(sn.DFF[di])
		switch sg.V {
		case logic.One:
			w.Val |= 1 << uint(i)
		case logic.X:
			w.XM |= 1 << uint(i)
		}
		if sg.T {
			w.TT |= 1 << uint(i)
		}
	}
	return w
}

// Restore reinstates a snapshot.
func (s *System) Restore(sn *Snapshot) {
	s.C.RestoreDFFState(sn.DFF)
	s.RAM.Restore(sn.RAM)
}

// SubstateOf reports whether sn is covered by the conservative snapshot c.
func (sn *Snapshot) SubstateOf(c *Snapshot) bool {
	for i := range sn.DFF {
		if !logic.Substate(logic.Unpack(sn.DFF[i]), logic.Unpack(c.DFF[i])) {
			return false
		}
	}
	return sn.RAM.Substate(c.RAM)
}

// MergeFrom widens sn to also cover o.
func (sn *Snapshot) MergeFrom(o *Snapshot) {
	for i := range sn.DFF {
		sn.DFF[i] = logic.Pack(logic.Merge(logic.Unpack(sn.DFF[i]), logic.Unpack(o.DFF[i])))
	}
	sn.RAM.MergeFrom(o.RAM)
}

// Clone deep-copies a snapshot.
func (sn *Snapshot) Clone() *Snapshot {
	return &Snapshot{DFF: append([]logic.Packed(nil), sn.DFF...), RAM: sn.RAM.Snapshot()}
}

// RegWord reads an architectural register's current value (after an Eval);
// valid only for registers that exist as flip-flops plus PC and SR.
func (s *System) RegWord(r isa.Reg) sim.Word {
	switch r {
	case isa.PC:
		return s.getWord(s.D.PC)
	case isa.SR:
		return s.getWord(s.D.SR)
	case isa.CG:
		return sim.ConcreteWord(0)
	default:
		return s.getWord(s.D.Regs[r])
	}
}
