package mcu

import (
	"fmt"
	"math/bits"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// BatchSystem drives up to 64 independent machine contexts over one
// bitsliced backend: every lane has its own behavioural memories, port
// inputs, reset line and event log, while the gate-level state advances in
// lockstep through shared word-parallel Evals. The per-cycle protocol is
// System's, vectorized: EvalCycle runs the same three passes with per-lane
// memory feedback (fetch, load dispatch), CommitLanes applies per-lane
// stores and one shared clock edge.
//
// The behavioural memory semantics are shared with System via memIO, so a
// lane is cycle-exact against a scalar System fed the same stimulus — the
// property the batched fault campaign and lane-packed speculation rest on.
type BatchSystem struct {
	D *Design
	B *sim.BatchBackend

	Cycle uint64

	lanes        int
	rom          []*sim.TaintMem
	ram          []*sim.TaintMem
	rst          []logic.Sig
	portIn       [][NumPorts]sim.Word
	events       [][]string
	mem          []memIO
	portsApplied bool
	cis          []CycleInfo
}

// NewBatchSystem builds a batched machine over the design with the given
// lane count. Every lane starts powered off (all X) with its own empty
// ROM/RAM and untainted-X port inputs.
func NewBatchSystem(d *Design, lanes int) (*BatchSystem, error) {
	be, err := sim.NewBatchBackend(d.NL, lanes)
	if err != nil {
		return nil, err
	}
	b := &BatchSystem{
		D:      d,
		B:      be,
		lanes:  lanes,
		rom:    make([]*sim.TaintMem, lanes),
		ram:    make([]*sim.TaintMem, lanes),
		rst:    make([]logic.Sig, lanes),
		portIn: make([][NumPorts]sim.Word, lanes),
		events: make([][]string, lanes),
		mem:    make([]memIO, lanes),
		cis:    make([]CycleInfo, lanes),
	}
	for lane := 0; lane < lanes; lane++ {
		b.rom[lane] = sim.NewTaintMem(d.Map.ROMStart, int(d.Map.ROMEnd)-int(d.Map.ROMStart))
		b.ram[lane] = sim.NewTaintMem(d.Map.RAMStart, int(d.Map.RAMEnd)-int(d.Map.RAMStart))
		b.rst[lane] = logic.Zero0
		for i := 0; i < NumPorts; i++ {
			b.portIn[lane][i] = sim.Word{XM: 0xffff}
		}
		b.mem[lane] = b.laneMemIO(lane)
	}
	return b, nil
}

func (b *BatchSystem) laneMemIO(lane int) memIO {
	return memIO{
		d:   b.D,
		rom: b.rom[lane],
		ram: b.ram[lane],
		get: func(nets []netlist.NetID) sim.Word { return b.B.GetLaneWord(lane, nets) },
		logf: func(format string, args ...interface{}) {
			b.events[lane] = append(b.events[lane], fmt.Sprintf("cycle %d: ", b.Cycle)+fmt.Sprintf(format, args...))
		},
	}
}

// Lanes returns the configured lane count.
func (b *BatchSystem) Lanes() int { return b.lanes }

// LaneMask returns the mask with every configured lane set.
func (b *BatchSystem) LaneMask() uint64 { return b.B.LaneMask() }

// LaneROM returns one lane's program memory, for per-lane image placement
// and fault corruption.
func (b *BatchSystem) LaneROM(lane int) *sim.TaintMem { return b.rom[lane] }

// LaneRAM returns one lane's data memory.
func (b *BatchSystem) LaneRAM(lane int) *sim.TaintMem { return b.ram[lane] }

// ShareROM points every lane at the same program memory, for workloads
// where all lanes run one image (lane-packed speculation). The caller must
// not mutate it while lanes are running.
func (b *BatchSystem) ShareROM(rom *sim.TaintMem) {
	for lane := 0; lane < b.lanes; lane++ {
		b.rom[lane] = rom
		b.mem[lane].rom = rom
	}
}

// SetLanePortIn presents a value on one lane's input port i. The value
// persists across cycles (and power-on) until changed.
func (b *BatchSystem) SetLanePortIn(lane, i int, w sim.Word) {
	b.portIn[lane][i] = w
	b.portsApplied = false
}

// SetLaneRst drives one lane's external reset on subsequent cycles.
func (b *BatchSystem) SetLaneRst(lane int, sig logic.Sig) { b.rst[lane] = sig }

// LaneEvents drains one lane's unusual-access log.
func (b *BatchSystem) LaneEvents(lane int) []string {
	e := b.events[lane]
	b.events[lane] = nil
	return e
}

// LaneWord assembles a probe word from one lane (valid after EvalCycle).
func (b *BatchSystem) LaneWord(lane int, nets []netlist.NetID) sim.Word {
	return b.B.GetLaneWord(lane, nets)
}

// LaneSig reads one net on one lane (valid after EvalCycle).
func (b *BatchSystem) LaneSig(lane int, id netlist.NetID) logic.Sig {
	return b.B.GetLane(lane, id)
}

// applyPorts drives every lane's port-input nets. Port inputs are
// sourceless, so the values persist across Evals; re-application is only
// needed after InitX or a SetLanePortIn.
func (b *BatchSystem) applyPorts() {
	if b.portsApplied {
		return
	}
	for lane := 0; lane < b.lanes; lane++ {
		for i := 0; i < NumPorts; i++ {
			b.B.SetLaneWord(lane, b.D.PortIn[i], b.portIn[lane][i])
		}
	}
	b.portsApplied = true
}

// EvalCycle evaluates one full cycle on every lane in active (multi-pass,
// feeding each lane's behavioural memories) without committing flip-flops
// or stores. The returned slice is indexed by lane and reused across calls;
// entries for inactive lanes are stale.
func (b *BatchSystem) EvalCycle(active uint64) []CycleInfo {
	forActive := func(f func(lane int)) {
		for m := active & b.B.LaneMask(); m != 0; m &= m - 1 {
			f(bits.TrailingZeros64(m))
		}
	}
	forActive(func(lane int) {
		b.B.SetLane(lane, b.D.Rst, b.rst[lane])
	})
	b.applyPorts()

	// Pass 1: registers -> program-memory address.
	b.B.Eval()
	forActive(func(lane int) {
		ci := &b.cis[lane]
		*ci = CycleInfo{}
		paw := b.B.GetLaneWord(lane, b.D.PmemAddr)
		ci.PmemAddr, ci.PmemOK = paw.Val, paw.Concrete()
		fetch := b.mem[lane].fetch(paw)
		ci.Fetch = fetch
		b.B.SetLaneWord(lane, b.D.PmemRdata, fetch)
	})

	// Pass 2: extension word -> data-memory address.
	b.B.Eval()
	forActive(func(lane int) {
		ci := &b.cis[lane]
		ci.Re = b.B.GetLane(lane, b.D.DmemRe)
		addr := b.B.GetLaneWord(lane, b.D.DmemAddr)
		ci.Addr = addr
		rdata := sim.Word{XM: 0xffff}
		if ci.Re.V != logic.Zero {
			rdata = b.mem[lane].loadDispatch(addr, ci.Re)
		}
		b.B.SetLaneWord(lane, b.D.DmemRdata, rdata)
	})

	// Pass 3: final settle.
	b.B.Eval()
	forActive(func(lane int) {
		ci := &b.cis[lane]
		ci.We = b.B.GetLane(lane, b.D.DmemWe)
		ci.BW = b.B.GetLane(lane, b.D.DmemBW)
		ci.WData = b.B.GetLaneWord(lane, b.D.DmemWdata)
		ci.Addr = b.B.GetLaneWord(lane, b.D.DmemAddr)
		ci.PCNext = b.B.GetLaneWord(lane, b.D.PCNext)
		ci.PC = b.B.GetLaneWord(lane, b.D.PC)
		ci.BranchTkn = b.B.GetLane(lane, b.D.BranchTaken)
		ci.POR = b.B.GetLane(lane, b.D.POR)
		ci.IrqTkn = b.B.GetLane(lane, b.D.IrqTaken)
		st := b.B.GetLaneWord(lane, b.D.State)
		ci.State, ci.StateOK = uint64(st.Val), st.Concrete()
	})
	return b.cis
}

// CommitLanes applies the evaluated cycle on every lane in active: per-lane
// data-memory stores, then one shared clock edge (only active lanes accrue
// toggle counts) and the cycle counter.
func (b *BatchSystem) CommitLanes(active uint64, cis []CycleInfo) {
	for m := active & b.B.LaneMask(); m != 0; m &= m - 1 {
		lane := bits.TrailingZeros64(m)
		if cis[lane].We.V != logic.Zero {
			b.mem[lane].commitStore(&cis[lane])
		}
	}
	b.B.SetActive(active)
	b.B.Clock()
	b.Cycle++
}

// PowerOn initializes every lane to untainted X, asserts the external reset
// on every lane for one cycle and releases it — System.PowerOn across the
// whole batch.
func (b *BatchSystem) PowerOn() {
	b.B.InitX()
	b.portsApplied = false
	all := b.B.LaneMask()
	for lane := 0; lane < b.lanes; lane++ {
		b.rst[lane] = logic.One0
	}
	cis := b.EvalCycle(all)
	b.CommitLanes(all, cis)
	for lane := 0; lane < b.lanes; lane++ {
		b.rst[lane] = logic.Zero0
	}
}

// SnapshotLane captures one lane's machine state (flip-flops + data
// memory), interchangeable with System snapshots.
func (b *BatchSystem) SnapshotLane(lane int) *Snapshot {
	return &Snapshot{DFF: b.B.LaneDFFState(lane), RAM: b.ram[lane].Snapshot()}
}

// RestoreLane reinstates a snapshot into one lane. The next EvalCycle
// re-settles the combinational logic.
func (b *BatchSystem) RestoreLane(lane int, sn *Snapshot) {
	b.B.RestoreLaneDFFState(lane, sn.DFF)
	b.ram[lane].Restore(sn.RAM)
}

// LaneView adapts one lane to the scalar probe interface (Design, GetWord,
// GetSig) shared with *System, so per-cycle policy checks run unchanged on
// batched lanes.
type LaneView struct {
	b    *BatchSystem
	lane int
}

// Lane returns the scalar probe view of one lane.
func (b *BatchSystem) Lane(lane int) LaneView { return LaneView{b: b, lane: lane} }

// Design returns the shared machine design.
func (v LaneView) Design() *Design { return v.b.D }

// GetWord assembles a probe word from the lane (valid after EvalCycle).
func (v LaneView) GetWord(nets []netlist.NetID) sim.Word { return v.b.B.GetLaneWord(v.lane, nets) }

// GetSig reads one net on the lane (valid after EvalCycle).
func (v LaneView) GetSig(id netlist.NetID) logic.Sig { return v.b.B.GetLane(v.lane, id) }
