package mcu

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// TestISAConformanceMatrix locksteps the gate-level core against the
// reference interpreter for every format I opcode crossed with every
// addressing-mode combination, every format II opcode in register and
// memory modes, and every jump condition in both directions — a structured
// complement to the randomized differential fuzzing.
func TestISAConformanceMatrix(t *testing.T) {
	prologue := `
start:  mov #0x0500, sp
        mov #0x1234, r4
        mov #0x8765, r5
        mov #0x0300, r6      ; pointer into RAM
        mov #0x00ff, r7
        mov #0x0304, r8      ; second pointer
        mov #0xaaaa, &0x0300
        mov #0x5555, &0x0302
        mov #0x0f0f, &0x0304
        setc
`
	fmt1Ops := []string{"mov", "add", "addc", "sub", "subc", "cmp", "bit", "bic", "bis", "xor", "and"}
	srcModes := []string{"r4", "#0x1f3", "#8", "2(r6)", "@r6", "@r6+", "&0x0302"}
	dstModes := []string{"r5", "2(r8)", "&0x0306"}
	for _, op := range fmt1Ops {
		for _, src := range srcModes {
			for _, dst := range dstModes {
				for _, suffix := range []string{"", ".b"} {
					name := fmt.Sprintf("%s%s_%s_%s", op, suffix, src, dst)
					body := prologue + fmt.Sprintf("        %s%s %s, %s\ndone:   jmp done\n", op, suffix, src, dst)
					t.Run(name, func(t *testing.T) {
						runDifferential(t, body, 16)
					})
				}
			}
		}
	}

	fmt2Ops := []string{"rra", "rrc", "swpb", "sxt", "push"}
	fmt2Modes := []string{"r4", "2(r6)", "@r6", "&0x0300"}
	for _, op := range fmt2Ops {
		for _, mode := range fmt2Modes {
			if op == "push" && mode != "r4" {
				// push of memory operands exercises StSrc+StPush
				body := prologue + fmt.Sprintf("        push %s\ndone:   jmp done\n", mode)
				t.Run("push_"+mode, func(t *testing.T) { runDifferential(t, body, 16) })
				continue
			}
			body := prologue + fmt.Sprintf("        %s %s\ndone:   jmp done\n", op, mode)
			t.Run(op+"_"+mode, func(t *testing.T) { runDifferential(t, body, 16) })
		}
	}

	// Every jump condition, taken and not taken, across carry/zero/negative
	// and signed flag setups.
	flagSetups := []string{
		"        mov #1, r9\n        cmp #1, r9\n",      // Z=1 C=1
		"        mov #2, r9\n        cmp #1, r9\n",      // Z=0 C=1 N=0
		"        mov #0, r9\n        cmp #1, r9\n",      // borrow: C=0 N=1
		"        mov #-5, r9\n        cmp #1, r9\n",     // negative vs positive
		"        mov #0x7fff, r9\n        add #1, r9\n", // V=1 N=1
	}
	jumps := []string{"jne", "jeq", "jnc", "jc", "jn", "jge", "jl", "jmp"}
	for i, setup := range flagSetups {
		for _, j := range jumps {
			body := prologue + setup +
				fmt.Sprintf("        %s skip\n        mov #0xdead, r15\nskip:   mov #1, r14\ndone:   jmp done\n", j)
			t.Run(fmt.Sprintf("%s_setup%d", j, i), func(t *testing.T) {
				runDifferential(t, body, 20)
			})
		}
	}
}

// TestConformanceCGAndEmulated exercises all constant-generator encodings
// and every emulated mnemonic on the gate-level core.
func TestConformanceCGAndEmulated(t *testing.T) {
	runDifferential(t, `
start:  mov #0x0500, sp
        mov #0, r4
        mov #1, r5
        mov #2, r6
        mov #4, r7
        mov #8, r8
        mov #-1, r9
        add #1, r4
        add #2, r4
        add #4, r4
        add #8, r4
        sub #1, r4
        cmp #0, r4
        bis #1, r4
        bic #1, r4
        xor #-1, r4
        nop
        clr r10
        inc r10
        incd r10
        dec r10
        decd r10
        tst r10
        inv r10
        rla r10
        rlc r10
        adc r10
        sbc r10
        setc
        clrc
        setz
        clrz
        setn
        clrn
        eint
        dint
        push r4
        pop r11
        br #next
        mov #0xdead, r15
next:   mov #5, r12
done:   jmp done
`, 60)
}

// TestConformanceCallStack exercises nested calls and returns.
func TestConformanceCallStack(t *testing.T) {
	runDifferential(t, `
start:  mov #0x0500, sp
        call #f1
        mov #1, r10
done:   jmp done
f1:     mov #2, r11
        call #f2
        mov #3, r12
        ret
f2:     mov #4, r13
        push r13
        pop r14
        ret
`, 40)
}

// TestConformanceByteEdge exercises byte operations at odd addresses, byte
// RMW, and byte autoincrement chains.
func TestConformanceByteEdge(t *testing.T) {
	runDifferential(t, `
start:  mov #0x0500, sp
        mov #0x0300, r6
        mov #0xa55a, &0x0300
        mov #0x1bc4, &0x0302
        mov.b 1(r6), r7      ; high byte of word 0
        mov.b r7, 3(r6)      ; high byte of word 1
        add.b @r6+, r7       ; byte autoincrement
        add.b @r6+, r7
        add.b @r6+, r7
        xor.b #0x0f, r7
        and.b 0(r6), r7
        rra.b r7
        rrc.b r7
        mov.b #0xff, r8
        add.b r8, r8         ; byte overflow
        subc.b r8, r7
done:   jmp done
`, 40)
}

// TestConformanceSRWrites checks whole-SR writes and flag readback.
func TestConformanceSRWrites(t *testing.T) {
	runDifferential(t, `
start:  mov #0x0500, sp
        mov #0x0107, sr      ; set C,Z,N,V directly
        mov sr, r5           ; read back
        adc r5               ; consume carry
        mov #0, sr
        mov sr, r6
        jc bad
        mov #1, r7
bad:    nop
done:   jmp done
`, 20)
}

// TestConformanceAligned16BitWrap checks address arithmetic wraparound.
func TestConformanceAligned16BitWrap(t *testing.T) {
	runDifferential(t, `
start:  mov #0x0500, sp
        mov #0xffff, r4
        add #3, r4           ; wraps to 2
        mov #0x0300, r6
        mov #-2, r7
        add r6, r7           ; 0x02fe
        mov #0x77, 0(r7)
        mov 0(r7), r8
done:   jmp done
`, 20)
}

// TestSystemRegWordAndEvents covers accessors not hit elsewhere.
func TestSystemRegWordAndEvents(t *testing.T) {
	img, err := asm.AssembleSource(`
start:  mov #0x1234, r4
done:   jmp done
`)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	s.PowerOn()
	for i := 0; i < 5; i++ {
		s.Step()
	}
	s.EvalCycle(nil)
	if w := s.RegWord(isa.CG); w.Val != 0 || !w.Concrete() {
		t.Fatal("CG should read as constant 0")
	}
	if w := s.RegWord(isa.PC); !w.Concrete() {
		t.Fatal("PC should be concrete")
	}
	if evs := s.Events(); len(evs) != 0 {
		t.Fatalf("unexpected events: %v", evs)
	}
}
