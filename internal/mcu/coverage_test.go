package mcu

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/logic"
	"repro/internal/sim"
)

// randStraightLine emits a random branch-free program (jumps would need the
// analysis engine's forking; here we test the raw simulator's soundness).
func randStraightLine(rnd *rand.Rand, n int) string {
	src := "start: mov #0x500, sp\n mov #0x0300, r14\n mov #0x0380, r15\n"
	regs := []string{"r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11"}
	ops2 := []string{"mov", "add", "addc", "sub", "subc", "cmp", "bit", "bic", "bis", "xor", "and"}
	ops1 := []string{"rra", "rrc", "swpb", "sxt", "inv"}
	for i := 0; i < n; i++ {
		r := regs[rnd.Intn(len(regs))]
		r2 := regs[rnd.Intn(len(regs))]
		switch rnd.Intn(7) {
		case 0:
			src += " mov &0x0020, " + r + "\n" // port read (X in symbolic mode)
		case 1:
			src += " " + ops2[rnd.Intn(len(ops2))] + " " + r2 + ", " + r + "\n"
		case 2:
			src += " " + ops2[rnd.Intn(len(ops2))] + " #" + itoa(rnd.Intn(1<<16)) + ", " + r + "\n"
		case 3:
			src += " mov " + r2 + ", " + itoa(2*rnd.Intn(32)) + "(r15)\n"
		case 4:
			src += " mov " + itoa(2*rnd.Intn(32)) + "(r15), " + r + "\n"
		case 5:
			src += " " + ops1[rnd.Intn(len(ops1))] + " " + r + "\n"
		case 6:
			src += " push " + r + "\n"
		}
	}
	src += "done: jmp done\n"
	return src
}

// TestSymbolicCoversConcrete is the soundness property of the ternary
// simulator that the whole analysis rests on: a symbolic run with unknown
// port inputs must *cover* (be a conservative superstate of) every concrete
// run, for every input assignment, cycle for cycle.
func TestSymbolicCoversConcrete(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	for seed := 0; seed < trials; seed++ {
		rnd := rand.New(rand.NewSource(int64(100 + seed)))
		src := randStraightLine(rnd, 30)
		img, err := asm.AssembleSource(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Symbolic run: ports unknown.
		symSys := newTestSystem(t)
		loadConcrete(t, symSys, img)
		symSys.SetPortIn(0, sim.Word{XM: 0xffff})
		symSys.PowerOn()
		cycles := 140
		var symStates []*Snapshot
		for i := 0; i < cycles; i++ {
			symSys.Step()
			symStates = append(symStates, symSys.Snapshot())
		}

		// Concrete runs with several input assignments.
		for c := 0; c < 3; c++ {
			conc := newTestSystem(t)
			loadConcrete(t, conc, img)
			crnd := rand.New(rand.NewSource(int64(999*seed + c)))
			conc.PowerOn()
			for i := 0; i < cycles; i++ {
				conc.SetPortIn(0, sim.ConcreteWord(uint16(crnd.Uint32())))
				conc.Step()
				if !conc.Snapshot().SubstateOf(symStates[i]) {
					t.Fatalf("seed %d input %d: concrete state at cycle %d not covered by symbolic run\nprogram:\n%s",
						seed, c, i, src)
				}
			}
		}
	}
}

// TestSymbolicTaintCoversConcreteFlows: with a tainted port, every register
// that differs across two concrete runs (i.e. genuinely carries input
// influence) must be tainted in the symbolic run.
func TestSymbolicTaintCoversConcreteFlows(t *testing.T) {
	trials := 8
	if testing.Short() {
		trials = 2
	}
	for seed := 0; seed < trials; seed++ {
		rnd := rand.New(rand.NewSource(int64(500 + seed)))
		src := randStraightLine(rnd, 25)
		img, err := asm.AssembleSource(src)
		if err != nil {
			t.Fatal(err)
		}

		symSys := newTestSystem(t)
		loadConcrete(t, symSys, img)
		symSys.SetPortIn(0, sim.Word{XM: 0xffff, TT: 0xffff})
		symSys.PowerOn()
		cycles := 120
		for i := 0; i < cycles; i++ {
			symSys.Step()
		}
		symSys.EvalCycle(nil)

		run := func(val uint16) [16]sim.Word {
			s := newTestSystem(t)
			loadConcrete(t, s, img)
			s.SetPortIn(0, sim.ConcreteWord(val))
			s.PowerOn()
			for i := 0; i < cycles; i++ {
				s.Step()
			}
			s.EvalCycle(nil)
			var regs [16]sim.Word
			for r := 0; r < 16; r++ {
				if s.D.Regs[r] != nil {
					regs[r] = s.GetWord(s.D.Regs[r])
				}
			}
			return regs
		}
		a := run(0x1111)
		b := run(0xfffe)
		for r := 0; r < 16; r++ {
			if symSys.D.Regs[r] == nil {
				continue
			}
			if a[r].Val != b[r].Val {
				sw := symSys.GetWord(symSys.D.Regs[r])
				if !sw.Tainted() {
					t.Fatalf("seed %d: r%d differs across inputs (%#x vs %#x) but is untainted symbolically (%s)\nprogram:\n%s",
						seed, r, a[r].Val, b[r].Val, sw, src)
				}
			}
		}
	}
}

func TestDFFUpdateMonotoneUnderX(t *testing.T) {
	// A direct check of the DFF clocking law the snapshots rely on: X
	// covers both concrete resolutions of a bit.
	for _, d := range []logic.Sig{logic.Zero0, logic.One0} {
		if !logic.Substate(d, logic.X0) {
			t.Fatalf("%s not covered by X", d)
		}
	}
}
