package mcu

import (
	"bytes"
	"testing"

	"repro/internal/netlist"
)

// TestNetlistGnlRoundTrip serializes the full microcontroller netlist to
// the .gnl interchange format and parses it back — the path an external
// "gate-level processor description" would take into the toolflow.
func TestNetlistGnlRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := netlist.Write(&buf, testDesign.NL); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 100_000 {
		t.Fatalf("suspiciously small dump: %d bytes", buf.Len())
	}
	nl2, err := netlist.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := testDesign.NL.ComputeStats(), nl2.ComputeStats()
	if s1.Gates != s2.Gates || s1.DFFs != s2.DFFs || s1.Levels != s2.Levels ||
		s1.Inputs != s2.Inputs || s1.Outputs != s2.Outputs {
		t.Fatalf("round-trip stats mismatch:\n  %+v\n  %+v", s1, s2)
	}
	// The analysis' probe nets must survive by name.
	for _, probe := range []string{"jump.branch_taken", "por", "wdt.wdt_we", "wdt.wdt_expired"} {
		if _, ok := nl2.Lookup(probe); !ok {
			t.Errorf("probe net %q lost in round trip", probe)
		}
	}
}

// TestOptimizeMCUNetlist runs the optimizer over the full microcontroller
// with the analysis probe nets kept, and checks it shrinks while staying
// structurally valid.
func TestOptimizeMCUNetlist(t *testing.T) {
	opt, st, err := netlist.Optimize(testDesign.NL,
		"jump.branch_taken", "por", "wdt.wdt_we", "wdt.wdt_expired")
	if err != nil {
		t.Fatal(err)
	}
	if st.GatesAfter >= st.GatesBefore {
		t.Fatalf("no shrink: %+v", st)
	}
	if float64(st.GatesAfter) < 0.5*float64(st.GatesBefore) {
		t.Fatalf("suspiciously large shrink (possible logic loss): %+v", st)
	}
	for _, probe := range []string{"jump.branch_taken", "por", "wdt.wdt_we", "wdt.wdt_expired"} {
		if _, ok := opt.Lookup(probe); !ok {
			t.Errorf("probe %q lost", probe)
		}
	}
	if len(opt.DFFs) != len(testDesign.NL.DFFs) {
		t.Fatal("flip-flop count changed")
	}
	t.Logf("optimizer: %d -> %d gates (folded %d, collapsed %d, dead %d)",
		st.GatesBefore, st.GatesAfter, st.Folded, st.Collapsed, st.Dead)
}
