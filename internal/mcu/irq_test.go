package mcu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// irqProgram arms the Timer_A-lite peripheral and counts ISR invocations in
// RAM while the foreground increments a register.
const irqProgram = `
.equ TACTL,  0x0160
.equ TACCR0, 0x0162
.equ COUNT,  0x0300
start:  mov #0x0500, sp
        mov #40, &TACCR0     ; fire every ~40 cycles
        mov #1, &TACTL       ; enable the timer
        eint
main:   inc r10
        jmp main

.org 0xf100
isr:    add #1, &COUNT       ; count invocations
        mov #1, &TACTL       ; acknowledge (clears TAIFG, keeps running)
        reti

.org 0xfff6
        .word isr            ; timer vector
`

// TestTimerInterruptFires runs the interrupt program concretely and checks
// the ISR executes repeatedly with correct state save/restore.
func TestTimerInterruptFires(t *testing.T) {
	img, err := asm.AssembleSource(irqProgram)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	s.PowerOn()
	for i := 0; i < 600; i++ {
		s.Step()
	}
	s.EvalCycle(nil)
	count := s.RAM.LoadWord(0x0300)
	if !count.Concrete() || count.Val < 5 {
		t.Fatalf("ISR ran %s times, want >= 5", count)
	}
	// The foreground loop keeps making progress between interrupts.
	if r10 := s.RegWord(10); !r10.Concrete() || r10.Val < 50 {
		t.Fatalf("foreground r10 = %s", r10)
	}
	// GIE restored by RETI: still enabled at the end.
	if sr := s.RegWord(isa.SR); sr.Val&isa.FlagGIE == 0 {
		t.Fatalf("GIE lost: sr = %s", sr)
	}
}

// TestInterruptMaskedWithoutGIE: with interrupts disabled the timer flag
// latches but no entry happens.
func TestInterruptMaskedWithoutGIE(t *testing.T) {
	img, err := asm.AssembleSource(`
.equ TACTL,  0x0160
.equ TACCR0, 0x0162
start:  mov #0x0500, sp
        mov #20, &TACCR0
        mov #1, &TACTL       ; enabled, but GIE stays clear
main:   inc r10
        jmp main
.org 0xf100
isr:    mov #0xdead, r15
        reti
.org 0xfff6
        .word isr
`)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	s.PowerOn()
	for i := 0; i < 300; i++ {
		s.Step()
	}
	s.EvalCycle(nil)
	if r15 := s.RegWord(15); r15.Val == 0xdead {
		t.Fatal("ISR ran despite GIE clear")
	}
	if ifg := s.C.Get(s.D.TaIfg); ifg.V != 1 {
		t.Fatalf("TAIFG should have latched, got %s", ifg)
	}
}

// TestDifferentialInterrupts locksteps the gate-level core against the
// interpreter through interrupt entries and returns. The timer source is
// gate-side truth; the harness drives the interpreter's Interrupt primitive
// whenever the gates commit an entry.
func TestDifferentialInterrupts(t *testing.T) {
	img, err := asm.AssembleSource(irqProgram)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	m := refMachine(img)
	s.PowerOn()
	s.Step()
	compareState(t, s, m, "after reset")

	insns := 0
	for insns < 400 {
		// Advance the gates to the next committed instruction boundary,
		// observing whether an interrupt entry happens instead.
		ci := s.EvalCycle(nil)
		if !ci.StateOK {
			t.Fatalf("state unknown at cycle %d", s.Cycle)
		}
		switch {
		case ci.State == StFetch && s.C.Get(s.D.IrqTaken).V == 1:
			// Gate-side entry: recognize + push PC + push SR.
			s.Step() // recognize (hold)
			s.Step() // StIrq1
			s.Step() // StIrq2
			if !m.Interrupt(isa.TimerVec) {
				t.Fatalf("interpreter refused interrupt at %#04x (GIE clear?)", m.R[isa.PC])
			}
			compareState(t, s, m, "after interrupt entry")
		case ci.State == StFetch:
			pc := m.R[isa.PC]
			cycles, err := m.Step()
			if err != nil {
				t.Fatalf("interpreter at %#04x: %v", pc, err)
			}
			for c := 0; c < cycles; c++ {
				s.Step()
			}
			compareState(t, s, m, srcLine(img, pc))
			insns++
		default:
			t.Fatalf("unexpected mid-instruction boundary state %d", ci.State)
		}
	}
}

// TestInterruptEntryCycleCost pins the 3-cycle entry cost.
func TestInterruptEntryCycleCost(t *testing.T) {
	if isa.IrqCycles != 3 {
		t.Fatalf("IrqCycles = %d, the gate FSM uses 3 (recognize + 2 pushes)", isa.IrqCycles)
	}
}
