package mcu

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/logic"
	"repro/internal/sim"
)

// shared design: building the netlist is moderately expensive, and it is
// stateless (all state lives in System/Circuit).
var testDesign = Build()

func newTestSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(testDesign)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNetlistShape(t *testing.T) {
	st := testDesign.NL.ComputeStats()
	if st.DFFs < 250 {
		t.Fatalf("suspiciously few flip-flops: %d", st.DFFs)
	}
	if st.Gates < 2000 {
		t.Fatalf("suspiciously few gates: %d", st.Gates)
	}
	t.Logf("netlist: %d gates, %d DFFs, %d nets, %d levels", st.Gates, st.DFFs, st.Nets, st.Levels)
}

// loadConcrete prepares a system for concrete execution: zero-filled RAM
// (matching the interpreter's flat memory) and the image in ROM.
func loadConcrete(t *testing.T, s *System, img *asm.Image) {
	t.Helper()
	zeros := make([]byte, s.RAM.Size())
	s.RAM.Fill(s.RAM.Base(), zeros)
	img.Place(func(a, w uint16) { s.ROM.StoreWord(a, sim.ConcreteWord(w)) })
	s.SetResetVector(img.Entry)
}

// refMachine builds the interpreter twin for the same image.
func refMachine(img *asm.Image) *isa.Machine {
	mem := new(isa.FlatMem)
	img.Place(mem.StoreWord)
	mem.StoreWord(isa.ResetVec, img.Entry)
	m := isa.NewMachine(mem)
	m.Reset()
	return m
}

// compareState checks architectural state equality at an instruction
// boundary (gates must be sitting in StFetch).
func compareState(t *testing.T, s *System, m *isa.Machine, tag string) {
	t.Helper()
	ci := s.EvalCycle(nil)
	if !ci.StateOK || ci.State != StFetch {
		t.Fatalf("%s: gates not at fetch (state=%d ok=%v)", tag, ci.State, ci.StateOK)
	}
	for r := 0; r < 16; r++ {
		if r == int(isa.CG) {
			continue
		}
		w := s.RegWord(isa.Reg(r))
		if !w.Concrete() {
			t.Fatalf("%s: %s not concrete: %s", tag, isa.Reg(r), w)
		}
		if w.Val != m.R[r] {
			t.Fatalf("%s: %s = %#04x, interpreter has %#04x", tag, isa.Reg(r), w.Val, m.R[r])
		}
	}
}

// runDifferential locksteps gates and interpreter over n instructions.
func runDifferential(t *testing.T, src string, maxInsns int) {
	t.Helper()
	img, err := asm.AssembleSource(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	m := refMachine(img)
	s.PowerOn()
	s.Step() // StReset vector fetch
	compareState(t, s, m, "after reset")
	if s.Cycle != uint64(isa.ResetCycles) {
		t.Fatalf("reset cost %d cycles, interpreter model says %d", s.Cycle, isa.ResetCycles)
	}
	for i := 0; i < maxInsns; i++ {
		pc := m.R[isa.PC]
		cycles, err := m.Step()
		if err != nil {
			t.Fatalf("interpreter at %#04x: %v", pc, err)
		}
		for c := 0; c < cycles; c++ {
			s.Step()
		}
		compareState(t, s, m, srcLine(img, pc))
		if m.Cycles != s.Cycle {
			t.Fatalf("cycle divergence after %s: interp %d, gates %d", srcLine(img, pc), m.Cycles, s.Cycle)
		}
		if m.R[isa.PC] == pc { // parked on jmp $
			return
		}
	}
}

func srcLine(img *asm.Image, addr uint16) string {
	if si, ok := img.AddrToStmt[addr]; ok {
		return img.Stmts[si].String()
	}
	return "???"
}

func TestDifferentialBasics(t *testing.T) {
	runDifferential(t, `
start:  mov #0x400, sp
        mov #0x1234, r5
        mov r5, r6
        add r5, r6
        addc #0, r6
        sub #1, r6
        cmp r5, r6
        xor r5, r6
        and #0x0f0f, r6
        bis #0x1000, r6
        bic #0x0010, r6
        bit #4, r6
done:   jmp done
`, 50)
}

func TestDifferentialMemoryOps(t *testing.T) {
	runDifferential(t, `
start:  mov #0x400, sp
        mov #0x0300, r4
        mov #0xbeef, 0(r4)
        mov #0xcafe, 2(r4)
        mov 0(r4), r5
        add 2(r4), r5
        mov r5, &0x0310
        mov &0x0310, r6
        mov @r4, r7
        mov @r4+, r8
        mov @r4+, r9
        add r5, 4(r4)
        mov.b 1(r4), r10
        mov.b r10, 6(r4)
done:   jmp done
`, 50)
}

func TestDifferentialControlFlow(t *testing.T) {
	runDifferential(t, `
start:  mov #0x400, sp
        mov #5, r10
        clr r11
loop:   add r10, r11
        dec r10
        jnz loop
        cmp #15, r11
        jeq good
        mov #0xbad, r15
good:   call #leaf
        push r11
        pop r12
done:   jmp done
leaf:   inc r11
        ret
`, 100)
}

func TestDifferentialFmt2(t *testing.T) {
	runDifferential(t, `
start:  mov #0x400, sp
        mov #0x8421, r5
        rra r5
        rrc r5
        swpb r5
        sxt r5
        mov #0x0301, r4
        mov #0x00f7, 0(r4)
        rra 0(r4)
        mov 0(r4), r6
        mov #0x0304, r7
        mov #0x0055, 0(r7)
        rrc 0(r7)
done:   jmp done
`, 50)
}

func TestDifferentialByteOps(t *testing.T) {
	runDifferential(t, `
start:  mov #0x400, sp
        mov #0x0300, r4
        mov #0x1234, 0(r4)
        mov.b #0xff, r5
        add.b 0(r4), r5
        mov.b r5, 1(r4)
        mov 0(r4), r6
        mov.b @r4+, r7
        mov.b @r4+, r8
        cmp.b r7, r8
        subc.b r7, r8
done:   jmp done
`, 50)
}

func TestDifferentialSignedBranches(t *testing.T) {
	runDifferential(t, `
start:  mov #0x400, sp
        mov #-5, r5
        cmp #1, r5
        jl neg
        mov #1, r10
neg:    jge nonneg
        mov #2, r11
nonneg: mov #-3, r6
        tst r6
        jn isneg
        mov #3, r12
isneg:  cmp r5, r6          ; -3 - -5 = 2 >= 0
        jge done
        mov #4, r13
done:   jmp done
`, 50)
}

func TestDifferentialRETI(t *testing.T) {
	runDifferential(t, `
start:  mov #0x400, sp
        mov #after, r5      ; build an interrupt frame by hand
        push r5
        mov #0x0009, r6
        push r6
        reti
        mov #0xbad, r15     ; skipped
after:  mov #1, r10
done:   jmp done
`, 20)
}

// randProgram emits a random but well-behaved straight-line program.
func randProgram(rnd *rand.Rand, n int) string {
	src := "start: mov #0x500, sp\n"
	src += " mov #0x0300, r14\n mov #0x0380, r15\n"
	regs := []string{"r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "r12", "r13"}
	ops2 := []string{"mov", "add", "addc", "sub", "subc", "cmp", "bit", "bic", "bis", "xor", "and"}
	ops1 := []string{"rra", "rrc", "swpb", "sxt", "inc", "dec", "inv", "tst", "clr"}
	jumps := []string{"jne", "jeq", "jnc", "jc", "jn", "jge", "jl"}
	for i := 0; i < n; i++ {
		r := regs[rnd.Intn(len(regs))]
		r2 := regs[rnd.Intn(len(regs))]
		bw := ""
		if rnd.Intn(4) == 0 {
			bw = ".b"
		}
		switch rnd.Intn(10) {
		case 0: // immediate
			src += " " + ops2[rnd.Intn(len(ops2))] + bw + " #" + itoa(rnd.Intn(65536)) + ", " + r + "\n"
		case 1: // reg-reg
			src += " " + ops2[rnd.Intn(len(ops2))] + bw + " " + r2 + ", " + r + "\n"
		case 2: // load indexed
			src += " " + ops2[rnd.Intn(len(ops2))] + bw + " " + itoa(rnd.Intn(0x70)) + "(r15), " + r + "\n"
		case 3: // store indexed
			src += " mov" + bw + " " + r2 + ", " + itoa(rnd.Intn(0x70)) + "(r15)\n"
		case 4: // rmw on memory
			src += " " + ops2[rnd.Intn(len(ops2))] + " " + r2 + ", " + itoa(rnd.Intn(0x38)*2) + "(r15)\n"
		case 5: // indirect/autoincrement load
			if rnd.Intn(2) == 0 {
				src += " mov @r14, " + r + "\n"
			} else {
				src += " mov @r14+, " + r + "\n"
			}
		case 6: // fmt2
			op := ops1[rnd.Intn(len(ops1))]
			if op == "swpb" || op == "sxt" {
				src += " " + op + " " + r + "\n"
			} else {
				src += " " + op + bw + " " + r + "\n"
			}
		case 7: // push
			src += " push " + r + "\n"
		case 8: // skip-one conditional jump
			lbl := "L" + itoa(i)
			src += " " + jumps[rnd.Intn(len(jumps))] + " " + lbl + "\n"
			src += " xor #0x5a5a, " + r + "\n"
			src += lbl + ":\n"
		case 9: // absolute store/load in scratch
			a := 0x0340 + 2*rnd.Intn(16)
			if rnd.Intn(2) == 0 {
				src += " mov " + r2 + ", &" + itoa(a) + "\n"
			} else {
				src += " mov &" + itoa(a) + ", " + r + "\n"
			}
		}
	}
	src += "done: jmp done\n"
	return src
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// TestDifferentialRandom fuzzes the gate-level CPU against the interpreter.
func TestDifferentialRandom(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 5
	}
	for seed := 0; seed < trials; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed)))
		src := randProgram(rnd, 40)
		t.Run("seed"+itoa(seed), func(t *testing.T) {
			runDifferential(t, src, 200)
		})
	}
}

func TestRunToCompletion(t *testing.T) {
	img, err := asm.AssembleSource(`
start:  mov #10, r10
loop:   dec r10
        jnz loop
done:   jmp done
`)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	s.PowerOn()
	cycles, err := s.RunToCompletion(10000)
	if err != nil {
		t.Fatal(err)
	}
	// mov #10 (2) + 10*(dec 1 + jnz 1) + jmp (1) + park detection overhead.
	if cycles < 23 || cycles > 30 {
		t.Fatalf("cycles = %d, expected ~23", cycles)
	}
}

// TestWatchdogExpiryResets verifies the gate-level watchdog: enabling it
// with the shortest interval resets the processor back to the entry point.
func TestWatchdogExpiryResets(t *testing.T) {
	img, err := asm.AssembleSource(`
.equ WDTCTL, 0x0120
start:  mov &0x0310, r5
        add #1, r5
        mov r5, &0x0310      ; count resets in RAM
        cmp #3, r5
        jeq halt
        mov #0x5a03, &WDTCTL ; enable watchdog, 64-cycle interval
spin:   jmp spin             ; wait for the reset
halt:   jmp halt
`)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	s.PowerOn()
	// Each pass: a few instructions, then a 64-cycle watchdog interval. The
	// spin loop parks, so run a fixed number of cycles rather than using the
	// self-jump detector.
	for i := 0; i < 600; i++ {
		s.Step()
	}
	w := s.RAM.LoadWord(0x0310)
	if !w.Concrete() || w.Val != 3 {
		t.Fatalf("reset counter = %s, want 3", w)
	}
}

// TestWatchdogPasswordViolation verifies that a write with a bad password
// immediately resets the processor.
func TestWatchdogPasswordViolation(t *testing.T) {
	img, err := asm.AssembleSource(`
.equ WDTCTL, 0x0120
start:  mov &0x0310, r5
        add #1, r5
        mov r5, &0x0310
        cmp #2, r5
        jeq halt
        mov #0x1234, &WDTCTL ; wrong password -> POR
        mov #99, &0x0312     ; never reached
halt:   jmp halt
`)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	s.PowerOn()
	if _, err := s.RunToCompletion(1000); err != nil {
		t.Fatal(err)
	}
	if w := s.RAM.LoadWord(0x0310); w.Val != 2 {
		t.Fatalf("reset counter = %s, want 2", w)
	}
	if w := s.RAM.LoadWord(0x0312); w.Val == 99 {
		t.Fatal("instruction after the violating store should not have run")
	}
}

// TestGPIOOutputPort verifies port writes land in the port register.
func TestGPIOOutputPort(t *testing.T) {
	img, err := asm.AssembleSource(`
start:  mov #0xabcd, &0x0022  ; P1OUT
        mov #0x00ef, r5
        mov.b r5, &0x0026     ; P2OUT low byte
done:   jmp done
`)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	s.PowerOn()
	if _, err := s.RunToCompletion(100); err != nil {
		t.Fatal(err)
	}
	s.EvalCycle(nil)
	if w := s.GetWord(s.D.PortOut[0]); w.Val != 0xabcd {
		t.Fatalf("P1OUT = %s", w)
	}
	if w := s.GetWord(s.D.PortOut[1]); w.Val&0xff != 0xef {
		t.Fatalf("P2OUT = %s", w)
	}
}

// TestGPIOInputPort verifies reads of an input port see the injected value.
func TestGPIOInputPort(t *testing.T) {
	img, err := asm.AssembleSource(`
start:  mov &0x0020, r5      ; P1IN
done:   jmp done
`)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	s.SetPortIn(0, sim.ConcreteWord(0x5678))
	s.PowerOn()
	if _, err := s.RunToCompletion(100); err != nil {
		t.Fatal(err)
	}
	s.EvalCycle(nil)
	if w := s.RegWord(5); w.Val != 0x5678 {
		t.Fatalf("r5 = %s", w)
	}
}

// TestTaintFlowsFromPortToRegister: reading a tainted port taints the
// destination register — the basic GLIFT property end to end.
func TestTaintFlowsFromPortToRegister(t *testing.T) {
	img, err := asm.AssembleSource(`
start:  mov &0x0020, r5
        mov #7, r6
done:   jmp done
`)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	s.SetPortIn(0, sim.Word{XM: 0xffff, TT: 0xffff}) // tainted unknown input
	s.PowerOn()
	for i := 0; i < 10; i++ {
		s.Step()
	}
	s.EvalCycle(nil)
	if w := s.RegWord(5); !w.Tainted() {
		t.Fatalf("r5 should be tainted, got %s", w)
	}
	if w := s.RegWord(6); w.Tainted() || w.Val != 7 {
		t.Fatalf("r6 should be clean 7, got %s", w)
	}
}

// TestTaintedStoreAddressTaintsWholeRAM reproduces the Figure 9 left-hand
// behaviour at system level: storing through a tainted unknown address
// taints the entire data memory.
func TestTaintedStoreAddressTaintsWholeRAM(t *testing.T) {
	img, err := asm.AssembleSource(`
start:  mov &0x0020, r15     ; tainted input
        mov #0x0200, r14
        add r15, r14
        mov #500, 0(r14)     ; store through tainted address
done:   jmp done
`)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	s.SetPortIn(0, sim.Word{XM: 0xffff, TT: 0xffff})
	s.PowerOn()
	for i := 0; i < 12; i++ {
		s.Step()
	}
	tainted := s.RAM.TaintedBytes(isa.RAMStart, isa.RAMEnd)
	if tainted < s.RAM.Size()*9/10 {
		t.Fatalf("only %d/%d RAM bytes tainted", tainted, s.RAM.Size())
	}
}

// TestMaskedStoreAddressConfinesTaint reproduces the Figure 9 right-hand
// behaviour: masking the address into a partition confines the taint.
func TestMaskedStoreAddressConfinesTaint(t *testing.T) {
	img, err := asm.AssembleSource(`
start:  mov &0x0020, r15
        mov #0x0200, r14
        add r15, r14
        and #0x03ff, r14     ; mask offset
        bis #0x0400, r14     ; pin to the tainted partition 0x0400-0x07ff
        mov #500, 0(r14)
done:   jmp done
`)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	s.SetPortIn(0, sim.Word{XM: 0xffff, TT: 0xffff})
	s.PowerOn()
	for i := 0; i < 15; i++ {
		s.Step()
	}
	if n := s.RAM.TaintedBytes(0x0200, 0x0400); n != 0 {
		t.Fatalf("%d bytes tainted below the partition", n)
	}
	if n := s.RAM.TaintedBytes(0x0400, 0x0800); n == 0 {
		t.Fatal("the tainted partition should have absorbed the store")
	}
	if n := s.RAM.TaintedBytes(0x0800, isa.RAMEnd); n != 0 {
		t.Fatalf("%d bytes tainted above the partition", n)
	}
}

// TestSnapshotRoundTrip checks snapshot/restore and the substate/merge laws
// the Algorithm 1 engine depends on.
func TestSnapshotRoundTrip(t *testing.T) {
	img, err := asm.AssembleSource(`
start:  mov #0x1111, r5
        mov #0x2222, r6
        mov r5, &0x0300
done:   jmp done
`)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	s.PowerOn()
	for i := 0; i < 4; i++ {
		s.Step()
	}
	snap := s.Snapshot()
	if !snap.SubstateOf(snap) {
		t.Fatal("snapshot should cover itself")
	}
	for i := 0; i < 4; i++ {
		s.Step()
	}
	after := s.Snapshot()
	s.Restore(snap)
	s.EvalCycle(nil)
	if w := s.RegWord(6); w.Val != 0 || !w.Concrete() {
		t.Fatalf("restore failed: r6 = %s", w)
	}
	merged := snap.Clone()
	merged.MergeFrom(after)
	if !snap.SubstateOf(merged) || !after.SubstateOf(merged) {
		t.Fatal("merge is not an upper bound")
	}
}

func TestEventsLogged(t *testing.T) {
	img, err := asm.AssembleSource(`
start:  mov #1, &0x0100      ; unmapped MMIO hole
        mov &0x0102, r5
done:   jmp done
`)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t)
	loadConcrete(t, s, img)
	s.PowerOn()
	if _, err := s.RunToCompletion(100); err != nil {
		t.Fatal(err)
	}
	evs := s.Events()
	if len(evs) < 2 {
		t.Fatalf("expected unmapped-access events, got %v", evs)
	}
}

func TestPortInDefaultsUntaintedX(t *testing.T) {
	s := newTestSystem(t)
	w := s.GetWord(s.D.PortIn[2])
	if w.XM != 0xffff || w.TT != 0 {
		t.Fatalf("default port value = %s", w)
	}
	// logic sanity for the packed default
	if logic.Pack(logic.X0) != 2 {
		t.Fatal("packed X0 encoding changed")
	}
}
