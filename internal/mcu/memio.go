package mcu

import (
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// memIO is the behavioural memory model of one machine context: program
// fetch, load dispatch with conservative unknown-address semantics, MMIO
// reads and the data-store commit. System binds one to its circuit; the
// batched system (batch.go) binds one per lane over the shared bitsliced
// backend. Keeping this logic in one place is what guarantees batched runs
// are cycle-exact against scalar ones.
type memIO struct {
	d    *Design
	rom  *sim.TaintMem
	ram  *sim.TaintMem
	get  func([]netlist.NetID) sim.Word           // probe-word read from the circuit
	logf func(format string, args ...interface{}) // unusual-access log, "cycle N: " prefixed
}

// readMMIO returns the word visible at a peripheral address, if any — a
// lookup over the design's declared load-visible MMIO registers.
func (m *memIO) readMMIO(addr uint16) (sim.Word, bool) {
	a := addr &^ 1
	for i := range m.d.MMIO {
		r := &m.d.MMIO[i]
		if a != r.Addr {
			continue
		}
		w := m.get(r.Nets)
		if r.Mask != 0 {
			w = sim.Word{Val: w.Val & r.Mask, XM: w.XM & r.Mask, TT: w.TT & r.Mask}
		}
		return w, true
	}
	return sim.Word{}, false
}

// fetch resolves a program-memory read for the (possibly unknown) address.
func (m *memIO) fetch(paw sim.Word) sim.Word {
	switch {
	case paw.Concrete() && m.rom.Contains(paw.Val&^1):
		// A tainted but concrete PC does NOT taint the fetched word: the
		// application is known at analysis time, so which (known)
		// instruction executes is a declassified leak — exactly the
		// argument of Section 5.2 of the paper ("the only information this
		// can leak is ... a known requirement"). The tainted-control-flow
		// fact itself is tracked by the PC's taint and enforced by the
		// checker's condition 1. Program-memory words may still carry taint
		// from an explicit tainted-code-word label (Figure 8's experiment).
		return m.rom.LoadWord(paw.Val)
	case paw.Concrete():
		m.logf("fetch outside ROM at %#04x", paw.Val)
		return sim.Word{XM: 0xffff}
	default:
		// Unknown fetch address: conservatively merge every possibly
		// fetched word (this is what degrades an application-agnostic
		// *-logic analysis once the PC goes unknown — Footnote 8).
		f := sim.Word{XM: 0xffff}
		if paw.Tainted() {
			f.TT = 0xffff
		}
		return f
	}
}

// loadDispatch resolves a data-memory read for a (possibly partially
// unknown, possibly tainted) address.
func (m *memIO) loadDispatch(addr sim.Word, re logic.Sig) sim.Word {
	free := addr.XM | addr.TT
	if free == 0 {
		w := m.readAt(addr.Val)
		if re.T {
			w.TT = 0xffff
		}
		return w
	}
	// Conservative merge over every possibly-addressed location.
	out := sim.Word{}
	first := true
	join := func(w sim.Word) {
		if first {
			out, first = w, false
		} else {
			out = sim.MergeWords(out, w)
		}
	}
	fixed := ^free
	want := addr.Val & fixed
	match := func(a uint16) bool { return a&fixed == want || (a+1)&fixed == want }
	m.ram.ForEachMatchRelaxed(free, want, func(a uint16) { join(m.ram.LoadWord(a)) })
	m.rom.ForEachMatchRelaxed(free, want, func(a uint16) { join(m.rom.LoadWord(a)) })
	for i := range m.d.MMIO {
		if ma := m.d.MMIO[i].Addr; match(ma) {
			if w, ok := m.readMMIO(ma); ok {
				join(w)
			}
		}
	}
	if first {
		out = sim.Word{XM: 0xffff}
	}
	out.TT |= addr.TT // unknown *which* location: the choice itself leaks
	if addr.TT != 0 || re.T {
		out.TT = 0xffff
	}
	return out
}

func (m *memIO) readAt(addr uint16) sim.Word {
	if w, ok := m.readMMIO(addr); ok {
		return w
	}
	if m.ram.Contains(addr) {
		return m.ram.LoadWord(addr)
	}
	if m.rom.Contains(addr) {
		return m.rom.LoadWord(addr)
	}
	m.logf("read from unmapped %#04x", addr)
	return sim.Word{XM: 0xffff}
}

// commitStore applies the evaluated cycle's data-memory store with
// conservative unknown-address/width semantics.
func (m *memIO) commitStore(ci *CycleInfo) {
	addr, data := ci.Addr, ci.WData
	free := addr.XM | addr.TT
	uncertainWrite := ci.We.V != logic.One || ci.We.T
	if addr.TT != 0 || ci.We.T {
		data.TT = 0xffff
	}
	byteStore := ci.BW.V == logic.One
	if ci.BW.V == logic.X || ci.BW.T {
		// Unknown width: conservatively merge a full word.
		byteStore = false
		uncertainWrite = true
	}

	store := func(a uint16, merge bool) {
		if !m.ram.Contains(a) {
			// Peripheral writes are handled inside the netlist (WDTCTL, port
			// registers decode the same address/wdata nets); ROM is not
			// writable at runtime. Log everything else.
			if _, mm := m.readMMIO(a); !mm && !m.rom.Contains(a) {
				m.logf("write to unmapped %#04x", a)
			}
			return
		}
		switch {
		case byteStore && merge:
			m.ram.MergeStoreByte(a, sim.Word{Val: data.Val & 0xff, XM: data.XM & 0xff, TT: data.TT & 0xff})
		case byteStore:
			m.ram.StoreByte(a, sim.Word{Val: data.Val & 0xff, XM: data.XM & 0xff, TT: data.TT & 0xff})
		case merge:
			m.ram.MergeStoreWord(a, data)
		default:
			m.ram.StoreWord(a, data)
		}
	}

	if free == 0 {
		store(addr.Val, uncertainWrite)
		return
	}
	want := addr.Val &^ free
	m.ram.ForEachMatchRelaxed(free, want, func(a uint16) { store(a, true) })
}
