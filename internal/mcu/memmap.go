package mcu

import (
	"repro/internal/synth"
)

// MemMap is a target machine's memory geometry and address conventions —
// everything the simulation harness, the analysis engine, and the policy
// layer need to know about where things live, factored out of the netlist
// so a second ISA's design can declare its own map without touching the
// engine (see DESIGN.md "Target abstraction").
type MemMap struct {
	// Program memory [ROMStart, ROMEnd). ROMEnd is exclusive and a uint32
	// so a map reaching the top of the 16-bit space can say 0x10000.
	ROMStart uint16
	ROMEnd   uint32
	// Data memory [RAMStart, RAMEnd).
	RAMStart uint16
	RAMEnd   uint16
	// ResetVec is the ROM word holding the boot entry address; the core
	// fetches it in StReset.
	ResetVec uint16
	// WdtCtl is the watchdog control register's MMIO address — the
	// integrity-check target of the paper's recovery mechanism.
	WdtCtl uint16
	// PortIn/PortOut are the MMIO addresses of the GPIO port pairs.
	PortIn  [NumPorts]uint16
	PortOut [NumPorts]uint16
}

// MMIOReg is one load-visible memory-mapped peripheral register: the
// behavioural memory model resolves reads at Addr from the given nets.
// Mask, when nonzero, limits the visible bits (byte-wide registers).
type MMIOReg struct {
	Addr uint16
	Nets synth.Word
	Mask uint16
}

// FillTraps invokes store for every word of unused-ROM trap padding: the
// design's trap pattern (a self-parking instruction sequence) repeated
// across [ROMStart, ROMEnd). The analysis pads program memory with it
// before placing an image, so conservatively merged candidate PCs that
// were never really pushed park and get pruned instead of executing
// unknown instruction words.
func (d *Design) FillTraps(store func(addr, word uint16)) {
	for a, i := uint32(d.Map.ROMStart), 0; a < d.Map.ROMEnd; a, i = a+2, i+1 {
		store(uint16(a), d.Trap[i%len(d.Trap)])
	}
}
