// Package mcu constructs a complete gate-level MSP430-class microcontroller
// from gate primitives — register file, ALU, multi-cycle control FSM, GPIO
// output ports and a watchdog timer with a password-protected control
// register — and provides the simulation harness (System) that binds the
// netlist to behavioural program/data memories and memory-mapped ports.
//
// The design stands in for the synthesized, placed-and-routed openMSP430 the
// paper analyzed (see DESIGN.md): everything the paper's techniques touch —
// the PC, the status register, the watchdog's write-enable, the port output
// registers — exists as real gates and flip-flops so that GLIFT taint flows
// through them exactly as in the paper.
package mcu

import (
	"sync"

	"repro/internal/isa"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// FSM state encodings (4-bit state register).
const (
	StReset = iota // power-on: fetch the reset vector
	StFetch        // fetch; single-cycle instructions execute here
	StSrc          // source operand acquisition (ext word / memory / #imm)
	StDst          // destination ext word + read-modify-write
	StF2wb         // format II memory write-back
	StPush         // push operand at SP-2
	StCall         // push return address, load PC
	StReti1        // pop SR
	StReti2        // pop PC
	StIrq1         // interrupt entry: push PC
	StIrq2         // interrupt entry: push SR, clear GIE, vector
	numStates
)

// NumPorts is the number of GPIO input/output port pairs.
const NumPorts = 4

// PortInAddr returns the MMIO address of input port i (0-based).
func PortInAddr(i int) uint16 { return uint16(isa.AddrP1IN + 4*i) }

// PortOutAddr returns the MMIO address of output port i (0-based).
func PortOutAddr(i int) uint16 { return uint16(isa.AddrP1OUT + 4*i) }

// Design is the constructed netlist plus handles to every net the
// simulation harness and the analysis need.
type Design struct {
	NL *netlist.Netlist

	// Primary inputs.
	Rst       netlist.NetID // external power-on reset
	PmemRdata synth.Word    // program memory read data (addr = PmemAddr)
	DmemRdata synth.Word    // data memory read data (addr = DmemAddr)
	PortIn    [NumPorts]synth.Word

	// Primary outputs.
	PmemAddr  synth.Word
	DmemAddr  synth.Word
	DmemWdata synth.Word
	DmemRe    netlist.NetID
	DmemWe    netlist.NetID
	DmemBW    netlist.NetID // byte-wide store
	PortOut   [NumPorts]synth.Word

	// Architectural state (flip-flop outputs).
	PC, SR, IR synth.Word
	Regs       [16]synth.Word // nil for PC/SR/CG slots
	State      synth.Word
	SrcReg     synth.Word
	EA         synth.Word
	WdtCtl     synth.Word // 8 control bits
	WdtCnt     synth.Word
	TaCtl      synth.Word // Timer_A-lite control (8 bits)
	TaCcr0     synth.Word // Timer_A-lite compare
	TaR        synth.Word // Timer_A-lite counter
	TaIfg      netlist.NetID

	// Probe nets.
	PCNext      synth.Word    // D input of the PC register (fork detection)
	BranchTaken netlist.NetID // conditional-jump decision in StFetch
	POR         netlist.NetID // power-on reset (ext reset | wdt expiry | password violation)
	WdtWe       netlist.NetID // write strobe of WDTCTL (integrity-check target)
	WdtExpired  netlist.NetID
	IrqTaken    netlist.NetID // interrupt entry decision at a fetch boundary

	// Target conventions (see DESIGN.md "Target abstraction"). Every
	// Design carries its own memory map, load-visible MMIO registers,
	// trap-fill pattern, register names, sequential PC step and jump-word
	// predicate, so the engine, checker and tracer never consult ISA
	// constants directly.
	Map  MemMap
	MMIO []MMIOReg
	// Trap is the repeating word pattern used to pad unused ROM (a
	// self-parking instruction).
	Trap []uint16
	// RegName names the architectural register slots for diagnostics.
	RegName [16]string
	// PCStep is the sequential PC increment of one committed cycle; a
	// committed PCNext that is neither PC nor PC+PCStep is a control
	// transfer in the conservative state table's sense.
	PCStep uint16
	// JumpWord reports whether a concrete instruction word fetched in
	// StFetch is a (possibly self-targeting) control transfer — the case
	// the PCNext delta test cannot see, since a taken self-jump holds the
	// PC exactly like a sequential mid-instruction cycle.
	JumpWord func(w uint16) bool
}

// regfileSlots lists the register numbers held in the DFF register file
// (PC, SR and CG live elsewhere).
var regfileSlots = []int{1, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}

// Build constructs the microcontroller netlist.
func Build() *Design {
	nl := netlist.New()
	b := synth.NewBuilder(nl)
	d := &Design{NL: nl}

	// ---- Primary inputs ----
	d.Rst = nl.AddInput("rst")
	d.PmemRdata = b.InputWord("pmem_rdata", 16)
	d.DmemRdata = b.InputWord("dmem_rdata", 16)
	for i := 0; i < NumPorts; i++ {
		d.PortIn[i] = b.InputWord(portName("p", i, "in"), 16)
	}

	// The POR net is declared up front (every register resets on it) and is
	// driven at the end, once the watchdog logic exists.
	por := b.Named("por")
	d.POR = por
	high, low := b.High(), b.Low()
	zero16 := b.Const(16, 0)

	// ---- State registers ----
	// All registers use en=1 with explicit hold muxes on D, so that the only
	// control inputs are their D cones and the POR reset — this keeps the
	// GLIFT semantics of "an untainted asserted POR cleans everything".
	cb := b.Scope("cpu")
	stateQ, stateD := cb.RegisterLoop("state", 4, por, high, StReset)
	pcQ, pcD := cb.RegisterLoop("pc", 16, por, high, 0)
	srQ, srD := cb.RegisterLoop("sr", 16, por, high, 0)
	irQ, irD := cb.RegisterLoop("ir", 16, por, high, 0)
	srcQ, srcD := cb.RegisterLoop("srcreg", 16, por, high, 0)
	eaQ, eaD := cb.RegisterLoop("ea", 16, por, high, 0)
	d.State, d.PC, d.SR, d.IR, d.SrcReg, d.EA = stateQ, pcQ, srQ, irQ, srcQ, eaQ
	d.PCNext = pcD

	rb := b.Scope("regs")
	var regQ, regD [16]synth.Word
	for _, r := range regfileSlots {
		regQ[r], regD[r] = rb.RegisterLoop(isa.Reg(r).String(), 16, por, high, 0)
		d.Regs[r] = regQ[r]
	}
	sp := regQ[1]

	// ---- State decode ----
	stDec := b.Scope("st").Decode(stateQ)
	stReset, stFetch, stSrc, stDst := stDec[StReset], stDec[StFetch], stDec[StSrc], stDec[StDst]
	stF2wb, stPush, stCall := stDec[StF2wb], stDec[StPush], stDec[StCall]
	stReti1, stReti2 := stDec[StReti1], stDec[StReti2]
	stIrq1, stIrq2 := stDec[StIrq1], stDec[StIrq2]

	// The interrupt-entry decision is computed from the timer block (built
	// below) and the GIE bit; declared here so fetch-stage logic can gate on
	// it, driven after the timer exists.
	irqTaken := b.Named("irq_taken")
	d.IrqTaken = irqTaken
	notIrq := b.Scope("irqg").Not(irqTaken)

	// ---- Instruction decode ----
	// In StFetch the instruction comes straight off program memory; in all
	// later states it is held in IR. Program memory is always addressed by
	// the PC, so in operand states PmemRdata carries the extension word.
	db := b.Scope("dec")
	insn := db.MuxW(stFetch, irQ, d.PmemRdata)
	ext := d.PmemRdata

	op1 := synth.Slice(insn, 12, 16)
	srcF := synth.Slice(insn, 8, 12)
	adF := insn[7]
	bwF := insn[6]
	asF := synth.Slice(insn, 4, 6)
	dstF := synth.Slice(insn, 0, 4)
	op2 := synth.Slice(insn, 7, 10)
	condF := synth.Slice(insn, 10, 13)
	off10 := synth.Slice(insn, 0, 10)

	isJump := db.AndN(db.Not(insn[15]), db.Not(insn[14]), insn[13])
	isFmt2 := db.EqConst(synth.Slice(insn, 10, 16), 0b000100)
	isFmt1 := db.OrN(insn[15], insn[14], db.And(insn[13], insn[12]))

	op1Dec := db.Decode(op1)
	isMOV, isADD, isADDC := op1Dec[4], op1Dec[5], op1Dec[6]
	isSUBC, isSUB, isCMP := op1Dec[7], op1Dec[8], op1Dec[9]
	isDADD, isBIT, isBIC := op1Dec[10], op1Dec[11], op1Dec[12]
	isBIS, isXOR := op1Dec[13], op1Dec[14]

	// Format II encodes its single operand in the destination fields; all
	// source-operand logic selects on the effective operand register.
	srcSel := db.MuxW(isFmt2, srcF, dstF)

	srcEq0 := db.EqConst(srcSel, 0)
	srcEq1 := db.EqConst(srcSel, 1)
	srcEq2 := db.EqConst(srcSel, 2)
	srcEq3 := db.EqConst(srcSel, 3)
	dstEq0 := db.EqConst(dstF, 0)
	dstEq2 := db.EqConst(dstF, 2)
	dstEq3 := db.EqConst(dstF, 3)

	asDec := db.Decode(asF)
	as0, as1, as2, as3 := asDec[0], asDec[1], asDec[2], asDec[3]

	srcIsCG := db.Or(srcEq3, db.And(srcEq2, asF[1]))
	immMode := db.AndN(as3, srcEq0, db.Not(srcIsCG))
	srcNeedsExt := db.And(db.Not(srcIsCG), db.Or(as1, immMode))
	srcUsesDmem := db.And(db.Not(srcIsCG), db.OrN(as1, as2, db.And(as3, db.Not(srcEq0))))
	needSrcState := db.And(db.Not(srcIsCG), db.Not(as0))

	op2Dec := db.Decode(op2)
	isShift2 := db.And(isFmt2, db.Not(op2[2]))
	isRRC := db.And(isFmt2, op2Dec[0])
	isSWPB := db.And(isFmt2, op2Dec[1])
	isRRA := db.And(isFmt2, op2Dec[2])
	isSXT := db.And(isFmt2, op2Dec[3])
	isPUSH := db.And(isFmt2, op2Dec[4])
	isCALL := db.And(isFmt2, op2Dec[5])
	isRETI := db.And(isFmt2, op2Dec[6])

	fmt1Writes := db.AndN(isFmt1, db.Not(isCMP), db.Not(isBIT))
	fmt1Flags := db.AndN(isFmt1, db.Not(isMOV), db.Not(isBIC), db.Not(isBIS))

	oneCycle := db.OrN(
		isJump,
		db.AndN(isFmt1, db.Not(needSrcState), db.Not(adF)),
		db.AndN(isShift2, db.Not(needSrcState)),
	)

	// ---- Register file read ports ----
	rrb := b.Scope("rdport")
	readReg := func(sel synth.Word) synth.Word {
		opts := make([]synth.Word, 16)
		opts[0] = pcQ
		opts[2] = srQ
		opts[3] = zero16
		for _, r := range regfileSlots {
			opts[r] = regQ[r]
		}
		return rrb.MuxTree(sel, opts)
	}
	srcRegVal := readReg(srcSel)
	dstRegVal := readReg(dstF)

	// ---- Constant generator ----
	cgb := b.Scope("cg")
	cg3 := cgb.MuxTree(asF, []synth.Word{zero16, b.Const(16, 1), b.Const(16, 2), b.Const(16, 0xffff)})
	cg2 := cgb.MuxW(asF[0], b.Const(16, 4), b.Const(16, 8)) // as=10 -> #4, as=11 -> #8
	cgVal := cgb.MuxW(srcEq2, cg3, cg2)

	// ---- Effective addresses and the data-memory port ----
	mb := b.Scope("mem")
	// Source EA (valid in StSrc): indexed modes add the extension word to a
	// base that is 0 for absolute (&addr via SR), the PC for symbolic, or
	// the register value; @Rn/@Rn+ use the register directly.
	idxBase := mb.MuxW(srcEq2, mb.MuxW(srcEq0, srcRegVal, pcQ), zero16)
	eaIndexed, _, _ := mb.Add(idxBase, ext, low)
	eaSrc := mb.MuxW(as1, srcRegVal, eaIndexed)

	// Destination EA (valid in StDst).
	dstBase := mb.MuxW(dstEq2, mb.MuxW(dstEq0, dstRegVal, pcQ), zero16)
	eaDst, _, _ := mb.Add(dstBase, ext, low)

	spb := b.Scope("spadj")
	spMinus2, _, _ := spb.Add(sp, b.Const(16, 0xfffe), low)
	spPlus2 := spb.AddConst(sp, 2)

	dmemAddr := mb.MuxTree(stateQ, muxOptions(map[int]synth.Word{
		StSrc:   eaSrc,
		StDst:   eaDst,
		StF2wb:  eaQ,
		StPush:  spMinus2,
		StCall:  spMinus2,
		StReti1: sp,
		StReti2: sp,
		StIrq1:  spMinus2,
		StIrq2:  spMinus2,
	}, zero16))

	// Byte extraction from memory read data (load path).
	selByte := mb.MuxW(dmemAddr[0], synth.Slice(d.DmemRdata, 0, 8), synth.Slice(d.DmemRdata, 8, 16))
	memLoadVal := mb.MuxW(bwF, d.DmemRdata, mb.ZeroExtend(selByte, 16))

	// ---- Source operand ----
	ob := b.Scope("op")
	srcOpReg := ob.MuxW(srcIsCG, srcRegVal, cgVal)
	srcOpInSrc := ob.MuxW(immMode, memLoadVal, ext)
	operandLater := ob.MuxW(needSrcState, srcOpReg, srcQ)
	srcOperand := ob.MuxW(stFetch, ob.MuxW(stSrc, operandLater, srcOpInSrc), srcOpReg)
	srcOpM := ob.MuxW(bwF, srcOperand, ob.ZeroExtend(synth.Slice(srcOperand, 0, 8), 16))

	// ---- Destination operand ----
	dstOperand := ob.MuxW(stDst, dstRegVal, memLoadVal)
	dstOpM := ob.MuxW(bwF, dstOperand, ob.ZeroExtend(synth.Slice(dstOperand, 0, 8), 16))

	// ---- ALU (format I) ----
	ab := b.Scope("alu")
	subSel := ab.OrN(isSUB, isSUBC, isCMP)
	aluA := ab.MuxW(subSel, srcOpM, ab.NotW(srcOpM))
	carryIn := ab.Mux(subSel,
		ab.Mux(isADDC, low, srQ[0]),  // add path: ADDC uses C, ADD/DADD use 0
		ab.Mux(isSUBC, high, srQ[0]), // sub path: SUB/CMP use 1, SUBC uses C
	)
	sum, carries := ab.AddFull(aluA, dstOpM, carryIn)

	andRes := ab.AndW(srcOpM, dstOpM)
	bicRes := ab.AndW(ab.NotW(srcOpM), dstOpM)
	bisRes := ab.OrW(srcOpM, dstOpM)
	xorRes := ab.XorW(srcOpM, dstOpM)

	fmt1Res := ab.MuxTree(op1, muxOptions(map[int]synth.Word{
		4: srcOpM, 5: sum, 6: sum, 7: sum, 8: sum, 9: sum, 10: sum,
		11: andRes, 12: bicRes, 13: bisRes, 14: xorRes, 15: andRes,
	}, zero16))

	// ---- Shift unit (format II) ----
	sb := b.Scope("shift")
	rrcW := synth.ShiftRight1(srcOpM, srQ[0])
	rraW := synth.ShiftRight1(srcOpM, srcOpM[15])
	rrcB := sb.ZeroExtend(synth.ShiftRight1(synth.Slice(srcOpM, 0, 8), srQ[0]), 16)
	rraB := sb.ZeroExtend(synth.ShiftRight1(synth.Slice(srcOpM, 0, 8), srcOpM[7]), 16)
	rrcRes := sb.MuxW(bwF, rrcW, rrcB)
	rraRes := sb.MuxW(bwF, rraW, rraB)
	swpbRes := synth.Cat(synth.Slice(srcOperand, 8, 16), synth.Slice(srcOperand, 0, 8))
	sxtRes := synth.SignExtend(synth.Slice(srcOperand, 0, 8), 16)
	shiftRes := sb.MuxTree(synth.Slice(op2, 0, 2), []synth.Word{rrcRes, swpbRes, rraRes, sxtRes})

	execRes := ob.MuxW(isShift2, fmt1Res, shiftRes)

	// ---- Flags ----
	fb := b.Scope("flags")
	msbOf := func(w synth.Word) netlist.NetID { return fb.Mux(bwF, w[15], w[7]) }
	resMsb := fb.Mux(isSXT, msbOf(execRes), execRes[15]) // SXT sets word flags
	zByte := fb.IsZero(synth.Slice(execRes, 0, 8))
	zWord := fb.IsZero(execRes)
	zVal := fb.Mux(isSXT, fb.Mux(bwF, zWord, zByte), zWord)

	isArith := fb.OrN(isADD, isADDC, isSUBC, isSUB, isCMP, isDADD)
	cArith := fb.Mux(bwF, carries[15], carries[7])
	cLogic := fb.Not(zVal)
	cFmt1 := fb.Mux(isArith, cLogic, cArith)
	cShift := fb.Mux(fb.Or(isRRC, isRRA), cLogic, srcOpM[0])
	cNew := fb.Mux(isShift2, cFmt1, cShift)

	aMsb := msbOf(aluA)
	bMsb := msbOf(dstOpM)
	sMsb := msbOf(sum)
	vArith := fb.AndN(fb.Xnor(aMsb, bMsb), fb.Xor(sMsb, bMsb))
	vXor := fb.And(msbOf(srcOpM), bMsb)
	vFmt1 := fb.Mux(isArith, fb.Mux(isXOR, low, vXor), vArith)
	vNew := fb.Mux(isShift2, vFmt1, low)

	// ---- Execution strobes ----
	xb := b.Scope("exec")
	execInFetch := xb.AndN(stFetch, oneCycle, xb.Not(isJump), notIrq)
	execInSrc := xb.AndN(stSrc, xb.Not(isPUSH), xb.Not(isCALL),
		xb.Or(xb.And(isFmt1, xb.Not(adF)), isShift2))

	// Register-destination writes: format I with Ad=0 and register-operand
	// shifts (which only execute in StFetch; in StSrc a shift result goes to
	// SRCREG for the StF2wb memory write-back).
	regWEn := xb.Or(
		xb.AndN(xb.Or(execInFetch, execInSrc), isFmt1, fmt1Writes),
		xb.And(execInFetch, isShift2),
	)
	wData := ob.MuxW(bwF, execRes, ob.ZeroExtend(synth.Slice(execRes, 0, 8), 16))

	// Format II register-operand target is the dst field too (same bits).
	pcWrite := xb.And(regWEn, dstEq0)
	srWrite := xb.And(regWEn, dstEq2)
	rfWrite := xb.AndN(regWEn, xb.Not(dstEq0), xb.Not(dstEq2), xb.Not(dstEq3))

	// Port I: source autoincrement and SP adjustments.
	incEn := xb.AndN(stSrc, as3, xb.Not(srcEq0), xb.Not(srcIsCG))
	incStep := ob.MuxW(xb.And(bwF, xb.Not(srcEq1)), b.Const(16, 2), b.Const(16, 1))
	incVal, _, _ := ob.Add(srcRegVal, incStep, low)
	spDown := xb.OrN(stPush, stCall, stIrq1, stIrq2)
	spUp := xb.Or(stReti1, stReti2)
	portIEn := xb.OrN(incEn, spDown, spUp)
	iSel := ob.MuxW(xb.Or(spDown, spUp), srcSel, b.Const(4, 1))
	iData := ob.MuxW(spDown, ob.MuxW(spUp, incVal, spPlus2), spMinus2)

	// Register file write: port W wins over port I; hold otherwise.
	wSelDec := rb.Decode(dstF)
	iSelDec := rb.Decode(iSel)
	for _, r := range regfileSlots {
		enW := rb.And(rfWrite, wSelDec[r])
		enI := rb.And(portIEn, iSelDec[r])
		dVal := rb.MuxW(enW, iData, wData)
		en := rb.Or(enW, enI)
		rb.Drive(regD[r], rb.MuxW(en, regQ[r], dVal))
	}

	// ---- Jumps ----
	jb := b.Scope("jump")
	pcPlus2 := jb.AddConst(pcQ, 2)
	offWords := synth.SignExtend(off10, 15)
	offBytes := synth.Cat(synth.Word{low}, offWords) // 2*offset, sign-extended
	jumpTarget, _, _ := jb.Add(pcPlus2, offBytes, low)

	nXorV := jb.Xor(srQ[2], srQ[8])
	condOk := jb.MuxTree(condF, []synth.Word{
		{jb.Not(srQ[1])}, // JNE
		{srQ[1]},         // JEQ
		{jb.Not(srQ[0])}, // JNC
		{srQ[0]},         // JC
		{srQ[2]},         // JN
		{jb.Not(nXorV)},  // JGE
		{nXorV},          // JL
		{high},           // JMP
	})[0]
	branchTaken := jb.BufNamed("branch_taken", jb.AndN(stFetch, isJump, condOk, notIrq))
	d.BranchTaken = branchTaken

	// ---- PC next ----
	pb := b.Scope("pcnext")
	jumpPC := pb.MuxW(branchTaken, pcPlus2, jumpTarget)
	fetchPC := pb.MuxW(isJump, pb.MuxW(oneCycle, pcPlus2, pcPlus2), jumpPC)
	fetchPC = pb.MuxW(irqTaken, fetchPC, pcQ) // interrupt entry: hold the PC
	srcPC := pb.MuxW(srcNeedsExt, pcQ, pcPlus2)
	pcBase := pb.MuxTree(stateQ, muxOptions(map[int]synth.Word{
		StReset: d.PmemRdata, // reset vector (pmem is addressed at 0xfffe)
		StFetch: fetchPC,
		StSrc:   srcPC,
		StDst:   pcPlus2,
		StCall:  operandLater,
		StReti2: d.DmemRdata,
		StIrq2:  d.PmemRdata, // interrupt vector (pmem addressed at TimerVec)
	}, pcQ))
	pcNext := pb.MuxW(pcWrite, pcBase, wData)
	pb.Drive(pcD, pcNext)

	// ---- SR next ----
	srb := b.Scope("srnext")
	flagsEn := srb.AndN(
		srb.OrN(execInFetch, execInSrc, stDst),
		srb.Or(srb.And(isFmt1, fmt1Flags), srb.And(isShift2, srb.Not(isSWPB))),
		srb.Not(srWrite),
	)
	srFlags := make(synth.Word, 16)
	copy(srFlags, srQ)
	srFlags[0], srFlags[1], srFlags[2], srFlags[8] = cNew, zVal, resMsb, vNew
	srNext := srb.MuxW(flagsEn, srQ, srFlags)
	srNext = srb.MuxW(srWrite, srNext, wData)
	srNext = srb.MuxW(stReti1, srNext, d.DmemRdata)
	srNoGie := srb.AndW(srQ, b.Const(16, 0xfff7)) // GIE cleared on entry
	srNext = srb.MuxW(stIrq2, srNext, srNoGie)
	srb.Drive(srD, srNext)

	// ---- IR / SRCREG / EA ----
	lb := b.Scope("latch")
	irEn := lb.AndN(stFetch, lb.Not(oneCycle), lb.Not(isJump), notIrq)
	lb.Drive(irD, lb.MuxW(irEn, irQ, d.PmemRdata))

	srcLatchVal := lb.MuxW(isShift2, srcOpM, shiftRes)
	lb.Drive(srcD, lb.MuxW(stSrc, srcQ, srcLatchVal))
	lb.Drive(eaD, lb.MuxW(stSrc, eaQ, eaSrc))

	// ---- State next ----
	nb := b.Scope("next")
	st := func(v int) synth.Word { return b.Const(4, uint64(v)) }
	fromFetchNoIrq := nb.MuxW(oneCycle,
		nb.MuxW(needSrcState,
			nb.MuxW(nb.And(isFmt1, adF),
				nb.MuxW(isPUSH,
					nb.MuxW(isCALL,
						nb.MuxW(isRETI, st(StFetch), st(StReti1)),
						st(StCall)),
					st(StPush)),
				st(StDst)),
			st(StSrc)),
		st(StFetch))
	fromFetch := nb.MuxW(irqTaken, fromFetchNoIrq, st(StIrq1))
	fromSrc := nb.MuxW(isPUSH,
		nb.MuxW(isCALL,
			nb.MuxW(isShift2,
				nb.MuxW(nb.And(isFmt1, adF), st(StFetch), st(StDst)),
				st(StF2wb)),
			st(StCall)),
		st(StPush))
	stateNext := nb.MuxTree(stateQ, muxOptions(map[int]synth.Word{
		StReset: st(StFetch),
		StFetch: fromFetch,
		StSrc:   fromSrc,
		StDst:   st(StFetch),
		StF2wb:  st(StFetch),
		StPush:  st(StFetch),
		StCall:  st(StFetch),
		StReti1: st(StReti2),
		StReti2: st(StFetch),
		StIrq1:  st(StIrq2),
		StIrq2:  st(StFetch),
	}, st(StReset)))
	nb.Drive(stateD, stateNext)

	// ---- Data memory port outputs ----
	wb := b.Scope("wr")
	// The external reset qualifies both strobes: while rst is asserted the
	// FSM state is still unknown, and an X write-enable would conservatively
	// smear X over the whole data memory.
	notRst := wb.Not(d.Rst)
	dmemWe := wb.And(notRst, wb.OrN(
		wb.And(stDst, fmt1Writes),
		stF2wb, stPush, stCall, stIrq1, stIrq2,
	))
	dmemRe := wb.And(notRst, wb.OrN(
		wb.And(stSrc, srcUsesDmem),
		wb.And(stDst, wb.Not(isMOV)),
		stReti1, stReti2,
	))
	dmemWdata := wb.MuxTree(stateQ, muxOptions(map[int]synth.Word{
		StDst:  wData,
		StF2wb: srcQ,
		StPush: operandLater,
		StCall: pcQ,
		StIrq1: pcQ,
		StIrq2: srQ,
	}, zero16))
	dmemBW := wb.AndN(bwF, wb.Or(stDst, stF2wb))

	// ---- Watchdog timer ----
	wd := b.Scope("wdt")
	wdtCtlQ, wdtCtlD := wd.RegisterLoop("ctl", 8, por, high, isa.WDTHold)
	wdtCntQ, wdtCntD := wd.RegisterLoop("cnt", 16, por, high, 0)
	d.WdtCtl, d.WdtCnt = wdtCtlQ, wdtCntQ

	wdtSel := wd.And(dmemWe, wd.EqConst(dmemAddr, uint64(isa.AddrWDTCTL)))
	pwOk := wd.EqConst(synth.Slice(dmemWdata, 8, 16), 0x5a)
	wdtWe := wd.BufNamed("wdt_we", wd.And(wdtSel, pwOk))
	d.WdtWe = wdtWe
	pwViolation := wd.And(wdtSel, wd.Not(pwOk))

	hold := wdtCtlQ[7]
	interval := wd.MuxTree(synth.Slice(wdtCtlQ, 0, 2), []synth.Word{
		b.Const(16, 32767), b.Const(16, 8191), b.Const(16, 511), b.Const(16, 63),
	})
	expired := wd.BufNamed("wdt_expired", wd.And(wd.Not(hold), wd.EqW(wdtCntQ, interval)))
	d.WdtExpired = expired

	cntPlus1 := wd.Inc(wdtCntQ)
	cntRun := wd.MuxW(hold, cntPlus1, wdtCntQ)
	cntNext := wd.MuxW(wd.OrN(wdtWe, expired), cntRun, zero16)
	wd.Drive(wdtCntD, cntNext)
	wd.Drive(wdtCtlD, wd.MuxW(wdtWe, wdtCtlQ, synth.Slice(dmemWdata, 0, 8)))

	b.DriveBit(por, b.OrN(d.Rst, expired, pwViolation))

	// ---- Timer_A-lite ----
	// A free-running 16-bit up-counter with one compare register. When
	// enabled (TACTL bit 0) and TAR reaches TACCR0, the interrupt flag
	// latches; any write to TACTL clears it (the ISR's acknowledge). The
	// maskable interrupt is taken at the next fetch boundary while GIE is
	// set — note that whether it fires thus depends on the current
	// (possibly tainted) SR, which is exactly the paper's argument for why
	// interrupt-based PC recovery cannot replace the watchdog reset.
	tb := b.Scope("ta")
	taCtlQ, taCtlD := tb.RegisterLoop("ctl", 8, por, high, 0)
	taCcrQ, taCcrD := tb.RegisterLoop("ccr0", 16, por, high, 0)
	taRQ, taRD := tb.RegisterLoop("tar", 16, por, high, 0)
	taIfgQ, taIfgD := tb.RegisterLoop("ifg", 1, por, high, 0)
	d.TaCtl, d.TaCcr0, d.TaR = taCtlQ, taCcrQ, taRQ
	d.TaIfg = taIfgQ[0]

	taCtlWe := tb.And(dmemWe, tb.EqConst(dmemAddr, uint64(isa.AddrTACTL)))
	taCcrWe := tb.And(dmemWe, tb.EqConst(dmemAddr, uint64(isa.AddrTACCR0)))
	tb.Drive(taCtlD, tb.MuxW(taCtlWe, taCtlQ, synth.Slice(dmemWdata, 0, 8)))
	tb.Drive(taCcrD, tb.MuxW(taCcrWe, taCcrQ, dmemWdata))

	taEn := taCtlQ[0]
	taHit := tb.And(taEn, tb.EqW(taRQ, taCcrQ))
	tarNext := tb.MuxW(taEn, taRQ, tb.Inc(taRQ))
	tarNext = tb.MuxW(taHit, tarNext, zero16) // wrap at compare
	tb.Drive(taRD, tarNext)
	// IFG: set on hit, cleared by a TACTL write, held otherwise.
	ifgNext := tb.Or(taIfgQ[0], taHit)
	ifgNext = tb.Mux(taCtlWe, ifgNext, b.Low())
	tb.Drive(taIfgD, synth.Word{ifgNext})

	gie := srQ[3]
	b.DriveBit(irqTaken, b.AndN(stFetch, taIfgQ[0], gie))

	// ---- GPIO output ports ----
	gb := b.Scope("gpio")
	for i := 0; i < NumPorts; i++ {
		we := gb.And(dmemWe, gb.EqConst(dmemAddr, uint64(PortOutAddr(i))))
		q, dd := gb.RegisterLoop(portName("p", i, "out"), 16, por, high, 0)
		// Byte writes replace only the low byte.
		merged := synth.Cat(synth.Slice(dmemWdata, 0, 8), gb.MuxW(dmemBW, synth.Slice(dmemWdata, 8, 16), synth.Slice(q, 8, 16)))
		gb.Drive(dd, gb.MuxW(we, q, merged))
		d.PortOut[i] = q
	}

	// ---- Primary outputs ----
	pmemAddr := b.MuxW(stReset, pcQ, b.Const(16, uint64(isa.ResetVec)))
	pmemAddr = b.MuxW(stIrq2, pmemAddr, b.Const(16, uint64(isa.TimerVec)))
	d.PmemAddr = pmemAddr
	d.DmemAddr = dmemAddr
	d.DmemWdata = dmemWdata
	d.DmemRe = dmemRe
	d.DmemWe = dmemWe
	d.DmemBW = dmemBW

	b.OutputWord("pmem_addr", pmemAddr)
	b.OutputWord("dmem_addr", dmemAddr)
	b.OutputWord("dmem_wdata", dmemWdata)
	nl.AddOutput("dmem_re", dmemRe)
	nl.AddOutput("dmem_we", dmemWe)
	nl.AddOutput("dmem_bw", dmemBW)
	for i := 0; i < NumPorts; i++ {
		b.OutputWord(portName("p", i, "out"), d.PortOut[i])
	}

	// ---- Target conventions ----
	d.Map = MemMap{
		ROMStart: isa.ROMStart, ROMEnd: 0x10000,
		RAMStart: isa.RAMStart, RAMEnd: isa.RAMEnd,
		ResetVec: isa.ResetVec,
		WdtCtl:   isa.AddrWDTCTL,
	}
	for i := 0; i < NumPorts; i++ {
		d.Map.PortIn[i] = PortInAddr(i)
		d.Map.PortOut[i] = PortOutAddr(i)
		d.MMIO = append(d.MMIO,
			MMIOReg{Addr: PortInAddr(i), Nets: d.PortIn[i]},
			MMIOReg{Addr: PortOutAddr(i), Nets: d.PortOut[i]})
	}
	d.MMIO = append(d.MMIO,
		MMIOReg{Addr: isa.AddrWDTCTL, Nets: d.WdtCtl, Mask: 0xff},
		MMIOReg{Addr: isa.AddrTACTL, Nets: d.TaCtl, Mask: 0xff},
		MMIOReg{Addr: isa.AddrTACCR0, Nets: d.TaCcr0},
		MMIOReg{Addr: isa.AddrTAR, Nets: d.TaR})
	trap, _ := (&isa.Instr{Op: isa.JMP, Off: -1}).Encode()
	d.Trap = []uint16{trap[0]}
	for r := 0; r < 16; r++ {
		d.RegName[r] = isa.Reg(r).String()
	}
	d.PCStep = 2
	// Any MSP430 jump-format instruction (opcode field 001) can hold the
	// PC, including "jmp $".
	d.JumpWord = func(w uint16) bool { return w>>13 == 1 }

	if err := nl.Validate(); err != nil {
		panic("mcu: invalid netlist: " + err.Error())
	}
	return d
}

func portName(prefix string, i int, suffix string) string {
	return prefix + string(rune('1'+i)) + suffix
}

// muxOptions builds a 16-entry option list for a MuxTree over a 4-bit
// select word, defaulting unmentioned slots.
func muxOptions(m map[int]synth.Word, def synth.Word) []synth.Word {
	opts := make([]synth.Word, 16)
	for i := range opts {
		if w, ok := m[i]; ok {
			opts[i] = w
		} else {
			opts[i] = def
		}
	}
	return opts
}

var (
	sharedOnce sync.Once
	shared     *Design
)

// Shared returns the memoized msp430 design. Building it is moderately
// expensive and it holds no simulation state, so every consumer — the
// analysis engine, the service, the target registry — shares one instance.
func Shared() *Design {
	sharedOnce.Do(func() { shared = Build() })
	return shared
}
