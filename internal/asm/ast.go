// Package asm implements a two-pass assembler for the MSP430-class ISA in
// internal/isa: a parser producing an editable statement list, symbol
// resolution, encoding with constant-generator optimization, and a printer
// that renders (possibly transformed) programs back to source.
//
// The statement list is the representation on which the paper's software
// transformations operate (Figure 11): root-cause analysis maps violating
// program addresses back to statements, internal/transform inserts masking
// or watchdog statements, and the program is re-assembled.
package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// ExprTerm is one signed term of an address expression: either a symbol
// reference or a literal.
type ExprTerm struct {
	Neg bool
	Sym string // empty for a literal term
	Num int64
}

// Expr is a sum of terms, e.g. "buf+2" or "end-start".
type Expr []ExprTerm

// Int builds a literal expression.
func Int(v int64) Expr { return Expr{{Num: v}} }

// Sym builds a symbol-reference expression.
func Sym(name string) Expr { return Expr{{Sym: name}} }

// SymPlus builds sym+off.
func SymPlus(name string, off int64) Expr { return Expr{{Sym: name}, {Num: off}} }

// Eval resolves the expression against a symbol table.
func (e Expr) Eval(symbols map[string]int64) (int64, error) {
	var v int64
	for _, t := range e.Terms() {
		tv := t.Num
		if t.Sym != "" {
			sv, ok := symbols[t.Sym]
			if !ok {
				return 0, &UndefinedSymbolError{Symbol: t.Sym}
			}
			tv = sv
		}
		if t.Neg {
			v -= tv
		} else {
			v += tv
		}
	}
	return v, nil
}

// Terms returns the term list (nil-safe).
func (e Expr) Terms() []ExprTerm { return e }

// ConstOnly returns the expression's value if it contains no symbols.
func (e Expr) ConstOnly() (int64, bool) {
	var v int64
	for _, t := range e {
		if t.Sym != "" {
			return 0, false
		}
		if t.Neg {
			v -= t.Num
		} else {
			v += t.Num
		}
	}
	return v, true
}

// String renders the expression in source form.
func (e Expr) String() string {
	var sb strings.Builder
	for i, t := range e {
		s := t.Sym
		neg := t.Neg
		if s == "" {
			n := t.Num
			if n < 0 {
				neg = !neg
				n = -n
			}
			s = formatInt(n)
		}
		switch {
		case neg:
			sb.WriteString("-" + s)
		case i > 0:
			sb.WriteString("+" + s)
		default:
			sb.WriteString(s)
		}
	}
	if sb.Len() == 0 {
		return "0"
	}
	return sb.String()
}

func formatInt(v int64) string {
	if v >= 10 || v <= -10 {
		if v < 0 {
			return fmt.Sprintf("-0x%x", -v)
		}
		return fmt.Sprintf("0x%x", v)
	}
	return fmt.Sprintf("%d", v)
}

// OpKind classifies an operand.
type OpKind uint8

// Operand kinds.
const (
	OpNone     OpKind = iota
	OpImm             // #expr
	OpReg             // Rn
	OpIndirect        // @Rn
	OpIndInc          // @Rn+
	OpIndexed         // expr(Rn)
	OpAbs             // &expr
	OpSym             // bare expr: PC-relative symbolic
)

// Operand is one parsed instruction operand.
type Operand struct {
	Kind OpKind
	Reg  isa.Reg
	Expr Expr
}

// Convenience constructors used by the software transformations.

// Imm returns an immediate operand.
func Imm(e Expr) Operand { return Operand{Kind: OpImm, Expr: e} }

// RegOp returns a register operand.
func RegOp(r isa.Reg) Operand { return Operand{Kind: OpReg, Reg: r} }

// Abs returns an absolute-address operand (&addr).
func Abs(e Expr) Operand { return Operand{Kind: OpAbs, Expr: e} }

// Indexed returns an expr(Rn) operand.
func Indexed(e Expr, r isa.Reg) Operand { return Operand{Kind: OpIndexed, Reg: r, Expr: e} }

// String renders the operand in source form.
func (o Operand) String() string {
	switch o.Kind {
	case OpImm:
		return "#" + o.Expr.String()
	case OpReg:
		return o.Reg.String()
	case OpIndirect:
		return "@" + o.Reg.String()
	case OpIndInc:
		return "@" + o.Reg.String() + "+"
	case OpIndexed:
		return fmt.Sprintf("%s(%s)", o.Expr.String(), o.Reg)
	case OpAbs:
		return "&" + o.Expr.String()
	case OpSym:
		return o.Expr.String()
	}
	return "?"
}

// StmtKind classifies a statement.
type StmtKind uint8

// Statement kinds.
const (
	SEmpty StmtKind = iota // label-only or blank line
	SInstr
	SOrg   // .org expr
	SWord  // .word expr, expr, ...
	SSpace // .space expr (zero-filled bytes)
	SEqu   // .equ name, expr
)

// Stmt is one source statement. A label, if present, is defined at the
// statement's address.
type Stmt struct {
	Label    string
	Kind     StmtKind
	Mnemonic string // canonical mnemonic, possibly emulated ("nop", "ret")
	BW       bool   // .b suffix
	Ops      []Operand
	Exprs    []Expr // .word operands / the single .org/.space operand
	EquName  string
	Line     int    // 1-based source line, 0 for synthesized statements
	Comment  string // trailing comment without the ';'
}

// Instr builds an instruction statement (used by the transformations).
func InstrStmt(mnemonic string, ops ...Operand) Stmt {
	return Stmt{Kind: SInstr, Mnemonic: mnemonic, Ops: ops}
}

// String renders one statement as a source line (without label handling).
func (s *Stmt) String() string {
	var body string
	switch s.Kind {
	case SEmpty:
	case SInstr:
		m := s.Mnemonic
		if s.BW {
			m += ".b"
		}
		var ops []string
		for _, o := range s.Ops {
			ops = append(ops, o.String())
		}
		body = m
		if len(ops) > 0 {
			body += " " + strings.Join(ops, ", ")
		}
	case SOrg:
		body = ".org " + s.Exprs[0].String()
	case SWord:
		var ws []string
		for _, e := range s.Exprs {
			ws = append(ws, e.String())
		}
		body = ".word " + strings.Join(ws, ", ")
	case SSpace:
		body = ".space " + s.Exprs[0].String()
	case SEqu:
		body = fmt.Sprintf(".equ %s, %s", s.EquName, s.Exprs[0].String())
	}
	var sb strings.Builder
	if s.Label != "" {
		sb.WriteString(s.Label + ":")
	}
	if body != "" {
		if s.Label != "" {
			sb.WriteString(" ")
		} else {
			sb.WriteString("        ")
		}
		sb.WriteString(body)
	}
	if s.Comment != "" {
		sb.WriteString(" ; " + s.Comment)
	}
	return sb.String()
}

// Print renders a whole program back to assembly source.
func Print(stmts []Stmt) string {
	var sb strings.Builder
	for i := range stmts {
		sb.WriteString(stmts[i].String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
