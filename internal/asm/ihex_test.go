package asm

import (
	"bytes"
	"strings"
	"testing"
)

func TestIHexRoundTrip(t *testing.T) {
	img := assemble(t, `
.org 0xf000
start:  mov #0x1234, r5
        add #1, r5
data:   .word 0xbeef, 0xcafe
.org 0xfffe
        .word start
`)
	var buf bytes.Buffer
	if err := WriteIHex(&buf, img); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, ":") || !strings.Contains(out, ":00000001FF") {
		t.Fatalf("malformed ihex:\n%s", out)
	}
	// Parse back and compare against the image's own placement.
	want := map[uint16]uint16{}
	img.Place(func(a, w uint16) { want[a] = w })
	got := map[uint16]uint16{}
	if err := ReadIHex(&buf, func(a, w uint16) { got[a] = w }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("word count: %d vs %d", len(got), len(want))
	}
	for a, w := range want {
		if got[a] != w {
			t.Fatalf("word at %#04x: %#04x vs %#04x", a, got[a], w)
		}
	}
}

func TestIHexChecksums(t *testing.T) {
	img := assemble(t, "start: nop")
	var buf bytes.Buffer
	if err := WriteIHex(&buf, img); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var sum byte
		for i := 1; i < len(line); i += 2 {
			var b byte
			if _, err := fmt_sscan(line[i:i+2], &b); err != nil {
				t.Fatal(err)
			}
			sum += b
		}
		if sum != 0 {
			t.Fatalf("record %q checksum %#02x", line, sum)
		}
	}
}

func fmt_sscan(s string, b *byte) (int, error) {
	var v int
	n, err := sscanHex(s, &v)
	*b = byte(v)
	return n, err
}

func sscanHex(s string, v *int) (int, error) {
	*v = 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			*v = *v<<4 | int(c-'0')
		case c >= 'A' && c <= 'F':
			*v = *v<<4 | int(c-'A'+10)
		case c >= 'a' && c <= 'f':
			*v = *v<<4 | int(c-'a'+10)
		default:
			return i, errBadHex
		}
	}
	return len(s), nil
}

var errBadHex = &ParseError{Line: 0, Msg: "bad hex"}

func TestIHexErrors(t *testing.T) {
	cases := []string{
		"abc",                      // no colon
		":0102",                    // too short
		":02000000BEEF00",          // bad checksum (should be 0x53)
		":00000005FB",              // unsupported record type
		":020000",                  // odd
		":04F00000341201ZZ",        // bad hex
		":02F0000034125F\n:00F000", // truncated record after valid one
	}
	for _, c := range cases {
		if err := ReadIHex(strings.NewReader(c), func(a, w uint16) {}); err == nil {
			t.Errorf("ReadIHex(%q) should fail", c)
		}
	}
	// Missing EOF record.
	if err := ReadIHex(strings.NewReader(":02F00000341248\n"), func(a, w uint16) {}); err == nil {
		t.Error("missing EOF should fail")
	}
}
